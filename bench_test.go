package videodvfs

// The benchmark harness regenerates every table and figure of the
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark times a
// full rebuild of its experiment and prints the resulting rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation in one run. Absolute joule numbers are
// model-calibrated, not testbed measurements; the shapes (who wins, by
// what factor, where the knees fall) are what the reproduction asserts.

import (
	"bytes"
	"fmt"
	"testing"

	"videodvfs/internal/campaign"
	"videodvfs/internal/cohort"
	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
)

// printedTables ensures each experiment's rows print once per process even
// if the benchmark runs many iterations.
var printedTables = map[string]bool{}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	builder, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab experiments.Table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err = builder()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !printedTables[id] {
		printedTables[id] = true
		fmt.Println(tab.Format())
	}
}

// BenchmarkTableT1_OPPTable regenerates Table 1 (device OPP tables).
func BenchmarkTableT1_OPPTable(b *testing.B) { benchExperiment(b, "t1") }

// BenchmarkFigF1_PowerCurve regenerates Figure 1 (power vs frequency).
func BenchmarkFigF1_PowerCurve(b *testing.B) { benchExperiment(b, "f1") }

// BenchmarkFigF2_DecodeTime regenerates Figure 2 (decode time vs
// frequency by resolution).
func BenchmarkFigF2_DecodeTime(b *testing.B) { benchExperiment(b, "f2") }

// BenchmarkFigF3_OndemandResidency regenerates Figure 3 (motivation:
// ondemand residency vs actual need).
func BenchmarkFigF3_OndemandResidency(b *testing.B) { benchExperiment(b, "f3") }

// BenchmarkFigF4_Residency regenerates Figure 4 (frequency residency by
// governor).
func BenchmarkFigF4_Residency(b *testing.B) { benchExperiment(b, "f4") }

// BenchmarkFigF5_EnergyByGovernor regenerates Figure 5 (headline: CPU
// energy by governor × resolution).
func BenchmarkFigF5_EnergyByGovernor(b *testing.B) { benchExperiment(b, "f5") }

// BenchmarkFigF6_MissRate regenerates Figure 6 (dropped frames by
// governor × resolution).
func BenchmarkFigF6_MissRate(b *testing.B) { benchExperiment(b, "f6") }

// BenchmarkTableT2_QoE regenerates Table 2 (QoE summary per policy).
func BenchmarkTableT2_QoE(b *testing.B) { benchExperiment(b, "t2") }

// BenchmarkFigF7_BufferSlack regenerates Figure 7 (energy vs decode-ahead
// depth).
func BenchmarkFigF7_BufferSlack(b *testing.B) { benchExperiment(b, "f7") }

// BenchmarkFigF8_MarginSweep regenerates Figure 8 (safety-margin sweep).
func BenchmarkFigF8_MarginSweep(b *testing.B) { benchExperiment(b, "f8") }

// BenchmarkFigF9_Predictor regenerates Figure 9 (predictor-family
// ablation).
func BenchmarkFigF9_Predictor(b *testing.B) { benchExperiment(b, "f9") }

// BenchmarkFigF10_Networks regenerates Figure 10 (savings across network
// conditions).
func BenchmarkFigF10_Networks(b *testing.B) { benchExperiment(b, "f10") }

// BenchmarkFigF11_Breakdown regenerates Figure 11 (whole-device energy
// breakdown).
func BenchmarkFigF11_Breakdown(b *testing.B) { benchExperiment(b, "f11") }

// BenchmarkFigF12_OracleGap regenerates Figure 12 (gap to the offline
// oracle).
func BenchmarkFigF12_OracleGap(b *testing.B) { benchExperiment(b, "f12") }

// BenchmarkTableT3_Radio regenerates Table 3 (radio coordination: burst
// prefetch × fast dormancy).
func BenchmarkTableT3_Radio(b *testing.B) { benchExperiment(b, "t3") }

// BenchmarkFigF13_ABR regenerates Figure 13 (ABR × governor interaction).
func BenchmarkFigF13_ABR(b *testing.B) { benchExperiment(b, "f13") }

// BenchmarkFigF14_Thermal regenerates Figure 14 (thermal envelope and
// throttling, extension).
func BenchmarkFigF14_Thermal(b *testing.B) { benchExperiment(b, "f14") }

// BenchmarkFigF15_BigLITTLE regenerates Figure 15 (big.LITTLE decode
// placement, extension).
func BenchmarkFigF15_BigLITTLE(b *testing.B) { benchExperiment(b, "f15") }

// BenchmarkFigF16_RaceVsPace regenerates Figure 16 (race-to-idle vs
// pacing under cpuidle, extension).
func BenchmarkFigF16_RaceVsPace(b *testing.B) { benchExperiment(b, "f16") }

// BenchmarkTableT4_BatteryLife regenerates Table 4 (streaming hours per
// charge, extension).
func BenchmarkTableT4_BatteryLife(b *testing.B) { benchExperiment(b, "t4") }

// BenchmarkFigF17_CodecTrade regenerates Figure 17 (H.264 vs HEVC
// CPU/radio trade, extension).
func BenchmarkFigF17_CodecTrade(b *testing.B) { benchExperiment(b, "f17") }

// BenchmarkFigF18_Devices regenerates Figure 18 (device-class
// generality, extension).
func BenchmarkFigF18_Devices(b *testing.B) { benchExperiment(b, "f18") }

// BenchmarkFigF19_LowLatency regenerates Figure 19 (low-latency live
// mode, extension).
func BenchmarkFigF19_LowLatency(b *testing.B) { benchExperiment(b, "f19") }

// BenchmarkTableT5_CellCapacity regenerates Table 5 (multi-user cell
// capacity vs the analytic M/G/N model, extension).
func BenchmarkTableT5_CellCapacity(b *testing.B) { benchExperiment(b, "t5") }

// BenchmarkTableT6_SegmentDuration regenerates Table 6 (segment-duration
// trade, extension).
func BenchmarkTableT6_SegmentDuration(b *testing.B) { benchExperiment(b, "t6") }

// BenchmarkFigF20_SwitchOverhead regenerates Figure 20 (DVFS-switch
// overhead sensitivity, extension).
func BenchmarkFigF20_SwitchOverhead(b *testing.B) { benchExperiment(b, "f20") }

// BenchmarkTableT7_UsageSession regenerates Table 7 (playlist usage
// session: CPU policy × fast dormancy, extension).
func BenchmarkTableT7_UsageSession(b *testing.B) { benchExperiment(b, "t7") }

// BenchmarkFigF21_SMP regenerates Figure 21 (shared-clock SMP /
// consolidation trade, extension).
func BenchmarkFigF21_SMP(b *testing.B) { benchExperiment(b, "f21") }

// BenchmarkRunNoTrace times one 60 s default session with tracing off —
// the baseline for the no-op tracer contract (every emit site is a nil
// check, so this must match the pre-observability cost).
func BenchmarkRunNoTrace(b *testing.B) {
	cfg := experiments.DefaultRunConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunReset times the same 60 s session on one explicitly
// recycled arena with a reused result struct — the campaign/dvfsd steady
// state. The contract is 0 allocs/op: the whole simulation (Reset, event
// loop, result collection) runs out of the arena's pools; bench-gate
// fails the build if an allocation creeps back in.
func BenchmarkRunReset(b *testing.B) {
	cfg := experiments.DefaultRunConfig()
	s := experiments.NewSession()
	var res experiments.RunResult
	if err := s.RunInto(cfg, &res); err != nil { // construct + warm the arena
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunInto(cfg, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunJSONL times the same session while streaming its full
// event trace through the JSONL sink into a reused in-memory buffer —
// the marginal cost of turning tracing on.
func BenchmarkRunJSONL(b *testing.B) {
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		cfg := experiments.DefaultRunConfig()
		sink := trace.NewJSONL(&buf)
		cfg.Tracer = sink
		if _, err := experiments.Run(cfg); err != nil {
			b.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCohortStep times a whole cohort iteration: 256 viewers of a
// 5 s session stepped inside shared virtual-time engines with online
// aggregation. bench-gate holds the per-iteration time and allocation
// budget; the viewers/sec custom metric is informational (benchgate
// skips units it doesn't budget).
func BenchmarkCohortStep(b *testing.B) {
	cfg := cohort.DefaultConfig()
	cfg.Base.Duration = 5 * sim.Second
	cfg.Viewers = 256
	cfg.Rollup = 5 * sim.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := cohort.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != cfg.Viewers {
			b.Fatalf("only %d/%d viewers completed (%s)", res.Completed, cfg.Viewers, res.FirstError)
		}
	}
	b.ReportMetric(float64(cfg.Viewers)*float64(b.N)/b.Elapsed().Seconds(), "viewers/sec")
}

// benchRegistry rebuilds every experiment through the campaign pool at
// the given worker count. The serial/parallel pair measures the
// end-to-end speedup of the parallel campaign runner; output is
// identical at every width, so only wall-clock differs.
func benchRegistry(b *testing.B, workers int) {
	b.Helper()
	ids := experiments.IDs()
	for i := 0; i < b.N; i++ {
		jobs := make([]campaign.Job[experiments.Table], len(ids))
		for j, id := range ids {
			builder, err := experiments.Get(id)
			if err != nil {
				b.Fatal(err)
			}
			jobs[j] = func() (experiments.Table, error) { return builder() }
		}
		outs := campaign.Do(jobs, campaign.Options[experiments.Table]{Workers: workers})
		if _, err := campaign.Values(outs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistrySerial rebuilds all 28 experiments on one worker.
func BenchmarkRegistrySerial(b *testing.B) { benchRegistry(b, 1) }

// BenchmarkRegistryParallel rebuilds all 28 experiments across
// GOMAXPROCS workers (identical output, less wall-clock on multicore).
func BenchmarkRegistryParallel(b *testing.B) { benchRegistry(b, 0) }
