package videodvfs

import (
	"videodvfs/internal/cohort"
)

// Cohort-mode aliases: one shared virtual-time engine stepping many
// viewers at once, with online aggregation instead of per-viewer result
// structs. See RunCohort.
type (
	// CohortConfig describes a cohort: a base per-viewer RunConfig plus
	// population, arrival process, shared-cell contention, and rollup
	// cadence.
	CohortConfig = cohort.Config
	// CohortResult is a cohort's aggregate outcome: population
	// accounting, per-viewer distributions, exact component-energy sums.
	CohortResult = cohort.Result
	// CohortRollup is one periodic aggregate snapshot, the NDJSON frame
	// dvfsd's /v1/cohort streams.
	CohortRollup = cohort.Rollup
	// CohortDist summarizes one metric's distribution over the cohort
	// (exact count/mean/extremes, ±1% quantiles).
	CohortDist = cohort.Dist
	// CohortArrival describes when viewers join relative to cohort start.
	CohortArrival = cohort.Arrival
	// CohortCell is a shared radio sector model: concurrent downloads
	// contend for its capacity.
	CohortCell = cohort.Cell
	// ArrivalKind names an arrival process; see the Arrival* constants.
	ArrivalKind = cohort.ArrivalKind
)

// Arrival processes accepted by CohortArrival.Kind.
const (
	// ArrivalAll starts every viewer at t=0 (the default).
	ArrivalAll = cohort.ArrivalAll
	// ArrivalUniform spreads joins evenly over the window.
	ArrivalUniform = cohort.ArrivalUniform
	// ArrivalBurst front-loads joins exponentially inside the window —
	// the live-event rush.
	ArrivalBurst = cohort.ArrivalBurst
	// ArrivalPoisson draws inter-arrival gaps at RatePerSec.
	ArrivalPoisson = cohort.ArrivalPoisson
)

// CohortOption mutates a CohortConfig under construction; see NewCohort.
type CohortOption func(*CohortConfig)

// NewCohort builds a CohortConfig from defaults (the DefaultSession base
// case, 1000 viewers all joining at t=0, 10 s rollups) plus the given
// options, applied in order:
//
//	cfg := videodvfs.NewCohort(
//		videodvfs.WithViewers(100_000),
//		videodvfs.WithArrivalProcess(videodvfs.CohortArrival{
//			Kind: videodvfs.ArrivalBurst, Window: 30 * videodvfs.Second,
//		}),
//		videodvfs.WithCell(videodvfs.CohortCell{CapacityMbps: 150, Sectors: 64}),
//	)
//
// The result is a plain CohortConfig: fields without options can still
// be set directly before passing it to RunCohort.
func NewCohort(opts ...CohortOption) CohortConfig {
	cfg := cohort.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithViewers sets the cohort size.
func WithViewers(n int) CohortOption { return func(c *CohortConfig) { c.Viewers = n } }

// WithArrivalProcess sets when viewers join relative to cohort start.
func WithArrivalProcess(a CohortArrival) CohortOption {
	return func(c *CohortConfig) { c.Arrival = a }
}

// WithCell makes the cohort's viewers contend for shared sector
// bandwidth instead of each owning a private link.
func WithCell(cell CohortCell) CohortOption {
	return func(c *CohortConfig) { cc := cell; c.Cell = &cc }
}

// WithBase sets the per-viewer session template (compose it with
// NewSession and the per-run With* options).
func WithBase(base RunConfig) CohortOption { return func(c *CohortConfig) { c.Base = base } }

// WithCohortSeed sets the seed the per-viewer seed split derives from
// (0 = the base config's seed).
func WithCohortSeed(seed int64) CohortOption { return func(c *CohortConfig) { c.Seed = seed } }

// WithRollupPeriod sets the virtual-time cadence of aggregate snapshots
// (and of the lockstep barriers the shards synchronize on).
func WithRollupPeriod(d Time) CohortOption { return func(c *CohortConfig) { c.Rollup = d } }

// WithShards overrides the engine-shard count. The shard count is part
// of a cohort's result identity (it fixes float aggregation order), so
// pin it when comparing results across machines; 0 derives it from the
// viewer count.
func WithShards(n int) CohortOption { return func(c *CohortConfig) { c.Shards = n } }

// WithOnRollup streams each periodic aggregate snapshot to fn, called
// from a single goroutine in virtual-time order. A cohort with an
// OnRollup callback is never cache-served.
func WithOnRollup(fn func(CohortRollup)) CohortOption {
	return func(c *CohortConfig) { c.OnRollup = fn }
}

// WithOnViewer observes every finished viewer's full RunResult. The
// pointed-to result is a per-shard scratch REUSED for the next viewer —
// copy anything kept — and fn is called concurrently from shard workers.
// A cohort with an OnViewer callback is never cache-served.
func WithOnViewer(fn func(viewer int, res *RunResult, err error)) CohortOption {
	return func(c *CohortConfig) { c.OnViewer = fn }
}

// RunCohort steps an entire viewer population — up to the
// million-viewer live-event scale — inside shared virtual-time engines
// on one node: per-viewer sessions schedule into shared event slabs,
// stream and device tables are shared immutable state, memory stays
// O(viewers) with no per-viewer result allocation, and aggregation is
// online (streaming quantile sketches). Shards are stepped across
// GOMAXPROCS workers in lockstep rollup barriers with deterministic
// seed-splitting, so the CohortResult and the OnRollup stream are
// byte-stable at any worker count.
//
// Per-viewer failures are counted in the result, not fatal; an invalid
// config returns an error matching ErrInvalidConfig.
func RunCohort(cfg CohortConfig) (CohortResult, error) { return cohort.Run(cfg) }

// CohortKey returns the hex SHA-256 content address of a cohort's
// canonical serialization — the identity a result cache stores cohorts
// under, consistent with ConfigKey. Two cohort configs share a key iff
// RunCohort would produce the same result for both. The second return
// is false for uncacheable cohorts: OnViewer/OnRollup callbacks, or an
// uncacheable base (frame trace, sampling, tracer, strict).
func CohortKey(cfg CohortConfig) (string, bool) { return cohort.Key(cfg) }

// DefaultCohort returns the default cohort: the DefaultSession base
// case, 1000 viewers all joining at t=0, 10 s rollups.
func DefaultCohort() CohortConfig { return cohort.DefaultConfig() }

// CohortArrivalKinds lists the accepted arrival processes.
func CohortArrivalKinds() []ArrivalKind { return cohort.ArrivalKinds() }
