GO ?= go

.PHONY: check vet build test golden trace-golden bench

# The full gate: vet, build, race-enabled tests (includes the golden
# regression suite and the parallel/serial equivalence test).
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Regenerate the pinned experiment outputs after an intended model
# change, then review the diff like any other code change.
golden:
	$(GO) test ./internal/experiments -run TestGoldenTables -update

# Regenerate the pinned event-trace of the golden scenario (DESIGN.md §7)
# after an intended behavior or schema change.
trace-golden:
	$(GO) test ./internal/trace -run TestGoldenTrace -update

# Rebuild the whole evaluation through the campaign pool, serial vs
# parallel.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRegistry' -benchtime 3x .
