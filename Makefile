GO ?= go

.PHONY: check vet build test alloc-budget fleet-e2e stress-e2e fuzz-short strict golden trace-golden bench bench-compare bench-baseline bench-gate profile

# The full gate: vet, build, race-enabled tests (includes the golden
# regression suite and the parallel/serial equivalence test), the
# zero-allocation budget for the steady-state run loop, and the fleet
# and wire-level stress end-to-end batteries.
check: vet build test alloc-budget fleet-e2e stress-e2e

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# The hot-path memory discipline gate (DESIGN.md §8): advancing the
# untraced simulation in steady state must allocate nothing.
alloc-budget:
	$(GO) test ./internal/experiments -run TestRunLoopAllocBudget -count 1
	$(GO) test ./internal/sim -run TestEngineScheduleFireAllocFree -count 1

# The fleet end-to-end battery, -count 1 so it always re-executes: a
# dvfsctl controller over real httptest dvfsd workers (byte-identical
# sweep/cohort merges, mid-sweep worker kill, 429 carry-through, probe
# revival), the worker-side cohort-part seam, the streaming-disconnect
# pool drain, and the dvfsctl daemon smoke test.
fleet-e2e:
	$(GO) test -race -count 1 ./internal/fleet ./cmd/dvfsctl
	$(GO) test -race -count 1 ./internal/server -run 'TestFleet|TestCohortPart|TestStream|TestRetryAfterSeconds'

# The wire-level stress battery, -count 1 so it always re-executes: the
# shaped origin + live player-driver over real sockets, the sim-vs-real
# equivalence and metamorphic replay checks, the ≥100-concurrency hammer
# against a real dvfsd handler, and the dvfsstress/dvfsim CLI plumbing
# (DESIGN.md §14).
stress-e2e:
	$(GO) test -race -count 1 ./internal/stress ./cmd/dvfsstress
	$(GO) test -race -count 1 ./cmd/dvfsim -run 'TestBWTraceFileReplay'

# Ten seconds of coverage-guided fuzzing per untrusted-input parser
# (checked-in seeds live under */testdata/fuzz). Native fuzzing allows
# one -fuzz target per invocation, hence the separate runs.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test ./internal/experiments -run '^$$' -fuzz '^FuzzParseGovernorID$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiments -run '^$$' -fuzz '^FuzzParseABRID$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiments -run '^$$' -fuzz '^FuzzRunConfigValidate$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiments -run '^$$' -fuzz '^FuzzRunConfigInvariants$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiments -run '^$$' -fuzz '^FuzzSessionReset$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/player -run '^$$' -fuzz '^FuzzForecastSchedule$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzDecodeRunRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netsim -run '^$$' -fuzz '^FuzzTraceDecode$$' -fuzztime $(FUZZTIME)

# Rebuild the full 30-experiment evaluation with the invariant checker
# riding every simulation (DESIGN.md §10). Exits non-zero on the first
# conservation-law breach; output is discarded — the audit is the point.
strict:
	$(GO) run ./cmd/exprun -strict > /dev/null
	@echo "strict: all experiments passed with invariants armed"

# Regenerate the pinned experiment outputs after an intended model
# change, then review the diff like any other code change.
golden:
	$(GO) test ./internal/experiments -run TestGoldenTables -update

# Regenerate the pinned event-trace of the golden scenario (DESIGN.md §7)
# after an intended behavior or schema change.
trace-golden:
	$(GO) test ./internal/trace -run TestGoldenTrace -update

# Rebuild the whole evaluation through the campaign pool, serial vs
# parallel.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRegistry' -benchtime 3x .

# The pinned hot-path benchmarks the gate and the baseline agree on.
# 2 s samples keep the best-of-run minimum (what benchgate compares)
# inside ~3% run-to-run on a shared box; 1 s samples do not.
GATE_BENCH = BenchmarkRunNoTrace$$|BenchmarkRunReset$$|BenchmarkCohortStep$$
GATE_FLAGS = -benchmem -benchtime 2s -count 5

# Re-pin the hot-path baseline (bench/baseline.txt). Run on the seed (or
# after an intended perf change), then commit the new numbers.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(GATE_BENCH)' $(GATE_FLAGS) . | tee bench/baseline.txt

# Compare the current hot path against the pinned baseline. Uses
# benchstat when installed; otherwise prints both runs side by side.
bench-compare:
	@$(GO) test -run '^$$' -bench '$(GATE_BENCH)' $(GATE_FLAGS) . > bench/current.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench/baseline.txt bench/current.txt; \
	else \
		echo "== baseline (bench/baseline.txt) =="; grep Benchmark bench/baseline.txt; \
		echo "== current (bench/current.txt) =="; grep Benchmark bench/current.txt; \
	fi

# The CI perf gate: run the pinned benchmarks and fail on >5% best-of-run time
# regression (same-machine only) or ANY allocs/op / B/op increase against
# bench/baseline.txt. Emits bench/BENCH_6.json (runs/sec, ns/op,
# allocs/op) for the perf dashboard. No benchstat needed.
bench-gate:
	$(GO) test -run '^$$' -bench '$(GATE_BENCH)' $(GATE_FLAGS) . | tee bench/current.txt
	$(GO) run ./cmd/benchgate -baseline bench/baseline.txt -current bench/current.txt -out bench/BENCH_6.json

# Profile the full 30-experiment campaign; inspect with
#   go tool pprof prof/exprun.cpu  (or .mem)
profile:
	@mkdir -p prof
	$(GO) run ./cmd/exprun -cpuprofile prof/exprun.cpu -memprofile prof/exprun.mem > prof/exprun.out
	@echo "profiles in prof/: inspect with 'go tool pprof prof/exprun.cpu'"
