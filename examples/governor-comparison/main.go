// Governor comparison: run every governor (stock baselines, the
// energy-aware policy, and the offline oracle) on the same workload and
// print an energy/QoE table per resolution.
//
//	go run ./examples/governor-comparison
package main

import (
	"fmt"
	"os"

	"videodvfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "governor-comparison:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, res := range []string{"480p", "720p", "1080p"} {
		rung, err := videodvfs.ResolutionByName(res)
		if err != nil {
			return err
		}
		fmt.Printf("\n== %s sports, 60 s ==\n", res)
		fmt.Printf("%-12s %9s %9s %7s %8s %9s\n",
			"governor", "cpu (J)", "mean GHz", "drops", "drop %", "startup s")
		for _, gov := range videodvfs.Governors() {
			cfg := videodvfs.NewSession(
				videodvfs.WithGovernor(gov),
				videodvfs.WithRung(rung),
			)
			out, err := videodvfs.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", gov, res, err)
			}
			fmt.Printf("%-12s %9.1f %9.2f %7d %7.1f%% %9.2f\n",
				gov, out.CPUJ, out.MeanFreqGHz,
				out.QoE.DroppedFrames, out.QoE.DropRate()*100,
				out.QoE.StartupDelay.Seconds())
		}
	}
	return nil
}
