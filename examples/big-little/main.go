// big.LITTLE: compare running the energy-aware policy on the big cluster
// alone against the cluster-aware extension that places decode work on the
// little cluster whenever it can sustain it.
//
//	go run ./examples/big-little
package main

import (
	"fmt"
	"os"

	"videodvfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "big-little:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("60 s sports on flagship-big + efficient-little hardware")
	fmt.Printf("%-10s %-10s %8s %9s %9s %13s %7s\n",
		"res", "policy", "big (J)", "little(J)", "total (J)", "little share", "drops")
	for _, name := range []string{"480p", "720p", "1080p"} {
		res, err := videodvfs.ResolutionByName(name)
		if err != nil {
			return err
		}
		for _, aware := range []bool{false, true} {
			out, err := videodvfs.RunCluster(res, 60*videodvfs.Second, 1, aware)
			if err != nil {
				return err
			}
			policy := "big-only"
			if aware {
				policy = "cluster"
			}
			fmt.Printf("%-10s %-10s %8.1f %9.1f %9.1f %12.1f%% %7d\n",
				name, policy, out.BigJ, out.LittleJ, out.TotalJ(),
				out.LittleShare*100, out.QoE.DroppedFrames)
		}
	}
	fmt.Println("\nthe little cluster's lower energy/cycle buys another ~20–27% at ≤720p")
	return nil
}
