// Quickstart: run one streaming session under the energy-aware governor
// and under stock ondemand, and compare energy and QoE.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"videodvfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 60 seconds of 720p sports over a steady 8 Mbps link on a
	// flagship-class device.
	baseline, err := videodvfs.Run(videodvfs.NewSession(
		videodvfs.WithGovernor(videodvfs.GovOndemand),
	))
	if err != nil {
		return err
	}

	ours, err := videodvfs.Run(videodvfs.NewSession(
		videodvfs.WithGovernor(videodvfs.GovEnergyAware),
	))
	if err != nil {
		return err
	}

	fmt.Println("720p sports, 60 s, flagship device, 8 Mbps link")
	fmt.Printf("%-12s %10s %10s %8s %9s\n", "governor", "cpu (J)", "mean GHz", "drops", "rebuffers")
	for _, r := range []videodvfs.RunResult{baseline, ours} {
		fmt.Printf("%-12s %10.1f %10.2f %8d %9d\n",
			r.Governor, r.CPUJ, r.MeanFreqGHz, r.QoE.DroppedFrames, r.QoE.RebufferCount)
	}
	saving := (baseline.CPUJ - ours.CPUJ) / baseline.CPUJ * 100
	fmt.Printf("\nenergy-aware saves %.1f%% CPU energy with identical QoE\n", saving)
	return nil
}
