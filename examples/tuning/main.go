// Tuning: sweep the energy-aware policy's two main knobs — the safety
// margin and the decode-ahead buffer depth — to see the energy/QoE
// trade-off each controls.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"os"

	"videodvfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tuning:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("safety margin sweep (720p sports, 60 s, 8-frame buffer)")
	fmt.Printf("%8s %9s %7s\n", "margin", "cpu (J)", "drops")
	for _, margin := range []float64{0, 0.05, 0.15, 0.30, 0.50} {
		pol := videodvfs.DefaultPolicy()
		pol.Margin = margin
		cfg := videodvfs.NewSession(videodvfs.WithPolicy(pol))
		out, err := videodvfs.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%8.2f %9.1f %7d\n", margin, out.CPUJ, out.QoE.DroppedFrames)
	}

	fmt.Println("\ndecode-ahead buffer sweep (margin 0.15)")
	fmt.Printf("%8s %9s %7s\n", "frames", "cpu (J)", "drops")
	for _, depth := range []int{1, 2, 4, 8, 16} {
		// Fields without a dedicated option are set directly on the
		// returned config.
		cfg := videodvfs.NewSession()
		cfg.DecodedQueueCap = depth
		out, err := videodvfs.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %9.1f %7d\n", depth, out.CPUJ, out.QoE.DroppedFrames)
	}
	fmt.Println("\nthe knee sits near margin ≈ 0.15 and depth ≈ 8: drops vanish for a few joules")
	return nil
}
