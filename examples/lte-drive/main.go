// LTE drive: stream 2 minutes of sports over a Markov-modulated LTE link
// with buffer-based ABR, comparing the stock interactive governor against
// the energy-aware policy — the closest scenario to real phone usage. The
// report includes the whole-device energy breakdown (CPU + radio +
// display) and the ABR behaviour.
//
//	go run ./examples/lte-drive
package main

import (
	"fmt"
	"os"

	"videodvfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lte-drive:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("120 s sports over variable LTE, buffer-based ABR (BBA)")
	fmt.Printf("%-12s %8s %8s %9s %8s %9s %8s %8s\n",
		"governor", "cpu (J)", "radio(J)", "total(J)", "Mbps", "switches", "rebuf s", "drops")
	for _, gov := range []videodvfs.Governor{
		videodvfs.GovInteractive, videodvfs.GovOndemand, videodvfs.GovEnergyAware,
	} {
		cfg := videodvfs.NewSession(
			videodvfs.WithGovernor(gov),
			videodvfs.WithNet(videodvfs.NetLTE),
			videodvfs.WithABR(videodvfs.ABRBBA),
			videodvfs.WithDuration(120*videodvfs.Second),
		)
		out, err := videodvfs.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", gov, err)
		}
		fmt.Printf("%-12s %8.1f %8.1f %9.1f %8.2f %9d %8.2f %8d\n",
			gov, out.CPUJ, out.RadioJ, out.TotalJ(),
			out.QoE.MeanRungBps/1e6, out.QoE.RungSwitches,
			out.QoE.RebufferTime.Seconds(), out.QoE.DroppedFrames)
	}
	fmt.Println("\nsavings persist under ABR on a variable link; stalls are network-bound")
	return nil
}
