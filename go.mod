module videodvfs

go 1.22
