package videodvfs_test

import (
	"errors"
	"fmt"

	"videodvfs"
)

// ExampleRun shows the minimal session: the base case under the
// energy-aware governor. Output is deterministic because all randomness
// derives from the configured seed.
func ExampleRun() {
	cfg := videodvfs.NewSession(
		videodvfs.WithDuration(20 * videodvfs.Second),
	)
	res, err := videodvfs.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("governor=%s completed=%v drops=%d rebuffers=%d\n",
		res.Governor, res.QoE.Completed, res.QoE.DroppedFrames, res.QoE.RebufferCount)
	fmt.Printf("cpu energy positive: %v\n", res.CPUJ > 0)
	// Output:
	// governor=energyaware completed=true drops=0 rebuffers=0
	// cpu energy positive: true
}

// ExampleRun_comparison compares the policy against a stock governor on
// identical inputs.
func ExampleRun_comparison() {
	ours := videodvfs.NewSession(
		videodvfs.WithDuration(20*videodvfs.Second),
		videodvfs.WithGovernor(videodvfs.GovEnergyAware),
	)
	stock := videodvfs.NewSession(
		videodvfs.WithDuration(20*videodvfs.Second),
		videodvfs.WithGovernor(videodvfs.GovOndemand),
	)

	a, err := videodvfs.Run(ours)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	b, err := videodvfs.Run(stock)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("saves energy: %v, same drops: %v\n",
		a.CPUJ < b.CPUJ, a.QoE.DroppedFrames == b.QoE.DroppedFrames)
	// Output:
	// saves energy: true, same drops: true
}

// ExampleRunConfig_Validate shows checking a session before running it:
// every rejection wraps ErrInvalidConfig, with the parse-level sentinel
// still distinguishable underneath.
func ExampleRunConfig_Validate() {
	cfg := videodvfs.NewSession(videodvfs.WithGovernor("warpdrive"))
	err := cfg.Validate()
	fmt.Println("invalid config:", errors.Is(err, videodvfs.ErrInvalidConfig))
	fmt.Println("unknown governor:", errors.Is(err, videodvfs.ErrUnknownGovernor))
	// Output:
	// invalid config: true
	// unknown governor: true
}

// ExampleConfigKey shows the content-addressed identity used by the
// dvfsd result cache: equal configs share a key, any knob change moves
// it.
func ExampleConfigKey() {
	a, _ := videodvfs.ConfigKey(videodvfs.DefaultSession())
	b, _ := videodvfs.ConfigKey(videodvfs.NewSession())
	c, _ := videodvfs.ConfigKey(videodvfs.NewSession(videodvfs.WithSeed(2)))
	fmt.Println("equal configs share a key:", a == b)
	fmt.Println("seed changes the key:", a != c)
	// Output:
	// equal configs share a key: true
	// seed changes the key: true
}

// ExampleExperiment regenerates one of the evaluation's tables.
func ExampleExperiment() {
	tab, err := videodvfs.Experiment("t1")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("id=%s columns=%d rows>0=%v\n", tab.ID, len(tab.Header), len(tab.Rows) > 0)
	// Output:
	// id=t1 columns=6 rows>0=true
}
