// Package videodvfs is an energy-aware CPU frequency scaling (DVFS) policy
// for mobile video streaming, together with the full simulation substrate
// needed to evaluate it: a mobile SoC CPU model with OPP tables and a
// calibrated power curve, faithful re-implementations of the Linux cpufreq
// governors, a synthetic-but-calibrated video decode workload, a streaming
// player with ABR, and a 3G/LTE radio model with RRC state power
// accounting.
//
// The headline API is Run: configure a streaming session (device,
// governor, content, network) and get back energy and QoE. Experiment
// regenerates any table or figure of the evaluation.
//
//	res, err := videodvfs.Run(videodvfs.DefaultSession())
//	if err != nil { ... }
//	fmt.Printf("CPU energy: %.1f J, dropped: %d\n", res.CPUJ, res.QoE.DroppedFrames)
//
// The policy itself lives in internal/core and plugs into the player via
// session hooks; see DESIGN.md for the architecture and EXPERIMENTS.md for
// the reproduced evaluation.
package videodvfs

import (
	"videodvfs/internal/core"
	"videodvfs/internal/cpu"
	"videodvfs/internal/experiments"
	"videodvfs/internal/governor"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// Aliases exposing the library's data types through the public package.
type (
	// Device is a CPU model: OPP table, power curve, DVFS latency.
	Device = cpu.Model
	// OPP is one CPU operating performance point.
	OPP = cpu.OPP
	// PolicyConfig tunes the energy-aware governor.
	PolicyConfig = core.Config
	// Title is a video content profile.
	Title = video.Title
	// Resolution is a frame-size preset.
	Resolution = video.Resolution
	// QoE is the player's quality-of-experience report.
	QoE = player.Metrics
	// RunConfig describes one streaming simulation.
	RunConfig = experiments.RunConfig
	// RunResult is the outcome of one streaming simulation.
	RunResult = experiments.RunResult
	// Table is a reproduced table or figure.
	Table = experiments.Table
	// NetKind selects a bandwidth profile.
	NetKind = experiments.NetKind
	// Time is a virtual-time instant or span in seconds.
	Time = sim.Time
	// ClusterResult is the outcome of a big.LITTLE session.
	ClusterResult = experiments.ClusterResult
	// BatchOutcome pairs one RunConfig with its result or error in a
	// batch.
	BatchOutcome = experiments.Outcome
	// Sweep expands a config template over axis lists and seed sets.
	Sweep = experiments.Sweep
	// AxisStat aggregates one metric over the runs sharing an axis value.
	AxisStat = experiments.AxisStat
)

// Network profiles.
const (
	// NetWiFi is a steady 30 Mbps link.
	NetWiFi = experiments.NetWiFi
	// NetLTE is a Markov-modulated LTE trace.
	NetLTE = experiments.NetLTE
	// NetUMTS is a Markov-modulated 3G trace.
	NetUMTS = experiments.NetUMTS
	// NetConst8 is a constant 8 Mbps link.
	NetConst8 = experiments.NetConst8
)

// Common time spans.
const (
	// Millisecond is one virtual millisecond.
	Millisecond = sim.Millisecond
	// Second is one virtual second.
	Second = sim.Second
	// Minute is one virtual minute.
	Minute = sim.Minute
)

// Devices returns the built-in CPU models (flagship, midrange, efficient).
func Devices() []Device { return cpu.Devices() }

// DeviceByName returns a built-in CPU model.
func DeviceByName(name string) (Device, error) { return cpu.DeviceByName(name) }

// Titles returns the built-in content profiles (news, sports, animation).
func Titles() []Title { return video.Titles() }

// TitleByName returns a built-in content profile.
func TitleByName(name string) (Title, error) { return video.TitleByName(name) }

// Resolutions returns the standard ladder (360p–1080p).
func Resolutions() []Resolution { return video.Resolutions() }

// ResolutionByName returns a standard resolution.
func ResolutionByName(name string) (Resolution, error) { return video.ResolutionByName(name) }

// GovernorNames returns every governor Run accepts: the stock baselines
// plus "energyaware" and "oracle".
func GovernorNames() []string {
	return append(governor.BaselineNames(), "energyaware", "oracle")
}

// DefaultPolicy returns the paper-default tuning of the energy-aware
// governor.
func DefaultPolicy() PolicyConfig { return core.DefaultConfig() }

// DefaultSession returns the evaluation's base case: flagship device,
// energy-aware governor, 720p sports over a constant 8 Mbps link, 60 s.
func DefaultSession() RunConfig { return experiments.DefaultRunConfig() }

// Run executes one streaming simulation.
func Run(cfg RunConfig) (RunResult, error) { return experiments.Run(cfg) }

// ErrHorizonExceeded reports a session still incomplete when the
// simulation horizon cut the run off; distinguish it with errors.Is.
var ErrHorizonExceeded = experiments.ErrHorizonExceeded

// RunAll executes configs across a worker pool (workers ≤ 0 =
// GOMAXPROCS) and returns outcomes in input order. Runs are independent
// and seed-deterministic, so results are bit-identical for any worker
// count; a failing or panicking run marks only its own slot.
func RunAll(cfgs []RunConfig, workers int) []BatchOutcome {
	return experiments.RunAll(cfgs, workers)
}

// SeedRange returns the seeds lo..hi inclusive, for Sweep.Seeds.
func SeedRange(lo, hi int64) []int64 { return experiments.SeedRange(lo, hi) }

// RunCluster simulates a streaming session on a big.LITTLE device
// (flagship big + efficient little). With clusterAware set, the
// cluster-extension governor places decode work across both domains;
// otherwise the single-core policy drives the big cluster only.
func RunCluster(res Resolution, dur Time, seed int64, clusterAware bool) (ClusterResult, error) {
	return experiments.RunCluster(res, dur, seed, clusterAware)
}

// ExperimentIDs lists the reproducible tables and figures in report order.
func ExperimentIDs() []string { return experiments.IDs() }

// Experiment regenerates one table or figure by ID (t1, f1 … f13, t2, t3).
func Experiment(id string) (Table, error) {
	b, err := experiments.Get(id)
	if err != nil {
		return Table{}, err
	}
	return b()
}
