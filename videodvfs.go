// Package videodvfs is an energy-aware CPU frequency scaling (DVFS) policy
// for mobile video streaming, together with the full simulation substrate
// needed to evaluate it: a mobile SoC CPU model with OPP tables and a
// calibrated power curve, faithful re-implementations of the Linux cpufreq
// governors, a synthetic-but-calibrated video decode workload, a streaming
// player with ABR, and a 3G/LTE radio model with RRC state power
// accounting.
//
// The headline API is Run: configure a streaming session (device,
// governor, content, network) and get back energy and QoE. Experiment
// regenerates any table or figure of the evaluation.
//
//	res, err := videodvfs.Run(videodvfs.DefaultSession())
//	if err != nil { ... }
//	fmt.Printf("CPU energy: %.1f J, dropped: %d\n", res.CPUJ, res.QoE.DroppedFrames)
//
// The policy itself lives in internal/core and plugs into the player via
// session hooks; see DESIGN.md for the architecture and EXPERIMENTS.md for
// the reproduced evaluation.
package videodvfs

import (
	"io"

	"videodvfs/internal/core"
	"videodvfs/internal/cpu"
	"videodvfs/internal/experiments"
	"videodvfs/internal/invariant"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// Aliases exposing the library's data types through the public package.
type (
	// Device is a CPU model: OPP table, power curve, DVFS latency.
	Device = cpu.Model
	// OPP is one CPU operating performance point.
	OPP = cpu.OPP
	// PolicyConfig tunes the energy-aware governor.
	PolicyConfig = core.Config
	// Title is a video content profile.
	Title = video.Title
	// Resolution is a frame-size preset.
	Resolution = video.Resolution
	// QoE is the player's quality-of-experience report.
	QoE = player.Metrics
	// RunConfig describes one streaming simulation.
	RunConfig = experiments.RunConfig
	// RunResult is the outcome of one streaming simulation.
	RunResult = experiments.RunResult
	// Table is a reproduced table or figure.
	Table = experiments.Table
	// NetKind selects a bandwidth profile.
	NetKind = experiments.NetKind
	// Time is a virtual-time instant or span in seconds.
	Time = sim.Time
	// ClusterResult is the outcome of a big.LITTLE session.
	ClusterResult = experiments.ClusterResult
	// BatchOutcome pairs one RunConfig with its result or error in a
	// batch.
	BatchOutcome = experiments.Outcome
	// Sweep expands a config template over axis lists and seed sets.
	Sweep = experiments.Sweep
	// AxisStat aggregates one metric over the runs sharing an axis value.
	AxisStat = experiments.AxisStat
	// Stream is an exact frame-by-frame video trace (RunConfig.Trace).
	Stream = video.Stream
	// BWTrace is a recorded bandwidth trace (RunConfig.BWTrace) replayed
	// when Net is NetTrace; record one with the dvfsstress player-driver
	// and load it with ReadBWTrace.
	BWTrace = netsim.Trace
	// BWSample is one contiguous delivery window of a BWTrace.
	BWSample = netsim.TraceSample
	// Governor is a typed governor identifier; see ParseGovernor.
	Governor = experiments.GovernorID
	// ForecastKind is a typed bandwidth-forecast identifier; see
	// ParseForecast.
	ForecastKind = experiments.ForecastKind
	// ABR is a typed adaptation-algorithm identifier; see ParseABR.
	ABR = experiments.ABRID
	// Tracer receives a run's structured event stream; see RunConfig.Tracer
	// and the sink constructors NewJSONLTracer / NewCSVTracer.
	Tracer = trace.Tracer
	// TraceSink is a Tracer bound to an output that must be closed after
	// the run to flush buffered events.
	TraceSink = trace.Sink
	// TraceCollector accumulates an event stream into TraceMetrics
	// in-memory; see NewTraceCollector.
	TraceCollector = trace.Collector
	// TraceMetrics is the per-run rollup a TraceCollector produces.
	TraceMetrics = trace.Metrics
	// Violation is a broken simulator invariant reported by a strict run
	// (WithInvariants / RunConfig.Strict): the rule, the virtual time, and
	// the observed vs expected values. Unwrap with errors.As.
	Violation = invariant.Violation
)

// Governor identifiers accepted by RunConfig.Governor.
const (
	// GovPerformance pins the top OPP.
	GovPerformance = experiments.GovPerformance
	// GovPowersave pins the bottom OPP.
	GovPowersave = experiments.GovPowersave
	// GovOndemand is the sampling-based stock default.
	GovOndemand = experiments.GovOndemand
	// GovConservative is ondemand with gradual steps.
	GovConservative = experiments.GovConservative
	// GovInteractive is the Android-era touch-boost governor.
	GovInteractive = experiments.GovInteractive
	// GovSchedutil is the scheduler-utilization governor.
	GovSchedutil = experiments.GovSchedutil
	// GovEnergyAware is the paper's video-aware policy.
	GovEnergyAware = experiments.GovEnergyAware
	// GovOracle is the offline-optimal reference.
	GovOracle = experiments.GovOracle
)

// ABR identifiers accepted by RunConfig.ABR.
const (
	// ABRFixed pins one rendition (RunConfig.Rung).
	ABRFixed = experiments.ABRFixed
	// ABRRate is the classic throughput-rule algorithm.
	ABRRate = experiments.ABRRate
	// ABRBBA is the buffer-based BBA-0 style algorithm.
	ABRBBA = experiments.ABRBBA
)

// Network profiles.
const (
	// NetWiFi is a steady 30 Mbps link.
	NetWiFi = experiments.NetWiFi
	// NetLTE is a Markov-modulated LTE trace.
	NetLTE = experiments.NetLTE
	// NetUMTS is a Markov-modulated 3G trace.
	NetUMTS = experiments.NetUMTS
	// NetConst8 is a constant 8 Mbps link.
	NetConst8 = experiments.NetConst8
	// NetTrace replays a recorded bandwidth trace (RunConfig.BWTrace).
	NetTrace = experiments.NetTrace
)

// Bandwidth-forecast kinds accepted by RunConfig.Forecast; requires a
// low-water mark (WithLowWater / RunConfig.LowWaterSec).
const (
	// ForecastNone disables forecasting: the player keeps the reactive
	// low-water burst trigger.
	ForecastNone = experiments.ForecastNone
	// ForecastOracle is the perfect forecast derived from the run's own
	// bandwidth model.
	ForecastOracle = experiments.ForecastOracle
	// ForecastNoisy is the oracle degraded by seeded multiplicative error
	// (RunConfig.ForecastRelErr); deterministic, so still cacheable.
	ForecastNoisy = experiments.ForecastNoisy
)

// Common time spans.
const (
	// Millisecond is one virtual millisecond.
	Millisecond = sim.Millisecond
	// Second is one virtual second.
	Second = sim.Second
	// Minute is one virtual minute.
	Minute = sim.Minute
)

// Devices returns the built-in CPU models (flagship, midrange, efficient).
func Devices() []Device { return cpu.Devices() }

// DeviceByName returns a built-in CPU model.
func DeviceByName(name string) (Device, error) { return cpu.DeviceByName(name) }

// Titles returns the built-in content profiles (news, sports, animation).
func Titles() []Title { return video.Titles() }

// TitleByName returns a built-in content profile.
func TitleByName(name string) (Title, error) { return video.TitleByName(name) }

// Resolutions returns the standard ladder (360p–1080p).
func Resolutions() []Resolution { return video.Resolutions() }

// ResolutionByName returns a standard resolution.
func ResolutionByName(name string) (Resolution, error) { return video.ResolutionByName(name) }

// Governors returns every governor Run accepts, in report order: the
// stock baselines followed by GovEnergyAware and GovOracle.
func Governors() []Governor { return experiments.GovernorIDs() }

// GovernorNames returns Governors as plain strings, for CLI usage lines
// and flag validation messages.
func GovernorNames() []string {
	ids := experiments.GovernorIDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// ABRs returns every adaptation algorithm Run accepts, in report order.
func ABRs() []ABR { return experiments.ABRIDs() }

// ParseGovernor validates a governor name from an untrusted source
// (flags, config files). Unknown names return an error matching
// ErrUnknownGovernor.
func ParseGovernor(name string) (Governor, error) { return experiments.ParseGovernorID(name) }

// ParseABR validates an ABR name from an untrusted source. The empty
// string parses as ABRFixed; unknown names return an error matching
// ErrUnknownABR.
func ParseABR(name string) (ABR, error) { return experiments.ParseABRID(name) }

// Nets returns every network profile Run accepts, in report order.
func Nets() []NetKind { return experiments.NetKinds() }

// ParseNet validates a network-profile name from an untrusted source.
// The empty string parses as NetWiFi (Run's default); unknown names
// return an error matching ErrUnknownNet.
func ParseNet(name string) (NetKind, error) { return experiments.ParseNetKind(name) }

// Forecasts returns every non-empty forecast kind Run accepts, in report
// order.
func Forecasts() []ForecastKind { return experiments.ForecastKinds() }

// ParseForecast validates a forecast-kind name from an untrusted source.
// The empty string parses as ForecastNone (forecasting off, Run's
// default); unknown names return an error matching ErrUnknownForecast.
func ParseForecast(name string) (ForecastKind, error) { return experiments.ParseForecastKind(name) }

// Typed sentinel errors; distinguish with errors.Is.
var (
	// ErrUnknownGovernor reports a governor name outside Governors().
	ErrUnknownGovernor = experiments.ErrUnknownGovernor
	// ErrUnknownABR reports an ABR name outside ABRs().
	ErrUnknownABR = experiments.ErrUnknownABR
	// ErrUnknownNet reports a network-profile name outside Nets().
	ErrUnknownNet = experiments.ErrUnknownNet
	// ErrUnknownForecast reports a forecast-kind name outside Forecasts().
	ErrUnknownForecast = experiments.ErrUnknownForecast
	// ErrInvalidConfig reports a RunConfig rejected by validation before
	// any simulation state was built.
	ErrInvalidConfig = experiments.ErrInvalidConfig
)

// ReadBWTrace decodes a recorded bandwidth trace from its JSONL wire
// form (dvfsstress play -out). The result validates before returning.
func ReadBWTrace(r io.Reader) (BWTrace, error) { return netsim.ReadTrace(r) }

// WriteBWTrace encodes a bandwidth trace in the canonical JSONL form:
// encoding is byte-stable, so equal traces produce equal files.
func WriteBWTrace(w io.Writer, t BWTrace) error { return netsim.WriteTrace(w, t) }

// NewJSONLTracer returns a tracer serializing every event as one JSON
// line on w, in a fixed key order so same-seed runs produce byte-identical
// output. Close it after the run to flush.
func NewJSONLTracer(w io.Writer) TraceSink { return trace.NewJSONL(w) }

// NewCSVTracer returns a tracer serializing events to a single flat CSV
// table on w (one header; event-inapplicable cells left empty). Close it
// after the run to flush.
func NewCSVTracer(w io.Writer) TraceSink { return trace.NewCSV(w) }

// NewTraceCollector returns an in-memory tracer that rolls the event
// stream up into TraceMetrics: per-OPP residency, decode-latency
// histogram, prediction-error quantiles, and an energy-by-component
// timeline. Call Finalize(res.SimEnd) after the run.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// DefaultPolicy returns the paper-default tuning of the energy-aware
// governor.
func DefaultPolicy() PolicyConfig { return core.DefaultConfig() }

// DefaultSession returns the evaluation's base case: flagship device,
// energy-aware governor, 720p sports over a constant 8 Mbps link, 60 s.
func DefaultSession() RunConfig { return experiments.DefaultRunConfig() }

// Run executes one streaming simulation. Internally it draws a recycled
// simulation arena from a pool (see Session), so back-to-back runs skip
// reconstruction; results are bit-identical to a fresh simulator's.
func Run(cfg RunConfig) (RunResult, error) { return experiments.Run(cfg) }

// Arena is a reusable simulation arena: one full simulator instance
// whose parts are rewound in place between runs instead of being
// reconstructed. A caller that holds an Arena and a RunResult across
// calls — a sweep loop, a daemon worker — runs allocation-free after the
// first two uses, while producing results and traces byte-identical to a
// fresh simulator's. An Arena is single-goroutine. (Internally this is
// experiments.Session; the facade names it Arena because NewSession here
// is the RunConfig builder.)
type Arena = experiments.Session

// NewArena returns an empty arena; the simulator is built on the first
// RunInto and recycled by every later one.
func NewArena() *Arena { return experiments.NewSession() }

// SetSessionReuse toggles the arena pool behind Run and returns the
// previous setting. On by default; switching it off makes every Run
// construct a fresh simulator (the reference mode the differential test
// layer compares recycled runs against).
func SetSessionReuse(on bool) (prev bool) { return experiments.SetSessionReuse(on) }

// ErrHorizonExceeded reports a session still incomplete when the
// simulation horizon cut the run off; distinguish it with errors.Is.
var ErrHorizonExceeded = experiments.ErrHorizonExceeded

// ErrCanceled reports a run (or cohort) abandoned through its Cancel
// channel before completion; distinguish it with errors.Is.
var ErrCanceled = experiments.ErrCanceled

// RunAll executes configs across a worker pool (workers ≤ 0 =
// GOMAXPROCS) and returns outcomes in input order. Runs are independent
// and seed-deterministic, so results are bit-identical for any worker
// count; a failing or panicking run marks only its own slot.
func RunAll(cfgs []RunConfig, workers int) []BatchOutcome {
	return experiments.RunAll(cfgs, workers)
}

// SeedRange returns the seeds lo..hi inclusive, for Sweep.Seeds.
func SeedRange(lo, hi int64) []int64 { return experiments.SeedRange(lo, hi) }

// RunCluster simulates a streaming session on a big.LITTLE device
// (flagship big + efficient little). With clusterAware set, the
// cluster-extension governor places decode work across both domains;
// otherwise the single-core policy drives the big cluster only.
func RunCluster(res Resolution, dur Time, seed int64, clusterAware bool) (ClusterResult, error) {
	return experiments.RunCluster(res, dur, seed, clusterAware)
}

// ConfigKey returns the hex SHA-256 content address of cfg's canonical
// serialization — the identity dvfsd's result cache stores runs under
// (DESIGN.md §9). Two configs share a key iff Run would produce the same
// result for both. The second return is false for uncacheable configs
// (a frame Trace, an OnSample callback, or a Tracer attached).
func ConfigKey(cfg RunConfig) (string, bool) { return experiments.ConfigKey(cfg) }

// CanonicalConfig returns the deterministic byte serialization that
// ConfigKey hashes, for debugging cache identity: one key=value line per
// result-determining field, in a fixed order.
func CanonicalConfig(cfg RunConfig) ([]byte, bool) { return experiments.CanonicalConfig(cfg) }

// ExperimentIDs lists the reproducible tables and figures in report order.
func ExperimentIDs() []string { return experiments.IDs() }

// Experiment regenerates one table or figure by ID (t1, f1 … f13, t2, t3).
func Experiment(id string) (Table, error) {
	b, err := experiments.Get(id)
	if err != nil {
		return Table{}, err
	}
	return b()
}
