package videodvfs

import (
	"errors"
	"reflect"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	cfg := DefaultSession()
	cfg.Duration = 20 * Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoE.Completed || res.CPUJ <= 0 {
		t.Fatalf("facade run broken: %+v", res)
	}
}

func TestFacadeCatalogs(t *testing.T) {
	if len(Devices()) != 3 {
		t.Fatalf("devices = %d", len(Devices()))
	}
	if len(Titles()) != 3 {
		t.Fatalf("titles = %d", len(Titles()))
	}
	if len(Resolutions()) != 4 {
		t.Fatalf("resolutions = %d", len(Resolutions()))
	}
	if len(ExperimentIDs()) != 30 {
		t.Fatalf("experiments = %d", len(ExperimentIDs()))
	}
	govs := GovernorNames()
	found := map[string]bool{}
	for _, g := range govs {
		found[g] = true
	}
	if !found["energyaware"] || !found["oracle"] || !found["ondemand"] {
		t.Fatalf("governor list incomplete: %v", govs)
	}
}

func TestFacadeLookups(t *testing.T) {
	if _, err := DeviceByName("flagship"); err != nil {
		t.Fatal(err)
	}
	if _, err := TitleByName("sports"); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolutionByName("720p"); err != nil {
		t.Fatal(err)
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBatch(t *testing.T) {
	sweep := Sweep{Base: DefaultSession(), Seeds: SeedRange(1, 3)}
	sweep.Base.Duration = 10 * Second
	outs := RunAll(sweep.Expand(), 2)
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(outs))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("seed %d: %v", i+1, o.Err)
		}
		if o.Config.Seed != int64(i+1) {
			t.Fatalf("outcome %d carries seed %d — order lost", i, o.Config.Seed)
		}
	}
	rows := sweep.Aggregate(outs, func(r RunResult) float64 { return r.CPUJ })
	if len(rows) != 3 || rows[0].Axis != "seed" {
		t.Fatalf("aggregate rows = %+v, want one per seed", rows)
	}
}

func TestFacadeParse(t *testing.T) {
	if g, err := ParseGovernor("energyaware"); err != nil || g != GovEnergyAware {
		t.Fatalf("ParseGovernor = %v, %v", g, err)
	}
	if _, err := ParseGovernor("warpdrive"); !errors.Is(err, ErrUnknownGovernor) {
		t.Fatalf("want ErrUnknownGovernor, got %v", err)
	}
	if a, err := ParseABR(""); err != nil || a != ABRFixed {
		t.Fatalf("ParseABR(\"\") = %v, %v, want the fixed default", a, err)
	}
	if _, err := ParseABR("mpc"); !errors.Is(err, ErrUnknownABR) {
		t.Fatalf("want ErrUnknownABR, got %v", err)
	}
	if len(Governors()) != len(GovernorNames()) {
		t.Fatal("Governors and GovernorNames disagree")
	}
	if len(ABRs()) == 0 {
		t.Fatal("no ABR algorithms listed")
	}
}

func TestFacadeSessionOptions(t *testing.T) {
	cfg := NewSession(
		WithGovernor(GovOracle),
		WithNet(NetLTE),
		WithABR(ABRBBA),
		WithDuration(30*Second),
		WithSeed(7),
	)
	if cfg.Governor != GovOracle || cfg.Net != NetLTE || cfg.ABR != ABRBBA ||
		cfg.Duration != 30*Second || cfg.Seed != 7 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	// Any session built purely from options must pass validation.
	if err := cfg.Validate(); err != nil {
		t.Fatalf("option-built session fails Validate: %v", err)
	}
	if cfg := NewSession(WithHorizon(5 * Minute)); cfg.Horizon != 5*Minute {
		t.Fatalf("WithHorizon not applied: %+v", cfg)
	}
	// No options → exactly the default session, which validates.
	if !reflect.DeepEqual(NewSession(), DefaultSession()) {
		t.Fatal("NewSession() should equal DefaultSession()")
	}
	if err := DefaultSession().Validate(); err != nil {
		t.Fatalf("default session fails Validate: %v", err)
	}
}

// Validate must reject each malformed knob with an error wrapping
// ErrInvalidConfig, before Run builds any simulation state.
func TestFacadeValidateRejections(t *testing.T) {
	cases := map[string]RunConfig{
		"unknown governor": NewSession(WithGovernor("warpdrive")),
		"unknown abr":      NewSession(WithABR("mpc")),
		"unknown net":      NewSession(WithNet("carrier-pigeon")),
		"zero duration":    NewSession(WithDuration(0)),
		"negative dur":     NewSession(WithDuration(-10 * Second)),
	}
	for name, cfg := range cases {
		err := cfg.Validate()
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: Validate = %v, want ErrInvalidConfig", name, err)
		}
		// Run must agree with Validate — same sentinel, no partial work.
		if _, err := Run(cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: Run = %v, want ErrInvalidConfig", name, err)
		}
	}
	// Parse-level sentinels stay distinguishable through the wrap.
	if err := NewSession(WithGovernor("warpdrive")).Validate(); !errors.Is(err, ErrUnknownGovernor) {
		t.Errorf("governor rejection lost ErrUnknownGovernor: %v", err)
	}
	if err := NewSession(WithABR("mpc")).Validate(); !errors.Is(err, ErrUnknownABR) {
		t.Errorf("abr rejection lost ErrUnknownABR: %v", err)
	}
}

// ConfigKey/CanonicalConfig are the daemon's cache identity (DESIGN.md
// §9): stable across calls, sensitive to every knob, refused when the
// config carries callbacks.
func TestFacadeConfigKey(t *testing.T) {
	a, ok := ConfigKey(DefaultSession())
	if !ok || len(a) != 64 {
		t.Fatalf("ConfigKey = %q, %v", a, ok)
	}
	if b, _ := ConfigKey(DefaultSession()); b != a {
		t.Fatalf("key unstable: %q vs %q", a, b)
	}
	if c, _ := ConfigKey(NewSession(WithSeed(2))); c == a {
		t.Fatal("seed change did not change the key")
	}
	canon, _ := CanonicalConfig(DefaultSession())
	if len(canon) == 0 {
		t.Fatal("canonical form empty")
	}
	cfg := DefaultSession()
	cfg.OnSample = func(Time, float64, float64, float64) {}
	if _, ok := ConfigKey(cfg); ok {
		t.Fatal("config with a callback reported cacheable")
	}
}

func TestFacadeInvalidConfig(t *testing.T) {
	cfg := NewSession(WithGovernor("warpdrive"))
	_, err := Run(cfg)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig, got %v", err)
	}
	if !errors.Is(err, ErrUnknownGovernor) {
		t.Fatalf("want ErrUnknownGovernor through the wrap, got %v", err)
	}
}

func TestFacadeHorizonError(t *testing.T) {
	cfg := DefaultSession()
	cfg.Duration = 30 * Second
	cfg.Horizon = 5 * Second
	_, err := Run(cfg)
	if !errors.Is(err, ErrHorizonExceeded) {
		t.Fatalf("want ErrHorizonExceeded, got %v", err)
	}
}

func TestFacadeExperiment(t *testing.T) {
	tab, err := Experiment("t1")
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "t1" || len(tab.Rows) == 0 {
		t.Fatalf("experiment t1 broken: %+v", tab)
	}
	if _, err := Experiment("nope"); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}
