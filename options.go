package videodvfs

// Option mutates a RunConfig under construction; see NewSession.
type Option func(*RunConfig)

// NewSession builds a RunConfig from DefaultSession plus the given
// options, applied in order:
//
//	cfg := videodvfs.NewSession(
//		videodvfs.WithGovernor(videodvfs.GovOndemand),
//		videodvfs.WithNet(videodvfs.NetLTE),
//		videodvfs.WithSeed(7),
//	)
//
// The result is a plain RunConfig: fields without options can still be
// set directly before passing it to Run.
func NewSession(opts ...Option) RunConfig {
	cfg := DefaultSession()
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithDevice selects the CPU model.
func WithDevice(d Device) Option { return func(c *RunConfig) { c.Device = d } }

// WithGovernor selects the frequency policy.
func WithGovernor(g Governor) Option { return func(c *RunConfig) { c.Governor = g } }

// WithPolicy tunes the energy-aware governor.
func WithPolicy(p PolicyConfig) Option { return func(c *RunConfig) { c.Policy = p } }

// WithTitle selects the content profile.
func WithTitle(t Title) Option { return func(c *RunConfig) { c.Title = t } }

// WithRung pins a single rendition (with ABRFixed).
func WithRung(r Resolution) Option { return func(c *RunConfig) { c.Rung = r } }

// WithABR selects the adaptation algorithm.
func WithABR(a ABR) Option { return func(c *RunConfig) { c.ABR = a } }

// WithNet selects the bandwidth profile.
func WithNet(n NetKind) Option { return func(c *RunConfig) { c.Net = n } }

// WithDuration sets the content length.
func WithDuration(d Time) Option { return func(c *RunConfig) { c.Duration = d } }

// WithSeed sets the seed driving all stochastic inputs.
func WithSeed(seed int64) Option { return func(c *RunConfig) { c.Seed = seed } }

// WithTracer attaches a structured tracer to the run; see NewJSONLTracer,
// NewCSVTracer, and NewTraceCollector.
func WithTracer(tr Tracer) Option { return func(c *RunConfig) { c.Tracer = tr } }

// WithCodec selects the decode model by name ("h264", "hevc").
func WithCodec(name string) Option { return func(c *RunConfig) { c.Codec = name } }

// WithCStates enables the cpuidle model.
func WithCStates() Option { return func(c *RunConfig) { c.CStates = true } }

// WithLowLatency switches the player to live-streaming thresholds.
func WithLowLatency() Option { return func(c *RunConfig) { c.LowLatency = true } }

// WithBackground toggles the UI/OS background load generator.
func WithBackground(on bool) Option { return func(c *RunConfig) { c.Background = on } }

// WithLowWater enables the player's burst-prefetch hysteresis: fetches
// pause above the high-water buffer mark and resume in a burst below
// this low-water mark, letting the radio sleep between bursts.
func WithLowWater(sec float64) Option { return func(c *RunConfig) { c.LowWaterSec = sec } }

// WithForecast arms the predictive download scheduler with the given
// bandwidth-forecast kind (ForecastOracle, ForecastNoisy). Requires
// WithLowWater; ForecastNone keeps the reactive trigger.
func WithForecast(k ForecastKind) Option { return func(c *RunConfig) { c.Forecast = k } }

// WithForecastLookahead sets the forecast's lookahead window (0 = the
// library default).
func WithForecastLookahead(h Time) Option { return func(c *RunConfig) { c.ForecastLookahead = h } }

// WithForecastError sets the noisy forecast's relative error (noisy
// kind only).
func WithForecastError(rel float64) Option { return func(c *RunConfig) { c.ForecastRelErr = rel } }

// WithForecastSeed perturbs the noisy forecast's error draw
// independently of the run seed.
func WithForecastSeed(seed int64) Option { return func(c *RunConfig) { c.ForecastSeed = seed } }

// WithFrameTrace replays an exact frame stream instead of generating one.
func WithFrameTrace(s *Stream) Option { return func(c *RunConfig) { c.Trace = s } }

// WithHorizon caps the run's virtual time; a session still incomplete at
// the cap makes Run fail with ErrHorizonExceeded. dvfsd uses the same
// mechanism as its per-request timeout.
func WithHorizon(h Time) Option { return func(c *RunConfig) { c.Horizon = h } }

// WithCancel makes the run abandonable: the simulator polls ch every
// 100 virtual milliseconds and, once ch is closed, stops and fails with
// ErrCanceled. Virtual time only advances while the simulation computes,
// so an abandoned run observes the closure within one event batch of
// wall time. dvfsd wires the request context's Done channel here so a
// disconnected streaming client stops burning a pool worker. Cancelable
// runs are never cache-served.
func WithCancel(ch <-chan struct{}) Option { return func(c *RunConfig) { c.Cancel = ch } }

// WithInvariants arms the run-time invariant checker: the event stream is
// audited against the simulator's conservation laws (energy closure,
// residency closure, frame accounting, event-time monotonicity — see
// DESIGN.md §10) and any breach fails Run with a *Violation error,
// unwrappable via errors.As. Strict runs pay the tracing cost and are
// never served from the dvfsd result cache.
func WithInvariants() Option { return func(c *RunConfig) { c.Strict = true } }
