package videodvfs

import (
	"videodvfs/internal/cohort"
	"videodvfs/internal/fleet"
)

// Fleet-tier aliases: one controller in front of N dvfsd workers,
// sharding aggregate requests by content-addressed key and merging the
// responses into the exact single-node answer. See NewFleet.
type (
	// Fleet is the controller service dvfsctl serves: POST /v1/sweep and
	// POST /v1/cohort fan out across the configured dvfsd workers with
	// consistent-hash routing, bounded concurrency, retry with jittered
	// backoff, and failure ejection + rehash.
	Fleet = fleet.Controller
	// FleetConfig tunes one Fleet: worker URLs, concurrency bound,
	// per-attempt timeout, retry/backoff/ejection policy, probe cadence.
	FleetConfig = fleet.Config
	// CohortPartial is the serialized aggregation state of a subset of a
	// cohort's shards — the unit a Fleet dispatches to each worker.
	CohortPartial = cohort.Partial
)

// NewFleet builds a Fleet over cfg.Workers (all initially alive) and
// starts its health-probe loop; mount Handler on an http.Server and stop
// with Shutdown.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// RunCohortShards executes only the named shards of a cohort and returns
// their serialized aggregation states — the library form of dvfsd's
// POST /v1/cohort/part. The shard layout is a pure function of the
// config, so disjoint shard sets run on different machines and
// MergeCohortParts reassembles the exact RunCohort result.
func RunCohortShards(cfg CohortConfig, shards []int) (CohortPartial, error) {
	return cohort.RunPart(cfg, shards)
}

// MergeCohortParts merges partial cohort runs covering every shard
// exactly once into the whole-cohort result, bit-identical to a
// single-node RunCohort of the same config.
func MergeCohortParts(parts []CohortPartial) (CohortResult, error) {
	return cohort.MergeParts(parts)
}

// CohortShardCount returns the shard count cfg's cohort resolves to —
// the index space RunCohortShards partitions.
func CohortShardCount(cfg CohortConfig) int { return cohort.ShardCount(cfg) }
