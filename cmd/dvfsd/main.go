// Command dvfsd serves the simulator as a long-running HTTP/JSON
// service: single runs, batch sweeps, and named experiments execute on a
// bounded worker pool behind a content-addressed result cache (runs are
// deterministic, so identical requests are served from memory and
// concurrent duplicates coalesce into one simulation).
//
// Usage:
//
//	dvfsd                      # listen on :8080
//	dvfsd -addr 127.0.0.1:9000 # custom listen address
//	dvfsd -workers 8 -queue 64 # pool sizing / admission bound
//	dvfsd -cache-mb 256        # result-cache size
//
// Endpoints (see README for request bodies and curl examples):
//
//	POST /v1/run               one simulation (?trace=jsonl streams events)
//	POST /v1/sweep             batch sweep over config axes
//	POST /v1/cohort            whole viewer population in shared engines;
//	                           NDJSON rollup frames + summary (?stream=1 live)
//	POST /v1/experiments/{id}  regenerate a named table/figure
//	GET  /v1/experiments       list experiment IDs
//	GET  /v1/catalog           devices/governors/titles/rungs/abrs/nets
//	GET  /healthz              liveness (503 while draining)
//	GET  /metrics              queue depth, cache hit ratio, run latency
//
// SIGINT/SIGTERM drain gracefully: admission stops, accepted runs finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"videodvfs/internal/server"
	"videodvfs/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dvfsd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "admission queue depth (0 = 4x workers); overflow returns 429")
		cacheMB    = fs.Int("cache-mb", 64, "result cache size in MiB")
		maxHorizon = fs.Float64("max-horizon-s", 3600, "per-run virtual-time cap in seconds (the request timeout)")
		maxDur     = fs.Float64("max-duration-s", 1200, "largest accepted content duration in seconds")
		maxSweep   = fs.Int("max-sweep-runs", 1024, "largest accepted sweep expansion")
		maxCohort  = fs.Int("max-cohort-viewers", 200_000, "largest accepted cohort population")
		drainS     = fs.Float64("drain-timeout-s", 60, "seconds to wait for in-flight runs on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Config{
		Workers:          *workers,
		Queue:            *queue,
		CacheBytes:       int64(*cacheMB) << 20,
		MaxHorizon:       sim.Time(*maxHorizon) * sim.Second,
		MaxDuration:      sim.Time(*maxDur) * sim.Second,
		MaxSweepRuns:     *maxSweep,
		MaxCohortViewers: *maxCohort,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	log.Printf("dvfsd: listening on %s (workers=%d queue=%d cache=%dMiB)",
		ln.Addr(), *workers, *queue, *cacheMB)

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("dvfsd: %v — draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainS*float64(time.Second)))
	defer cancel()
	// Stop admission and drain the simulation pool first, then close the
	// HTTP side; handlers still waiting on accepted runs finish cleanly.
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("dvfsd: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	hits, misses, coalesced := srv.CacheStats()
	log.Printf("dvfsd: drained (cache: %d hits, %d misses, %d coalesced)", hits, misses, coalesced)
	return <-errc
}
