package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// logCapture tees the standard logger into a buffer so the test can
// recover the ephemeral listen address from the startup line.
type logCapture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *logCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *logCapture) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (\S+)`)

// TestRunServesAndDrainsOnSignal boots the daemon on an ephemeral port,
// exercises /healthz and a real /v1/run, then delivers SIGTERM and
// asserts run() drains and returns nil.
func TestRunServesAndDrainsOnSignal(t *testing.T) {
	capt := &logCapture{}
	prev := log.Writer()
	log.SetOutput(capt)
	defer log.SetOutput(prev)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-cache-mb", "4", "-drain-timeout-s", "30"})
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(capt.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before listening: %v\nlog:\n%s", err, capt.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen line within deadline\nlog:\n%s", capt.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body := `{"duration_s": 10, "seed": 1}`
	resp, err = http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("run request: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d body=%s", resp.StatusCode, raw)
	}
	var rb struct {
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &rb); err != nil {
		t.Fatalf("run body not JSON: %v\n%s", err, raw)
	}
	if len(rb.Key) != 64 || len(rb.Result) == 0 {
		t.Fatalf("run body malformed: key=%q result bytes=%d", rb.Key, len(rb.Result))
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM\nlog:\n%s", err, capt.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run did not exit after SIGTERM\nlog:\n%s", capt.String())
	}
	if !strings.Contains(capt.String(), "drained") {
		t.Fatalf("drain line missing from log:\n%s", capt.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-workers", "notanint"},
		{"-addr", "127.0.0.1:notaport"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%q) = nil, want error", args)
		}
	}
}
