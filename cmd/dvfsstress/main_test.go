package main

import (
	"bytes"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"

	"videodvfs"
	"videodvfs/internal/server"
)

// logCapture tees the standard logger into a buffer so the test can
// recover the ephemeral listen address from the startup line.
type logCapture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *logCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *logCapture) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

var listenLine = regexp.MustCompile(`origin listening on (\S+)`)

// TestServePlayEndToEnd boots the origin subcommand on an ephemeral
// port, drives the play subcommand against it, and asserts the recorded
// trace file decodes, validates, and replays in the simulator.
func TestServePlayEndToEnd(t *testing.T) {
	capt := &logCapture{}
	prev := log.Writer()
	log.SetOutput(capt)
	defer log.SetOutput(prev)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-listen", "127.0.0.1:0", "-rate", "16e6"})
	}()
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenLine.FindStringSubmatch(capt.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("origin never logged its address:\n%s", capt.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	origin := "http://" + addr
	resp, err := http.Get(origin + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()

	out := filepath.Join(t.TempDir(), "trace.jsonl")
	err = run([]string{"play",
		"-origin", origin, "-title", "news", "-res", "360p",
		"-duration", "6", "-seed", "3", "-out", out,
	})
	if err != nil {
		t.Fatalf("play: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := videodvfs.ReadBWTrace(f)
	f.Close()
	if err != nil {
		t.Fatalf("recorded trace: %v", err)
	}
	if len(tr.Samples) == 0 {
		t.Fatal("recorded trace is empty")
	}

	// The recorded file replays through the public Run API.
	rcfg := videodvfs.RunConfig{
		Governor:   videodvfs.GovOndemand,
		Net:        videodvfs.NetTrace,
		BWTrace:    &tr,
		Duration:   6 * videodvfs.Second,
		Seed:       3,
		Background: false,
	}
	var terr error
	if rcfg.Title, terr = videodvfs.TitleByName("news"); terr != nil {
		t.Fatal(terr)
	}
	if rcfg.Rung, terr = videodvfs.ResolutionByName("360p"); terr != nil {
		t.Fatal(terr)
	}
	res, err := videodvfs.Run(rcfg)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !res.QoE.Completed {
		t.Fatal("replay did not complete")
	}

	// SIGTERM stops the origin cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestHammerSubcommand drives the hammer against a real dvfsd handler.
func TestHammerSubcommand(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	err := run([]string{"hammer",
		"-targets", ts.URL, "-n", "20", "-c", "10",
		"-body", `{"governor":"ondemand","net":"const8","duration_s":2}`,
	})
	if err != nil {
		t.Fatalf("hammer: %v", err)
	}
}

// TestUsageErrors pins the CLI contract for bad invocations.
func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"play"}); err == nil {
		t.Error("play without -origin accepted")
	}
	if err := run([]string{"hammer", "-n", "1"}); err == nil {
		t.Error("hammer without targets accepted")
	}
	if err := run([]string{"serve", "-shape", "sawtooth"}); err == nil {
		t.Error("unknown shape accepted")
	}
}
