// Command dvfsstress exercises the wire-level stress mode: a shaped
// origin server, a live player-driver that records replayable bandwidth
// traces, and a load generator for dvfsd/dvfsctl endpoints.
//
// Usage:
//
//	dvfsstress serve  -listen :9090 -rate 8e6 -shape onoff
//	dvfsstress play   -origin http://127.0.0.1:9090 -duration 30 \
//	                  -out trace.jsonl
//	dvfsstress hammer -targets http://127.0.0.1:8080 -n 500 -c 100
//
// A trace recorded by play replays deterministically in the simulator:
//
//	dvfsim -net trace -trace-file trace.jsonl -nobackground
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"videodvfs"
	"videodvfs/internal/sim"
	"videodvfs/internal/stress"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsstress:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dvfsstress <serve|play|hammer> [flags]")
	}
	switch args[0] {
	case "serve":
		return serveCmd(args[1:])
	case "play":
		return playCmd(args[1:])
	case "hammer":
		return hammerCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want serve, play, or hammer)", args[0])
	}
}

// serveCmd runs the shaped-bitrate origin until interrupted.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("dvfsstress serve", flag.ContinueOnError)
	var (
		listen = fs.String("listen", "127.0.0.1:9090", "listen address")
		rate   = fs.Float64("rate", 8e6, "target delivery rate in bits/s")
		shape  = fs.String("shape", "steady", "delivery discipline: steady, onoff, throttle")
		onDur  = fs.Duration("on", 200*time.Millisecond, "ON window of the onoff cycle")
		offDur = fs.Duration("off", 300*time.Millisecond, "OFF window of the onoff cycle")
		burst  = fs.Int("burst", 256<<10, "unthrottled head bytes of a throttle response")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shp, err := stress.ParseShape(*shape)
	if err != nil {
		return err
	}
	o, err := stress.NewOrigin(stress.OriginConfig{
		RateBps: *rate, Shape: shp,
		OnDur: *onDur, OffDur: *offDur, BurstBytes: *burst,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("dvfsstress: origin listening on %s (%s, %.1f Mbps)", ln.Addr(), shp, *rate/1e6)
	srv := &http.Server{Handler: o.Handler()}
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		srv.Close()
	}()
	if err := srv.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// playCmd runs the live player-driver against an origin and writes the
// recorded bandwidth trace.
func playCmd(args []string) error {
	fs := flag.NewFlagSet("dvfsstress play", flag.ContinueOnError)
	var (
		origin    = fs.String("origin", "", "origin base URL (required)")
		govName   = fs.String("governor", "ondemand", "stock cpufreq governor for the decode core")
		device    = fs.String("device", "flagship", "device model: flagship, midrange, efficient")
		titleName = fs.String("title", "sports", "content profile: news, sports, animation")
		resName   = fs.String("res", "720p", "rendition: 360p, 480p, 720p, 1080p")
		duration  = fs.Float64("duration", 30, "content length in seconds")
		seed      = fs.Int64("seed", 1, "random seed (reuse for the replay)")
		segment   = fs.Float64("segment", 0, "segment duration in seconds (0 = default 2)")
		rateQuery = fs.String("rate-query", "", `per-request shaping override, e.g. "rate=4e6&shape=onoff"`)
		out       = fs.String("out", "", "write the recorded bandwidth trace JSONL here ('-' = stdout)")
		jsonOut   = fs.Bool("json", false, "emit the metrics as JSON instead of the text report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := stress.PlayConfig{
		OriginURL:  *origin,
		Governor:   *govName,
		Seed:       *seed,
		Duration:   sim.Time(*duration),
		SegmentDur: sim.Time(*segment),
		RateQuery:  *rateQuery,
	}
	var err error
	if cfg.Device, err = videodvfs.DeviceByName(*device); err != nil {
		return err
	}
	if cfg.Title, err = videodvfs.TitleByName(*titleName); err != nil {
		return err
	}
	if cfg.Rung, err = videodvfs.ResolutionByName(*resName); err != nil {
		return err
	}
	res, err := stress.Play(cfg)
	if err != nil {
		return err
	}
	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, ferr := os.Create(*out)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			w = f
		}
		if err := videodvfs.WriteBWTrace(w, res.Trace); err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"completed":     res.Metrics.Completed,
			"startupS":      res.Metrics.StartupDelay.Seconds(),
			"rebufferCount": res.Metrics.RebufferCount,
			"rebufferS":     res.Metrics.RebufferTime.Seconds(),
			"droppedFrames": res.Metrics.DroppedFrames,
			"fetches":       len(res.SegmentBits),
			"traceSamples":  len(res.Trace.Samples),
			"traceBytes":    res.Trace.TotalBytes(),
			"simEndS":       res.SimEnd.Seconds(),
			"wallS":         res.WallDur.Seconds(),
		})
	}
	fmt.Fprintf(os.Stderr,
		"play: completed=%v startup=%.2fs rebuffers=%d drops=%d fetches=%d samples=%d bytes=%.0f wall=%.1fs\n",
		res.Metrics.Completed, res.Metrics.StartupDelay.Seconds(),
		res.Metrics.RebufferCount, res.Metrics.DroppedFrames,
		len(res.SegmentBits), len(res.Trace.Samples), res.Trace.TotalBytes(),
		res.WallDur.Seconds())
	return nil
}

// hammerCmd load-tests dvfsd/dvfsctl endpoints and reports envelope
// violations.
func hammerCmd(args []string) error {
	fs := flag.NewFlagSet("dvfsstress hammer", flag.ContinueOnError)
	var (
		targets = fs.String("targets", "", "comma-separated base URLs (required)")
		path    = fs.String("path", "/v1/run", "endpoint path")
		body    = fs.String("body", `{"governor":"ondemand","net":"const8","duration_s":10}`,
			"JSON request body ('@file' reads a file)")
		n       = fs.Int("n", 100, "total requests")
		c       = fs.Int("c", 8, "concurrent workers")
		timeout = fs.Duration("timeout", 30*time.Second, "per-attempt timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	b := []byte(*body)
	if strings.HasPrefix(*body, "@") {
		var err error
		if b, err = os.ReadFile((*body)[1:]); err != nil {
			return err
		}
	}
	res, err := stress.Hammer(stress.HammerConfig{
		Targets:     splitNonEmpty(*targets),
		Path:        *path,
		Body:        b,
		Requests:    *n,
		Concurrency: *c,
		Timeout:     *timeout,
	})
	if err != nil {
		return err
	}
	fmt.Printf("hammer: %d requests (%d workers) in %.2fs: %d ok, %d rejected, %d failed, %d retries, p50 %v p99 %v\n",
		res.Requests, *c, res.WallDur.Seconds(), res.OK, res.Rejected, res.Failed,
		res.Retried, res.LatencyP50.Round(time.Microsecond), res.LatencyP99.Round(time.Microsecond))
	for _, v := range res.Violations {
		fmt.Printf("  VIOLATION target=%s status=%d: %s\n", v.Target, v.Status, v.Reason)
	}
	if len(res.Violations) > 0 {
		return fmt.Errorf("%d envelope violations", len(res.Violations))
	}
	return nil
}

// splitNonEmpty splits a comma list, dropping empty elements.
func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
