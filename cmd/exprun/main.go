// Command exprun regenerates the evaluation's tables and figures.
//
// Usage:
//
//	exprun              # run every experiment
//	exprun -list        # list experiment IDs
//	exprun -exp f5,f6   # run selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"videodvfs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "exprun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exprun", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list experiment IDs and exit")
		exp    = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		format = fs.String("format", "text", "output format: text, markdown, csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range videodvfs.ExperimentIDs() {
			fmt.Println(id)
		}
		return nil
	}
	ids := videodvfs.ExperimentIDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		tab, err := videodvfs.Experiment(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		out, err := tab.Render(*format)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	return nil
}
