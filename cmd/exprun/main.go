// Command exprun regenerates the evaluation's tables and figures.
//
// Experiments fan out through the campaign worker pool at two levels:
// whole experiments run concurrently (-parallel), and each experiment's
// own config grid is batched across GOMAXPROCS workers internally. Every
// run is deterministic, so output is byte-identical for any worker count.
//
// Usage:
//
//	exprun                    # run every experiment
//	exprun -list              # list experiment IDs
//	exprun -exp f5,f6         # run selected experiments
//	exprun -parallel 8        # experiment-level worker count
//	exprun -progress          # campaign progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"videodvfs"
	"videodvfs/internal/campaign"
	"videodvfs/internal/experiments"
	"videodvfs/internal/profiling"
	"videodvfs/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "exprun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exprun", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		exp      = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		format   = fs.String("format", "text", "output format: text, markdown, csv")
		parallel = fs.Int("parallel", runtime.NumCPU(), "experiments built concurrently (each batches its own runs internally)")
		progress = fs.Bool("progress", false, "print campaign progress to stderr")
		traceDir = fs.String("trace-dir", "", "write one JSONL event trace per simulation run into this directory")
		strict   = fs.Bool("strict", false, "audit every simulation run against the simulator's invariants; any breach fails its experiment")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile (after the campaign) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()
	if *strict {
		// Experiments build their RunConfigs internally, so strict mode is
		// armed process-wide rather than per-config.
		defer experiments.SetStrictDefault(experiments.SetStrictDefault(true))
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
		experiments.SetTraceFactory(traceDirFactory(*traceDir))
		defer experiments.SetTraceFactory(nil)
	}
	if *list {
		for _, id := range videodvfs.ExperimentIDs() {
			fmt.Println(id)
		}
		return nil
	}
	ids := videodvfs.ExperimentIDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}

	jobs := make([]campaign.Job[string], len(ids))
	for i, id := range ids {
		id := id
		format := *format
		jobs[i] = func() (string, error) {
			tab, err := videodvfs.Experiment(id)
			if err != nil {
				return "", err
			}
			return tab.Render(format)
		}
	}
	var obs campaign.Observer
	if *progress {
		obs = &campaign.LogObserver{W: os.Stderr, Every: 1}
	}
	outs := campaign.Do(jobs, campaign.Options[string]{Workers: *parallel, Observer: obs})
	// Print in input order; fail on the first error but keep the tables
	// that did build ahead of it.
	for i, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", ids[i], o.Err)
		}
		fmt.Println(o.Value)
	}
	return nil
}

// traceDirFactory returns a process-wide trace factory writing one JSONL
// file per simulation run into dir. Files are named from the run's
// config axes (governor, network, rung, seed) plus a per-name sequence
// number; the sequence assignment is serialized, but with concurrent
// experiments the mapping of sequence numbers to runs depends on
// completion order. Each file's *contents* remain deterministic.
func traceDirFactory(dir string) experiments.TraceFactory {
	var mu sync.Mutex
	seq := make(map[string]int)
	return func(cfg experiments.RunConfig) (trace.Tracer, func() error) {
		net := cfg.Net
		if net == "" {
			net = experiments.NetWiFi
		}
		base := fmt.Sprintf("%s_%s_%s_seed%d", cfg.Governor, net, cfg.Rung.Name, cfg.Seed)
		mu.Lock()
		n := seq[base]
		seq[base] = n + 1
		mu.Unlock()
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s_%03d.jsonl", base, n)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "exprun: trace:", err)
			return nil, nil
		}
		sink := trace.NewJSONL(f)
		return sink, sink.Close
	}
}
