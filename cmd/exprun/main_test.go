package main

import (
	"io"
	"os"
	"testing"
)

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectedExperiments(t *testing.T) {
	if err := run([]string{"-exp", "t1, f1,f2"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "f99"}); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	ferr := f()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	out, rerr := io.ReadAll(r)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

// TestParallelOutputIdentical checks the end-to-end determinism promise:
// the tool's stdout is byte-identical whether experiments build serially
// or across workers.
func TestParallelOutputIdentical(t *testing.T) {
	args := func(workers string) []string {
		return []string{"-exp", "t1,f1,f2", "-parallel", workers}
	}
	serial := captureStdout(t, func() error { return run(args("1")) })
	parallel := captureStdout(t, func() error { return run(args("4")) })
	if serial == "" {
		t.Fatal("no output")
	}
	if serial != parallel {
		t.Fatalf("-parallel 4 output diverged from -parallel 1:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

func TestProgressFlag(t *testing.T) {
	if err := run([]string{"-exp", "t1", "-progress", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestFormats(t *testing.T) {
	for _, format := range []string{"text", "markdown", "md", "csv"} {
		if err := run([]string{"-exp", "t1", "-format", format}); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
	}
	if err := run([]string{"-exp", "t1", "-format", "yaml"}); err == nil {
		t.Fatal("want error for unknown format")
	}
}
