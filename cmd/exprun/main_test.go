package main

import "testing"

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectedExperiments(t *testing.T) {
	if err := run([]string{"-exp", "t1, f1,f2"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "f99"}); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestFormats(t *testing.T) {
	for _, format := range []string{"text", "markdown", "md", "csv"} {
		if err := run([]string{"-exp", "t1", "-format", format}); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
	}
	if err := run([]string{"-exp", "t1", "-format", "yaml"}); err == nil {
		t.Fatal("want error for unknown format")
	}
}
