package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVideoTraceToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "v.csv")
	args := []string{"-kind", "video", "-title", "news", "-res", "480p",
		"-duration", "5", "-seed", "2", "-out", out}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "index,type,pts_s,bits,cycles" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+150 { // 5 s at 30 fps
		t.Fatalf("rows = %d, want 151", len(lines))
	}
}

func TestBandwidthTraceToFile(t *testing.T) {
	for _, net := range []string{"lte", "umts"} {
		out := filepath.Join(t.TempDir(), net+".csv")
		if err := run([]string{"-kind", "bandwidth", "-net", net, "-duration", "60", "-out", out}); err != nil {
			t.Fatalf("%s: %v", net, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "start_s,bps\n") {
			t.Fatalf("%s: bad header", net)
		}
	}
}

func TestRejectsBadArgs(t *testing.T) {
	cases := [][]string{
		{"-kind", "audio"},
		{"-kind", "video", "-title", "nature"},
		{"-kind", "video", "-res", "9000p"},
		{"-kind", "bandwidth", "-net", "pigeon"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
