// Command tracegen emits workload traces as CSV: per-frame video decode
// traces (index, type, pts, bits, cycles) or piecewise-constant bandwidth
// traces (start_s, bps).
//
// Usage:
//
//	tracegen -kind video -title sports -res 720p -duration 60 -seed 1
//	tracegen -kind bandwidth -net lte -duration 300 -seed 1 -out lte.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		kind      = fs.String("kind", "video", "trace kind: video, bandwidth")
		titleName = fs.String("title", "sports", "video: content profile")
		resName   = fs.String("res", "720p", "video: resolution")
		net       = fs.String("net", "lte", "bandwidth: lte, umts")
		duration  = fs.Float64("duration", 60, "trace length in seconds")
		seed      = fs.Int64("seed", 1, "random seed")
		out       = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "tracegen: close:", cerr)
			}
		}()
		w = f
	}

	dur := sim.Time(*duration) * sim.Second
	switch *kind {
	case "video":
		title, err := video.TitleByName(*titleName)
		if err != nil {
			return err
		}
		res, err := video.ResolutionByName(*resName)
		if err != nil {
			return err
		}
		stream, err := video.Generate(video.DefaultSpec(title, res), dur, *seed)
		if err != nil {
			return err
		}
		return video.WriteTrace(w, stream)
	case "bandwidth":
		var states []netsim.MarkovState
		switch *net {
		case "lte":
			states = netsim.LTEStates()
		case "umts":
			states = netsim.UMTSStates()
		default:
			return fmt.Errorf("unknown bandwidth profile %q", *net)
		}
		tr, err := netsim.GenMarkovTrace(states, dur, sim.Stream(*seed, "bw/"+*net))
		if err != nil {
			return err
		}
		return writeBandwidth(w, tr)
	default:
		return fmt.Errorf("unknown trace kind %q", *kind)
	}
}

func writeBandwidth(w io.Writer, tr netsim.Steps) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_s", "bps"}); err != nil {
		return err
	}
	for _, st := range tr.Trace {
		rec := []string{
			strconv.FormatFloat(st.Start.Seconds(), 'g', 17, 64),
			strconv.FormatFloat(st.Bps, 'g', 17, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
