// Command dvfsim runs one streaming-DVFS simulation and prints a full
// report: energy per component, QoE, frequency residency, and radio state
// residency. Batch mode (-batch N) fans the same session across N seeds
// through the campaign worker pool and prints per-seed lines plus
// aggregate statistics.
//
// Usage:
//
//	dvfsim -governor energyaware -res 720p -title sports -net const8 \
//	       -duration 60 -seed 1
//	dvfsim -batch 16 -parallel 8   # seeds 1..16, aggregate stats
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"videodvfs"
	"videodvfs/internal/netsim"
	"videodvfs/internal/profiling"
	"videodvfs/internal/stats"
	"videodvfs/internal/video"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dvfsim", flag.ContinueOnError)
	var (
		governorName = fs.String("governor", "energyaware", "governor: "+strings.Join(videodvfs.GovernorNames(), ", "))
		device       = fs.String("device", "flagship", "device model: flagship, midrange, efficient")
		resName      = fs.String("res", "720p", "pinned resolution (fixed ABR): 360p, 480p, 720p, 1080p")
		titleName    = fs.String("title", "sports", "content profile: news, sports, animation")
		net          = fs.String("net", "const8", "network: wifi, const8, lte, umts, trace")
		bwTracePath  = fs.String("trace-file", "", "bandwidth trace JSONL (from dvfsstress play) replayed with -net trace")
		abrName      = fs.String("abr", "fixed", "ABR: fixed, rate, bba")
		duration     = fs.Float64("duration", 60, "content length in seconds")
		seed         = fs.Int64("seed", 1, "random seed")
		queueCap     = fs.Int("buffer", 0, "decoded-frame buffer depth (0 = default 8)")
		lowWater     = fs.Float64("lowwater", 0, "burst-prefetch low-water mark in seconds (0 = trickle)")
		forecastName = fs.String("forecast", "", "predictive prefetch: oracle, noisy (requires -lowwater)")
		forecastLook = fs.Float64("forecast-lookahead", 0, "forecast lookahead window in seconds (0 = default)")
		forecastErr  = fs.Float64("forecast-err", 0, "noisy forecast relative error (with -forecast noisy)")
		forecastSeed = fs.Int64("forecast-seed", 0, "noisy forecast error seed (0 = run seed)")
		fastDorm     = fs.Bool("fastdormancy", false, "release the radio immediately after each burst")
		noBackground = fs.Bool("nobackground", false, "disable the UI/OS background load")
		strict       = fs.Bool("strict", false, "audit the run against the simulator's invariants; any breach fails the run")
		tracePath    = fs.String("videotrace", "", "replay a CSV frame trace (from tracegen) instead of generating one")
		traceOut     = fs.String("trace", "", "write the run's structured event stream as JSONL to this file ('-' = stdout)")
		jsonOut      = fs.Bool("json", false, "emit the result as JSON instead of the text report")
		timelinePath = fs.String("timeline", "", "write a 100 ms time-series CSV (t_s, freq_ghz, cpu_w, buffer_s) for plotting")
		batch        = fs.Int("batch", 0, "run N sessions with seeds seed..seed+N-1 and report aggregate stats")
		parallel     = fs.Int("parallel", runtime.NumCPU(), "worker count for -batch")
		viewers      = fs.Int("viewers", 0, "cohort mode: step N viewers inside shared virtual-time engines (0 = single session)")
		arrival      = fs.String("arrival", "all", "cohort arrival process: all, uniform, burst, poisson")
		arrivalWin   = fs.Float64("arrival-window", 0, "cohort join window in virtual seconds (uniform, burst)")
		arrivalRate  = fs.Float64("arrival-rate", 0, "cohort mean joins per second (poisson)")
		cellMbps     = fs.Float64("cell-mbps", 0, "cohort shared sector capacity in Mbps (0 = no shared cell)")
		cellFlowMbps = fs.Float64("cell-flow-mbps", 0, "per-viewer cap within a sector in Mbps (0 = full capacity)")
		sectors      = fs.Int("sectors", 0, "cohort cell sector count (0 = 1)")
		rollup       = fs.Float64("rollup", 0, "cohort rollup period in virtual seconds (0 = 10)")
		shards       = fs.Int("shards", 0, "cohort engine shards (0 = derived from viewers; pins float merge order)")
		cpuProf      = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf      = fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()

	cfg := videodvfs.DefaultSession()
	if cfg.Governor, err = videodvfs.ParseGovernor(*governorName); err != nil {
		return err
	}
	if cfg.ABR, err = videodvfs.ParseABR(*abrName); err != nil {
		return err
	}
	if cfg.Net, err = videodvfs.ParseNet(*net); err != nil {
		return err
	}
	cfg.Duration = videodvfs.Time(*duration) * videodvfs.Second
	cfg.Seed = *seed
	cfg.DecodedQueueCap = *queueCap
	cfg.LowWaterSec = *lowWater
	if cfg.Forecast, err = videodvfs.ParseForecast(*forecastName); err != nil {
		return err
	}
	cfg.ForecastLookahead = videodvfs.Time(*forecastLook) * videodvfs.Second
	cfg.ForecastRelErr = *forecastErr
	cfg.ForecastSeed = *forecastSeed
	cfg.Background = !*noBackground
	cfg.Strict = *strict

	if cfg.Device, err = videodvfs.DeviceByName(*device); err != nil {
		return err
	}
	if cfg.Title, err = videodvfs.TitleByName(*titleName); err != nil {
		return err
	}
	if cfg.Rung, err = videodvfs.ResolutionByName(*resName); err != nil {
		return err
	}
	if *fastDorm {
		rrc := netsim.DefaultUMTS()
		if cfg.Net != videodvfs.NetUMTS {
			rrc = netsim.DefaultLTE()
		}
		rrc.FastDormancy = true
		cfg.RRC = &rrc
	}

	if *bwTracePath != "" {
		f, ferr := os.Open(*bwTracePath)
		if ferr != nil {
			return ferr
		}
		tr, rerr := videodvfs.ReadBWTrace(f)
		if cerr := f.Close(); rerr == nil && cerr != nil {
			rerr = cerr
		}
		if rerr != nil {
			return rerr
		}
		cfg.BWTrace = &tr
	}

	if *tracePath != "" {
		f, ferr := os.Open(*tracePath)
		if ferr != nil {
			return ferr
		}
		stream, rerr := video.ReadTrace(f, video.DefaultSpec(cfg.Title, cfg.Rung))
		if cerr := f.Close(); rerr == nil && cerr != nil {
			rerr = cerr
		}
		if rerr != nil {
			return rerr
		}
		cfg.Trace = stream
		cfg.Duration = 0 // derive from the trace
	}

	if *viewers > 0 {
		if *batch > 0 {
			return fmt.Errorf("-viewers (cohort mode) and -batch are mutually exclusive")
		}
		if *timelinePath != "" || *traceOut != "" {
			return fmt.Errorf("-timeline and -trace are per-run and incompatible with -viewers")
		}
		ccfg := videodvfs.NewCohort(
			videodvfs.WithBase(cfg),
			videodvfs.WithViewers(*viewers),
			videodvfs.WithArrivalProcess(videodvfs.CohortArrival{
				Kind:       videodvfs.ArrivalKind(*arrival),
				Window:     videodvfs.Time(*arrivalWin) * videodvfs.Second,
				RatePerSec: *arrivalRate,
			}),
			videodvfs.WithRollupPeriod(videodvfs.Time(*rollup)*videodvfs.Second),
			videodvfs.WithShards(*shards),
		)
		if *cellMbps != 0 {
			ccfg.Cell = &videodvfs.CohortCell{
				CapacityMbps:  *cellMbps,
				PerViewerMbps: *cellFlowMbps,
				Sectors:       *sectors,
			}
		}
		return cohortRun(os.Stdout, ccfg, *jsonOut)
	}

	if *batch > 0 {
		if *timelinePath != "" {
			return fmt.Errorf("-timeline is per-run and incompatible with -batch")
		}
		if *traceOut != "" {
			return fmt.Errorf("-trace is per-run and incompatible with -batch")
		}
		return batchRun(os.Stdout, cfg, *batch, *parallel, *jsonOut)
	}

	var traceSink videodvfs.TraceSink
	if *traceOut != "" {
		// Shield stdout from the sink's Close (it closes io.Closers).
		w := io.Writer(struct{ io.Writer }{os.Stdout})
		if *traceOut != "-" {
			f, terr := os.Create(*traceOut)
			if terr != nil {
				return terr
			}
			defer f.Close()
			w = f
		}
		traceSink = videodvfs.NewJSONLTracer(w)
		cfg.Tracer = traceSink
	}

	var timeline *csv.Writer
	if *timelinePath != "" {
		f, terr := os.Create(*timelinePath)
		if terr != nil {
			return terr
		}
		defer func() {
			timeline.Flush()
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "dvfsim: close timeline:", cerr)
			}
		}()
		timeline = csv.NewWriter(f)
		if terr := timeline.Write([]string{"t_s", "freq_ghz", "cpu_w", "buffer_s"}); terr != nil {
			return terr
		}
		cfg.OnSample = func(t videodvfs.Time, freqGHz, cpuW, bufferSec float64) {
			_ = timeline.Write([]string{
				strconv.FormatFloat(t.Seconds(), 'f', 1, 64),
				strconv.FormatFloat(freqGHz, 'f', 3, 64),
				strconv.FormatFloat(cpuW, 'f', 3, 64),
				strconv.FormatFloat(bufferSec, 'f', 2, 64),
			})
		}
	}

	res, err := videodvfs.Run(cfg)
	if traceSink != nil {
		if cerr := traceSink.Close(); cerr != nil && err == nil {
			return fmt.Errorf("trace sink: %w", cerr)
		}
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		return reportJSON(os.Stdout, res)
	}
	report(cfg, res)
	return nil
}

// batchRun fans cfg across n seeds through the campaign pool and reports
// per-seed lines plus aggregate statistics (or a JSON array with -json).
func batchRun(w io.Writer, cfg videodvfs.RunConfig, n, workers int, jsonOut bool) error {
	cfgs := make([]videodvfs.RunConfig, n)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + int64(i)
	}
	outs := videodvfs.RunAll(cfgs, workers)

	if jsonOut {
		docs := make([]map[string]any, 0, n)
		for _, o := range outs {
			if o.Err != nil {
				return fmt.Errorf("seed %d: %w", o.Config.Seed, o.Err)
			}
			doc := flatDoc(o.Result)
			doc["seed"] = o.Config.Seed
			docs = append(docs, doc)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(docs)
	}

	fmt.Fprintf(w, "batch: %d sessions, %s %s %s over %s, governor=%s abr=%s seeds=%d..%d\n\n",
		n, cfg.Device.Name, cfg.Title.Name, cfg.Rung.Name, cfg.Net, cfg.Governor, cfg.ABR,
		cfg.Seed, cfg.Seed+int64(n-1))
	type metric struct {
		name string
		of   func(videodvfs.RunResult) float64
		acc  stats.Online
	}
	metrics := []*metric{
		{name: "cpu_j", of: func(r videodvfs.RunResult) float64 { return r.CPUJ }},
		{name: "radio_j", of: func(r videodvfs.RunResult) float64 { return r.RadioJ }},
		{name: "total_j", of: func(r videodvfs.RunResult) float64 { return r.TotalJ() }},
		{name: "mean_ghz", of: func(r videodvfs.RunResult) float64 { return r.MeanFreqGHz }},
		{name: "startup_s", of: func(r videodvfs.RunResult) float64 { return r.QoE.StartupDelay.Seconds() }},
		{name: "rebuf_s", of: func(r videodvfs.RunResult) float64 { return r.QoE.RebufferTime.Seconds() }},
		{name: "drops", of: func(r videodvfs.RunResult) float64 { return float64(r.QoE.DroppedFrames) }},
	}
	failed := 0
	for _, o := range outs {
		if o.Err != nil {
			failed++
			fmt.Fprintf(w, "  seed %-4d FAILED: %v\n", o.Config.Seed, o.Err)
			continue
		}
		fmt.Fprintf(w, "  seed %-4d cpu %7.1f J  radio %7.1f J  total %7.1f J  drops %3d  rebuf %5.2f s\n",
			o.Config.Seed, o.Result.CPUJ, o.Result.RadioJ, o.Result.TotalJ(),
			o.Result.QoE.DroppedFrames, o.Result.QoE.RebufferTime.Seconds())
		for _, m := range metrics {
			m.acc.Add(m.of(o.Result))
		}
	}
	fmt.Fprintf(w, "\naggregate over %d runs (%d failed):\n", n-failed, failed)
	fmt.Fprintf(w, "  %-10s %10s %10s %10s %10s\n", "metric", "mean", "std", "min", "max")
	for _, m := range metrics {
		fmt.Fprintf(w, "  %-10s %10.2f %10.2f %10.2f %10.2f\n",
			m.name, m.acc.Mean(), m.acc.Std(), m.acc.Min(), m.acc.Max())
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d runs failed", failed, n)
	}
	return nil
}

// cohortRun executes a cohort and reports the aggregate outcome: rollup
// progress lines during the run, then the final distributions (or the
// CohortResult as JSON with -json).
func cohortRun(w io.Writer, cfg videodvfs.CohortConfig, jsonOut bool) error {
	if !jsonOut {
		cfg.OnRollup = func(r videodvfs.CohortRollup) {
			fmt.Fprintf(w, "  t=%6.0fs joined %7d  active %7d  completed %7d  errors %d\n",
				r.T.Seconds(), r.Joined, r.Active, r.Completed, r.Errors)
		}
		fmt.Fprintf(w, "cohort: %d viewers, %s %s %s over %s, governor=%s arrival=%s\n\n",
			cfg.Viewers, cfg.Base.Device.Name, cfg.Base.Title.Name, cfg.Base.Rung.Name,
			cfg.Base.Net, cfg.Base.Governor, cfg.Arrival.Kind)
	}
	res, err := videodvfs.RunCohort(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(w, "\ncompleted %d/%d (%d horizon-cut, %d errors), sim end %.1f s, %d shards\n",
		res.Completed, res.Viewers, res.HorizonCut, res.Errors, res.SimEnd.Seconds(), res.Shards)
	if res.FirstError != "" {
		fmt.Fprintf(w, "first error: %s\n", res.FirstError)
	}
	fmt.Fprintf(w, "\n  %-14s %10s %10s %10s %10s %10s\n", "metric", "mean", "p10", "p50", "p90", "p99")
	for _, row := range []struct {
		name string
		d    videodvfs.CohortDist
	}{
		{"energy_j", res.EnergyJ},
		{"rebuffer_ratio", res.RebufferRatio},
		{"startup_s", res.StartupDelayS},
	} {
		fmt.Fprintf(w, "  %-14s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			row.name, row.d.Mean, row.d.P10, row.d.P50, row.d.P90, row.d.P99)
	}
	fmt.Fprintf(w, "\n  component totals: cpu %.0f J, radio %.0f J, display %.0f J\n",
		res.CPUJ, res.RadioJ, res.DisplayJ)
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d viewers failed", res.Errors, res.Viewers)
	}
	return nil
}

// reportJSON emits the result as a flat JSON document for scripting.
func reportJSON(w io.Writer, res videodvfs.RunResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flatDoc(res))
}

// flatDoc flattens a result into the scripting-friendly JSON shape.
func flatDoc(res videodvfs.RunResult) map[string]any {
	return map[string]any{
		"governor":        res.Governor,
		"cpuJ":            res.CPUJ,
		"radioJ":          res.RadioJ,
		"displayJ":        res.DisplayJ,
		"totalJ":          res.TotalJ(),
		"meanFreqGHz":     res.MeanFreqGHz,
		"simEndS":         res.SimEnd.Seconds(),
		"completed":       res.QoE.Completed,
		"startupS":        res.QoE.StartupDelay.Seconds(),
		"rebufferCount":   res.QoE.RebufferCount,
		"rebufferS":       res.QoE.RebufferTime.Seconds(),
		"droppedFrames":   res.QoE.DroppedFrames,
		"displayedFrames": res.QoE.DisplayedFrames,
		"totalFrames":     res.QoE.TotalFrames,
		"meanRungMbps":    res.QoE.MeanRungBps / 1e6,
		"rungSwitches":    res.QoE.RungSwitches,
		"radioPromotions": res.RadioPromotions,
		"fetches":         res.Fetches,
	}
}

func report(cfg videodvfs.RunConfig, res videodvfs.RunResult) {
	fmt.Printf("session: %s %s %s over %s, governor=%s abr=%s seed=%d\n",
		cfg.Device.Name, cfg.Title.Name, cfg.Rung.Name, cfg.Net, res.Governor, cfg.ABR, cfg.Seed)
	fmt.Printf("completed=%v wall=%.1fs\n\n", res.QoE.Completed, res.SimEnd.Seconds())

	fmt.Println("energy:")
	fmt.Printf("  cpu     %8.1f J\n", res.CPUJ)
	fmt.Printf("  radio   %8.1f J\n", res.RadioJ)
	fmt.Printf("  display %8.1f J\n", res.DisplayJ)
	fmt.Printf("  total   %8.1f J  (mean %.2f W)\n\n", res.TotalJ(), res.TotalJ()/res.SimEnd.Seconds())

	q := res.QoE
	fmt.Println("qoe:")
	fmt.Printf("  startup    %6.2f s\n", q.StartupDelay.Seconds())
	fmt.Printf("  rebuffers  %6d  (%.2f s)\n", q.RebufferCount, q.RebufferTime.Seconds())
	fmt.Printf("  dropped    %6d / %d (%.2f%%)\n", q.DroppedFrames, q.TotalFrames, q.DropRate()*100)
	fmt.Printf("  mean rate  %6.2f Mbps, %d switches\n\n", q.MeanRungBps/1e6, q.RungSwitches)

	fmt.Printf("cpu: mean %.2f GHz, residency by OPP:\n", res.MeanFreqGHz)
	idxs := make([]int, 0, len(res.FreqResidency))
	for idx := range res.FreqResidency {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		if idx < 0 || idx >= len(cfg.Device.OPPs) {
			continue
		}
		sec := res.FreqResidency[idx].Seconds()
		fmt.Printf("  %5.0f MHz %7.1f s  %s\n", cfg.Device.OPPs[idx].FreqHz/1e6, sec,
			strings.Repeat("#", int(40*sec/res.SimEnd.Seconds())))
	}

	fmt.Printf("\nradio: %d promotions, residency:\n", res.RadioPromotions)
	for _, st := range []netsim.RRCState{netsim.StateDCH, netsim.StateFACH, netsim.StateIdle} {
		fmt.Printf("  %-5s %7.1f s\n", st, res.RadioResidency[st].Seconds())
	}
	if res.Pred != nil && res.Pred.N > 0 {
		fmt.Printf("\npredictor: n=%d under=%.1f%% relerr p50=%.1f%% p99=%.1f%%\n",
			res.Pred.N, res.Pred.UnderRate()*100, res.Pred.RelErrP(50)*100, res.Pred.RelErrP(99)*100)
	}
}
