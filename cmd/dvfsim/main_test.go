package main

import (
	"os"
	"testing"

	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

func TestRunDefaultFlags(t *testing.T) {
	if err := run([]string{"-duration", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllGovernorsAndNets(t *testing.T) {
	for _, gov := range []string{"performance", "ondemand", "energyaware", "oracle"} {
		if err := run([]string{"-governor", gov, "-duration", "5"}); err != nil {
			t.Fatalf("%s: %v", gov, err)
		}
	}
	for _, net := range []string{"wifi", "lte", "umts"} {
		if err := run([]string{"-net", net, "-duration", "5"}); err != nil {
			t.Fatalf("%s: %v", net, err)
		}
	}
}

func TestRunOptions(t *testing.T) {
	args := []string{
		"-governor", "energyaware", "-device", "midrange", "-res", "480p",
		"-title", "news", "-abr", "bba", "-net", "lte", "-duration", "8",
		"-seed", "3", "-buffer", "4", "-lowwater", "2", "-fastdormancy",
		"-nobackground",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-governor", "warp"},
		{"-device", "toaster"},
		{"-res", "9000p"},
		{"-title", "nature"},
		{"-net", "pigeon", "-duration", "5"},
		{"-abr", "mpc", "-duration", "5"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestTraceReplay(t *testing.T) {
	// Write a trace in tracegen's format and replay it end to end.
	dir := t.TempDir()
	trace := dir + "/v.csv"
	spec := video.DefaultSpec(video.TitleNews, video.R480p)
	stream, err := video.Generate(spec, 5*sim.Second, 9)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := video.WriteTrace(f, stream); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-videotrace", trace, "-res", "480p", "-title", "news"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-videotrace", dir + "/missing.csv"}); err == nil {
		t.Fatal("want error for missing trace file")
	}
}

func TestJSONOutput(t *testing.T) {
	if err := run([]string{"-duration", "5", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineOutput(t *testing.T) {
	out := t.TempDir() + "/tl.csv"
	if err := run([]string{"-duration", "5", "-timeline", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := len(data)
	if lines == 0 {
		t.Fatal("empty timeline")
	}
	head := string(data[:30])
	if head[:4] != "t_s," {
		t.Fatalf("timeline header wrong: %q", head)
	}
}
