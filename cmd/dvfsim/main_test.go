package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"videodvfs"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

func TestRunDefaultFlags(t *testing.T) {
	if err := run([]string{"-duration", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllGovernorsAndNets(t *testing.T) {
	for _, gov := range []string{"performance", "ondemand", "energyaware", "oracle"} {
		if err := run([]string{"-governor", gov, "-duration", "5"}); err != nil {
			t.Fatalf("%s: %v", gov, err)
		}
	}
	for _, net := range []string{"wifi", "lte", "umts"} {
		if err := run([]string{"-net", net, "-duration", "5"}); err != nil {
			t.Fatalf("%s: %v", net, err)
		}
	}
}

func TestRunOptions(t *testing.T) {
	args := []string{
		"-governor", "energyaware", "-device", "midrange", "-res", "480p",
		"-title", "news", "-abr", "bba", "-net", "lte", "-duration", "8",
		"-seed", "3", "-buffer", "4", "-lowwater", "2", "-fastdormancy",
		"-nobackground",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-governor", "warp"},
		{"-device", "toaster"},
		{"-res", "9000p"},
		{"-title", "nature"},
		{"-net", "pigeon", "-duration", "5"},
		{"-abr", "mpc", "-duration", "5"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestTraceReplay(t *testing.T) {
	// Write a trace in tracegen's format and replay it end to end.
	dir := t.TempDir()
	trace := dir + "/v.csv"
	spec := video.DefaultSpec(video.TitleNews, video.R480p)
	stream, err := video.Generate(spec, 5*sim.Second, 9)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := video.WriteTrace(f, stream); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-videotrace", trace, "-res", "480p", "-title", "news"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-videotrace", dir + "/missing.csv"}); err == nil {
		t.Fatal("want error for missing trace file")
	}
}

func TestBWTraceFileReplay(t *testing.T) {
	// Write a bandwidth trace in the canonical JSONL form and replay it
	// through the full -net trace flag plumbing.
	tr := videodvfs.BWTrace{Samples: []videodvfs.BWSample{
		{Start: 0, End: 2, Bytes: 2.5e6, Fetch: 0},
		{Start: 2.2, End: 4, Bytes: 2.2e6, Fetch: 1},
	}}
	path := t.TempDir() + "/bw.jsonl"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := videodvfs.WriteBWTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-net", "trace", "-trace-file", path, "-governor", "ondemand",
		"-res", "360p", "-title", "news", "-duration", "6",
		"-nobackground", "-strict", "-json",
	}
	if err := run(args); err != nil {
		t.Fatalf("dvfsim -net trace: %v", err)
	}
	// Omitting the trace file must fail with the config error, not panic.
	err = run([]string{"-net", "trace", "-duration", "1"})
	if err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("missing -trace-file: got %v", err)
	}
}

func TestBatchText(t *testing.T) {
	var buf strings.Builder
	cfg := videodvfs.DefaultSession()
	cfg.Duration = 8 * sim.Second
	if err := batchRun(&buf, cfg, 3, 2, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"batch: 3 sessions", "seeds=1..3", "seed 1", "seed 3", "aggregate over 3 runs (0 failed)", "cpu_j", "mean_ghz"} {
		if !strings.Contains(out, want) {
			t.Errorf("batch report missing %q:\n%s", want, out)
		}
	}
}

func TestBatchJSON(t *testing.T) {
	var buf strings.Builder
	cfg := videodvfs.DefaultSession()
	cfg.Duration = 8 * sim.Second
	if err := batchRun(&buf, cfg, 2, 0, true); err != nil {
		t.Fatal(err)
	}
	var docs []map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &docs); err != nil {
		t.Fatalf("batch -json is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(docs) != 2 {
		t.Fatalf("got %d docs, want 2", len(docs))
	}
	if docs[0]["seed"] != float64(1) || docs[1]["seed"] != float64(2) {
		t.Fatalf("seeds out of order: %v, %v", docs[0]["seed"], docs[1]["seed"])
	}
	if docs[0]["cpuJ"] == nil || docs[0]["completed"] != true {
		t.Fatalf("doc missing fields: %v", docs[0])
	}
}

func TestBatchReportsFailures(t *testing.T) {
	var buf strings.Builder
	cfg := videodvfs.DefaultSession()
	// A 5 s horizon starves every 60 s session: all runs must fail and
	// batchRun must say so rather than print empty aggregates quietly.
	cfg.Horizon = 5 * sim.Second
	err := batchRun(&buf, cfg, 2, 1, false)
	if err == nil {
		t.Fatal("want error when every run fails")
	}
	if !strings.Contains(err.Error(), "2 of 2 runs failed") {
		t.Fatalf("error should count failures: %v", err)
	}
	if !strings.Contains(buf.String(), "FAILED") {
		t.Fatalf("report should mark failed seeds:\n%s", buf.String())
	}
}

func TestBatchFlagWiring(t *testing.T) {
	if err := run([]string{"-batch", "2", "-duration", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-batch", "2", "-duration", "5", "-timeline", t.TempDir() + "/x.csv"}); err == nil {
		t.Fatal("want error for -batch with -timeline")
	}
}

func TestJSONOutput(t *testing.T) {
	if err := run([]string{"-duration", "5", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineOutput(t *testing.T) {
	out := t.TempDir() + "/tl.csv"
	if err := run([]string{"-duration", "5", "-timeline", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := len(data)
	if lines == 0 {
		t.Fatal("empty timeline")
	}
	head := string(data[:30])
	if head[:4] != "t_s," {
		t.Fatalf("timeline header wrong: %q", head)
	}
}
