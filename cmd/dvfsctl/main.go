// Command dvfsctl fronts a fleet of dvfsd workers as one controller
// service: aggregate requests (batch sweeps, cohort runs) are sharded
// across the workers by consistent-hashing each unit of work's
// content-addressed key — keeping every worker's result cache hot and
// disjoint — and the responses merge back into the exact answer a single
// dvfsd would have produced.
//
// Usage:
//
//	dvfsctl -workers http://10.0.0.1:8080,http://10.0.0.2:8080
//	dvfsctl -addr :9090 -concurrency 32 -retries 3
//	dvfsctl -eject-after 3 -probe-s 1   # death detection / revival
//
// Endpoints (see README for request bodies and curl examples):
//
//	POST /v1/sweep   batch sweep, points fanned across the fleet
//	POST /v1/cohort  cohort run, shards fanned across the fleet;
//	                 answers with the summary NDJSON line
//	GET  /healthz    liveness (503 when draining or no worker alive)
//	GET  /metrics    per-worker queue depth, hit ratio, retries, ejections
//
// SIGINT/SIGTERM drain gracefully: admission stops, in-flight merges
// finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"videodvfs/internal/fleet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dvfsctl", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":9090", "listen address")
		workers     = fs.String("workers", "", "comma-separated dvfsd base URLs (required)")
		concurrency = fs.Int("concurrency", 0, "max in-flight worker requests (0 = 4x workers)")
		timeoutS    = fs.Float64("timeout-s", 60, "per-attempt worker request timeout in seconds")
		retries     = fs.Int("retries", 2, "retry attempts per dispatch beyond the first")
		backoffMS   = fs.Float64("backoff-ms", 100, "base of the jittered exponential retry backoff")
		ejectAfter  = fs.Int("eject-after", 3, "consecutive failures before a worker is ejected from routing")
		probeS      = fs.Float64("probe-s", 1, "health-probe cadence in seconds")
		maxSweep    = fs.Int("max-sweep-runs", 1024, "largest accepted sweep expansion")
		drainS      = fs.Float64("drain-timeout-s", 60, "seconds to wait for in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("no workers: pass -workers with at least one dvfsd base URL")
	}

	ctl, err := fleet.New(fleet.Config{
		Workers:       urls,
		Concurrency:   *concurrency,
		Timeout:       time.Duration(*timeoutS * float64(time.Second)),
		Retries:       *retries,
		Backoff:       time.Duration(*backoffMS * float64(time.Millisecond)),
		EjectAfter:    *ejectAfter,
		ProbeInterval: time.Duration(*probeS * float64(time.Second)),
		MaxSweepRuns:  *maxSweep,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: ctl.Handler()}
	log.Printf("dvfsctl: listening on %s (workers=%d concurrency=%d retries=%d)",
		ln.Addr(), len(urls), *concurrency, *retries)

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("dvfsctl: %v — draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainS*float64(time.Second)))
	defer cancel()
	// Stop admission and the probe loop first, then close the HTTP side;
	// handlers still merging in-flight dispatches finish cleanly.
	if err := ctl.Shutdown(ctx); err != nil {
		log.Printf("dvfsctl: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	log.Printf("dvfsctl: drained")
	return <-errc
}
