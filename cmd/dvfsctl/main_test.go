package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"videodvfs/internal/server"
)

// logCapture tees the standard logger into a buffer so the test can
// recover the ephemeral listen address from the startup line.
type logCapture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *logCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *logCapture) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (\S+)`)

// TestRunServesAndDrainsOnSignal boots a real dvfsd worker, points the
// controller at it on an ephemeral port, exercises /healthz and a real
// fanned-out /v1/sweep, then delivers SIGTERM and asserts run() drains
// and returns nil.
func TestRunServesAndDrainsOnSignal(t *testing.T) {
	wsrv := server.New(server.Config{Workers: 2})
	wts := httptest.NewServer(wsrv.Handler())
	t.Cleanup(wts.Close)

	capt := &logCapture{}
	prev := log.Writer()
	log.SetOutput(capt)
	defer log.SetOutput(prev)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", wts.URL, "-drain-timeout-s", "30"})
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(capt.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before listening: %v\nlog:\n%s", err, capt.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen line within deadline\nlog:\n%s", capt.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body := `{"base": {"duration_s": 5}, "seeds": [1, 2]}`
	resp, err = http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("sweep request: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d body=%s", resp.StatusCode, raw)
	}
	var sb struct {
		Count    int `json:"count"`
		Outcomes []struct {
			Run   json.RawMessage `json:"run"`
			Error string          `json:"error"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal(raw, &sb); err != nil {
		t.Fatalf("sweep body not JSON: %v\n%s", err, raw)
	}
	if sb.Count != 2 || len(sb.Outcomes) != 2 {
		t.Fatalf("sweep body malformed: count=%d outcomes=%d", sb.Count, len(sb.Outcomes))
	}
	for i, r := range sb.Outcomes {
		if r.Error != "" || len(r.Run) == 0 {
			t.Fatalf("sweep point %d failed: error=%q run bytes=%d", i, r.Error, len(r.Run))
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM\nlog:\n%s", err, capt.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run did not exit after SIGTERM\nlog:\n%s", capt.String())
	}
	if !strings.Contains(capt.String(), "drained") {
		t.Fatalf("drain line missing from log:\n%s", capt.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-workers", "http://w", "-retries", "notanint"},
		{},                  // -workers required
		{"-workers", " , "}, // only empty entries
		{"-workers", "http://w", "-addr", "127.0.0.1:notaport"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%q) = nil, want error", args)
		}
	}
}
