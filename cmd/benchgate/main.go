// Command benchgate compares a fresh `go test -bench` run against the
// pinned baseline in bench/baseline.txt and fails the build on hot-path
// regressions. It is the CI teeth behind the repo's performance contract
// (DESIGN.md §8, §11):
//
//   - any allocs/op increase on a pinned benchmark fails, always — the
//     0-alloc reset path and the 8-alloc public Run are hard budgets, not
//     trends;
//   - any B/op increase beyond a few bytes of runtime-background jitter
//     fails, always;
//   - a best-of-samples ns/op regression beyond the threshold (default
//     5%) that also clears the baseline's own sample spread fails, but
//     only when the baseline and current run report the same "cpu:"
//     header — wall-clock comparisons across different machines are
//     noise, and the gate says so instead of guessing.
//
// It also emits a machine-readable summary (runs/sec, ns/op, allocs/op
// per benchmark) for the perf dashboard, and needs no external tooling:
// it parses the standard testing output format directly, so it runs
// anywhere `go test` does, without benchstat.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchmem -count 5 . > bench/current.txt
//	benchgate -baseline bench/baseline.txt -current bench/current.txt -out bench/BENCH_6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark line.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

// benchFile is a parsed benchmark output file: per-name samples plus the
// environment header.
type benchFile struct {
	cpu     string
	samples map[string][]sample
}

// parseBenchOutput reads standard `go test -bench -benchmem` output:
//
//	BenchmarkRunNoTrace-8   1903   604494 ns/op   14952 B/op   8 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so names match across machines.
func parseBenchOutput(path string) (*benchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := &benchFile{samples: make(map[string][]sample)}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			out.cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var s sample
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = v
				seen = true
			case "B/op":
				s.bytesPerOp = v
			case "allocs/op":
				s.allocsPerOp = v
			}
		}
		if seen {
			out.samples[name] = append(out.samples[name], s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.samples) == 0 {
		return nil, fmt.Errorf("no benchmark lines in %s", path)
	}
	return out, nil
}

// best collapses a benchmark's samples to the MINIMUM of each metric.
// Scheduler and cache noise on a shared CI machine only ever ADDS time,
// so the best observed sample is the stable estimator of the code's true
// cost (means on a busy box swing ±15% between back-to-back runs). B/op
// and allocs/op are budgets: a one-off GC or pool-refill blip in a single
// sample must not mask (or fake) a structural regression.
func best(samples []sample) sample {
	m := samples[0]
	for _, s := range samples[1:] {
		if s.nsPerOp < m.nsPerOp {
			m.nsPerOp = s.nsPerOp
		}
		if s.bytesPerOp < m.bytesPerOp {
			m.bytesPerOp = s.bytesPerOp
		}
		if s.allocsPerOp < m.allocsPerOp {
			m.allocsPerOp = s.allocsPerOp
		}
	}
	return m
}

// report is the schema of the emitted JSON summary.
type report struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "bench/baseline.txt", "pinned baseline benchmark output")
	currentPath := fs.String("current", "bench/current.txt", "fresh benchmark output to gate")
	outPath := fs.String("out", "", "write a JSON summary of the current run here")
	maxTime := fs.Float64("maxtime", 0.05, "maximum allowed best-of-samples ns/op regression (fraction)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	baseline, err := parseBenchOutput(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	current, err := parseBenchOutput(*currentPath)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}

	sameCPU := baseline.cpu != "" && baseline.cpu == current.cpu
	if !sameCPU {
		fmt.Printf("benchgate: cpu differs (baseline %q, current %q): time gate skipped, alloc gates still armed\n",
			baseline.cpu, current.cpu)
	}

	names := make([]string, 0, len(current.samples))
	for name := range current.samples {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	reports := make([]report, 0, len(names))
	for _, name := range names {
		cur := best(current.samples[name])
		reports = append(reports, report{
			Name:        name,
			NsPerOp:     cur.nsPerOp,
			RunsPerSec:  1e9 / cur.nsPerOp,
			BytesPerOp:  cur.bytesPerOp,
			AllocsPerOp: cur.allocsPerOp,
		})
		baseSamples, ok := baseline.samples[name]
		if !ok {
			fmt.Printf("benchgate: %s: no baseline (new benchmark) — re-pin with 'make bench-baseline'\n", name)
			continue
		}
		base := best(baseSamples)
		fmt.Printf("benchgate: %-22s %12.0f ns/op (baseline %12.0f, %+6.1f%%)  %6.0f allocs/op (baseline %6.0f)\n",
			name, cur.nsPerOp, base.nsPerOp, 100*(cur.nsPerOp-base.nsPerOp)/base.nsPerOp,
			cur.allocsPerOp, base.allocsPerOp)
		if cur.allocsPerOp > base.allocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %.0f → %.0f",
				name, base.allocsPerOp, cur.allocsPerOp))
		}
		// B/op gets a small absolute slop: on a 0-alloc benchmark the
		// runtime's own background allocations amortize to a few bytes/op
		// that jitter run to run, while any structural regression costs at
		// least one real allocation (16+ bytes) every iteration.
		if cur.bytesPerOp > base.bytesPerOp*1.01+64 {
			failures = append(failures, fmt.Sprintf("%s: B/op regressed %.0f → %.0f",
				name, base.bytesPerOp, cur.bytesPerOp))
		}
		// The time gate needs significance, not just magnitude: the best
		// current sample must be >maxtime slower than the best baseline
		// sample AND slower than every baseline sample. A real regression
		// shifts the whole distribution past both bars; co-tenant noise on
		// a shared box (which only ever adds time) does not.
		baseMax := 0.0
		for _, s := range baseSamples {
			if s.nsPerOp > baseMax {
				baseMax = s.nsPerOp
			}
		}
		if sameCPU && cur.nsPerOp > base.nsPerOp*(1+*maxTime) && cur.nsPerOp > baseMax*(1+*maxTime) {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.0f → %.0f (>%.0f%% and beyond baseline spread)",
				name, base.nsPerOp, cur.nsPerOp, *maxTime*100))
		}
	}

	if *outPath != "" {
		buf, err := json.MarshalIndent(struct {
			CPU        string   `json:"cpu"`
			Benchmarks []report `json:"benchmarks"`
		}{CPU: current.cpu, Benchmarks: reports}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchgate: summary written to %s\n", *outPath)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", f)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(failures))
	}
	fmt.Println("benchgate: all pinned benchmarks within budget")
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}
