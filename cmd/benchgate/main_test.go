package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleOutput = `goos: linux
goarch: amd64
pkg: videodvfs
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunNoTrace-8 	    1903	    604494 ns/op	   14952 B/op	       8 allocs/op
BenchmarkRunNoTrace-8 	    1900	    610000 ns/op	   14960 B/op	       8 allocs/op
BenchmarkRunReset-8   	    2152	    558545 ns/op	      17 B/op	       0 allocs/op
PASS
ok  	videodvfs	2.482s
`

func TestParseBenchOutput(t *testing.T) {
	path := writeTemp(t, "bench.txt", sampleOutput)
	bf, err := parseBenchOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	if bf.cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", bf.cpu)
	}
	if got := len(bf.samples["BenchmarkRunNoTrace"]); got != 2 {
		t.Errorf("RunNoTrace samples = %d, want 2 (GOMAXPROCS suffix must be stripped)", got)
	}
	m := best(bf.samples["BenchmarkRunNoTrace"])
	if m.nsPerOp != 604494 { // min across samples
		t.Errorf("best ns/op = %v, want the minimum sample", m.nsPerOp)
	}
	if m.bytesPerOp != 14952 { // min across samples
		t.Errorf("B/op = %v, want the minimum sample", m.bytesPerOp)
	}
	if m.allocsPerOp != 8 {
		t.Errorf("allocs/op = %v", m.allocsPerOp)
	}
	r := best(bf.samples["BenchmarkRunReset"])
	if r.allocsPerOp != 0 {
		t.Errorf("reset allocs/op = %v, want 0", r.allocsPerOp)
	}
}

func TestParseBenchOutputEmpty(t *testing.T) {
	path := writeTemp(t, "empty.txt", "PASS\nok videodvfs 0.1s\n")
	if _, err := parseBenchOutput(path); err == nil {
		t.Fatal("empty benchmark file did not error")
	}
}

// gate runs the full comparison via the flag-driven entrypoint.
func gate(t *testing.T, baseline, current string) error {
	t.Helper()
	return run([]string{
		"-baseline", writeTemp(t, "baseline.txt", baseline),
		"-current", writeTemp(t, "current.txt", current),
	})
}

func TestGateAllocRegression(t *testing.T) {
	current := `cpu: X
BenchmarkRunReset 	 100	 500000 ns/op	 64 B/op	 1 allocs/op
`
	baseline := `cpu: X
BenchmarkRunReset 	 100	 500000 ns/op	 0 B/op	 0 allocs/op
`
	if err := gate(t, baseline, current); err == nil {
		t.Fatal("alloc regression passed the gate")
	}
}

func TestGateAllocRegressionFailsAcrossCPUs(t *testing.T) {
	current := `cpu: Y
BenchmarkRunReset 	 100	 900000 ns/op	 64 B/op	 3 allocs/op
`
	baseline := `cpu: X
BenchmarkRunReset 	 100	 500000 ns/op	 0 B/op	 0 allocs/op
`
	if err := gate(t, baseline, current); err == nil {
		t.Fatal("alloc regression on a different machine passed the gate")
	}
}

func TestGateBytesRegression(t *testing.T) {
	current := `cpu: X
BenchmarkRunNoTrace 	 100	 500000 ns/op	 16000 B/op	 8 allocs/op
`
	baseline := `cpu: X
BenchmarkRunNoTrace 	 100	 500000 ns/op	 15000 B/op	 8 allocs/op
`
	if err := gate(t, baseline, current); err == nil {
		t.Fatal("1 KB/op regression passed the gate")
	}
}

func TestGateBytesJitterTolerated(t *testing.T) {
	current := `cpu: X
BenchmarkRunReset 	 100	 500000 ns/op	 9 B/op	 0 allocs/op
`
	baseline := `cpu: X
BenchmarkRunReset 	 100	 500000 ns/op	 8 B/op	 0 allocs/op
`
	if err := gate(t, baseline, current); err != nil {
		t.Fatalf("1-byte background jitter failed the gate: %v", err)
	}
}

func TestGateTimeRegressionSameCPU(t *testing.T) {
	current := `cpu: X
BenchmarkRunNoTrace 	 100	 600000 ns/op	 0 B/op	 0 allocs/op
`
	baseline := `cpu: X
BenchmarkRunNoTrace 	 100	 500000 ns/op	 0 B/op	 0 allocs/op
`
	if err := gate(t, baseline, current); err == nil {
		t.Fatal("20% time regression on the same machine passed the gate")
	}
}

func TestGateTimeSkippedAcrossCPUs(t *testing.T) {
	current := `cpu: Y
BenchmarkRunNoTrace 	 100	 900000 ns/op	 0 B/op	 0 allocs/op
`
	baseline := `cpu: X
BenchmarkRunNoTrace 	 100	 500000 ns/op	 0 B/op	 0 allocs/op
`
	if err := gate(t, baseline, current); err != nil {
		t.Fatalf("time-only delta across machines failed the gate: %v", err)
	}
}

func TestGateTimeNoiseWithinBaselineSpread(t *testing.T) {
	// Baseline samples span 500–650 µs (noisy box); a current best inside
	// that spread is noise, not a regression, even though it exceeds 5%
	// over the baseline best.
	current := `cpu: X
BenchmarkRunNoTrace 	 100	 600000 ns/op	 0 B/op	 0 allocs/op
`
	baseline := `cpu: X
BenchmarkRunNoTrace 	 100	 500000 ns/op	 0 B/op	 0 allocs/op
BenchmarkRunNoTrace 	 100	 650000 ns/op	 0 B/op	 0 allocs/op
`
	if err := gate(t, baseline, current); err != nil {
		t.Fatalf("time delta inside the baseline's own spread failed the gate: %v", err)
	}
}

func TestGateWithinBudgetPasses(t *testing.T) {
	current := `cpu: X
BenchmarkRunNoTrace 	 100	 510000 ns/op	 100 B/op	 8 allocs/op
BenchmarkRunReset 	 100	 450000 ns/op	 0 B/op	 0 allocs/op
`
	baseline := `cpu: X
BenchmarkRunNoTrace 	 100	 500000 ns/op	 120 B/op	 8 allocs/op
BenchmarkRunReset 	 100	 460000 ns/op	 0 B/op	 0 allocs/op
`
	if err := gate(t, baseline, current); err != nil {
		t.Fatalf("in-budget run failed the gate: %v", err)
	}
}
