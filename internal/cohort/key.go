package cohort

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
)

// Canonical serializes every result-determining field of a cohort config
// into a deterministic byte string, in the same line-oriented style as
// experiments.CanonicalConfig (DESIGN.md §9): the cohort-level lines
// first, then the embedded base config's canonical bytes. The second
// return is false when the cohort is uncacheable: callback-carrying
// cohorts (OnViewer, OnRollup) and cancelable ones (Cancel) observe
// state outside the config, and an
// uncacheable base (Trace/OnSample/Tracer/Strict) stays uncacheable at
// the cohort level for the same reasons it does per run.
//
// Resolved values are encoded where a zero means "derive" — shard count,
// seed, rollup period — so two spellings of the same effective cohort
// share one identity.
func Canonical(c Config) ([]byte, bool) {
	if c.OnViewer != nil || c.OnRollup != nil || c.Cancel != nil {
		return nil, false
	}
	base, ok := experiments.CanonicalConfig(c.Base)
	if !ok {
		return nil, false
	}
	b := make([]byte, 0, len(base)+256)
	field := func(key string) { b = append(append(b, "cohort."...), key...) }
	end := func() { b = append(b, '\n') }
	str := func(key, v string) { field(key); b = append(b, '='); b = append(b, v...); end() }
	num := func(key string, v int64) { field(key); b = append(b, '='); b = strconv.AppendInt(b, v, 10); end() }
	flt := func(key string, v float64) {
		field(key)
		b = append(b, '=')
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
		end()
	}
	dur := func(key string, v sim.Time) { flt(key, v.Seconds()) }

	num("viewers", int64(c.Viewers))
	kind := c.Arrival.Kind
	if kind == "" {
		kind = ArrivalAll
	}
	str("arrival.kind", string(kind))
	dur("arrival.window", c.Arrival.Window)
	flt("arrival.rate", c.Arrival.RatePerSec)
	if c.Cell == nil {
		str("cell", "")
	} else {
		flt("cell.capacity", c.Cell.CapacityMbps)
		flt("cell.perviewer", c.Cell.PerViewerMbps)
		num("cell.sectors", int64(c.sectors()))
	}
	num("shards", int64(c.shardCount()))
	dur("rollup", c.rollup())
	num("seed", c.seed())
	return append(b, base...), true
}

// Key returns the hex SHA-256 of the cohort's canonical serialization,
// the content-addressed identity a result cache stores cohorts under —
// the cohort-level twin of experiments.ConfigKey. The second return is
// false for uncacheable cohorts (see Canonical).
func Key(c Config) (string, bool) {
	b, ok := Canonical(c)
	if !ok {
		return "", false
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), true
}
