package cohort

import (
	"fmt"
	"runtime"
	"sort"

	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
	"videodvfs/internal/stats"
)

// This file is the cohort's distributed seam. A cohort's shard layout —
// count, viewer assignment, join times, per-viewer seeds — is a pure
// function of its Config, so any subset of shards can be simulated on any
// machine and the per-shard aggregation states merged back in shard-index
// order reproduce the single-node Result bit for bit. RunPart executes a
// subset; MergeParts reassembles the whole. dvfsd serves RunPart as
// POST /v1/cohort/part and dvfsctl fans a cohort's shards across workers,
// merging the returned Partials.

// ShardState is one shard's complete serialized aggregation state: the
// wire twin of the internal agg struct. Counters are integers, energy
// sums are the exact per-shard float totals (accumulated in event order),
// and the distribution sketches carry their full bin state — everything a
// merge needs to be exact.
type ShardState struct {
	// Shard is the global shard index (0 ≤ Shard < ShardCount).
	Shard int `json:"shard"`
	// Started/Finished/Completed/HorizonCut/Errors mirror the shard's
	// population accounting at the end of its run.
	Started    int `json:"started"`
	Finished   int `json:"finished"`
	Completed  int `json:"completed"`
	HorizonCut int `json:"horizon_cut"`
	Errors     int `json:"errors"`
	// FirstError is the shard's first failure text ("" when none).
	FirstError string `json:"first_error,omitempty"`
	// CPUJ/RadioJ/DisplayJ are the shard's exact component-energy sums
	// over completed viewers.
	CPUJ     float64 `json:"cpu_j"`
	RadioJ   float64 `json:"radio_j"`
	DisplayJ float64 `json:"display_j"`
	// MaxEnd is the virtual time the shard's last viewer finished at.
	MaxEnd sim.Time `json:"max_end"`
	// Energy/Rebuffer/Startup are the shard's distribution sketches.
	Energy   stats.SketchState `json:"energy"`
	Rebuffer stats.SketchState `json:"rebuffer"`
	Startup  stats.SketchState `json:"startup"`
}

// Partial is the outcome of running a subset of a cohort's shards:
// identity fields pinning which cohort layout it belongs to, plus one
// ShardState per executed shard in shard-index order.
type Partial struct {
	// Viewers and Shards pin the cohort layout the states were computed
	// under; MergeParts refuses to mix layouts.
	Viewers int `json:"viewers"`
	Shards  int `json:"shards"`
	// States holds the executed shards' aggregation states, in
	// shard-index order.
	States []ShardState `json:"states"`
}

// RunPart executes only the named shards of cfg's cohort and returns
// their serialized aggregation states. The shard layout is derived from
// cfg exactly as Run derives it, so shard i simulated here is
// event-for-event identical to shard i inside a whole-cohort Run; merging
// every shard's Partial (MergeParts) reproduces Run's Result exactly.
// Rollup callbacks are not supported on partial runs (a part cannot see
// the whole cohort's barrier state); OnViewer fires as usual.
func RunPart(cfg Config, shardSet []int) (Partial, error) {
	if err := cfg.Validate(); err != nil {
		return Partial{}, err
	}
	if cfg.OnRollup != nil {
		return Partial{}, fmt.Errorf("cohort: %w: OnRollup not supported on partial runs",
			experiments.ErrInvalidConfig)
	}
	nShards := cfg.shardCount()
	if len(shardSet) == 0 {
		return Partial{}, fmt.Errorf("cohort: %w: empty shard set", experiments.ErrInvalidConfig)
	}
	set := append([]int(nil), shardSet...)
	sort.Ints(set)
	for i, idx := range set {
		if idx < 0 || idx >= nShards {
			return Partial{}, fmt.Errorf("cohort: %w: shard %d outside [0, %d)",
				experiments.ErrInvalidConfig, idx, nShards)
		}
		if i > 0 && set[i-1] == idx {
			return Partial{}, fmt.Errorf("cohort: %w: shard %d named twice", experiments.ErrInvalidConfig, idx)
		}
	}

	joins := computeJoins(cfg)
	shards := make([]*shard, len(set))
	for i, idx := range set {
		shards[i] = newShard(&cfg, idx, nShards, joins)
	}

	var maxJoin sim.Time
	for _, j := range joins {
		if j > maxJoin {
			maxJoin = j
		}
	}
	step := cfg.rollup()
	bound := maxJoin + cfg.viewerHorizon() + step
	workers := runtime.GOMAXPROCS(0)

	for t := step; ; t += step {
		stepAll(shards, t, workers)
		if err := canceled(cfg); err != nil {
			return Partial{}, err
		}
		if allDone(shards) || t > bound {
			break
		}
	}

	p := Partial{Viewers: cfg.Viewers, Shards: nShards, States: make([]ShardState, len(shards))}
	for i, sh := range shards {
		p.States[i] = ShardState{
			Shard:      sh.idx,
			Started:    sh.agg.started,
			Finished:   sh.agg.finished,
			Completed:  sh.agg.completed,
			HorizonCut: sh.agg.horizonCut,
			Errors:     sh.agg.errors,
			FirstError: sh.agg.firstErr,
			CPUJ:       sh.agg.cpuJ,
			RadioJ:     sh.agg.radioJ,
			DisplayJ:   sh.agg.displayJ,
			MaxEnd:     sh.agg.maxEnd,
			Energy:     sh.agg.energy.State(),
			Rebuffer:   sh.agg.rebuffer.State(),
			Startup:    sh.agg.startup.State(),
		}
	}
	return p, nil
}

// MergeParts reassembles a whole cohort's Result from partial runs. The
// parts must agree on the cohort layout (Viewers, Shards) and together
// cover every shard exactly once. All merging happens in global
// shard-index order — counter sums, energy sums, sketch merges — which is
// precisely the order a single-node Run folds its shards in, so the
// merged Result is bit-identical to the single-node one.
func MergeParts(parts []Partial) (Result, error) {
	if len(parts) == 0 {
		return Result{}, fmt.Errorf("cohort: no parts to merge")
	}
	viewers, nShards := parts[0].Viewers, parts[0].Shards
	states := make([]*ShardState, nShards)
	for pi := range parts {
		p := &parts[pi]
		if p.Viewers != viewers || p.Shards != nShards {
			return Result{}, fmt.Errorf("cohort: merging mismatched layouts: %d viewers/%d shards vs %d/%d",
				p.Viewers, p.Shards, viewers, nShards)
		}
		for si := range p.States {
			st := &p.States[si]
			if st.Shard < 0 || st.Shard >= nShards {
				return Result{}, fmt.Errorf("cohort: shard %d outside [0, %d)", st.Shard, nShards)
			}
			if states[st.Shard] != nil {
				return Result{}, fmt.Errorf("cohort: shard %d present in two parts", st.Shard)
			}
			states[st.Shard] = st
		}
	}
	for i, st := range states {
		if st == nil {
			return Result{}, fmt.Errorf("cohort: shard %d missing from every part", i)
		}
	}

	r := Result{Viewers: viewers, Shards: nShards}
	energy := stats.NewSketch(sketchAlpha)
	rebuffer := stats.NewSketch(sketchAlpha)
	startup := stats.NewSketch(sketchAlpha)
	for _, st := range states {
		r.Completed += st.Completed
		r.HorizonCut += st.HorizonCut
		r.Errors += st.Errors
		if r.FirstError == "" {
			r.FirstError = st.FirstError
		}
		r.CPUJ += st.CPUJ
		r.RadioJ += st.RadioJ
		r.DisplayJ += st.DisplayJ
		if st.MaxEnd > r.SimEnd {
			r.SimEnd = st.MaxEnd
		}
		if err := mergeState(energy, st.Energy); err != nil {
			return Result{}, fmt.Errorf("cohort: shard %d energy sketch: %w", st.Shard, err)
		}
		if err := mergeState(rebuffer, st.Rebuffer); err != nil {
			return Result{}, fmt.Errorf("cohort: shard %d rebuffer sketch: %w", st.Shard, err)
		}
		if err := mergeState(startup, st.Startup); err != nil {
			return Result{}, fmt.Errorf("cohort: shard %d startup sketch: %w", st.Shard, err)
		}
	}
	r.EnergyJ = distOf(energy)
	r.RebufferRatio = distOf(rebuffer)
	r.StartupDelayS = distOf(startup)
	return r, nil
}

// mergeState reconstructs a wire sketch state and folds it into dst.
func mergeState(dst *stats.Sketch, st stats.SketchState) error {
	sk, err := stats.SketchFromState(st)
	if err != nil {
		return err
	}
	return dst.Merge(sk)
}
