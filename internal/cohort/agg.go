package cohort

import (
	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
	"videodvfs/internal/stats"
)

// sketchAlpha is the cohort's quantile accuracy: 1% relative error, a
// few KB of bins per tracked metric regardless of cohort size.
const sketchAlpha = 0.01

// Dist summarizes one metric's distribution over finished viewers, read
// out of a streaming sketch: exact count/mean/extremes, sketch-accurate
// quantiles (±1% relative).
type Dist struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P10  float64 `json:"p10"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

// distOf reads a Dist snapshot out of a sketch.
func distOf(s *stats.Sketch) Dist {
	return Dist{
		N:    s.N(),
		Mean: s.Mean(),
		Min:  s.Min(),
		Max:  s.Max(),
		P10:  s.Quantile(0.10),
		P50:  s.Quantile(0.50),
		P90:  s.Quantile(0.90),
		P99:  s.Quantile(0.99),
	}
}

// Rollup is one aggregate snapshot of the cohort at a virtual-time
// barrier: population counters plus distributions over the viewers that
// have COMPLETED so far. Serialized as one NDJSON frame by dvfsd's
// /v1/cohort stream; field order (and therefore the byte stream) is
// fixed by this struct.
type Rollup struct {
	// T is the barrier's virtual time.
	T sim.Time `json:"t"`
	// Joined counts viewers that have started streaming by T; Active
	// are those started and not yet finished.
	Joined int `json:"joined"`
	Active int `json:"active"`
	// Completed / HorizonCut / Errors partition finished viewers:
	// sessions that played out, sessions cut at their virtual-time
	// horizon (starved — counted in Errors too), and sessions that
	// failed for any reason.
	Completed  int `json:"completed"`
	HorizonCut int `json:"horizon_cut"`
	Errors     int `json:"errors"`
	// EnergyJ is whole-device energy per completed viewer.
	EnergyJ Dist `json:"energy_j"`
	// RebufferRatio is stall time over session time per completed
	// viewer.
	RebufferRatio Dist `json:"rebuffer_ratio"`
	// StartupDelayS is seconds from join to first displayed frame per
	// completed viewer.
	StartupDelayS Dist `json:"startup_delay_s"`
}

// Result is the cohort's final outcome: the last rollup's population
// accounting plus exact energy sums and the virtual time the last viewer
// finished at.
type Result struct {
	// Viewers is the cohort size; Completed/HorizonCut/Errors partition
	// it as in Rollup.
	Viewers    int `json:"viewers"`
	Completed  int `json:"completed"`
	HorizonCut int `json:"horizon_cut"`
	Errors     int `json:"errors"`
	// FirstError is the first failure's text (lowest shard, earliest
	// event within it), "" when every viewer completed.
	FirstError string `json:"first_error,omitempty"`
	// EnergyJ, RebufferRatio, StartupDelayS are the final per-viewer
	// distributions over completed viewers.
	EnergyJ       Dist `json:"energy_j"`
	RebufferRatio Dist `json:"rebuffer_ratio"`
	StartupDelayS Dist `json:"startup_delay_s"`
	// CPUJ, RadioJ, DisplayJ are exact per-component energy totals over
	// completed viewers (per-shard sums in event order, merged in shard
	// order — fixed summation order, stable bytes).
	CPUJ     float64 `json:"cpu_j"`
	RadioJ   float64 `json:"radio_j"`
	DisplayJ float64 `json:"display_j"`
	// SimEnd is the virtual time the last viewer finished at.
	SimEnd sim.Time `json:"sim_end"`
	// Shards is the resolved shard count (part of the result identity:
	// it fixes float aggregation order).
	Shards int `json:"shards"`
}

// agg is one shard's online aggregation state, mutated only from inside
// that shard's engine events. One scratch RunResult per SHARD — not per
// viewer — is the whole memory story of result collection.
type agg struct {
	started    int
	finished   int
	completed  int
	horizonCut int
	errors     int
	firstErr   string

	energy   *stats.Sketch
	rebuffer *stats.Sketch
	startup  *stats.Sketch

	cpuJ, radioJ, displayJ float64
	maxEnd                 sim.Time

	scratch experiments.RunResult
}

func newAgg() agg {
	return agg{
		energy:   stats.NewSketch(sketchAlpha),
		rebuffer: stats.NewSketch(sketchAlpha),
		startup:  stats.NewSketch(sketchAlpha),
	}
}

// fold accumulates one completed viewer's scratch result.
func (a *agg) fold(res *experiments.RunResult) {
	a.completed++
	a.energy.Add(res.TotalJ())
	a.rebuffer.Add(res.QoE.RebufferRatio())
	a.startup.Add(res.QoE.StartupDelay.Seconds())
	a.cpuJ += res.CPUJ
	a.radioJ += res.RadioJ
	a.displayJ += res.DisplayJ
}

// mergedSketches folds every shard's sketches into fresh ones, in shard
// order.
func mergedSketches(shards []*shard) (energy, rebuffer, startup *stats.Sketch) {
	energy = stats.NewSketch(sketchAlpha)
	rebuffer = stats.NewSketch(sketchAlpha)
	startup = stats.NewSketch(sketchAlpha)
	for _, sh := range shards {
		// Same-alpha merges cannot fail; the sketches are all built here.
		_ = energy.Merge(sh.agg.energy)
		_ = rebuffer.Merge(sh.agg.rebuffer)
		_ = startup.Merge(sh.agg.startup)
	}
	return energy, rebuffer, startup
}

// snapshotRollup merges every shard's aggregation state at a barrier, in
// shard-index order.
func snapshotRollup(t sim.Time, shards []*shard) Rollup {
	r := Rollup{T: t}
	for _, sh := range shards {
		r.Joined += sh.agg.started
		r.Active += sh.agg.started - sh.agg.finished
		r.Completed += sh.agg.completed
		r.HorizonCut += sh.agg.horizonCut
		r.Errors += sh.agg.errors
	}
	energy, rebuffer, startup := mergedSketches(shards)
	r.EnergyJ = distOf(energy)
	r.RebufferRatio = distOf(rebuffer)
	r.StartupDelayS = distOf(startup)
	return r
}
