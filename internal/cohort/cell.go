package cohort

import (
	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
)

// cellState is one sector's congestion state: the count of concurrently
// downloading viewers. It lives inside a single shard's engine, so all
// access is single-threaded event code — the same no-locking discipline
// as every other model component.
type cellState struct {
	capacityBps float64
	perFlowBps  float64
	active      int
}

// newCellState builds a sector from the cohort's cell spec.
func newCellState(c *Cell) *cellState {
	return &cellState{
		capacityBps: c.CapacityMbps * 1e6,
		perFlowBps:  c.PerViewerMbps * 1e6,
	}
}

// activity is the per-viewer download busy/idle listener (wired through
// the player's hook chain via ViewerOptions.OnNetActivity).
func (cs *cellState) activity(now sim.Time, active bool) {
	if active {
		cs.active++
	} else {
		cs.active--
	}
}

// cellLink decorates a viewer's base bandwidth model with the sector's
// processor-sharing discipline: each of n concurrent flows gets
// capacity/n, optionally capped per flow, and never more than the base
// profile allows. Implements netsim.Bandwidth.
type cellLink struct {
	cs   *cellState
	base netsim.Bandwidth
}

// Rate implements netsim.Bandwidth. The quote's hold horizon passes
// through from the base profile: the downloader re-integrates at its
// ≤100 ms chunk boundaries anyway, so changes in the active-flow count
// propagate within one chunk without any rescheduling machinery.
func (l cellLink) Rate(now sim.Time) (float64, sim.Time) {
	bps, until := l.base.Rate(now)
	n := l.cs.active
	if n < 1 {
		// A flow asking for a rate while the count reads zero is the
		// flow itself, mid-transition to busy: it gets the whole sector.
		n = 1
	}
	share := l.cs.capacityBps / float64(n)
	if l.cs.perFlowBps > 0 && share > l.cs.perFlowBps {
		share = l.cs.perFlowBps
	}
	if bps > share {
		bps = share
	}
	return bps, until
}
