package cohort

import (
	"errors"

	"videodvfs/internal/experiments"
	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
)

// shard is one shared virtual-time engine multiplexing a fixed subset of
// the cohort's viewers (plus the whole cell sectors they belong to). A
// shard is stepped by exactly one worker at a time between rollup
// barriers; all viewer state mutation happens inside its engine's
// events, single-threaded as always.
type shard struct {
	idx     int
	cfg     *Config
	eng     *sim.Engine
	horizon sim.Time
	total   int
	cells   map[int]*cellState // sector index -> state, sectors owned whole
	agg     agg
	done    bool
}

// newShard builds shard idx of shards: constructs every t=0 viewer (in
// global index order — the deterministic analogue of Run's construct-
// then-start ordering), schedules arrival events for later joins, then
// starts the t=0 crowd and arms per-viewer horizon cuts.
func newShard(cfg *Config, idx, shards int, joins []sim.Time) *shard {
	sh := &shard{
		idx:     idx,
		cfg:     cfg,
		eng:     sim.NewEngine(),
		horizon: cfg.viewerHorizon(),
		agg:     newAgg(),
	}
	if cfg.Cell != nil {
		sh.cells = make(map[int]*cellState)
		for s := 0; s < cfg.sectors(); s++ {
			if s%shards == idx {
				sh.cells[s] = newCellState(cfg.Cell)
			}
		}
	}
	var startNow []*experiments.Viewer
	for i, join := range joins {
		if cfg.shardOf(i, shards) != idx {
			continue
		}
		sh.total++
		if join <= 0 {
			if v := sh.admit(i); v != nil {
				startNow = append(startNow, v)
			}
			continue
		}
		i := i
		sh.eng.At(join, func() {
			if v := sh.admit(i); v != nil {
				sh.start(v)
			}
		})
	}
	for _, v := range startNow {
		sh.start(v)
	}
	return sh
}

// admit constructs viewer i into the shared engine, with its split
// background seed and (when the cohort has a cell) its sector's
// congestion wrapper. Construction failures are folded into the shard's
// accounting as viewer errors; admit returns nil for them.
func (sh *shard) admit(i int) *experiments.Viewer {
	sh.agg.started++
	vcfg := sh.cfg.Base
	vcfg.BGSeed = sim.ChildSeedN(sh.cfg.seed(), "cohort/bgload", i)
	var v *experiments.Viewer
	opts := experiments.ViewerOptions{
		OnDone: func() { sh.collect(i, v) },
	}
	if cs := sh.cells[sh.cfg.sectorOf(i)]; cs != nil {
		opts.WrapBandwidth = func(base netsim.Bandwidth) netsim.Bandwidth {
			return cellLink{cs: cs, base: base}
		}
		opts.OnNetActivity = cs.activity
	}
	var err error
	v, err = experiments.NewViewer(sh.eng, vcfg, opts)
	if err != nil {
		sh.finishFailed(i, err)
		return nil
	}
	return v
}

// start begins a constructed viewer's playback at the engine's current
// time and arms its horizon cut. The cut event is scheduled
// unconditionally; for the (overwhelmingly common) completing viewer it
// fires as a no-op long after the viewer collected.
func (sh *shard) start(v *experiments.Viewer) {
	v.Start()
	sh.eng.At(v.Deadline(), func() { v.Cut() })
}

// collect runs inside a viewer's completion (or cut) event: finish the
// viewer into the shard's ONE scratch result and fold it into the online
// aggregates. When the last viewer of the shard finishes, the engine is
// stopped — leftover radio-tail and cut events are never run, exactly as
// a standalone Run leaves them.
func (sh *shard) collect(i int, v *experiments.Viewer) {
	sh.agg.finished++
	if now := sh.eng.Now(); now > sh.agg.maxEnd {
		sh.agg.maxEnd = now
	}
	res := &sh.agg.scratch
	if err := v.Finish(res); err != nil {
		sh.agg.errors++
		if errors.Is(err, experiments.ErrHorizonExceeded) {
			sh.agg.horizonCut++
		}
		if sh.agg.firstErr == "" {
			sh.agg.firstErr = err.Error()
		}
		if sh.cfg.OnViewer != nil {
			sh.cfg.OnViewer(i, nil, err)
		}
	} else {
		sh.agg.fold(res)
		if sh.cfg.OnViewer != nil {
			sh.cfg.OnViewer(i, res, nil)
		}
	}
	if sh.agg.finished == sh.total {
		sh.eng.Stop()
	}
}

// finishFailed accounts a viewer that never got a simulator (config or
// construction failure).
func (sh *shard) finishFailed(i int, err error) {
	sh.agg.finished++
	sh.agg.errors++
	if sh.agg.firstErr == "" {
		sh.agg.firstErr = err.Error()
	}
	if sh.cfg.OnViewer != nil {
		sh.cfg.OnViewer(i, nil, err)
	}
	if sh.agg.finished == sh.total {
		sh.eng.Stop()
	}
}

// stepTo advances the shard's engine to the barrier time t. Chunked
// RunUntil calls replay the identical event sequence one long run would
// (the engine fires events with at <= horizon and re-arms after a Stop),
// so barrier stepping changes nothing but when snapshots are taken.
func (sh *shard) stepTo(t sim.Time) {
	if sh.done {
		return
	}
	sh.eng.RunUntil(t)
	if sh.agg.finished == sh.total {
		sh.done = true
	}
}
