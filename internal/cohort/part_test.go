package cohort

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"videodvfs/internal/experiments"
)

// partCfg is a small multi-shard cohort for the distributed-seam tests.
func partCfg() Config {
	return Config{Base: shortBase(), Viewers: 36, Shards: 4, Seed: 5}
}

// The distributed seam's whole contract: running the shards in disjoint
// subsets (here: three uneven parts), serializing the states through
// JSON as a fleet would, and merging must reproduce the single-node
// Result bit for bit — DeepEqual, not tolerances.
func TestPartsMergeBitIdenticalToRun(t *testing.T) {
	cfg := partCfg()
	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("whole run: %v", err)
	}

	var parts []Partial
	for _, set := range [][]int{{2}, {0, 3}, {1}} {
		p, err := RunPart(cfg, set)
		if err != nil {
			t.Fatalf("RunPart(%v): %v", set, err)
		}
		// Round-trip the partial through its wire form: the merge must
		// survive JSON exactly (float64s encode shortest-form, bins are
		// integers).
		wire, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal partial: %v", err)
		}
		var back Partial
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatalf("unmarshal partial: %v", err)
		}
		parts = append(parts, back)
	}

	got, err := MergeParts(parts)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged parts differ from single-node run:\n got %+v\nwant %+v", got, want)
	}
}

// One part holding every shard is the degenerate single-worker fleet; it
// must also merge to the exact Result.
func TestSinglePartCoversWholeCohort(t *testing.T) {
	cfg := partCfg()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunPart(cfg, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeParts([]Partial{p})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-part merge differs from run:\n got %+v\nwant %+v", got, want)
	}
}

func TestRunPartRejects(t *testing.T) {
	cfg := partCfg()
	cases := map[string]struct {
		mutate func(*Config)
		shards []int
	}{
		"empty set":     {nil, nil},
		"out of range":  {nil, []int{0, 4}},
		"negative":      {nil, []int{-1}},
		"duplicate":     {nil, []int{1, 1}},
		"rollup cb":     {func(c *Config) { c.OnRollup = func(Rollup) {} }, []int{0}},
		"invalid base ": {func(c *Config) { c.Viewers = 0 }, []int{0}},
	}
	for name, tc := range cases {
		c := cfg
		if tc.mutate != nil {
			tc.mutate(&c)
		}
		if _, err := RunPart(c, tc.shards); err == nil {
			t.Errorf("%s: RunPart accepted", name)
		}
	}
}

func TestMergePartsRejects(t *testing.T) {
	cfg := partCfg()
	p01, err := RunPart(cfg, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	p23, err := RunPart(cfg, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := MergeParts(nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := MergeParts([]Partial{p01}); err == nil {
		t.Error("missing shards accepted")
	}
	if _, err := MergeParts([]Partial{p01, p01, p23}); err == nil {
		t.Error("duplicate shard coverage accepted")
	}
	other := p23
	other.Viewers++
	if _, err := MergeParts([]Partial{p01, other}); err == nil {
		t.Error("mismatched layouts accepted")
	}
	corrupt := p23
	corrupt.States = append([]ShardState(nil), p23.States...)
	corrupt.States[0].Shard = 99
	if _, err := MergeParts([]Partial{p01, corrupt}); err == nil {
		t.Error("out-of-range shard index accepted")
	}
}

// A pre-closed cancel channel aborts both whole runs and parts at the
// first rollup barrier with the typed error.
func TestCohortCancel(t *testing.T) {
	cfg := partCfg()
	ch := make(chan struct{})
	close(ch)
	cfg.Cancel = ch
	if _, err := Run(cfg); !errors.Is(err, experiments.ErrCanceled) {
		t.Fatalf("Run err = %v, want ErrCanceled", err)
	}
	if _, err := RunPart(cfg, []int{0}); !errors.Is(err, experiments.ErrCanceled) {
		t.Fatalf("RunPart err = %v, want ErrCanceled", err)
	}
	// Cancelable cohorts must never be cache-served.
	if _, ok := Key(cfg); ok {
		t.Fatal("cancelable cohort reported cacheable")
	}
}

// An armed-but-unfired cancel channel must not perturb the cohort
// result.
func TestCohortCancelUnfiredIsIdentical(t *testing.T) {
	cfg := partCfg()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	armed := cfg
	armed.Cancel = make(chan struct{})
	got, err := Run(armed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("armed-cancel cohort differs:\n got %+v\nwant %+v", got, want)
	}
}
