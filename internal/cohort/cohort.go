// Package cohort steps N streaming sessions — the target is a million
// viewers of one live event — inside SHARED virtual-time engines instead
// of one engine per goroutine. Each shard owns one sim.Engine whose
// single event slab multiplexes thousands of full-fidelity viewers
// (experiments.Viewer: meter, core, governor, radio, downloader, player,
// background load each); stream and bandwidth tables are shared immutably
// across all of them via the experiments package caches, and viewers in
// one cell sector contend for real sector bandwidth. Results are
// aggregated ONLINE — counters and mergeable quantile sketches
// (stats.Sketch), never per-viewer result structs — so memory is
// O(viewers) in simulation state and O(1) in results.
//
// Determinism: every stochastic choice (per-viewer background seed, join
// times) is a pure function of (Config, viewer index) via
// sim.ChildSeedN, the shard count is a pure function of the Config —
// never of GOMAXPROCS — and shard merges happen at lockstep rollup
// barriers in shard-index order. Rollup output is therefore
// byte-identical no matter how many workers step the shards.
package cohort

import (
	"fmt"
	"math"

	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
)

// ArrivalKind selects how viewers join the cohort over virtual time.
type ArrivalKind string

// Built-in arrival processes.
const (
	// ArrivalAll joins every viewer at t=0 — the flash-crowd moment a
	// live event starts. The default.
	ArrivalAll ArrivalKind = "all"
	// ArrivalUniform spreads joins evenly over the arrival window.
	ArrivalUniform ArrivalKind = "uniform"
	// ArrivalBurst front-loads joins exponentially over the window
	// (mean offset Window/4, clamped to the window): most of the
	// audience piles in right after kickoff, stragglers trickle.
	ArrivalBurst ArrivalKind = "burst"
	// ArrivalPoisson joins viewers as a Poisson process at RatePerSec,
	// ignoring the window.
	ArrivalPoisson ArrivalKind = "poisson"
)

// ArrivalKinds returns the arrival processes in report order.
func ArrivalKinds() []ArrivalKind {
	return []ArrivalKind{ArrivalAll, ArrivalUniform, ArrivalBurst, ArrivalPoisson}
}

// Arrival describes the cohort's join process.
type Arrival struct {
	// Kind selects the process ("" = ArrivalAll).
	Kind ArrivalKind
	// Window is the span joins are spread over (uniform, burst).
	Window sim.Time
	// RatePerSec is the Poisson arrival rate (poisson only).
	RatePerSec float64
}

// Cell models shared last-mile capacity: concurrent downloads in one
// sector split the sector's bandwidth evenly (processor-sharing, the
// standard cellular abstraction), stacked under the per-viewer base
// bandwidth profile. Viewers are assigned to sectors round-robin by
// index.
type Cell struct {
	// CapacityMbps is one sector's total downlink capacity.
	CapacityMbps float64
	// PerViewerMbps caps any single flow (0 = no per-flow cap).
	PerViewerMbps float64
	// Sectors is the number of independent sectors the audience is
	// spread over (0 or 1 = one shared sector). Sectors also bound the
	// shard count: a sector's viewers must share one engine, so a
	// single-sector cell serializes the whole cohort.
	Sectors int
}

// Config describes one cohort run.
type Config struct {
	// Base is the per-viewer run configuration. Every viewer streams
	// the same content over the same bandwidth profile (the live-event
	// premise — and what keeps the stream tables shared); only the
	// background-load seed varies per viewer, via BGSeed splitting.
	// OnSample and Tracer must be nil; Strict arms the invariant
	// checker in every viewer.
	Base experiments.RunConfig
	// Viewers is the cohort size.
	Viewers int
	// Arrival is the join process (zero value = everyone at t=0).
	Arrival Arrival
	// Cell, if set, adds sector-level bandwidth contention.
	Cell *Cell
	// Shards overrides the number of shared engines the cohort is
	// sliced into (0 = derived from Viewers and Cell.Sectors). The
	// shard count is part of the result's identity — float aggregation
	// order follows it — so it is a config knob, never a function of
	// the machine.
	Shards int
	// Rollup is the virtual-time period between aggregate snapshots
	// (0 = 10 s). Shards step in lockstep at rollup barriers.
	Rollup sim.Time
	// Seed drives the cohort-level stochastic inputs: per-viewer
	// background-load seeds and stochastic arrivals (0 = Base.Seed).
	Seed int64
	// Cancel, if non-nil, aborts the cohort when closed: Run checks it at
	// every rollup barrier and fails with a wrapped
	// experiments.ErrCanceled instead of stepping on to completion.
	// dvfsd's streaming cohort endpoint wires the request context's Done
	// channel here so an abandoned client frees its pool worker. Setting
	// it makes the cohort uncacheable.
	Cancel <-chan struct{}
	// OnViewer, if set, receives each viewer's outcome as it finishes.
	// res points at a per-shard scratch result that is REUSED for the
	// next viewer — copy what you keep. Shards run on concurrent
	// workers, so OnViewer must be safe for concurrent use. Setting it
	// makes the cohort uncacheable.
	OnViewer func(viewer int, res *experiments.RunResult, err error)
	// OnRollup, if set, receives the merged aggregate snapshot at every
	// rollup barrier (single goroutine, in time order). Setting it
	// makes the cohort uncacheable.
	OnRollup func(Rollup)
}

// DefaultConfig returns a small live-event cohort: the evaluation's base
// per-viewer case, 1000 viewers all joining at t=0, 10 s rollups.
func DefaultConfig() Config {
	return Config{
		Base:    experiments.DefaultRunConfig(),
		Viewers: 1000,
		Rollup:  10 * sim.Second,
	}
}

// maxShards bounds the automatic shard count: beyond ~64 engines the
// per-shard stream of a realistic cohort is too short to amortize barrier
// synchronization.
const maxShards = 64

// autoShardViewers is the automatic sizing target: one shard per this
// many viewers, before clamping.
const autoShardViewers = 4096

// Validate checks the cohort-level knobs plus the base config, wrapping
// every violation in experiments.ErrInvalidConfig so callers distinguish
// bad cohorts exactly like bad runs.
func (c Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.Base.OnSample != nil || c.Base.Tracer != nil {
		return fmt.Errorf("cohort: %w: per-viewer OnSample/Tracer not supported (aggregate via rollups)",
			experiments.ErrInvalidConfig)
	}
	if c.Base.Cancel != nil {
		return fmt.Errorf("cohort: %w: per-viewer Cancel not supported (set Config.Cancel for the whole cohort)",
			experiments.ErrInvalidConfig)
	}
	if c.Viewers < 1 {
		return fmt.Errorf("cohort: %w: %d viewers", experiments.ErrInvalidConfig, c.Viewers)
	}
	switch c.Arrival.Kind {
	case "", ArrivalAll, ArrivalUniform, ArrivalBurst, ArrivalPoisson:
	default:
		return fmt.Errorf("cohort: %w: unknown arrival kind %q (known: %v)",
			experiments.ErrInvalidConfig, c.Arrival.Kind, ArrivalKinds())
	}
	if w := float64(c.Arrival.Window); math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return fmt.Errorf("cohort: %w: arrival window %v not a finite non-negative span",
			experiments.ErrInvalidConfig, c.Arrival.Window)
	}
	switch c.Arrival.Kind {
	case ArrivalUniform, ArrivalBurst:
		if c.Arrival.Window <= 0 {
			return fmt.Errorf("cohort: %w: %s arrivals need a positive window",
				experiments.ErrInvalidConfig, c.Arrival.Kind)
		}
	case ArrivalPoisson:
		if r := c.Arrival.RatePerSec; math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			return fmt.Errorf("cohort: %w: poisson arrivals need a positive finite rate, got %v",
				experiments.ErrInvalidConfig, c.Arrival.RatePerSec)
		}
	}
	if c.Cell != nil {
		if v := c.Cell.CapacityMbps; math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("cohort: %w: cell capacity %v Mbps not positive and finite",
				experiments.ErrInvalidConfig, c.Cell.CapacityMbps)
		}
		if v := c.Cell.PerViewerMbps; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("cohort: %w: per-viewer cap %v Mbps not finite and non-negative",
				experiments.ErrInvalidConfig, c.Cell.PerViewerMbps)
		}
		if c.Cell.Sectors < 0 {
			return fmt.Errorf("cohort: %w: %d sectors", experiments.ErrInvalidConfig, c.Cell.Sectors)
		}
	}
	if r := float64(c.Rollup); math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
		return fmt.Errorf("cohort: %w: rollup period %v not a finite non-negative span",
			experiments.ErrInvalidConfig, c.Rollup)
	}
	if c.Shards < 0 {
		return fmt.Errorf("cohort: %w: %d shards", experiments.ErrInvalidConfig, c.Shards)
	}
	return nil
}

// seed resolves the cohort seed (Seed, else Base.Seed).
func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return c.Base.Seed
}

// rollup resolves the rollup period.
func (c Config) rollup() sim.Time {
	if c.Rollup > 0 {
		return c.Rollup
	}
	return 10 * sim.Second
}

// sectors resolves the cell's sector count (1 when no cell or unset).
func (c Config) sectors() int {
	if c.Cell == nil || c.Cell.Sectors < 1 {
		return 1
	}
	return c.Cell.Sectors
}

// ShardCount returns the resolved number of shared engines the cohort
// slices into — a pure function of the config, so a controller
// partitioning shards across workers derives exactly the count every
// worker will. (The distributed tier fans a cohort out shard by shard;
// see RunPart.)
func ShardCount(c Config) int { return c.shardCount() }

// shardCount resolves the number of shared engines — a pure function of
// the config, so results never depend on the machine. With a cell, a
// sector's viewers must share one engine (they mutate one congestion
// state), so the sector count bounds the shard count.
func (c Config) shardCount() int {
	s := c.Shards
	if s < 1 {
		s = (c.Viewers + autoShardViewers - 1) / autoShardViewers
		if s > maxShards {
			s = maxShards
		}
	}
	if c.Cell != nil && s > c.sectors() {
		s = c.sectors()
	}
	if s > c.Viewers {
		s = c.Viewers
	}
	if s < 1 {
		s = 1
	}
	return s
}

// viewerHorizon mirrors Run's default horizon: the per-viewer virtual
// budget from join to forced cut.
func (c Config) viewerHorizon() sim.Time {
	if c.Base.Horizon > 0 {
		return c.Base.Horizon
	}
	d := c.Base.Duration
	if c.Base.Trace != nil && d <= 0 {
		d = c.Base.Trace.Duration()
	}
	return d*6 + 60*sim.Second
}

// computeJoins materializes every viewer's absolute join time, centrally
// and in index order from one derived RNG stream — so the assignment is
// identical no matter how the cohort is sharded or stepped.
func computeJoins(c Config) []sim.Time {
	joins := make([]sim.Time, c.Viewers)
	switch c.Arrival.Kind {
	case "", ArrivalAll:
		// all zeros
	case ArrivalUniform:
		w := c.Arrival.Window.Seconds()
		for i := range joins {
			joins[i] = sim.Time(w * float64(i) / float64(len(joins)))
		}
	case ArrivalBurst:
		rng := sim.Stream(c.seed(), "cohort/arrival")
		w := c.Arrival.Window
		for i := range joins {
			t := sim.Time(rng.Exp(w.Seconds() / 4))
			if t > w {
				t = w
			}
			joins[i] = t
		}
	case ArrivalPoisson:
		rng := sim.Stream(c.seed(), "cohort/arrival")
		var t float64
		for i := range joins {
			t += rng.Exp(1 / c.Arrival.RatePerSec)
			joins[i] = sim.Time(t)
		}
	}
	return joins
}

// sectorOf maps a viewer index to its cell sector.
func (c Config) sectorOf(viewer int) int { return viewer % c.sectors() }

// shardOf maps a viewer index to its shard: by sector when a cell
// couples viewers, round-robin otherwise. Sectors of one shard stay
// whole — contention state never crosses an engine boundary.
func (c Config) shardOf(viewer, shards int) int {
	if c.Cell != nil {
		return c.sectorOf(viewer) % shards
	}
	return viewer % shards
}
