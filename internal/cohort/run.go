package cohort

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
)

// Run executes one cohort: validate, materialize join times, build the
// shards, then step every shard in lockstep rollup barriers until all
// viewers have finished. Per-viewer failures (including horizon cuts)
// are counted in the Result, not fatal — a million-viewer run does not
// abort because one starved session timed out; only an invalid Config
// returns an error.
//
// Shards are stepped by up to GOMAXPROCS workers, but every
// result-determining choice — shard count, viewer assignment, seeds,
// join times, merge order — is a pure function of cfg, so the Result
// (and the OnRollup byte stream) is identical at any worker count.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	joins := computeJoins(cfg)
	nShards := cfg.shardCount()
	shards := make([]*shard, nShards)
	for i := range shards {
		shards[i] = newShard(&cfg, i, nShards, joins)
	}

	var maxJoin sim.Time
	for _, j := range joins {
		if j > maxJoin {
			maxJoin = j
		}
	}
	step := cfg.rollup()
	// The horizon cuts guarantee every viewer is finished by
	// maxJoin+horizon; the bound below is a pure safety net against a
	// model bug, not a control-flow path.
	bound := maxJoin + cfg.viewerHorizon() + step
	workers := runtime.GOMAXPROCS(0)

	for t := step; ; t += step {
		stepAll(shards, t, workers)
		if err := canceled(cfg); err != nil {
			return Result{}, err
		}
		if cfg.OnRollup != nil {
			cfg.OnRollup(snapshotRollup(t, shards))
		}
		if allDone(shards) || t > bound {
			break
		}
	}
	return buildResult(cfg, nShards, shards), nil
}

// canceled reports whether the cohort's cancel channel has closed,
// wrapping experiments.ErrCanceled so callers branch on it exactly like a
// canceled single run.
func canceled(cfg Config) error {
	if cfg.Cancel == nil {
		return nil
	}
	select {
	case <-cfg.Cancel:
		return fmt.Errorf("cohort: %w", experiments.ErrCanceled)
	default:
		return nil
	}
}

// stepAll advances every unfinished shard to the barrier t, fanning the
// shards over a fixed-size worker pool. Shards share no mutable state,
// so the only synchronization is the barrier itself.
func stepAll(shards []*shard, t sim.Time, workers int) {
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, sh := range shards {
			sh.stepTo(t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				shards[i].stepTo(t)
			}
		}()
	}
	wg.Wait()
}

func allDone(shards []*shard) bool {
	for _, sh := range shards {
		if !sh.done {
			return false
		}
	}
	return true
}

// buildResult merges the shards' final aggregation state, in shard-index
// order.
func buildResult(cfg Config, nShards int, shards []*shard) Result {
	r := Result{Viewers: cfg.Viewers, Shards: nShards}
	for _, sh := range shards {
		r.Completed += sh.agg.completed
		r.HorizonCut += sh.agg.horizonCut
		r.Errors += sh.agg.errors
		if r.FirstError == "" {
			r.FirstError = sh.agg.firstErr
		}
		r.CPUJ += sh.agg.cpuJ
		r.RadioJ += sh.agg.radioJ
		r.DisplayJ += sh.agg.displayJ
		if sh.agg.maxEnd > r.SimEnd {
			r.SimEnd = sh.agg.maxEnd
		}
	}
	energy, rebuffer, startup := mergedSketches(shards)
	r.EnergyJ = distOf(energy)
	r.RebufferRatio = distOf(rebuffer)
	r.StartupDelayS = distOf(startup)
	return r
}
