package cohort

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

var update = flag.Bool("update", false, "rewrite the golden rollup stream")

// shortBase is a quick per-viewer config for cohort tests: the
// evaluation's base case cut to 10 s of content.
func shortBase() experiments.RunConfig {
	cfg := experiments.DefaultRunConfig()
	cfg.Duration = 10 * sim.Second
	return cfg
}

// An N=1 cohort must reproduce a standalone Run bit for bit: the viewer
// is wired in Session.Reset's exact construction order and collected by
// the same collectResult path, so DeepEqual — not tolerances — is the
// bar. Invariants ride both sides (Strict), per the PR contract.
func TestSingleViewerEquivalentToRun(t *testing.T) {
	base := shortBase()
	base.Strict = true

	refCfg := base
	// The cohort splits each viewer's background seed from the cohort
	// seed by index; viewer 0's split is reproducible on the Run side.
	refCfg.BGSeed = sim.ChildSeedN(refCfg.Seed, "cohort/bgload", 0)
	ref, err := experiments.Run(refCfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	var got *experiments.RunResult
	res, err := Run(Config{
		Base:    base,
		Viewers: 1,
		OnViewer: func(i int, r *experiments.RunResult, verr error) {
			if verr != nil {
				t.Errorf("viewer %d: %v", i, verr)
				return
			}
			got = r // one viewer: the scratch is never reused after this
		},
	})
	if err != nil {
		t.Fatalf("cohort run: %v", err)
	}
	if res.Completed != 1 || res.Errors != 0 {
		t.Fatalf("completed=%d errors=%d (%s), want 1/0", res.Completed, res.Errors, res.FirstError)
	}
	if got == nil {
		t.Fatal("OnViewer never fired")
	}
	if !reflect.DeepEqual(*got, ref) {
		t.Errorf("cohort viewer result differs from Run:\ncohort: %+v\nrun:    %+v", *got, ref)
	}
	if res.SimEnd != ref.SimEnd {
		t.Errorf("cohort SimEnd %v != run SimEnd %v", res.SimEnd, ref.SimEnd)
	}
	if want := ref.CPUJ; res.CPUJ != want {
		t.Errorf("cohort CPUJ %v != run CPUJ %v", res.CPUJ, want)
	}
}

// goldenConfig is the pinned determinism scenario: several shards, a
// bursty live-event arrival, and a sectorized cell, so every
// cohort-specific mechanism is on the hook.
func goldenConfig(onRollup func(Rollup)) Config {
	base := shortBase()
	base.Duration = 8 * sim.Second
	return Config{
		Base:     base,
		Viewers:  48,
		Shards:   3,
		Arrival:  Arrival{Kind: ArrivalBurst, Window: 5 * sim.Second},
		Cell:     &Cell{CapacityMbps: 40, Sectors: 6},
		Rollup:   5 * sim.Second,
		Seed:     7,
		OnRollup: onRollup,
	}
}

// rollupStream runs the golden scenario and returns its NDJSON rollup
// frames plus the final result line — the byte stream /v1/cohort serves.
func rollupStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	res, err := Run(goldenConfig(func(r Rollup) {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The rollup stream must be byte-identical across worker counts — the
// determinism contract that makes cohort results citable — and match the
// pinned golden file across commits.
func TestGoldenRollupDeterministicAcrossWorkers(t *testing.T) {
	serial := func() []byte {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		return rollupStream(t)
	}()
	parallel := rollupStream(t)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("rollup stream differs between GOMAXPROCS=1 and %d:\nserial:\n%sparallel:\n%s",
			runtime.NumCPU(), serial, parallel)
	}

	golden := filepath.Join("testdata", "golden_rollup.ndjson")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, parallel, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(parallel, want) {
		t.Errorf("rollup stream drifted from golden (regenerate with -update if intended):\ngot:\n%swant:\n%s",
			parallel, want)
	}
}

// A congested cell must actually bite: the same cohort on a starved
// sector rebuffers more than on an uncontended one. This is the
// "viewers actually interact" check.
func TestCellContentionDegradesPlayback(t *testing.T) {
	base := shortBase()
	run := func(cell *Cell) Result {
		res, err := Run(Config{Base: base, Viewers: 12, Cell: cell, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(nil)
	if free.Completed != 12 {
		t.Fatalf("uncontended cohort: %d/12 completed (%s)", free.Completed, free.FirstError)
	}
	// 12 viewers sharing 10 Mbps, each needing a few Mbps: heavy
	// contention, but enough to finish within the 6x horizon.
	tight := run(&Cell{CapacityMbps: 10})
	if got, want := tight.RebufferRatio.Mean, free.RebufferRatio.Mean; got <= want {
		t.Errorf("congested rebuffer mean %v not worse than uncontended %v", got, want)
	}
	if tight.SimEnd <= free.SimEnd {
		t.Errorf("congested cohort finished at %v, not later than uncontended %v", tight.SimEnd, free.SimEnd)
	}
}

// Join times are a pure function of (config, index): identical across
// calls, ordered for poisson, inside the window for burst/uniform.
func TestArrivalsDeterministicAndBounded(t *testing.T) {
	cfg := Config{Base: shortBase(), Viewers: 200, Seed: 11}
	for _, kind := range ArrivalKinds() {
		cfg.Arrival = Arrival{Kind: kind, Window: 30 * sim.Second, RatePerSec: 50}
		a, b := computeJoins(cfg), computeJoins(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: joins differ across calls", kind)
		}
		for i, j := range a {
			if j < 0 {
				t.Fatalf("%s: join %d negative: %v", kind, i, j)
			}
			if (kind == ArrivalUniform || kind == ArrivalBurst) && j > 30*sim.Second {
				t.Fatalf("%s: join %d outside window: %v", kind, i, j)
			}
		}
		if kind == ArrivalPoisson {
			for i := 1; i < len(a); i++ {
				if a[i] < a[i-1] {
					t.Fatalf("poisson joins not monotone at %d", i)
				}
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	good := Config{Base: shortBase(), Viewers: 10}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero viewers", func(c *Config) { c.Viewers = 0 }},
		{"bad arrival", func(c *Config) { c.Arrival.Kind = "flashmob" }},
		{"uniform no window", func(c *Config) { c.Arrival = Arrival{Kind: ArrivalUniform} }},
		{"poisson no rate", func(c *Config) { c.Arrival = Arrival{Kind: ArrivalPoisson} }},
		{"bad cell capacity", func(c *Config) { c.Cell = &Cell{} }},
		{"negative shards", func(c *Config) { c.Shards = -1 }},
		{"negative rollup", func(c *Config) { c.Rollup = -sim.Second }},
		{"bad base governor", func(c *Config) { c.Base.Governor = "warp" }},
		{"bad base net", func(c *Config) { c.Base.Net = "carrier-pigeon" }},
		{"per-viewer sampling", func(c *Config) {
			c.Base.OnSample = func(sim.Time, float64, float64, float64) {}
		}},
	}
	for _, tc := range cases {
		cfg := good
		tc.mut(&cfg)
		if err := cfg.Validate(); !errors.Is(err, experiments.ErrInvalidConfig) {
			t.Errorf("%s: err = %v, want ErrInvalidConfig", tc.name, err)
		}
		if _, err := Run(cfg); !errors.Is(err, experiments.ErrInvalidConfig) {
			t.Errorf("%s: Run err = %v, want ErrInvalidConfig", tc.name, err)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestKeyIdentity(t *testing.T) {
	base := shortBase()
	a := Config{Base: base, Viewers: 100}
	k1, ok := Key(a)
	if !ok || k1 == "" {
		t.Fatal("callback-free cohort must be cacheable")
	}
	// A zero shard/seed/rollup and their resolved spellings are the
	// same effective cohort — one identity.
	b := a
	b.Shards = a.shardCount()
	b.Seed = base.Seed
	b.Rollup = 10 * sim.Second
	if k2, _ := Key(b); k2 != k1 {
		t.Error("resolved and derived spellings of one cohort got different keys")
	}
	c := a
	c.Viewers = 101
	if k3, _ := Key(c); k3 == k1 {
		t.Error("different cohorts share a key")
	}
	d := a
	d.OnRollup = func(Rollup) {}
	if _, ok := Key(d); ok {
		t.Error("OnRollup cohort reported cacheable")
	}
	e := a
	e.Base.Strict = true
	if _, ok := Key(e); ok {
		t.Error("strict cohort reported cacheable")
	}
}

// The full-scale acceptance run: a 100k-viewer live-event burst over a
// sectorized cell on one node. Gated behind COHORT_ACCEPT=1 — it is a
// capacity test, not a unit test.
func TestAcceptance100k(t *testing.T) {
	if os.Getenv("COHORT_ACCEPT") == "" {
		t.Skip("set COHORT_ACCEPT=1 to run the 100k-viewer acceptance cohort")
	}
	// A feasible live event: 100k mobile viewers at the 360p rung
	// (0.8 Mbps, ABRFixed) bursting onto 1024 sectors of 100 Mbps —
	// ~98 viewers/sector, ~78% steady-state sector utilization, so
	// playback is contended but not starved. (64 sectors at 150 Mbps
	// would be 40x oversubscribed: every viewer rebuffers to its
	// horizon and the run never ends.)
	base := experiments.DefaultRunConfig()
	base.Rung = video.R360p
	base.Duration = 30 * sim.Second
	res, err := Run(Config{
		Base:    base,
		Viewers: 100_000,
		Arrival: Arrival{Kind: ArrivalBurst, Window: 30 * sim.Second},
		Cell:    &Cell{CapacityMbps: 100, Sectors: 1024},
		Rollup:  30 * sim.Second,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Errors != 100_000 {
		t.Fatalf("accounting: %d completed + %d errors != 100000", res.Completed, res.Errors)
	}
	if res.Completed < 99_000 {
		t.Fatalf("only %d/100000 completed (first error: %s)", res.Completed, res.FirstError)
	}
	t.Logf("100k cohort: completed=%d cut=%d errors=%d energy p50=%.1f J p99=%.1f J rebuffer p90=%.4f end=%v",
		res.Completed, res.HorizonCut, res.Errors,
		res.EnergyJ.P50, res.EnergyJ.P99, res.RebufferRatio.P90, res.SimEnd)
}
