package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"videodvfs/internal/cohort"
	"videodvfs/internal/sim"
)

// Retry-After must always be a positive integer: RFC 7231 requires
// non-negative, and 0 tells clients to hammer immediately. The backlog
// snapshot races the rejection that triggered it, so every degenerate
// input clamps to ≥ 1.
func TestRetryAfterSecondsClamp(t *testing.T) {
	cases := []struct {
		name    string
		backlog int
		workers int
		p50     float64
		want    int
	}{
		{"normal", 8, 2, 0.5, 2},
		{"rounds up", 1, 4, 0.1, 1},
		{"drained backlog", 0, 4, 1, 1},
		{"negative backlog", -3, 4, 1, 1},
		{"no latency sample", 5, 2, 0, 3},
		{"negative p50", 5, 2, -1, 3},
		{"NaN p50", 5, 2, math.NaN(), 3},
		{"Inf p50", 5, 2, math.Inf(1), 3},
		{"zero workers", 4, 0, 1, 4},
		{"negative workers", 4, -2, 1, 4},
		{"huge estimate", 1 << 30, 1, 1e12, math.MaxInt32},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.backlog, tc.workers, tc.p50); got != tc.want {
			t.Errorf("%s: retryAfterSeconds(%d, %d, %v) = %d, want %d",
				tc.name, tc.backlog, tc.workers, tc.p50, got, tc.want)
		}
		if got := retryAfterSeconds(tc.backlog, tc.workers, tc.p50); got < 1 {
			t.Errorf("%s: emitted %d < 1", tc.name, got)
		}
	}
}

// nonFlusher hides every optional ResponseWriter interface (Flusher
// included) the way a buffering middleware wrapper does: only the plain
// three-method surface remains.
type nonFlusher struct {
	inner http.ResponseWriter
}

func (n nonFlusher) Header() http.Header         { return n.inner.Header() }
func (n nonFlusher) Write(p []byte) (int, error) { return n.inner.Write(p) }
func (n nonFlusher) WriteHeader(code int)        { n.inner.WriteHeader(code) }

// Both streaming paths must degrade gracefully — buffered writes, no
// panic, complete output — when the ResponseWriter is not an
// http.Flusher.
func TestStreamingThroughNonFlushingWriter(t *testing.T) {
	s := New(Config{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	t.Run("run trace", func(t *testing.T) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/run?trace=jsonl",
			strings.NewReader(`{"duration_s": 5}`))
		s.Handler().ServeHTTP(nonFlusher{rec}, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
		var final struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil || final.Ev != "result" {
			t.Fatalf("missing result line, got: %s", lines[len(lines)-1])
		}
	})

	t.Run("cohort stream", func(t *testing.T) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/cohort?stream=1",
			strings.NewReader(`{"base": {"duration_s": 5}, "viewers": 4}`))
		s.Handler().ServeHTTP(nonFlusher{rec}, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
		var final struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil || final.Ev != "summary" {
			t.Fatalf("missing summary line, got: %s", lines[len(lines)-1])
		}
	})
}

// streamAndAbandon starts a streaming request, reads the first line,
// then severs the connection. Returns once the first frame arrived.
func streamAndAbandon(t *testing.T, url, body string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatalf("stream request: %v", err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		cancel()
		t.Fatalf("first frame: %v", err)
	}
	cancel() // sever: the server should observe the disconnect and stop
	resp.Body.Close()
}

// A client abandoning a streaming response must not keep burning a pool
// worker: the request context's cancellation propagates into the
// simulation, which stops within a poll tick, and the pool drains.
func TestStreamClientDisconnectFreesPool(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	// Long content (the service cap) so the run cannot finish before the
	// disconnect lands; the trace stream emits frames from t=0.
	streamAndAbandon(t, ts.URL+"/v1/run?trace=jsonl", `{"duration_s": 1200}`)
	// A big cohort with tight rollups: first frame early, long tail.
	streamAndAbandon(t, ts.URL+"/v1/cohort?stream=1",
		`{"base": {"duration_s": 1200}, "viewers": 64, "rollup_s": 5}`)

	deadline := time.Now().Add(30 * time.Second)
	for s.pool.Active() != 0 || s.pool.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool did not drain after disconnects: active=%d queued=%d",
				s.pool.Active(), s.pool.QueueDepth())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if errs := s.met.runErrs.Load(); errs < 2 {
		t.Fatalf("canceled runs not counted as errors: runErrs=%d, want ≥2", errs)
	}
}

// The cohort-part endpoint is the fleet's worker-side seam: disjoint
// shard sets fetched over HTTP must merge into the exact single-node
// cohort result, and identical part requests must be cache hits.
func TestCohortPartEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const cohortBody = `{"base": {"duration_s": 6}, "viewers": 12, "shards": 4, "rollup_s": 5, "seed": 9}`

	fetch := func(shards string) (cohort.Partial, *http.Response) {
		body := `{"cohort": ` + cohortBody + `, "shards": ` + shards + `}`
		resp := postJSON(t, ts.URL+"/v1/cohort/part", body)
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("part status %d: %s", resp.StatusCode, raw)
		}
		var pb struct {
			Key     string         `json:"key"`
			Partial cohort.Partial `json:"partial"`
		}
		if err := json.Unmarshal(raw, &pb); err != nil {
			t.Fatalf("part body: %v\n%s", err, raw)
		}
		return pb.Partial, resp
	}

	p1, resp := fetch(`[0, 2]`)
	if got := resp.Header.Get("X-Dvfsd-Cache"); got != "miss" {
		t.Fatalf("first part cache header = %q, want miss", got)
	}
	if resp.Header.Get("X-Dvfsd-Queue-Depth") == "" {
		t.Fatal("part response missing X-Dvfsd-Queue-Depth load header")
	}
	p2, _ := fetch(`[3, 1]`)

	merged, err := cohort.MergeParts([]cohort.Partial{p1, p2})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	cfg := cohort.DefaultConfig()
	cfg.Base.Duration = 6 * sim.Second
	cfg.Base.Horizon = cfg.Base.Duration*6 + 60*sim.Second
	cfg.Viewers = 12
	cfg.Shards = 4
	cfg.Rollup = 5 * sim.Second
	cfg.Seed = 9
	direct, err := cohort.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, direct) {
		t.Fatalf("merged HTTP parts drifted from direct run:\nmerged: %+v\ndirect: %+v", merged, direct)
	}

	// Same shard set again (any spelling): cache hit.
	_, resp = fetch(`[2, 0]`)
	if got := resp.Header.Get("X-Dvfsd-Cache"); got != "hit" {
		t.Fatalf("repeat part cache header = %q, want hit", got)
	}

	// Bad shard sets are client errors with the invalid_config envelope.
	for _, shards := range []string{`[]`, `[9]`, `[0, 0]`, `[-1]`} {
		resp := postJSON(t, ts.URL+"/v1/cohort/part", `{"cohort": `+cohortBody+`, "shards": `+shards+`}`)
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("shards %s: status %d, want 400 (%s)", shards, resp.StatusCode, raw)
		}
	}
}
