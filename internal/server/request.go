package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"videodvfs/internal/cohort"
	"videodvfs/internal/cpu"
	"videodvfs/internal/experiments"
	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// ErrBadRequest reports a request body the decoder rejected before any
// simulation semantics were involved: malformed JSON, unknown fields,
// trailing garbage. Semantic violations surface as
// experiments.ErrInvalidConfig instead; both map to HTTP 400.
var ErrBadRequest = errors.New("bad request")

// RunRequest is the wire form of one simulation request. Every field is
// optional; zero values inherit the library default (DefaultRunConfig),
// so `{}` runs the evaluation's base case. Built-in devices, titles, and
// rungs are referenced by name — the service owns the catalogs, clients
// own only the selection.
type RunRequest struct {
	// Device names a built-in CPU model ("flagship", "midrange",
	// "efficient").
	Device string `json:"device,omitempty"`
	// Governor selects the frequency policy (videodvfs.GovernorNames).
	Governor string `json:"governor,omitempty"`
	// Title names a built-in content profile ("news", "sports",
	// "animation").
	Title string `json:"title,omitempty"`
	// Rung names the pinned rendition ("360p" … "1080p") under fixed ABR.
	Rung string `json:"rung,omitempty"`
	// ABR selects the adaptation algorithm ("fixed", "rate", "bba").
	ABR string `json:"abr,omitempty"`
	// Net selects the bandwidth profile ("wifi", "const8", "lte",
	// "umts", "trace").
	Net string `json:"net,omitempty"`
	// BWTrace is the recorded bandwidth trace replayed when Net is
	// "trace" (required then, rejected otherwise) — the JSONL sample
	// lines of a dvfsstress recording, inline. Trace-backed requests
	// stay cacheable: the samples hash into the canonical config key.
	BWTrace []BWSample `json:"bw_trace,omitempty"`
	// DurationS is the content length in seconds (0 = 60).
	DurationS float64 `json:"duration_s,omitempty"`
	// Seed drives all stochastic inputs (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Codec selects the decode model ("h264", "hevc").
	Codec string `json:"codec,omitempty"`
	// CStates enables the cpuidle model.
	CStates bool `json:"cstates,omitempty"`
	// LowLatency switches the player to live-streaming thresholds.
	LowLatency bool `json:"low_latency,omitempty"`
	// Thermal attaches the default RC thermal model + throttler.
	Thermal bool `json:"thermal,omitempty"`
	// Background toggles the UI/OS load generator (unset = on, the
	// evaluation default).
	Background *bool `json:"background,omitempty"`
	// SegmentDurS overrides the media segment duration in seconds.
	SegmentDurS float64 `json:"segment_dur_s,omitempty"`
	// FPS overrides the frame rate.
	FPS float64 `json:"fps,omitempty"`
	// HorizonS caps virtual time in seconds; the server clamps it to its
	// own maximum either way (see Config.MaxHorizon).
	HorizonS float64 `json:"horizon_s,omitempty"`
	// DecodedQueueCap overrides the player's decode-ahead depth.
	DecodedQueueCap int `json:"decoded_queue_cap,omitempty"`
	// LowWaterSec enables the player's burst-prefetch hysteresis.
	LowWaterSec float64 `json:"low_water_sec,omitempty"`
	// Forecast arms the predictive download scheduler ("oracle",
	// "noisy"); requires LowWaterSec.
	Forecast string `json:"forecast,omitempty"`
	// ForecastLookaheadS is the forecast lookahead window in seconds
	// (0 = the library default).
	ForecastLookaheadS float64 `json:"forecast_lookahead_s,omitempty"`
	// ForecastRelErr is the noisy forecast's relative error (noisy only).
	ForecastRelErr float64 `json:"forecast_rel_err,omitempty"`
	// ForecastSeed perturbs the noisy forecast's error draw
	// (0 = the run seed's stream).
	ForecastSeed int64 `json:"forecast_seed,omitempty"`
	// Policy overrides individual energy-aware governor knobs.
	Policy *PolicyRequest `json:"policy,omitempty"`
}

// BWSample is the wire form of one recorded bandwidth-trace chunk,
// mirroring the JSONL trace format (netsim.TraceSample): [t0, t1) in
// seconds on the recording's timeline, payload bytes, and the index of
// the download the chunk belonged to.
type BWSample struct {
	T0    float64 `json:"t0"`
	T1    float64 `json:"t1"`
	Bytes float64 `json:"bytes"`
	Fetch int     `json:"fetch"`
}

// PolicyRequest overrides individual fields of the energy-aware
// governor's tuning; nil fields keep the paper default.
type PolicyRequest struct {
	Margin          *float64 `json:"margin,omitempty"`
	SigmaK          *float64 `json:"sigma_k,omitempty"`
	Alpha           *float64 `json:"alpha,omitempty"`
	GuardMs         *float64 `json:"guard_ms,omitempty"`
	TargetQueueFrac *float64 `json:"target_queue_frac,omitempty"`
	SprintFrames    *float64 `json:"sprint_frames,omitempty"`
	RaceToIdle      *bool    `json:"race_to_idle,omitempty"`
	StartupBoost    *bool    `json:"startup_boost,omitempty"`
	MinOPP          *int     `json:"min_opp,omitempty"`
}

// Config resolves the request against the built-in catalogs into a
// concrete, validated RunConfig. Catalog misses and semantic violations
// return errors wrapping experiments.ErrInvalidConfig.
func (r RunRequest) Config() (experiments.RunConfig, error) {
	cfg := experiments.DefaultRunConfig()
	if r.Device != "" {
		dev, err := cpu.DeviceByName(r.Device)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Device = dev
	}
	if r.Governor != "" {
		gov, err := experiments.ParseGovernorID(r.Governor)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Governor = gov
	}
	if r.Title != "" {
		title, err := video.TitleByName(r.Title)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Title = title
	}
	if r.Rung != "" {
		rung, err := video.ResolutionByName(r.Rung)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Rung = rung
	}
	if r.ABR != "" {
		abr, err := experiments.ParseABRID(r.ABR)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.ABR = abr
	}
	if r.Net != "" {
		net, err := experiments.ParseNetKind(r.Net)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Net = net
	}
	if len(r.BWTrace) > 0 {
		tr := &netsim.Trace{Samples: make([]netsim.TraceSample, len(r.BWTrace))}
		for i, s := range r.BWTrace {
			tr.Samples[i] = netsim.TraceSample{
				Start: sim.Time(s.T0),
				End:   sim.Time(s.T1),
				Bytes: s.Bytes,
				Fetch: s.Fetch,
			}
		}
		// Sample-level and net-consistency validation happen in
		// cfg.Validate below, through the standard taxonomy.
		cfg.BWTrace = tr
	}
	if r.DurationS != 0 {
		cfg.Duration = sim.Time(r.DurationS) * sim.Second
	}
	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}
	cfg.Codec = r.Codec
	cfg.CStates = r.CStates
	cfg.LowLatency = r.LowLatency
	if r.Thermal {
		th := cpu.DefaultThermalConfig()
		cfg.Thermal = &th
	}
	if r.Background != nil {
		cfg.Background = *r.Background
	}
	if r.SegmentDurS != 0 {
		cfg.SegmentDur = sim.Time(r.SegmentDurS) * sim.Second
	}
	cfg.FPS = r.FPS
	if r.HorizonS != 0 {
		cfg.Horizon = sim.Time(r.HorizonS) * sim.Second
	}
	cfg.DecodedQueueCap = r.DecodedQueueCap
	cfg.LowWaterSec = r.LowWaterSec
	if r.Forecast != "" {
		fc, err := experiments.ParseForecastKind(r.Forecast)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Forecast = fc
	}
	if r.ForecastLookaheadS != 0 {
		cfg.ForecastLookahead = sim.Time(r.ForecastLookaheadS) * sim.Second
	}
	cfg.ForecastRelErr = r.ForecastRelErr
	cfg.ForecastSeed = r.ForecastSeed
	if p := r.Policy; p != nil {
		if p.Margin != nil {
			cfg.Policy.Margin = *p.Margin
		}
		if p.SigmaK != nil {
			cfg.Policy.SigmaK = *p.SigmaK
		}
		if p.Alpha != nil {
			cfg.Policy.Alpha = *p.Alpha
		}
		if p.GuardMs != nil {
			cfg.Policy.Guard = sim.Time(*p.GuardMs) * sim.Millisecond
		}
		if p.TargetQueueFrac != nil {
			cfg.Policy.TargetQueueFrac = *p.TargetQueueFrac
		}
		if p.SprintFrames != nil {
			cfg.Policy.SprintFrames = *p.SprintFrames
		}
		if p.RaceToIdle != nil {
			cfg.Policy.RaceToIdle = *p.RaceToIdle
		}
		if p.StartupBoost != nil {
			cfg.Policy.StartupBoost = *p.StartupBoost
		}
		if p.MinOPP != nil {
			cfg.Policy.MinOPP = *p.MinOPP
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// SweepRequest is the wire form of a batch sweep: a base request plus
// axis lists, expanded as their cross product exactly like
// experiments.Sweep (governor-major, seed-minor).
type SweepRequest struct {
	// Base is the config template every point starts from.
	Base RunRequest `json:"base"`
	// Governors, Nets, Devices, Titles, Rungs are the swept axes; nil
	// keeps the base value.
	Governors []string `json:"governors,omitempty"`
	Nets      []string `json:"nets,omitempty"`
	Devices   []string `json:"devices,omitempty"`
	Titles    []string `json:"titles,omitempty"`
	Rungs     []string `json:"rungs,omitempty"`
	// Seeds is the explicit seed axis.
	Seeds []int64 `json:"seeds,omitempty"`
	// SeedRange expands to the seeds [lo, hi] inclusive; mutually
	// exclusive with Seeds.
	SeedRange *[2]int64 `json:"seed_range,omitempty"`
}

// Size returns how many runs the sweep expands to, without expanding —
// the admission check happens before any per-point allocation.
func (r SweepRequest) Size() int64 {
	dim := func(n int) int64 {
		if n == 0 {
			return 1
		}
		return int64(n)
	}
	seeds := int64(len(r.Seeds))
	if r.SeedRange != nil && r.SeedRange[1] >= r.SeedRange[0] {
		seeds = r.SeedRange[1] - r.SeedRange[0] + 1
	}
	if seeds == 0 {
		seeds = 1
	}
	size := dim(len(r.Governors)) * dim(len(r.Nets)) * dim(len(r.Devices)) *
		dim(len(r.Titles)) * dim(len(r.Rungs))
	if size > 0 && seeds > (1<<62)/size { // clamp instead of overflowing
		return 1 << 62
	}
	return size * seeds
}

// Configs expands the sweep into concrete validated RunConfigs.
func (r SweepRequest) Configs() ([]experiments.RunConfig, error) {
	base, err := r.Base.Config()
	if err != nil {
		return nil, fmt.Errorf("server: sweep base: %w", err)
	}
	sw := experiments.Sweep{Base: base}
	for _, g := range r.Governors {
		gov, err := experiments.ParseGovernorID(g)
		if err != nil {
			return nil, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		sw.Governors = append(sw.Governors, gov)
	}
	for _, n := range r.Nets {
		net, err := experiments.ParseNetKind(n)
		if err != nil {
			return nil, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		sw.Nets = append(sw.Nets, net)
	}
	for _, d := range r.Devices {
		dev, err := cpu.DeviceByName(d)
		if err != nil {
			return nil, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		sw.Devices = append(sw.Devices, dev)
	}
	for _, tn := range r.Titles {
		title, err := video.TitleByName(tn)
		if err != nil {
			return nil, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		sw.Titles = append(sw.Titles, title)
	}
	for _, rn := range r.Rungs {
		rung, err := video.ResolutionByName(rn)
		if err != nil {
			return nil, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		sw.Rungs = append(sw.Rungs, rung)
	}
	switch {
	case len(r.Seeds) > 0 && r.SeedRange != nil:
		return nil, fmt.Errorf("server: %w: seeds and seed_range are mutually exclusive", experiments.ErrInvalidConfig)
	case len(r.Seeds) > 0:
		sw.Seeds = r.Seeds
	case r.SeedRange != nil:
		if r.SeedRange[1] < r.SeedRange[0] {
			return nil, fmt.Errorf("server: %w: seed_range [%d, %d] is empty",
				experiments.ErrInvalidConfig, r.SeedRange[0], r.SeedRange[1])
		}
		sw.Seeds = experiments.SeedRange(r.SeedRange[0], r.SeedRange[1])
	}
	cfgs := sw.Expand()
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("server: sweep point %d: %w", i, err)
		}
	}
	return cfgs, nil
}

// CohortRequest is the wire form of one cohort run: a base per-viewer
// request plus population, arrival process, shared-cell contention, and
// rollup cadence. Zero values inherit the cohort defaults (1000 viewers
// all joining at t=0, 10 s rollups).
type CohortRequest struct {
	// Base is the per-viewer session template; `{}` is the evaluation's
	// base case.
	Base RunRequest `json:"base"`
	// Viewers is the cohort size (0 = 1000).
	Viewers int `json:"viewers,omitempty"`
	// Arrival names the join process: "all" (default), "uniform",
	// "burst", "poisson".
	Arrival string `json:"arrival,omitempty"`
	// ArrivalWindowS is the join window in virtual seconds (uniform,
	// burst).
	ArrivalWindowS float64 `json:"arrival_window_s,omitempty"`
	// ArrivalRatePerSec is the mean join rate (poisson).
	ArrivalRatePerSec float64 `json:"arrival_rate_per_sec,omitempty"`
	// Cell, when set, makes viewers contend for shared sector bandwidth.
	Cell *CellRequest `json:"cell,omitempty"`
	// Shards overrides the engine-shard count (0 = derived; part of the
	// result identity).
	Shards int `json:"shards,omitempty"`
	// RollupS is the aggregate-snapshot cadence in virtual seconds
	// (0 = 10).
	RollupS float64 `json:"rollup_s,omitempty"`
	// Seed drives the per-viewer seed split (0 = the base seed).
	Seed int64 `json:"seed,omitempty"`
}

// CellRequest is the wire form of a shared radio sector model.
type CellRequest struct {
	// CapacityMbps is each sector's shared downlink capacity.
	CapacityMbps float64 `json:"capacity_mbps"`
	// PerViewerMbps caps one viewer's share (0 = capacity).
	PerViewerMbps float64 `json:"per_viewer_mbps,omitempty"`
	// Sectors spreads the cohort over this many independent sectors
	// (0 = 1).
	Sectors int `json:"sectors,omitempty"`
}

// Config resolves the request into a concrete validated cohort.Config.
func (r CohortRequest) Config() (cohort.Config, error) {
	base, err := r.Base.Config()
	if err != nil {
		return cohort.Config{}, fmt.Errorf("server: cohort base: %w", err)
	}
	cfg := cohort.DefaultConfig()
	cfg.Base = base
	if r.Viewers != 0 {
		cfg.Viewers = r.Viewers
	}
	cfg.Arrival = cohort.Arrival{
		Kind:       cohort.ArrivalKind(r.Arrival),
		Window:     sim.Time(r.ArrivalWindowS) * sim.Second,
		RatePerSec: r.ArrivalRatePerSec,
	}
	if c := r.Cell; c != nil {
		cfg.Cell = &cohort.Cell{
			CapacityMbps:  c.CapacityMbps,
			PerViewerMbps: c.PerViewerMbps,
			Sectors:       c.Sectors,
		}
	}
	cfg.Shards = r.Shards
	if r.RollupS != 0 {
		cfg.Rollup = sim.Time(r.RollupS) * sim.Second
	}
	cfg.Seed = r.Seed
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// CohortPartRequest is the wire form of a partial cohort run: the whole
// cohort's spec plus the shard indexes this worker should execute. The
// cohort spec must be complete — the shard layout is derived from it, so
// every worker in a fleet-sharded cohort receives the same spec and a
// disjoint shard set. (The cohort nests under its own key rather than
// embedding, because CohortRequest's shards field — the shard-count
// override — must stay addressable.)
type CohortPartRequest struct {
	// Cohort is the whole cohort's request, exactly as a /v1/cohort body.
	Cohort CohortRequest `json:"cohort"`
	// Shards names the shard indexes to execute (non-empty, each in
	// [0, shard count)).
	Shards []int `json:"shards"`
}

// Config resolves the embedded cohort request (see CohortRequest.Config).
func (r CohortPartRequest) Config() (cohort.Config, error) {
	return r.Cohort.Config()
}

// decodeStrict unmarshals exactly one JSON value from r into v, rejecting
// unknown fields and trailing non-whitespace. Errors wrap ErrBadRequest.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: %w: %w", ErrBadRequest, err)
	}
	if dec.More() {
		return fmt.Errorf("server: %w: trailing data after JSON body", ErrBadRequest)
	}
	return nil
}

// DecodeRunRequest parses one RunRequest from r (strict mode: unknown
// fields and trailing data are errors wrapping ErrBadRequest).
func DecodeRunRequest(r io.Reader) (RunRequest, error) {
	var req RunRequest
	err := decodeStrict(r, &req)
	return req, err
}

// DecodeSweepRequest parses one SweepRequest from r under the same strict
// rules as DecodeRunRequest.
func DecodeSweepRequest(r io.Reader) (SweepRequest, error) {
	var req SweepRequest
	err := decodeStrict(r, &req)
	return req, err
}

// DecodeCohortRequest parses one CohortRequest from r under the same
// strict rules as DecodeRunRequest.
func DecodeCohortRequest(r io.Reader) (CohortRequest, error) {
	var req CohortRequest
	err := decodeStrict(r, &req)
	return req, err
}

// DecodeCohortPartRequest parses one CohortPartRequest from r under the
// same strict rules as DecodeRunRequest.
func DecodeCohortPartRequest(r io.Reader) (CohortPartRequest, error) {
	var req CohortPartRequest
	err := decodeStrict(r, &req)
	return req, err
}
