package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"videodvfs/internal/cpu"
	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// ErrBadRequest reports a request body the decoder rejected before any
// simulation semantics were involved: malformed JSON, unknown fields,
// trailing garbage. Semantic violations surface as
// experiments.ErrInvalidConfig instead; both map to HTTP 400.
var ErrBadRequest = errors.New("bad request")

// RunRequest is the wire form of one simulation request. Every field is
// optional; zero values inherit the library default (DefaultRunConfig),
// so `{}` runs the evaluation's base case. Built-in devices, titles, and
// rungs are referenced by name — the service owns the catalogs, clients
// own only the selection.
type RunRequest struct {
	// Device names a built-in CPU model ("flagship", "midrange",
	// "efficient").
	Device string `json:"device,omitempty"`
	// Governor selects the frequency policy (videodvfs.GovernorNames).
	Governor string `json:"governor,omitempty"`
	// Title names a built-in content profile ("news", "sports",
	// "animation").
	Title string `json:"title,omitempty"`
	// Rung names the pinned rendition ("360p" … "1080p") under fixed ABR.
	Rung string `json:"rung,omitempty"`
	// ABR selects the adaptation algorithm ("fixed", "rate", "bba").
	ABR string `json:"abr,omitempty"`
	// Net selects the bandwidth profile ("wifi", "const8", "lte",
	// "umts").
	Net string `json:"net,omitempty"`
	// DurationS is the content length in seconds (0 = 60).
	DurationS float64 `json:"duration_s,omitempty"`
	// Seed drives all stochastic inputs (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Codec selects the decode model ("h264", "hevc").
	Codec string `json:"codec,omitempty"`
	// CStates enables the cpuidle model.
	CStates bool `json:"cstates,omitempty"`
	// LowLatency switches the player to live-streaming thresholds.
	LowLatency bool `json:"low_latency,omitempty"`
	// Thermal attaches the default RC thermal model + throttler.
	Thermal bool `json:"thermal,omitempty"`
	// Background toggles the UI/OS load generator (unset = on, the
	// evaluation default).
	Background *bool `json:"background,omitempty"`
	// SegmentDurS overrides the media segment duration in seconds.
	SegmentDurS float64 `json:"segment_dur_s,omitempty"`
	// FPS overrides the frame rate.
	FPS float64 `json:"fps,omitempty"`
	// HorizonS caps virtual time in seconds; the server clamps it to its
	// own maximum either way (see Config.MaxHorizon).
	HorizonS float64 `json:"horizon_s,omitempty"`
	// DecodedQueueCap overrides the player's decode-ahead depth.
	DecodedQueueCap int `json:"decoded_queue_cap,omitempty"`
	// LowWaterSec enables the player's burst-prefetch hysteresis.
	LowWaterSec float64 `json:"low_water_sec,omitempty"`
	// Policy overrides individual energy-aware governor knobs.
	Policy *PolicyRequest `json:"policy,omitempty"`
}

// PolicyRequest overrides individual fields of the energy-aware
// governor's tuning; nil fields keep the paper default.
type PolicyRequest struct {
	Margin          *float64 `json:"margin,omitempty"`
	SigmaK          *float64 `json:"sigma_k,omitempty"`
	Alpha           *float64 `json:"alpha,omitempty"`
	GuardMs         *float64 `json:"guard_ms,omitempty"`
	TargetQueueFrac *float64 `json:"target_queue_frac,omitempty"`
	SprintFrames    *float64 `json:"sprint_frames,omitempty"`
	RaceToIdle      *bool    `json:"race_to_idle,omitempty"`
	StartupBoost    *bool    `json:"startup_boost,omitempty"`
	MinOPP          *int     `json:"min_opp,omitempty"`
}

// Config resolves the request against the built-in catalogs into a
// concrete, validated RunConfig. Catalog misses and semantic violations
// return errors wrapping experiments.ErrInvalidConfig.
func (r RunRequest) Config() (experiments.RunConfig, error) {
	cfg := experiments.DefaultRunConfig()
	if r.Device != "" {
		dev, err := cpu.DeviceByName(r.Device)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Device = dev
	}
	if r.Governor != "" {
		gov, err := experiments.ParseGovernorID(r.Governor)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Governor = gov
	}
	if r.Title != "" {
		title, err := video.TitleByName(r.Title)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Title = title
	}
	if r.Rung != "" {
		rung, err := video.ResolutionByName(r.Rung)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.Rung = rung
	}
	if r.ABR != "" {
		abr, err := experiments.ParseABRID(r.ABR)
		if err != nil {
			return cfg, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		cfg.ABR = abr
	}
	if r.Net != "" {
		cfg.Net = experiments.NetKind(r.Net)
	}
	if r.DurationS != 0 {
		cfg.Duration = sim.Time(r.DurationS) * sim.Second
	}
	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}
	cfg.Codec = r.Codec
	cfg.CStates = r.CStates
	cfg.LowLatency = r.LowLatency
	if r.Thermal {
		th := cpu.DefaultThermalConfig()
		cfg.Thermal = &th
	}
	if r.Background != nil {
		cfg.Background = *r.Background
	}
	if r.SegmentDurS != 0 {
		cfg.SegmentDur = sim.Time(r.SegmentDurS) * sim.Second
	}
	cfg.FPS = r.FPS
	if r.HorizonS != 0 {
		cfg.Horizon = sim.Time(r.HorizonS) * sim.Second
	}
	cfg.DecodedQueueCap = r.DecodedQueueCap
	cfg.LowWaterSec = r.LowWaterSec
	if p := r.Policy; p != nil {
		if p.Margin != nil {
			cfg.Policy.Margin = *p.Margin
		}
		if p.SigmaK != nil {
			cfg.Policy.SigmaK = *p.SigmaK
		}
		if p.Alpha != nil {
			cfg.Policy.Alpha = *p.Alpha
		}
		if p.GuardMs != nil {
			cfg.Policy.Guard = sim.Time(*p.GuardMs) * sim.Millisecond
		}
		if p.TargetQueueFrac != nil {
			cfg.Policy.TargetQueueFrac = *p.TargetQueueFrac
		}
		if p.SprintFrames != nil {
			cfg.Policy.SprintFrames = *p.SprintFrames
		}
		if p.RaceToIdle != nil {
			cfg.Policy.RaceToIdle = *p.RaceToIdle
		}
		if p.StartupBoost != nil {
			cfg.Policy.StartupBoost = *p.StartupBoost
		}
		if p.MinOPP != nil {
			cfg.Policy.MinOPP = *p.MinOPP
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// SweepRequest is the wire form of a batch sweep: a base request plus
// axis lists, expanded as their cross product exactly like
// experiments.Sweep (governor-major, seed-minor).
type SweepRequest struct {
	// Base is the config template every point starts from.
	Base RunRequest `json:"base"`
	// Governors, Nets, Devices, Titles, Rungs are the swept axes; nil
	// keeps the base value.
	Governors []string `json:"governors,omitempty"`
	Nets      []string `json:"nets,omitempty"`
	Devices   []string `json:"devices,omitempty"`
	Titles    []string `json:"titles,omitempty"`
	Rungs     []string `json:"rungs,omitempty"`
	// Seeds is the explicit seed axis.
	Seeds []int64 `json:"seeds,omitempty"`
	// SeedRange expands to the seeds [lo, hi] inclusive; mutually
	// exclusive with Seeds.
	SeedRange *[2]int64 `json:"seed_range,omitempty"`
}

// Size returns how many runs the sweep expands to, without expanding —
// the admission check happens before any per-point allocation.
func (r SweepRequest) Size() int64 {
	dim := func(n int) int64 {
		if n == 0 {
			return 1
		}
		return int64(n)
	}
	seeds := int64(len(r.Seeds))
	if r.SeedRange != nil && r.SeedRange[1] >= r.SeedRange[0] {
		seeds = r.SeedRange[1] - r.SeedRange[0] + 1
	}
	if seeds == 0 {
		seeds = 1
	}
	size := dim(len(r.Governors)) * dim(len(r.Nets)) * dim(len(r.Devices)) *
		dim(len(r.Titles)) * dim(len(r.Rungs))
	if size > 0 && seeds > (1<<62)/size { // clamp instead of overflowing
		return 1 << 62
	}
	return size * seeds
}

// Configs expands the sweep into concrete validated RunConfigs.
func (r SweepRequest) Configs() ([]experiments.RunConfig, error) {
	base, err := r.Base.Config()
	if err != nil {
		return nil, fmt.Errorf("server: sweep base: %w", err)
	}
	sw := experiments.Sweep{Base: base}
	for _, g := range r.Governors {
		gov, err := experiments.ParseGovernorID(g)
		if err != nil {
			return nil, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		sw.Governors = append(sw.Governors, gov)
	}
	for _, n := range r.Nets {
		sw.Nets = append(sw.Nets, experiments.NetKind(n))
	}
	for _, d := range r.Devices {
		dev, err := cpu.DeviceByName(d)
		if err != nil {
			return nil, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		sw.Devices = append(sw.Devices, dev)
	}
	for _, tn := range r.Titles {
		title, err := video.TitleByName(tn)
		if err != nil {
			return nil, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		sw.Titles = append(sw.Titles, title)
	}
	for _, rn := range r.Rungs {
		rung, err := video.ResolutionByName(rn)
		if err != nil {
			return nil, fmt.Errorf("server: %w: %w", experiments.ErrInvalidConfig, err)
		}
		sw.Rungs = append(sw.Rungs, rung)
	}
	switch {
	case len(r.Seeds) > 0 && r.SeedRange != nil:
		return nil, fmt.Errorf("server: %w: seeds and seed_range are mutually exclusive", experiments.ErrInvalidConfig)
	case len(r.Seeds) > 0:
		sw.Seeds = r.Seeds
	case r.SeedRange != nil:
		if r.SeedRange[1] < r.SeedRange[0] {
			return nil, fmt.Errorf("server: %w: seed_range [%d, %d] is empty",
				experiments.ErrInvalidConfig, r.SeedRange[0], r.SeedRange[1])
		}
		sw.Seeds = experiments.SeedRange(r.SeedRange[0], r.SeedRange[1])
	}
	cfgs := sw.Expand()
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("server: sweep point %d: %w", i, err)
		}
	}
	return cfgs, nil
}

// decodeStrict unmarshals exactly one JSON value from r into v, rejecting
// unknown fields and trailing non-whitespace. Errors wrap ErrBadRequest.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: %w: %w", ErrBadRequest, err)
	}
	if dec.More() {
		return fmt.Errorf("server: %w: trailing data after JSON body", ErrBadRequest)
	}
	return nil
}

// DecodeRunRequest parses one RunRequest from r (strict mode: unknown
// fields and trailing data are errors wrapping ErrBadRequest).
func DecodeRunRequest(r io.Reader) (RunRequest, error) {
	var req RunRequest
	err := decodeStrict(r, &req)
	return req, err
}

// DecodeSweepRequest parses one SweepRequest from r under the same strict
// rules as DecodeRunRequest.
func DecodeSweepRequest(r io.Reader) (SweepRequest, error) {
	var req SweepRequest
	err := decodeStrict(r, &req)
	return req, err
}
