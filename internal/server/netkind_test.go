package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"videodvfs/internal/experiments"
)

// validTraceJSON is a minimal well-formed bw_trace payload: two fetches
// whose tail rate sustains the run.
const validTraceJSON = `[{"t0":0,"t1":0.5,"bytes":500000,"fetch":0},` +
	`{"t0":0.7,"t1":1,"bytes":400000,"fetch":1}]`

// TestNetKindDecodePaths pins the "trace" kind's enumeration through
// every decode path of the service: run, sweep, and cohort bodies, the
// unknown-net error envelope, and the catalog. A NetKind added to
// experiments must surface consistently everywhere or this table breaks.
func TestNetKindDecodePaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	type envelopeBody struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantCode   string // envelope code for non-2xx
		wantInMsg  string // substring of the envelope message
	}{
		{
			name: "run trace with samples", path: "/v1/run",
			body:       `{"net":"trace","bw_trace":` + validTraceJSON + `,"duration_s":1,"background":false}`,
			wantStatus: http.StatusOK,
		},
		{
			name: "run trace without samples", path: "/v1/run",
			body:       `{"net":"trace","duration_s":1}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeInvalidConfig, wantInMsg: "requires a bandwidth trace",
		},
		{
			name: "run samples without trace net", path: "/v1/run",
			body:       `{"net":"wifi","bw_trace":` + validTraceJSON + `,"duration_s":1}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeInvalidConfig, wantInMsg: `not "trace"`,
		},
		{
			name: "run unknown net lists trace", path: "/v1/run",
			body:       `{"net":"5g"}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeInvalidConfig, wantInMsg: "trace",
		},
		{
			name: "run invalid samples", path: "/v1/run",
			body:       `{"net":"trace","bw_trace":[{"t0":2,"t1":1,"bytes":10,"fetch":0}],"duration_s":1}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeInvalidConfig, wantInMsg: "invalid bandwidth trace",
		},
		{
			name: "sweep unknown net", path: "/v1/sweep",
			body:       `{"base":{"duration_s":1},"nets":["wifi","5g"]}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeInvalidConfig, wantInMsg: "trace",
		},
		{
			name: "sweep trace base with samples", path: "/v1/sweep",
			body: `{"base":{"net":"trace","bw_trace":` + validTraceJSON +
				`,"duration_s":1,"background":false},"seeds":[1,2]}`,
			wantStatus: http.StatusOK,
		},
		{
			name: "cohort unknown net", path: "/v1/cohort",
			body:       `{"base":{"net":"5g"},"viewers":2}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeInvalidConfig, wantInMsg: "trace",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+tc.path, tc.body)
			raw := readAll(t, resp)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if tc.wantCode == "" {
				return
			}
			var env envelopeBody
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("error body is not the envelope: %v (%s)", err, raw)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("envelope code %q, want %q", env.Error.Code, tc.wantCode)
			}
			if !strings.Contains(env.Error.Message, tc.wantInMsg) {
				t.Errorf("envelope message %q missing %q", env.Error.Message, tc.wantInMsg)
			}
		})
	}

	// The catalog, ParseNetKind's known-list, and NetKinds() must agree.
	resp := mustGet(t, ts.URL+"/v1/catalog")
	var cat struct {
		Nets []string `json:"nets"`
	}
	if err := json.Unmarshal(readAll(t, resp), &cat); err != nil {
		t.Fatal(err)
	}
	kinds := experiments.NetKinds()
	if len(cat.Nets) != len(kinds) {
		t.Fatalf("catalog nets %v, want %v", cat.Nets, kinds)
	}
	for i, k := range kinds {
		if cat.Nets[i] != string(k) {
			t.Fatalf("catalog nets %v, want %v", cat.Nets, kinds)
		}
		if _, err := experiments.ParseNetKind(string(k)); err != nil {
			t.Fatalf("NetKinds entry %q rejected by ParseNetKind: %v", k, err)
		}
	}
}

// TestRunRequestBWTraceRoundTrip pins the wire form: a RunRequest with a
// bw_trace decodes strictly and resolves to a config whose trace
// content matches the samples.
func TestRunRequestBWTraceRoundTrip(t *testing.T) {
	body := `{"net":"trace","duration_s":1,"bw_trace":` + validTraceJSON + `}`
	req, err := DecodeRunRequest(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	cfg, err := req.Config()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if cfg.Net != experiments.NetTrace || cfg.BWTrace == nil {
		t.Fatalf("config net %q, trace %v", cfg.Net, cfg.BWTrace)
	}
	if n := len(cfg.BWTrace.Samples); n != 2 {
		t.Fatalf("config trace has %d samples, want 2", n)
	}
	s := cfg.BWTrace.Samples[1]
	if s.Start != 0.7 || s.End != 1 || s.Bytes != 400000 || s.Fetch != 1 {
		t.Fatalf("sample 1 = %+v", s)
	}
	// Trace-backed configs are cacheable by content.
	if _, ok := experiments.ConfigKey(cfg); !ok {
		t.Fatal("trace-backed config reported uncacheable")
	}
}
