package server

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestCacheStoresAndHits(t *testing.T) {
	c := newResultCache(1 << 20)
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("body"), nil }
	body, outcome, err := c.Do("k", compute)
	if err != nil || outcome != cacheMiss || string(body) != "body" {
		t.Fatalf("first Do = %s/%s/%v", body, outcome, err)
	}
	body, outcome, err = c.Do("k", compute)
	if err != nil || outcome != cacheHit || string(body) != "body" {
		t.Fatalf("second Do = %s/%s/%v", body, outcome, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 4 {
		t.Fatalf("stats %+v", st)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5", got)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(1 << 20)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.Do("k", func() ([]byte, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if body, outcome, err := c.Do("k", func() ([]byte, error) { calls++; return []byte("ok"), nil }); err != nil ||
		outcome != cacheMiss || string(body) != "ok" {
		t.Fatalf("retry = %s/%s/%v", body, outcome, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (error must not be pinned)", calls)
	}
}

// Eviction must keep total bytes under the bound, dropping least
// recently used entries first.
func TestCacheLRUByteBound(t *testing.T) {
	c := newResultCache(100)
	body := func(i int) []byte { return bytes.Repeat([]byte{byte('a' + i)}, 40) }
	for i := 0; i < 2; i++ {
		c.Do(fmt.Sprintf("k%d", i), func() ([]byte, error) { return body(i), nil })
	}
	// Touch k0 so k1 is the LRU victim when k2 arrives.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Do("k2", func() ([]byte, error) { return body(2), nil })
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("cache holds %d bytes, bound is 100", st.Bytes)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived but was the LRU entry")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 evicted despite being recently used")
	}
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("k2 missing right after insert")
	}
}

// A body larger than the whole bound must pass through uncached rather
// than evicting everything.
func TestCacheOversizedBodyNotStored(t *testing.T) {
	c := newResultCache(10)
	c.Do("small", func() ([]byte, error) { return []byte("abc"), nil })
	c.Do("big", func() ([]byte, error) { return bytes.Repeat([]byte("x"), 64), nil })
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized body was stored")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("small entry evicted by an unstorable body")
	}
}

func TestCacheSingleflightConcurrent(t *testing.T) {
	c := newResultCache(1 << 20)
	gate := make(chan struct{})
	var calls, coalesced, misses int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, outcome, err := c.Do("k", func() ([]byte, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				<-gate
				return []byte("flight"), nil
			})
			if err != nil || string(body) != "flight" {
				t.Errorf("Do = %s/%v", body, err)
			}
			mu.Lock()
			switch outcome {
			case cacheCoalesced:
				coalesced++
			case cacheMiss:
				misses++
			}
			mu.Unlock()
		}()
	}
	// Let every goroutine reach the cache before releasing the leader.
	for {
		st := c.Stats()
		if st.Misses+st.Coalesced == 16 {
			break
		}
	}
	close(gate)
	wg.Wait()
	if calls != 1 || misses != 1 || coalesced != 15 {
		t.Fatalf("calls=%d misses=%d coalesced=%d, want 1/1/15", calls, misses, coalesced)
	}
}
