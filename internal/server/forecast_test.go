package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
)

// TestRunRequestForecastMapping pins the wire→config mapping of the
// forecast axis: every field lands on its RunConfig counterpart, catalog
// misses wrap ErrInvalidConfig, and semantic violations flow through
// Validate's taxonomy unchanged.
func TestRunRequestForecastMapping(t *testing.T) {
	req := RunRequest{
		Net:                "lte",
		LowWaterSec:        10,
		Forecast:           "noisy",
		ForecastLookaheadS: 15,
		ForecastRelErr:     0.25,
		ForecastSeed:       7,
	}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Forecast != experiments.ForecastNoisy {
		t.Errorf("forecast kind %q, want noisy", cfg.Forecast)
	}
	if cfg.ForecastLookahead != 15*sim.Second {
		t.Errorf("lookahead %v, want 15 s", cfg.ForecastLookahead)
	}
	if cfg.ForecastRelErr != 0.25 || cfg.ForecastSeed != 7 {
		t.Errorf("relerr/seed %v/%v, want 0.25/7", cfg.ForecastRelErr, cfg.ForecastSeed)
	}

	if _, err := (RunRequest{Forecast: "psychic", LowWaterSec: 5}).Config(); !errors.Is(err, experiments.ErrInvalidConfig) {
		t.Errorf("unknown forecast kind: %v, want ErrInvalidConfig", err)
	}
	if _, err := (RunRequest{Forecast: "oracle"}).Config(); !errors.Is(err, experiments.ErrInvalidConfig) {
		t.Errorf("forecast without low water: %v, want ErrInvalidConfig", err)
	}
	if _, err := (RunRequest{Forecast: "oracle", LowWaterSec: 5, ForecastRelErr: 0.1}).Config(); !errors.Is(err, experiments.ErrInvalidConfig) {
		t.Errorf("relerr without noisy: %v, want ErrInvalidConfig", err)
	}
}

// TestRunForecastEndpoint drives the forecast axis through the HTTP
// surface: a predictive run completes, and the error envelope carries the
// catalog of kinds on a miss.
func TestRunForecastEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/run",
		`{"net":"lte","duration_s":5,"low_water_sec":4,"forecast":"oracle","forecast_lookahead_s":10}`)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predictive run: status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Completed bool `json:"completed"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("predictive run body: %v: %s", err, b)
	}

	resp = postJSON(t, ts.URL+"/v1/run", `{"low_water_sec":4,"forecast":"psychic"}`)
	b = readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown forecast: status %d, want 400: %s", resp.StatusCode, b)
	}
	var eb errorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Code != CodeInvalidConfig {
		t.Fatalf("unknown forecast: not an invalid-config envelope: %s", b)
	}
}
