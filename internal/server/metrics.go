package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"videodvfs/internal/stats"
)

// latencyWindow is how many recent run latencies the quantile estimates
// are computed over.
const latencyWindow = 512

// metrics aggregates the service-level counters exposed on /metrics.
// Counters are atomics; the latency ring is mutex-guarded. Everything
// derived (ratios, quantiles, rates) is computed at render time.
type metrics struct {
	start time.Time

	requests sync.Map // endpoint string -> *atomic.Int64
	rejected atomic.Int64
	runs     atomic.Int64
	runErrs  atomic.Int64

	mu        sync.Mutex
	latencies [latencyWindow]float64 // seconds, ring
	lat       int                    // next write position
	latN      int                    // filled entries
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// request counts one request against an endpoint label.
func (m *metrics) request(endpoint string) {
	v, ok := m.requests.Load(endpoint)
	if !ok {
		v, _ = m.requests.LoadOrStore(endpoint, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

// reject counts one admission rejection (HTTP 429).
func (m *metrics) reject() { m.rejected.Add(1) }

// observeRun records one completed simulation and its wall latency.
func (m *metrics) observeRun(d time.Duration, err error) {
	m.runs.Add(1)
	if err != nil {
		m.runErrs.Add(1)
	}
	m.mu.Lock()
	m.latencies[m.lat] = d.Seconds()
	m.lat = (m.lat + 1) % latencyWindow
	if m.latN < latencyWindow {
		m.latN++
	}
	m.mu.Unlock()
}

// runQuantiles returns p50/p99 over the latency window (zeros when no
// run has completed yet).
func (m *metrics) runQuantiles() (p50, p99 float64) {
	m.mu.Lock()
	window := append([]float64(nil), m.latencies[:m.latN]...)
	m.mu.Unlock()
	if len(window) == 0 {
		return 0, 0
	}
	qs := stats.Percentiles(window, 50, 99)
	return qs[0], qs[1]
}

// render writes the metrics in Prometheus-style text exposition format.
// Gauges owned by other components (queue depth, cache counters) are
// passed in so /metrics is a consistent point-in-time snapshot.
func (m *metrics) render(b *strings.Builder, queueDepth, queueCap, active, workers int, cs cacheStats) {
	uptime := time.Since(m.start).Seconds()
	fmt.Fprintf(b, "dvfsd_uptime_seconds %g\n", uptime)

	var endpoints []string
	m.requests.Range(func(k, _ any) bool {
		endpoints = append(endpoints, k.(string))
		return true
	})
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		v, _ := m.requests.Load(ep)
		fmt.Fprintf(b, "dvfsd_requests_total{endpoint=%q} %d\n", ep, v.(*atomic.Int64).Load())
	}
	fmt.Fprintf(b, "dvfsd_requests_rejected_total %d\n", m.rejected.Load())

	fmt.Fprintf(b, "dvfsd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(b, "dvfsd_queue_capacity %d\n", queueCap)
	fmt.Fprintf(b, "dvfsd_active_runs %d\n", active)
	fmt.Fprintf(b, "dvfsd_workers %d\n", workers)

	runs := m.runs.Load()
	fmt.Fprintf(b, "dvfsd_runs_total %d\n", runs)
	fmt.Fprintf(b, "dvfsd_run_errors_total %d\n", m.runErrs.Load())
	rate := 0.0
	if uptime > 0 {
		rate = float64(runs) / uptime
	}
	fmt.Fprintf(b, "dvfsd_runs_per_sec %g\n", rate)
	p50, p99 := m.runQuantiles()
	fmt.Fprintf(b, "dvfsd_run_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(b, "dvfsd_run_latency_seconds{quantile=\"0.99\"} %g\n", p99)

	fmt.Fprintf(b, "dvfsd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(b, "dvfsd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(b, "dvfsd_cache_coalesced_total %d\n", cs.Coalesced)
	fmt.Fprintf(b, "dvfsd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(b, "dvfsd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(b, "dvfsd_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(b, "dvfsd_cache_hit_ratio %g\n", cs.HitRatio())
}
