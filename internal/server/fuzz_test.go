package server

import (
	"bytes"
	"errors"
	"testing"

	"videodvfs/internal/experiments"
)

// FuzzDecodeRunRequest asserts the full untrusted-input path is total:
// arbitrary bytes either decode into a RunRequest whose Config() is a
// validated, cacheable RunConfig, or fail with a typed error — never a
// panic, never a config that Validate would reject.
func FuzzDecodeRunRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"duration_s": 30, "seed": 2}`))
	f.Add([]byte(`{"governor": "ondemand", "abr": "bba", "net": "lte", "duration_s": 60}`))
	f.Add([]byte(`{"device": "flagship", "title": "sports", "rung": "1080p", "fps": 24}`))
	f.Add([]byte(`{"policy": {"margin": 0.3, "beta": 0.5}}`))
	f.Add([]byte(`{"governor": "nosuch"}`))
	f.Add([]byte(`{"unknown_field": 1}`))
	f.Add([]byte(`{"duration_s": -5}`))
	f.Add([]byte(`{} trailing`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"duration_s": 1e309}`))
	f.Add([]byte("{\"title\": \"\x00\"}"))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRunRequest(bytes.NewReader(body))
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode error %v does not wrap ErrBadRequest", err)
			}
			return
		}
		cfg, err := req.Config()
		if err != nil {
			if !errors.Is(err, experiments.ErrInvalidConfig) {
				t.Fatalf("Config error %v does not wrap ErrInvalidConfig", err)
			}
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Config() returned a config Validate rejects: %v", err)
		}
		// Requests carry no callbacks, so every accepted config must have
		// a stable content-addressed identity.
		k1, ok := experiments.ConfigKey(cfg)
		if !ok {
			t.Fatal("decoded config reported uncacheable")
		}
		if k2, _ := experiments.ConfigKey(cfg); k1 != k2 || len(k1) != 64 {
			t.Fatalf("cache key unstable or malformed: %q vs %q", k1, k2)
		}
	})
}
