// Package server turns the deterministic simulator into a long-running
// HTTP/JSON service: single runs, batch sweeps, cohort runs, and named
// experiments execute on a bounded campaign worker pool behind a
// content-addressed result cache. Determinism is the load-bearing property — a RunConfig's
// result never changes, so responses are cached forever, concurrent
// identical requests coalesce into one simulation, and a cache hit is
// byte-identical to the miss that populated it.
//
// Service discipline:
//
//   - admission control: the pool's queue is bounded; overflow returns
//     429 with a Retry-After estimate instead of queueing unboundedly;
//   - per-request timeouts in virtual time: every run's horizon is
//     clamped to Config.MaxHorizon, so a starved run terminates with
//     ErrHorizonExceeded instead of holding a worker forever;
//   - graceful shutdown: Shutdown stops admission (503) and drains every
//     accepted run before returning.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"videodvfs/internal/campaign"
	"videodvfs/internal/cohort"
	"videodvfs/internal/cpu"
	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// ErrOverloaded reports a request bounced by admission control: the
// worker pool's queue was full. Clients should retry after the
// Retry-After hint.
var ErrOverloaded = errors.New("server: overloaded, queue full")

// Config tunes one Server.
type Config struct {
	// Workers is the simulation pool size (≤0 = GOMAXPROCS).
	Workers int
	// Queue bounds the admission queue (≤0 = 4×workers).
	Queue int
	// CacheBytes bounds the result cache's total body bytes
	// (≤0 = 64 MiB).
	CacheBytes int64
	// MaxHorizon caps every run's virtual-time horizon — the service's
	// per-request timeout, enforced inside the simulation so starved
	// runs fail with ErrHorizonExceeded (≤0 = 1 virtual hour).
	MaxHorizon sim.Time
	// MaxDuration rejects content longer than this up front, bounding
	// per-run memory and wall time (≤0 = 20 virtual minutes).
	MaxDuration sim.Time
	// MaxSweepRuns rejects sweeps expanding to more runs than this
	// (≤0 = 1024).
	MaxSweepRuns int
	// MaxCohortViewers rejects cohorts larger than this
	// (≤0 = 200_000).
	MaxCohortViewers int
	// MaxBodyBytes bounds request bodies (≤0 = 1 MiB).
	MaxBodyBytes int64
	// Runner executes one simulation (nil = experiments.Run). Tests
	// substitute it to script latency and failures.
	Runner func(experiments.RunConfig) (experiments.RunResult, error)
}

func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 4 * max(c.Workers, 1)
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxHorizon <= 0 {
		c.MaxHorizon = sim.Time(3600) * sim.Second
	}
	if c.MaxDuration <= 0 {
		c.MaxDuration = sim.Time(1200) * sim.Second
	}
	if c.MaxSweepRuns <= 0 {
		c.MaxSweepRuns = 1024
	}
	if c.MaxCohortViewers <= 0 {
		c.MaxCohortViewers = 200_000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Runner == nil {
		c.Runner = experiments.Run
	}
	return c
}

// Server is the simulation service. Create with New, mount Handler, stop
// with Shutdown.
type Server struct {
	cfg      Config
	pool     *campaign.Pool
	cache    *resultCache
	met      *metrics
	mux      *http.ServeMux
	draining atomic.Bool
	runSeq   atomic.Int64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  campaign.NewPool(cfg.Workers, cfg.Queue),
		cache: newResultCache(cfg.CacheBytes),
		met:   newMetrics(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/cohort", s.handleCohort)
	mux.HandleFunc("POST /v1/cohort/part", s.handleCohortPart)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops admission (new requests get 503) and drains every
// accepted run. It returns early with ctx's error when the context ends
// first, leaving the drain running in the background.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() { s.pool.Close(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CacheStats exposes the result cache counters (for tests and the CLI's
// exit report).
func (s *Server) CacheStats() (hits, misses, coalesced int64) {
	st := s.cache.Stats()
	return st.Hits, st.Misses, st.Coalesced
}

// ---- response plumbing ----

// Machine-readable error codes: every non-2xx response from a /v1/*
// endpoint carries exactly one envelope {"error":{"code","message"}},
// where code is one of these and message is human-readable detail.
// Clients branch on the code (or the status), never on message text.
const (
	// CodeBadRequest: the body or query string could not be decoded
	// (malformed JSON, unknown fields, bad parameter values). HTTP 400.
	CodeBadRequest = "bad_request"
	// CodeInvalidConfig: the request decoded but names an impossible
	// simulation (catalog miss, semantic violation, over-cap size). HTTP 400.
	CodeInvalidConfig = "invalid_config"
	// CodeOverloaded: admission control bounced the request; retry after
	// the Retry-After hint. HTTP 429.
	CodeOverloaded = "overloaded"
	// CodeHorizonExceeded: a well-formed scenario that cannot complete
	// within its virtual-time horizon. HTTP 422.
	CodeHorizonExceeded = "horizon_exceeded"
	// CodeNotFound: the named resource (experiment ID) does not exist.
	// HTTP 404.
	CodeNotFound = "not_found"
	// CodeDraining: the server is shutting down and not admitting new
	// work. HTTP 503.
	CodeDraining = "draining"
	// CodeTooLarge: the request body exceeded the service's byte cap.
	// HTTP 413.
	CodeTooLarge = "too_large"
	// CodeInternal: an unexpected server-side failure. HTTP 500.
	CodeInternal = "internal"
)

// errorBody is the uniform error envelope.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func errBody(code, message string) errorBody {
	return errorBody{Error: errorDetail{Code: code, Message: message}}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding failure"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// codeStatus maps the service's error taxonomy onto an envelope code and
// HTTP status: decode failures and invalid configs are the client's
// fault (400), admission bounces are 429, a horizon-exceeded run is a
// well-formed request whose scenario cannot complete (422), and anything
// else is a server-side 500.
func codeStatus(err error) (code string, status int) {
	switch {
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest, http.StatusBadRequest
	case errors.Is(err, experiments.ErrInvalidConfig):
		return CodeInvalidConfig, http.StatusBadRequest
	case errors.Is(err, ErrOverloaded), errors.Is(err, campaign.ErrPoolClosed):
		return CodeOverloaded, http.StatusTooManyRequests
	case errors.Is(err, experiments.ErrHorizonExceeded):
		return CodeHorizonExceeded, http.StatusUnprocessableEntity
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}

// writeError renders err as the uniform envelope, with the Retry-After
// estimate on admission bounces.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code, status := codeStatus(err)
	if code == CodeOverloaded {
		s.met.reject()
		w.Header().Set("Retry-After", s.retryAfter())
	}
	writeJSON(w, status, errBody(code, err.Error()))
}

// retryAfter estimates seconds until queue space frees: the backlog
// (queued + active runs) spread over the workers, at the recent median
// run latency. Always at least 1.
func (s *Server) retryAfter() string {
	p50, _ := s.met.runQuantiles()
	return fmt.Sprintf("%d", retryAfterSeconds(
		s.pool.QueueDepth()+s.pool.Active(), s.pool.Workers(), p50))
}

// loadHeaders stamps the worker's instantaneous load onto a response so
// a fleet controller observes backpressure from the traffic it already
// sends instead of polling /metrics.
func (s *Server) loadHeaders(w http.ResponseWriter) {
	w.Header().Set("X-Dvfsd-Queue-Depth", strconv.Itoa(s.pool.QueueDepth()))
}

// retryAfterSeconds is the Retry-After estimate as a pure function, so
// the clamp is testable in isolation. The backlog snapshot races the
// rejection that triggered it — the queue may have drained (backlog 0,
// estimate 0) or the underflow-guarded depth may read negative — and an
// RFC 7231 Retry-After must be a non-negative integer, with 0 telling the
// client to hammer immediately. Every degenerate input therefore clamps
// to ≥ 1 second.
func retryAfterSeconds(backlog, workers int, p50 float64) int {
	if p50 <= 0 || math.IsNaN(p50) || math.IsInf(p50, 0) {
		p50 = 1
	}
	if workers < 1 {
		workers = 1
	}
	est := math.Ceil(float64(backlog) * p50 / float64(workers))
	if !(est >= 1) { // catches 0, negatives, and NaN in one comparison
		return 1
	}
	if est > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(est)
}

// ---- run execution ----

// prepare applies the service's resource bounds to a validated config:
// duration capped up front, horizon clamped to MaxHorizon so every run
// terminates in bounded virtual time.
func (s *Server) prepare(cfg *experiments.RunConfig) error {
	if cfg.Duration > s.cfg.MaxDuration {
		return fmt.Errorf("server: %w: duration %v exceeds the service cap %v",
			experiments.ErrInvalidConfig, cfg.Duration, s.cfg.MaxDuration)
	}
	h := cfg.Horizon
	if h <= 0 {
		h = cfg.Duration*6 + 60*sim.Second // Run's own default
	}
	if h > s.cfg.MaxHorizon {
		h = s.cfg.MaxHorizon
	}
	cfg.Horizon = h
	return nil
}

// execute runs one simulation through the admission-controlled pool and
// blocks for its result. A full queue fails fast with ErrOverloaded; an
// accepted run always completes (results feed the cache even if the
// client has gone away).
func (s *Server) execute(cfg experiments.RunConfig) (experiments.RunResult, error) {
	return s.submit(cfg, func(task func()) error {
		if !s.pool.TrySubmit(task) {
			return ErrOverloaded
		}
		return nil
	})
}

// executeQueued is execute with blocking admission, for sweep items whose
// admission was decided once for the whole batch.
func (s *Server) executeQueued(ctx context.Context, cfg experiments.RunConfig) (experiments.RunResult, error) {
	return s.submit(cfg, func(task func()) error {
		return s.pool.SubmitCtx(ctx, task)
	})
}

func (s *Server) submit(cfg experiments.RunConfig, admit func(func()) error) (experiments.RunResult, error) {
	type outcome struct {
		res experiments.RunResult
		err error
	}
	ch := make(chan outcome, 1)
	seq := int(s.runSeq.Add(1))
	task := func() {
		t0 := time.Now()
		var res experiments.RunResult
		err := campaign.Protect(seq, func() error {
			var rerr error
			res, rerr = s.cfg.Runner(cfg)
			return rerr
		})
		s.met.observeRun(time.Since(t0), err)
		ch <- outcome{res, err}
	}
	if err := admit(task); err != nil {
		return experiments.RunResult{}, err
	}
	out := <-ch
	return out.res, out.err
}

// runBody is the cached response body of one run: the content-addressed
// key plus the full result. The bytes stored in the cache are exactly the
// bytes served, so hits are byte-identical to the miss that stored them.
type runBody struct {
	Key    string                `json:"key"`
	Result experiments.RunResult `json:"result"`
}

// runCached executes cfg through the cache (hit → stored bytes,
// miss → simulate + store, concurrent identical requests coalesce).
func (s *Server) runCached(cfg experiments.RunConfig) ([]byte, cacheOutcome, error) {
	key, cacheable := experiments.ConfigKey(cfg)
	compute := func() ([]byte, error) {
		res, err := s.execute(cfg)
		if err != nil {
			return nil, err
		}
		return json.Marshal(runBody{Key: key, Result: res})
	}
	if !cacheable {
		body, err := compute()
		return body, cacheBypass, err
	}
	return s.cache.Do(key, compute)
}

// ---- handlers ----

// strictParam parses the ?strict= query parameter shared by /run and
// /sweep. Absent or "0"/"false" means off; "1"/"true" arms the invariant
// checker; anything else is a client error.
func strictParam(r *http.Request) (bool, error) {
	switch v := r.URL.Query().Get("strict"); v {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	default:
		return false, fmt.Errorf("%w: unknown strict value %q (1)", ErrBadRequest, v)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.met.request("run")
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errBody(CodeDraining, "server draining, not admitting new work"))
		return
	}
	req, err := DecodeRunRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeDecodeError(w, err)
		return
	}
	cfg, err := req.Config()
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.prepare(&cfg); err != nil {
		s.writeError(w, err)
		return
	}
	strict, err := strictParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Strict configs are uncacheable by construction (ConfigKey returns
	// not-cacheable), so runCached re-executes with the checker armed and
	// answers with X-Dvfsd-Cache: bypass — a strict response always
	// reflects an audited run, never a pinned body.
	cfg.Strict = strict
	switch mode := r.URL.Query().Get("trace"); mode {
	case "":
	case "jsonl":
		s.handleRunTraced(w, r, cfg)
		return
	default:
		s.writeError(w, fmt.Errorf("%w: unknown trace mode %q (jsonl)", ErrBadRequest, mode))
		return
	}
	body, outcome, err := s.runCached(cfg)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.loadHeaders(w)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dvfsd-Cache", string(outcome))
	w.Write(body)
}

// flushWriter forwards writes and flushes after each one when the
// underlying ResponseWriter supports it. Streaming handlers must not
// assume the Flusher interface: a non-flushing middleware wrapper (or a
// buffering test recorder) yields fl == nil, and the stream degrades to
// buffered writes instead of panicking.
type flushWriter struct {
	w  io.Writer
	fl http.Flusher
}

// newFlushWriter wraps w, flushing per write when w is an http.Flusher.
func newFlushWriter(w http.ResponseWriter) flushWriter {
	fl, _ := w.(http.Flusher)
	return flushWriter{w: w, fl: fl}
}

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if f.fl != nil {
		f.fl.Flush()
	}
	return n, err
}

// handleRunTraced streams the run's structured event trace as JSONL,
// closing with one "result" line. Traced runs bypass the cache (the
// response is a stream, not a body worth pinning) but still pass
// admission control. The client's disconnect cancels the simulation: an
// abandoned stream frees its pool worker within one event batch instead
// of simulating on to the horizon.
func (s *Server) handleRunTraced(w http.ResponseWriter, r *http.Request, cfg experiments.RunConfig) {
	s.loadHeaders(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Dvfsd-Cache", string(cacheBypass))
	sink := trace.NewJSONL(newFlushWriter(w))
	cfg.Tracer = sink
	cfg.Cancel = r.Context().Done()
	res, err := s.execute(cfg)
	if errors.Is(err, experiments.ErrCanceled) {
		sink.Close()
		return // client went away; nobody is reading
	}
	if cerr := sink.Close(); cerr != nil && err == nil {
		return // client went away mid-stream; nothing left to say
	}
	if err != nil {
		// Headers are gone; surface the failure in-band as a final line.
		if body, merr := json.Marshal(errBody(CodeInternal, err.Error())); merr == nil {
			w.Write(append(body, '\n'))
		}
		return
	}
	final, err := json.Marshal(struct {
		T  float64               `json:"t"`
		Ev string                `json:"ev"`
		R  experiments.RunResult `json:"result"`
	}{res.SimEnd.Seconds(), "result", res})
	if err == nil {
		w.Write(append(final, '\n'))
	}
}

// sweepBody is the response of one sweep: per-point outcomes in
// expansion order, each either a run body (shared with the single-run
// cache) or an error string.
type sweepBody struct {
	Count    int            `json:"count"`
	Outcomes []sweepOutcome `json:"outcomes"`
}

type sweepOutcome struct {
	Index int             `json:"index"`
	Run   json.RawMessage `json:"run,omitempty"`
	Error string          `json:"error,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.met.request("sweep")
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errBody(CodeDraining, "server draining, not admitting new work"))
		return
	}
	req, err := DecodeSweepRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if size := req.Size(); size > int64(s.cfg.MaxSweepRuns) {
		s.writeError(w, fmt.Errorf("server: %w: sweep expands to %d runs, cap is %d",
			experiments.ErrInvalidConfig, size, s.cfg.MaxSweepRuns))
		return
	}
	cfgs, err := req.Configs()
	if err != nil {
		s.writeError(w, err)
		return
	}
	strict, err := strictParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	for i := range cfgs {
		if err := s.prepare(&cfgs[i]); err != nil {
			s.writeError(w, err)
			return
		}
		// Strict points are uncacheable (ConfigKey), so each one below
		// takes the compute path — audited runs never come from the cache.
		cfgs[i].Strict = strict
	}
	// Admission is decided once for the whole sweep: if the queue is
	// already full, bounce now rather than half-queueing a batch.
	if s.pool.QueueDepth() >= s.pool.Capacity() {
		s.writeError(w, ErrOverloaded)
		return
	}
	outcomes := make([]sweepOutcome, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key, cacheable := experiments.ConfigKey(cfg)
			compute := func() ([]byte, error) {
				res, err := s.executeQueued(r.Context(), cfg)
				if err != nil {
					return nil, err
				}
				return json.Marshal(runBody{Key: key, Result: res})
			}
			var body []byte
			var err error
			if cacheable {
				body, _, err = s.cache.Do(key, compute)
			} else {
				body, err = compute()
			}
			if err != nil {
				outcomes[i] = sweepOutcome{Index: i, Error: err.Error()}
				return
			}
			outcomes[i] = sweepOutcome{Index: i, Run: body}
		}()
	}
	wg.Wait()
	s.loadHeaders(w)
	writeJSON(w, http.StatusOK, sweepBody{Count: len(outcomes), Outcomes: outcomes})
}

// ---- cohort endpoint ----

// cohortRollupFrame and cohortSummaryFrame are the NDJSON lines of a
// /v1/cohort response: periodic rollup frames followed by one summary.
type cohortRollupFrame struct {
	Ev     string        `json:"ev"`
	Rollup cohort.Rollup `json:"rollup"`
}

type cohortSummaryFrame struct {
	Ev     string        `json:"ev"`
	Key    string        `json:"key,omitempty"`
	Result cohort.Result `json:"result"`
}

// executeCohort runs one cohort through the admission-controlled pool as
// a single task (the cohort fans its shards over its own workers) and
// blocks for its result.
func (s *Server) executeCohort(cfg cohort.Config) (cohort.Result, error) {
	type outcome struct {
		res cohort.Result
		err error
	}
	ch := make(chan outcome, 1)
	seq := int(s.runSeq.Add(1))
	task := func() {
		t0 := time.Now()
		var res cohort.Result
		err := campaign.Protect(seq, func() error {
			var rerr error
			res, rerr = cohort.Run(cfg)
			return rerr
		})
		s.met.observeRun(time.Since(t0), err)
		ch <- outcome{res, err}
	}
	if !s.pool.TrySubmit(task) {
		return cohort.Result{}, ErrOverloaded
	}
	out := <-ch
	return out.res, out.err
}

// handleCohort runs a whole viewer population in cohort mode and answers
// with an NDJSON stream: {"ev":"rollup",...} frames at every virtual-time
// rollup barrier, closing with one {"ev":"summary","result":...} line.
//
// By default the full stream is buffered and served through the result
// cache (the rollup stream is deterministic, so a hit is byte-identical
// to the run that populated it); ?stream=1 bypasses the cache and
// flushes each frame as its barrier completes. Strict cohorts
// (?strict=1) are uncacheable by construction, exactly like strict runs.
func (s *Server) handleCohort(w http.ResponseWriter, r *http.Request) {
	s.met.request("cohort")
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errBody(CodeDraining, "server draining, not admitting new work"))
		return
	}
	req, err := DecodeCohortRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeDecodeError(w, err)
		return
	}
	cfg, err := req.Config()
	if err != nil {
		s.writeError(w, err)
		return
	}
	if cfg.Viewers > s.cfg.MaxCohortViewers {
		s.writeError(w, fmt.Errorf("server: %w: cohort of %d viewers exceeds the service cap %d",
			experiments.ErrInvalidConfig, cfg.Viewers, s.cfg.MaxCohortViewers))
		return
	}
	if err := s.prepare(&cfg.Base); err != nil {
		s.writeError(w, err)
		return
	}
	strict, err := strictParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	cfg.Base.Strict = strict
	stream := false
	switch v := r.URL.Query().Get("stream"); v {
	case "", "0", "false":
	case "1", "true":
		stream = true
	default:
		s.writeError(w, fmt.Errorf("%w: unknown stream value %q (1)", ErrBadRequest, v))
		return
	}
	key, cacheable := cohort.Key(cfg)
	if stream {
		s.handleCohortStream(w, r, key, cfg)
		return
	}
	compute := func() ([]byte, error) {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		runCfg := cfg
		runCfg.OnRollup = func(ru cohort.Rollup) {
			enc.Encode(cohortRollupFrame{Ev: "rollup", Rollup: ru})
		}
		res, err := s.executeCohort(runCfg)
		if err != nil {
			return nil, err
		}
		if err := enc.Encode(cohortSummaryFrame{Ev: "summary", Key: key, Result: res}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var body []byte
	outcome := cacheBypass
	if cacheable {
		body, outcome, err = s.cache.Do("cohort/"+key, compute)
	} else {
		body, err = compute()
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.loadHeaders(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Dvfsd-Cache", string(outcome))
	w.Write(body)
}

// handleCohortStream is the live-streaming variant: frames go out as
// their barriers complete, through a guarded flusher (a non-flushing
// middleware wrapper degrades to buffered writes rather than panicking).
// Failures after the first frame surface in-band as a final envelope
// line, like traced runs. The client's disconnect cancels the cohort at
// its next rollup barrier, so an abandoned stream stops burning the pool.
func (s *Server) handleCohortStream(w http.ResponseWriter, r *http.Request, key string, cfg cohort.Config) {
	fw := newFlushWriter(w)
	enc := json.NewEncoder(fw)
	wrote := false
	cfg.OnRollup = func(ru cohort.Rollup) {
		if !wrote {
			s.loadHeaders(w)
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Dvfsd-Cache", string(cacheBypass))
			wrote = true
		}
		enc.Encode(cohortRollupFrame{Ev: "rollup", Rollup: ru})
	}
	cfg.Cancel = r.Context().Done()
	res, err := s.executeCohort(cfg)
	if errors.Is(err, experiments.ErrCanceled) {
		return // client went away; nobody is reading
	}
	if err != nil {
		if !wrote {
			s.writeError(w, err) // nothing sent yet: a proper status is still possible
			return
		}
		code, _ := codeStatus(err)
		if body, merr := json.Marshal(errBody(code, err.Error())); merr == nil {
			w.Write(append(body, '\n'))
		}
		return
	}
	if !wrote {
		s.loadHeaders(w)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Dvfsd-Cache", string(cacheBypass))
	}
	enc.Encode(cohortSummaryFrame{Ev: "summary", Key: key, Result: res})
}

// ---- cohort part endpoint (the fleet's worker-side seam) ----

// cohortPartBody is the response of one partial cohort run: the cohort's
// content-addressed key (empty when uncacheable) plus the executed
// shards' serialized aggregation states.
type cohortPartBody struct {
	Key     string         `json:"key,omitempty"`
	Partial cohort.Partial `json:"partial"`
}

// executeCohortPart runs a shard subset through the admission-controlled
// pool as one task, exactly like executeCohort.
func (s *Server) executeCohortPart(cfg cohort.Config, shards []int) (cohort.Partial, error) {
	type outcome struct {
		res cohort.Partial
		err error
	}
	ch := make(chan outcome, 1)
	seq := int(s.runSeq.Add(1))
	task := func() {
		t0 := time.Now()
		var res cohort.Partial
		err := campaign.Protect(seq, func() error {
			var rerr error
			res, rerr = cohort.RunPart(cfg, shards)
			return rerr
		})
		s.met.observeRun(time.Since(t0), err)
		ch <- outcome{res, err}
	}
	if !s.pool.TrySubmit(task) {
		return cohort.Partial{}, ErrOverloaded
	}
	out := <-ch
	return out.res, out.err
}

// handleCohortPart executes only the named shards of a cohort and
// answers with their serialized aggregation states — the worker side of
// a fleet-sharded cohort (DESIGN.md §13). The shard layout is a pure
// function of the cohort config, so a controller can fan disjoint shard
// sets across workers and MergeParts the responses into a Result
// bit-identical to a single-node run. Parts are cached per (cohort key,
// shard set): re-dispatch after a controller retry or worker restart is
// a cache hit.
func (s *Server) handleCohortPart(w http.ResponseWriter, r *http.Request) {
	s.met.request("cohort-part")
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errBody(CodeDraining, "server draining, not admitting new work"))
		return
	}
	req, err := DecodeCohortPartRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeDecodeError(w, err)
		return
	}
	cfg, err := req.Config()
	if err != nil {
		s.writeError(w, err)
		return
	}
	if cfg.Viewers > s.cfg.MaxCohortViewers {
		s.writeError(w, fmt.Errorf("server: %w: cohort of %d viewers exceeds the service cap %d",
			experiments.ErrInvalidConfig, cfg.Viewers, s.cfg.MaxCohortViewers))
		return
	}
	if err := s.prepare(&cfg.Base); err != nil {
		s.writeError(w, err)
		return
	}
	key, cacheable := cohort.Key(cfg)
	compute := func() ([]byte, error) {
		res, err := s.executeCohortPart(cfg, req.Shards)
		if err != nil {
			return nil, err
		}
		return json.Marshal(cohortPartBody{Key: key, Partial: res})
	}
	var body []byte
	outcome := cacheBypass
	if cacheable {
		body, outcome, err = s.cache.Do("cohortpart/"+key+"/"+shardSetKey(req.Shards), compute)
	} else {
		body, err = compute()
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.loadHeaders(w)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dvfsd-Cache", string(outcome))
	w.Write(body)
}

// shardSetKey renders a shard set as a canonical cache-key suffix
// (sorted, deduplicated, comma-joined) so two spellings of the same set
// share one cached part.
func shardSetKey(shards []int) string {
	set := append([]int(nil), shards...)
	sort.Ints(set)
	var b strings.Builder
	for i, idx := range set {
		if i > 0 && set[i-1] == idx {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
	}
	return b.String()
}

// experimentBody is the cached response of one named experiment.
type experimentBody struct {
	ID    string            `json:"id"`
	Table experiments.Table `json:"table"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	s.met.request("experiment")
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errBody(CodeDraining, "server draining, not admitting new work"))
		return
	}
	id := r.PathValue("id")
	builder, err := experiments.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errBody(CodeNotFound, err.Error()))
		return
	}
	// Experiments are identified by ID, not content: the table is a pure
	// function of the ID for the lifetime of the process.
	body, outcome, err := s.cache.Do("experiment/"+id, func() ([]byte, error) {
		type out struct {
			tab experiments.Table
			err error
		}
		ch := make(chan out, 1)
		task := func() {
			t0 := time.Now()
			var o out
			o.err = campaign.Protect(int(s.runSeq.Add(1)), func() error {
				var err error
				o.tab, err = builder()
				return err
			})
			s.met.observeRun(time.Since(t0), o.err)
			ch <- o
		}
		if !s.pool.TrySubmit(task) {
			return nil, ErrOverloaded
		}
		o := <-ch
		if o.err != nil {
			return nil, o.err
		}
		return json.Marshal(experimentBody{ID: id, Table: o.tab})
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dvfsd-Cache", string(outcome))
	w.Write(body)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	s.met.request("experiment-list")
	writeJSON(w, http.StatusOK, struct {
		IDs []string `json:"ids"`
	}{experiments.IDs()})
}

// handleCatalog serves the built-in catalogs so clients can discover the
// names RunRequest accepts.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	s.met.request("catalog")
	type catalog struct {
		Devices   []string `json:"devices"`
		Governors []string `json:"governors"`
		Titles    []string `json:"titles"`
		Rungs     []string `json:"rungs"`
		ABRs      []string `json:"abrs"`
		Nets      []string `json:"nets"`
	}
	var c catalog
	for _, d := range cpu.Devices() {
		c.Devices = append(c.Devices, d.Name)
	}
	for _, g := range experiments.GovernorIDs() {
		c.Governors = append(c.Governors, string(g))
	}
	for _, t := range video.Titles() {
		c.Titles = append(c.Titles, t.Name)
	}
	for _, res := range video.Resolutions() {
		c.Rungs = append(c.Rungs, res.Name)
	}
	for _, a := range experiments.ABRIDs() {
		c.ABRs = append(c.ABRs, string(a))
	}
	for _, n := range experiments.NetKinds() {
		c.Nets = append(c.Nets, string(n))
	}
	writeJSON(w, http.StatusOK, c)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{"draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.met.render(&b, s.pool.QueueDepth(), s.pool.Capacity(), s.pool.Active(), s.pool.Workers(), s.cache.Stats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write([]byte(b.String()))
}

// writeDecodeError distinguishes an oversized body (413) from a
// malformed one (400).
func (s *Server) writeDecodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeJSON(w, http.StatusRequestEntityTooLarge, errBody(CodeTooLarge, err.Error()))
		return
	}
	s.writeError(w, err)
}
