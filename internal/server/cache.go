package server

import (
	"container/list"
	"sync"
)

// cacheStats is a point-in-time snapshot of the result cache's counters.
type cacheStats struct {
	// Hits counts lookups served from memory.
	Hits int64
	// Misses counts lookups that had to compute (singleflight leaders).
	Misses int64
	// Coalesced counts lookups that joined another request's in-flight
	// computation instead of starting their own.
	Coalesced int64
	// Evictions counts entries dropped to stay under the byte bound.
	Evictions int64
	// Entries and Bytes describe the current residency.
	Entries int
	Bytes   int64
}

// HitRatio returns hits / (hits + misses + coalesced). Coalesced lookups
// count toward the denominator but not as hits: they did wait on a
// simulation, just not their own.
func (s cacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// flight is one in-progress computation that identical concurrent
// requests coalesce onto.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// resultCache is a content-addressed response cache: canonical-config
// SHA-256 → marshalled response body, bounded by total body bytes with
// LRU eviction, with singleflight coalescing so N concurrent identical
// requests cost one simulation.
//
// Determinism makes this sound: a RunConfig's result never changes, so
// entries have no TTL and invalidation does not exist — the only reason
// to drop an entry is the byte bound.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	ll       *list.List // MRU at front; values are *cacheEntry
	items    map[string]*list.Element
	flights  map[string]*flight
	stats    cacheStats
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache bounded to maxBytes of body bytes.
// maxBytes ≤ 0 disables storage entirely (every lookup computes), which
// keeps the singleflight behavior but no residency.
func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// cacheOutcome tags how a Do call was satisfied, surfaced to clients in
// the X-Dvfsd-Cache header.
type cacheOutcome string

const (
	cacheHit       cacheOutcome = "hit"
	cacheMiss      cacheOutcome = "miss"
	cacheCoalesced cacheOutcome = "coalesced"
	cacheBypass    cacheOutcome = "bypass"
)

// Do returns the body cached under key, computing it with compute on a
// miss. Concurrent calls with the same key coalesce: one runs compute,
// the rest wait and share its result. Failed computations are not
// cached — the next request retries.
func (c *resultCache) Do(key string, compute func() ([]byte, error)) ([]byte, cacheOutcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		body := el.Value.(*cacheEntry).body
		c.mu.Unlock()
		return body, cacheHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-f.done
		return f.body, cacheCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	f.body, f.err = compute()
	close(f.done)

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insert(key, f.body)
	}
	c.mu.Unlock()
	return f.body, cacheMiss, f.err
}

// Get returns the body cached under key without computing on a miss.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*cacheEntry).body, true
}

// insert stores body under key and evicts from the LRU tail until the
// byte bound holds. Bodies larger than the whole bound are not stored.
// Callers hold c.mu.
func (c *resultCache) insert(key string, body []byte) {
	if int64(len(body)) > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok { // lost a benign race: already stored
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.size += int64(len(body))
	for c.size > c.maxBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.body))
		c.stats.Evictions++
	}
}

// Stats snapshots the counters.
func (c *resultCache) Stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.size
	return s
}
