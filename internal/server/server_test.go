package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"videodvfs/internal/cohort"
	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
)

// newTestServer starts a service over httptest. Tests that need scripted
// runs pass a Runner; nil uses the real simulator.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func decodeRunBody(t *testing.T, b []byte) (string, experiments.RunResult) {
	t.Helper()
	var body struct {
		Key    string                `json:"key"`
		Result experiments.RunResult `json:"result"`
	}
	if err := json.Unmarshal(b, &body); err != nil {
		t.Fatalf("decoding run body: %v\n%s", err, b)
	}
	return body.Key, body.Result
}

// The service must serve exactly what the library computes: a run round-
// tripped through HTTP/JSON is DeepEqual to the direct Run result.
func TestRunRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/run", `{"duration_s": 10, "seed": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if got := resp.Header.Get("X-Dvfsd-Cache"); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	key, served := decodeRunBody(t, readAll(t, resp))

	cfg := experiments.DefaultRunConfig()
	cfg.Duration = 10 * sim.Second
	cfg.Seed = 3
	direct, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(served, direct) {
		t.Fatalf("served result drifted from direct Run:\nserved: %+v\ndirect: %+v", served, direct)
	}
	cfg.Horizon = cfg.Duration*6 + 60*sim.Second // the horizon the server pins
	wantKey, _ := experiments.ConfigKey(cfg)
	if key != wantKey {
		t.Fatalf("served key %s, want canonical %s", key, wantKey)
	}
}

// A cache hit must be byte-identical to the miss that populated it.
func TestCacheHitByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const body = `{"duration_s": 8, "seed": 11}`
	first := postJSON(t, ts.URL+"/v1/run", body)
	firstBytes := readAll(t, first)
	second := postJSON(t, ts.URL+"/v1/run", body)
	secondBytes := readAll(t, second)
	if got := second.Header.Get("X-Dvfsd-Cache"); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatalf("cache hit body differs from the miss:\nmiss: %s\nhit:  %s", firstBytes, secondBytes)
	}
	if hits, _, _ := s.CacheStats(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	// The same config phrased differently (explicit defaults) must hit
	// the same content-addressed entry.
	third := postJSON(t, ts.URL+"/v1/run", `{"duration_s": 8, "seed": 11, "governor": "energyaware", "rung": "720p"}`)
	thirdBytes := readAll(t, third)
	if got := third.Header.Get("X-Dvfsd-Cache"); got != "hit" {
		t.Fatalf("equivalent request cache header = %q, want hit", got)
	}
	if !bytes.Equal(firstBytes, thirdBytes) {
		t.Fatal("equivalent config served different bytes")
	}
}

// N identical concurrent requests must coalesce into one simulation.
func TestSingleflightCoalesces(t *testing.T) {
	var ran atomic.Int64
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 4,
		Runner: func(cfg experiments.RunConfig) (experiments.RunResult, error) {
			ran.Add(1)
			<-gate
			return experiments.RunResult{Governor: string(cfg.Governor), SimEnd: cfg.Duration}, nil
		},
	})
	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"duration_s": 5}`))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}()
	}
	// Release only once every client is accounted for at the cache — one
	// leader (miss) plus seven coalesced followers — so no follower can
	// arrive late and be served as a plain hit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, misses, coalesced := s.CacheStats()
		if misses+coalesced == clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clients never converged on one flight: misses=%d coalesced=%d", misses, coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if got := ran.Load(); got != 1 {
		t.Fatalf("runner executed %d times for %d identical requests, want 1", got, clients)
	}
	_, misses, coalesced := s.CacheStats()
	if misses != 1 || coalesced != int64(clients-1) {
		t.Fatalf("cache stats: misses=%d coalesced=%d, want 1 and %d", misses, coalesced, clients-1)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d got different bytes than client 0", i)
		}
	}
	// The coalescing must be observable on /metrics too.
	metrics := readAll(t, mustGet(t, ts.URL+"/metrics"))
	if !strings.Contains(string(metrics), "dvfsd_cache_coalesced_total 7") {
		t.Fatalf("metrics missing coalesced counter:\n%s", metrics)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// A full queue must bounce with 429 + Retry-After, not block or drop.
func TestQueueFull429(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Queue:   1,
		Runner: func(cfg experiments.RunConfig) (experiments.RunResult, error) {
			started <- struct{}{}
			<-gate
			return experiments.RunResult{SimEnd: cfg.Duration}, nil
		},
	})
	defer close(gate)

	// Occupy the worker, then the single queue slot. Distinct seeds keep
	// the requests from coalescing in the cache instead of queueing.
	respc := make(chan *http.Response, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json",
				strings.NewReader(fmt.Sprintf(`{"duration_s": 5, "seed": %d}`, i+1)))
			if err == nil {
				respc <- resp
			}
		}()
	}
	<-started // worker busy
	// Wait (via /metrics, like an operator would) for the second request
	// to be parked in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := string(readAll(t, mustGet(t, ts.URL+"/metrics"))); strings.Contains(m, "dvfsd_queue_depth 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp := postJSON(t, ts.URL+"/v1/run", `{"duration_s": 5, "seed": 99}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue request got %d, want 429: %s", resp.StatusCode, readAll(t, resp))
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(readAll(t, resp), &eb); err != nil || eb.Error.Code != CodeOverloaded {
		t.Fatalf("429 body is not an %q envelope: %v %+v", CodeOverloaded, err, eb)
	}
	if eb.Error.Message == "" {
		t.Fatal("429 envelope has no message")
	}
}

// Shutdown must drain: an accepted run completes and its client gets a
// 200 even though the server started draining mid-run.
func TestShutdownDrains(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s := New(Config{
		Workers: 1,
		Runner: func(cfg experiments.RunConfig) (experiments.RunResult, error) {
			once.Do(func() { close(started) })
			<-gate
			return experiments.RunResult{Governor: "drained", SimEnd: cfg.Duration}, nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"duration_s": 5}`))
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// While draining, new work must be refused…
	time.Sleep(20 * time.Millisecond)
	if resp := postJSON(t, ts.URL+"/v1/run", `{"duration_s": 5, "seed": 2}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain got %d, want 503", resp.StatusCode)
	} else {
		var eb errorBody
		if err := json.Unmarshal(readAll(t, resp), &eb); err != nil || eb.Error.Code != CodeDraining {
			t.Fatalf("503 body is not a %q envelope: %+v", CodeDraining, eb)
		}
	}
	if resp := mustGet(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain got %d, want 503", resp.StatusCode)
	} else {
		readAll(t, resp)
	}

	// …and the accepted run must still finish.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a run was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-errc:
		t.Fatalf("drained client failed: %v", err)
	case resp := <-respc:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("drained run got status %d", resp.StatusCode)
		}
		_, res := decodeRunBody(t, readAll(t, resp))
		if res.Governor != "drained" {
			t.Fatalf("drained run result corrupted: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accepted run's response never arrived")
	}
}

// Concurrent mixed clients under -race: identical configs must produce
// identical bytes, every request must succeed, and the hit ratio must be
// visible on /metrics.
func TestConcurrentClientsHammer(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, Queue: 64})
	const clients = 24
	type got struct {
		seed int
		body []byte
	}
	results := make([]got, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seed := i%3 + 1 // three distinct configs, heavily repeated
			resp, err := http.Post(ts.URL+"/v1/run", "application/json",
				strings.NewReader(fmt.Sprintf(`{"duration_s": 6, "seed": %d}`, seed)))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			results[i] = got{seed, body}
		}()
	}
	wg.Wait()
	bySeed := map[int][]byte{}
	for i, r := range results {
		if r.body == nil {
			t.Fatalf("client %d got no body", i)
		}
		if prev, ok := bySeed[r.seed]; ok {
			if !bytes.Equal(prev, r.body) {
				t.Fatalf("seed %d served two different bodies", r.seed)
			}
		} else {
			bySeed[r.seed] = r.body
		}
	}
	// Every duplicate was served without a fresh simulation: either as a
	// plain hit or by coalescing onto the in-flight leader. (Under full
	// concurrency all duplicates may coalesce, so hits alone can be 0
	// here.)
	if hits, misses, coalesced := s.CacheStats(); misses != 3 || hits+coalesced != clients-3 {
		t.Fatalf("hammer stats hits=%d misses=%d coalesced=%d, want 3 misses and %d hits+coalesced",
			hits, misses, coalesced, clients-3)
	}

	// Now that the flights have landed, a repeat of each config must be a
	// plain memory hit, and /metrics must report a positive hit ratio.
	for seed := 1; seed <= 3; seed++ {
		resp := postJSON(t, ts.URL+"/v1/run", fmt.Sprintf(`{"duration_s": 6, "seed": %d}`, seed))
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-hammer seed %d: status %d: %s", seed, resp.StatusCode, body)
		}
		if c := resp.Header.Get("X-Dvfsd-Cache"); c != "hit" {
			t.Fatalf("post-hammer seed %d: cache status %q, want hit", seed, c)
		}
		if !bytes.Equal(body, bySeed[seed]) {
			t.Fatalf("post-hammer seed %d served a different body than the hammer", seed)
		}
	}
	metrics := string(readAll(t, mustGet(t, ts.URL+"/metrics")))
	var ratio float64
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "dvfsd_cache_hit_ratio ") {
			fmt.Sscanf(line, "dvfsd_cache_hit_ratio %g", &ratio)
		}
	}
	if ratio <= 0 {
		t.Fatalf("hammer of repeated configs reported hit ratio %v, want > 0:\n%s", ratio, metrics)
	}
}

// The sweep endpoint must serve the same results as the direct batch
// path, in expansion order, sharing cache entries with /v1/run.
func TestSweepRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweep",
		`{"base": {"duration_s": 6}, "governors": ["performance", "energyaware"], "seed_range": [1, 2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var body struct {
		Count    int `json:"count"`
		Outcomes []struct {
			Index int             `json:"index"`
			Run   json.RawMessage `json:"run"`
			Error string          `json:"error"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal(readAll(t, resp), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 4 || len(body.Outcomes) != 4 {
		t.Fatalf("sweep returned %d outcomes, want 4", body.Count)
	}

	base := experiments.DefaultRunConfig()
	base.Duration = 6 * sim.Second
	sw := experiments.Sweep{
		Base:      base,
		Governors: []experiments.GovernorID{experiments.GovPerformance, experiments.GovEnergyAware},
		Seeds:     []int64{1, 2},
	}
	direct := experiments.RunAll(sw.Expand(), 2)
	for i, o := range body.Outcomes {
		if o.Error != "" {
			t.Fatalf("outcome %d failed: %s", i, o.Error)
		}
		if o.Index != i {
			t.Fatalf("outcome %d carries index %d — order lost", i, o.Index)
		}
		var rb struct {
			Result experiments.RunResult `json:"result"`
		}
		if err := json.Unmarshal(o.Run, &rb); err != nil {
			t.Fatal(err)
		}
		if direct[i].Err != nil {
			t.Fatalf("direct run %d: %v", i, direct[i].Err)
		}
		if !reflect.DeepEqual(rb.Result, direct[i].Result) {
			t.Fatalf("sweep point %d drifted from the direct campaign path:\nserved: %+v\ndirect: %+v",
				i, rb.Result, direct[i].Result)
		}
	}
	// A single run of one sweep point must now be a cache hit — the two
	// endpoints share the content-addressed store.
	single := postJSON(t, ts.URL+"/v1/run", `{"duration_s": 6, "governor": "performance", "seed": 2}`)
	if got := single.Header.Get("X-Dvfsd-Cache"); got != "hit" {
		t.Fatalf("run after sweep cache header = %q, want hit", got)
	}
	readAll(t, single)
}

// runSweepOutcomes posts one sweep and returns the raw per-point run
// bodies — the exact bytes the content-addressed cache stores.
func runSweepOutcomes(t *testing.T, url, req string) []json.RawMessage {
	t.Helper()
	resp := postJSON(t, url+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var body struct {
		Outcomes []struct {
			Run   json.RawMessage `json:"run"`
			Error string          `json:"error"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal(readAll(t, resp), &body); err != nil {
		t.Fatal(err)
	}
	out := make([]json.RawMessage, len(body.Outcomes))
	for i, o := range body.Outcomes {
		if o.Error != "" {
			t.Fatalf("sweep point %d failed: %s", i, o.Error)
		}
		out[i] = o.Run
	}
	return out
}

// TestSweepRecycledSessionCacheBytes pins the daemon's arena-reuse
// contract: cache-miss sweep points computed on RECYCLED sessions (the
// production default — workers draw battered arenas from the pool) must
// write byte-identical ConfigKey cache entries to the same sweep computed
// on fresh-per-run sessions. The pool is deliberately dirtied first with
// dissimilar configs so the sweep's misses land on recycled arenas, not
// pristine ones.
func TestSweepRecycledSessionCacheBytes(t *testing.T) {
	const sweepReq = `{"base": {"duration_s": 6, "seed": 9},
		"governors": ["performance", "ondemand", "energyaware"], "seed_range": [9, 10]}`

	defer experiments.SetSessionReuse(experiments.SetSessionReuse(false))
	_, freshTS := newTestServer(t, Config{Workers: 2})
	freshRuns := runSweepOutcomes(t, freshTS.URL, sweepReq)

	experiments.SetSessionReuse(true)
	_, recycledTS := newTestServer(t, Config{Workers: 2})
	// Dirty the arena pool: runs whose device, network, idle model, and
	// ABR all differ from the sweep's points.
	for _, warm := range []string{
		`{"duration_s": 4, "device": "midrange", "net": "lte", "abr": "bba", "seed": 77}`,
		`{"duration_s": 5, "device": "efficient", "net": "umts", "cstates": true, "seed": 78}`,
	} {
		resp := postJSON(t, recycledTS.URL+"/v1/run", warm)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm run status %d: %s", resp.StatusCode, readAll(t, resp))
		}
		readAll(t, resp)
	}
	recycledRuns := runSweepOutcomes(t, recycledTS.URL, sweepReq)

	if len(freshRuns) != len(recycledRuns) {
		t.Fatalf("outcome counts differ: fresh %d, recycled %d", len(freshRuns), len(recycledRuns))
	}
	for i := range freshRuns {
		if !bytes.Equal(freshRuns[i], recycledRuns[i]) {
			t.Errorf("sweep point %d: recycled-session cache entry differs from fresh-session entry\nfresh:    %s\nrecycled: %s",
				i, freshRuns[i], recycledRuns[i])
		}
	}
	// Re-sweeping on the recycled server must now serve every point from
	// the cache, bytes unchanged — recycled compute populated real entries.
	again := runSweepOutcomes(t, recycledTS.URL, sweepReq)
	for i := range again {
		if !bytes.Equal(recycledRuns[i], again[i]) {
			t.Errorf("sweep point %d: cache hit differs from the recycled miss that stored it", i)
		}
	}
}

// For a sample of experiment IDs, the table served by the daemon must be
// DeepEqual to the one the direct campaign.RunAll-backed builder
// produces — no drift between service and CLI.
func TestExperimentCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five full experiment builders")
	}
	_, ts := newTestServer(t, Config{})
	for _, id := range []string{"t1", "f1", "f3", "f7", "t4"} {
		resp := postJSON(t, ts.URL+"/v1/experiments/"+id, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", id, resp.StatusCode, readAll(t, resp))
		}
		var body struct {
			ID    string            `json:"id"`
			Table experiments.Table `json:"table"`
		}
		if err := json.Unmarshal(readAll(t, resp), &body); err != nil {
			t.Fatal(err)
		}
		builder, err := experiments.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := builder()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(body.Table, direct) {
			t.Fatalf("experiment %s drifted between service and direct path:\nserved: %+v\ndirect: %+v",
				id, body.Table, direct)
		}
	}
}

// The trace mode must stream the run's JSONL events and close with a
// result line carrying the same outcome as an untraced run.
func TestRunTraceStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/run?trace=jsonl", `{"duration_s": 5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := bytes.Split(bytes.TrimSpace(readAll(t, resp)), []byte("\n"))
	if len(lines) < 100 {
		t.Fatalf("trace stream has only %d lines", len(lines))
	}
	for i, ln := range lines {
		if !json.Valid(ln) {
			t.Fatalf("line %d is not valid JSON: %s", i, ln)
		}
	}
	var final struct {
		Ev     string                `json:"ev"`
		Result experiments.RunResult `json:"result"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil {
		t.Fatal(err)
	}
	if final.Ev != "result" || !final.Result.QoE.Completed {
		t.Fatalf("final trace line is not a completed result: %s", lines[len(lines)-1])
	}
}

// Every failure path of every endpoint must answer with the one
// documented envelope {"error":{"code","message"}} and the right
// status/code pair. (429 is exercised with scripted load in
// TestQueueFull429, 422 in TestHorizonExceeded422, and 503 in
// TestShutdownDrains, against the same envelope.)
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantCode         string
	}{
		{"malformed JSON", "/v1/run", `{"duration`, http.StatusBadRequest, CodeBadRequest},
		{"unknown field", "/v1/run", `{"durations": 5}`, http.StatusBadRequest, CodeBadRequest},
		{"trailing garbage", "/v1/run", `{} {}`, http.StatusBadRequest, CodeBadRequest},
		{"unknown governor", "/v1/run", `{"governor": "warpdrive"}`, http.StatusBadRequest, CodeInvalidConfig},
		{"unknown device", "/v1/run", `{"device": "mainframe"}`, http.StatusBadRequest, CodeInvalidConfig},
		{"unknown net", "/v1/run", `{"net": "5g"}`, http.StatusBadRequest, CodeInvalidConfig},
		{"negative duration", "/v1/run", `{"duration_s": -3}`, http.StatusBadRequest, CodeInvalidConfig},
		{"over duration cap", "/v1/run", `{"duration_s": 1e9}`, http.StatusBadRequest, CodeInvalidConfig},
		{"unknown trace mode", "/v1/run?trace=csv", `{}`, http.StatusBadRequest, CodeBadRequest},
		{"bad strict value", "/v1/run?strict=yes", `{}`, http.StatusBadRequest, CodeBadRequest},
		{"oversized body", "/v1/run", `{"codec": "` + strings.Repeat("x", 4096) + `"}`, http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"sweep seeds conflict", "/v1/sweep", `{"base": {}, "seeds": [1], "seed_range": [1, 2]}`, http.StatusBadRequest, CodeInvalidConfig},
		{"sweep too large", "/v1/sweep", `{"base": {}, "seed_range": [1, 100000]}`, http.StatusBadRequest, CodeInvalidConfig},
		{"sweep unknown net", "/v1/sweep", `{"base": {}, "nets": ["5g"]}`, http.StatusBadRequest, CodeInvalidConfig},
		{"unknown experiment", "/v1/experiments/zz", ``, http.StatusNotFound, CodeNotFound},
		{"cohort malformed", "/v1/cohort", `{"viewers`, http.StatusBadRequest, CodeBadRequest},
		{"cohort unknown field", "/v1/cohort", `{"spectators": 5}`, http.StatusBadRequest, CodeBadRequest},
		{"cohort bad arrival", "/v1/cohort", `{"arrival": "flashmob"}`, http.StatusBadRequest, CodeInvalidConfig},
		{"cohort bad base net", "/v1/cohort", `{"base": {"net": "5g"}}`, http.StatusBadRequest, CodeInvalidConfig},
		{"cohort bad cell", "/v1/cohort", `{"cell": {"capacity_mbps": -1}}`, http.StatusBadRequest, CodeInvalidConfig},
		{"cohort over viewer cap", "/v1/cohort", `{"viewers": 99000000}`, http.StatusBadRequest, CodeInvalidConfig},
		{"cohort bad stream value", "/v1/cohort?stream=maybe", `{}`, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+tc.path, tc.body)
		b := readAll(t, resp)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, b)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Code != tc.wantCode {
			t.Errorf("%s: body is not an %q envelope: %s", tc.name, tc.wantCode, b)
			continue
		}
		if eb.Error.Message == "" {
			t.Errorf("%s: envelope has no message", tc.name)
		}
	}
}

// A request whose scenario cannot complete within its horizon is a 422,
// not a 500 — the simulation worked, the scenario starved.
func TestHorizonExceeded422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/run", `{"duration_s": 30, "horizon_s": 5}`)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, b)
	}
	var eb errorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Code != CodeHorizonExceeded {
		t.Fatalf("422 body is not a %q envelope: %s", CodeHorizonExceeded, b)
	}
}

func TestHealthAndCatalog(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := mustGet(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	readAll(t, resp)

	resp = mustGet(t, ts.URL+"/v1/catalog")
	var cat struct {
		Devices   []string `json:"devices"`
		Governors []string `json:"governors"`
		Nets      []string `json:"nets"`
	}
	if err := json.Unmarshal(readAll(t, resp), &cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Devices) != 3 || len(cat.Governors) != 8 || len(cat.Nets) != 5 {
		t.Fatalf("catalog incomplete: %+v", cat)
	}

	resp = mustGet(t, ts.URL+"/v1/experiments")
	var ids struct {
		IDs []string `json:"ids"`
	}
	if err := json.Unmarshal(readAll(t, resp), &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids.IDs) != 30 {
		t.Fatalf("experiment list has %d IDs, want 30", len(ids.IDs))
	}
}

func TestMetricsShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	readAll(t, postJSON(t, ts.URL+"/v1/run", `{"duration_s": 5}`))
	body := string(readAll(t, mustGet(t, ts.URL+"/metrics")))
	for _, want := range []string{
		"dvfsd_uptime_seconds ",
		`dvfsd_requests_total{endpoint="run"} 1`,
		"dvfsd_queue_depth ",
		"dvfsd_runs_total 1",
		"dvfsd_runs_per_sec ",
		`dvfsd_run_latency_seconds{quantile="0.5"} `,
		`dvfsd_run_latency_seconds{quantile="0.99"} `,
		"dvfsd_cache_misses_total 1",
		"dvfsd_cache_hit_ratio ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// ?strict=1 arms the invariant checker and must never be served from the
// result cache: every strict response reflects a re-executed, audited run.
func TestStrictRunBypassesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"duration_s": 8, "seed": 11}`

	// Warm the cache with the plain config so a cache hit is available.
	readAll(t, postJSON(t, ts.URL+"/v1/run", body))

	var strictBytes []byte
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/run?strict=1", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("strict run %d: status %d: %s", i, resp.StatusCode, readAll(t, resp))
		}
		if got := resp.Header.Get("X-Dvfsd-Cache"); got != "bypass" {
			t.Fatalf("strict run %d cache header = %q, want bypass", i, got)
		}
		strictBytes = readAll(t, resp)
	}

	// The audited result must agree with the unaudited one: the checker
	// observes, it never perturbs.
	_, strictRes := decodeRunBody(t, strictBytes)
	plain := readAll(t, postJSON(t, ts.URL+"/v1/run", body))
	_, plainRes := decodeRunBody(t, plain)
	if !reflect.DeepEqual(strictRes, plainRes) {
		t.Fatalf("strict result drifted from plain run:\nstrict: %+v\nplain:  %+v", strictRes, plainRes)
	}

	// Garbage strict values are client errors, not silently-off runs.
	resp := postJSON(t, ts.URL+"/v1/run?strict=yes", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("strict=yes: status %d, want 400", resp.StatusCode)
	}
}

// The cohort endpoint must stream rollup frames and a summary whose
// result matches the direct library path, serve repeats byte-identically
// from the cache, and produce the same bytes when live-streaming.
func TestCohortEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"base": {"duration_s": 6}, "viewers": 8, "rollup_s": 5, "seed": 4}`

	resp := postJSON(t, ts.URL+"/v1/cohort", body)
	first := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, first)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if got := resp.Header.Get("X-Dvfsd-Cache"); got != "miss" {
		t.Fatalf("first cohort cache header = %q, want miss", got)
	}
	lines := bytes.Split(bytes.TrimSpace(first), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("cohort stream has only %d lines:\n%s", len(lines), first)
	}
	for i, ln := range lines[:len(lines)-1] {
		var frame struct {
			Ev     string        `json:"ev"`
			Rollup cohort.Rollup `json:"rollup"`
		}
		if err := json.Unmarshal(ln, &frame); err != nil || frame.Ev != "rollup" {
			t.Fatalf("line %d is not a rollup frame: %s", i, ln)
		}
	}
	var final struct {
		Ev     string        `json:"ev"`
		Key    string        `json:"key"`
		Result cohort.Result `json:"result"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil || final.Ev != "summary" {
		t.Fatalf("final line is not a summary: %s", lines[len(lines)-1])
	}
	if final.Result.Completed != 8 || final.Result.Errors != 0 {
		t.Fatalf("cohort did not complete: %+v", final.Result)
	}

	// The served summary must match the direct library path under the
	// same horizon the server pins.
	cfg := cohort.DefaultConfig()
	cfg.Base.Duration = 6 * sim.Second
	cfg.Base.Horizon = cfg.Base.Duration*6 + 60*sim.Second
	cfg.Viewers = 8
	cfg.Rollup = 5 * sim.Second
	cfg.Seed = 4
	direct, err := cohort.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.Result, direct) {
		t.Fatalf("served cohort drifted from direct run:\nserved: %+v\ndirect: %+v", final.Result, direct)
	}
	if wantKey, _ := cohort.Key(cfg); final.Key != wantKey {
		t.Fatalf("served key %s, want canonical %s", final.Key, wantKey)
	}

	// A repeat is a cache hit, byte-identical to the miss.
	resp = postJSON(t, ts.URL+"/v1/cohort", body)
	second := readAll(t, resp)
	if got := resp.Header.Get("X-Dvfsd-Cache"); got != "hit" {
		t.Fatalf("second cohort cache header = %q, want hit", got)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cohort cache hit differs from the miss that stored it")
	}

	// Live streaming bypasses the cache but produces the same bytes —
	// the rollup stream is deterministic either way.
	resp = postJSON(t, ts.URL+"/v1/cohort?stream=1", body)
	streamed := readAll(t, resp)
	if got := resp.Header.Get("X-Dvfsd-Cache"); got != "bypass" {
		t.Fatalf("streamed cohort cache header = %q, want bypass", got)
	}
	if !bytes.Equal(first, streamed) {
		t.Fatalf("streamed cohort differs from cached body:\ncached:\n%sstreamed:\n%s", first, streamed)
	}

	// Strict cohorts are uncacheable: audited, never pinned.
	resp = postJSON(t, ts.URL+"/v1/cohort?strict=1", body)
	readAll(t, resp)
	if got := resp.Header.Get("X-Dvfsd-Cache"); got != "bypass" {
		t.Fatalf("strict cohort cache header = %q, want bypass", got)
	}
}

// A strict sweep audits every expanded point; outcomes match the plain
// sweep and nothing lands in (or comes from) the cache.
func TestStrictSweep(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const body = `{"base": {"duration_s": 5}, "governors": ["ondemand", "energyaware"], "seeds": [1]}`
	resp := postJSON(t, ts.URL+"/v1/sweep?strict=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var sw sweepBody
	if err := json.Unmarshal(readAll(t, resp), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Count != 2 {
		t.Fatalf("sweep count = %d, want 2", sw.Count)
	}
	for _, o := range sw.Outcomes {
		if o.Error != "" {
			t.Fatalf("strict sweep point %d failed: %s", o.Index, o.Error)
		}
	}
	if _, misses, _ := s.CacheStats(); misses != 0 {
		t.Fatalf("strict sweep populated the cache: %d misses recorded", misses)
	}
}
