package experiments

import (
	"fmt"
	"sort"
)

// Builder produces one experiment's table.
type Builder func() (Table, error)

// registry maps experiment IDs to builders. IDs follow the reconstructed
// evaluation's numbering (see DESIGN.md §4).
var registry = map[string]Builder{
	"t1":  TableT1,
	"f1":  FigF1,
	"f2":  FigF2,
	"f3":  FigF3,
	"f4":  FigF4,
	"f5":  FigF5,
	"f6":  FigF6,
	"t2":  TableT2,
	"f7":  FigF7,
	"f8":  FigF8,
	"f9":  FigF9,
	"f10": FigF10,
	"f11": FigF11,
	"f12": FigF12,
	"t3":  TableT3,
	"f13": FigF13,
	"f14": FigF14,
	"f15": FigF15,
	"f16": FigF16,
	"f17": FigF17,
	"f18": FigF18,
	"f19": FigF19,
	"t4":  TableT4,
	"t5":  TableT5,
	"t6":  TableT6,
	"f20": FigF20,
	"f21": FigF21,
	"t7":  TableT7,
	"t8":  TableT8,
	"t9":  TableT9,
}

// IDs returns all experiment IDs in report order.
func IDs() []string {
	order := map[string]int{
		"t1": 0, "f1": 1, "f2": 2, "f3": 3, "f4": 4, "f5": 5, "f6": 6,
		"t2": 7, "f7": 8, "f8": 9, "f9": 10, "f10": 11, "f11": 12,
		"f12": 13, "t3": 14, "f13": 15, "f14": 16, "f15": 17, "f16": 18, "f17": 19, "f18": 20, "f19": 21, "t4": 22, "t5": 23, "t6": 24, "f20": 25, "f21": 26, "t7": 27, "t8": 28, "t9": 29,
	}
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return order[out[i]] < order[out[j]] })
	return out
}

// Get returns the builder for an experiment ID.
func Get(id string) (Builder, error) {
	b, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return b, nil
}
