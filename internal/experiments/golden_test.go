package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden files instead of diffing against them:
//
//	go test ./internal/experiments -run TestGoldenTables -update
var update = flag.Bool("update", false, "rewrite testdata/golden/*.txt from current output")

// goldenPath returns the pinned rendering of one experiment.
func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

// TestGoldenTables pins every registry experiment's exact rendered output.
// The whole evaluation is deterministic — every run derives its randomness
// from config seeds — so any diff here is a real behavior change: either
// an intended model change (rerun with -update and review the diff) or a
// regression (fix it). The builders execute through the campaign pool, so
// this suite also re-proves on every CI run that parallel execution
// leaves all 30 tables byte-identical.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite rebuilds the full evaluation")
	}
	// Run the whole evaluation with the invariant checker armed: beyond
	// byte-identical output, every run must also satisfy the simulator's
	// conservation laws (DESIGN.md §10). Strict mode only observes the
	// event stream, so it cannot change the tables.
	defer SetStrictDefault(SetStrictDefault(true))
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			b, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := b()
			if err != nil {
				t.Fatal(err)
			}
			got := tab.Format()
			path := goldenPath(id)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("table %s drifted from golden output:\n%s", id, diffLines(string(want), got))
			}
		})
	}
}

// diffLines renders a minimal line diff for a golden mismatch.
func diffLines(want, got string) string {
	wantLines := strings.Split(want, "\n")
	gotLines := strings.Split(got, "\n")
	var b strings.Builder
	n := len(wantLines)
	if len(gotLines) > n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  golden: %q\n  got:    %q\n", i+1, w, g)
	}
	return b.String()
}

// TestGoldenFilesCoverRegistry fails when a golden file is orphaned (its
// experiment left the registry) or an experiment has no pinned output,
// keeping testdata/golden and the registry in lockstep.
func TestGoldenFilesCoverRegistry(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden dir missing (run TestGoldenTables with -update): %v", err)
	}
	known := make(map[string]bool)
	for _, id := range IDs() {
		known[id] = true
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		id := strings.TrimSuffix(e.Name(), ".txt")
		if !known[id] {
			t.Errorf("orphaned golden file %s: no experiment %q in the registry", e.Name(), id)
		}
		seen[id] = true
	}
	for id := range known {
		if !seen[id] {
			t.Errorf("experiment %s has no golden file (run TestGoldenTables with -update)", id)
		}
	}
}
