package experiments

import (
	"bytes"
	"errors"
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/invariant"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// stressConfigs returns the energy-closure stress matrix: every device
// model × the highest-variability decode load (TitleSports, scene CV
// 0.22), across network/radio and governor variety. These configs double
// as the seed corpus of FuzzRunConfigInvariants.
func stressConfigs() []RunConfig {
	var out []RunConfig
	nets := []NetKind{NetConst8, NetLTE, NetUMTS}
	govs := []GovernorID{GovEnergyAware, GovOracle, "ondemand"}
	for i, dev := range cpu.Devices() {
		for j, net := range nets {
			cfg := DefaultRunConfig()
			cfg.Device = dev
			cfg.Title = video.TitleSports
			cfg.Net = net
			cfg.Governor = govs[(i+j)%len(govs)]
			cfg.CStates = (i+j)%2 == 0
			cfg.Seed = int64(1 + i*len(nets) + j)
			out = append(out, cfg)
		}
	}
	return out
}

// TestEnergyClosureStress cross-checks the collector's per-component
// energy integral against the meter at 1e-9 relative — three orders
// tighter than the PR 2 check — across the stress matrix, with the
// invariant checker armed on the same runs. Both sides integrate the
// identical piecewise-constant power signal with the same arithmetic, so
// any wider gap is a bookkeeping bug, not float noise.
func TestEnergyClosureStress(t *testing.T) {
	relClose := func(a, b float64) bool {
		if b == 0 {
			return a == 0
		}
		d := (a - b) / b
		return d > -1e-9 && d < 1e-9
	}
	for _, cfg := range stressConfigs() {
		cfg := cfg
		name := string(cfg.Governor) + "/" + cfg.Device.Name + "/" + string(cfg.Net)
		t.Run(name, func(t *testing.T) {
			col := trace.NewCollector()
			cfg.Tracer = col
			cfg.Strict = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m := col.Finalize(res.SimEnd)
			for _, c := range []struct {
				comp   string
				meterJ float64
			}{{"cpu", res.CPUJ}, {"radio", res.RadioJ}, {"display", res.DisplayJ}} {
				if !relClose(m.EnergyJ[c.comp], c.meterJ) {
					t.Errorf("%s: collector %.12f J, meter %.12f J (Δrel > 1e-9)",
						c.comp, m.EnergyJ[c.comp], c.meterJ)
				}
			}
		})
	}
}

// TestStrictViolationIsTyped pins the error contract: a strict run that
// trips the checker fails with a *invariant.Violation reachable through
// errors.As, naming rule, virtual time, and observed vs expected. The
// model itself is clean, so the test swaps the checker constructor for
// one grounded in a wrong OPP table — every real OPP event then breaks
// the opp-table rule against a genuine run's stream.
func TestStrictViolationIsTyped(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Strict = true

	if _, err := Run(cfg); err != nil {
		t.Fatalf("clean strict run failed: %v", err)
	}

	prev := newChecker
	newChecker = func(ic invariant.Config) *invariant.Checker {
		ic.OPPFreqsHz = ic.OPPFreqsHz[:1] // claim a one-OPP device
		return invariant.New(ic)
	}
	defer func() { newChecker = prev }()
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("mis-grounded strict run passed")
	}
	var v *invariant.Violation
	if !errors.As(err, &v) {
		t.Fatalf("strict failure %v is not a *invariant.Violation", err)
	}
	if v.Rule != "opp-table" || v.Detail == "" {
		t.Fatalf("violation = %+v, want populated opp-table rule", v)
	}
}

// runJSONL executes cfg capped at horizon with a JSONL sink attached and
// returns the raw trace bytes. An ErrHorizonExceeded result is expected
// for horizons that cut the session short.
func runJSONL(t *testing.T, cfg RunConfig, horizon sim.Time) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	cfg.Tracer = sink
	cfg.Horizon = horizon
	_, err := Run(cfg)
	if err != nil && !errors.Is(err, ErrHorizonExceeded) {
		t.Fatalf("run at horizon %v: %v", horizon, err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("sink close: %v", err)
	}
	return buf.Bytes()
}

// TestTraceHorizonPrefixMetamorphic pins the metamorphic property that
// makes horizons composable: the horizon only decides where the run
// stops, never what happens before the cut. For H1 < H2 on the same
// config, the H1 JSONL trace must therefore be a byte prefix of the H2
// trace — any divergence means some component's behavior leaks the
// horizon into pre-horizon events.
func TestTraceHorizonPrefixMetamorphic(t *testing.T) {
	lowlat := DefaultRunConfig()
	lowlat.LowLatency = true
	umts := DefaultRunConfig()
	umts.Net = NetUMTS
	umts.Governor = GovEnergyAware
	umts.CStates = true
	abr := DefaultRunConfig()
	abr.ABR = ABRBBA
	abr.Net = NetLTE
	triples := []struct {
		name   string
		cfg    RunConfig
		h1, h2 sim.Time
	}{
		{"lowlatency-early-cut", lowlat, 3 * sim.Second, 20 * sim.Second},
		{"umts-cstates-mid-cut", umts, 30 * sim.Second, 200 * sim.Second},
		{"abr-lte-near-full", abr, 61 * sim.Second, 420 * sim.Second},
	}
	for _, tc := range triples {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			short := runJSONL(t, tc.cfg, tc.h1)
			long := runJSONL(t, tc.cfg, tc.h2)
			if len(short) == 0 {
				t.Fatal("H1 trace is empty — the cut landed before any event")
			}
			if len(long) < len(short) {
				t.Fatalf("H2 trace (%d bytes) shorter than H1 trace (%d bytes)", len(long), len(short))
			}
			if !bytes.Equal(long[:len(short)], short) {
				i := 0
				for i < len(short) && short[i] == long[i] {
					i++
				}
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("H1 trace is not a prefix of the H2 trace; first divergence at byte %d:\n  H1: %q\n  H2: %q",
					i, short[lo:min(i+80, len(short))], long[lo:min(i+80, len(long))])
			}
		})
	}
}

// TestBatchStrict runs a Sweep-shaped batch through the campaign pool
// with invariants armed on every run.
func TestBatchStrict(t *testing.T) {
	defer SetStrictDefault(SetStrictDefault(true))
	base := DefaultRunConfig()
	var cfgs []RunConfig
	for _, gov := range []GovernorID{GovEnergyAware, GovOracle, "ondemand", "performance"} {
		cfg := base
		cfg.Governor = gov
		cfgs = append(cfgs, cfg)
	}
	outs := RunAll(cfgs, 2)
	if len(outs) != len(cfgs) {
		t.Fatalf("got %d outcomes for %d configs", len(outs), len(cfgs))
	}
	for _, o := range outs {
		if o.Err != nil {
			var v *invariant.Violation
			if errors.As(o.Err, &v) {
				t.Fatalf("config %d (%s) violated invariants: %v", o.Index, o.Config.Governor, v)
			}
			t.Fatalf("config %d failed: %v", o.Index, o.Err)
		}
	}
}
