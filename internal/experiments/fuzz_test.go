package experiments

import (
	"errors"
	"testing"

	"videodvfs/internal/sim"
)

// FuzzParseGovernorID asserts the parser total: any input either yields
// a registered ID that round-trips, or an error wrapping
// ErrUnknownGovernor — never a panic, never a fabricated ID.
func FuzzParseGovernorID(f *testing.F) {
	for _, id := range GovernorIDs() {
		f.Add(string(id))
	}
	f.Add("")
	f.Add("ENERGYAWARE")
	f.Add("energyaware ")
	f.Add("ondemand\x00")
	f.Add("性能")
	f.Fuzz(func(t *testing.T, name string) {
		id, err := ParseGovernorID(name)
		if err != nil {
			if !errors.Is(err, ErrUnknownGovernor) {
				t.Fatalf("ParseGovernorID(%q) error %v does not wrap ErrUnknownGovernor", name, err)
			}
			if id != "" {
				t.Fatalf("ParseGovernorID(%q) returned id %q alongside error", name, id)
			}
			return
		}
		if string(id) != name {
			t.Fatalf("ParseGovernorID(%q) = %q, did not round-trip", name, id)
		}
		if again, err := ParseGovernorID(string(id)); err != nil || again != id {
			t.Fatalf("accepted ID %q did not re-parse: %v", id, err)
		}
	})
}

// FuzzParseABRID mirrors FuzzParseGovernorID, plus the documented quirk
// that the empty string is accepted as ABRFixed.
func FuzzParseABRID(f *testing.F) {
	for _, id := range ABRIDs() {
		f.Add(string(id))
	}
	f.Add("")
	f.Add("FIXED")
	f.Add("bba ")
	f.Add("rate\n")
	f.Fuzz(func(t *testing.T, name string) {
		id, err := ParseABRID(name)
		if err != nil {
			if !errors.Is(err, ErrUnknownABR) {
				t.Fatalf("ParseABRID(%q) error %v does not wrap ErrUnknownABR", name, err)
			}
			return
		}
		if name == "" {
			if id != ABRFixed {
				t.Fatalf("ParseABRID(\"\") = %q, want %q", id, ABRFixed)
			}
			return
		}
		if string(id) != name {
			t.Fatalf("ParseABRID(%q) = %q, did not round-trip", name, id)
		}
	})
}

// FuzzRunConfigValidate asserts Validate is total over arbitrary string
// and scalar fields, errors always wrap ErrInvalidConfig, and every
// config Validate accepts has a stable canonical cache identity.
func FuzzRunConfigValidate(f *testing.F) {
	f.Add("energyaware", "fixed", "const8", 60.0, int64(1))
	f.Add("ondemand", "", "wifi", 120.0, int64(7))
	f.Add("oracle", "bba", "lte", 0.5, int64(-3))
	f.Add("", "rate", "", -1.0, int64(0))
	f.Add("nosuchgov", "nosuchabr", "nosuchnet", 1e18, int64(1<<62))
	f.Fuzz(func(t *testing.T, gov, abr, net string, durationS float64, seed int64) {
		cfg := DefaultRunConfig()
		cfg.Governor = GovernorID(gov)
		cfg.ABR = ABRID(abr)
		cfg.Net = NetKind(net)
		cfg.Duration = sim.Time(durationS) * sim.Second
		cfg.Seed = seed
		err := cfg.Validate()
		if err != nil {
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate error %v does not wrap ErrInvalidConfig", err)
			}
			return
		}
		k1, ok := ConfigKey(cfg)
		if !ok {
			t.Fatal("valid config without callbacks reported uncacheable")
		}
		k2, _ := ConfigKey(cfg)
		if k1 != k2 || len(k1) != 64 {
			t.Fatalf("cache key unstable or malformed: %q vs %q", k1, k2)
		}
	})
}
