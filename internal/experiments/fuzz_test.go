package experiments

import (
	"errors"
	"math"
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/invariant"
	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// FuzzParseGovernorID asserts the parser total: any input either yields
// a registered ID that round-trips, or an error wrapping
// ErrUnknownGovernor — never a panic, never a fabricated ID.
func FuzzParseGovernorID(f *testing.F) {
	for _, id := range GovernorIDs() {
		f.Add(string(id))
	}
	f.Add("")
	f.Add("ENERGYAWARE")
	f.Add("energyaware ")
	f.Add("ondemand\x00")
	f.Add("性能")
	f.Fuzz(func(t *testing.T, name string) {
		id, err := ParseGovernorID(name)
		if err != nil {
			if !errors.Is(err, ErrUnknownGovernor) {
				t.Fatalf("ParseGovernorID(%q) error %v does not wrap ErrUnknownGovernor", name, err)
			}
			if id != "" {
				t.Fatalf("ParseGovernorID(%q) returned id %q alongside error", name, id)
			}
			return
		}
		if string(id) != name {
			t.Fatalf("ParseGovernorID(%q) = %q, did not round-trip", name, id)
		}
		if again, err := ParseGovernorID(string(id)); err != nil || again != id {
			t.Fatalf("accepted ID %q did not re-parse: %v", id, err)
		}
	})
}

// FuzzParseABRID mirrors FuzzParseGovernorID, plus the documented quirk
// that the empty string is accepted as ABRFixed.
func FuzzParseABRID(f *testing.F) {
	for _, id := range ABRIDs() {
		f.Add(string(id))
	}
	f.Add("")
	f.Add("FIXED")
	f.Add("bba ")
	f.Add("rate\n")
	f.Fuzz(func(t *testing.T, name string) {
		id, err := ParseABRID(name)
		if err != nil {
			if !errors.Is(err, ErrUnknownABR) {
				t.Fatalf("ParseABRID(%q) error %v does not wrap ErrUnknownABR", name, err)
			}
			return
		}
		if name == "" {
			if id != ABRFixed {
				t.Fatalf("ParseABRID(\"\") = %q, want %q", id, ABRFixed)
			}
			return
		}
		if string(id) != name {
			t.Fatalf("ParseABRID(%q) = %q, did not round-trip", name, id)
		}
	})
}

// FuzzRunConfigValidate asserts Validate is total over arbitrary string
// and scalar fields, errors always wrap ErrInvalidConfig, and every
// config Validate accepts has a stable canonical cache identity.
func FuzzRunConfigValidate(f *testing.F) {
	f.Add("energyaware", "fixed", "const8", 60.0, int64(1))
	f.Add("ondemand", "", "wifi", 120.0, int64(7))
	f.Add("oracle", "bba", "lte", 0.5, int64(-3))
	f.Add("", "rate", "", -1.0, int64(0))
	f.Add("nosuchgov", "nosuchabr", "nosuchnet", 1e18, int64(1<<62))
	f.Fuzz(func(t *testing.T, gov, abr, net string, durationS float64, seed int64) {
		cfg := DefaultRunConfig()
		cfg.Governor = GovernorID(gov)
		cfg.ABR = ABRID(abr)
		cfg.Net = NetKind(net)
		cfg.Duration = sim.Time(durationS) * sim.Second
		cfg.Seed = seed
		err := cfg.Validate()
		if err != nil {
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate error %v does not wrap ErrInvalidConfig", err)
			}
			return
		}
		k1, ok := ConfigKey(cfg)
		if !ok {
			t.Fatal("valid config without callbacks reported uncacheable")
		}
		k2, _ := ConfigKey(cfg)
		if k1 != k2 || len(k1) != 64 {
			t.Fatalf("cache key unstable or malformed: %q vs %q", k1, k2)
		}
	})
}

// FuzzRunConfigInvariants runs whole simulations with the invariant
// checker armed over fuzzed RunConfig fields. The property: for any
// config, Run either rejects it up front (ErrInvalidConfig), reports the
// horizon cut (ErrHorizonExceeded), or completes with every conservation
// law intact — a *invariant.Violation (or any other error) is a real
// model bug. The seed corpus is the energy-closure stress matrix
// (stressConfigs): every device × the highest-variability title.
func FuzzRunConfigInvariants(f *testing.F) {
	for i, dev := 0, len(cpu.Devices()); i < dev; i++ {
		for j, nets := 0, []NetKind{NetConst8, NetLTE, NetUMTS}; j < len(nets); j++ {
			f.Add(i, (i+j)%3, 0, j, int64(3000), int64(1+i*3+j),
				0, 0.0, int64(0), 0.0, (i+j)%2 == 0, false, true,
				0, 0.0, 0.0, int64(0))
		}
	}
	// Hand-picked corners: low-latency ladder ABR, burst prefetch,
	// fractional fps, sub-second segments — and the forecast axis in all
	// three kinds (reactive, oracle, noisy) over fading links.
	f.Add(0, 0, 2, 1, int64(4500), int64(99), 3, 2.5, int64(800), 25.0, true, true, true,
		0, 0.0, 0.0, int64(0))
	f.Add(2, 1, 1, 2, int64(900), int64(-7), 16, 0.5, int64(250), 23.976, false, true, false,
		1, 10.0, 0.0, int64(0))
	f.Add(1, 2, 0, 2, int64(4000), int64(11), 8, 3.5, int64(1000), 30.0, false, false, true,
		2, 20.0, 0.3, int64(42))
	govs := GovernorIDs()
	abrs := ABRIDs()
	nets := NetKinds()
	titles := video.Titles()
	devices := cpu.Devices()
	f.Fuzz(func(t *testing.T, devI, govI, abrI, netI int, durMs, seed int64,
		queueCap int, lowWater float64, segMs int64, fps float64,
		cstates, lowlat, bg bool,
		fcI int, fcLookS, fcRelErr float64, fcSeed int64) {
		pick := func(i, n int) int { return ((i % n) + n) % n }
		fcKinds := []ForecastKind{ForecastNone, ForecastOracle, ForecastNoisy}
		cfg := RunConfig{
			Device:   devices[pick(devI, len(devices))],
			Governor: govs[pick(govI, len(govs))],
			Title:    titles[pick(devI+govI, len(titles))],
			ABR:      abrs[pick(abrI, len(abrs))],
			Net:      nets[pick(netI, len(nets))],
			// Clamp knobs that would only make runs slow or trip
			// documented config errors, not invariants: durations into
			// (0.1 s, 5 s], queue depth below 64, the low-water mark under
			// the low-latency buffer cap. Everything else — fps, segment
			// duration — reaches Validate raw.
			Duration:        sim.Time(100+((durMs%4900)+4900)%4900) * sim.Millisecond,
			Seed:            seed,
			DecodedQueueCap: queueCap % 64,
			LowWaterSec:     math.Mod(lowWater, 4),
			SegmentDur:      sim.Time(segMs) * sim.Millisecond,
			FPS:             fps,
			CStates:         cstates,
			LowLatency:      lowlat,
			Background:      bg,
			Strict:          true,
		}
		// The forecast axis: kind from the registry, lookahead/relerr/seed
		// raw enough to reach Validate's rejections and the noisy model's
		// clamps alike.
		cfg.Forecast = fcKinds[pick(fcI, len(fcKinds))]
		if cfg.Forecast != ForecastNone {
			cfg.ForecastLookahead = sim.Time(fcLookS) * sim.Second
			cfg.ForecastSeed = fcSeed
			if cfg.Forecast == ForecastNoisy {
				cfg.ForecastRelErr = fcRelErr
			}
		}
		if cfg.Net == NetTrace {
			// The trace backend needs sample data; a fixed two-fetch trace
			// with a mid-fetch stall puts the replay physics (including the
			// rate-0 stall regime) under the invariant audit.
			cfg.BWTrace = &netsim.Trace{Samples: []netsim.TraceSample{
				{Start: 0, End: 0.4, Bytes: 400_000, Fetch: 0},
				{Start: 0.6, End: 0.8, Bytes: 100_000, Fetch: 0},
				{Start: 1.0, End: 1.5, Bytes: 600_000, Fetch: 1},
			}}
		}
		_, err := Run(cfg)
		if err == nil {
			return
		}
		if errors.Is(err, ErrInvalidConfig) || errors.Is(err, ErrHorizonExceeded) {
			return
		}
		var v *invariant.Violation
		if errors.As(err, &v) {
			t.Fatalf("invariant violated: %v (config %+v)", v, cfg)
		}
		t.Fatalf("unexpected error: %v (config %+v)", err, cfg)
	})
}
