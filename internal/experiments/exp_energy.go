package experiments

import (
	"videodvfs/internal/stats"
	"videodvfs/internal/video"
)

// headlineGovernors is the comparison set of the headline experiment.
func headlineGovernors() []GovernorID {
	return GovernorIDs()
}

// runGrid sweeps the governors across the resolution ladder with the
// given seeds in one campaign batch and returns mean CPU energy and mean
// drop rate per governor per resolution.
func runGrid(govs []GovernorID, seeds []int64) (map[GovernorID]map[string]float64, map[GovernorID]map[string]float64, error) {
	sw := Sweep{
		Base:      DefaultRunConfig(),
		Governors: govs,
		Rungs:     video.Resolutions(),
		Seeds:     seeds,
	}
	cfgs := sw.Expand()
	results, err := runAllStrict(cfgs)
	if err != nil {
		return nil, nil, err
	}
	eAcc := make(map[GovernorID]map[string]*stats.Online, len(govs))
	dAcc := make(map[GovernorID]map[string]*stats.Online, len(govs))
	for _, gov := range govs {
		eAcc[gov] = make(map[string]*stats.Online)
		dAcc[gov] = make(map[string]*stats.Online)
		for _, res := range video.Resolutions() {
			eAcc[gov][res.Name] = &stats.Online{}
			dAcc[gov][res.Name] = &stats.Online{}
		}
	}
	for i, out := range results {
		cfg := cfgs[i]
		eAcc[cfg.Governor][cfg.Rung.Name].Add(out.CPUJ)
		dAcc[cfg.Governor][cfg.Rung.Name].Add(out.QoE.DropRate())
	}
	energyJ := make(map[GovernorID]map[string]float64, len(govs))
	drops := make(map[GovernorID]map[string]float64, len(govs))
	for _, gov := range govs {
		energyJ[gov] = make(map[string]float64)
		drops[gov] = make(map[string]float64)
		for _, res := range video.Resolutions() {
			energyJ[gov][res.Name] = eAcc[gov][res.Name].Mean()
			drops[gov][res.Name] = dAcc[gov][res.Name].Mean()
		}
	}
	return energyJ, drops, nil
}

// headlineSeeds returns the seed set for the averaged headline grid.
func headlineSeeds() []int64 { return []int64{1, 2, 3} }

// FigF5 reproduces Figure 5 (headline): CPU energy per governor across
// resolutions, with savings relative to ondemand.
func FigF5() (Table, error) {
	t := Table{
		ID:     "f5",
		Title:  "CPU energy (J) by governor × resolution, 60 s sports @30fps, mean of 3 seeds",
		Header: []string{"governor", "360p", "480p", "720p", "1080p", "720p_vs_ondemand"},
		Notes:  "energy-aware saves ≈20–40% vs ondemand/interactive; only powersave and the oracle sit lower, and powersave drops frames (see f6)",
	}
	rows, _, err := runGrid(headlineGovernors(), headlineSeeds())
	if err != nil {
		return Table{}, err
	}
	base := rows["ondemand"]
	for _, gov := range headlineGovernors() {
		e := rows[gov]
		saving := "-"
		if base["720p"] > 0 {
			saving = pct((base["720p"] - e["720p"]) / base["720p"])
		}
		t.Rows = append(t.Rows, []string{
			string(gov), f1(e["360p"]), f1(e["480p"]), f1(e["720p"]), f1(e["1080p"]), saving,
		})
	}
	return t, nil
}

// FigF6 reproduces Figure 6: dropped-frame rate per governor across
// resolutions (the QoE guardrail of the headline figure).
func FigF6() (Table, error) {
	t := Table{
		ID:     "f6",
		Title:  "Dropped-frame rate by governor × resolution (same runs as f5)",
		Header: []string{"governor", "360p", "480p", "720p", "1080p"},
		Notes:  "powersave collapses at 720p/1080p; energy-aware matches performance (≈0%) everywhere",
	}
	_, drops, err := runGrid(headlineGovernors(), headlineSeeds())
	if err != nil {
		return Table{}, err
	}
	for _, gov := range headlineGovernors() {
		d := drops[gov]
		t.Rows = append(t.Rows, []string{
			string(gov), pct(d["360p"]), pct(d["480p"]), pct(d["720p"]), pct(d["1080p"]),
		})
	}
	return t, nil
}

// FigF12 reproduces Figure 12: how close the online policy comes to the
// offline oracle across resolutions.
func FigF12() (Table, error) {
	t := Table{
		ID:     "f12",
		Title:  "Energy-aware vs offline oracle: CPU energy gap by resolution",
		Header: []string{"resolution", "energyaware_j", "oracle_j", "gap"},
		Notes:  "the online policy lands within ~5–20% of the clairvoyant lower bound",
	}
	rows, _, err := runGrid([]GovernorID{GovEnergyAware, GovOracle}, headlineSeeds())
	if err != nil {
		return Table{}, err
	}
	ea, or := rows["energyaware"], rows["oracle"]
	for _, res := range video.Resolutions() {
		gap := "-"
		if or[res.Name] > 0 {
			gap = pct((ea[res.Name] - or[res.Name]) / or[res.Name])
		}
		t.Rows = append(t.Rows, []string{res.Name, f1(ea[res.Name]), f1(or[res.Name]), gap})
	}
	return t, nil
}
