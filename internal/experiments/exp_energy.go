package experiments

import (
	"fmt"

	"videodvfs/internal/stats"
	"videodvfs/internal/video"
)

// headlineGovernors is the comparison set of the headline experiment.
func headlineGovernors() []string {
	return []string{"performance", "powersave", "ondemand", "conservative", "interactive", "schedutil", "energyaware", "oracle"}
}

// runGrid runs one governor across the resolution ladder with the given
// seeds and returns mean CPU energy and mean drop rate per resolution.
func runGrid(gov string, seeds []int64) (map[string]float64, map[string]float64, error) {
	energyJ := make(map[string]float64)
	drops := make(map[string]float64)
	for _, res := range video.Resolutions() {
		var e, d stats.Online
		for _, seed := range seeds {
			cfg := DefaultRunConfig()
			cfg.Governor = gov
			cfg.Rung = res
			cfg.Seed = seed
			out, err := Run(cfg)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s seed %d: %w", gov, res.Name, seed, err)
			}
			e.Add(out.CPUJ)
			d.Add(out.QoE.DropRate())
		}
		energyJ[res.Name] = e.Mean()
		drops[res.Name] = d.Mean()
	}
	return energyJ, drops, nil
}

// headlineSeeds returns the seed set for the averaged headline grid.
func headlineSeeds() []int64 { return []int64{1, 2, 3} }

// FigF5 reproduces Figure 5 (headline): CPU energy per governor across
// resolutions, with savings relative to ondemand.
func FigF5() (Table, error) {
	t := Table{
		ID:     "f5",
		Title:  "CPU energy (J) by governor × resolution, 60 s sports @30fps, mean of 3 seeds",
		Header: []string{"governor", "360p", "480p", "720p", "1080p", "720p_vs_ondemand"},
		Notes:  "energy-aware saves ≈20–40% vs ondemand/interactive; only powersave and the oracle sit lower, and powersave drops frames (see f6)",
	}
	base := make(map[string]float64)
	rows := make(map[string]map[string]float64)
	for _, gov := range headlineGovernors() {
		e, _, err := runGrid(gov, headlineSeeds())
		if err != nil {
			return Table{}, err
		}
		rows[gov] = e
		if gov == "ondemand" {
			base = e
		}
	}
	for _, gov := range headlineGovernors() {
		e := rows[gov]
		saving := "-"
		if base["720p"] > 0 {
			saving = pct((base["720p"] - e["720p"]) / base["720p"])
		}
		t.Rows = append(t.Rows, []string{
			gov, f1(e["360p"]), f1(e["480p"]), f1(e["720p"]), f1(e["1080p"]), saving,
		})
	}
	return t, nil
}

// FigF6 reproduces Figure 6: dropped-frame rate per governor across
// resolutions (the QoE guardrail of the headline figure).
func FigF6() (Table, error) {
	t := Table{
		ID:     "f6",
		Title:  "Dropped-frame rate by governor × resolution (same runs as f5)",
		Header: []string{"governor", "360p", "480p", "720p", "1080p"},
		Notes:  "powersave collapses at 720p/1080p; energy-aware matches performance (≈0%) everywhere",
	}
	for _, gov := range headlineGovernors() {
		_, d, err := runGrid(gov, headlineSeeds())
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			gov, pct(d["360p"]), pct(d["480p"]), pct(d["720p"]), pct(d["1080p"]),
		})
	}
	return t, nil
}

// FigF12 reproduces Figure 12: how close the online policy comes to the
// offline oracle across resolutions.
func FigF12() (Table, error) {
	t := Table{
		ID:     "f12",
		Title:  "Energy-aware vs offline oracle: CPU energy gap by resolution",
		Header: []string{"resolution", "energyaware_j", "oracle_j", "gap"},
		Notes:  "the online policy lands within ~5–20% of the clairvoyant lower bound",
	}
	ea, _, err := runGrid("energyaware", headlineSeeds())
	if err != nil {
		return Table{}, err
	}
	or, _, err := runGrid("oracle", headlineSeeds())
	if err != nil {
		return Table{}, err
	}
	for _, res := range video.Resolutions() {
		gap := "-"
		if or[res.Name] > 0 {
			gap = pct((ea[res.Name] - or[res.Name]) / or[res.Name])
		}
		t.Rows = append(t.Rows, []string{res.Name, f1(ea[res.Name]), f1(or[res.Name]), gap})
	}
	return t, nil
}
