package experiments

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"videodvfs/internal/campaign"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// shortBase returns a cheap base config for batch tests.
func shortBase() RunConfig {
	cfg := DefaultRunConfig()
	cfg.Duration = 8 * sim.Second
	return cfg
}

// TestRunAllParallelSerialEquivalence is the determinism contract: a
// 16-point sweep must produce bit-identical results whether it runs on
// one worker or eight. Every run owns its engine and derives all
// randomness from its seed, so worker count must never leak into output.
func TestRunAllParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 32 simulations")
	}
	sweep := Sweep{
		Base:      shortBase(),
		Governors: []GovernorID{GovOndemand, GovEnergyAware},
		Rungs:     []video.Resolution{video.R360p, video.R720p},
		Seeds:     SeedRange(1, 4),
	}
	cfgs := sweep.Expand()
	if len(cfgs) != 16 {
		t.Fatalf("sweep expanded to %d configs, want 16", len(cfgs))
	}
	serial := RunAll(cfgs, 1)
	parallel := RunAll(cfgs, 8)
	for i := range serial {
		if serial[i].Err != nil {
			t.Fatalf("run %d failed: %v", i, serial[i].Err)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("run %d (%s/%s seed %d): serial and parallel outcomes differ\nserial:   %+v\nparallel: %+v",
				i, cfgs[i].Governor, cfgs[i].Rung.Name, cfgs[i].Seed, serial[i], parallel[i])
		}
	}
}

// TestRunAllPanicIsolation injects a panicking run into the middle of a
// batch: its slot must carry a *campaign.PanicError naming the panic
// value, and every other run must complete normally.
func TestRunAllPanicIsolation(t *testing.T) {
	cfgs := make([]RunConfig, 4)
	for i := range cfgs {
		cfgs[i] = shortBase()
		cfgs[i].Seed = int64(i + 1)
	}
	// OnSample fires from a ticker inside the run, so the panic unwinds
	// through Run itself — the pool, not the caller, must contain it.
	cfgs[2].OnSample = func(sim.Time, float64, float64, float64) {
		panic("injected sample failure")
	}
	outs := RunAll(cfgs, 2)
	for i, o := range outs {
		if i == 2 {
			var pe *campaign.PanicError
			if !errors.As(o.Err, &pe) {
				t.Fatalf("run 2: want *campaign.PanicError, got %v", o.Err)
			}
			if pe.Value != "injected sample failure" {
				t.Errorf("panic value = %v, want injected sample failure", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("panic error carries no stack trace")
			}
			continue
		}
		if o.Err != nil {
			t.Errorf("run %d should be unaffected by run 2's panic, got %v", i, o.Err)
		}
		if o.Result.SimEnd == 0 {
			t.Errorf("run %d has zero SimEnd — did it actually run?", i)
		}
	}
}

func TestSeedRange(t *testing.T) {
	if got := SeedRange(3, 6); !reflect.DeepEqual(got, []int64{3, 4, 5, 6}) {
		t.Errorf("SeedRange(3,6) = %v", got)
	}
	if got := SeedRange(5, 5); !reflect.DeepEqual(got, []int64{5}) {
		t.Errorf("SeedRange(5,5) = %v", got)
	}
	if got := SeedRange(7, 2); got != nil {
		t.Errorf("SeedRange(7,2) = %v, want nil", got)
	}
}

// TestSweepExpand pins the expansion order (declaration-major,
// seed-minor) and the keep-the-template default for unset axes.
func TestSweepExpand(t *testing.T) {
	base := shortBase()
	base.Governor = "powersave"
	s := Sweep{
		Base:      base,
		Governors: []GovernorID{GovOndemand, GovEnergyAware},
		Seeds:     []int64{10, 11},
	}
	cfgs := s.Expand()
	want := []struct {
		gov  GovernorID
		seed int64
	}{
		{"ondemand", 10}, {"ondemand", 11},
		{"energyaware", 10}, {"energyaware", 11},
	}
	if len(cfgs) != len(want) {
		t.Fatalf("expanded to %d configs, want %d", len(cfgs), len(want))
	}
	for i, w := range want {
		if cfgs[i].Governor != w.gov || cfgs[i].Seed != w.seed {
			t.Errorf("config %d = %s/seed %d, want %s/seed %d",
				i, cfgs[i].Governor, cfgs[i].Seed, w.gov, w.seed)
		}
		// Unswept axes keep the template's values.
		if cfgs[i].Net != base.Net || cfgs[i].Rung.Name != base.Rung.Name {
			t.Errorf("config %d lost template values: net %s rung %s", i, cfgs[i].Net, cfgs[i].Rung.Name)
		}
	}
	// A sweep with no axes is the template alone.
	single := Sweep{Base: base}.Expand()
	if len(single) != 1 || !reflect.DeepEqual(single[0], base) {
		t.Errorf("axis-free sweep = %+v, want exactly the base config", single)
	}
}

// TestSweepAggregate checks the fold on synthetic outcomes: only axes
// with ≥2 values produce rows, failed runs are skipped, and the stats
// match hand computation.
func TestSweepAggregate(t *testing.T) {
	s := Sweep{
		Base:      shortBase(),
		Governors: []GovernorID{GovOndemand, GovEnergyAware},
		Seeds:     []int64{1, 2},
	}
	cfgs := s.Expand()
	outs := make([]Outcome, len(cfgs))
	// CPUJ by (governor, seed): ondemand → 10, 20; energyaware → 4, 6.
	vals := []float64{10, 20, 4, 6}
	for i := range outs {
		outs[i] = Outcome{Index: i, Config: cfgs[i], Result: RunResult{CPUJ: vals[i]}}
	}
	rows := s.Aggregate(outs, func(r RunResult) float64 { return r.CPUJ })
	// Two axes vary (governor, seed) with two values each → four rows.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	od := rows[0]
	if od.Axis != "governor" || od.Value != "ondemand" || od.N != 2 {
		t.Fatalf("row 0 = %+v, want governor/ondemand over 2 runs", od)
	}
	if od.Mean != 15 || od.Min != 10 || od.Max != 20 {
		t.Errorf("ondemand stats = mean %v min %v max %v, want 15/10/20", od.Mean, od.Min, od.Max)
	}
	// Sample std of {10, 20} is √50.
	if math.Abs(od.Std-math.Sqrt(50)) > 1e-9 {
		t.Errorf("ondemand std = %v, want %v", od.Std, math.Sqrt(50))
	}
	if ea := rows[1]; ea.Value != "energyaware" || ea.Mean != 5 {
		t.Errorf("row 1 = %+v, want energyaware mean 5", ea)
	}
	if sd := rows[2]; sd.Axis != "seed" || sd.Value != "1" || sd.Mean != 7 {
		t.Errorf("row 2 = %+v, want seed/1 mean 7 (of 10 and 4)", sd)
	}

	// A failed run drops out of every aggregate.
	outs[1].Err = errors.New("boom")
	rows = s.Aggregate(outs, func(r RunResult) float64 { return r.CPUJ })
	if od := rows[0]; od.N != 1 || od.Mean != 10 {
		t.Errorf("after failure, ondemand = %+v, want N 1 mean 10", od)
	}
}

// TestRunAllObservedReportsVirtualTime checks that batch progress
// accumulates simulated virtual seconds, the numerator of the
// virtual-s/wall-s throughput metric.
func TestRunAllObservedReportsVirtualTime(t *testing.T) {
	cfgs := []RunConfig{shortBase(), shortBase()}
	cfgs[1].Seed = 2
	var buf strings.Builder
	outs := RunAllObserved(cfgs, 2, &campaign.LogObserver{W: &buf, Every: 1})
	var virt sim.Time
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("run %d: %v", o.Index, o.Err)
		}
		virt += o.Result.SimEnd
	}
	if virt <= 0 {
		t.Fatal("runs reported no virtual time")
	}
	if !strings.Contains(buf.String(), "virtual-s/wall-s") {
		t.Errorf("observer summary missing throughput metric:\n%s", buf.String())
	}
}
