package experiments

import (
	"errors"
	"fmt"

	"videodvfs/internal/abr"
	"videodvfs/internal/governor"
)

// GovernorID is a typed governor identifier: one of the stock cpufreq
// baselines, "energyaware", or "oracle". The zero value is invalid; use
// ParseGovernorID to convert untrusted strings (CLI flags, config files)
// into a validated ID.
type GovernorID string

// Built-in governors.
const (
	// GovPerformance pins the top OPP.
	GovPerformance GovernorID = "performance"
	// GovPowersave pins the bottom OPP.
	GovPowersave GovernorID = "powersave"
	// GovOndemand is the sampling-based stock default.
	GovOndemand GovernorID = "ondemand"
	// GovConservative is ondemand with gradual steps.
	GovConservative GovernorID = "conservative"
	// GovInteractive is the Android-era touch-boost governor.
	GovInteractive GovernorID = "interactive"
	// GovSchedutil is the scheduler-utilization governor.
	GovSchedutil GovernorID = "schedutil"
	// GovEnergyAware is the paper's video-aware policy.
	GovEnergyAware GovernorID = "energyaware"
	// GovOracle is the offline-optimal reference.
	GovOracle GovernorID = "oracle"
)

// ErrUnknownGovernor reports a governor name outside GovernorIDs();
// distinguish it with errors.Is.
var ErrUnknownGovernor = errors.New("unknown governor")

// ErrUnknownABR reports an ABR name outside ABRIDs(); distinguish it
// with errors.Is.
var ErrUnknownABR = errors.New("unknown ABR algorithm")

// ErrUnknownNet reports a network name outside NetKinds(); distinguish it
// with errors.Is.
var ErrUnknownNet = errors.New("unknown network kind")

// GovernorIDs returns every governor Run accepts, in report order: the
// stock baselines followed by energyaware and oracle.
func GovernorIDs() []GovernorID {
	base := governor.BaselineNames()
	out := make([]GovernorID, 0, len(base)+2)
	for _, n := range base {
		out = append(out, GovernorID(n))
	}
	return append(out, GovEnergyAware, GovOracle)
}

// ParseGovernorID validates a governor name from an untrusted source.
// Unknown names return an error matching ErrUnknownGovernor.
func ParseGovernorID(name string) (GovernorID, error) {
	// Fast path over the known constants: GovernorIDs() allocates its
	// slice per call, which would put an allocation in every Validate on
	// the arena-reuse hot path.
	switch GovernorID(name) {
	case GovPerformance, GovPowersave, GovOndemand, GovConservative,
		GovInteractive, GovSchedutil, GovEnergyAware, GovOracle:
		return GovernorID(name), nil
	}
	for _, id := range GovernorIDs() {
		if GovernorID(name) == id {
			return id, nil
		}
	}
	return "", fmt.Errorf("experiments: %w %q (known: %v)", ErrUnknownGovernor, name, GovernorIDs())
}

// ABRID is a typed adaptation-algorithm identifier. The empty string is
// accepted by Run as ABRFixed; use ParseABRID to validate untrusted
// strings.
type ABRID string

// Built-in adaptation algorithms.
const (
	// ABRFixed pins one rendition (RunConfig.Rung).
	ABRFixed ABRID = "fixed"
	// ABRRate is the classic throughput-rule algorithm.
	ABRRate ABRID = "rate"
	// ABRBBA is the buffer-based BBA-0 style algorithm.
	ABRBBA ABRID = "bba"
)

// ABRIDs returns every adaptation algorithm Run accepts, in report
// order.
func ABRIDs() []ABRID { return []ABRID{ABRFixed, ABRRate, ABRBBA} }

// ParseABRID validates an ABR name from an untrusted source. The empty
// string parses as ABRFixed; unknown names return an error matching
// ErrUnknownABR.
func ParseABRID(name string) (ABRID, error) {
	switch ABRID(name) {
	case "":
		return ABRFixed, nil
	case ABRFixed, ABRRate, ABRBBA:
		// Fast path mirroring ParseGovernorID: keep Validate allocation-free.
		return ABRID(name), nil
	}
	for _, id := range ABRIDs() {
		if ABRID(name) == id {
			return id, nil
		}
	}
	return "", fmt.Errorf("experiments: %w %q (known: %v)", ErrUnknownABR, name, ABRIDs())
}

// String returns the network name, mirroring GovernorID and ABRID's
// string forms for flag messages and error text.
func (n NetKind) String() string { return string(n) }

// ParseNetKind validates a network name from an untrusted source (flags,
// request bodies). The empty string parses as NetWiFi — the same default
// Run applies to an unset RunConfig.Net — and unknown names return an
// error matching ErrUnknownNet.
func ParseNetKind(name string) (NetKind, error) {
	switch NetKind(name) {
	case "":
		return NetWiFi, nil
	case NetWiFi, NetConst8, NetLTE, NetUMTS, NetTrace:
		// Fast path mirroring ParseGovernorID: keep Validate allocation-free.
		return NetKind(name), nil
	}
	for _, id := range NetKinds() {
		if NetKind(name) == id {
			return id, nil
		}
	}
	return "", fmt.Errorf("experiments: %w %q (known: %v)", ErrUnknownNet, name, NetKinds())
}

// ForecastKind is a typed bandwidth-forecast identifier. The empty string
// (ForecastNone) disables the predictive scheduler — the player keeps the
// reactive low-water burst trigger; use ParseForecastKind to validate
// untrusted strings.
type ForecastKind string

// Built-in forecast models.
const (
	// ForecastNone disables forecasting (reactive low-water trigger).
	ForecastNone ForecastKind = ""
	// ForecastOracle is the perfect forecast: it probes the run's own
	// bandwidth model ahead of time, so predictions are exactly the rates
	// the downloader will see.
	ForecastOracle ForecastKind = "oracle"
	// ForecastNoisy is the oracle degraded by seeded multiplicative error
	// (RunConfig.ForecastRelErr); deterministic, so still cacheable.
	ForecastNoisy ForecastKind = "noisy"
)

// ErrUnknownForecast reports a forecast name outside ForecastKinds();
// distinguish it with errors.Is.
var ErrUnknownForecast = errors.New("unknown forecast kind")

// ForecastKinds returns every non-empty forecast kind Run accepts, in
// report order.
func ForecastKinds() []ForecastKind { return []ForecastKind{ForecastOracle, ForecastNoisy} }

// String returns the forecast name, mirroring the other typed IDs.
func (k ForecastKind) String() string { return string(k) }

// ParseForecastKind validates a forecast name from an untrusted source.
// The empty string parses as ForecastNone — forecasting off, the Run
// default — and unknown names return an error matching ErrUnknownForecast.
func ParseForecastKind(name string) (ForecastKind, error) {
	switch ForecastKind(name) {
	case ForecastNone, ForecastOracle, ForecastNoisy:
		// Fast path mirroring ParseGovernorID: keep Validate allocation-free.
		return ForecastKind(name), nil
	}
	return "", fmt.Errorf("experiments: %w %q (known: %v)", ErrUnknownForecast, name, ForecastKinds())
}

var _ = abr.Names // the ABR registry itself lives in internal/abr
