package experiments

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// FigF17 reproduces Figure 17 (extension): the codec trade — H.264 at the
// full ladder bitrate versus HEVC at 60% of it for equal quality. HEVC
// shifts energy from the radio (fewer bits) to the CPU (heavier decode);
// whether it wins at the device level depends on the network, so both a
// cheap and an expensive link are shown.
func FigF17() (Table, error) {
	t := Table{
		ID:     "f17",
		Title:  "Codec trade (720p sports, 120 s, energy-aware): H.264 vs HEVC",
		Header: []string{"codec", "network", "mbps", "cpu_j", "radio_j", "cpu+radio_j", "drops"},
		Notes:  "HEVC costs more CPU but fewer radio joules; it wins at the device level on expensive links (3G) and roughly ties on cheap ones",
	}
	var cfgs []RunConfig
	for _, codec := range []string{"h264", "hevc"} {
		for _, net := range []NetKind{NetWiFi, NetUMTS} {
			cfg := DefaultRunConfig()
			cfg.Codec = codec
			cfg.Net = net
			cfg.Duration = 120 * sim.Second
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f17: %w", err)
	}
	for i, res := range results {
		t.Rows = append(t.Rows, []string{
			cfgs[i].Codec, string(cfgs[i].Net),
			f2c(res.QoE.MeanRungBps / 1e6),
			f1(res.CPUJ), f1(res.RadioJ), f1(res.CPUJ + res.RadioJ),
			iv(res.QoE.DroppedFrames),
		})
	}
	return t, nil
}

// FigF18 reproduces Figure 18 (extension): generality across device
// classes. The relative saving holds on mid-range and efficiency-core
// hardware, not just the flagship the base case uses.
func FigF18() (Table, error) {
	t := Table{
		ID:     "f18",
		Title:  "Device generality (480p sports, 60 s): energy-aware vs ondemand per device class",
		Header: []string{"device", "fmax_ghz", "ondemand_j", "energyaware_j", "saving", "ea_drops"},
		Notes:  "relative savings persist across device classes; smaller tables leave less DVFS headroom, so the flagship saves the most",
	}
	base := DefaultRunConfig()
	base.Rung = video.R480p // feasible on every device class
	var cfgs []RunConfig
	for _, dev := range cpu.Devices() {
		for _, gov := range []GovernorID{GovOndemand, GovEnergyAware} {
			cfg := base
			cfg.Device = dev
			cfg.Governor = gov
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f18: %w", err)
	}
	for i, dev := range cpu.Devices() {
		odJ := results[2*i].CPUJ
		eaJ := results[2*i+1].CPUJ
		eaDrops := results[2*i+1].QoE.DroppedFrames
		saving := "-"
		if odJ > 0 {
			saving = pct((odJ - eaJ) / odJ)
		}
		t.Rows = append(t.Rows, []string{
			dev.Name, f2c(dev.Fmax() / 1e9), f1(odJ), f1(eaJ), saving, iv(eaDrops),
		})
	}
	return t, nil
}

// FigF19 reproduces Figure 19 (extension): low-latency live streaming.
// With a 4 s buffer and a 3-frame decode-ahead queue the slack store
// shrinks, so savings compress but persist — and QoE parity still holds.
func FigF19() (Table, error) {
	t := Table{
		ID:     "f19",
		Title:  "Low-latency live mode (720p, 120 s, 1 s startup / 4 s buffer / 3-frame queue)",
		Header: []string{"governor", "startup_s", "cpu_j", "mean_ghz", "drops", "rebuffers"},
		Notes:  "with little slack the policy leans on its sprint mode: savings compress versus the VOD case but remain well ahead of the reactive baselines",
	}
	base := DefaultRunConfig()
	base.Duration = 120 * sim.Second
	base.LowLatency = true
	cfgs := Sweep{Base: base, Governors: []GovernorID{GovPerformance, GovOndemand, GovInteractive, GovEnergyAware, GovOracle}}.Expand()
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f19: %w", err)
	}
	for i, res := range results {
		t.Rows = append(t.Rows, []string{
			string(cfgs[i].Governor), f2c(res.QoE.StartupDelay.Seconds()), f1(res.CPUJ),
			f2c(res.MeanFreqGHz), iv(res.QoE.DroppedFrames), iv(res.QoE.RebufferCount),
		})
	}
	return t, nil
}
