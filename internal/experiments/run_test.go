package experiments

import (
	"errors"
	"math"
	"testing"

	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

func mustRun(t *testing.T, cfg RunConfig) RunResult {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDeterministic(t *testing.T) {
	a := mustRun(t, DefaultRunConfig())
	b := mustRun(t, DefaultRunConfig())
	if a.CPUJ != b.CPUJ || a.RadioJ != b.RadioJ || a.QoE != b.QoE {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
	c := func() RunResult {
		cfg := DefaultRunConfig()
		cfg.Seed = 99
		return mustRun(t, cfg)
	}()
	if a.CPUJ == c.CPUJ {
		t.Fatal("different seeds produced identical CPU energy")
	}
}

func TestRunCompletesAndAccounts(t *testing.T) {
	res := mustRun(t, DefaultRunConfig())
	if !res.QoE.Completed {
		t.Fatal("base case did not complete")
	}
	if res.QoE.DisplayedFrames+res.QoE.DroppedFrames != res.QoE.TotalFrames {
		t.Fatalf("frame accounting broken: %+v", res.QoE)
	}
	if res.CPUJ <= 0 || res.RadioJ <= 0 || res.DisplayJ <= 0 {
		t.Fatalf("energy components missing: %+v", res)
	}
	var resid sim.Time
	for _, d := range res.FreqResidency {
		resid += d
	}
	if math.Abs(float64(resid-res.SimEnd)) > 1e-6*float64(res.SimEnd) {
		t.Fatalf("frequency residency %v does not cover the run %v", resid, res.SimEnd)
	}
}

// TestHeadlineShape asserts the paper's central claims on the base case.
func TestHeadlineShape(t *testing.T) {
	results := make(map[GovernorID]RunResult)
	for _, gov := range []GovernorID{GovPerformance, GovPowersave, GovOndemand, GovInteractive, GovEnergyAware, GovOracle} {
		cfg := DefaultRunConfig()
		cfg.Governor = gov
		results[gov] = mustRun(t, cfg)
	}
	ea, od, perf, ps, oracle := results["energyaware"], results["ondemand"], results["performance"], results["powersave"], results["oracle"]

	if ea.CPUJ >= od.CPUJ*0.85 {
		t.Errorf("energy-aware (%.1f J) should save ≥15%% vs ondemand (%.1f J)", ea.CPUJ, od.CPUJ)
	}
	if od.CPUJ >= perf.CPUJ {
		t.Errorf("ondemand (%.1f J) should undercut performance (%.1f J)", od.CPUJ, perf.CPUJ)
	}
	if ea.QoE.DroppedFrames != perf.QoE.DroppedFrames {
		t.Errorf("energy-aware drops (%d) must match performance (%d)", ea.QoE.DroppedFrames, perf.QoE.DroppedFrames)
	}
	if ps.QoE.DropRate() < 0.5 {
		t.Errorf("powersave at 720p should collapse, drop rate %.2f", ps.QoE.DropRate())
	}
	if oracle.CPUJ > ea.CPUJ*1.001 {
		t.Errorf("oracle (%.1f J) must lower-bound energy-aware (%.1f J)", oracle.CPUJ, ea.CPUJ)
	}
	if ea.CPUJ > oracle.CPUJ*1.25 {
		t.Errorf("energy-aware (%.1f J) should be within 25%% of oracle (%.1f J)", ea.CPUJ, oracle.CPUJ)
	}
	// QoE parity on startup.
	if ea.QoE.StartupDelay > perf.QoE.StartupDelay+200*sim.Millisecond {
		t.Errorf("energy-aware startup %v should track performance %v", ea.QoE.StartupDelay, perf.QoE.StartupDelay)
	}
}

func TestRunMeanFrequencyOrdering(t *testing.T) {
	freqs := make(map[GovernorID]float64)
	for _, gov := range []GovernorID{GovPerformance, GovPowersave, GovEnergyAware} {
		cfg := DefaultRunConfig()
		cfg.Governor = gov
		freqs[gov] = mustRun(t, cfg).MeanFreqGHz
	}
	if !(freqs["powersave"] < freqs["energyaware"] && freqs["energyaware"] < freqs["performance"]) {
		t.Fatalf("mean frequency ordering wrong: %v", freqs)
	}
}

func TestRunPredictorStatsPresentOnlyForEnergyAware(t *testing.T) {
	cfg := DefaultRunConfig()
	res := mustRun(t, cfg)
	if res.Pred == nil || res.Pred.N == 0 {
		t.Fatal("energy-aware run should report predictor stats")
	}
	if res.Pred.UnderRate() > 0.2 {
		t.Fatalf("predictor under-rate %.2f too high", res.Pred.UnderRate())
	}
	cfg.Governor = "ondemand"
	if mustRun(t, cfg).Pred != nil {
		t.Fatal("baseline run should not report predictor stats")
	}
}

func TestRunFastDormancySavesRadioEnergy(t *testing.T) {
	base := DefaultRunConfig()
	base.Duration = 120 * sim.Second
	base.LowWaterSec = 10
	rrcStd := netsim.DefaultUMTS()
	base.RRC = &rrcStd
	std := mustRun(t, base)

	fd := base
	rrcFD := netsim.DefaultUMTS()
	rrcFD.FastDormancy = true
	fd.RRC = &rrcFD
	fast := mustRun(t, fd)

	if fast.RadioJ >= std.RadioJ {
		t.Fatalf("fast dormancy radio %.1f J should undercut tails %.1f J", fast.RadioJ, std.RadioJ)
	}
	if fast.RadioResidency[netsim.StateIdle] <= std.RadioResidency[netsim.StateIdle] {
		t.Fatal("fast dormancy should increase IDLE residency")
	}
}

func TestRunBurstPrefetchOpensRadioGaps(t *testing.T) {
	trickle := DefaultRunConfig()
	trickle.Duration = 120 * sim.Second
	rrc := netsim.DefaultUMTS()
	trickle.RRC = &rrc
	tr := mustRun(t, trickle)

	burst := trickle
	burst.LowWaterSec = 10
	br := mustRun(t, burst)

	if br.RadioResidency[netsim.StateDCH] >= tr.RadioResidency[netsim.StateDCH] {
		t.Fatalf("burst prefetch DCH %.1f s should undercut trickle %.1f s",
			br.RadioResidency[netsim.StateDCH].Seconds(), tr.RadioResidency[netsim.StateDCH].Seconds())
	}
}

func TestRunABRAndNetworks(t *testing.T) {
	for _, net := range NetKinds() {
		cfg := DefaultRunConfig()
		cfg.Net = net
		cfg.ABR = "bba"
		cfg.Duration = 30 * sim.Second
		if net == NetTrace {
			// The trace backend needs sample data; the post-recording
			// tail (last rate holds) carries the run past 1 s of trace.
			cfg.BWTrace = &netsim.Trace{Samples: []netsim.TraceSample{
				{Start: 0, End: 0.5, Bytes: 500_000, Fetch: 0},
				{Start: 0.7, End: 1.0, Bytes: 200_000, Fetch: 1},
			}}
		}
		res := mustRun(t, cfg)
		if res.QoE.TotalFrames == 0 {
			t.Fatalf("%s: no frames", net)
		}
		if res.QoE.MeanRungBps <= 0 && res.QoE.Completed {
			t.Fatalf("%s: no bitrate recorded", net)
		}
	}
}

func TestRunValidation(t *testing.T) {
	bad := DefaultRunConfig()
	bad.Duration = 0
	if _, err := Run(bad); err == nil {
		t.Error("want error for zero duration")
	}
	bad = DefaultRunConfig()
	bad.Governor = "warpdrive"
	if _, err := Run(bad); err == nil {
		t.Error("want error for unknown governor")
	}
	bad = DefaultRunConfig()
	bad.Net = "carrier-pigeon"
	if _, err := Run(bad); err == nil {
		t.Error("want error for unknown network")
	}
	bad = DefaultRunConfig()
	bad.ABR = "mpc"
	if _, err := Run(bad); err == nil {
		t.Error("want error for unknown ABR")
	}
}

func TestRunHorizonExceeded(t *testing.T) {
	cfg := DefaultRunConfig()
	// The base case needs ≈61 virtual seconds; a 10 s horizon cuts the
	// session off mid-stream.
	cfg.Horizon = 10 * sim.Second
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("want ErrHorizonExceeded for a 10 s horizon on a 60 s session")
	}
	if !errors.Is(err, ErrHorizonExceeded) {
		t.Fatalf("want ErrHorizonExceeded, got %v", err)
	}
	// The message names the progress at cutoff so starved sweeps are
	// debuggable from logs alone.
	if !containsStr(err.Error(), "frames") {
		t.Fatalf("horizon error should report frame progress: %v", err)
	}

	// A generous explicit horizon behaves exactly like the default.
	cfg.Horizon = 10 * sim.Minute
	res := mustRun(t, cfg)
	if !res.QoE.Completed {
		t.Fatal("session should complete under a generous horizon")
	}
	if res.SimEnd >= cfg.Horizon {
		t.Fatalf("completed run should stop before the horizon, ended at %v", res.SimEnd)
	}
}

func TestRunDefaultsFillZeroFields(t *testing.T) {
	cfg := RunConfig{Governor: "ondemand", Duration: 10 * sim.Second, Net: NetWiFi, Background: false}
	res := mustRun(t, cfg)
	if !res.QoE.Completed {
		t.Fatal("defaults-filled run did not complete")
	}
}

func TestAllExperimentsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid is a long test")
	}
	for _, id := range IDs() {
		b, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := b()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		if tab.ID != id {
			t.Fatalf("%s: table reports ID %s", id, tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s: row width %d != header %d", id, len(row), len(tab.Header))
			}
		}
		if tab.Format() == "" {
			t.Fatalf("%s: empty formatting", id)
		}
	}
}

func TestGetUnknownExperiment(t *testing.T) {
	if _, err := Get("f99"); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestIDsStableOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != 30 {
		t.Fatalf("got %d experiments, want 30", len(ids))
	}
	if ids[0] != "t1" || ids[len(ids)-1] != "t9" {
		t.Fatalf("order wrong: %v", ids)
	}
}

func TestTableFormatAligned(t *testing.T) {
	tab := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "long_column"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:  "note text",
	}
	out := tab.Format()
	if out == "" {
		t.Fatal("empty output")
	}
	for _, want := range []string{"== X: demo ==", "long_column", "note: note text"} {
		if !containsStr(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexStr(haystack, needle) >= 0
}

func indexStr(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

func TestHeadlineGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is a long test")
	}
	eg, dg, err := runGrid([]GovernorID{GovEnergyAware}, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	e, d := eg["energyaware"], dg["energyaware"]
	// Energy must rise with resolution; drops ≈ 0 everywhere.
	order := []string{"360p", "480p", "720p", "1080p"}
	for i := 1; i < len(order); i++ {
		if e[order[i]] <= e[order[i-1]] {
			t.Fatalf("energy not increasing with resolution: %v", e)
		}
	}
	for _, res := range order {
		if d[res] > 0.01 {
			t.Fatalf("energy-aware drop rate %.3f at %s", d[res], res)
		}
	}
	_ = video.Resolutions()
}

func TestTableRenderFormats(t *testing.T) {
	tab := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "with,comma"}, {"q\"uote", "3"}},
		Notes:  "n",
	}
	md, err := tab.Render("markdown")
	if err != nil || !containsStr(md, "| a | b |") || !containsStr(md, "> n") {
		t.Fatalf("markdown render broken: %v\n%s", err, md)
	}
	csv, err := tab.Render("csv")
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(csv, `"with,comma"`) || !containsStr(csv, `"q""uote"`) {
		t.Fatalf("csv quoting broken:\n%s", csv)
	}
	if _, err := tab.Render("yaml"); err == nil {
		t.Fatal("want error for unknown format")
	}
	text, err := tab.Render("")
	if err != nil || text != tab.Format() {
		t.Fatal("default render should be text")
	}
}
