package experiments

import (
	"fmt"

	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
)

// TableT9 evaluates rate-prediction-aware prefetch on a fading link: the
// predictive scheduler (DESIGN.md §15) races segment bursts into
// predicted good-channel windows and defers through predicted fades the
// buffer can ride out, instead of blindly firing at the low-water mark.
// The comparison runs reactive vs. oracle vs. noisy forecasts across
// governors, so the table pins both the radio-side win (DCH residency
// and radio energy drop at iso-rebuffer) and the graceful degradation of
// imperfect predictions toward the reactive baseline.
func TableT9() (Table, error) {
	t := Table{
		ID:     "t9",
		Title:  "Predictive prefetch (720p@30, LTE fading link, 120 s): forecast quality × governor",
		Header: []string{"governor", "forecast", "dch_s", "idle_s", "radio_j", "rebuffers", "rebuf_s", "cpu_j"},
		Notes:  "racing bursts into predicted good-channel windows shortens DCH holds and radio energy at iso-rebuffer; noisy forecasts degrade gracefully toward the reactive trigger",
	}
	type variant struct {
		label  string
		kind   ForecastKind
		relErr float64
	}
	variants := []variant{
		{"reactive", ForecastNone, 0},
		{"oracle", ForecastOracle, 0},
		{"noisy(15%)", ForecastNoisy, 0.15},
		{"noisy(60%)", ForecastNoisy, 0.60},
	}
	var cfgs []RunConfig
	var labels []string
	for _, gov := range []GovernorID{GovOndemand, GovEnergyAware} {
		for _, v := range variants {
			cfg := DefaultRunConfig()
			cfg.Governor = gov
			cfg.Net = NetLTE
			cfg.Duration = 120 * sim.Second
			// Burst prefetch with a 10 s hysteresis band: the reactive
			// baseline fires blindly at low water, the forecast-armed
			// runs reschedule the same bursts inside the lookahead.
			cfg.LowWaterSec = 10
			cfg.Forecast = v.kind
			if v.kind != ForecastNone {
				cfg.ForecastLookahead = 20 * sim.Second
			}
			cfg.ForecastRelErr = v.relErr
			cfgs = append(cfgs, cfg)
			labels = append(labels, v.label)
		}
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("t9: %w", err)
	}
	for i, res := range results {
		t.Rows = append(t.Rows, []string{
			string(cfgs[i].Governor), labels[i],
			f1(res.RadioResidency[netsim.StateDCH].Seconds()),
			f1(res.RadioResidency[netsim.StateIdle].Seconds()),
			f1(res.RadioJ),
			iv(res.QoE.RebufferCount), f2c(res.QoE.RebufferTime.Seconds()),
			f1(res.CPUJ),
		})
	}
	return t, nil
}
