package experiments

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// FigF14 reproduces Figure 14 (extension): sustained 1080p playback under
// a realistic thermal envelope. Utilization-reactive governors push the
// die past the trip and get power-budget throttled; the energy-aware
// policy runs cool enough to stay out of the throttle region entirely.
func FigF14() (Table, error) {
	t := Table{
		ID:     "f14",
		Title:  "Thermal envelope (1080p sports, 300 s, trip 62 °C): heat and throttling by governor",
		Header: []string{"governor", "mean_w", "max_temp_c", "throttle_events", "throttled_s", "drops", "cpu_j"},
		Notes:  "running near the sustained decode rate keeps the die below the trip; reactive governors spend much of a long session throttled",
	}
	base := DefaultRunConfig()
	base.Rung = video.R1080p
	base.Duration = 300 * sim.Second
	th := cpu.DefaultThermalConfig()
	th.TripC = 62 // tight flagship skin budget: sustained 1080p is marginal
	base.Thermal = &th
	cfgs := Sweep{Base: base, Governors: []GovernorID{GovPerformance, GovOndemand, GovInteractive, GovSchedutil, GovEnergyAware}}.Expand()
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f14: %w", err)
	}
	for i, res := range results {
		meanW := 0.0
		if res.SimEnd > 0 {
			meanW = res.CPUJ / res.SimEnd.Seconds()
		}
		t.Rows = append(t.Rows, []string{
			string(cfgs[i].Governor), f2c(meanW), f1(res.MaxTempC), iv(res.ThrottleEvents),
			f1(res.ThrottledS), iv(res.QoE.DroppedFrames), f1(res.CPUJ),
		})
	}
	return t, nil
}

// TableT4 reproduces Table 4 (extension): streaming battery life per
// policy — hours of 720p LTE playback from a 3000 mAh / 3.8 V battery,
// derived from the whole-device mean power of a 120 s session.
func TableT4() (Table, error) {
	const batteryWh = 3.0 * 3.8 // 3000 mAh at 3.8 V nominal
	t := Table{
		ID:     "t4",
		Title:  "Streaming hours per charge (3000 mAh, 720p over LTE with BBA)",
		Header: []string{"governor", "cpu_w", "radio_w", "display_w", "device_w", "hours", "vs_ondemand"},
		Notes:  "whole-device battery life improves ≈10–20%: the CPU is one of three major consumers",
	}
	baseCfg := DefaultRunConfig()
	baseCfg.Net = NetLTE
	baseCfg.ABR = "bba"
	baseCfg.Duration = 120 * sim.Second
	cfgs := Sweep{Base: baseCfg, Governors: []GovernorID{GovPerformance, GovOndemand, GovInteractive, GovEnergyAware, GovOracle}}.Expand()
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("t4: %w", err)
	}
	var baseHours float64
	type row struct {
		gov   GovernorID
		w     [4]float64
		hours float64
	}
	var rows []row
	for i, res := range results {
		gov := cfgs[i].Governor
		sec := res.SimEnd.Seconds()
		cpuW := res.CPUJ / sec
		radioW := res.RadioJ / sec
		dispW := res.DisplayJ / sec
		devW := cpuW + radioW + dispW
		hours := batteryWh / devW
		rows = append(rows, row{gov, [4]float64{cpuW, radioW, dispW, devW}, hours})
		if gov == "ondemand" {
			baseHours = hours
		}
	}
	for _, r := range rows {
		gain := "-"
		if baseHours > 0 {
			gain = pct((r.hours - baseHours) / baseHours)
		}
		t.Rows = append(t.Rows, []string{
			string(r.gov), f2c(r.w[0]), f2c(r.w[1]), f2c(r.w[2]), f2c(r.w[3]),
			f2c(r.hours), gain,
		})
	}
	return t, nil
}
