package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"videodvfs/internal/sim"
)

// CanonicalConfig serializes every result-determining field of cfg into a
// deterministic byte string, the preimage of the result cache's
// content-addressed key. Two configs produce the same bytes iff Run would
// produce the same result for both, so canonical bytes — not Go equality —
// define cache identity.
//
// The encoding rules (DESIGN.md §9):
//
//   - one "key=value\n" line per field, in RunConfig declaration order;
//   - floats (and sim.Time, as seconds) use strconv 'g'/-1/64 — the
//     shortest round-trip form, matching the trace sinks — so equal
//     float64 values always encode identically;
//   - bools encode as 0/1, enums as their integer value;
//   - composite fields (Device, Policy, RRC, Thermal) are expanded
//     in-line field by field: the device is identified by its full OPP
//     table, not its name, so a custom model never collides with a
//     built-in one sharing the name;
//   - nil-able fields encode the empty string when unset, so "unset" and
//     any set value never collide.
//
// The second return is false when the config is uncacheable: a frame
// Trace (content not worth hashing frame-by-frame), an OnSample callback,
// a Tracer, or a Cancel channel make the run's observable behavior depend
// on state outside the config. Strict runs are also uncacheable by
// design: the point of ?strict=1 is to re-execute and re-audit the
// simulation — a cache hit would return a result no checker ever rode
// along on (DESIGN.md §10).
func CanonicalConfig(cfg RunConfig) ([]byte, bool) {
	if cfg.Trace != nil || cfg.OnSample != nil || cfg.Tracer != nil || cfg.Strict || cfg.Cancel != nil {
		return nil, false
	}
	b := make([]byte, 0, 512)
	field := func(key string) { b = append(append(b, key...), '=') }
	end := func() { b = append(b, '\n') }
	str := func(key, v string) { field(key); b = append(b, v...); end() }
	flt := func(key string, v float64) {
		field(key)
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
		end()
	}
	dur := func(key string, v sim.Time) { flt(key, v.Seconds()) }
	num := func(key string, v int64) { field(key); b = strconv.AppendInt(b, v, 10); end() }
	boo := func(key string, v bool) {
		n := int64(0)
		if v {
			n = 1
		}
		num(key, n)
	}

	str("device.name", cfg.Device.Name)
	dur("device.latency", cfg.Device.TransitionLatency)
	num("device.opps", int64(len(cfg.Device.OPPs)))
	for i, o := range cfg.Device.OPPs {
		p := "device.opp" + strconv.Itoa(i)
		flt(p+".freq", o.FreqHz)
		flt(p+".volt", o.VoltageV)
		flt(p+".active", o.ActiveW)
		flt(p+".idle", o.IdleW)
	}
	str("governor", string(cfg.Governor))
	flt("policy.margin", cfg.Policy.Margin)
	flt("policy.sigmak", cfg.Policy.SigmaK)
	flt("policy.alpha", cfg.Policy.Alpha)
	num("policy.predictor", int64(cfg.Policy.Predictor))
	dur("policy.guard", cfg.Policy.Guard)
	flt("policy.targetqueue", cfg.Policy.TargetQueueFrac)
	flt("policy.sprint", cfg.Policy.SprintFrames)
	boo("policy.racetoidle", cfg.Policy.RaceToIdle)
	boo("policy.startupboost", cfg.Policy.StartupBoost)
	num("policy.minopp", int64(cfg.Policy.MinOPP))
	str("title.name", cfg.Title.Name)
	flt("title.complexity", cfg.Title.Complexity)
	dur("title.scenedur", cfg.Title.SceneMeanDur)
	flt("title.scenecv", cfg.Title.SceneCV)
	str("rung.name", cfg.Rung.Name)
	num("rung.w", int64(cfg.Rung.Width))
	num("rung.h", int64(cfg.Rung.Height))
	str("abr", string(cfg.ABR))
	str("net", string(cfg.Net))
	// A recorded bandwidth trace IS config, unlike a frame Trace: it is
	// small (one sample per transfer chunk), fully determines replay, and
	// hashing it keeps trace-backed runs cacheable — the fleet shards
	// them by this key like any other config.
	if cfg.BWTrace == nil {
		str("bwtrace", "")
	} else {
		num("bwtrace.samples", int64(len(cfg.BWTrace.Samples)))
		for i, s := range cfg.BWTrace.Samples {
			p := "bwtrace." + strconv.Itoa(i)
			dur(p+".t0", s.Start)
			dur(p+".t1", s.End)
			flt(p+".bytes", s.Bytes)
			num(p+".fetch", int64(s.Fetch))
		}
	}
	if cfg.RRC == nil {
		str("rrc", "")
	} else {
		flt("rrc.idlew", cfg.RRC.IdleW)
		flt("rrc.fachw", cfg.RRC.FACHW)
		flt("rrc.dchw", cfg.RRC.DCHW)
		flt("rrc.txw", cfg.RRC.TxExtraW)
		dur("rrc.t1", cfg.RRC.T1)
		dur("rrc.t2", cfg.RRC.T2)
		dur("rrc.promoidle", cfg.RRC.PromoIdle)
		dur("rrc.promofach", cfg.RRC.PromoFACH)
		boo("rrc.fastdormancy", cfg.RRC.FastDormancy)
	}
	dur("duration", cfg.Duration)
	num("seed", cfg.Seed)
	num("bgseed", cfg.BGSeed)
	num("decodedqueuecap", int64(cfg.DecodedQueueCap))
	flt("lowwatersec", cfg.LowWaterSec)
	if cfg.Thermal == nil {
		str("thermal", "")
	} else {
		flt("thermal.ambient", cfg.Thermal.AmbientC)
		flt("thermal.rth", cfg.Thermal.RthCPerW)
		dur("thermal.tau", cfg.Thermal.Tau)
		flt("thermal.trip", cfg.Thermal.TripC)
		flt("thermal.hyst", cfg.Thermal.HystC)
		dur("thermal.sample", cfg.Thermal.Sample)
		flt("thermal.initial", cfg.Thermal.InitialC)
	}
	boo("cstates", cfg.CStates)
	str("codec", cfg.Codec)
	boo("lowlatency", cfg.LowLatency)
	dur("segmentdur", cfg.SegmentDur)
	boo("background", cfg.Background)
	dur("horizon", cfg.Horizon)
	flt("fps", cfg.FPS)
	// The noisy forecast is seeded and keyed per piece, so forecast-armed
	// runs — noisy included — are deterministic functions of these fields
	// and stay cacheable.
	str("forecast", string(cfg.Forecast))
	dur("forecast.lookahead", cfg.ForecastLookahead)
	flt("forecast.relerr", cfg.ForecastRelErr)
	num("forecast.seed", cfg.ForecastSeed)
	return b, true
}

// ConfigKey returns the hex SHA-256 of cfg's canonical serialization —
// the content-addressed identity a result cache stores runs under. The
// second return is false for uncacheable configs (see CanonicalConfig).
func ConfigKey(cfg RunConfig) (string, bool) {
	b, ok := CanonicalConfig(cfg)
	if !ok {
		return "", false
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), true
}
