package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"videodvfs/internal/abr"
	"videodvfs/internal/core"
	"videodvfs/internal/cpu"
	"videodvfs/internal/energy"
	"videodvfs/internal/governor"
	"videodvfs/internal/invariant"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// Session is a reusable simulation arena: one full simulator instance —
// engine event slab, CPU core with its job pools, radio, downloader,
// player, energy meter, background load generator, and the energy-aware
// governor — whose parts are rewound in place by Reset instead of being
// reconstructed per run. Stream and bandwidth tables are shared immutably
// across resets (and across arenas, via the package caches).
//
// A Session is single-goroutine: drive it with Reset+Finish or RunInto.
// The package-level Run draws Sessions from an internal pool, so campaign
// workers and dvfsd recycle arenas without holding one explicitly.
//
// Determinism: a reset arena replays the exact construction order of a
// fresh run — component wiring, event scheduling, and RNG derivation — so
// results and traces are byte-identical to a fresh simulator's. The
// differential tests in reset_test.go pin that equivalence across the whole
// experiment registry, including cross-config recycling.
type Session struct {
	eng   *sim.Engine
	meter *energy.Meter

	core  *cpu.Core
	radio *netsim.Radio
	dl    *netsim.Downloader
	ps    *player.Session
	ea    *core.Governor
	bg    *cpu.LoadGen
	bgRNG *sim.RNG
	batch *trace.Batcher

	// Pre-bound untraced power listeners and the session-done callback:
	// constructed once so the reset path re-registers closures without
	// allocating them.
	cpuPowerFn   func(now sim.Time, watts float64)
	radioPowerFn func(now sim.Time, watts float64)
	stopFn       func()

	bgActive   bool
	probe      *sim.Ticker
	cancelTick *sim.Ticker

	// Arena-local memos for the package caches: sync.Map lookups box
	// their struct keys (an allocation per call), so same-config reruns
	// short-circuit here.
	lastBWNet   NetKind
	lastBWDur   sim.Time
	lastBWSeed  int64
	lastBW      netsim.Bandwidth
	lastRRC     netsim.RRCConfig
	lastRendKey streamKey
	lastRends   []*video.Stream
	traceRends  []*video.Stream

	run runState
}

// runState is the per-run wiring established by Reset and consumed by
// Finish.
type runState struct {
	cfg        RunConfig // defaults applied
	gov        governor.Governor
	eaGov      *core.Governor
	chk        *invariant.Checker
	tr         trace.Tracer
	batch      *trace.Batcher
	closeTrace func() error
	closed     bool
	thermal    *cpu.Thermal
	horizon    sim.Time
	armed      bool
	canceled   bool
}

// NewSession returns an empty arena. The simulator parts are built on the
// first Reset (they need a config) and recycled by every later one.
func NewSession() *Session {
	s := &Session{}
	s.eng = sim.NewEngine()
	s.meter = energy.NewMeter(s.eng)
	s.cpuPowerFn = s.meter.Listener(energy.ComponentCPU)
	s.radioPowerFn = s.meter.Listener(energy.ComponentRadio)
	s.stopFn = func() {
		if s.bgActive {
			s.bg.Stop()
		}
		if s.probe != nil {
			s.probe.Stop()
		}
		if s.cancelTick != nil {
			s.cancelTick.Stop()
		}
		s.eng.Stop()
	}
	return s
}

// sessionPool recycles arenas across Run calls.
var sessionPool = sync.Pool{New: func() any { return NewSession() }}

// sessionReuseOff disables the arena pool when set (fresh Session per Run).
// Inverted so the zero value means "reuse on".
var sessionReuseOff atomic.Bool

// SetSessionReuse toggles arena recycling in Run and returns the previous
// setting. Reuse is on by default; the differential tests switch it off to
// produce fresh-simulator references.
func SetSessionReuse(on bool) (prev bool) {
	return !sessionReuseOff.Swap(!on)
}

// RunInto executes one simulation in this arena, writing the outcome into
// res. Maps and slices already present in res are reused (cleared and
// refilled), so a caller recycling both the Session and the RunResult runs
// allocation-free after warm-up. On error res is left in an unspecified
// state.
func (s *Session) RunInto(cfg RunConfig, res *RunResult) error {
	if err := s.Reset(cfg); err != nil {
		return err
	}
	return s.Finish(res)
}

// Reset rewinds the arena and wires it for cfg, exactly as a fresh
// simulator construction would: same component order, same event-schedule
// order, same RNG derivations. It validates cfg, applies defaults, and
// leaves the arena armed; Finish drives the run to completion. A Reset
// invalidates everything scheduled by the previous run — including one cut
// short by an error or horizon — via the engine's generation bump.
func (s *Session) Reset(cfg RunConfig) (err error) {
	if cfg.Trace != nil && cfg.Duration <= 0 {
		cfg.Duration = cfg.Trace.Duration()
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Device.Name == "" {
		cfg.Device = cpu.DeviceFlagship()
	}
	if cfg.Title.Name == "" {
		cfg.Title = video.TitleSports
	}
	if cfg.Rung.Name == "" {
		cfg.Rung = video.R720p
	}
	if s.run.armed {
		// A previous Reset was abandoned without Finish: tear down its
		// per-run wiring (thermal sampler, trace sink) before rearming.
		s.release()
	}
	s.run = runState{cfg: cfg}
	defer func() {
		if err != nil {
			s.release()
		}
	}()

	tr := cfg.Tracer
	if tr == nil {
		if f := currentTraceFactory(); f != nil {
			tr, s.run.closeTrace = f(cfg)
		}
	}
	s.run.chk = buildChecker(cfg)
	if s.run.chk != nil {
		// The checker rides first in the tee; it only observes, so every
		// downstream tracer sees the identical stream.
		if tr == nil {
			tr = s.run.chk
		} else {
			tr = trace.Tee{s.run.chk, tr}
		}
	}
	if tr != nil {
		// Batch tracer emission: hot-path emits append into typed slices,
		// the downstream chain (checker → sink) runs in flushes. The
		// batcher preserves exact event order, so output is unchanged.
		if s.batch == nil {
			s.batch = trace.NewBatcher(tr)
		} else {
			s.batch.SetOutput(tr)
		}
		s.run.batch = s.batch
		tr = s.batch
	}
	s.run.tr = tr

	s.eng.Reset()
	s.meter.Reset()
	s.probe = nil
	s.cancelTick = nil
	s.bgActive = false

	if s.core == nil {
		s.core, err = cpu.NewCore(s.eng, cfg.Device)
		if err != nil {
			return err
		}
	} else if err := s.core.Reset(cfg.Device); err != nil {
		return err
	}
	if cfg.CStates {
		if err := s.core.EnableCStates(cpu.DefaultCStates()); err != nil {
			return err
		}
	}
	if tr != nil {
		s.core.SetTracer(tr)
	}
	if tr != nil {
		s.core.OnPower(tracedListener(s.meter, energy.ComponentCPU, tr))
	} else {
		s.core.OnPower(s.cpuPowerFn)
	}

	gov, hooks, eaGov, err := s.governorFor(cfg, tr)
	if err != nil {
		return err
	}
	if err := gov.Attach(s.eng, s.core); err != nil {
		return err
	}
	s.run.gov = gov
	s.run.eaGov = eaGov

	bw, rrcCfg, err := s.bandwidthFor(cfg)
	if err != nil {
		return err
	}
	if s.radio == nil {
		s.radio, err = netsim.NewRadio(s.eng, rrcCfg)
		if err != nil {
			return err
		}
	} else if err := s.radio.Reset(rrcCfg); err != nil {
		return err
	}
	if tr != nil {
		s.radio.SetTracer(tr)
	}
	if tr != nil {
		s.radio.OnPower(tracedListener(s.meter, energy.ComponentRadio, tr))
	} else {
		s.radio.OnPower(s.radioPowerFn)
	}

	if s.dl == nil {
		s.dl, err = netsim.NewDownloader(s.eng, bw, s.radio, s.core, netsim.DefaultDownloaderConfig())
		if err != nil {
			return err
		}
	} else if err := s.dl.Reset(bw, netsim.DefaultDownloaderConfig()); err != nil {
		return err
	}

	if cfg.Thermal != nil {
		s.run.thermal, err = cpu.StartThermal(s.eng, s.core, *cfg.Thermal)
		if err != nil {
			return err
		}
	}

	if cfg.Background {
		bgSeed := cfg.Seed
		if cfg.BGSeed != 0 {
			bgSeed = cfg.BGSeed
		}
		if s.bg == nil {
			s.bgRNG = sim.Stream(bgSeed, "bgload")
			s.bg, err = cpu.StartLoadGen(s.eng, s.core, s.bgRNG, cpu.DefaultLoadGenConfig())
			if err != nil {
				return err
			}
		} else {
			// Reseeding reproduces the exact stream a fresh
			// sim.Stream(seed, "bgload") would draw.
			s.bgRNG.Reseed(sim.ChildSeed(bgSeed, "bgload"))
			if err := s.bg.Restart(cpu.DefaultLoadGenConfig()); err != nil {
				return err
			}
		}
		s.bgActive = true
	}

	renditions, algo, err := s.renditionsFor(cfg)
	if err != nil {
		return err
	}

	pcfg := player.DefaultConfig()
	if cfg.SegmentDur > 0 {
		pcfg.SegmentDur = cfg.SegmentDur
	}
	pcfg.ABR = algo
	pcfg.Hooks = hooks
	pcfg.Meter = s.meter
	pcfg.Tracer = tr
	if cfg.LowLatency {
		pcfg.StartupSec = 1
		pcfg.ResumeSec = 0.5
		pcfg.MaxBufferSec = 4
		pcfg.DecodedQueueCap = 3
	}
	if cfg.DecodedQueueCap > 0 {
		pcfg.DecodedQueueCap = cfg.DecodedQueueCap
	}
	pcfg.LowWaterSec = cfg.LowWaterSec
	fc, err := buildForecast(cfg, bw)
	if err != nil {
		return err
	}
	pcfg.Forecast = fc
	if s.ps == nil {
		s.ps, err = player.NewSession(s.eng, s.core, s.dl, renditions, pcfg)
		if err != nil {
			return err
		}
	} else if err := s.ps.Reset(renditions, pcfg); err != nil {
		return err
	}

	if cfg.OnSample != nil {
		onSample := cfg.OnSample
		s.probe = sim.NewTicker(s.eng, 100*sim.Millisecond, func(now sim.Time) {
			onSample(now, s.core.FreqHz()/1e9, s.core.Power(), s.ps.BufferSec())
		})
	}
	if cfg.Cancel != nil {
		// Poll the cancel channel at OnSample cadence: virtual time only
		// advances while the simulation is computing, so an abandoned run
		// observes the closed channel within one event batch of wall time
		// and stops instead of simulating on to the horizon.
		cancel := cfg.Cancel
		s.cancelTick = sim.NewTicker(s.eng, 100*sim.Millisecond, func(now sim.Time) {
			select {
			case <-cancel:
				s.run.canceled = true
				s.eng.Stop()
			default:
			}
		})
	}
	s.ps.OnDone(s.stopFn)

	s.run.horizon = cfg.Duration*6 + 60*sim.Second
	if cfg.Horizon > 0 {
		s.run.horizon = cfg.Horizon
	}
	s.run.armed = true
	return nil
}

// Finish drives an armed arena to completion and collects the outcome into
// res, reusing res's maps and slices when present.
func (s *Session) Finish(res *RunResult) error {
	if !s.run.armed {
		return fmt.Errorf("experiments: session not armed; call Reset first")
	}
	s.run.armed = false
	cfg := s.run.cfg
	defer s.release()

	s.ps.Start()
	end := s.eng.RunUntil(s.run.horizon)
	s.meter.Finish()
	if s.run.batch != nil {
		s.run.batch.Flush()
	}

	if s.run.closeTrace != nil {
		s.run.closed = true
		if cerr := s.run.closeTrace(); cerr != nil {
			return fmt.Errorf("experiments: trace sink: %w", cerr)
		}
	}

	if s.run.canceled {
		return fmt.Errorf("experiments: %w at %v", ErrCanceled, s.eng.Now())
	}
	if err := s.ps.Err(); err != nil {
		return fmt.Errorf("experiments: session: %w", err)
	}
	p := resultParts{
		cfg:     cfg,
		gov:     s.run.gov,
		eaGov:   s.run.eaGov,
		eng:     s.eng,
		meter:   s.meter,
		core:    s.core,
		radio:   s.radio,
		dl:      s.dl,
		ps:      s.ps,
		thermal: s.run.thermal,
	}
	if err := finalizeChecker(s.run.chk, p); err != nil {
		return err
	}
	if m := s.ps.Metrics(); !m.Completed && end >= s.run.horizon {
		return fmt.Errorf("experiments: %w: session at %d/%d frames when the %v horizon hit",
			ErrHorizonExceeded, m.DisplayedFrames+m.DroppedFrames, m.TotalFrames, s.run.horizon)
	}
	if s.dl.Err() != nil {
		return fmt.Errorf("experiments: downloader: %w", s.dl.Err())
	}
	if s.bgActive && s.bg.Err() != nil {
		return fmt.Errorf("experiments: background load: %w", s.bg.Err())
	}

	collectResult(p, res)
	return nil
}

// resultParts is the component set a finished run's outcome is read from.
// Session.Finish and cohort viewers both fill one, so single-run and
// cohort results are assembled by the identical code path — the N=1
// cohort ≡ Run equivalence holds by construction, not by parallel
// maintenance of two collectors.
type resultParts struct {
	cfg     RunConfig // defaults applied
	gov     governor.Governor
	eaGov   *core.Governor
	eng     *sim.Engine
	meter   *energy.Meter
	core    *cpu.Core
	radio   *netsim.Radio
	dl      *netsim.Downloader
	ps      *player.Session
	thermal *cpu.Thermal
}

// finalizeChecker closes out an armed invariant checker against the
// run's final ground truth; a nil checker is a no-op. Any violation is
// returned wrapped exactly as strict Run reports it.
func finalizeChecker(chk *invariant.Checker, p resultParts) error {
	if chk == nil {
		return nil
	}
	m := p.ps.Metrics()
	counts := p.ps.Decoder().Counts()
	rrcRes := make(map[string]sim.Time, 4)
	for state, d := range p.radio.Residency() {
		rrcRes[state.String()] = d
	}
	if v := chk.Finalize(invariant.Final{
		End:           p.eng.Now(),
		CPUJ:          p.meter.ComponentJ(energy.ComponentCPU),
		RadioJ:        p.meter.ComponentJ(energy.ComponentRadio),
		DisplayJ:      p.meter.ComponentJ(energy.ComponentDisplay),
		FreqResidency: p.core.FreqResidency(),
		RRCResidency:  rrcRes,
		IdleResidency: p.core.IdleStateResidency(),
		Displayed:     m.DisplayedFrames,
		Dropped:       m.DroppedFrames,
		Total:         m.TotalFrames,
		Decoded:       counts.Decoded,
		Discarded:     counts.Discarded,
		ReadyLeft:     p.ps.Decoder().ReadyLen(),
		Completed:     m.Completed,
	}); v != nil {
		return fmt.Errorf("experiments: strict: %w", v)
	}
	return nil
}

// collectResult gathers a finished simulation's outcome into res, reusing
// res's maps and slices when present.
func collectResult(p resultParts, res *RunResult) {
	res.Governor = p.gov.Name()
	res.CPUJ = p.meter.ComponentJ(energy.ComponentCPU)
	res.RadioJ = p.meter.ComponentJ(energy.ComponentRadio)
	res.DisplayJ = p.meter.ComponentJ(energy.ComponentDisplay)
	res.QoE = p.ps.Metrics()
	if res.FreqResidency == nil {
		res.FreqResidency = make(map[int]sim.Time, len(p.cfg.Device.OPPs))
	}
	p.core.FreqResidencyInto(res.FreqResidency)
	if res.RadioResidency == nil {
		res.RadioResidency = make(map[netsim.RRCState]sim.Time, 4)
	}
	p.radio.ResidencyInto(res.RadioResidency)
	res.RadioPromotions = p.radio.Promotions()
	res.Fetches = p.dl.Fetches()
	res.SimEnd = p.eng.Now()
	res.MeanFreqGHz = meanFreqGHz(p.cfg.Device, res.FreqResidency)
	if p.cfg.CStates {
		if res.IdleResidency == nil {
			res.IdleResidency = make(map[string]sim.Time, 4)
		}
		p.core.IdleStateResidencyInto(res.IdleResidency)
	} else {
		// A nil map, not an emptied one: it must compare equal to a fresh
		// run's result, which never allocates the map without C-states.
		res.IdleResidency = nil
	}
	res.OPPTransitions = p.core.Transitions()
	res.MaxTempC, res.ThrottleEvents, res.ThrottledS = 0, 0, 0
	if p.thermal != nil {
		res.MaxTempC = p.thermal.MaxTempC()
		res.ThrottleEvents = p.thermal.ThrottleEvents()
		res.ThrottledS = p.thermal.ThrottledTime().Seconds()
	}
	if p.eaGov != nil {
		// Copy the stats out: the governor's RelErr backing array is
		// recycled by the next Reset, so the result must own its slice.
		st := p.eaGov.PredStats()
		if res.Pred == nil {
			res.Pred = new(core.PredictionStats)
		}
		res.Pred.N = st.N
		res.Pred.Underestimates = st.Underestimates
		res.Pred.RelErr = append(res.Pred.RelErr[:0], st.RelErr...)
	} else {
		res.Pred = nil
	}
}

// release tears down the per-run wiring: thermal sampler, governor ticker,
// and (on error paths) the trace sink, after a best-effort flush.
func (s *Session) release() {
	if s.run.batch != nil && s.run.closeTrace != nil && !s.run.closed {
		s.run.batch.Flush()
	}
	if s.run.closeTrace != nil && !s.run.closed {
		s.run.closeTrace() // error path: best-effort flush
	}
	if s.run.thermal != nil {
		s.run.thermal.Stop()
	}
	if s.run.gov != nil {
		s.run.gov.Detach()
	}
	s.run = runState{}
}

// governorFor resolves the run's governor, recycling the arena's
// energy-aware instance (predictor state and decision tables rewound in
// place); the oracle and the stock baselines are constructed fresh — they
// are allocation-light and keep per-run sampling state.
func (s *Session) governorFor(cfg RunConfig, tr trace.Tracer) (governor.Governor, player.SessionHooks, *core.Governor, error) {
	if cfg.Governor != GovEnergyAware {
		return buildGovernor(cfg, tr)
	}
	pol := cfg.Policy
	if pol == (core.Config{}) {
		pol = core.DefaultConfig()
	}
	if s.ea == nil {
		g, err := core.New(pol)
		if err != nil {
			return nil, nil, nil, err
		}
		s.ea = g
	} else if err := s.ea.Reset(pol); err != nil {
		return nil, nil, nil, err
	}
	if tr != nil {
		s.ea.SetTracer(tr)
	}
	return s.ea, s.ea, s.ea, nil
}

// bandwidthFor resolves the run's bandwidth model and RRC profile through
// the arena-local memo, falling back to the package caches.
func (s *Session) bandwidthFor(cfg RunConfig) (netsim.Bandwidth, netsim.RRCConfig, error) {
	// Trace-backed runs bypass the memo: its (net, duration, seed) key
	// cannot tell two different recorded traces apart, and the trace is
	// the caller's — nothing to generate or cache.
	if cfg.Net == NetTrace {
		return buildBandwidth(cfg)
	}
	if s.lastBW != nil && cfg.Net == s.lastBWNet && cfg.Duration == s.lastBWDur && cfg.Seed == s.lastBWSeed {
		rrc := s.lastRRC
		if cfg.RRC != nil {
			rrc = *cfg.RRC
		}
		return s.lastBW, rrc, nil
	}
	bw, rrc, err := buildBandwidthBase(cfg)
	if err != nil {
		return nil, rrc, err
	}
	s.lastBWNet, s.lastBWDur, s.lastBWSeed = cfg.Net, cfg.Duration, cfg.Seed
	s.lastBW, s.lastRRC = bw, rrc
	if cfg.RRC != nil {
		rrc = *cfg.RRC
	}
	return bw, rrc, nil
}

// renditionsFor resolves the run's rendition set through the arena-local
// memo (fixed-rung runs only; ladder runs keep a fresh stateful ABR
// instance and hit the package cache for their streams).
func (s *Session) renditionsFor(cfg RunConfig) ([]*video.Stream, abr.Algorithm, error) {
	if cfg.Trace != nil {
		if len(cfg.Trace.Frames) == 0 {
			return nil, nil, fmt.Errorf("experiments: empty frame trace")
		}
		if s.traceRends == nil {
			s.traceRends = make([]*video.Stream, 1)
		}
		s.traceRends[0] = cfg.Trace
		return s.traceRends, abrFixed0, nil
	}
	switch cfg.ABR {
	case "", ABRFixed:
		fps := cfg.FPS
		if fps == 0 {
			fps = 30
		}
		key := streamKey{
			title: cfg.Title,
			rung:  cfg.Rung,
			codec: cfg.Codec,
			fps:   fps,
			dur:   cfg.Duration,
			seed:  cfg.Seed,
		}
		if s.lastRends != nil && key == s.lastRendKey {
			return s.lastRends, abrFixed0, nil
		}
		streams, algo, err := buildRenditions(cfg)
		if err != nil {
			return nil, nil, err
		}
		s.lastRendKey, s.lastRends = key, streams
		return streams, algo, nil
	default:
		return buildRenditions(cfg)
	}
}
