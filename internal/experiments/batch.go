package experiments

import (
	"fmt"

	"videodvfs/internal/campaign"
	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/stats"
	"videodvfs/internal/video"
)

// Outcome pairs one RunConfig with its result or error in a batch.
type Outcome struct {
	// Index is the config's position in the input slice.
	Index int
	// Config is the config that ran.
	Config RunConfig
	// Result is the run's outcome (zero when Err is set).
	Result RunResult
	// Err is the run's error; a panicking run surfaces a
	// *campaign.PanicError.
	Err error
}

// RunAll executes cfgs across a worker pool and returns outcomes in input
// order. workers ≤ 0 means GOMAXPROCS. Each run builds its own engine and
// derives all randomness from its seed, so results are bit-identical for
// any worker count; a failing or panicking run marks only its own slot.
func RunAll(cfgs []RunConfig, workers int) []Outcome {
	return RunAllObserved(cfgs, workers, nil)
}

// RunAllObserved is RunAll with a progress observer attached.
func RunAllObserved(cfgs []RunConfig, workers int, obs campaign.Observer) []Outcome {
	jobs := make([]campaign.Job[RunResult], len(cfgs))
	for i, cfg := range cfgs {
		cfg := cfg
		jobs[i] = func() (RunResult, error) { return Run(cfg) }
	}
	raw := campaign.Do(jobs, campaign.Options[RunResult]{
		Workers:  workers,
		Observer: obs,
		Virtual:  func(r RunResult) sim.Time { return r.SimEnd },
	})
	outs := make([]Outcome, len(raw))
	for i, o := range raw {
		outs[i] = Outcome{Index: i, Config: cfgs[i], Result: o.Value, Err: o.Err}
	}
	return outs
}

// runAllStrict batches cfgs across GOMAXPROCS workers and returns results
// in input order, failing on the first per-run error. It is the builders'
// workhorse: table code assembles its config grid, fans it out here, and
// formats rows from the ordered results.
func runAllStrict(cfgs []RunConfig) ([]RunResult, error) {
	outs := RunAll(cfgs, 0)
	res := make([]RunResult, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, fmt.Errorf("run %d (%s/%s/%s/%s seed %d): %w",
				i, o.Config.Governor, o.Config.Rung.Name, o.Config.Title.Name, o.Config.Net, o.Config.Seed, o.Err)
		}
		res[i] = o.Result
	}
	return res, nil
}

// Sweep expands a template config over axis lists and a seed set. Axes
// left nil keep the template's value; the expansion is the cross product
// in declaration order (governor-major, seed-minor), so the result order
// is deterministic and independent of the worker count that later runs
// it.
type Sweep struct {
	// Base is the config template every point starts from.
	Base RunConfig
	// Governors is the governor axis (nil = Base.Governor only).
	Governors []GovernorID
	// Nets is the network axis (nil = Base.Net only).
	Nets []NetKind
	// Devices is the device axis (nil = Base.Device only).
	Devices []cpu.Model
	// Titles is the content axis (nil = Base.Title only).
	Titles []video.Title
	// Rungs is the resolution axis (nil = Base.Rung only).
	Rungs []video.Resolution
	// Seeds is the seed axis (nil = Base.Seed only).
	Seeds []int64
}

// SeedRange returns the seeds lo..hi inclusive.
func SeedRange(lo, hi int64) []int64 {
	if hi < lo {
		return nil
	}
	out := make([]int64, 0, hi-lo+1)
	for s := lo; s <= hi; s++ {
		out = append(out, s)
	}
	return out
}

// Expand returns every point of the sweep as a concrete RunConfig.
func (s Sweep) Expand() []RunConfig {
	govs := s.Governors
	if len(govs) == 0 {
		govs = []GovernorID{s.Base.Governor}
	}
	nets := s.Nets
	if len(nets) == 0 {
		nets = []NetKind{s.Base.Net}
	}
	devs := s.Devices
	if len(devs) == 0 {
		devs = []cpu.Model{s.Base.Device}
	}
	titles := s.Titles
	if len(titles) == 0 {
		titles = []video.Title{s.Base.Title}
	}
	rungs := s.Rungs
	if len(rungs) == 0 {
		rungs = []video.Resolution{s.Base.Rung}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{s.Base.Seed}
	}
	out := make([]RunConfig, 0, len(govs)*len(nets)*len(devs)*len(titles)*len(rungs)*len(seeds))
	for _, gov := range govs {
		for _, net := range nets {
			for _, dev := range devs {
				for _, title := range titles {
					for _, rung := range rungs {
						for _, seed := range seeds {
							cfg := s.Base
							cfg.Governor = gov
							cfg.Net = net
							cfg.Device = dev
							cfg.Title = title
							cfg.Rung = rung
							cfg.Seed = seed
							out = append(out, cfg)
						}
					}
				}
			}
		}
	}
	return out
}

// Run expands the sweep and executes it through the campaign pool.
func (s Sweep) Run(workers int) []Outcome {
	return RunAll(s.Expand(), workers)
}

// AxisStat aggregates one metric over every successful run sharing one
// axis value.
type AxisStat struct {
	// Axis names the swept dimension ("governor", "net", "device",
	// "title", "rung", "seed").
	Axis string
	// Value is the axis value the runs share.
	Value string
	// N counts the successful runs aggregated.
	N int
	// Mean, Std, Min, Max summarize the metric over those runs.
	Mean, Std, Min, Max float64
}

// Aggregate folds outcomes into per-axis-value statistics of metric.
// Only axes the sweep actually varies (≥2 values) produce rows; rows
// follow axis declaration order, then the axis list's order. Failed runs
// are skipped.
func (s Sweep) Aggregate(outs []Outcome, metric func(RunResult) float64) []AxisStat {
	type axis struct {
		name   string
		values []string
		of     func(RunConfig) string
	}
	axes := []axis{
		{"governor", strSlice(s.Governors, func(g GovernorID) string { return string(g) }),
			func(c RunConfig) string { return string(c.Governor) }},
		{"net", strSlice(s.Nets, func(n NetKind) string { return string(n) }),
			func(c RunConfig) string { return string(c.Net) }},
		{"device", strSlice(s.Devices, func(d cpu.Model) string { return d.Name }),
			func(c RunConfig) string { return c.Device.Name }},
		{"title", strSlice(s.Titles, func(t video.Title) string { return t.Name }),
			func(c RunConfig) string { return c.Title.Name }},
		{"rung", strSlice(s.Rungs, func(r video.Resolution) string { return r.Name }),
			func(c RunConfig) string { return c.Rung.Name }},
		{"seed", strSlice(s.Seeds, func(s int64) string { return fmt.Sprintf("%d", s) }),
			func(c RunConfig) string { return fmt.Sprintf("%d", c.Seed) }},
	}
	var rows []AxisStat
	for _, ax := range axes {
		if len(ax.values) < 2 {
			continue
		}
		acc := make(map[string]*stats.Online, len(ax.values))
		for _, v := range ax.values {
			acc[v] = &stats.Online{}
		}
		for _, o := range outs {
			if o.Err != nil {
				continue
			}
			if online, ok := acc[ax.of(o.Config)]; ok {
				online.Add(metric(o.Result))
			}
		}
		for _, v := range ax.values {
			online := acc[v]
			rows = append(rows, AxisStat{
				Axis: ax.name, Value: v, N: online.N(),
				Mean: online.Mean(), Std: online.Std(),
				Min: online.Min(), Max: online.Max(),
			})
		}
	}
	return rows
}

// strSlice maps a typed axis list to its string labels.
func strSlice[T any](in []T, label func(T) string) []string {
	out := make([]string, len(in))
	for i, v := range in {
		out[i] = label(v)
	}
	return out
}
