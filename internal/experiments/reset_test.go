package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// runFresh executes cfg on a brand-new arena — the reference simulator.
func runFresh(t *testing.T, cfg RunConfig) RunResult {
	t.Helper()
	var res RunResult
	if err := NewSession().RunInto(cfg, &res); err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	return res
}

// resetConfigs is the cross-config recycling gauntlet: consecutive entries
// differ in governor, network, device, codec, C-states, thermal model,
// latency mode, ABR, frame rate, and RRC override, so a single arena must
// rewind every component across maximally dissimilar runs.
func resetConfigs() []RunConfig {
	base := func() RunConfig {
		cfg := DefaultRunConfig()
		cfg.Duration = 8 * sim.Second
		cfg.Strict = true
		return cfg
	}
	fd := netsim.DefaultUMTS()
	fd.FastDormancy = true
	thermal := cpu.DefaultThermalConfig()

	cfgs := make([]RunConfig, 0, 12)

	cfg := base()
	cfgs = append(cfgs, cfg) // energyaware / const8 / flagship

	cfg = base()
	cfg.Governor = GovOndemand
	cfg.Net = NetLTE
	cfg.Device = cpu.DeviceMidrange()
	cfg.Seed = 7
	cfgs = append(cfgs, cfg)

	cfg = base()
	cfg.Governor = GovOracle
	cfg.CStates = true
	cfg.Codec = "hevc"
	cfgs = append(cfgs, cfg)

	cfg = base()
	cfg.Governor = GovPerformance
	cfg.Net = NetUMTS
	cfg.RRC = &fd
	cfg.Rung = video.R360p
	cfg.Duration = 6 * sim.Second
	cfgs = append(cfgs, cfg)

	cfg = base()
	cfg.ABR = ABRRate
	cfg.Net = NetLTE
	cfg.Title = video.TitleNews
	cfg.Seed = 3
	cfgs = append(cfgs, cfg)

	cfg = base()
	cfg.LowLatency = true
	cfg.FPS = 60
	cfg.Device = cpu.DeviceEfficient()
	cfg.Rung = video.R480p
	cfgs = append(cfgs, cfg)

	cfg = base()
	cfg.Thermal = &thermal
	cfg.Governor = GovSchedutil
	cfg.Rung = video.R1080p
	cfg.Net = NetWiFi
	cfgs = append(cfgs, cfg)

	cfg = base()
	cfg.ABR = ABRBBA
	cfg.Net = NetUMTS
	cfg.SegmentDur = 4 * sim.Second
	cfg.LowWaterSec = 3
	cfg.Background = false
	cfgs = append(cfgs, cfg)

	cfg = base()
	cfg.Governor = GovConservative
	cfg.DecodedQueueCap = 4
	cfg.CStates = true
	cfg.Seed = 11
	cfgs = append(cfgs, cfg)

	// Close the loop on the default shape so the arena ends where it
	// began after visiting every variant.
	cfgs = append(cfgs, base())
	return cfgs
}

// TestSessionResetDifferential is the differential battery's core: one
// arena recycled across maximally dissimilar configs must reproduce, for
// every config, the exact result of a fresh simulator — reflect.DeepEqual
// on the full RunResult and byte-identical JSONL traces — with the
// invariant checker armed on every run (Strict in each config).
func TestSessionResetDifferential(t *testing.T) {
	arena := NewSession()
	for i, cfg := range resetConfigs() {
		var freshBuf, recycledBuf bytes.Buffer

		fcfg := cfg
		fsink := trace.NewJSONL(&freshBuf)
		fcfg.Tracer = fsink
		want := runFresh(t, fcfg)
		if err := fsink.Close(); err != nil {
			t.Fatal(err)
		}

		rcfg := cfg
		rsink := trace.NewJSONL(&recycledBuf)
		rcfg.Tracer = rsink
		var got RunResult
		if err := arena.RunInto(rcfg, &got); err != nil {
			t.Fatalf("config %d: recycled run: %v", i, err)
		}
		if err := rsink.Close(); err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(want, got) {
			t.Errorf("config %d (%s/%s): recycled result diverges from fresh\nfresh:    %+v\nrecycled: %+v",
				i, cfg.Governor, cfg.Net, want, got)
		}
		if !bytes.Equal(freshBuf.Bytes(), recycledBuf.Bytes()) {
			t.Errorf("config %d (%s/%s): recycled JSONL trace diverges from fresh (%d vs %d bytes)",
				i, cfg.Governor, cfg.Net, freshBuf.Len(), recycledBuf.Len())
		}
	}
}

// TestSessionResetSameConfigRepeat pins the tightest reuse contract: the
// same config rerun on one arena is bit-identical run after run (the
// dvfsd/campaign steady state), including the recycled-result-struct path.
func TestSessionResetSameConfigRepeat(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Duration = 8 * sim.Second
	cfg.Strict = true
	want := runFresh(t, cfg)

	arena := NewSession()
	var got RunResult
	for i := 0; i < 3; i++ {
		if err := arena.RunInto(cfg, &got); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("iteration %d diverges from fresh\nfresh: %+v\ngot:   %+v", i, want, got)
		}
	}
}

// TestSessionResetAfterError checks that an arena poisoned by a failed run
// (horizon cut mid-stream) recycles cleanly: the next run on the same
// arena matches a fresh simulator exactly.
func TestSessionResetAfterError(t *testing.T) {
	arena := NewSession()

	bad := DefaultRunConfig()
	bad.Duration = 8 * sim.Second
	bad.Horizon = 2 * sim.Second // guaranteed mid-run cut
	var res RunResult
	if err := arena.RunInto(bad, &res); err == nil {
		t.Fatal("horizon-cut run unexpectedly succeeded")
	}

	good := DefaultRunConfig()
	good.Duration = 8 * sim.Second
	good.Strict = true
	want := runFresh(t, good)
	var got RunResult
	if err := arena.RunInto(good, &got); err != nil {
		t.Fatalf("run after failed run: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("arena poisoned by failed run\nfresh: %+v\ngot:   %+v", want, got)
	}
}

// TestDifferentialRegistry runs the entire 29-entry experiment registry
// twice — once with arena recycling disabled (every Run constructs a fresh
// simulator) and once through the default recycled pool — and requires
// byte-identical formatted tables. This is the broadest net: every device,
// governor, network, codec, thermal, idle, SMP, and cluster configuration
// the evaluation exercises must survive session recycling, with the
// invariant checker armed process-wide.
func TestDifferentialRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry differential is not a -short test")
	}
	defer SetStrictDefault(SetStrictDefault(true))

	for _, id := range IDs() {
		builder, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}

		prev := SetSessionReuse(false)
		freshTab, freshErr := builder()
		SetSessionReuse(prev)
		if freshErr != nil {
			t.Fatalf("%s (fresh sessions): %v", id, freshErr)
		}

		recycledTab, err := builder()
		if err != nil {
			t.Fatalf("%s (recycled sessions): %v", id, err)
		}

		if fresh, recycled := freshTab.Format(), recycledTab.Format(); fresh != recycled {
			t.Errorf("%s: recycled-session table diverges from fresh\n--- fresh ---\n%s\n--- recycled ---\n%s",
				id, fresh, recycled)
		}
	}
}
