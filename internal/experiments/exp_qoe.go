package experiments

import (
	"fmt"

	"videodvfs/internal/sim"
)

// qoeGovernors is the policy set for the QoE table.
func qoeGovernors() []GovernorID {
	return []GovernorID{GovPerformance, GovOndemand, GovInteractive, GovEnergyAware, GovOracle}
}

// TableT2 reproduces Table 2: the QoE summary per policy on a variable
// LTE link with buffer-based ABR.
func TableT2() (Table, error) {
	t := Table{
		ID:     "t2",
		Title:  "QoE summary per policy (LTE Markov trace, BBA ABR, 120 s sports)",
		Header: []string{"governor", "startup_s", "rebuffers", "rebuf_s", "drops", "mean_mbps", "switches", "cpu_j"},
		Notes:  "the energy-aware policy matches performance on every QoE column while cutting CPU energy",
	}
	base := DefaultRunConfig()
	base.Net = NetLTE
	base.ABR = "bba"
	base.Duration = 120 * sim.Second
	cfgs := Sweep{Base: base, Governors: qoeGovernors()}.Expand()
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("t2: %w", err)
	}
	for i, res := range results {
		q := res.QoE
		t.Rows = append(t.Rows, []string{
			string(cfgs[i].Governor),
			f2c(q.StartupDelay.Seconds()),
			iv(q.RebufferCount),
			f2c(q.RebufferTime.Seconds()),
			iv(q.DroppedFrames),
			f2c(q.MeanRungBps / 1e6),
			iv(q.RungSwitches),
			f1(res.CPUJ),
		})
	}
	return t, nil
}

// FigF13 reproduces Figure 13: ABR × governor interaction on the LTE
// trace.
func FigF13() (Table, error) {
	t := Table{
		ID:     "f13",
		Title:  "ABR interaction (LTE trace, 120 s): energy and QoE by ABR × governor",
		Header: []string{"abr", "governor", "cpu_j", "mean_mbps", "rebuf_s", "drops"},
		Notes:  "savings hold under every ABR; BBA + energy-aware gives the best joint energy/QoE",
	}
	var cfgs []RunConfig
	for _, abrName := range []ABRID{ABRRate, ABRBBA} {
		for _, gov := range []GovernorID{GovOndemand, GovInteractive, GovEnergyAware} {
			cfg := DefaultRunConfig()
			cfg.Governor = gov
			cfg.Net = NetLTE
			cfg.ABR = abrName
			cfg.Duration = 120 * sim.Second
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f13: %w", err)
	}
	for i, res := range results {
		t.Rows = append(t.Rows, []string{
			string(cfgs[i].ABR), string(cfgs[i].Governor), f1(res.CPUJ),
			f2c(res.QoE.MeanRungBps / 1e6),
			f2c(res.QoE.RebufferTime.Seconds()),
			iv(res.QoE.DroppedFrames),
		})
	}
	return t, nil
}
