package experiments

import (
	"fmt"

	"videodvfs/internal/sim"
)

// qoeGovernors is the policy set for the QoE table.
func qoeGovernors() []string {
	return []string{"performance", "ondemand", "interactive", "energyaware", "oracle"}
}

// TableT2 reproduces Table 2: the QoE summary per policy on a variable
// LTE link with buffer-based ABR.
func TableT2() (Table, error) {
	t := Table{
		ID:     "t2",
		Title:  "QoE summary per policy (LTE Markov trace, BBA ABR, 120 s sports)",
		Header: []string{"governor", "startup_s", "rebuffers", "rebuf_s", "drops", "mean_mbps", "switches", "cpu_j"},
		Notes:  "the energy-aware policy matches performance on every QoE column while cutting CPU energy",
	}
	for _, gov := range qoeGovernors() {
		cfg := DefaultRunConfig()
		cfg.Governor = gov
		cfg.Net = NetLTE
		cfg.ABR = "bba"
		cfg.Duration = 120 * sim.Second
		res, err := Run(cfg)
		if err != nil {
			return Table{}, fmt.Errorf("t2 %s: %w", gov, err)
		}
		q := res.QoE
		t.Rows = append(t.Rows, []string{
			gov,
			f2c(q.StartupDelay.Seconds()),
			iv(q.RebufferCount),
			f2c(q.RebufferTime.Seconds()),
			iv(q.DroppedFrames),
			f2c(q.MeanRungBps / 1e6),
			iv(q.RungSwitches),
			f1(res.CPUJ),
		})
	}
	return t, nil
}

// FigF13 reproduces Figure 13: ABR × governor interaction on the LTE
// trace.
func FigF13() (Table, error) {
	t := Table{
		ID:     "f13",
		Title:  "ABR interaction (LTE trace, 120 s): energy and QoE by ABR × governor",
		Header: []string{"abr", "governor", "cpu_j", "mean_mbps", "rebuf_s", "drops"},
		Notes:  "savings hold under every ABR; BBA + energy-aware gives the best joint energy/QoE",
	}
	for _, abrName := range []string{"rate", "bba"} {
		for _, gov := range []string{"ondemand", "interactive", "energyaware"} {
			cfg := DefaultRunConfig()
			cfg.Governor = gov
			cfg.Net = NetLTE
			cfg.ABR = abrName
			cfg.Duration = 120 * sim.Second
			res, err := Run(cfg)
			if err != nil {
				return Table{}, fmt.Errorf("f13 %s/%s: %w", abrName, gov, err)
			}
			t.Rows = append(t.Rows, []string{
				abrName, gov, f1(res.CPUJ),
				f2c(res.QoE.MeanRungBps / 1e6),
				f2c(res.QoE.RebufferTime.Seconds()),
				iv(res.QoE.DroppedFrames),
			})
		}
	}
	return t, nil
}
