package experiments

import (
	"errors"
	"reflect"
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/invariant"
	"videodvfs/internal/sim"
)

// fuzzResetVariants is the config palette the reset fuzzer draws from:
// short runs spanning the governors, networks, idle model, thermal model,
// and adaptation paths, all with the invariant checker armed.
func fuzzResetVariants() []RunConfig {
	thermal := cpu.DefaultThermalConfig()
	base := func() RunConfig {
		cfg := DefaultRunConfig()
		cfg.Duration = 3 * sim.Second
		cfg.Strict = true
		return cfg
	}
	v0 := base()
	v1 := base()
	v1.Governor = GovOndemand
	v1.Net = NetLTE
	v1.Device = cpu.DeviceMidrange()
	v2 := base()
	v2.CStates = true
	v2.Codec = "hevc"
	v3 := base()
	v3.Governor = GovOracle
	v3.ABR = ABRBBA
	v3.Net = NetUMTS
	v4 := base()
	v4.Thermal = &thermal
	v4.LowLatency = true
	v4.Device = cpu.DeviceEfficient()
	v5 := base()
	v5.Governor = GovSchedutil
	v5.Net = NetWiFi
	v5.Seed = 5
	return []RunConfig{v0, v1, v2, v3, v4, v5}
}

// FuzzSessionReset interleaves arena recycling with mid-run cancellation:
// one Session is driven through a fuzzed script of full runs, horizon-cut
// runs (the event loop dies mid-stream, leaving live slab handles behind),
// and abandoned Resets (armed but never finished). The properties: no
// panic, no invariant violation, and every FULL run on the battered arena
// still reproduces a fresh simulator's result exactly — i.e. stale event
// handles from a cancelled run are dead after Reset (generation bump), not
// use-after-reset hazards.
func FuzzSessionReset(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0x10, 0x21, 0x32, 0x43, 0x54, 0x05})          // cut every variant, then full run
	f.Add([]byte{0x20, 0x20, 0x00})                            // abandon, abandon, run
	f.Add([]byte{0x13, 0x03, 0x13, 0x03})                      // alternate cut/full on one config
	f.Add([]byte{0x35, 0x24, 0x13, 0x02, 0x11, 0x30, 0x00})    // all modes mixed
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 12 {
			script = script[:12] // bound per-case work
		}
		variants := fuzzResetVariants()
		arena := NewSession()
		var got RunResult
		for step, b := range script {
			cfg := variants[int(b&0x0f)%len(variants)]
			switch mode := (b >> 4) & 0x03; mode {
			case 1:
				// Mid-run cancellation: a horizon far short of the content
				// cuts the event loop with frames in flight.
				cfg.Horizon = cfg.Duration / 8
				err := arena.RunInto(cfg, &got)
				if err == nil {
					t.Fatalf("step %d: horizon-cut run succeeded", step)
				}
				var v *invariant.Violation
				if errors.As(err, &v) {
					t.Fatalf("step %d: invariant violated on cut run: %v", step, v)
				}
				if !errors.Is(err, ErrHorizonExceeded) {
					t.Fatalf("step %d: cut run failed with %v, want ErrHorizonExceeded", step, err)
				}
			case 2:
				// Abandoned arming: Reset wires the arena, then the caller
				// walks away; the next Reset must tear it down cleanly.
				if err := arena.Reset(cfg); err != nil {
					t.Fatalf("step %d: abandoned Reset: %v", step, err)
				}
			default:
				// Full run on the battered arena, differentially checked
				// against a fresh simulator.
				if err := arena.RunInto(cfg, &got); err != nil {
					t.Fatalf("step %d: recycled run: %v (config %+v)", step, err, cfg)
				}
				var want RunResult
				if err := NewSession().RunInto(cfg, &want); err != nil {
					t.Fatalf("step %d: fresh reference run: %v", step, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("step %d: recycled result diverges from fresh\nfresh:    %+v\nrecycled: %+v",
						step, want, got)
				}
			}
		}
	})
}
