package experiments

import "fmt"

// FigF20 reproduces Figure 20 (extension): DVFS-switch overhead
// sensitivity. A per-frame policy is often suspected of excessive
// frequency switching, so the figure counts switches and charges each a
// hypothetical energy cost. The suspicion is unfounded twice over: the
// queue-setpoint rule is *more* stable than ondemand's oscillation, and
// even a 1 mJ/switch cost (50–1000× published PLL/voltage-ramp figures)
// leaves the policy far ahead.
func FigF20() (Table, error) {
	t := Table{
		ID:     "f20",
		Title:  "DVFS-switch overhead sensitivity (720p@30, 60 s): energy including a per-switch cost",
		Header: []string{"governor", "switches", "sw_per_s", "cpu_j", "+10uJ/sw", "+100uJ/sw", "+1mJ/sw"},
		Notes:  "the per-frame policy switches less than ondemand (its setpoint rule is stable where ondemand oscillates); even a 1 mJ/switch cost leaves it far ahead",
	}
	cfgs := Sweep{Base: DefaultRunConfig(), Governors: []GovernorID{GovOndemand, GovInteractive, GovSchedutil, GovEnergyAware, GovOracle}}.Expand()
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f20: %w", err)
	}
	for i, res := range results {
		n := float64(res.OPPTransitions)
		t.Rows = append(t.Rows, []string{
			string(cfgs[i].Governor),
			iv(res.OPPTransitions),
			f1(n / res.SimEnd.Seconds()),
			f1(res.CPUJ),
			f1(res.CPUJ + n*10e-6),
			f1(res.CPUJ + n*100e-6),
			f1(res.CPUJ + n*1e-3),
		})
	}
	return t, nil
}
