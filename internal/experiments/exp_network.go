package experiments

import (
	"bytes"
	_ "embed"
	"fmt"
	"sync"

	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
)

// FigF10 reproduces Figure 10: the policy's savings across network
// conditions.
func FigF10() (Table, error) {
	t := Table{
		ID:     "f10",
		Title:  "Network variability (720p@30, 120 s): energy and stalls by network × governor",
		Header: []string{"network", "governor", "cpu_j", "radio_j", "rebuffers", "rebuf_s", "drops"},
		Notes:  "CPU savings persist on every link; stalls track the network, not the governor",
	}
	var cfgs []RunConfig
	for _, net := range SyntheticNetKinds() {
		for _, gov := range []GovernorID{GovOndemand, GovEnergyAware} {
			cfg := DefaultRunConfig()
			cfg.Governor = gov
			cfg.Net = net
			cfg.Duration = 120 * sim.Second
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f10: %w", err)
	}
	for i, res := range results {
		cfg := cfgs[i]
		t.Rows = append(t.Rows, []string{
			string(cfg.Net), string(cfg.Governor), f1(res.CPUJ), f1(res.RadioJ),
			iv(res.QoE.RebufferCount), f2c(res.QoE.RebufferTime.Seconds()),
			iv(res.QoE.DroppedFrames),
		})
	}
	return t, nil
}

// FigF11 reproduces Figure 11: whole-device energy breakdown per policy.
func FigF11() (Table, error) {
	t := Table{
		ID:     "f11",
		Title:  "Whole-device energy breakdown (720p, LTE trace, 120 s)",
		Header: []string{"governor", "cpu_j", "radio_j", "display_j", "total_j", "total_vs_ondemand"},
		Notes:  "CPU is a third to a half of device energy during streaming; whole-device savings land ≈10–20%",
	}
	baseCfg := DefaultRunConfig()
	baseCfg.Net = NetLTE
	baseCfg.Duration = 120 * sim.Second
	cfgs := Sweep{Base: baseCfg, Governors: []GovernorID{GovPerformance, GovOndemand, GovInteractive, GovEnergyAware, GovOracle}}.Expand()
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f11: %w", err)
	}
	var base float64
	for i, res := range results {
		if cfgs[i].Governor == "ondemand" {
			base = res.TotalJ()
		}
	}
	for i, res := range results {
		saving := "-"
		if base > 0 {
			saving = pct((base - res.TotalJ()) / base)
		}
		t.Rows = append(t.Rows, []string{
			string(cfgs[i].Governor), f1(res.CPUJ), f1(res.RadioJ), f1(res.DisplayJ),
			f1(res.TotalJ()), saving,
		})
	}
	return t, nil
}

// TableT3 reproduces Table 3: radio-resource coordination — DCH hold
// time, radio energy, and the M/G/N cell-capacity gain from fast dormancy
// between segment bursts.
func TableT3() (Table, error) {
	t := Table{
		ID:     "t3",
		Title:  "Radio coordination (720p, 8 Mbps HSPA, 180 s): prefetch policy × dormancy",
		Header: []string{"prefetch", "dormancy", "dch_s", "fach_s", "idle_s", "radio_j", "promos", "dch_s_per_min", "cell_users"},
		Notes:  "burst prefetching opens inter-burst gaps the tail timers (and especially fast dormancy) convert into IDLE time: radio energy drops and M/G/N cell capacity rises",
	}
	type variant struct {
		prefetch string
		lowWater float64
		fd       bool
	}
	variants := []variant{
		{"trickle", 0, false},
		{"trickle", 0, true},
		{"burst(10s)", 10, false},
		{"burst(10s)", 10, true},
	}
	cfgs := make([]RunConfig, 0, len(variants))
	for _, v := range variants {
		cfg := DefaultRunConfig()
		cfg.Net = NetConst8
		cfg.Duration = 180 * sim.Second
		cfg.LowWaterSec = v.lowWater
		rrc := netsim.DefaultUMTS()
		rrc.FastDormancy = v.fd
		cfg.RRC = &rrc
		cfgs = append(cfgs, cfg)
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("t3: %w", err)
	}
	for i, res := range results {
		v := variants[i]
		dormancy := "tails(4s+15s)"
		if v.fd {
			dormancy = "fast"
		}
		dch := res.RadioResidency[netsim.StateDCH].Seconds()
		playMin := res.SimEnd.Seconds() / 60
		holdPerMin := 0.0
		if playMin > 0 {
			holdPerMin = dch / playMin
		}
		users := "-"
		// Each user holds a channel pair for holdPerMin seconds per
		// minute of streaming, arriving as one session per minute in the
		// M/G/N model; 64 channel pairs, 2% blocking target.
		if holdPerMin > 0 {
			if k, err := netsim.CapacityUsers(1.0/60, holdPerMin, 64, 0.02); err == nil {
				users = iv(k)
			}
		}
		t.Rows = append(t.Rows, []string{
			v.prefetch, dormancy,
			f1(dch),
			f1(res.RadioResidency[netsim.StateFACH].Seconds()),
			f1(res.RadioResidency[netsim.StateIdle].Seconds()),
			f1(res.RadioJ),
			iv(res.RadioPromotions),
			f1(holdPerMin),
			users,
		})
	}
	return t, nil
}

// refBWTrace is a reference bandwidth trace recorded by the dvfsstress
// player-driver against a shaped loopback origin (12 Mbit/s ON-OFF,
// 200/300 ms cycle): 15 segment fetches of 720p sports content over real
// sockets, in the canonical JSONL form. Checked in so t8 replays the
// same wire-level timing forever.
//
//go:embed testdata/ref_bwtrace.jsonl
var refBWTraceJSONL []byte

var refBWTraceOnce = sync.OnceValues(func() (netsim.Trace, error) {
	return netsim.ReadTrace(bytes.NewReader(refBWTraceJSONL))
})

// TableT8 extends the evaluation to recorded real-network conditions:
// governor comparison over a trace captured from live HTTP delivery
// (the dvfsstress pair), replayed bit-exactly by the trace backend.
func TableT8() (Table, error) {
	t := Table{
		ID:     "t8",
		Title:  "Recorded-trace replay (720p@30, 30 s, 12 Mbps ON-OFF capture): energy and QoE by governor",
		Header: []string{"governor", "cpu_j", "radio_j", "total_j", "startup_s", "rebuffers", "drops"},
		Notes:  "the sim-to-real loop closed: a trace recorded over real sockets drives the same governor ranking as the synthetic links",
	}
	tr, err := refBWTraceOnce()
	if err != nil {
		return Table{}, fmt.Errorf("t8: reference trace: %w", err)
	}
	govs := []GovernorID{GovPerformance, GovOndemand, GovEnergyAware, GovOracle}
	cfgs := make([]RunConfig, 0, len(govs))
	for _, gov := range govs {
		cfg := DefaultRunConfig()
		cfg.Governor = gov
		cfg.Net = NetTrace
		cfg.BWTrace = &tr
		cfg.Duration = 30 * sim.Second
		cfgs = append(cfgs, cfg)
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("t8: %w", err)
	}
	for i, res := range results {
		t.Rows = append(t.Rows, []string{
			string(cfgs[i].Governor), f1(res.CPUJ), f1(res.RadioJ), f1(res.TotalJ()),
			f2c(res.QoE.StartupDelay.Seconds()), iv(res.QoE.RebufferCount),
			iv(res.QoE.DroppedFrames),
		})
	}
	return t, nil
}
