package experiments

import (
	"fmt"

	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
)

// TableT6 reproduces Table 6 (extension): the segment-duration trade.
// The instructive negative result: under continuous (trickle) delivery the
// per-segment gaps never outlast the RRC tails, so radio energy is flat in
// segment duration — consolidation must come from burst prefetching (T3).
// What segment duration does change is ABR agility: long segments commit
// to a rate for longer and stall when the LTE trace dips.
func TableT6() (Table, error) {
	t := Table{
		ID:     "t6",
		Title:  "Segment duration trade (720p, LTE trace, BBA, 120 s)",
		Header: []string{"segment_s", "fetches", "radio_j", "dch_s", "switches", "rebuf_s", "mean_mbps"},
		Notes:  "radio energy is flat: trickle gaps never outlast the tails (radio savings need burst prefetch, see t3); long segments trade ABR agility away and stall on trace dips",
	}
	segDurs := []sim.Time{1 * sim.Second, 2 * sim.Second, 4 * sim.Second, 6 * sim.Second}
	cfgs := make([]RunConfig, len(segDurs))
	for i, segDur := range segDurs {
		cfgs[i] = DefaultRunConfig()
		cfgs[i].Net = NetLTE
		cfgs[i].ABR = "bba"
		cfgs[i].Duration = 120 * sim.Second
		cfgs[i].SegmentDur = segDur
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("t6: %w", err)
	}
	for i, res := range results {
		t.Rows = append(t.Rows, []string{
			f1(segDurs[i].Seconds()),
			iv(res.Fetches),
			f1(res.RadioJ),
			f1(res.RadioResidency[netsim.StateDCH].Seconds()),
			iv(res.QoE.RungSwitches),
			f2c(res.QoE.RebufferTime.Seconds()),
			f2c(res.QoE.MeanRungBps / 1e6),
		})
	}
	return t, nil
}
