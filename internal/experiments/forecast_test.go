package experiments

import (
	"errors"
	"reflect"
	"testing"

	"videodvfs/internal/sim"
)

// TestRunForecastArmedButEqual pins the reactive-identity contract at the
// Run level: on a constant link the oracle forecast has nothing to
// exploit, so the armed run must reproduce the reactive run exactly —
// same energies, same QoE, same radio residency, same fetch count.
func TestRunForecastArmedButEqual(t *testing.T) {
	base := DefaultRunConfig()
	base.Net = NetConst8
	base.Duration = 60 * sim.Second
	base.LowWaterSec = 10

	reactive, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	armed := base
	armed.Forecast = ForecastOracle
	predictive, err := Run(armed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reactive, predictive) {
		t.Fatalf("oracle over a constant link diverged from reactive:\nreactive   %+v\npredictive %+v",
			reactive, predictive)
	}
}

// TestRunForecastChangesScheduleOnFadingLink guards against the forecast
// axis silently not being wired through: on a fading link the predictive
// scheduler must actually change the radio timeline.
func TestRunForecastChangesScheduleOnFadingLink(t *testing.T) {
	base := DefaultRunConfig()
	base.Net = NetLTE
	base.Duration = 60 * sim.Second
	base.LowWaterSec = 10

	reactive, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	armed := base
	armed.Forecast = ForecastOracle
	predictive, err := Run(armed)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(reactive.RadioResidency, predictive.RadioResidency) {
		t.Fatalf("oracle on a fading link left the radio timeline untouched: %+v",
			reactive.RadioResidency)
	}
}

// TestRunConfigForecastValidation pins the config-level contract for the
// forecast axis.
func TestRunConfigForecastValidation(t *testing.T) {
	cases := map[string]func(*RunConfig){
		"unknown kind":         func(c *RunConfig) { c.Forecast = "psychic" },
		"no low water":         func(c *RunConfig) { c.Forecast = ForecastOracle; c.LowWaterSec = 0 },
		"params without kind":  func(c *RunConfig) { c.ForecastLookahead = 5 * sim.Second },
		"seed without kind":    func(c *RunConfig) { c.ForecastSeed = 7 },
		"relerr without noisy": func(c *RunConfig) { c.Forecast = ForecastOracle; c.LowWaterSec = 10; c.ForecastRelErr = 0.2 },
		"negative relerr":      func(c *RunConfig) { c.Forecast = ForecastNoisy; c.LowWaterSec = 10; c.ForecastRelErr = -0.1 },
		"infinite lookahead":   func(c *RunConfig) { c.Forecast = ForecastOracle; c.LowWaterSec = 10; c.ForecastLookahead = sim.Forever },
		"negative lookahead":   func(c *RunConfig) { c.Forecast = ForecastOracle; c.LowWaterSec = 10; c.ForecastLookahead = -sim.Second },
	}
	for name, mutate := range cases {
		cfg := DefaultRunConfig()
		mutate(&cfg)
		if _, err := Run(cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v, want ErrInvalidConfig", name, err)
		}
	}
	ok := DefaultRunConfig()
	ok.Forecast = ForecastNoisy
	ok.LowWaterSec = 10
	ok.ForecastRelErr = 0.3
	ok.Duration = 5 * sim.Second
	if _, err := Run(ok); err != nil {
		t.Fatalf("valid noisy config rejected: %v", err)
	}
}

// TestForecastConfigsCacheable pins cacheability: noisy forecasts are
// seeded and keyed per piece, so forecast-armed configs keep their
// content-addressed identity — and every forecast field separates keys.
func TestForecastConfigsCacheable(t *testing.T) {
	base := DefaultRunConfig()
	base.LowWaterSec = 10
	base.Forecast = ForecastNoisy
	base.ForecastRelErr = 0.2
	k0, ok := ConfigKey(base)
	if !ok {
		t.Fatal("noisy forecast config reported uncacheable")
	}
	mutations := map[string]func(*RunConfig){
		"kind":      func(c *RunConfig) { c.Forecast = ForecastOracle; c.ForecastRelErr = 0 },
		"lookahead": func(c *RunConfig) { c.ForecastLookahead = 30 * sim.Second },
		"relerr":    func(c *RunConfig) { c.ForecastRelErr = 0.4 },
		"seed":      func(c *RunConfig) { c.ForecastSeed = 9 },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		k, ok := ConfigKey(cfg)
		if !ok {
			t.Fatalf("%s: mutated forecast config uncacheable", name)
		}
		if k == k0 {
			t.Errorf("%s: forecast field does not separate cache keys", name)
		}
	}
}

// TestParseForecastKind pins the typed-ID parser.
func TestParseForecastKind(t *testing.T) {
	if k, err := ParseForecastKind(""); err != nil || k != ForecastNone {
		t.Fatalf("empty name: %v/%v, want ForecastNone", k, err)
	}
	for _, k := range ForecastKinds() {
		got, err := ParseForecastKind(string(k))
		if err != nil || got != k {
			t.Fatalf("round-trip %q: %v/%v", k, got, err)
		}
	}
	if _, err := ParseForecastKind("psychic"); !errors.Is(err, ErrUnknownForecast) {
		t.Fatalf("unknown kind: %v, want ErrUnknownForecast", err)
	}
}
