package experiments

import (
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/energy"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
)

// allocBudgetRig wires the same simulation Run assembles (untraced) but
// keeps the engine in hand so the test can advance virtual time in chunks
// and measure the allocation rate of the steady-state run loop.
type allocBudgetRig struct {
	eng  *sim.Engine
	sess *player.Session
}

func buildAllocBudgetRig(t *testing.T, cfg RunConfig) *allocBudgetRig {
	t.Helper()
	eng := sim.NewEngine()
	meter := energy.NewMeter(eng)
	coreCPU, err := cpu.NewCore(eng, cfg.Device)
	if err != nil {
		t.Fatal(err)
	}
	coreCPU.OnPower(meter.Listener(energy.ComponentCPU))
	gov, hooks, _, err := buildGovernor(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := gov.Attach(eng, coreCPU); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gov.Detach)
	bw, rrcCfg, err := buildBandwidth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	radio, err := netsim.NewRadio(eng, rrcCfg)
	if err != nil {
		t.Fatal(err)
	}
	radio.OnPower(meter.Listener(energy.ComponentRadio))
	dl, err := netsim.NewDownloader(eng, bw, radio, coreCPU, netsim.DefaultDownloaderConfig())
	if err != nil {
		t.Fatal(err)
	}
	renditions, algo, err := buildRenditions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := player.DefaultConfig()
	pcfg.ABR = algo
	pcfg.Hooks = hooks
	pcfg.Meter = meter
	sess, err := player.NewSession(eng, coreCPU, dl, renditions, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.Start()
	return &allocBudgetRig{eng: eng, sess: sess}
}

// TestRunLoopAllocBudget is the tentpole's hard budget: once the session
// reaches steady state, advancing the untraced simulation allocates
// NOTHING — events, timers, CPU jobs, fetch state, and per-frame governor
// bookkeeping all recycle. The budget is exactly zero; any regression that
// reintroduces a per-event or per-frame allocation fails here.
//
// The rig runs the performance governor so every queue drains (under the
// energy-aware policy the core intentionally has no slack, so starved
// low-priority jobs accumulate as live state, which is workload growth,
// not garbage).
func TestRunLoopAllocBudget(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Governor = GovPerformance
	cfg.Background = false
	cfg.Duration = 120 * sim.Second

	rig := buildAllocBudgetRig(t, cfg)

	// Warm up: startup buffering, pool population, slice growth.
	horizon := 10 * sim.Second
	rig.eng.RunUntil(horizon)

	avg := testing.AllocsPerRun(10, func() {
		horizon += sim.Second
		rig.eng.RunUntil(horizon)
	})
	if avg != 0 {
		t.Fatalf("steady-state run loop allocates: %v allocs per simulated second (want 0)", avg)
	}
	if rig.sess.Err() != nil {
		t.Fatalf("session error: %v", rig.sess.Err())
	}
	if rig.sess.Metrics().DisplayedFrames == 0 {
		t.Fatal("rig never displayed a frame; budget measured an idle loop")
	}
}

// TestRunLoopAllocBudgetReset is the arena-reuse counterpart: after the
// first two runs populate every pool and memo, a WHOLE recycled run —
// Reset, the full event loop, and result collection into a reused
// RunResult — allocates nothing. This is the budget campaign.Pool and
// dvfsd sweeps rely on; any construction work that escapes into the reset
// path fails here.
func TestRunLoopAllocBudgetReset(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Duration = 10 * sim.Second

	s := NewSession()
	var res RunResult
	// Warm up: first run constructs, second settles pool high-water marks
	// (testing.AllocsPerRun itself runs the closure once more before
	// measuring, so any straggler is also outside the measured window).
	for i := 0; i < 2; i++ {
		if err := s.RunInto(cfg, &res); err != nil {
			t.Fatal(err)
		}
	}

	avg := testing.AllocsPerRun(5, func() {
		if err := s.RunInto(cfg, &res); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("recycled session run allocates: %v allocs per run (want 0)", avg)
	}
	if res.QoE.DisplayedFrames == 0 {
		t.Fatal("recycled run displayed no frames; budget measured an idle loop")
	}
}
