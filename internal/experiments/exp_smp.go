package experiments

import (
	"fmt"

	"videodvfs/internal/abr"
	"videodvfs/internal/campaign"
	"videodvfs/internal/core"
	"videodvfs/internal/cpu"
	"videodvfs/internal/energy"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// SMPResult is the outcome of one shared-clock multi-core session.
type SMPResult struct {
	// CPUJ is the whole-domain energy.
	CPUJ float64
	// QoE is the player report.
	QoE player.Metrics
	// BoostFrames counts frames the policy ran at forced fmax.
	BoostFrames int
}

// RunSMP simulates a streaming session on an n-core shared-clock domain
// under the energy-aware policy. With more cores, network-stack and
// background jobs no longer queue behind decode (non-preemptive
// interference disappears), at the price of extra per-core idle power.
func RunSMP(cores int, res video.Resolution, dur sim.Time, seed int64) (SMPResult, error) {
	eng := sim.NewEngine()
	meter := energy.NewMeter(eng)

	domain, err := cpu.NewDomain(eng, cpu.DeviceFlagship(), cores)
	if err != nil {
		return SMPResult{}, err
	}
	domain.OnPower(meter.Listener(energy.ComponentCPU))

	gov, err := core.New(core.DefaultConfig())
	if err != nil {
		return SMPResult{}, err
	}
	if err := gov.AttachScaler(eng, domain); err != nil {
		return SMPResult{}, err
	}
	defer gov.Detach()

	radio, err := netsim.NewRadio(eng, netsim.DefaultLTE())
	if err != nil {
		return SMPResult{}, err
	}
	radio.OnPower(meter.Listener(energy.ComponentRadio))
	// Network work enters the domain and the balancer places it.
	dl, err := netsim.NewDownloader(eng, netsim.Constant{Bps: 8e6}, radio, domain.Cores()[cores-1], netsim.DefaultDownloaderConfig())
	if err != nil {
		return SMPResult{}, err
	}
	bg, err := cpu.StartLoadGen(eng, domain.Cores()[cores-1], sim.Stream(seed, "bgload"), cpu.DefaultLoadGenConfig())
	if err != nil {
		return SMPResult{}, err
	}

	spec := video.DefaultSpec(video.TitleSports, res)
	stream, err := video.Generate(spec, dur, seed)
	if err != nil {
		return SMPResult{}, err
	}
	pcfg := player.DefaultConfig()
	pcfg.ABR = abr.Fixed{Rung: 0}
	pcfg.Hooks = gov
	pcfg.Meter = meter
	sess, err := player.NewSession(eng, domain.Cores()[0], dl, []*video.Stream{stream}, pcfg)
	if err != nil {
		return SMPResult{}, err
	}
	sess.OnDone(func() {
		bg.Stop()
		eng.Stop()
	})
	sess.Start()
	eng.RunUntil(dur*6 + 60*sim.Second)
	meter.Finish()
	if err := sess.Err(); err != nil {
		return SMPResult{}, err
	}
	return SMPResult{
		CPUJ:        meter.ComponentJ(energy.ComponentCPU),
		QoE:         sess.Metrics(),
		BoostFrames: gov.BoostFrames(),
	}, nil
}

// FigF21 reproduces Figure 21 (extension): the shared-clock SMP trade —
// and a consolidation argument. A single decode thread cannot exploit
// extra cores, the policy's margin already absorbs the network/UI
// interference (boost counts are startup-only at every width), and each
// additional core leaks ≈0.1 W of idle power the shared per-cluster clock
// cannot gate. Streaming belongs consolidated on one core (with the rest
// power-collapsed or hotplugged), which is what the single-core base case
// models.
func FigF21() (Table, error) {
	t := Table{
		ID:     "f21",
		Title:  "Shared-clock SMP (720p sports, 60 s, energy-aware): cores vs interference",
		Header: []string{"cores", "cpu_j", "boost_frames", "drops", "rebuffers"},
		Notes:  "boosts are startup-only at every width (the margin absorbs interference); each extra shared-clock core adds ≈0.11 W idle leakage for zero QoE gain — consolidation wins",
	}
	widths := []int{1, 2, 4}
	jobs := make([]campaign.Job[SMPResult], len(widths))
	for i, cores := range widths {
		cores := cores
		jobs[i] = func() (SMPResult, error) {
			return RunSMP(cores, video.R720p, 60*sim.Second, 1)
		}
	}
	results, err := campaign.Values(campaign.Do(jobs, campaign.Options[SMPResult]{}))
	if err != nil {
		return Table{}, fmt.Errorf("f21: %w", err)
	}
	for i, res := range results {
		t.Rows = append(t.Rows, []string{
			iv(widths[i]), f1(res.CPUJ), iv(res.BoostFrames),
			iv(res.QoE.DroppedFrames), iv(res.QoE.RebufferCount),
		})
	}
	return t, nil
}
