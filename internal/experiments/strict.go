package experiments

import "sync/atomic"

// strictAll arms the invariant checker for every Run in the process,
// regardless of RunConfig.Strict. See SetStrictDefault.
var strictAll atomic.Bool

// SetStrictDefault toggles process-wide strict mode: when on, every Run
// audits its event stream with the invariant checker exactly as if
// RunConfig.Strict were set. It exists for harnesses that cannot thread a
// config field through — `exprun -strict` over the experiment registry,
// and the golden/batch test suites — mirroring the process-wide
// TraceFactory hook. It returns the previous value so tests can restore
// it with defer.
func SetStrictDefault(on bool) (prev bool) { return strictAll.Swap(on) }

// strictDefault reports the process-wide strict toggle.
func strictDefault() bool { return strictAll.Load() }
