// Package experiments assembles full simulation runs and regenerates every
// table and figure of the (reconstructed) evaluation. Each experiment has
// an ID (t1, f1, …), a builder function returning a formatted Table, and a
// benchmark in the repository root that prints the same rows.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"videodvfs/internal/abr"
	"videodvfs/internal/core"
	"videodvfs/internal/cpu"
	"videodvfs/internal/governor"
	"videodvfs/internal/invariant"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// NetKind selects the bandwidth model of a run.
type NetKind string

// Built-in network profiles.
const (
	// NetWiFi is a steady 30 Mbps link.
	NetWiFi NetKind = "wifi"
	// NetLTE is a Markov-modulated LTE trace (≈12 Mbps mean).
	NetLTE NetKind = "lte"
	// NetUMTS is a Markov-modulated 3G trace (≈2.5 Mbps mean).
	NetUMTS NetKind = "umts"
	// NetConst8 is a constant 8 Mbps link (enough for the top rung).
	NetConst8 NetKind = "const8"
	// NetTrace replays a recorded bandwidth/timing trace
	// (RunConfig.BWTrace, typically captured by `dvfsstress play` over a
	// real TCP path) through the simulator.
	NetTrace NetKind = "trace"
)

// NetKinds returns every network kind, synthetic profiles first in
// report order, then the trace-replay backend.
func NetKinds() []NetKind { return []NetKind{NetWiFi, NetConst8, NetLTE, NetUMTS, NetTrace} }

// SyntheticNetKinds returns the self-contained profiles — the ones a
// sweep can iterate without supplying trace data. Experiments that fan
// out "across all networks" (FigF10) use this list, which is why its
// order matches the historical report order.
func SyntheticNetKinds() []NetKind { return []NetKind{NetWiFi, NetConst8, NetLTE, NetUMTS} }

// RunConfig describes one streaming simulation.
type RunConfig struct {
	// Device is the CPU model (DeviceFlagship if zero).
	Device cpu.Model
	// Governor selects the frequency policy: a stock cpufreq baseline,
	// GovEnergyAware, or GovOracle. Convert untrusted strings with
	// ParseGovernorID.
	Governor GovernorID
	// Policy tunes the energy-aware governor (DefaultConfig if zero).
	Policy core.Config
	// Title is the content profile (TitleSports default: the demanding
	// case).
	Title video.Title
	// Rung pins a single rendition by resolution when ABR is "" or
	// "fixed".
	Rung video.Resolution
	// ABR selects the adaptation algorithm ("" = ABRFixed). Convert
	// untrusted strings with ParseABRID.
	ABR ABRID
	// Net selects the bandwidth profile.
	Net NetKind
	// BWTrace is the recorded bandwidth trace replayed when Net is
	// NetTrace (required then, forbidden otherwise). Load one with
	// netsim.ReadTrace. The trace is read-only during the run, so one
	// trace may back many concurrent runs.
	BWTrace *netsim.Trace
	// RRC configures the radio (DefaultUMTS for NetUMTS, DefaultLTE
	// otherwise, if zero).
	RRC *netsim.RRCConfig
	// Duration is the content length.
	Duration sim.Time
	// Seed drives all stochastic inputs.
	Seed int64
	// BGSeed, when non-zero, reseeds only the background-load generator
	// while every content-derived input (video stream, bandwidth trace)
	// still follows Seed. Cohort runs use it to give each viewer of the
	// same live event an independent device-load history without
	// regenerating the shared stream per viewer; 0 means "derive from
	// Seed" — the single-run behavior this field generalizes.
	BGSeed int64
	// DecodedQueueCap overrides the player's decode-ahead depth (0 =
	// default 8).
	DecodedQueueCap int
	// LowWaterSec enables the player's burst-prefetch hysteresis (see
	// player.Config.LowWaterSec).
	LowWaterSec float64
	// Forecast arms the predictive download scheduler: the player replaces
	// the blind low-water burst trigger with a forecast scan that races
	// bursts into predicted good-channel windows and defers through fades
	// the buffer can ride out. Requires LowWaterSec > 0. Convert untrusted
	// strings with ParseForecastKind; "" keeps the reactive trigger.
	Forecast ForecastKind
	// ForecastLookahead is how far ahead the forecast sees (0 = 20 s when
	// a forecast is armed).
	ForecastLookahead sim.Time
	// ForecastRelErr is the noisy forecast's relative error — the CV of
	// the per-piece lognormal rate multiplier. Only meaningful (and only
	// accepted) with ForecastNoisy; 0 there reproduces the oracle.
	ForecastRelErr float64
	// ForecastSeed reseeds only the noisy forecast's error draw; 0 derives
	// it from Seed. The noise is keyed per forecast piece, so runs stay
	// deterministic and cacheable.
	ForecastSeed int64
	// Thermal, if set, attaches the RC thermal model + throttler.
	Thermal *cpu.ThermalConfig
	// CStates enables the cpuidle model (menu governor over the default
	// three-state ladder).
	CStates bool
	// Codec selects the decode model by name ("" = h264, "hevc").
	Codec string
	// LowLatency switches the player to live-streaming thresholds
	// (1 s startup, 0.5 s resume, 4 s buffer, 3-frame decode-ahead).
	LowLatency bool
	// SegmentDur overrides the media segment duration (0 = 2 s).
	SegmentDur sim.Time
	// Background enables the UI/OS load generator (default on via
	// DefaultRunConfig).
	Background bool
	// Horizon caps virtual time (0 = Duration*6 + 60 s; starved runs
	// terminate, radio tails need the +60 s). A session still incomplete
	// at the cap makes Run fail with ErrHorizonExceeded.
	Horizon sim.Time
	// FPS overrides the frame rate (0 = 30).
	FPS float64
	// Trace, if set, replays this exact frame stream instead of
	// generating one (single rendition, fixed ABR). Load one with
	// video.ReadTrace or build it programmatically.
	Trace *video.Stream
	// OnSample, if set, receives a time-series sample every 100 ms of
	// virtual time: CPU frequency, CPU power, media buffer level. Used by
	// dvfsim's -timeline output for plotting.
	OnSample func(t sim.Time, freqGHz, cpuW, bufferSec float64)
	// Cancel, if non-nil, aborts the run when closed: the engine polls it
	// every 100 virtual ms and a closed channel fails the run with
	// ErrCanceled instead of simulating on to the horizon. dvfsd's
	// streaming endpoints wire a request context's Done channel here so an
	// abandoned client stops burning a pool worker. Cancel-armed configs
	// are uncacheable (the outcome depends on state outside the config).
	Cancel <-chan struct{}
	// Tracer, if set, receives the run's structured event stream: governor
	// decisions, frame lifecycle, OPP and C-state transitions, RRC state
	// changes, ABR switches, buffer levels, and per-component power. nil
	// (the default) disables tracing with zero overhead on the hot path.
	Tracer trace.Tracer
	// Strict arms the invariant checker (internal/invariant): the run's
	// event stream is audited against the simulator's conservation laws
	// and any breach fails Run with a wrapped *invariant.Violation. Off by
	// default — strict runs pay the tracing cost on the hot path, and
	// their results are never served from the dvfsd cache (DESIGN.md §10).
	Strict bool
}

// DefaultRunConfig returns the evaluation's base case: flagship device,
// sports content pinned at 720p, constant 8 Mbps link, background load on,
// 60 s of content.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Device:     cpu.DeviceFlagship(),
		Governor:   GovEnergyAware,
		Policy:     core.DefaultConfig(),
		Title:      video.TitleSports,
		Rung:       video.R720p,
		ABR:        ABRFixed,
		Net:        NetConst8,
		Duration:   60 * sim.Second,
		Seed:       1,
		Background: true,
	}
}

// RunResult is the outcome of one simulation.
type RunResult struct {
	// Governor is the policy that ran.
	Governor string
	// CPUJ, RadioJ, DisplayJ are per-component energies in joules.
	CPUJ, RadioJ, DisplayJ float64
	// QoE is the player's metric report.
	QoE player.Metrics
	// MeanFreqGHz is the time-weighted mean CPU frequency.
	MeanFreqGHz float64
	// FreqResidency maps OPP index to seconds.
	FreqResidency map[int]sim.Time
	// RadioResidency maps RRC state to seconds.
	RadioResidency map[netsim.RRCState]sim.Time
	// RadioPromotions counts IDLE/FACH→DCH promotions.
	RadioPromotions int
	// Fetches is the number of completed segment downloads.
	Fetches int
	// Pred is the predictor accuracy report (energy-aware runs only).
	Pred *core.PredictionStats
	// MaxTempC, ThrottleEvents, ThrottledS report the thermal model
	// (zero when Thermal is unset).
	MaxTempC       float64
	ThrottleEvents int
	ThrottledS     float64
	// IdleResidency maps C-state name to seconds (nil unless CStates).
	IdleResidency map[string]sim.Time
	// OPPTransitions counts DVFS switches over the run.
	OPPTransitions int
	// SimEnd is the virtual time the run finished at.
	SimEnd sim.Time
}

// TotalJ returns whole-device energy.
func (r RunResult) TotalJ() float64 { return r.CPUJ + r.RadioJ + r.DisplayJ }

// ErrInvalidConfig reports a RunConfig rejected by Validate before any
// simulation state was built. Callers distinguish it with errors.Is;
// parse-level sentinels (ErrUnknownGovernor, ErrUnknownABR, ErrUnknownNet)
// also match through it.
var ErrInvalidConfig = errors.New("invalid run config")

// Validate checks the knobs Run cannot default: the governor and ABR
// names, the network kind, and the duration. It runs up front in Run so a
// bad config fails before any engine state exists, with every violation
// wrapped in ErrInvalidConfig.
func (cfg RunConfig) Validate() error {
	if _, err := ParseGovernorID(string(cfg.Governor)); err != nil {
		return fmt.Errorf("experiments: %w: %w", ErrInvalidConfig, err)
	}
	if _, err := ParseABRID(string(cfg.ABR)); err != nil {
		return fmt.Errorf("experiments: %w: %w", ErrInvalidConfig, err)
	}
	if _, err := ParseNetKind(string(cfg.Net)); err != nil {
		return fmt.Errorf("experiments: %w: %w", ErrInvalidConfig, err)
	}
	// The trace backend has no synthetic fallback: net "trace" without
	// sample data (or trace data under another net) is a contradiction
	// the caller must resolve, not something to paper over.
	if cfg.Net == NetTrace {
		if cfg.BWTrace == nil {
			return fmt.Errorf("experiments: %w: net %q requires a bandwidth trace (BWTrace)",
				ErrInvalidConfig, NetTrace)
		}
		if err := cfg.BWTrace.Validate(); err != nil {
			return fmt.Errorf("experiments: %w: %w", ErrInvalidConfig, err)
		}
	} else if cfg.BWTrace != nil {
		return fmt.Errorf("experiments: %w: bandwidth trace set but net is %q, not %q",
			ErrInvalidConfig, cfg.Net, NetTrace)
	}
	if cfg.Duration <= 0 && cfg.Trace == nil {
		return fmt.Errorf("experiments: %w: duration %v not positive", ErrInvalidConfig, cfg.Duration)
	}
	// A non-finite duration or horizon would defeat the horizon check
	// (every comparison against NaN is false), turning one bad request
	// into an unbounded simulation.
	if math.IsNaN(float64(cfg.Duration)) || math.IsInf(float64(cfg.Duration), 0) {
		return fmt.Errorf("experiments: %w: duration %v not finite", ErrInvalidConfig, cfg.Duration)
	}
	if math.IsNaN(float64(cfg.Horizon)) || math.IsInf(float64(cfg.Horizon), 0) {
		return fmt.Errorf("experiments: %w: horizon %v not finite", ErrInvalidConfig, cfg.Horizon)
	}
	// Found by FuzzRunConfigInvariants: a NaN or negative FPS reaches
	// video.Generate's frame-count conversion (int of NaN/negative is
	// implementation-specific per the Go spec, and a negative count panics
	// make), and the frame count scales as duration×fps, so an absurd FPS
	// is the same unbounded-allocation DoS the duration cap already
	// closes. 1000 fps is far beyond any real display pipeline.
	if cfg.FPS != 0 && (math.IsNaN(cfg.FPS) || cfg.FPS < 1 || cfg.FPS > 1000) {
		return fmt.Errorf("experiments: %w: fps %v outside [1, 1000]", ErrInvalidConfig, cfg.FPS)
	}
	// NaN here silently disables the prefetch hysteresis (every threshold
	// comparison against NaN is false) instead of failing loudly.
	if math.IsNaN(cfg.LowWaterSec) || math.IsInf(cfg.LowWaterSec, 0) || cfg.LowWaterSec < 0 {
		return fmt.Errorf("experiments: %w: low-water mark %v not a finite non-negative second count",
			ErrInvalidConfig, cfg.LowWaterSec)
	}
	// A non-finite segment duration poisons the per-segment frame count.
	if math.IsNaN(float64(cfg.SegmentDur)) || math.IsInf(float64(cfg.SegmentDur), 0) || cfg.SegmentDur < 0 {
		return fmt.Errorf("experiments: %w: segment duration %v not finite and non-negative",
			ErrInvalidConfig, cfg.SegmentDur)
	}
	if _, err := ParseForecastKind(string(cfg.Forecast)); err != nil {
		return fmt.Errorf("experiments: %w: %w", ErrInvalidConfig, err)
	}
	if cfg.Forecast != ForecastNone {
		// The predictive scheduler decides *when bursts start*; without the
		// burst hysteresis there is no burst structure to schedule, so a
		// forecast with LowWaterSec 0 is a contradiction, not a no-op.
		if cfg.LowWaterSec <= 0 {
			return fmt.Errorf("experiments: %w: forecast %q requires a positive low-water mark",
				ErrInvalidConfig, cfg.Forecast)
		}
		if math.IsNaN(float64(cfg.ForecastLookahead)) || math.IsInf(float64(cfg.ForecastLookahead), 0) ||
			cfg.ForecastLookahead < 0 || cfg.ForecastLookahead >= sim.Forever {
			return fmt.Errorf("experiments: %w: forecast lookahead %v not a finite non-negative duration",
				ErrInvalidConfig, cfg.ForecastLookahead)
		}
	} else if cfg.ForecastLookahead != 0 || cfg.ForecastRelErr != 0 || cfg.ForecastSeed != 0 {
		return fmt.Errorf("experiments: %w: forecast parameters set but no forecast kind selected",
			ErrInvalidConfig)
	}
	if cfg.Forecast == ForecastNoisy {
		if math.IsNaN(cfg.ForecastRelErr) || math.IsInf(cfg.ForecastRelErr, 0) || cfg.ForecastRelErr < 0 {
			return fmt.Errorf("experiments: %w: forecast error %v not a finite non-negative CV",
				ErrInvalidConfig, cfg.ForecastRelErr)
		}
	} else if cfg.ForecastRelErr != 0 {
		return fmt.Errorf("experiments: %w: forecast error is only meaningful for the %q forecast",
			ErrInvalidConfig, ForecastNoisy)
	}
	// Found by FuzzRunConfigInvariants: a duration×fps product below one
	// frame generated an empty stream that only failed deep inside the
	// player ("cannot segmentize empty stream") instead of up front.
	if cfg.Trace == nil {
		fps := cfg.FPS
		if fps == 0 {
			fps = 30
		}
		if cfg.Duration.Seconds()*fps < 1 {
			return fmt.Errorf("experiments: %w: duration %v at %g fps yields no frames",
				ErrInvalidConfig, cfg.Duration, fps)
		}
	}
	return nil
}

// buildGovernor returns the governor plus, when video-aware, its session
// hooks; a non-nil tracer is attached to the video-aware policies.
func buildGovernor(cfg RunConfig, tr trace.Tracer) (governor.Governor, player.SessionHooks, *core.Governor, error) {
	switch cfg.Governor {
	case GovEnergyAware:
		pol := cfg.Policy
		if pol == (core.Config{}) {
			pol = core.DefaultConfig()
		}
		g, err := core.New(pol)
		if err != nil {
			return nil, nil, nil, err
		}
		if tr != nil {
			g.SetTracer(tr)
		}
		return g, g, g, nil
	case GovOracle:
		o := core.NewOracle()
		if tr != nil {
			o.SetTracer(tr)
		}
		return o, o, nil, nil
	default:
		g, err := governor.New(string(cfg.Governor))
		if err != nil {
			return nil, nil, nil, err
		}
		return g, nil, nil, nil
	}
}

// Shared bandwidth values for the constant profiles: both are immutable
// value types, and package-level interface values keep the per-run boxing
// allocation off the arena's reset path.
var (
	bwWiFi   netsim.Bandwidth = netsim.WiFiSteady()
	bwConst8 netsim.Bandwidth = netsim.Constant{Bps: 8e6}
)

// bwKey identifies one deterministic Markov bandwidth trace. Generation is
// a pure function of these fields, so identical requests share the
// generated (read-only) trace.
type bwKey struct {
	net  NetKind
	dur  sim.Time
	seed int64
}

// bwCache memoizes generated Markov traces across runs, mirroring
// streamCache: traces are immutable after generation (Rate only reads), so
// sharing them between concurrent runs is safe and changes no output.
var bwCache sync.Map // bwKey -> netsim.Bandwidth

func buildBandwidth(cfg RunConfig) (netsim.Bandwidth, netsim.RRCConfig, error) {
	bw, rrc, err := buildBandwidthBase(cfg)
	if err != nil {
		return nil, rrc, err
	}
	if cfg.RRC != nil {
		rrc = *cfg.RRC
	}
	return bw, rrc, nil
}

// buildBandwidthBase resolves the bandwidth model and the network's default
// RRC profile, before any RunConfig.RRC override (the arena memoizes the
// base pair and applies the override per run).
func buildBandwidthBase(cfg RunConfig) (netsim.Bandwidth, netsim.RRCConfig, error) {
	rrc := netsim.DefaultLTE()
	var bw netsim.Bandwidth
	switch cfg.Net {
	case NetWiFi, "":
		bw = bwWiFi
	case NetConst8:
		bw = bwConst8
	case NetLTE:
		key := bwKey{net: NetLTE, dur: cfg.Duration, seed: cfg.Seed}
		if cached, ok := bwCache.Load(key); ok {
			bw = cached.(netsim.Bandwidth)
			break
		}
		tr, err := netsim.GenMarkovTrace(netsim.LTEStates(), cfg.Duration*4, sim.Stream(cfg.Seed, "bw/lte"))
		if err != nil {
			return nil, rrc, err
		}
		bw = tr
		bwCache.Store(key, bw)
	case NetUMTS:
		rrc = netsim.DefaultUMTS()
		key := bwKey{net: NetUMTS, dur: cfg.Duration, seed: cfg.Seed}
		if cached, ok := bwCache.Load(key); ok {
			bw = cached.(netsim.Bandwidth)
			break
		}
		tr, err := netsim.GenMarkovTrace(netsim.UMTSStates(), cfg.Duration*4, sim.Stream(cfg.Seed, "bw/umts"))
		if err != nil {
			return nil, rrc, err
		}
		bw = tr
		bwCache.Store(key, bw)
	case NetTrace:
		if cfg.BWTrace == nil {
			return nil, rrc, fmt.Errorf("experiments: net %q requires a bandwidth trace", NetTrace)
		}
		// Recorded traces are caller-owned and already immutable; no
		// memoization needed (and the (net, dur, seed) bwCache key could
		// not tell two different traces apart anyway).
		bw = *cfg.BWTrace
	default:
		return nil, rrc, fmt.Errorf("experiments: unknown network kind %q", cfg.Net)
	}
	return bw, rrc, nil
}

// buildForecast resolves the run's bandwidth forecast over the resolved
// bandwidth model bw — the same value the downloader integrates, so the
// oracle's predictions are exactly the rates the run will observe. Returns
// nil when forecasting is off.
func buildForecast(cfg RunConfig, bw netsim.Bandwidth) (player.Forecast, error) {
	if cfg.Forecast == ForecastNone {
		return nil, nil
	}
	lookahead := cfg.ForecastLookahead
	if lookahead == 0 {
		lookahead = 20 * sim.Second
	}
	oracle := netsim.Oracle{BW: bw, Lookahead: lookahead}
	switch cfg.Forecast {
	case ForecastOracle:
		return oracle, nil
	case ForecastNoisy:
		seed := cfg.ForecastSeed
		if seed == 0 {
			seed = sim.ChildSeed(cfg.Seed, "forecast")
		}
		return netsim.NewNoisy(oracle, cfg.ForecastRelErr, seed)
	default:
		return nil, fmt.Errorf("experiments: %w %q (known: %v)", ErrUnknownForecast, cfg.Forecast, ForecastKinds())
	}
}

// streamKey identifies one deterministic rendition-set request. Generation
// is a pure function of these fields, so identical requests can share the
// generated (read-only) streams.
type streamKey struct {
	title  video.Title
	rung   video.Resolution
	codec  string
	ladder bool
	fps    float64
	dur    sim.Time
	seed   int64
}

// streamCache memoizes generated rendition sets across runs. Streams are
// immutable after Generate (sessions segmentize and copy frames by value),
// so sharing them between concurrent campaign runs is safe and changes no
// output — it only removes the dominant setup cost of repeated runs.
var streamCache sync.Map // streamKey -> []*video.Stream

// abrFixed0 is the shared fixed-rung adaptation value: abr.Fixed is a
// stateless value type, and a package-level interface value keeps the
// per-run boxing allocation off the arena's reset path.
var abrFixed0 abr.Algorithm = abr.Fixed{Rung: 0}

func buildRenditions(cfg RunConfig) ([]*video.Stream, abr.Algorithm, error) {
	fps := cfg.FPS
	if fps == 0 {
		fps = 30
	}
	if cfg.Trace != nil {
		if len(cfg.Trace.Frames) == 0 {
			return nil, nil, fmt.Errorf("experiments: empty frame trace")
		}
		return []*video.Stream{cfg.Trace}, abrFixed0, nil
	}
	// Codec resolution is deferred into the cache-miss branches: the
	// default codec's construction allocates, and a bad codec name can
	// never have been cached (generation would have failed), so cache hits
	// lose nothing by skipping it.
	key := streamKey{
		title: cfg.Title,
		codec: cfg.Codec,
		fps:   fps,
		dur:   cfg.Duration,
		seed:  cfg.Seed,
	}
	switch cfg.ABR {
	case "", ABRFixed:
		key.rung = cfg.Rung
		if cached, ok := streamCache.Load(key); ok {
			return cached.([]*video.Stream), abrFixed0, nil
		}
		codec := video.DefaultCodec()
		if cfg.Codec != "" {
			var err error
			codec, err = video.CodecByName(cfg.Codec)
			if err != nil {
				return nil, nil, err
			}
		}
		spec := video.DefaultSpec(cfg.Title, cfg.Rung).WithCodec(codec)
		spec.FPS = fps
		s, err := video.Generate(spec, cfg.Duration, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		streams := []*video.Stream{s}
		streamCache.Store(key, streams)
		return streams, abrFixed0, nil
	default:
		algo, err := abr.New(string(cfg.ABR))
		if err != nil {
			return nil, nil, err
		}
		key.ladder = true
		if cached, ok := streamCache.Load(key); ok {
			return cached.([]*video.Stream), algo, nil
		}
		// The ladder generator ignores the codec, but a bad codec name
		// must still fail the run as it always has.
		if cfg.Codec != "" {
			if _, err := video.CodecByName(cfg.Codec); err != nil {
				return nil, nil, err
			}
		}
		streams, err := video.GenerateLadder(cfg.Title, fps, video.DefaultLadder(), cfg.Duration, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		streamCache.Store(key, streams)
		return streams, algo, nil
	}
}

// ErrCanceled reports a run aborted because its RunConfig.Cancel channel
// closed mid-simulation — the caller (typically a streaming HTTP handler
// whose client disconnected) no longer wants the result. Callers
// distinguish it with errors.Is.
var ErrCanceled = errors.New("run canceled")

// ErrHorizonExceeded reports that a session was still incomplete when the
// simulation horizon (RunConfig.Horizon, default Duration*6 + 60 s) cut
// the run off — the link could not sustain the stream within the cap.
// Callers distinguish it with errors.Is.
var ErrHorizonExceeded = errors.New("simulation horizon exceeded")

// newChecker builds the invariant checker; a test hook so the typed
// violation path through Run can be exercised with a deliberately
// mis-grounded checker (the model itself holds its invariants).
var newChecker = invariant.New

// buildChecker arms the invariant checker for strict runs (nil
// otherwise), grounding it in the run's static truth: the device's OPP
// table and, when the cpuidle model is on, the C-state ladder.
func buildChecker(cfg RunConfig) *invariant.Checker {
	if !cfg.Strict && !strictDefault() {
		return nil
	}
	ic := invariant.Config{OPPFreqsHz: make([]float64, len(cfg.Device.OPPs))}
	for i, o := range cfg.Device.OPPs {
		ic.OPPFreqsHz[i] = o.FreqHz
	}
	if cfg.CStates {
		for _, cs := range cpu.DefaultCStates() {
			ic.CStateNames = append(ic.CStateNames, cs.Name)
		}
	}
	return newChecker(ic)
}

// Run executes one simulation and returns its result. The config is
// validated up front (see Validate); invalid configs fail with
// ErrInvalidConfig before any simulation state is built.
//
// Run serves from a pool of arena Sessions (see Session): repeated calls
// recycle whole simulation instances instead of reconstructing them. The
// results are identical either way — SetSessionReuse(false) forces a fresh
// arena per call (the differential tests pin the equivalence).
func Run(cfg RunConfig) (RunResult, error) {
	var res RunResult
	if sessionReuseOff.Load() {
		if err := NewSession().RunInto(cfg, &res); err != nil {
			return RunResult{}, err
		}
		return res, nil
	}
	s := sessionPool.Get().(*Session)
	err := s.RunInto(cfg, &res)
	// Not returned on panic: a torn-down arena must not re-enter the pool.
	sessionPool.Put(s)
	if err != nil {
		return RunResult{}, err
	}
	return res, nil
}

func meanFreqGHz(model cpu.Model, residency map[int]sim.Time) float64 {
	// Iterate OPP indices in order, not the map: float summation order
	// must be fixed or the last bit of the mean varies run to run,
	// breaking the bit-identical determinism contract.
	var num, den float64
	for idx := range model.OPPs {
		d, ok := residency[idx]
		if !ok {
			continue
		}
		num += model.OPPs[idx].FreqHz * d.Seconds()
		den += d.Seconds()
	}
	if den == 0 {
		return 0
	}
	return num / den / 1e9
}
