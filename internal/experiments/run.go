// Package experiments assembles full simulation runs and regenerates every
// table and figure of the (reconstructed) evaluation. Each experiment has
// an ID (t1, f1, …), a builder function returning a formatted Table, and a
// benchmark in the repository root that prints the same rows.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"videodvfs/internal/abr"
	"videodvfs/internal/core"
	"videodvfs/internal/cpu"
	"videodvfs/internal/energy"
	"videodvfs/internal/governor"
	"videodvfs/internal/invariant"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// NetKind selects the bandwidth model of a run.
type NetKind string

// Built-in network profiles.
const (
	// NetWiFi is a steady 30 Mbps link.
	NetWiFi NetKind = "wifi"
	// NetLTE is a Markov-modulated LTE trace (≈12 Mbps mean).
	NetLTE NetKind = "lte"
	// NetUMTS is a Markov-modulated 3G trace (≈2.5 Mbps mean).
	NetUMTS NetKind = "umts"
	// NetConst8 is a constant 8 Mbps link (enough for the top rung).
	NetConst8 NetKind = "const8"
)

// NetKinds returns the profiles in report order.
func NetKinds() []NetKind { return []NetKind{NetWiFi, NetConst8, NetLTE, NetUMTS} }

// RunConfig describes one streaming simulation.
type RunConfig struct {
	// Device is the CPU model (DeviceFlagship if zero).
	Device cpu.Model
	// Governor selects the frequency policy: a stock cpufreq baseline,
	// GovEnergyAware, or GovOracle. Convert untrusted strings with
	// ParseGovernorID.
	Governor GovernorID
	// Policy tunes the energy-aware governor (DefaultConfig if zero).
	Policy core.Config
	// Title is the content profile (TitleSports default: the demanding
	// case).
	Title video.Title
	// Rung pins a single rendition by resolution when ABR is "" or
	// "fixed".
	Rung video.Resolution
	// ABR selects the adaptation algorithm ("" = ABRFixed). Convert
	// untrusted strings with ParseABRID.
	ABR ABRID
	// Net selects the bandwidth profile.
	Net NetKind
	// RRC configures the radio (DefaultUMTS for NetUMTS, DefaultLTE
	// otherwise, if zero).
	RRC *netsim.RRCConfig
	// Duration is the content length.
	Duration sim.Time
	// Seed drives all stochastic inputs.
	Seed int64
	// DecodedQueueCap overrides the player's decode-ahead depth (0 =
	// default 8).
	DecodedQueueCap int
	// LowWaterSec enables the player's burst-prefetch hysteresis (see
	// player.Config.LowWaterSec).
	LowWaterSec float64
	// Thermal, if set, attaches the RC thermal model + throttler.
	Thermal *cpu.ThermalConfig
	// CStates enables the cpuidle model (menu governor over the default
	// three-state ladder).
	CStates bool
	// Codec selects the decode model by name ("" = h264, "hevc").
	Codec string
	// LowLatency switches the player to live-streaming thresholds
	// (1 s startup, 0.5 s resume, 4 s buffer, 3-frame decode-ahead).
	LowLatency bool
	// SegmentDur overrides the media segment duration (0 = 2 s).
	SegmentDur sim.Time
	// Background enables the UI/OS load generator (default on via
	// DefaultRunConfig).
	Background bool
	// Horizon caps virtual time (0 = Duration*6 + 60 s; starved runs
	// terminate, radio tails need the +60 s). A session still incomplete
	// at the cap makes Run fail with ErrHorizonExceeded.
	Horizon sim.Time
	// FPS overrides the frame rate (0 = 30).
	FPS float64
	// Trace, if set, replays this exact frame stream instead of
	// generating one (single rendition, fixed ABR). Load one with
	// video.ReadTrace or build it programmatically.
	Trace *video.Stream
	// OnSample, if set, receives a time-series sample every 100 ms of
	// virtual time: CPU frequency, CPU power, media buffer level. Used by
	// dvfsim's -timeline output for plotting.
	OnSample func(t sim.Time, freqGHz, cpuW, bufferSec float64)
	// Tracer, if set, receives the run's structured event stream: governor
	// decisions, frame lifecycle, OPP and C-state transitions, RRC state
	// changes, ABR switches, buffer levels, and per-component power. nil
	// (the default) disables tracing with zero overhead on the hot path.
	Tracer trace.Tracer
	// Strict arms the invariant checker (internal/invariant): the run's
	// event stream is audited against the simulator's conservation laws
	// and any breach fails Run with a wrapped *invariant.Violation. Off by
	// default — strict runs pay the tracing cost on the hot path, and
	// their results are never served from the dvfsd cache (DESIGN.md §10).
	Strict bool
}

// DefaultRunConfig returns the evaluation's base case: flagship device,
// sports content pinned at 720p, constant 8 Mbps link, background load on,
// 60 s of content.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Device:     cpu.DeviceFlagship(),
		Governor:   GovEnergyAware,
		Policy:     core.DefaultConfig(),
		Title:      video.TitleSports,
		Rung:       video.R720p,
		ABR:        ABRFixed,
		Net:        NetConst8,
		Duration:   60 * sim.Second,
		Seed:       1,
		Background: true,
	}
}

// RunResult is the outcome of one simulation.
type RunResult struct {
	// Governor is the policy that ran.
	Governor string
	// CPUJ, RadioJ, DisplayJ are per-component energies in joules.
	CPUJ, RadioJ, DisplayJ float64
	// QoE is the player's metric report.
	QoE player.Metrics
	// MeanFreqGHz is the time-weighted mean CPU frequency.
	MeanFreqGHz float64
	// FreqResidency maps OPP index to seconds.
	FreqResidency map[int]sim.Time
	// RadioResidency maps RRC state to seconds.
	RadioResidency map[netsim.RRCState]sim.Time
	// RadioPromotions counts IDLE/FACH→DCH promotions.
	RadioPromotions int
	// Fetches is the number of completed segment downloads.
	Fetches int
	// Pred is the predictor accuracy report (energy-aware runs only).
	Pred *core.PredictionStats
	// MaxTempC, ThrottleEvents, ThrottledS report the thermal model
	// (zero when Thermal is unset).
	MaxTempC       float64
	ThrottleEvents int
	ThrottledS     float64
	// IdleResidency maps C-state name to seconds (nil unless CStates).
	IdleResidency map[string]sim.Time
	// OPPTransitions counts DVFS switches over the run.
	OPPTransitions int
	// SimEnd is the virtual time the run finished at.
	SimEnd sim.Time
}

// TotalJ returns whole-device energy.
func (r RunResult) TotalJ() float64 { return r.CPUJ + r.RadioJ + r.DisplayJ }

// ErrInvalidConfig reports a RunConfig rejected by Validate before any
// simulation state was built. Callers distinguish it with errors.Is;
// parse-level sentinels (ErrUnknownGovernor, ErrUnknownABR) also match
// through it.
var ErrInvalidConfig = errors.New("invalid run config")

// Validate checks the knobs Run cannot default: the governor and ABR
// names, the network kind, and the duration. It runs up front in Run so a
// bad config fails before any engine state exists, with every violation
// wrapped in ErrInvalidConfig.
func (cfg RunConfig) Validate() error {
	if _, err := ParseGovernorID(string(cfg.Governor)); err != nil {
		return fmt.Errorf("experiments: %w: %w", ErrInvalidConfig, err)
	}
	if _, err := ParseABRID(string(cfg.ABR)); err != nil {
		return fmt.Errorf("experiments: %w: %w", ErrInvalidConfig, err)
	}
	switch cfg.Net {
	case NetWiFi, NetConst8, NetLTE, NetUMTS, "":
	default:
		return fmt.Errorf("experiments: %w: unknown network kind %q (known: %v)",
			ErrInvalidConfig, cfg.Net, NetKinds())
	}
	if cfg.Duration <= 0 && cfg.Trace == nil {
		return fmt.Errorf("experiments: %w: duration %v not positive", ErrInvalidConfig, cfg.Duration)
	}
	// A non-finite duration or horizon would defeat the horizon check
	// (every comparison against NaN is false), turning one bad request
	// into an unbounded simulation.
	if math.IsNaN(float64(cfg.Duration)) || math.IsInf(float64(cfg.Duration), 0) {
		return fmt.Errorf("experiments: %w: duration %v not finite", ErrInvalidConfig, cfg.Duration)
	}
	if math.IsNaN(float64(cfg.Horizon)) || math.IsInf(float64(cfg.Horizon), 0) {
		return fmt.Errorf("experiments: %w: horizon %v not finite", ErrInvalidConfig, cfg.Horizon)
	}
	// Found by FuzzRunConfigInvariants: a NaN or negative FPS reaches
	// video.Generate's frame-count conversion (int of NaN/negative is
	// implementation-specific per the Go spec, and a negative count panics
	// make), and the frame count scales as duration×fps, so an absurd FPS
	// is the same unbounded-allocation DoS the duration cap already
	// closes. 1000 fps is far beyond any real display pipeline.
	if cfg.FPS != 0 && (math.IsNaN(cfg.FPS) || cfg.FPS < 1 || cfg.FPS > 1000) {
		return fmt.Errorf("experiments: %w: fps %v outside [1, 1000]", ErrInvalidConfig, cfg.FPS)
	}
	// NaN here silently disables the prefetch hysteresis (every threshold
	// comparison against NaN is false) instead of failing loudly.
	if math.IsNaN(cfg.LowWaterSec) || math.IsInf(cfg.LowWaterSec, 0) || cfg.LowWaterSec < 0 {
		return fmt.Errorf("experiments: %w: low-water mark %v not a finite non-negative second count",
			ErrInvalidConfig, cfg.LowWaterSec)
	}
	// A non-finite segment duration poisons the per-segment frame count.
	if math.IsNaN(float64(cfg.SegmentDur)) || math.IsInf(float64(cfg.SegmentDur), 0) || cfg.SegmentDur < 0 {
		return fmt.Errorf("experiments: %w: segment duration %v not finite and non-negative",
			ErrInvalidConfig, cfg.SegmentDur)
	}
	// Found by FuzzRunConfigInvariants: a duration×fps product below one
	// frame generated an empty stream that only failed deep inside the
	// player ("cannot segmentize empty stream") instead of up front.
	if cfg.Trace == nil {
		fps := cfg.FPS
		if fps == 0 {
			fps = 30
		}
		if cfg.Duration.Seconds()*fps < 1 {
			return fmt.Errorf("experiments: %w: duration %v at %g fps yields no frames",
				ErrInvalidConfig, cfg.Duration, fps)
		}
	}
	return nil
}

// buildGovernor returns the governor plus, when video-aware, its session
// hooks; a non-nil tracer is attached to the video-aware policies.
func buildGovernor(cfg RunConfig, tr trace.Tracer) (governor.Governor, player.SessionHooks, *core.Governor, error) {
	switch cfg.Governor {
	case GovEnergyAware:
		pol := cfg.Policy
		if pol == (core.Config{}) {
			pol = core.DefaultConfig()
		}
		g, err := core.New(pol)
		if err != nil {
			return nil, nil, nil, err
		}
		if tr != nil {
			g.SetTracer(tr)
		}
		return g, g, g, nil
	case GovOracle:
		o := core.NewOracle()
		if tr != nil {
			o.SetTracer(tr)
		}
		return o, o, nil, nil
	default:
		g, err := governor.New(string(cfg.Governor))
		if err != nil {
			return nil, nil, nil, err
		}
		return g, nil, nil, nil
	}
}

func buildBandwidth(cfg RunConfig) (netsim.Bandwidth, netsim.RRCConfig, error) {
	rrc := netsim.DefaultLTE()
	var bw netsim.Bandwidth
	switch cfg.Net {
	case NetWiFi, "":
		bw = netsim.WiFiSteady()
	case NetConst8:
		bw = netsim.Constant{Bps: 8e6}
	case NetLTE:
		tr, err := netsim.GenMarkovTrace(netsim.LTEStates(), cfg.Duration*4, sim.Stream(cfg.Seed, "bw/lte"))
		if err != nil {
			return nil, rrc, err
		}
		bw = tr
	case NetUMTS:
		tr, err := netsim.GenMarkovTrace(netsim.UMTSStates(), cfg.Duration*4, sim.Stream(cfg.Seed, "bw/umts"))
		if err != nil {
			return nil, rrc, err
		}
		bw = tr
		rrc = netsim.DefaultUMTS()
	default:
		return nil, rrc, fmt.Errorf("experiments: unknown network kind %q", cfg.Net)
	}
	if cfg.RRC != nil {
		rrc = *cfg.RRC
	}
	return bw, rrc, nil
}

// streamKey identifies one deterministic rendition-set request. Generation
// is a pure function of these fields, so identical requests can share the
// generated (read-only) streams.
type streamKey struct {
	title  video.Title
	rung   video.Resolution
	codec  string
	ladder bool
	fps    float64
	dur    sim.Time
	seed   int64
}

// streamCache memoizes generated rendition sets across runs. Streams are
// immutable after Generate (sessions segmentize and copy frames by value),
// so sharing them between concurrent campaign runs is safe and changes no
// output — it only removes the dominant setup cost of repeated runs.
var streamCache sync.Map // streamKey -> []*video.Stream

func buildRenditions(cfg RunConfig) ([]*video.Stream, abr.Algorithm, error) {
	fps := cfg.FPS
	if fps == 0 {
		fps = 30
	}
	if cfg.Trace != nil {
		if len(cfg.Trace.Frames) == 0 {
			return nil, nil, fmt.Errorf("experiments: empty frame trace")
		}
		return []*video.Stream{cfg.Trace}, abr.Fixed{Rung: 0}, nil
	}
	codec := video.DefaultCodec()
	if cfg.Codec != "" {
		var err error
		codec, err = video.CodecByName(cfg.Codec)
		if err != nil {
			return nil, nil, err
		}
	}
	key := streamKey{
		title: cfg.Title,
		codec: cfg.Codec,
		fps:   fps,
		dur:   cfg.Duration,
		seed:  cfg.Seed,
	}
	switch cfg.ABR {
	case "", ABRFixed:
		key.rung = cfg.Rung
		if cached, ok := streamCache.Load(key); ok {
			return cached.([]*video.Stream), abr.Fixed{Rung: 0}, nil
		}
		spec := video.DefaultSpec(cfg.Title, cfg.Rung).WithCodec(codec)
		spec.FPS = fps
		s, err := video.Generate(spec, cfg.Duration, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		streams := []*video.Stream{s}
		streamCache.Store(key, streams)
		return streams, abr.Fixed{Rung: 0}, nil
	default:
		algo, err := abr.New(string(cfg.ABR))
		if err != nil {
			return nil, nil, err
		}
		key.ladder = true
		if cached, ok := streamCache.Load(key); ok {
			return cached.([]*video.Stream), algo, nil
		}
		streams, err := video.GenerateLadder(cfg.Title, fps, video.DefaultLadder(), cfg.Duration, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		streamCache.Store(key, streams)
		return streams, algo, nil
	}
}

// ErrHorizonExceeded reports that a session was still incomplete when the
// simulation horizon (RunConfig.Horizon, default Duration*6 + 60 s) cut
// the run off — the link could not sustain the stream within the cap.
// Callers distinguish it with errors.Is.
var ErrHorizonExceeded = errors.New("simulation horizon exceeded")

// newChecker builds the invariant checker; a test hook so the typed
// violation path through Run can be exercised with a deliberately
// mis-grounded checker (the model itself holds its invariants).
var newChecker = invariant.New

// buildChecker arms the invariant checker for strict runs (nil
// otherwise), grounding it in the run's static truth: the device's OPP
// table and, when the cpuidle model is on, the C-state ladder.
func buildChecker(cfg RunConfig) *invariant.Checker {
	if !cfg.Strict && !strictDefault() {
		return nil
	}
	ic := invariant.Config{OPPFreqsHz: make([]float64, len(cfg.Device.OPPs))}
	for i, o := range cfg.Device.OPPs {
		ic.OPPFreqsHz[i] = o.FreqHz
	}
	if cfg.CStates {
		for _, cs := range cpu.DefaultCStates() {
			ic.CStateNames = append(ic.CStateNames, cs.Name)
		}
	}
	return newChecker(ic)
}

// Run executes one simulation and returns its result. The config is
// validated up front (see Validate); invalid configs fail with
// ErrInvalidConfig before any simulation state is built.
func Run(cfg RunConfig) (RunResult, error) {
	if cfg.Trace != nil && cfg.Duration <= 0 {
		cfg.Duration = cfg.Trace.Duration()
	}
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	if cfg.Device.Name == "" {
		cfg.Device = cpu.DeviceFlagship()
	}
	if cfg.Title.Name == "" {
		cfg.Title = video.TitleSports
	}
	if cfg.Rung.Name == "" {
		cfg.Rung = video.R720p
	}

	tr := cfg.Tracer
	var closeTrace func() error
	if tr == nil {
		if f := currentTraceFactory(); f != nil {
			tr, closeTrace = f(cfg)
		}
	}
	chk := buildChecker(cfg)
	if chk != nil {
		// The checker rides first in the tee; it only observes, so every
		// downstream tracer sees the identical stream.
		if tr == nil {
			tr = chk
		} else {
			tr = trace.Tee{chk, tr}
		}
	}
	closed := false
	defer func() {
		if closeTrace != nil && !closed {
			closeTrace() // error path: best-effort flush
		}
	}()

	eng := sim.NewEngine()
	meter := energy.NewMeter(eng)

	coreCPU, err := cpu.NewCore(eng, cfg.Device)
	if err != nil {
		return RunResult{}, err
	}
	if cfg.CStates {
		if err := coreCPU.EnableCStates(cpu.DefaultCStates()); err != nil {
			return RunResult{}, err
		}
	}
	if tr != nil {
		coreCPU.SetTracer(tr)
	}
	coreCPU.OnPower(tracedListener(meter, energy.ComponentCPU, tr))

	gov, hooks, eaGov, err := buildGovernor(cfg, tr)
	if err != nil {
		return RunResult{}, err
	}
	if err := gov.Attach(eng, coreCPU); err != nil {
		return RunResult{}, err
	}
	defer gov.Detach()

	bw, rrcCfg, err := buildBandwidth(cfg)
	if err != nil {
		return RunResult{}, err
	}
	radio, err := netsim.NewRadio(eng, rrcCfg)
	if err != nil {
		return RunResult{}, err
	}
	if tr != nil {
		radio.SetTracer(tr)
	}
	radio.OnPower(tracedListener(meter, energy.ComponentRadio, tr))

	dl, err := netsim.NewDownloader(eng, bw, radio, coreCPU, netsim.DefaultDownloaderConfig())
	if err != nil {
		return RunResult{}, err
	}

	var thermal *cpu.Thermal
	if cfg.Thermal != nil {
		thermal, err = cpu.StartThermal(eng, coreCPU, *cfg.Thermal)
		if err != nil {
			return RunResult{}, err
		}
		defer thermal.Stop()
	}

	var bg *cpu.LoadGen
	if cfg.Background {
		bg, err = cpu.StartLoadGen(eng, coreCPU, sim.Stream(cfg.Seed, "bgload"), cpu.DefaultLoadGenConfig())
		if err != nil {
			return RunResult{}, err
		}
	}

	renditions, algo, err := buildRenditions(cfg)
	if err != nil {
		return RunResult{}, err
	}

	pcfg := player.DefaultConfig()
	if cfg.SegmentDur > 0 {
		pcfg.SegmentDur = cfg.SegmentDur
	}
	pcfg.ABR = algo
	pcfg.Hooks = hooks
	pcfg.Meter = meter
	pcfg.Tracer = tr
	if cfg.LowLatency {
		pcfg.StartupSec = 1
		pcfg.ResumeSec = 0.5
		pcfg.MaxBufferSec = 4
		pcfg.DecodedQueueCap = 3
	}
	if cfg.DecodedQueueCap > 0 {
		pcfg.DecodedQueueCap = cfg.DecodedQueueCap
	}
	pcfg.LowWaterSec = cfg.LowWaterSec
	sess, err := player.NewSession(eng, coreCPU, dl, renditions, pcfg)
	if err != nil {
		return RunResult{}, err
	}
	var probe *sim.Ticker
	if cfg.OnSample != nil {
		probe = sim.NewTicker(eng, 100*sim.Millisecond, func(now sim.Time) {
			cfg.OnSample(now, coreCPU.FreqHz()/1e9, coreCPU.Power(), sess.BufferSec())
		})
	}
	sess.OnDone(func() {
		if bg != nil {
			bg.Stop()
		}
		if probe != nil {
			probe.Stop()
		}
		eng.Stop()
	})
	sess.Start()

	horizon := cfg.Duration*6 + 60*sim.Second
	if cfg.Horizon > 0 {
		horizon = cfg.Horizon
	}
	end := eng.RunUntil(horizon)
	meter.Finish()

	if closeTrace != nil {
		closed = true
		if cerr := closeTrace(); cerr != nil {
			return RunResult{}, fmt.Errorf("experiments: trace sink: %w", cerr)
		}
	}

	if err := sess.Err(); err != nil {
		return RunResult{}, fmt.Errorf("experiments: session: %w", err)
	}
	if chk != nil {
		m := sess.Metrics()
		counts := sess.Decoder().Counts()
		rrcRes := make(map[string]sim.Time, 4)
		for state, d := range radio.Residency() {
			rrcRes[state.String()] = d
		}
		if v := chk.Finalize(invariant.Final{
			End:           eng.Now(),
			CPUJ:          meter.ComponentJ(energy.ComponentCPU),
			RadioJ:        meter.ComponentJ(energy.ComponentRadio),
			DisplayJ:      meter.ComponentJ(energy.ComponentDisplay),
			FreqResidency: coreCPU.FreqResidency(),
			RRCResidency:  rrcRes,
			IdleResidency: coreCPU.IdleStateResidency(),
			Displayed:     m.DisplayedFrames,
			Dropped:       m.DroppedFrames,
			Total:         m.TotalFrames,
			Decoded:       counts.Decoded,
			Discarded:     counts.Discarded,
			ReadyLeft:     sess.Decoder().ReadyLen(),
			Completed:     m.Completed,
		}); v != nil {
			return RunResult{}, fmt.Errorf("experiments: strict: %w", v)
		}
	}
	if m := sess.Metrics(); !m.Completed && end >= horizon {
		return RunResult{}, fmt.Errorf("experiments: %w: session at %d/%d frames when the %v horizon hit",
			ErrHorizonExceeded, m.DisplayedFrames+m.DroppedFrames, m.TotalFrames, horizon)
	}
	if dl.Err() != nil {
		return RunResult{}, fmt.Errorf("experiments: downloader: %w", dl.Err())
	}
	if bg != nil && bg.Err() != nil {
		return RunResult{}, fmt.Errorf("experiments: background load: %w", bg.Err())
	}

	res := RunResult{
		Governor:        gov.Name(),
		CPUJ:            meter.ComponentJ(energy.ComponentCPU),
		RadioJ:          meter.ComponentJ(energy.ComponentRadio),
		DisplayJ:        meter.ComponentJ(energy.ComponentDisplay),
		QoE:             sess.Metrics(),
		FreqResidency:   coreCPU.FreqResidency(),
		RadioResidency:  radio.Residency(),
		RadioPromotions: radio.Promotions(),
		Fetches:         dl.Fetches(),
		SimEnd:          eng.Now(),
	}
	res.MeanFreqGHz = meanFreqGHz(cfg.Device, res.FreqResidency)
	res.IdleResidency = coreCPU.IdleStateResidency()
	res.OPPTransitions = coreCPU.Transitions()
	if thermal != nil {
		res.MaxTempC = thermal.MaxTempC()
		res.ThrottleEvents = thermal.ThrottleEvents()
		res.ThrottledS = thermal.ThrottledTime().Seconds()
	}
	if eaGov != nil {
		st := eaGov.PredStats()
		res.Pred = &st
	}
	return res, nil
}

func meanFreqGHz(model cpu.Model, residency map[int]sim.Time) float64 {
	// Iterate OPP indices in order, not the map: float summation order
	// must be fixed or the last bit of the mean varies run to run,
	// breaking the bit-identical determinism contract.
	var num, den float64
	for idx := range model.OPPs {
		d, ok := residency[idx]
		if !ok {
			continue
		}
		num += model.OPPs[idx].FreqHz * d.Seconds()
		den += d.Seconds()
	}
	if den == 0 {
		return 0
	}
	return num / den / 1e9
}
