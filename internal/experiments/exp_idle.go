package experiments

import (
	"fmt"
)

// FigF16 reproduces Figure 16 (extension): race-to-idle versus pacing.
// "Race" decodes every frame at fmax and sleeps in deep idle states
// between frames (the performance governor with cpuidle); "pace" is the
// energy-aware policy running near the sustained rate. On a convex power
// curve pacing wins even against ideal deep idle — the quantitative
// justification for frequency scaling over pure sleep-state policies.
func FigF16() (Table, error) {
	t := Table{
		ID:     "f16",
		Title:  "Race-to-idle vs pacing (720p@30, 60 s): fmax+deep-sleep against low-frequency pacing",
		Header: []string{"policy", "cstates", "cpu_j", "idle_share", "deep_idle_share", "drops"},
		Notes:  "deep idle recovers part of racing's waste (idle is ~70% of time at fmax) but pacing still wins by ≈2×: energy/cycle at fmax is ~4× the minimum",
	}
	var cfgs []RunConfig
	for _, gov := range []GovernorID{GovPerformance, GovEnergyAware} {
		for _, cstates := range []bool{false, true} {
			cfg := DefaultRunConfig()
			cfg.Governor = gov
			cfg.CStates = cstates
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f16: %w", err)
	}
	for i, res := range results {
		cfg := cfgs[i]
		idleShare, deepShare := idleShares(res)
		name := "race (" + string(cfg.Governor) + ")"
		if cfg.Governor == GovEnergyAware {
			name = "pace (" + string(cfg.Governor) + ")"
		}
		t.Rows = append(t.Rows, []string{
			name, onOff(cfg.CStates), f1(res.CPUJ), pct(idleShare), pct(deepShare),
			iv(res.QoE.DroppedFrames),
		})
	}
	return t, nil
}

// idleShares returns (idle fraction of the run, deep-idle fraction of
// idle time). Both are zero when C-states are off (no residency data).
func idleShares(res RunResult) (idleShare, deepShare float64) {
	if res.IdleResidency == nil || res.SimEnd <= 0 {
		return 0, 0
	}
	var idle, deep float64
	for name, d := range res.IdleResidency {
		idle += d.Seconds()
		if name == "power-collapse" {
			deep += d.Seconds()
		}
	}
	if idle == 0 {
		return 0, 0
	}
	return idle / res.SimEnd.Seconds(), deep / idle
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
