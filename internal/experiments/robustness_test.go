package experiments

import (
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// TestOutageMidSessionRecovers injects a 10 s total outage during
// playback (via the Markov UMTS trace's outage state this is routine, but
// here we force a deterministic long one through a seed scan) and checks
// the session stalls and then completes with conserved frames.
func TestOutageMidSessionRecovers(t *testing.T) {
	// The UMTS trace at 2.5 Mbps mean against a 4 Mbps rung guarantees
	// starvation stalls; the session must still finish (with rebuffers,
	// not drops or errors).
	cfg := DefaultRunConfig()
	cfg.Net = NetUMTS
	cfg.Duration = 60 * sim.Second
	res := mustRun(t, cfg)
	if !res.QoE.Completed {
		t.Fatal("starved session did not complete within the horizon")
	}
	if res.QoE.RebufferCount == 0 {
		t.Fatal("expected stalls on a starved link")
	}
	if res.QoE.DisplayedFrames+res.QoE.DroppedFrames != res.QoE.TotalFrames {
		t.Fatalf("frame conservation broken after stalls: %+v", res.QoE)
	}
	if res.QoE.DroppedFrames > res.QoE.TotalFrames/100 {
		t.Fatalf("starvation must stall, not drop: %d drops", res.QoE.DroppedFrames)
	}
}

// TestPersistentStarvationBoundedBehaviour runs a stream the link can
// never sustain and checks nothing pathological happens before the
// horizon.
func TestPersistentStarvationBoundedBehaviour(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Rung = video.R1080p // 8 Mbps content...
	cfg.Net = NetUMTS       // ...over a ≈2.5 Mbps link
	cfg.Duration = 120 * sim.Second
	res := mustRun(t, cfg)
	// ~3.2× undersized: the session may or may not squeeze in before the
	// generous horizon, but accounting must stay sane either way.
	if res.QoE.DisplayedFrames > res.QoE.TotalFrames {
		t.Fatalf("displayed more frames than exist: %+v", res.QoE)
	}
	if res.QoE.RebufferTime < 0 || res.QoE.StartupDelay < 0 {
		t.Fatalf("negative time metrics: %+v", res.QoE)
	}
	if res.CPUJ <= 0 || res.RadioJ <= 0 {
		t.Fatalf("energy accounting missing: %+v", res)
	}
}

// TestThermalThrottlingPreservesSafety runs the hottest configuration and
// checks the throttler keeps temperature bounded without breaking the
// player.
func TestThermalThrottlingPreservesSafety(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Governor = "performance"
	cfg.Rung = video.R1080p
	cfg.Duration = 120 * sim.Second
	th := cpu.DefaultThermalConfig()
	th.TripC = 55 // very tight: heavy throttling
	cfg.Thermal = &th
	res := mustRun(t, cfg)
	if res.MaxTempC > th.TripC+5 {
		t.Fatalf("temperature %.1f ran away past trip %v", res.MaxTempC, th.TripC)
	}
	if res.ThrottleEvents == 0 {
		t.Fatal("tight trip should throttle a racing governor")
	}
	if !res.QoE.Completed {
		t.Fatal("throttled session did not complete")
	}
	// Heavy throttling on hot content costs frames — but playback must
	// not collapse outright.
	if res.QoE.DropRate() > 0.5 {
		t.Fatalf("drop rate %.2f: throttling collapsed playback", res.QoE.DropRate())
	}
}

// TestThermalEnergyAwareStaysCool asserts the F14 claim directly.
func TestThermalEnergyAwareStaysCool(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Rung = video.R1080p
	cfg.Duration = 120 * sim.Second
	th := cpu.DefaultThermalConfig()
	th.TripC = 62
	cfg.Thermal = &th
	res := mustRun(t, cfg)
	if res.ThrottleEvents != 0 {
		t.Fatalf("energy-aware policy throttled (%d events, max %.1f °C)", res.ThrottleEvents, res.MaxTempC)
	}
	if res.MaxTempC >= th.TripC {
		t.Fatalf("max temperature %.1f reached the trip", res.MaxTempC)
	}
}

// TestClusterRunDeterministicAndBeneficial asserts the F15 claims.
func TestClusterRunDeterministicAndBeneficial(t *testing.T) {
	a, err := RunCluster(video.R480p, 30*sim.Second, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(video.R480p, 30*sim.Second, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalJ() != b.TotalJ() || a.QoE != b.QoE {
		t.Fatal("cluster runs nondeterministic")
	}
	bigOnly, err := RunCluster(video.R480p, 30*sim.Second, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalJ() >= bigOnly.TotalJ() {
		t.Fatalf("cluster placement (%.1f J) should beat big-only (%.1f J) at 480p", a.TotalJ(), bigOnly.TotalJ())
	}
	if a.LittleShare < 0.8 {
		t.Fatalf("480p little share %.2f, want ≥ 0.8", a.LittleShare)
	}
	if a.QoE.DroppedFrames != bigOnly.QoE.DroppedFrames {
		t.Fatalf("cluster placement changed QoE: %d vs %d drops", a.QoE.DroppedFrames, bigOnly.QoE.DroppedFrames)
	}
}

// TestHEVCTradesCPUForRadio asserts the F17 claim.
func TestHEVCTradesCPUForRadio(t *testing.T) {
	run := func(codec string) RunResult {
		cfg := DefaultRunConfig()
		cfg.Codec = codec
		cfg.Net = NetUMTS
		cfg.Duration = 60 * sim.Second
		return mustRun(t, cfg)
	}
	h264 := run("h264")
	hevc := run("hevc")
	if hevc.CPUJ <= h264.CPUJ {
		t.Fatalf("HEVC CPU %.1f J should exceed H.264 %.1f J", hevc.CPUJ, h264.CPUJ)
	}
	if hevc.RadioJ >= h264.RadioJ {
		t.Fatalf("HEVC radio %.1f J should undercut H.264 %.1f J on 3G", hevc.RadioJ, h264.RadioJ)
	}
	bad := DefaultRunConfig()
	bad.Codec = "av1"
	if _, err := Run(bad); err == nil {
		t.Fatal("want error for unknown codec")
	}
}

// TestLowLatencyModeKeepsSavings asserts the F19 claim.
func TestLowLatencyModeKeepsSavings(t *testing.T) {
	run := func(gov GovernorID) RunResult {
		cfg := DefaultRunConfig()
		cfg.Governor = gov
		cfg.LowLatency = true
		return mustRun(t, cfg)
	}
	ea := run("energyaware")
	od := run("ondemand")
	if ea.CPUJ >= od.CPUJ*0.9 {
		t.Fatalf("low-latency saving collapsed: %.1f vs %.1f J", ea.CPUJ, od.CPUJ)
	}
	if ea.QoE.StartupDelay > 3*sim.Second {
		t.Fatalf("low-latency startup %v too slow", ea.QoE.StartupDelay)
	}
	if ea.QoE.DropRate() > 0.01 {
		t.Fatalf("low-latency drop rate %.3f too high", ea.QoE.DropRate())
	}
}

// TestCStatesNeverHurt asserts the cpuidle model only reduces energy.
func TestCStatesNeverHurt(t *testing.T) {
	for _, gov := range []GovernorID{GovPerformance, GovEnergyAware} {
		base := DefaultRunConfig()
		base.Governor = gov
		plain := mustRun(t, base)
		withC := base
		withC.CStates = true
		deep := mustRun(t, withC)
		if deep.CPUJ > plain.CPUJ*1.005 {
			t.Fatalf("%s: C-states increased energy %.1f → %.1f J", gov, plain.CPUJ, deep.CPUJ)
		}
		if deep.QoE.DroppedFrames > plain.QoE.DroppedFrames+2 {
			t.Fatalf("%s: C-state exit latency cost frames: %d vs %d", gov, deep.QoE.DroppedFrames, plain.QoE.DroppedFrames)
		}
	}
}

// TestPlaylistComposition asserts the T7 claims: deterministic, all clips
// complete, and the two optimizations compose.
func TestPlaylistComposition(t *testing.T) {
	run := func(gov string, fd bool) PlaylistResult {
		res, err := RunPlaylist(PlaylistConfig{
			Governor: gov, Videos: 2, VideoDur: 30 * sim.Second,
			ThinkDur: 20 * sim.Second, FastDormancy: fd, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != 2 {
			t.Fatalf("%s fd=%v: %d/2 clips", gov, fd, res.Completed)
		}
		return res
	}
	odTails := run("ondemand", false)
	eaTails := run("energyaware", false)
	eaFast := run("energyaware", true)
	if eaTails.CPUJ >= odTails.CPUJ {
		t.Fatalf("policy saving missing in playlist: %.1f vs %.1f", eaTails.CPUJ, odTails.CPUJ)
	}
	if eaFast.RadioJ >= eaTails.RadioJ {
		t.Fatalf("fast dormancy saving missing: %.1f vs %.1f", eaFast.RadioJ, eaTails.RadioJ)
	}
	if eaFast.TotalJ() >= odTails.TotalJ() {
		t.Fatal("combined optimizations should beat the baseline")
	}
	again := run("energyaware", true)
	if again.TotalJ() != eaFast.TotalJ() {
		t.Fatal("playlist nondeterministic")
	}
}

func TestPlaylistValidation(t *testing.T) {
	bad := []PlaylistConfig{
		{Governor: "ondemand", Videos: 0, VideoDur: sim.Second},
		{Governor: "ondemand", Videos: 1, VideoDur: 0},
		{Governor: "ondemand", Videos: 1, VideoDur: sim.Second, ThinkDur: -1},
	}
	for i, cfg := range bad {
		if _, err := RunPlaylist(cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := RunPlaylist(PlaylistConfig{Governor: "warp", Videos: 1, VideoDur: sim.Second}); err == nil {
		t.Error("want error for unknown governor")
	}
}

// TestSMPDomain asserts the F21 claims: QoE is unaffected by core count
// and energy grows with idle cores.
func TestSMPDomain(t *testing.T) {
	one, err := RunSMP(1, video.R720p, 30*sim.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunSMP(4, video.R720p, 30*sim.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if one.QoE.DroppedFrames != four.QoE.DroppedFrames {
		t.Fatalf("core count changed QoE: %d vs %d drops", one.QoE.DroppedFrames, four.QoE.DroppedFrames)
	}
	if four.CPUJ <= one.CPUJ {
		t.Fatalf("idle cores should cost energy: %.1f vs %.1f J", four.CPUJ, one.CPUJ)
	}
	if !one.QoE.Completed || !four.QoE.Completed {
		t.Fatal("SMP sessions did not complete")
	}
}
