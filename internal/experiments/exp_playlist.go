package experiments

import (
	"fmt"

	"videodvfs/internal/abr"
	"videodvfs/internal/core"
	"videodvfs/internal/cpu"
	"videodvfs/internal/energy"
	"videodvfs/internal/governor"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// PlaylistConfig describes a realistic usage session: the user watches
// several short videos back to back with think-time pauses (browsing the
// next video) between them. The pauses are where radio tail energy and
// fast dormancy matter most.
type PlaylistConfig struct {
	// Governor is the policy name ("energyaware" or a cpufreq name).
	Governor string
	// Videos is the number of clips.
	Videos int
	// VideoDur is each clip's length.
	VideoDur sim.Time
	// ThinkDur is the pause between clips.
	ThinkDur sim.Time
	// FastDormancy releases the radio immediately after each burst.
	FastDormancy bool
	// Seed drives all stochastic inputs.
	Seed int64
}

// Validate checks the configuration.
func (c PlaylistConfig) Validate() error {
	if c.Videos <= 0 {
		return fmt.Errorf("playlist: %d videos", c.Videos)
	}
	if c.VideoDur <= 0 || c.ThinkDur < 0 {
		return fmt.Errorf("playlist: video %v / think %v durations invalid", c.VideoDur, c.ThinkDur)
	}
	return nil
}

// PlaylistResult summarizes a usage session.
type PlaylistResult struct {
	// CPUJ, RadioJ, DisplayJ are per-component energies.
	CPUJ, RadioJ, DisplayJ float64
	// WallS is the whole session span including pauses.
	WallS float64
	// Drops and Rebuffers aggregate across clips.
	Drops, Rebuffers int
	// Completed counts clips that finished.
	Completed int
}

// TotalJ returns whole-device energy.
func (r PlaylistResult) TotalJ() float64 { return r.CPUJ + r.RadioJ + r.DisplayJ }

// MeanW returns the session's mean device power.
func (r PlaylistResult) MeanW() float64 {
	if r.WallS <= 0 {
		return 0
	}
	return r.TotalJ() / r.WallS
}

// RunPlaylist simulates the usage session on shared hardware: one CPU,
// one radio, one governor across all clips (so the demand predictor stays
// warm between videos, as it would on a device).
func RunPlaylist(cfg PlaylistConfig) (PlaylistResult, error) {
	if err := cfg.Validate(); err != nil {
		return PlaylistResult{}, err
	}
	eng := sim.NewEngine()
	meter := energy.NewMeter(eng)

	coreCPU, err := cpu.NewCore(eng, cpu.DeviceFlagship())
	if err != nil {
		return PlaylistResult{}, err
	}
	coreCPU.OnPower(meter.Listener(energy.ComponentCPU))

	var (
		gov   governor.Governor
		hooks player.SessionHooks
	)
	if cfg.Governor == "energyaware" {
		g, gerr := core.New(core.DefaultConfig())
		if gerr != nil {
			return PlaylistResult{}, gerr
		}
		gov, hooks = g, g
	} else {
		g, gerr := governor.New(cfg.Governor)
		if gerr != nil {
			return PlaylistResult{}, gerr
		}
		gov = g
	}
	if err := gov.Attach(eng, coreCPU); err != nil {
		return PlaylistResult{}, err
	}
	defer gov.Detach()

	rrc := netsim.DefaultUMTS()
	rrc.FastDormancy = cfg.FastDormancy
	radio, err := netsim.NewRadio(eng, rrc)
	if err != nil {
		return PlaylistResult{}, err
	}
	radio.OnPower(meter.Listener(energy.ComponentRadio))
	dl, err := netsim.NewDownloader(eng, netsim.Constant{Bps: 8e6}, radio, coreCPU, netsim.DefaultDownloaderConfig())
	if err != nil {
		return PlaylistResult{}, err
	}
	bg, err := cpu.StartLoadGen(eng, coreCPU, sim.Stream(cfg.Seed, "bgload"), cpu.DefaultLoadGenConfig())
	if err != nil {
		return PlaylistResult{}, err
	}

	var out PlaylistResult
	var startClip func(i int)
	startClip = func(i int) {
		if i >= cfg.Videos {
			bg.Stop()
			eng.Stop()
			return
		}
		spec := video.DefaultSpec(video.TitleSports, video.R720p)
		stream, gerr := video.Generate(spec, cfg.VideoDur, cfg.Seed+int64(i))
		if gerr != nil {
			if err == nil {
				err = gerr
			}
			eng.Stop()
			return
		}
		pcfg := player.DefaultConfig()
		pcfg.ABR = abr.Fixed{Rung: 0}
		pcfg.Hooks = hooks
		pcfg.Meter = meter
		pcfg.LowWaterSec = 10 // burst prefetch: realistic radio pattern
		sess, serr := player.NewSession(eng, coreCPU, dl, []*video.Stream{stream}, pcfg)
		if serr != nil {
			if err == nil {
				err = serr
			}
			eng.Stop()
			return
		}
		sess.OnDone(func() {
			m := sess.Metrics()
			out.Drops += m.DroppedFrames
			out.Rebuffers += m.RebufferCount
			out.Completed++
			eng.Schedule(cfg.ThinkDur, func() { startClip(i + 1) })
		})
		sess.Start()
	}
	startClip(0)
	horizon := sim.Time(cfg.Videos)*(cfg.VideoDur*6+cfg.ThinkDur) + 120*sim.Second
	eng.RunUntil(horizon)
	meter.Finish()
	if err != nil {
		return PlaylistResult{}, err
	}
	out.CPUJ = meter.ComponentJ(energy.ComponentCPU)
	out.RadioJ = meter.ComponentJ(energy.ComponentRadio)
	out.DisplayJ = meter.ComponentJ(energy.ComponentDisplay)
	out.WallS = eng.Now().Seconds()
	return out, nil
}

// TableT7 reproduces Table 7 (extension): the whole usage session —
// watch, pause, watch — where radio tails during think time meet the CPU
// policy during playback.
func TableT7() (Table, error) {
	t := Table{
		ID:     "t7",
		Title:  "Usage session (3 × 60 s clips, 30 s think time, UMTS): policy × dormancy",
		Header: []string{"governor", "dormancy", "cpu_j", "radio_j", "display_j", "total_j", "mean_w", "drops", "rebuffers"},
		Notes:  "the two savings compose: the CPU policy cuts playback energy while fast dormancy reclaims the think-time radio tails",
	}
	for _, gov := range []string{"ondemand", "energyaware"} {
		for _, fd := range []bool{false, true} {
			res, err := RunPlaylist(PlaylistConfig{
				Governor:     gov,
				Videos:       3,
				VideoDur:     60 * sim.Second,
				ThinkDur:     30 * sim.Second,
				FastDormancy: fd,
				Seed:         1,
			})
			if err != nil {
				return Table{}, fmt.Errorf("t7 %s fd=%v: %w", gov, fd, err)
			}
			if res.Completed != 3 {
				return Table{}, fmt.Errorf("t7 %s fd=%v: %d/3 clips completed", gov, fd, res.Completed)
			}
			dormancy := "tails"
			if fd {
				dormancy = "fast"
			}
			t.Rows = append(t.Rows, []string{
				gov, dormancy, f1(res.CPUJ), f1(res.RadioJ), f1(res.DisplayJ),
				f1(res.TotalJ()), f2c(res.MeanW()), iv(res.Drops), iv(res.Rebuffers),
			})
		}
	}
	return t, nil
}
