package experiments

import (
	"fmt"

	"videodvfs/internal/video"
)

// residencyBands folds per-OPP residency into low/mid/high frequency bands
// (≤50%, 50–80%, ≥80% of fmax).
func residencyBands(res RunResult, fmaxHz float64, model []float64) (low, mid, high float64) {
	var total float64
	for idx, d := range res.FreqResidency {
		if idx < 0 || idx >= len(model) {
			continue
		}
		frac := model[idx] / fmaxHz
		sec := d.Seconds()
		total += sec
		switch {
		case frac >= 0.8:
			high += sec
		case frac > 0.5:
			mid += sec
		default:
			low += sec
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return low / total, mid / total, high / total
}

func oppFreqs(cfg RunConfig) []float64 {
	out := make([]float64, len(cfg.Device.OPPs))
	for i, o := range cfg.Device.OPPs {
		out[i] = o.FreqHz
	}
	return out
}

// FigF3 reproduces Figure 3 (motivation): where the stock ondemand
// governor spends its time during 720p streaming versus the frequency the
// content actually needs.
func FigF3() (Table, error) {
	cfg := DefaultRunConfig()
	cfg.Governor = "ondemand"
	res, err := Run(cfg)
	if err != nil {
		return Table{}, err
	}
	spec := video.DefaultSpec(cfg.Title, cfg.Rung)
	stream, err := video.Generate(spec, cfg.Duration, cfg.Seed)
	if err != nil {
		return Table{}, err
	}
	needMHz := stream.SustainedHz() / 1e6
	low, mid, high := residencyBands(res, cfg.Device.Fmax(), oppFreqs(cfg))
	t := Table{
		ID:     "f3",
		Title:  "Motivation: ondemand residency during 720p@30 streaming vs actual need",
		Header: []string{"metric", "value"},
		Notes:  "ondemand parks far above the sustained requirement; the gap is wasted energy",
	}
	t.Rows = [][]string{
		{"sustained need (MHz)", fmt.Sprintf("%.0f", needMHz)},
		{"mean frequency (MHz)", fmt.Sprintf("%.0f", res.MeanFreqGHz*1e3)},
		{"time at ≤50% fmax", pct(low)},
		{"time at 50–80% fmax", pct(mid)},
		{"time at ≥80% fmax", pct(high)},
		{"CPU energy (J)", f1(res.CPUJ)},
		{"dropped frames", iv(res.QoE.DroppedFrames)},
	}
	return t, nil
}

// motivationGovernors is the governor set for the residency comparison.
func motivationGovernors() []GovernorID {
	return []GovernorID{GovPerformance, GovOndemand, GovInteractive, GovSchedutil, GovConservative, GovEnergyAware, GovOracle}
}

// FigF4 reproduces Figure 4: frequency-residency distribution per
// governor during 720p streaming.
func FigF4() (Table, error) {
	t := Table{
		ID:     "f4",
		Title:  "Frequency residency by governor (720p@30, 8 Mbps)",
		Header: []string{"governor", "mean_ghz", "≤50%fmax", "50–80%", "≥80%", "cpu_j", "drops"},
		Notes:  "the energy-aware policy concentrates residency in the low band without dropping frames",
	}
	sw := Sweep{Base: DefaultRunConfig(), Governors: motivationGovernors()}
	cfgs := sw.Expand()
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f4: %w", err)
	}
	for i, res := range results {
		cfg := cfgs[i]
		low, mid, high := residencyBands(res, cfg.Device.Fmax(), oppFreqs(cfg))
		t.Rows = append(t.Rows, []string{
			string(cfg.Governor), f2c(res.MeanFreqGHz), pct(low), pct(mid), pct(high),
			f1(res.CPUJ), iv(res.QoE.DroppedFrames),
		})
	}
	return t, nil
}
