package experiments

import (
	"bytes"
	"strings"
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
)

func TestCanonicalConfigDeterministic(t *testing.T) {
	a, ok := CanonicalConfig(DefaultRunConfig())
	if !ok {
		t.Fatal("default config reported uncacheable")
	}
	b, _ := CanonicalConfig(DefaultRunConfig())
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical bytes differ across calls:\n%s\n---\n%s", a, b)
	}
	k1, _ := ConfigKey(DefaultRunConfig())
	k2, _ := ConfigKey(DefaultRunConfig())
	if k1 != k2 || len(k1) != 64 {
		t.Fatalf("keys differ or malformed: %q vs %q", k1, k2)
	}
}

func TestCanonicalConfigSeparatesFields(t *testing.T) {
	base := DefaultRunConfig()
	mutations := map[string]func(*RunConfig){
		"seed":     func(c *RunConfig) { c.Seed = 99 },
		"governor": func(c *RunConfig) { c.Governor = GovOndemand },
		"net":      func(c *RunConfig) { c.Net = NetLTE },
		"duration": func(c *RunConfig) { c.Duration = 61 * sim.Second },
		"rung":     func(c *RunConfig) { c.Rung.Name = "720p-custom"; c.Rung.Width = 1281 },
		"device-opp": func(c *RunConfig) {
			c.Device.OPPs = append([]cpu.OPP(nil), c.Device.OPPs...)
			c.Device.OPPs[0].ActiveW *= 1.5
		},
		"policy":     func(c *RunConfig) { c.Policy.Margin = 0.33 },
		"rrc":        func(c *RunConfig) { rc := netsim.DefaultUMTS(); c.RRC = &rc },
		"thermal":    func(c *RunConfig) { th := cpu.DefaultThermalConfig(); c.Thermal = &th },
		"cstates":    func(c *RunConfig) { c.CStates = true },
		"codec":      func(c *RunConfig) { c.Codec = "hevc" },
		"fps":        func(c *RunConfig) { c.FPS = 24 },
		"horizon":    func(c *RunConfig) { c.Horizon = 10 * sim.Minute },
		"background": func(c *RunConfig) { c.Background = false },
	}
	baseKey, _ := ConfigKey(base)
	seen := map[string]string{"": baseKey}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		key, ok := ConfigKey(cfg)
		if !ok {
			t.Fatalf("%s: mutated config reported uncacheable", name)
		}
		for prev, prevKey := range seen {
			if key == prevKey {
				t.Fatalf("mutation %q collides with %q: key %s", name, prev, key)
			}
		}
		seen[name] = key
	}
}

// A device with the same name but a different power curve must not share
// a cache identity — the key is content-addressed, not name-addressed.
func TestCanonicalConfigDeviceContentNotName(t *testing.T) {
	a := DefaultRunConfig()
	b := DefaultRunConfig()
	b.Device.OPPs = append([]cpu.OPP(nil), b.Device.OPPs...)
	b.Device.OPPs[len(b.Device.OPPs)-1].IdleW += 0.001
	ka, _ := ConfigKey(a)
	kb, _ := ConfigKey(b)
	if ka == kb {
		t.Fatal("same-name devices with different OPP tables share a key")
	}
}

func TestCanonicalConfigUncacheable(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.OnSample = func(sim.Time, float64, float64, float64) {}
	if _, ok := CanonicalConfig(cfg); ok {
		t.Fatal("OnSample config reported cacheable")
	}
	cfg = DefaultRunConfig()
	cfg.Tracer = trace.NewCollector()
	if _, ok := ConfigKey(cfg); ok {
		t.Fatal("traced config reported cacheable")
	}
}

// The canonical form is line-oriented with every field present, so a
// field added to RunConfig without a canonical line is caught by the
// golden line count here (update deliberately when extending RunConfig
// and DESIGN.md §9 together).
func TestCanonicalConfigShape(t *testing.T) {
	b, _ := CanonicalConfig(DefaultRunConfig())
	lines := strings.Split(strings.TrimSuffix(string(b), "\n"), "\n")
	// 3 device header + 4 per OPP + 1 governor + 10 policy + 4 title +
	// 3 rung + abr/net/bwtrace/rrc + duration/seed/bgseed/queuecap/
	// lowwater + thermal + cstates/codec/lowlatency/segmentdur/
	// background/horizon/fps + 4 forecast.
	opps := len(DefaultRunConfig().Device.OPPs)
	want := 3 + 4*opps + 1 + 10 + 4 + 3 + 4 + 5 + 1 + 7 + 4
	if len(lines) != want {
		t.Fatalf("canonical form has %d lines, want %d:\n%s", len(lines), want, b)
	}
	for i, ln := range lines {
		if !strings.Contains(ln, "=") {
			t.Fatalf("line %d %q is not key=value", i, ln)
		}
	}
}

// Trace-backed configs stay cacheable (the fleet shards them by content
// key), and the trace samples are part of the identity: two configs
// differing only in trace content must never collide.
func TestCanonicalConfigHashesBWTrace(t *testing.T) {
	base := DefaultRunConfig()
	base.Net = NetTrace
	base.BWTrace = &netsim.Trace{Samples: []netsim.TraceSample{
		{Start: 0, End: 1, Bytes: 1000, Fetch: 0},
	}}
	b1, ok := CanonicalConfig(base)
	if !ok {
		t.Fatal("trace-backed config reported uncacheable")
	}
	other := base
	other.BWTrace = &netsim.Trace{Samples: []netsim.TraceSample{
		{Start: 0, End: 1, Bytes: 2000, Fetch: 0},
	}}
	b2, _ := CanonicalConfig(other)
	if bytes.Equal(b1, b2) {
		t.Fatal("different traces canonicalize identically")
	}
	same := base
	same.BWTrace = &netsim.Trace{Samples: []netsim.TraceSample{
		{Start: 0, End: 1, Bytes: 1000, Fetch: 0},
	}}
	b3, _ := CanonicalConfig(same)
	if !bytes.Equal(b1, b3) {
		t.Fatal("equal trace content canonicalizes differently across pointers")
	}
}
