package experiments

import (
	"fmt"

	"videodvfs/internal/core"
	"videodvfs/internal/cpu"
	"videodvfs/internal/energy"
	"videodvfs/internal/governor"
	"videodvfs/internal/invariant"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// ViewerOptions customizes how a cohort viewer plugs into shared cohort
// state. All fields are optional; the zero value wires a viewer exactly
// like a standalone Run.
type ViewerOptions struct {
	// WrapBandwidth, if set, decorates the viewer's resolved bandwidth
	// model before the downloader sees it. The cohort's cell-congestion
	// model wraps the shared base trace here, so contention stacks on
	// top of whatever profile the config selects.
	WrapBandwidth func(netsim.Bandwidth) netsim.Bandwidth
	// OnNetActivity, if set, observes the viewer's download busy/idle
	// transitions — the signal the shared cell counts active flows
	// from. It rides the player's hook chain because the downloader's
	// own OnActive slot is single-listener and the player owns it.
	OnNetActivity func(now sim.Time, active bool)
	// OnDone fires inside the viewer's completion (or horizon-cut)
	// event, after the viewer has stopped its background load. The
	// cohort shard collects the result here, while the engine clock
	// still reads the viewer's own end time.
	OnDone func()
}

// Viewer is one streaming session wired into a SHARED virtual-time
// engine: the full per-device component set of a Run — meter, CPU core,
// governor, radio, downloader, player, background load, optional thermal
// model — scheduling into an engine it does not own and never stops.
// N viewers over one engine is the cohort substrate: one event slab, one
// clock, shared immutable stream/bandwidth tables (the package caches),
// per-viewer everything else.
//
// Construction mirrors Session.Reset's fresh path component for
// component, in the same order, with the same RNG derivations — so a
// single viewer started at t=0 replays a standalone Run's event sequence
// exactly, and the N=1 cohort ≡ Run equivalence test can compare results
// with DeepEqual rather than tolerances.
type Viewer struct {
	cfg  RunConfig // defaults applied
	opts ViewerOptions
	eng  *sim.Engine

	meter   *energy.Meter
	core    *cpu.Core
	radio   *netsim.Radio
	dl      *netsim.Downloader
	ps      *player.Session
	bg      *cpu.LoadGen
	thermal *cpu.Thermal
	gov     governor.Governor
	eaGov   *core.Governor
	chk     *invariant.Checker

	bgActive bool
	horizon  sim.Time // relative to join, same default as Run
	join     sim.Time
	started  bool
	done     bool
	cutOff   bool
}

// activityHooks decorates SessionHooks with a second download-activity
// listener: the player consumes the downloader's single OnActive slot,
// so shared-cell flow counting rides the hook chain instead. The cell's
// listener runs first; the inner hooks (the video-aware governor) see
// the identical call they would without the wrapper.
type activityHooks struct {
	player.SessionHooks
	fn func(now sim.Time, active bool)
}

// DownloadActivity implements player.SessionHooks.
func (h activityHooks) DownloadActivity(now sim.Time, active bool) {
	h.fn(now, active)
	h.SessionHooks.DownloadActivity(now, active)
}

// NewViewer builds a viewer over the shared engine, validating cfg the
// same way Run does. Per-viewer OnSample and Tracer are rejected: a
// shared engine multiplexes thousands of sessions, and per-viewer
// callbacks are exactly the O(viewers) output the cohort design replaces
// with online aggregation.
func NewViewer(eng *sim.Engine, cfg RunConfig, opts ViewerOptions) (*Viewer, error) {
	if cfg.Trace != nil && cfg.Duration <= 0 {
		cfg.Duration = cfg.Trace.Duration()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.OnSample != nil || cfg.Tracer != nil {
		return nil, fmt.Errorf("experiments: %w: per-viewer OnSample/Tracer not supported in a cohort (aggregate via rollups)",
			ErrInvalidConfig)
	}
	if cfg.Device.Name == "" {
		cfg.Device = cpu.DeviceFlagship()
	}
	if cfg.Title.Name == "" {
		cfg.Title = video.TitleSports
	}
	if cfg.Rung.Name == "" {
		cfg.Rung = video.R720p
	}

	v := &Viewer{cfg: cfg, opts: opts, eng: eng}
	// An attached governor or thermal sampler keeps scheduling into the
	// SHARED engine; a half-built viewer must detach on every error path
	// or it would haunt the whole cohort.
	ok := false
	defer func() {
		if !ok {
			v.teardown()
		}
	}()

	v.chk = buildChecker(cfg)
	var tr trace.Tracer
	if v.chk != nil {
		// The checker rides as the tracer, exactly as in Session.Reset;
		// no batcher — order (and therefore every verdict) is unchanged,
		// and viewers have no downstream sink to amortize for.
		tr = v.chk
	}

	v.meter = energy.NewMeter(eng)

	var err error
	v.core, err = cpu.NewCore(eng, cfg.Device)
	if err != nil {
		return nil, err
	}
	if cfg.CStates {
		if err := v.core.EnableCStates(cpu.DefaultCStates()); err != nil {
			return nil, err
		}
	}
	if tr != nil {
		v.core.SetTracer(tr)
		v.core.OnPower(tracedListener(v.meter, energy.ComponentCPU, tr))
	} else {
		v.core.OnPower(v.meter.Listener(energy.ComponentCPU))
	}

	gov, hooks, eaGov, err := buildGovernor(cfg, tr)
	if err != nil {
		return nil, err
	}
	if err := gov.Attach(eng, v.core); err != nil {
		return nil, err
	}
	v.gov, v.eaGov = gov, eaGov

	bw, rrcCfg, err := buildBandwidth(cfg)
	if err != nil {
		return nil, err
	}
	if opts.WrapBandwidth != nil {
		bw = opts.WrapBandwidth(bw)
	}
	v.radio, err = netsim.NewRadio(eng, rrcCfg)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		v.radio.SetTracer(tr)
		v.radio.OnPower(tracedListener(v.meter, energy.ComponentRadio, tr))
	} else {
		v.radio.OnPower(v.meter.Listener(energy.ComponentRadio))
	}

	v.dl, err = netsim.NewDownloader(eng, bw, v.radio, v.core, netsim.DefaultDownloaderConfig())
	if err != nil {
		return nil, err
	}

	if cfg.Thermal != nil {
		v.thermal, err = cpu.StartThermal(eng, v.core, *cfg.Thermal)
		if err != nil {
			return nil, err
		}
	}

	if cfg.Background {
		bgSeed := cfg.Seed
		if cfg.BGSeed != 0 {
			bgSeed = cfg.BGSeed
		}
		v.bg, err = cpu.StartLoadGen(eng, v.core, sim.Stream(bgSeed, "bgload"), cpu.DefaultLoadGenConfig())
		if err != nil {
			return nil, err
		}
		v.bgActive = true
	}

	renditions, algo, err := buildRenditions(cfg)
	if err != nil {
		return nil, err
	}

	pcfg := player.DefaultConfig()
	if cfg.SegmentDur > 0 {
		pcfg.SegmentDur = cfg.SegmentDur
	}
	pcfg.ABR = algo
	pcfg.Hooks = hooks
	if opts.OnNetActivity != nil {
		inner := hooks
		if inner == nil {
			inner = player.NopSessionHooks{}
		}
		pcfg.Hooks = activityHooks{SessionHooks: inner, fn: opts.OnNetActivity}
	}
	pcfg.Meter = v.meter
	pcfg.Tracer = tr
	if cfg.LowLatency {
		pcfg.StartupSec = 1
		pcfg.ResumeSec = 0.5
		pcfg.MaxBufferSec = 4
		pcfg.DecodedQueueCap = 3
	}
	if cfg.DecodedQueueCap > 0 {
		pcfg.DecodedQueueCap = cfg.DecodedQueueCap
	}
	pcfg.LowWaterSec = cfg.LowWaterSec
	// The forecast observes the wrapped bandwidth — the cell-congested
	// view this viewer's downloader actually integrates — so cohort
	// oracles predict contended rates, not the pristine sector input.
	fc, err := buildForecast(cfg, bw)
	if err != nil {
		return nil, err
	}
	pcfg.Forecast = fc
	v.ps, err = player.NewSession(eng, v.core, v.dl, renditions, pcfg)
	if err != nil {
		return nil, err
	}
	v.ps.OnDone(v.handleDone)

	v.horizon = cfg.Duration*6 + 60*sim.Second
	if cfg.Horizon > 0 {
		v.horizon = cfg.Horizon
	}
	ok = true
	return v, nil
}

// Start begins the viewer's playback at the engine's current time — its
// join time. The cohort calls it directly for t=0 joins (preserving the
// exact pre-run scheduling order of a standalone Run) and from arrival
// events for later ones.
func (v *Viewer) Start() {
	v.join = v.eng.Now()
	v.started = true
	v.ps.Start()
}

// Done reports whether the viewer finished (completed, failed, or was
// cut at its horizon).
func (v *Viewer) Done() bool { return v.done }

// Deadline returns the absolute virtual time of the viewer's horizon
// cap; valid after Start.
func (v *Viewer) Deadline() sim.Time { return v.join + v.horizon }

// handleDone runs inside the player's completion event: stop the
// background load at the viewer's own end time (exactly what Run's stop
// callback does), then hand off to the cohort — which collects now,
// while the engine clock reads this viewer's end — WITHOUT stopping the
// shared engine.
func (v *Viewer) handleDone() {
	if v.done {
		return
	}
	v.done = true
	if v.bgActive {
		v.bg.Stop()
	}
	if v.opts.OnDone != nil {
		v.opts.OnDone()
	}
}

// Cut force-finishes a viewer still streaming when its horizon hits —
// the shared-engine analogue of RunUntil returning at the horizon with
// the session incomplete. It reports false (and does nothing) when the
// viewer already finished; the cohort schedules a cut event per viewer
// unconditionally, so the common case is a no-op. A cut viewer's
// leftover player events drain harmlessly in the shared engine (they
// mirror the events a standalone Run leaves in the heap at its horizon);
// its Finish reports ErrHorizonExceeded, matching Run.
func (v *Viewer) Cut() bool {
	if v.done {
		return false
	}
	v.done = true
	v.cutOff = true
	if v.bgActive {
		v.bg.Stop()
	}
	if v.opts.OnDone != nil {
		v.opts.OnDone()
	}
	return true
}

// Finish closes out a done viewer: energy accounting, the error and
// invariant checks of Session.Finish in the same order, and the shared
// collectResult path into res (reusing res's maps — the cohort passes
// one scratch RunResult per shard, never one per viewer). Call it from
// OnDone, while the engine clock still reads the viewer's end time.
func (v *Viewer) Finish(res *RunResult) error {
	if !v.done {
		return fmt.Errorf("experiments: viewer still streaming; Finish belongs in OnDone")
	}
	defer v.teardown()
	v.meter.Finish()
	if err := v.ps.Err(); err != nil {
		return fmt.Errorf("experiments: session: %w", err)
	}
	p := resultParts{
		cfg:     v.cfg,
		gov:     v.gov,
		eaGov:   v.eaGov,
		eng:     v.eng,
		meter:   v.meter,
		core:    v.core,
		radio:   v.radio,
		dl:      v.dl,
		ps:      v.ps,
		thermal: v.thermal,
	}
	if err := finalizeChecker(v.chk, p); err != nil {
		return err
	}
	if m := v.ps.Metrics(); !m.Completed {
		return fmt.Errorf("experiments: %w: session at %d/%d frames when the %v horizon hit",
			ErrHorizonExceeded, m.DisplayedFrames+m.DroppedFrames, m.TotalFrames, v.horizon)
	}
	if v.dl.Err() != nil {
		return fmt.Errorf("experiments: downloader: %w", v.dl.Err())
	}
	if v.bgActive && v.bg.Err() != nil {
		return fmt.Errorf("experiments: background load: %w", v.bg.Err())
	}
	collectResult(p, res)
	return nil
}

// teardown quiesces the viewer's recurring machinery in the shared
// engine — thermal sampler, governor ticker — and detaches the checker
// from the component tracers so post-finalize radio-tail events (which a
// standalone Run's stopped engine never fires) cannot reach it.
func (v *Viewer) teardown() {
	if v.thermal != nil {
		v.thermal.Stop()
		v.thermal = nil
	}
	if v.gov != nil {
		v.gov.Detach()
		v.gov = nil
	}
	if v.chk != nil {
		if v.core != nil {
			v.core.SetTracer(nil)
		}
		if v.radio != nil {
			v.radio.SetTracer(nil)
		}
	}
}
