package experiments

import (
	"fmt"
	"strings"
)

// Table is one reproduced table or figure, as rows of formatted cells.
type Table struct {
	// ID is the experiment identifier (t1, f5, …).
	ID string
	// Title describes what the paper reports here.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data cells, pre-formatted.
	Rows [][]string
	// Notes carries the expected-shape commentary for EXPERIMENTS.md.
	Notes string
}

// Format renders the table as aligned monospace text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table with the
// title as a heading and the notes as a trailing blockquote.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", strings.ToUpper(t.ID), t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n> %s\n", t.Notes)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells are quoted only when they contain commas or quotes.
func (t Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Render formats the table in the named format: "text" (default),
// "markdown"/"md", or "csv".
func (t Table) Render(format string) (string, error) {
	switch format {
	case "", "text":
		return t.Format(), nil
	case "markdown", "md":
		return t.Markdown(), nil
	case "csv":
		return t.CSV(), nil
	default:
		return "", fmt.Errorf("experiments: unknown format %q (text, markdown, csv)", format)
	}
}

// cell helpers keep experiment code terse.
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2c(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3c(v float64) string { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func iv(v int) string      { return fmt.Sprintf("%d", v) }
