package experiments

import (
	"sync"

	"videodvfs/internal/energy"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
)

// TraceFactory supplies a tracer for a run whose config does not carry
// one. It returns the tracer plus a close function invoked after the run
// finishes (nil if nothing needs closing). Factories must be safe for
// concurrent calls: batch runners invoke Run from many goroutines.
type TraceFactory func(cfg RunConfig) (trace.Tracer, func() error)

var (
	traceFactoryMu sync.RWMutex
	traceFactory   TraceFactory
)

// SetTraceFactory installs a process-wide trace factory consulted by Run
// whenever RunConfig.Tracer is nil. It exists for batch drivers (exprun
// -trace-dir) whose experiment builders construct configs internally and
// offer no per-run hook; nil uninstalls. An explicit RunConfig.Tracer
// always wins over the factory.
func SetTraceFactory(f TraceFactory) {
	traceFactoryMu.Lock()
	traceFactory = f
	traceFactoryMu.Unlock()
}

func currentTraceFactory() TraceFactory {
	traceFactoryMu.RLock()
	defer traceFactoryMu.RUnlock()
	return traceFactory
}

// tracedListener returns the meter's power listener for component,
// additionally mirrored to the tracer as PowerEvents when tr is non-nil.
// The energy.Meter listener discards the timestamp (the meter reads the
// engine clock itself), so the tracer tap re-attaches it.
func tracedListener(meter *energy.Meter, component string, tr trace.Tracer) func(now sim.Time, watts float64) {
	inner := meter.Listener(component)
	if tr == nil {
		return inner
	}
	return func(now sim.Time, watts float64) {
		inner(now, watts)
		tr.Power(trace.PowerEvent{T: now, Component: component, Watts: watts})
	}
}
