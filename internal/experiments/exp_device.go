package experiments

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// TableT1 reproduces Table 1: the device OPP table (frequency, voltage,
// busy and idle power per operating point).
func TableT1() (Table, error) {
	t := Table{
		ID:     "t1",
		Title:  "Device OPP tables: frequency, voltage, power",
		Header: []string{"device", "opp", "freq_mhz", "voltage_v", "active_w", "idle_w"},
		Notes:  "power is convex in frequency; fmax/fmin active-power ratio ≥4× on every device",
	}
	for _, dev := range cpu.Devices() {
		for i, o := range dev.OPPs {
			t.Rows = append(t.Rows, []string{
				dev.Name, iv(i), fmt.Sprintf("%.0f", o.FreqHz/1e6),
				f3c(o.VoltageV), f3c(o.ActiveW), f3c(o.IdleW),
			})
		}
	}
	return t, nil
}

// FigF1 reproduces Figure 1: the measured power-vs-frequency curve of the
// flagship device, including energy per cycle (the quantity DVFS trades
// on).
func FigF1() (Table, error) {
	dev := cpu.DeviceFlagship()
	t := Table{
		ID:     "f1",
		Title:  "Power vs frequency (flagship): busy power and energy/cycle",
		Header: []string{"freq_mhz", "active_w", "energy_nj_per_cycle", "vs_fmin"},
		Notes:  "energy/cycle grows superlinearly with frequency — the headroom the policy harvests",
	}
	base := dev.OPPs[0].ActiveW / dev.OPPs[0].FreqHz
	for _, o := range dev.OPPs {
		epc := o.ActiveW / o.FreqHz
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", o.FreqHz/1e6),
			f3c(o.ActiveW),
			f3c(epc * 1e9),
			fmt.Sprintf("%.2fx", epc/base),
		})
	}
	return t, nil
}

// FigF2 reproduces Figure 2: mean per-frame decode time versus CPU
// frequency for each resolution, against the 33.3 ms frame budget.
func FigF2() (Table, error) {
	dev := cpu.DeviceFlagship()
	t := Table{
		ID:     "f2",
		Title:  "Per-frame decode time (ms) vs frequency, by resolution (30 fps budget = 33.3 ms)",
		Header: []string{"resolution", "mean_mcycles"},
		Notes:  "1/f scaling; 1080p requires a mid-table OPP to fit the budget, 360p fits at fmin",
	}
	probes := []int{0, 3, 6, 9, dev.MaxIdx()}
	for _, i := range probes {
		t.Header = append(t.Header, fmt.Sprintf("at_%dmhz", int(dev.OPPs[i].FreqHz/1e6)))
	}
	t.Header = append(t.Header, "min_freq_mhz_30fps")
	for _, res := range video.Resolutions() {
		spec := video.DefaultSpec(video.TitleSports, res)
		stream, err := video.Generate(spec, 30*sim.Second, 42)
		if err != nil {
			return Table{}, err
		}
		mc := stream.MeanCycles()
		row := []string{res.Name, f1(mc / 1e6)}
		for _, i := range probes {
			row = append(row, f1(mc/dev.OPPs[i].FreqHz*1e3))
		}
		row = append(row, fmt.Sprintf("%.0f", stream.SustainedHz()/1e6))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
