package experiments

import (
	"fmt"

	"videodvfs/internal/core"
	"videodvfs/internal/video"
)

// FigF7 reproduces Figure 7: energy vs decode-ahead buffer depth (the
// slack-store ablation).
func FigF7() (Table, error) {
	t := Table{
		ID:     "f7",
		Title:  "Energy-aware policy vs decoded-buffer depth (720p@30)",
		Header: []string{"buffer_frames", "cpu_j", "mean_ghz", "drops", "rebuffers"},
		Notes:  "energy falls with depth then flattens: past ~8 frames the slack no longer buys lower OPPs",
	}
	depths := []int{1, 2, 4, 8, 12, 16}
	cfgs := make([]RunConfig, len(depths))
	for i, depth := range depths {
		cfgs[i] = DefaultRunConfig()
		cfgs[i].DecodedQueueCap = depth
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f7: %w", err)
	}
	for i, res := range results {
		t.Rows = append(t.Rows, []string{
			iv(depths[i]), f1(res.CPUJ), f2c(res.MeanFreqGHz),
			iv(res.QoE.DroppedFrames), iv(res.QoE.RebufferCount),
		})
	}
	return t, nil
}

// FigF8 reproduces Figure 8: the safety-margin sweep trading energy
// against deadline misses.
func FigF8() (Table, error) {
	t := Table{
		ID:     "f8",
		Title:  "Safety-margin sweep (720p@30, 2-frame decode buffer): energy vs dropped frames",
		Header: []string{"margin", "sigma_k", "cpu_j", "drop_rate", "boost_frames"},
		Notes:  "with little queue slack the knee is sharp: σ-headroom plus a small margin kills drops for a few joules; at the default 8-frame depth the queue itself absorbs mispredictions (see f7)",
	}
	type point struct {
		margin float64
		sigmaK float64
	}
	points := []point{
		{0.00, 0}, {0.00, 2}, {0.05, 2}, {0.10, 2}, {0.15, 2}, {0.25, 2}, {0.50, 2},
	}
	cfgs := make([]RunConfig, len(points))
	for i, p := range points {
		cfgs[i] = DefaultRunConfig()
		cfgs[i].DecodedQueueCap = 2 // little queue slack: the margin must carry the jitter
		pol := core.DefaultConfig()
		pol.Margin = p.margin
		pol.SigmaK = p.sigmaK
		cfgs[i].Policy = pol
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f8: %w", err)
	}
	for i, res := range results {
		p := points[i]
		boosts := 0
		if res.Pred != nil {
			// Boost frames are tracked by the governor; recover from the
			// predictor stats denominator when available.
			boosts = res.QoE.TotalFrames - res.Pred.N
		}
		t.Rows = append(t.Rows, []string{
			f2c(p.margin), f1(p.sigmaK), f1(res.CPUJ), pct(res.QoE.DropRate()), iv(boosts),
		})
	}
	return t, nil
}

// FigF9 reproduces Figure 9: predictor-family ablation across content
// titles.
func FigF9() (Table, error) {
	t := Table{
		ID:     "f9",
		Title:  "Demand-predictor ablation × content title (720p@30, 2-frame decode buffer)",
		Header: []string{"predictor", "title", "under_rate", "relerr_p50", "relerr_p99", "drop_rate", "cpu_j"},
		Notes:  "per-type + kσ has the fewest dangerous underestimates, hence the fewest drops, at near-equal energy; mean-only predictors underestimate half the frames",
	}
	type point struct {
		kind  core.PredictorKind
		title video.Title
	}
	var points []point
	var cfgs []RunConfig
	for _, kind := range core.PredictorKinds() {
		for _, title := range video.Titles() {
			cfg := DefaultRunConfig()
			cfg.Title = title
			cfg.DecodedQueueCap = 2
			pol := core.DefaultConfig()
			pol.Predictor = kind
			if kind == core.PredictPerTypeMean {
				pol.SigmaK = 0
			}
			cfg.Policy = pol
			points = append(points, point{kind, title})
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("f9: %w", err)
	}
	for i, res := range results {
		p := points[i]
		if res.Pred == nil {
			return Table{}, fmt.Errorf("f9 %s/%s: no predictor stats", p.kind, p.title.Name)
		}
		t.Rows = append(t.Rows, []string{
			p.kind.String(), p.title.Name,
			pct(res.Pred.UnderRate()),
			pct(res.Pred.RelErrP(50)),
			pct(res.Pred.RelErrP(99)),
			pct(res.QoE.DropRate()),
			f1(res.CPUJ),
		})
	}
	return t, nil
}
