package experiments

import (
	"fmt"

	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
)

// TableT5 reproduces Table 5 (extension): cell capacity measured by
// multi-user simulation, cross-checked against the analytic M/G/N model.
// The channel-hold time per segment fetch comes from the single-user radio
// simulation of each T3 configuration, so the chain is end-to-end: player
// prefetch policy → RRC hold time → cell capacity.
func TableT5() (Table, error) {
	t := Table{
		ID:     "t5",
		Title:  "Cell capacity (64 channel pairs, 2% blocking): analytic M/G/N vs multi-user simulation",
		Header: []string{"prefetch", "dormancy", "hold_s_per_fetch", "analytic_users", "simulated_users", "sim_block_at_k"},
		Notes:  "the simulated loss system reproduces the Erlang-B capacities within one scan step; shorter holds translate directly into more users per cell",
	}
	type variant struct {
		prefetch string
		lowWater float64
		fd       bool
	}
	variants := []variant{
		{"trickle", 0, false},
		{"burst(10s)", 10, false},
		{"burst(10s)", 10, true},
	}
	cfgs := make([]RunConfig, 0, len(variants))
	for _, v := range variants {
		cfg := DefaultRunConfig()
		cfg.Net = NetConst8
		cfg.Duration = 120 * sim.Second
		cfg.LowWaterSec = v.lowWater
		rrc := netsim.DefaultUMTS()
		rrc.FastDormancy = v.fd
		cfg.RRC = &rrc
		cfgs = append(cfgs, cfg)
	}
	results, err := runAllStrict(cfgs)
	if err != nil {
		return Table{}, fmt.Errorf("t5: %w", err)
	}
	for i, res := range results {
		v := variants[i]
		if res.Fetches == 0 {
			return Table{}, fmt.Errorf("t5 %s: no fetches", v.prefetch)
		}
		hold := res.RadioResidency[netsim.StateDCH].Seconds() / float64(res.Fetches)

		analytic, err := netsim.CapacityUsers(0.5, hold, 64, 0.02)
		if err != nil {
			return Table{}, fmt.Errorf("t5 analytic: %w", err)
		}
		base := netsim.CellSimConfig{
			Channels:    64,
			FetchPeriod: 2 * sim.Second,
			HoldMean:    sim.Time(hold),
			HoldCV:      0.3,
			Duration:    5 * sim.Minute,
			Warmup:      30 * sim.Second,
		}
		simulated, err := netsim.SimulatedCapacity(base, 0.02, 2,
			func(users int) *sim.RNG { return sim.Stream(int64(users)*7+3, "t5/cell") })
		if err != nil {
			return Table{}, fmt.Errorf("t5 simulated: %w", err)
		}
		// Blocking observed at the simulated capacity point.
		at := base
		at.Users = simulated
		st, err := netsim.SimulateCell(at, sim.Stream(int64(simulated)*7+3, "t5/cell"))
		if err != nil {
			return Table{}, err
		}
		dormancy := "tails(4s+15s)"
		if v.fd {
			dormancy = "fast"
		}
		t.Rows = append(t.Rows, []string{
			v.prefetch, dormancy, f2c(hold), iv(analytic), iv(simulated), pct(st.BlockRate()),
		})
	}
	return t, nil
}
