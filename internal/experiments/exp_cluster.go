package experiments

import (
	"fmt"

	"videodvfs/internal/campaign"
	"videodvfs/internal/core"
	"videodvfs/internal/cpu"
	"videodvfs/internal/decode"
	"videodvfs/internal/energy"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// Energy-meter components for the two frequency domains.
const (
	componentBig    = "cpu-big"
	componentLittle = "cpu-little"
)

// ClusterResult is the outcome of one big.LITTLE session.
type ClusterResult struct {
	// BigJ and LittleJ are per-cluster energies.
	BigJ, LittleJ float64
	// LittleShare is the fraction of decode jobs placed on little.
	LittleShare float64
	// QoE is the player report.
	QoE player.Metrics
}

// TotalJ returns combined CPU energy.
func (r ClusterResult) TotalJ() float64 { return r.BigJ + r.LittleJ }

// RunCluster simulates a streaming session on a big.LITTLE device
// (flagship big cluster + efficient little cluster). With clusterAware
// set, the cluster-extension governor places work across both domains;
// otherwise the single-core energy-aware governor drives the big cluster
// while the little cluster sits idle (but still leaks), which is the
// fair hardware-equal baseline.
func RunCluster(res video.Resolution, dur sim.Time, seed int64, clusterAware bool) (ClusterResult, error) {
	eng := sim.NewEngine()
	meter := energy.NewMeter(eng)

	big, err := cpu.NewCore(eng, cpu.DeviceFlagship())
	if err != nil {
		return ClusterResult{}, err
	}
	big.OnPower(meter.Listener(componentBig))
	little, err := cpu.NewCore(eng, cpu.DeviceEfficient())
	if err != nil {
		return ClusterResult{}, err
	}
	little.OnPower(meter.Listener(componentLittle))

	radio, err := netsim.NewRadio(eng, netsim.DefaultLTE())
	if err != nil {
		return ClusterResult{}, err
	}
	radio.OnPower(meter.Listener(energy.ComponentRadio))
	// Network-stack processing runs on the little cluster on both
	// configurations, as vendor schedulers place it.
	dl, err := netsim.NewDownloader(eng, netsim.Constant{Bps: 8e6}, radio, little, netsim.DefaultDownloaderConfig())
	if err != nil {
		return ClusterResult{}, err
	}
	bg, err := cpu.StartLoadGen(eng, little, sim.Stream(seed, "bgload"), cpu.DefaultLoadGenConfig())
	if err != nil {
		return ClusterResult{}, err
	}

	spec := video.DefaultSpec(video.TitleSports, res)
	stream, err := video.Generate(spec, dur, seed)
	if err != nil {
		return ClusterResult{}, err
	}

	var (
		submitter   decode.Submitter
		hooks       player.SessionHooks
		clusterGov  *core.ClusterGovernor
		littleShare float64
	)
	if clusterAware {
		clusterGov, err = core.NewClusterGovernor(big, little, core.DefaultClusterConfig())
		if err != nil {
			return ClusterResult{}, err
		}
		submitter = clusterGov
		hooks = clusterGov
	} else {
		gov, gerr := core.New(core.DefaultConfig())
		if gerr != nil {
			return ClusterResult{}, gerr
		}
		if aerr := gov.Attach(eng, big); aerr != nil {
			return ClusterResult{}, aerr
		}
		submitter = big
		hooks = gov
	}

	pcfg := player.DefaultConfig()
	pcfg.Hooks = hooks
	pcfg.Meter = meter
	sess, err := player.NewSession(eng, submitter, dl, []*video.Stream{stream}, pcfg)
	if err != nil {
		return ClusterResult{}, err
	}
	sess.OnDone(func() {
		bg.Stop()
		eng.Stop()
	})
	sess.Start()
	eng.RunUntil(dur*6 + 60*sim.Second)
	meter.Finish()
	if err := sess.Err(); err != nil {
		return ClusterResult{}, err
	}

	out := ClusterResult{
		BigJ:    meter.ComponentJ(componentBig),
		LittleJ: meter.ComponentJ(componentLittle),
		QoE:     sess.Metrics(),
	}
	if clusterGov != nil {
		total := clusterGov.FramesOnBig() + clusterGov.FramesOnLittle()
		if total > 0 {
			littleShare = float64(clusterGov.FramesOnLittle()) / float64(total)
		}
	}
	out.LittleShare = littleShare
	return out, nil
}

// FigF15 reproduces Figure 15 (extension): the big.LITTLE placement
// extension. On content the little cluster can sustain, routing decode
// there cuts CPU energy well below the big-cluster-only policy.
func FigF15() (Table, error) {
	t := Table{
		ID:     "f15",
		Title:  "big.LITTLE extension (60 s sports): decode placement across clusters",
		Header: []string{"resolution", "policy", "big_j", "little_j", "total_j", "little_share", "drops", "saving"},
		Notes:  "≤720p decodes almost entirely on the little cluster at a fraction of the energy; 1080p hot scenes still need the big cluster",
	}
	// Cluster runs are not RunConfigs, so they batch through the generic
	// campaign pool directly.
	type point struct {
		res   video.Resolution
		aware bool
	}
	var points []point
	var jobs []campaign.Job[ClusterResult]
	for _, res := range video.Resolutions() {
		for _, aware := range []bool{false, true} {
			res, aware := res, aware
			points = append(points, point{res, aware})
			jobs = append(jobs, func() (ClusterResult, error) {
				return RunCluster(res, 60*sim.Second, 1, aware)
			})
		}
	}
	results, err := campaign.Values(campaign.Do(jobs, campaign.Options[ClusterResult]{}))
	if err != nil {
		return Table{}, fmt.Errorf("f15: %w", err)
	}
	var baseTotal float64
	for i, out := range results {
		p := points[i]
		name := "big-only"
		if p.aware {
			name = "cluster"
		} else {
			baseTotal = out.TotalJ()
		}
		saving := "-"
		if p.aware && baseTotal > 0 {
			saving = pct((baseTotal - out.TotalJ()) / baseTotal)
		}
		t.Rows = append(t.Rows, []string{
			p.res.Name, name, f1(out.BigJ), f1(out.LittleJ), f1(out.TotalJ()),
			pct(out.LittleShare), iv(out.QoE.DroppedFrames), saving,
		})
	}
	return t, nil
}
