package experiments

import (
	"errors"
	"reflect"
	"testing"

	"videodvfs/internal/sim"
)

// A pre-closed cancel channel must abort the run almost immediately
// (within the first poll tick) with the typed error.
func TestRunCancelPreClosed(t *testing.T) {
	ch := make(chan struct{})
	close(ch)
	cfg := DefaultRunConfig()
	cfg.Cancel = ch
	_, err := Run(cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// An armed-but-never-fired cancel channel must not perturb the result:
// the poll ticker is passive, so the run is bit-identical to an
// uncancelable one. This is the invariant that lets dvfsd wire every
// streaming request's context in unconditionally.
func TestRunCancelUnfiredIsIdentical(t *testing.T) {
	base := DefaultRunConfig()
	base.Duration = 20 * sim.Second
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	armed := base
	armed.Cancel = make(chan struct{})
	got, err := Run(armed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("armed-cancel result differs from plain run:\n got %+v\nwant %+v", got, want)
	}
}

// Cancelable configs observe state outside the config, so they must
// never be cache-served.
func TestCancelUncacheable(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Cancel = make(chan struct{})
	if _, ok := ConfigKey(cfg); ok {
		t.Fatal("cancelable config reported cacheable")
	}
}
