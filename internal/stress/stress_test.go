// Sim-vs-real equivalence battery: the live player-driver (real HTTP
// sockets, real shaped origin) against the netsim.Trace replay backend.
// These tests are the stress-e2e gate (make stress-e2e) and run under
// -race: the origin paces with real timers across goroutines while the
// player runs in virtual time, so any sloppy sharing in the bridge
// surfaces here.
package stress_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"videodvfs/internal/experiments"
	"videodvfs/internal/netsim"
	"videodvfs/internal/server"
	"videodvfs/internal/sim"
	"videodvfs/internal/stress"
	"videodvfs/internal/video"
)

// startOrigin serves a shaped origin over a loopback listener.
func startOrigin(t *testing.T, cfg stress.OriginConfig) *httptest.Server {
	t.Helper()
	o, err := stress.NewOrigin(cfg)
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	ts := httptest.NewServer(o.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// livePlay runs the real player against a loopback origin and returns
// the recorded run. Short content at a rate well above the rung bitrate:
// both sides should play cleanly, making the equivalence margins tight.
func livePlay(t *testing.T, rateQuery string) *stress.PlayResult {
	t.Helper()
	ts := startOrigin(t, stress.OriginConfig{RateBps: 16e6})
	res, err := stress.Play(stress.PlayConfig{
		OriginURL: ts.URL,
		Governor:  "ondemand",
		Title:     video.TitleNews,
		Rung:      video.R360p,
		Seed:      7,
		Duration:  8 * sim.Second,
		RateQuery: rateQuery,
	})
	if err != nil {
		t.Fatalf("live play: %v", err)
	}
	return res
}

// replayConfig builds the simulator config that mirrors livePlay: same
// content fields, the recorded trace as the bandwidth model, background
// load off (the live driver has none), and a radio profile with zero
// promotion delay — the live loopback path has no RRC signaling, so the
// replay must not charge for one. Strict arms the invariant checker.
func replayConfig(tr *netsim.Trace) experiments.RunConfig {
	rrc := netsim.RRCConfig{
		IdleW: 0.02, FACHW: 0.45, DCHW: 1.20, TxExtraW: 0.30,
		T1: 60 * sim.Second, T2: sim.Second,
		PromoIdle: 0, PromoFACH: 0,
	}
	return experiments.RunConfig{
		Governor:   experiments.GovOndemand,
		Title:      video.TitleNews,
		Rung:       video.R360p,
		Net:        experiments.NetTrace,
		BWTrace:    tr,
		RRC:        &rrc,
		Duration:   8 * sim.Second,
		Seed:       7,
		Background: false,
		Strict:     true,
	}
}

// Documented equivalence tolerances (DESIGN.md §14). The replay's
// downloader charges a 70 ms request RTT per fetch and advances in
// 100 ms network chunks, neither of which the loopback origin exhibits;
// with two-ish fetches before first display that bounds the startup
// skew well under half a second. Rebuffer counting can differ by one
// when a stall straddles the low-water threshold on exactly one side.
const (
	startupTolerance  = 0.5 // seconds
	rebufferTolerance = 1   // count
)

// TestSimRealEquivalence is the headline check: record a trace from a
// live run over real sockets, replay it through the netsim.Trace
// backend, and hold the two runs to the documented tolerances — with
// chunk-level byte accounting exact, not approximate.
func TestSimRealEquivalence(t *testing.T) {
	live := livePlay(t, "")

	// Byte accounting: the trace's per-fetch byte sums must equal the
	// payload the player requested, exactly — every chunk the recorder
	// saw is conserved through sample coalescing and clamping.
	fb := live.Trace.FetchBytes()
	if len(fb) != len(live.SegmentBits) {
		t.Fatalf("trace covers %d fetches, player made %d", len(fb), len(live.SegmentBits))
	}
	for i, bits := range live.SegmentBits {
		if want := math.Ceil(bits / 8); fb[i] != want {
			t.Errorf("fetch %d: trace has %v bytes, want %v", i, fb[i], want)
		}
	}
	if !live.Metrics.Completed {
		t.Fatal("live run did not complete")
	}

	res, err := experiments.Run(replayConfig(&live.Trace))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !res.QoE.Completed {
		t.Fatal("replay did not complete")
	}
	if res.Fetches != len(live.SegmentBits) {
		t.Errorf("replay made %d fetches, live made %d", res.Fetches, len(live.SegmentBits))
	}
	if d := math.Abs((res.QoE.StartupDelay - live.Metrics.StartupDelay).Seconds()); d > startupTolerance {
		t.Errorf("startup delay skew %.3fs exceeds %.1fs (live %v, replay %v)",
			d, startupTolerance, live.Metrics.StartupDelay, res.QoE.StartupDelay)
	}
	if d := res.QoE.RebufferCount - live.Metrics.RebufferCount; d > rebufferTolerance || d < -rebufferTolerance {
		t.Errorf("rebuffer count skew %d exceeds ±%d (live %d, replay %d)",
			d, rebufferTolerance, live.Metrics.RebufferCount, res.QoE.RebufferCount)
	}
}

// TestReplayMetamorphic pins the round trip: a recorded trace encoded to
// JSONL, decoded back, and replayed twice must give byte-identical JSONL
// and identical run results — with invariants armed on both replays.
func TestReplayMetamorphic(t *testing.T) {
	live := livePlay(t, "")

	var buf bytes.Buffer
	if err := netsim.WriteTrace(&buf, live.Trace); err != nil {
		t.Fatalf("encode: %v", err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	tr, err := netsim.ReadTrace(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	// Round trip is a fixed point at the byte level.
	buf.Reset()
	if err := netsim.WriteTrace(&buf, tr); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first, buf.Bytes()) {
		t.Fatal("JSONL round trip is not byte-identical")
	}

	cfg := replayConfig(&tr)
	r1, err := experiments.Run(cfg)
	if err != nil {
		t.Fatalf("replay 1: %v", err)
	}
	r2, err := experiments.Run(cfg)
	if err != nil {
		t.Fatalf("replay 2: %v", err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("replaying the same trace twice diverged:\n%+v\n%+v", r1, r2)
	}
}

// TestOriginShaping holds the origin to its contract: exact byte counts
// for every shape, and ON-OFF gaps long enough that a recorded transfer
// actually contains the stalls the replay is supposed to reproduce.
func TestOriginShaping(t *testing.T) {
	ts := startOrigin(t, stress.OriginConfig{RateBps: 8e6})

	fetch := func(t *testing.T, query string) ([]byte, time.Duration) {
		t.Helper()
		start := time.Now()
		resp, err := http.Get(ts.URL + "/blob?" + query)
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s", resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return b, time.Since(start)
	}

	for _, shape := range []string{"steady", "onoff", "throttle"} {
		t.Run(shape, func(t *testing.T) {
			const n = 100_000
			b, _ := fetch(t, "bytes=100000&rate=8e6&shape="+shape)
			if len(b) != n {
				t.Fatalf("shape %s sent %d bytes, want %d", shape, len(b), n)
			}
		})
	}

	t.Run("onoff stalls", func(t *testing.T) {
		// 200 kB at 2 Mbit/s with a 200/300 ms cycle: the per-cycle quota
		// is 250 kB/s · 0.5 s = 125 kB, so the transfer spills into a
		// second cycle whose quota is withheld until t = 0.5 s. Timing
		// lower bounds are safe under CI load — delays only grow.
		_, dur := fetch(t, "bytes=200000&rate=2e6&shape=onoff")
		if dur < 400*time.Millisecond {
			t.Errorf("ON-OFF transfer took %v, expected the second cycle's quota to be withheld until 500ms", dur)
		}
	})

	t.Run("bad bytes", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/blob?bytes=nope")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %s, want 400", resp.Status)
		}
	})
}

// TestOnOffTracePreservesStalls closes the loop on shaping: a live run
// against an ON-OFF origin must record inter-sample gaps inside a fetch
// (the wire stalls), and the replay backend must render those gaps as
// rate 0 — the signature Hoque et al. burst-pause delivery.
func TestOnOffTracePreservesStalls(t *testing.T) {
	live := livePlay(t, "rate=2e6&shape=onoff")
	stalls := 0
	for i := 1; i < len(live.Trace.Samples); i++ {
		prev, cur := live.Trace.Samples[i-1], live.Trace.Samples[i]
		if cur.Fetch != prev.Fetch || cur.Start-prev.End < sim.Time(100*time.Millisecond.Seconds()) {
			continue
		}
		stalls++
		mid := prev.End + (cur.Start-prev.End)/2
		if bps, _ := live.Trace.Rate(mid); bps != 0 {
			t.Errorf("mid-fetch gap at %v replays as %v bps, want 0", mid, bps)
		}
	}
	if stalls == 0 {
		t.Error("ON-OFF origin produced no recorded mid-fetch stalls ≥100ms")
	}
	// The stalls must survive replay: the run still completes under
	// invariants with the recorded pauses in the bandwidth model.
	if _, err := experiments.Run(replayConfig(&live.Trace)); err != nil {
		t.Fatalf("replay of ON-OFF trace: %v", err)
	}
}

// TestHammerDvfsd is the load-generation acceptance check: ≥100
// concurrent requests against a real dvfsd instance with zero error-
// envelope violations. The body mix includes a trace-backed run so the
// new NetKind rides the hot ingest path under contention.
func TestHammerDvfsd(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	traceBody, err := json.Marshal(map[string]any{
		"net": "trace", "duration_s": 2, "background": false,
		"bw_trace": []map[string]any{
			{"t0": 0, "t1": 0.5, "bytes": 500000, "fetch": 0},
			{"t0": 0.7, "t1": 1, "bytes": 400000, "fetch": 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := stress.Hammer(stress.HammerConfig{
		Targets: []string{ts.URL},
		Bodies: [][]byte{
			[]byte(`{"governor":"ondemand","net":"const8","duration_s":2}`),
			traceBody,
			[]byte(`{"net":"not-a-net"}`), // must bounce as a clean envelope
		},
		Requests:    200,
		Concurrency: 100,
	})
	if err != nil {
		t.Fatalf("hammer: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("envelope violation: target=%s status=%d: %s", v.Target, v.Status, v.Reason)
	}
	// The bad-net body is a well-formed 400 per request — a third of the
	// load — so Failed equals exactly that share and nothing else.
	wantFailed := 0
	for i := 0; i < res.Requests; i++ {
		if i%3 == 2 {
			wantFailed++
		}
	}
	if res.Failed != wantFailed {
		t.Errorf("failed %d, want %d (only the malformed body may fail)", res.Failed, wantFailed)
	}
	if got := res.OK + res.Rejected + res.Failed; got != res.Requests {
		t.Errorf("accounting: OK %d + Rejected %d + Failed %d = %d, want %d",
			res.OK, res.Rejected, res.Failed, got, res.Requests)
	}
	if res.OK == 0 {
		t.Error("no request succeeded under load")
	}
}
