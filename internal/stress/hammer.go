package stress

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"videodvfs/internal/stats"
)

// HammerConfig tunes a load-generation run against one or more
// dvfsd-compatible endpoints (dvfsd workers or a dvfsctl controller).
type HammerConfig struct {
	// Targets are base URLs (e.g. "http://127.0.0.1:8080"); requests
	// round-robin across them. Required.
	Targets []string
	// Path is the endpoint to hit (default "/v1/run").
	Path string
	// Body is the JSON request body sent to every request. Required.
	Body []byte
	// Bodies, if non-empty, overrides Body with a rotation: request i
	// sends Bodies[i % len(Bodies)]. Replaying a mix of recorded traffic
	// shapes is done by passing one encoded run request per shape.
	Bodies [][]byte
	// Requests is the total number of requests to issue (default 100).
	Requests int
	// Concurrency is the worker count (default 8).
	Concurrency int
	// Timeout bounds each attempt (default 30 s).
	Timeout time.Duration
	// MaxRetries bounds per-request 429 retries (default 10); the worker
	// honors Retry-After, capped at RetryCap per wait.
	MaxRetries int
	// RetryCap caps a single Retry-After wait (default 2 s) so a soak
	// run cannot be parked for minutes by one pessimistic estimate.
	RetryCap time.Duration
	// Client overrides the HTTP client (its Timeout is ignored in favor
	// of per-attempt contexts).
	Client *http.Client
}

func (c HammerConfig) withDefaults() HammerConfig {
	if c.Path == "" {
		c.Path = "/v1/run"
	}
	if c.Requests == 0 {
		c.Requests = 100
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 10
	}
	if c.RetryCap == 0 {
		c.RetryCap = 2 * time.Second
	}
	return c
}

// EnvelopeViolation describes one protocol breach observed by the
// hammer: a non-2xx response that was not a well-formed dvfsd error
// envelope, or a 429 missing its Retry-After hint.
type EnvelopeViolation struct {
	// Target is the base URL the request went to.
	Target string
	// Status is the HTTP status received.
	Status int
	// Reason says what was malformed.
	Reason string
}

// HammerResult summarizes a load-generation run.
type HammerResult struct {
	// Requests is the number of logical requests issued.
	Requests int
	// OK counts 2xx responses with decodable JSON bodies.
	OK int
	// Rejected counts well-formed 429 bounces that exhausted retries.
	Rejected int
	// Retried counts individual 429 bounces that were retried.
	Retried int
	// Failed counts well-formed non-429 error responses.
	Failed int
	// Violations lists protocol breaches (empty on a healthy service).
	Violations []EnvelopeViolation
	// LatencyP50/LatencyP99 are attempt latencies of successful
	// responses.
	LatencyP50, LatencyP99 time.Duration
	// WallDur is the whole run's duration.
	WallDur time.Duration
}

// envelope mirrors dvfsd's uniform error body. Deliberately a local
// minimal struct: the hammer validates the wire contract, not the
// server's internals, and must stay importable without internal/server.
type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// knownCodes enumerates dvfsd's documented envelope codes.
var knownCodes = map[string]bool{
	"bad_request": true, "invalid_config": true, "overloaded": true,
	"horizon_exceeded": true, "not_found": true, "draining": true,
	"too_large": true, "internal": true,
}

// Hammer replays requests against the targets at the configured
// concurrency, validating every response against the dvfsd wire
// contract. It returns an error only for setup problems (an unusable
// config); service-side failures — transport errors included — are in the
// result, violations included, so a soak harness can assert on them.
func Hammer(cfg HammerConfig) (*HammerResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("stress: hammer needs at least one target")
	}
	if len(cfg.Body) == 0 && len(cfg.Bodies) == 0 {
		return nil, fmt.Errorf("stress: hammer needs a request body")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}

	var (
		next    atomic.Int64
		mu      sync.Mutex
		res     HammerResult
		lat     = stats.NewSketch(0.01)
		wg      sync.WaitGroup
		started = time.Now()
	)
	res.Requests = cfg.Requests

	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= cfg.Requests {
				return
			}
			target := cfg.Targets[i%len(cfg.Targets)]
			body := cfg.Body
			if len(cfg.Bodies) > 0 {
				body = cfg.Bodies[i%len(cfg.Bodies)]
			}
			outcome, retried, dur, viol := doRequest(client, cfg, target, body)
			mu.Lock()
			res.Retried += retried
			switch outcome {
			case outcomeOK:
				res.OK++
				lat.Add(dur.Seconds())
			case outcomeRejected:
				res.Rejected++
			case outcomeFailed:
				res.Failed++
			}
			if viol != nil {
				res.Violations = append(res.Violations, *viol)
			}
			mu.Unlock()
		}
	}
	wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go worker()
	}
	wg.Wait()

	if lat.N() > 0 {
		res.LatencyP50 = time.Duration(lat.Quantile(0.5) * float64(time.Second))
		res.LatencyP99 = time.Duration(lat.Quantile(0.99) * float64(time.Second))
	}
	res.WallDur = time.Since(started)
	return &res, nil
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeRejected
	outcomeFailed
)

// doRequest issues one logical request with 429 retries, classifying the
// final response and reporting at most one envelope violation.
func doRequest(client *http.Client, cfg HammerConfig, target string, body []byte) (out outcome, retried int, dur time.Duration, viol *EnvelopeViolation) {
	url := target + cfg.Path
	for attempt := 0; ; attempt++ {
		status, hdr, respBody, elapsed, err := attemptOnce(client, cfg.Timeout, url, body)
		if err != nil {
			return outcomeFailed, retried, 0, &EnvelopeViolation{
				Target: target, Status: 0, Reason: "transport: " + err.Error(),
			}
		}
		if status >= 200 && status < 300 {
			if !json.Valid(respBody) {
				return outcomeFailed, retried, 0, &EnvelopeViolation{
					Target: target, Status: status, Reason: "2xx body is not valid JSON",
				}
			}
			return outcomeOK, retried, elapsed, nil
		}
		// Every error must be the uniform envelope with a documented code.
		var env envelope
		if jerr := json.Unmarshal(respBody, &env); jerr != nil || env.Error.Code == "" {
			return outcomeFailed, retried, 0, &EnvelopeViolation{
				Target: target, Status: status, Reason: "error body is not the uniform envelope",
			}
		}
		if !knownCodes[env.Error.Code] {
			return outcomeFailed, retried, 0, &EnvelopeViolation{
				Target: target, Status: status,
				Reason: "undocumented envelope code " + strconv.Quote(env.Error.Code),
			}
		}
		if status != http.StatusTooManyRequests {
			return outcomeFailed, retried, 0, nil
		}
		// 429: Retry-After is part of the contract.
		ra := hdr.Get("Retry-After")
		secs, perr := strconv.Atoi(ra)
		if ra == "" || perr != nil || secs < 0 {
			return outcomeFailed, retried, 0, &EnvelopeViolation{
				Target: target, Status: status,
				Reason: "429 without a non-negative integer Retry-After (got " + strconv.Quote(ra) + ")",
			}
		}
		if attempt >= cfg.MaxRetries {
			return outcomeRejected, retried, 0, nil
		}
		retried++
		wait := time.Duration(secs) * time.Second
		if wait > cfg.RetryCap {
			wait = cfg.RetryCap
		}
		if wait == 0 {
			wait = 10 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

// attemptOnce performs one POST with a per-attempt timeout.
func attemptOnce(client *http.Client, timeout time.Duration, url string, body []byte) (status int, hdr http.Header, respBody []byte, elapsed time.Duration, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, nil, nil, 0, err
	}
	return resp.StatusCode, resp.Header, b, time.Since(start), nil
}
