// Package stress closes the sim-to-real loop over real sockets: a
// shaped-bitrate origin server, a player-driver that runs the actual
// internal/player downloader/buffer logic over live HTTP while recording
// a bandwidth trace, and a load generator that hammers dvfsd-compatible
// endpoints. The recorded traces replay through the simulator via
// netsim.Trace (RunConfig.Net = "trace"), which is how simulated network
// behavior is validated against a real TCP path (DESIGN.md §14).
package stress

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Shape names a rate-shaping discipline of the origin server, following
// the streaming-delivery taxonomy of Hoque et al. (arXiv:1209.2855).
type Shape string

const (
	// ShapeSteady paces the whole payload at the target rate.
	ShapeSteady Shape = "steady"
	// ShapeOnOff alternates line-rate ON bursts with silent OFF windows,
	// sized so the mean rate over a full cycle equals the target rate —
	// the server-side burst shaping of ON-OFF streaming.
	ShapeOnOff Shape = "onoff"
	// ShapeThrottle serves an unthrottled initial burst, then paces the
	// remainder at the target rate — the classic "fast start then
	// throttle" delivery.
	ShapeThrottle Shape = "throttle"
)

// Shapes returns the known disciplines.
func Shapes() []Shape { return []Shape{ShapeSteady, ShapeOnOff, ShapeThrottle} }

// ErrBadShape reports an unknown shape name.
var ErrBadShape = errors.New("unknown shape")

// ParseShape validates a shape name ("" parses as ShapeSteady).
func ParseShape(name string) (Shape, error) {
	switch Shape(name) {
	case "":
		return ShapeSteady, nil
	case ShapeSteady, ShapeOnOff, ShapeThrottle:
		return Shape(name), nil
	}
	return "", fmt.Errorf("stress: %w %q (known: %v)", ErrBadShape, name, Shapes())
}

// OriginConfig tunes the shaped origin server.
type OriginConfig struct {
	// RateBps is the target delivery rate in bits/s (default 8 Mbit/s).
	RateBps float64
	// Shape is the delivery discipline (default ShapeSteady).
	Shape Shape
	// OnDur/OffDur set the ON-OFF cycle (defaults 200 ms / 300 ms). The
	// ON window serves at line rate whatever a full cycle's worth of
	// payload is, so the cycle mean equals RateBps.
	OnDur, OffDur time.Duration
	// BurstBytes is the unthrottled head of a ShapeThrottle response
	// (default 256 KiB).
	BurstBytes int
	// ChunkBytes is the write/pacing granularity (default 16 KiB).
	ChunkBytes int
	// MaxBytes caps a single /blob response (default 256 MiB) so a typo
	// cannot pin a handler goroutine for hours.
	MaxBytes int64
}

// withDefaults fills the zero fields.
func (c OriginConfig) withDefaults() OriginConfig {
	if c.RateBps == 0 {
		c.RateBps = 8e6
	}
	if c.Shape == "" {
		c.Shape = ShapeSteady
	}
	if c.OnDur == 0 {
		c.OnDur = 200 * time.Millisecond
	}
	if c.OffDur == 0 {
		c.OffDur = 300 * time.Millisecond
	}
	if c.BurstBytes == 0 {
		c.BurstBytes = 256 << 10
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 16 << 10
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 256 << 20
	}
	return c
}

// Validate checks the configuration after defaults.
func (c OriginConfig) Validate() error {
	if c.RateBps <= 0 {
		return fmt.Errorf("stress: origin rate %v not positive", c.RateBps)
	}
	if _, err := ParseShape(string(c.Shape)); err != nil {
		return err
	}
	if c.OnDur <= 0 || c.OffDur < 0 {
		return fmt.Errorf("stress: origin on/off windows %v/%v invalid", c.OnDur, c.OffDur)
	}
	if c.BurstBytes < 0 || c.ChunkBytes <= 0 || c.MaxBytes <= 0 {
		return fmt.Errorf("stress: origin byte knobs invalid (burst %d, chunk %d, max %d)",
			c.BurstBytes, c.ChunkBytes, c.MaxBytes)
	}
	return nil
}

// Origin is the shaped-bitrate byte server. Routes:
//
//	GET /healthz          → 200 "ok"
//	GET /blob?bytes=N     → N payload bytes, shaped per config; the
//	                        query may override rate=<bps> and
//	                        shape=<steady|onoff|throttle> per request.
type Origin struct {
	cfg OriginConfig
	mux *http.ServeMux
}

// NewOrigin builds the server (use Handler with http.Server or httptest).
func NewOrigin(cfg OriginConfig) (*Origin, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := &Origin{cfg: cfg, mux: http.NewServeMux()}
	o.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	o.mux.HandleFunc("GET /blob", o.handleBlob)
	return o, nil
}

// Handler returns the origin's HTTP handler.
func (o *Origin) Handler() http.Handler { return o.mux }

func (o *Origin) handleBlob(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n, err := strconv.ParseInt(q.Get("bytes"), 10, 64)
	if err != nil || n <= 0 || n > o.cfg.MaxBytes {
		http.Error(w, fmt.Sprintf("bytes must be in [1, %d]", o.cfg.MaxBytes), http.StatusBadRequest)
		return
	}
	rate := o.cfg.RateBps
	if v := q.Get("rate"); v != "" {
		rate, err = strconv.ParseFloat(v, 64)
		if err != nil || rate <= 0 || rate > 1e12 {
			http.Error(w, "rate must be a positive bit rate", http.StatusBadRequest)
			return
		}
	}
	shape := o.cfg.Shape
	if v := q.Get("shape"); v != "" {
		shape, err = ParseShape(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	o.serve(w, r, n, rate, shape)
}

// serve streams n payload bytes with the requested shaping. Pacing is
// absolute (each chunk's deadline is computed from the transfer start,
// not accumulated sleeps), so timer coarseness does not drift the mean
// rate.
func (o *Origin) serve(w http.ResponseWriter, r *http.Request, n int64, rate float64, shape Shape) {
	fl, _ := w.(http.Flusher)
	chunk := make([]byte, o.cfg.ChunkBytes)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	start := time.Now()
	ctx := r.Context()

	// deadlineFor returns when the byte at offset `sent` may be sent.
	var deadlineFor func(sent int64) time.Time
	switch shape {
	case ShapeOnOff:
		// Serve each cycle's quota at line rate at the top of its cycle;
		// the quota is the cycle length's worth of payload at the target
		// rate, so the cycle mean matches RateBps.
		cycle := o.cfg.OnDur + o.cfg.OffDur
		quota := rate / 8 * cycle.Seconds()
		deadlineFor = func(sent int64) time.Time {
			cycles := float64(sent) / quota
			return start.Add(time.Duration(float64(cycle) * float64(int64(cycles))))
		}
	case ShapeThrottle:
		burst := int64(o.cfg.BurstBytes)
		deadlineFor = func(sent int64) time.Time {
			if sent < burst {
				return start
			}
			return start.Add(time.Duration(float64(sent-burst) * 8 / rate * float64(time.Second)))
		}
	default: // ShapeSteady
		deadlineFor = func(sent int64) time.Time {
			return start.Add(time.Duration(float64(sent) * 8 / rate * float64(time.Second)))
		}
	}

	var sent int64
	for sent < n {
		if d := time.Until(deadlineFor(sent)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
		}
		m := int64(len(chunk))
		if n-sent < m {
			m = n - sent
		}
		if _, err := w.Write(chunk[:m]); err != nil {
			return // client gone
		}
		if fl != nil {
			fl.Flush()
		}
		sent += m
	}
}
