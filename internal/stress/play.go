package stress

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"videodvfs/internal/cpu"
	"videodvfs/internal/governor"
	"videodvfs/internal/netsim"
	"videodvfs/internal/player"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// PlayConfig describes one live player-driver run: the actual
// internal/player downloader/buffer/decode logic, in a virtual-time
// engine, fetching its segments from a real HTTP origin.
type PlayConfig struct {
	// OriginURL is the base URL of a stress origin (NewOrigin), e.g.
	// "http://127.0.0.1:8080". Required.
	OriginURL string
	// Governor names a stock cpufreq policy for the decode core
	// (default "ondemand"); the live driver has no radio model, so the
	// video-aware governors stay sim-side.
	Governor string
	// Device is the CPU model (DeviceFlagship if zero).
	Device cpu.Model
	// Title/Rung/FPS/Seed/Duration select the content exactly as
	// experiments.RunConfig does, so a replay config built from the same
	// fields streams identical segments.
	Title    video.Title
	Rung     video.Resolution
	FPS      float64
	Seed     int64
	Duration sim.Time
	// SegmentDur overrides the media segment duration (0 = 2 s).
	SegmentDur sim.Time
	// Client overrides the HTTP client (default: http.DefaultTransport
	// with no timeout — transfers are bounded by the origin).
	Client *http.Client
	// RateQuery, if non-empty, is appended to each /blob request
	// (e.g. "rate=4e6&shape=onoff") to override the origin's shaping.
	RateQuery string
}

// PlayResult is the outcome of a live run: the QoE metrics the real
// player produced, the recorded bandwidth trace, and the per-fetch
// payload ledger for byte accounting.
type PlayResult struct {
	// Metrics is the player's QoE report from the live run.
	Metrics player.Metrics
	// Trace is the recorded bandwidth/timing trace, valid per
	// netsim.Trace.Validate and replayable via RunConfig.Net = "trace".
	Trace netsim.Trace
	// SegmentBits holds each fetch's payload size in bits, in fetch
	// order: the ground truth the trace's per-fetch byte sums are checked
	// against (the origin serves ceil(bits/8) bytes per fetch).
	SegmentBits []float64
	// SimEnd is the virtual time the session finished at.
	SimEnd sim.Time
	// WallDur is how long the run took in real time.
	WallDur time.Duration
}

// Play executes one live player-driver run against a stress origin. The
// player, decoder, and CPU/governor all run in virtual time; each
// segment fetch blocks on a real HTTP transfer whose measured wall
// duration then elapses as virtual time, so the virtual timeline is the
// recorded timeline.
func Play(cfg PlayConfig) (*PlayResult, error) {
	if cfg.OriginURL == "" {
		return nil, fmt.Errorf("stress: origin URL is required")
	}
	if cfg.Governor == "" {
		cfg.Governor = "ondemand"
	}
	if cfg.Device.Name == "" {
		cfg.Device = cpu.DeviceFlagship()
	}
	if cfg.Title.Name == "" {
		cfg.Title = video.TitleSports
	}
	if cfg.Rung.Name == "" {
		cfg.Rung = video.R720p
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("stress: duration %v not positive", cfg.Duration)
	}
	fps := cfg.FPS
	if fps == 0 {
		fps = 30
	}

	// Generate the content exactly as the simulator's fixed-rung path
	// does, so the replay (same Title/Rung/FPS/Duration/Seed) fetches
	// byte-identical segments.
	spec := video.DefaultSpec(cfg.Title, cfg.Rung).WithCodec(video.DefaultCodec())
	spec.FPS = fps
	stream, err := video.Generate(spec, cfg.Duration, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("stress: generate content: %w", err)
	}

	eng := sim.NewEngine()
	core, err := cpu.NewCore(eng, cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("stress: cpu core: %w", err)
	}
	gov, err := governor.New(cfg.Governor)
	if err != nil {
		return nil, fmt.Errorf("stress: %w", err)
	}
	if err := gov.Attach(eng, core); err != nil {
		return nil, fmt.Errorf("stress: attach governor: %w", err)
	}
	defer gov.Detach()

	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	fet := &httpFetcher{
		eng:       eng,
		client:    client,
		base:      cfg.OriginURL,
		rateQuery: cfg.RateQuery,
	}

	pcfg := player.DefaultConfig()
	if cfg.SegmentDur > 0 {
		pcfg.SegmentDur = cfg.SegmentDur
	}
	ps, err := player.NewSession(eng, core, fet, []*video.Stream{stream}, pcfg)
	if err != nil {
		return nil, fmt.Errorf("stress: player session: %w", err)
	}
	ps.OnDone(eng.Stop)

	horizon := cfg.Duration*6 + 60*sim.Second
	wallStart := time.Now()
	ps.Start()
	end := eng.RunUntil(horizon)

	if fet.err != nil {
		return nil, fmt.Errorf("stress: live fetch: %w", fet.err)
	}
	if err := ps.Err(); err != nil {
		return nil, fmt.Errorf("stress: session: %w", err)
	}
	m := ps.Metrics()
	if !m.Completed {
		return nil, fmt.Errorf("stress: session at %d/%d frames when the %v horizon hit",
			m.DisplayedFrames+m.DroppedFrames, m.TotalFrames, horizon)
	}
	tr := netsim.Trace{Samples: fet.samples}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("stress: recorded trace: %w", err)
	}
	return &PlayResult{
		Metrics:     m,
		Trace:       tr,
		SegmentBits: fet.segmentBits,
		SimEnd:      end,
		WallDur:     time.Since(wallStart),
	}, nil
}

// recorder tuning: reads coalesce into one sample until the transfer
// pauses for recGapThresh or the sample reaches recFlushBytes, whichever
// first. recMinSpan keeps every sample's duration positive.
const (
	recReadBuf    = 32 << 10
	recFlushBytes = 64 << 10
	recGapThresh  = 25 * time.Millisecond
	recMinSpan    = sim.Time(1e-6)
)

// httpFetcher implements player.Fetcher over real HTTP. Fetch performs
// the blocking transfer inside the engine's event callback — virtual
// time stands still while real bytes flow — then schedules the player's
// completion callback after the measured wall duration of virtual time.
// The wall-clock offsets of each read burst, rebased onto the virtual
// fetch start, become the recorded trace samples.
type httpFetcher struct {
	eng       *sim.Engine
	client    *http.Client
	base      string
	rateQuery string

	onActive func(now sim.Time, active bool)

	samples     []netsim.TraceSample
	segmentBits []float64
	fetch       int      // current fetch index
	lastEnd     sim.Time // absolute end of the last recorded sample
	err         error

	idleFn func() // pre-bound post-completion activity transition
	doneFn func(now sim.Time)
	doneAt func()
}

var _ player.Fetcher = (*httpFetcher)(nil)

// OnActive implements player.Fetcher.
func (f *httpFetcher) OnActive(fn func(now sim.Time, active bool)) { f.onActive = fn }

// Fetch implements player.Fetcher: one blocking HTTP transfer of
// ceil(bits/8) bytes from the origin, recorded and mapped to virtual
// time.
func (f *httpFetcher) Fetch(bits float64, onDone func(now sim.Time)) error {
	if f.err != nil {
		return f.err
	}
	if bits <= 0 {
		return fmt.Errorf("stress: fetch of %v bits", bits)
	}
	nbytes := int64(math.Ceil(bits / 8))
	now := f.eng.Now()
	if f.onActive != nil {
		f.onActive(now, true)
	}
	wallDur, err := f.transfer(nbytes, now)
	if err != nil {
		f.err = err
		return err
	}
	f.segmentBits = append(f.segmentBits, bits)
	f.fetch++
	f.doneFn = onDone
	if f.doneAt == nil {
		f.doneAt = func() {
			done := f.doneFn
			f.doneFn = nil
			if f.onActive != nil {
				f.onActive(f.eng.Now(), false)
			}
			done(f.eng.Now())
		}
	}
	f.eng.Schedule(sim.Time(wallDur.Seconds()), f.doneAt)
	return nil
}

// transfer streams nbytes from the origin, appending trace samples at
// absolute virtual times base+offset, and returns the wall duration.
func (f *httpFetcher) transfer(nbytes int64, base sim.Time) (time.Duration, error) {
	url := fmt.Sprintf("%s/blob?bytes=%d", f.base, nbytes)
	if f.rateQuery != "" {
		url += "&" + f.rateQuery
	}
	resp, err := f.client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("origin returned %s", resp.Status)
	}

	start := time.Now()
	buf := make([]byte, recReadBuf)
	var (
		total    int64
		prevOff  float64 // seconds since start of the last read completion
		curStart float64 // current sample start offset
		curBytes float64
		activeS  float64 // non-stalled transfer seconds, for rate estimates
	)
	flush := func(endOff float64) {
		if curBytes <= 0 {
			return
		}
		s := base + sim.Time(curStart)
		e := base + sim.Time(endOff)
		// Clamp into global monotonic order and keep spans positive; the
		// recorder's 1 µs floor is far below any real socket timing.
		if s < f.lastEnd {
			s = f.lastEnd
		}
		if e < s+recMinSpan {
			e = s + recMinSpan
		}
		f.samples = append(f.samples, netsim.TraceSample{
			Start: s, End: e, Bytes: curBytes, Fetch: f.fetch,
		})
		f.lastEnd = e
		curBytes = 0
	}
	for total < nbytes {
		n, rerr := resp.Body.Read(buf)
		off := time.Since(start).Seconds()
		if n > 0 {
			gap := off - prevOff
			if curBytes > 0 && gap > recGapThresh.Seconds() {
				// The wire stalled: close the sample at the last read and
				// place this read's bytes in a window sized by the
				// running mean rate, so the stall survives as an
				// inter-sample gap the replay renders as rate 0.
				flush(prevOff)
				est := 1e9 / 8 // line-rate fallback before any estimate
				if activeS > 0 {
					est = float64(total) / activeS
				}
				curStart = off - float64(n)/est
				if curStart < prevOff {
					curStart = prevOff
				}
			} else {
				if curBytes == 0 {
					curStart = prevOff
				}
				activeS += gap
			}
			curBytes += float64(n)
			total += int64(n)
			prevOff = off
			if curBytes >= recFlushBytes {
				flush(off)
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			return 0, rerr
		}
	}
	flush(prevOff)
	if total != nbytes {
		return 0, fmt.Errorf("origin sent %d bytes, want %d", total, nbytes)
	}
	wall := time.Since(start)
	// The completion event must land at or after the last sample's
	// (possibly clamped) end, or the next fetch could start inside it.
	if minWall := (f.lastEnd - base).Seconds(); wall.Seconds() < minWall {
		wall = time.Duration(minWall * float64(time.Second))
	}
	return wall, nil
}
