package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring mapping content-addressed keys onto
// worker indexes. Each worker owns vnodes points on the ring, so load
// spreads evenly and removing one worker reassigns only that worker's
// keys — the property that keeps every other worker's result cache hot
// across an ejection. The ring itself is immutable after build; liveness
// is a predicate supplied at lookup time, so an ejected worker's keys
// flow to the next alive point with no ring mutation (and flow back the
// moment a probe revives it).
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker int
}

// newRing builds a ring with vnodes points per worker, identified by the
// workers' stable labels (their base URLs).
func newRing(labels []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(labels)*vnodes)}
	for wi, label := range labels {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey(fmt.Sprintf("%s#%d", label, v)),
				worker: wi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.worker < b.worker // ties broken deterministically
	})
	return r
}

// pick returns the worker owning key: the first alive worker at or after
// key's point on the ring, wrapping around. The second return is false
// when no worker is alive.
func (r *ring) pick(key string, alive func(int) bool) (int, bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if alive(p.worker) {
			return p.worker, true
		}
	}
	return 0, false
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
