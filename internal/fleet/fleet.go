// Package fleet is the controller tier above a set of dvfsd workers: one
// service that accepts aggregate requests (batch sweeps, cohort runs),
// shards them across the fleet, and merges the responses into a single
// answer bit-identical to what one dvfsd would have produced.
//
// Routing is consistent hashing on the work's content-addressed identity
// (experiments.ConfigKey for sweep points, cohort.Key plus the shard
// index for cohort shards), so repeated traffic keeps each worker's
// result cache hot and the caches stay disjoint — the fleet's aggregate
// cache capacity is the sum of its workers', not N copies of one.
//
// Failure discipline: every dispatch retries with jittered exponential
// backoff; a worker accumulating consecutive failures is ejected from
// routing and its keys rehash onto the survivors (only its keys — the
// consistent-hash property), while a background health probe revives it
// on recovery. 429s from a worker are load, not death: the controller
// honors the worker's Retry-After and, if the backlog persists, passes
// the 429 through to the client with the hint clamped to ≥ 1 s.
//
// Merging is deterministic: sweep outcomes are ordered by expansion
// index and cohort partials by global shard index — exactly the orders a
// single node uses — so counter sums and quantile-sketch merges
// reproduce the single-node bytes (DESIGN.md §13).
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"videodvfs/internal/server"
	"videodvfs/internal/sim"
)

// CodeNoWorkers is the fleet-specific envelope code for a request that
// could not be routed because every worker is ejected. HTTP 503.
// (All other codes mirror dvfsd's — see server.Code*.)
const CodeNoWorkers = "no_workers"

// errNoWorkers reports a routing attempt with zero alive workers.
var errNoWorkers = errors.New("fleet: no alive workers")

// Config tunes one Controller.
type Config struct {
	// Workers lists the dvfsd base URLs (e.g. "http://10.0.0.1:8080").
	// Required, order-stable: worker index is the merge identity.
	Workers []string
	// Concurrency bounds in-flight worker requests across the whole
	// controller (≤0 = 4×workers).
	Concurrency int
	// Timeout is the per-attempt request timeout (≤0 = 60 s).
	Timeout time.Duration
	// Retries is how many times one dispatch re-attempts after a
	// transient failure, beyond the first try (<0 = 0, default 2).
	Retries int
	// Backoff is the base of the jittered exponential backoff between
	// attempts (≤0 = 100 ms).
	Backoff time.Duration
	// EjectAfter ejects a worker from routing after this many
	// consecutive failures (≤0 = 3).
	EjectAfter int
	// ProbeInterval is the health-probe cadence for ejected workers
	// (≤0 = 1 s).
	ProbeInterval time.Duration
	// MaxSweepRuns mirrors the workers' sweep-expansion cap (≤0 = 1024).
	MaxSweepRuns int
	// MaxHorizon mirrors the workers' per-run virtual-time cap
	// (≤0 = 1 virtual hour). It must match the workers' setting: the
	// controller pins each cohort's horizon exactly like a worker's
	// prepare step does, so the cohort key it reports (and routes by)
	// equals the one a single node would.
	MaxHorizon sim.Time
	// VNodes is the consistent-hash ring's virtual nodes per worker
	// (≤0 = 64).
	VNodes int
	// Client issues the worker requests (nil = a fresh http.Client; the
	// per-attempt timeout comes from Timeout either way).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 4 * len(c.Workers)
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.MaxSweepRuns <= 0 {
		c.MaxSweepRuns = 1024
	}
	if c.MaxHorizon <= 0 {
		c.MaxHorizon = sim.Time(3600) * sim.Second
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Controller is the fleet service. Create with New, mount Handler, stop
// with Shutdown.
type Controller struct {
	cfg      Config
	workers  []*worker
	ring     *ring
	sem      chan struct{}
	met      *metrics
	mux      *http.ServeMux
	draining atomic.Bool
	stop     chan struct{}
	probed   chan struct{} // closed when the probe loop exits
}

// New builds a Controller over cfg.Workers (all initially alive) and
// starts its health-probe loop.
func New(cfg Config) (*Controller, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:    cfg,
		ring:   newRing(cfg.Workers, cfg.VNodes),
		sem:    make(chan struct{}, cfg.Concurrency),
		met:    newMetrics(),
		stop:   make(chan struct{}),
		probed: make(chan struct{}),
	}
	for _, u := range cfg.Workers {
		w := &worker{url: strings.TrimRight(u, "/")}
		w.alive.Store(true)
		c.workers = append(c.workers, w)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("POST /v1/cohort", c.handleCohort)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux = mux
	go c.probeLoop()
	return c, nil
}

// Handler returns the controller's HTTP handler.
func (c *Controller) Handler() http.Handler { return c.mux }

// Shutdown stops admission (new requests get 503) and the probe loop.
// In-flight requests drain through the owning http.Server's Shutdown.
func (c *Controller) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	select {
	case <-c.probed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---- routing + dispatch ----

// pick routes key to its owning alive worker on the ring.
func (c *Controller) pick(key string) (*worker, bool) {
	wi, ok := c.ring.pick(key, func(i int) bool { return c.workers[i].alive.Load() })
	if !ok {
		return nil, false
	}
	return c.workers[wi], true
}

// wresp is one worker exchange's outcome: the HTTP status, the parsed
// envelope on non-200s, the Retry-After hint on 429s (clamped ≥ 1), and
// the raw body.
type wresp struct {
	status     int
	code       string
	message    string
	retryAfter int
	body       []byte
}

// dispatch routes one request by its content-addressed key and runs it
// to completion: per-attempt timeouts, retry with jittered exponential
// backoff pinned to the owning worker, and — when that worker gets
// ejected mid-dispatch — a rehash onto the survivors. Rehash rounds are
// bounded by the fleet size: each round requires an ejection, so the
// loop cannot cycle.
//
// The returned error is non-nil only for fleet-level failures (no alive
// workers, context canceled, all retries exhausted on transport/5xx).
// Worker 4xx/429 responses return err == nil with the status in the
// wresp — the caller decides between embedding and passing through.
func (c *Controller) dispatch(ctx context.Context, key, path, query string, body []byte) (wresp, error) {
	var last wresp
	var lastErr error
	for round := 0; round <= len(c.workers); round++ {
		w, ok := c.pick(key)
		if !ok {
			return last, errNoWorkers
		}
		last, lastErr = c.post(ctx, w, path, query, body)
		if lastErr == nil {
			return last, nil
		}
		if errors.Is(lastErr, context.Canceled) || errors.Is(lastErr, context.DeadlineExceeded) {
			return last, lastErr
		}
		if w.alive.Load() {
			// The worker survived its failure streak (not ejected): the
			// failure is not routable-around, so surface it.
			return last, lastErr
		}
		// Ejected: the ring now skips it; rehash onto the survivors.
	}
	return last, lastErr
}

// post sends one request to a specific worker, retrying transient
// failures in place: 429s wait out the worker's Retry-After hint,
// transport errors and 5xx back off exponentially with jitter and count
// toward the worker's ejection streak.
func (c *Controller) post(ctx context.Context, w *worker, path, query string, body []byte) (wresp, error) {
	var last wresp
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			w.retries.Add(1)
		}
		resp, err := c.exchange(ctx, w, path, query, body)
		switch {
		case err == nil && resp.status != http.StatusTooManyRequests && resp.status < 500:
			// 2xx or a permanent 4xx: either way the worker answered
			// coherently, which resets its failure streak.
			w.ok()
			return resp, nil
		case err == nil && resp.status == http.StatusTooManyRequests:
			// Load, not death. Honor the hint (capped so one hot worker
			// cannot stall the controller arbitrarily), then re-attempt.
			w.ok()
			last, lastErr = resp, nil
			wait := time.Duration(resp.retryAfter) * time.Second
			if cap := 8 * c.cfg.Backoff; wait > cap {
				wait = cap
			}
			if serr := sleepCtx(ctx, wait); serr != nil {
				return last, serr
			}
		default: // transport error or 5xx
			if err != nil {
				last, lastErr = wresp{}, fmt.Errorf("fleet: worker %s: %w", w.url, err)
			} else {
				last, lastErr = resp, fmt.Errorf("fleet: worker %s: status %d: %s", w.url, resp.status, resp.message)
			}
			if w.fail(int64(c.cfg.EjectAfter)) {
				c.met.ejections.Add(1)
				return last, lastErr // ejected: let the caller rehash now
			}
			if serr := sleepCtx(ctx, c.backoff(attempt)); serr != nil {
				return last, serr
			}
		}
	}
	return last, lastErr
}

// exchange performs one HTTP round trip under the controller-wide
// concurrency bound and the per-attempt timeout, folding the worker's
// response headers (cache outcome, queue depth, Retry-After) into the
// worker's gauges and the wresp.
func (c *Controller) exchange(ctx context.Context, w *worker, path, query string, body []byte) (wresp, error) {
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-ctx.Done():
		return wresp{}, ctx.Err()
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, w.url+path+query, strings.NewReader(string(body)))
	if err != nil {
		return wresp{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	w.dispatches.Add(1)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return wresp{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return wresp{}, err
	}
	if qd := resp.Header.Get("X-Dvfsd-Queue-Depth"); qd != "" {
		if n, perr := strconv.Atoi(qd); perr == nil {
			w.queueDepth.Store(int64(n))
		}
	}
	switch resp.Header.Get("X-Dvfsd-Cache") {
	case "hit":
		w.hits.Add(1)
	case "miss", "coalesced":
		w.misses.Add(1)
	}
	out := wresp{status: resp.StatusCode, body: data}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(data, &env) == nil {
			out.code, out.message = env.Error.Code, env.Error.Message
		}
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		out.retryAfter = 1
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if n, perr := strconv.Atoi(ra); perr == nil && n > 1 {
				out.retryAfter = n
			}
		}
	}
	return out, nil
}

// backoff returns the jittered exponential delay before retry `attempt`:
// base·2^attempt scaled by a random factor in [0.5, 1.0), so synchronized
// retries from concurrent dispatches de-correlate.
func (c *Controller) backoff(attempt int) time.Duration {
	d := c.cfg.Backoff << uint(attempt)
	if max := 64 * c.cfg.Backoff; d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()/2))
}

// sleepCtx sleeps d or returns ctx's error, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---- probes ----

// probeLoop polls every worker's /healthz on the probe cadence. A
// passing probe revives an ejected worker (its ring keys flow back); a
// failing one extends the streak so a silently-dead worker is ejected
// even with no traffic in flight.
func (c *Controller) probeLoop() {
	defer close(c.probed)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for _, w := range c.workers {
				c.probe(w)
			}
		}
	}
}

func (c *Controller) probe(w *worker) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		w.fail(int64(c.cfg.EjectAfter))
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		w.ok()
	} else {
		w.fail(int64(c.cfg.EjectAfter))
	}
}

// ---- response plumbing ----

type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding failure"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func writeErr(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: message}})
}

// writeDispatchError renders a failed dispatch: worker envelopes pass
// through status, code, and (clamped) Retry-After; fleet-level failures
// get their own codes.
func (c *Controller) writeDispatchError(w http.ResponseWriter, resp wresp, err error) {
	if errors.Is(err, errNoWorkers) {
		writeErr(w, http.StatusServiceUnavailable, CodeNoWorkers, err.Error())
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, server.CodeInternal, err.Error())
		return
	}
	if resp.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(max(resp.retryAfter, 1)))
	}
	code := resp.code
	if code == "" {
		code = server.CodeInternal
	}
	writeErr(w, resp.status, code, resp.message)
}

func (c *Controller) handleHealth(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{"draining"})
		return
	}
	alive := 0
	for _, wk := range c.workers {
		if wk.alive.Load() {
			alive++
		}
	}
	status := http.StatusOK
	state := "ok"
	if alive == 0 {
		status, state = http.StatusServiceUnavailable, "no_workers"
	}
	writeJSON(w, status, struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		Alive   int    `json:"alive"`
	}{state, len(c.workers), alive})
}
