package fleet

import "sync/atomic"

// worker is the controller's view of one dvfsd backend: its base URL
// plus liveness and per-worker counters. All fields are atomics — the
// dispatch paths, the probe loop, and /metrics read and write them
// concurrently.
type worker struct {
	url string

	// alive gates routing: the ring skips dead workers. Flips false after
	// EjectAfter consecutive failures, true again on a successful probe
	// or dispatch.
	alive atomic.Bool
	// consecFails counts failures since the last success.
	consecFails atomic.Int64

	// queueDepth mirrors the worker's last reported X-Dvfsd-Queue-Depth.
	queueDepth atomic.Int64

	dispatches atomic.Int64 // requests sent (attempts, not logical dispatches)
	retries    atomic.Int64 // attempts beyond the first
	failures   atomic.Int64 // transport errors + 5xx responses
	ejections  atomic.Int64 // alive→dead transitions
	hits       atomic.Int64 // responses with X-Dvfsd-Cache: hit
	misses     atomic.Int64 // responses with X-Dvfsd-Cache: miss or coalesced
}

// ok records a successful exchange: the failure streak resets and a dead
// worker revives.
func (w *worker) ok() {
	w.consecFails.Store(0)
	w.alive.Store(true)
}

// fail records one failed exchange and ejects the worker once the streak
// reaches ejectAfter. Returns true when this call performed the
// ejection.
func (w *worker) fail(ejectAfter int64) bool {
	w.failures.Add(1)
	if w.consecFails.Add(1) >= ejectAfter && w.alive.CompareAndSwap(true, false) {
		w.ejections.Add(1)
		return true
	}
	return false
}

// hitRatio is hits / (hits + misses), 0 before any cacheable response.
func (w *worker) hitRatio() float64 {
	h, m := w.hits.Load(), w.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
