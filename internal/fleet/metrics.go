package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metrics aggregates the controller-level counters exposed on /metrics;
// per-worker gauges live on the workers themselves and are rendered from
// the same snapshot.
type metrics struct {
	start     time.Time
	requests  sync.Map // endpoint string -> *atomic.Int64
	ejections atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

func (m *metrics) request(endpoint string) {
	v, ok := m.requests.Load(endpoint)
	if !ok {
		v, _ = m.requests.LoadOrStore(endpoint, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

// handleMetrics renders the fleet rollup in the same Prometheus-style
// text format as dvfsd's /metrics: controller counters first, then one
// gauge set per worker labeled by its URL.
func (c *Controller) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	fmt.Fprintf(&b, "dvfsctl_uptime_seconds %g\n", time.Since(c.met.start).Seconds())

	var endpoints []string
	c.met.requests.Range(func(k, _ any) bool {
		endpoints = append(endpoints, k.(string))
		return true
	})
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		v, _ := c.met.requests.Load(ep)
		fmt.Fprintf(&b, "dvfsctl_requests_total{endpoint=%q} %d\n", ep, v.(*atomic.Int64).Load())
	}

	alive := 0
	for _, wk := range c.workers {
		if wk.alive.Load() {
			alive++
		}
	}
	fmt.Fprintf(&b, "dvfsctl_workers %d\n", len(c.workers))
	fmt.Fprintf(&b, "dvfsctl_workers_alive %d\n", alive)
	fmt.Fprintf(&b, "dvfsctl_ejections_total %d\n", c.met.ejections.Load())

	for _, wk := range c.workers {
		up := 0
		if wk.alive.Load() {
			up = 1
		}
		fmt.Fprintf(&b, "dvfsctl_worker_up{worker=%q} %d\n", wk.url, up)
		fmt.Fprintf(&b, "dvfsctl_worker_queue_depth{worker=%q} %d\n", wk.url, wk.queueDepth.Load())
		fmt.Fprintf(&b, "dvfsctl_worker_dispatches_total{worker=%q} %d\n", wk.url, wk.dispatches.Load())
		fmt.Fprintf(&b, "dvfsctl_worker_retries_total{worker=%q} %d\n", wk.url, wk.retries.Load())
		fmt.Fprintf(&b, "dvfsctl_worker_failures_total{worker=%q} %d\n", wk.url, wk.failures.Load())
		fmt.Fprintf(&b, "dvfsctl_worker_ejections_total{worker=%q} %d\n", wk.url, wk.ejections.Load())
		fmt.Fprintf(&b, "dvfsctl_worker_cache_hits_total{worker=%q} %d\n", wk.url, wk.hits.Load())
		fmt.Fprintf(&b, "dvfsctl_worker_cache_misses_total{worker=%q} %d\n", wk.url, wk.misses.Load())
		fmt.Fprintf(&b, "dvfsctl_worker_cache_hit_ratio{worker=%q} %g\n", wk.url, wk.hitRatio())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write([]byte(b.String()))
}
