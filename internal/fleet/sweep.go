package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"videodvfs/internal/experiments"
	"videodvfs/internal/server"
)

// maxBodyBytes bounds controller request bodies, mirroring dvfsd.
const maxBodyBytes = 1 << 20

// sweepBody mirrors dvfsd's /v1/sweep response: per-point outcomes in
// expansion order, each either the worker's raw run body (byte-identical
// to a single node's, since both are the same content-addressed marshal)
// or an error string.
type sweepBody struct {
	Count    int            `json:"count"`
	Outcomes []sweepOutcome `json:"outcomes"`
}

type sweepOutcome struct {
	Index int             `json:"index"`
	Run   json.RawMessage `json:"run,omitempty"`
	Error string          `json:"error,omitempty"`
}

// handleSweep shards one sweep across the fleet: the request expands to
// wire-level points in exactly dvfsd's expansion order, each point
// routes to the worker owning its ConfigKey on the ring (keeping the
// workers' caches hot and disjoint), and the outcomes merge back in
// expansion order — the same response a single dvfsd would build.
func (c *Controller) handleSweep(w http.ResponseWriter, r *http.Request) {
	c.met.request("sweep")
	if c.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, server.CodeDraining, "controller draining, not admitting new work")
		return
	}
	req, err := server.DecodeSweepRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		c.writeRequestError(w, err)
		return
	}
	if size := req.Size(); size > int64(c.cfg.MaxSweepRuns) {
		writeErr(w, http.StatusBadRequest, server.CodeInvalidConfig,
			fmt.Sprintf("fleet: sweep expands to %d runs, cap is %d", size, c.cfg.MaxSweepRuns))
		return
	}
	// Configs both validates every point and yields the content-addressed
	// routing keys, in the exact expansion order the wire points use.
	cfgs, err := req.Configs()
	if err != nil {
		c.writeRequestError(w, err)
		return
	}
	for _, s := range req.Seeds {
		if s == 0 {
			// The per-run wire form cannot express seed 0 (zero means
			// "default"), so a fleet-dispatched point would silently run a
			// different seed than a single node. Reject rather than diverge.
			writeErr(w, http.StatusBadRequest, server.CodeInvalidConfig,
				"fleet: explicit seed 0 is not expressible in dispatched runs")
			return
		}
	}
	query, err := passthroughQuery(r)
	if err != nil {
		c.writeRequestError(w, err)
		return
	}
	points := expandSweepWire(req)
	if len(points) != len(cfgs) { // defensive: the two expansions must mirror
		writeErr(w, http.StatusInternalServerError, server.CodeInternal,
			fmt.Sprintf("fleet: wire expansion yielded %d points for %d configs", len(points), len(cfgs)))
		return
	}

	outcomes := make([]sweepOutcome, len(points))
	resps := make([]wresp, len(points))
	errs := make([]error, len(points))
	var wg sync.WaitGroup
	for i := range points {
		body, merr := json.Marshal(points[i])
		if merr != nil {
			errs[i] = merr
			continue
		}
		key, _ := experiments.ConfigKey(cfgs[i])
		wg.Add(1)
		go func(i int, key string, body []byte) {
			defer wg.Done()
			resps[i], errs[i] = c.dispatch(r.Context(), key, "/v1/run", query, body)
		}(i, key, body)
	}
	wg.Wait()

	failed, overloaded := 0, 0
	maxRetryAfter := 1
	for i := range points {
		switch {
		case errs[i] != nil:
			outcomes[i] = sweepOutcome{Index: i, Error: errs[i].Error()}
			failed++
		case resps[i].status == http.StatusOK:
			outcomes[i] = sweepOutcome{Index: i, Run: resps[i].body}
		default:
			msg := resps[i].message
			if msg == "" {
				msg = fmt.Sprintf("worker status %d", resps[i].status)
			}
			outcomes[i] = sweepOutcome{Index: i, Error: msg}
			failed++
			if resps[i].status == http.StatusTooManyRequests {
				overloaded++
				if resps[i].retryAfter > maxRetryAfter {
					maxRetryAfter = resps[i].retryAfter
				}
			}
		}
	}
	// A sweep the fleet could not place at all is backpressure, not a
	// result: pass the 429 through with the workers' largest hint
	// (clamped ≥ 1 like dvfsd's own Retry-After).
	if failed == len(points) && overloaded == failed && failed > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", maxRetryAfter))
		writeErr(w, http.StatusTooManyRequests, server.CodeOverloaded,
			"fleet: every worker is overloaded; retry after the hint")
		return
	}
	writeJSON(w, http.StatusOK, sweepBody{Count: len(outcomes), Outcomes: outcomes})
}

// passthroughQuery validates and forwards the query parameters dvfsd's
// /v1/run understands from a sweep (?strict); unknown parameters are a
// client error rather than a silent drop.
func passthroughQuery(r *http.Request) (string, error) {
	q := r.URL.Query()
	for k := range q {
		if k != "strict" {
			return "", fmt.Errorf("fleet: %w: unknown query parameter %q", server.ErrBadRequest, k)
		}
	}
	switch v := q.Get("strict"); v {
	case "", "0", "false":
		return "", nil
	case "1", "true":
		return "?strict=1", nil
	default:
		return "", fmt.Errorf("fleet: %w: unknown strict value %q (1)", server.ErrBadRequest, v)
	}
}

// expandSweepWire expands a sweep request into per-point run requests in
// exactly experiments.Sweep.Expand's order (governor-major, seed-minor):
// the cross product of the axes in declaration order, axes left empty
// pinned to the base value. Point i here resolves to the same RunConfig
// as Configs()[i], so the ConfigKey list indexes both expansions.
func expandSweepWire(req server.SweepRequest) []server.RunRequest {
	govs := axisOr(req.Governors, req.Base.Governor)
	nets := axisOr(req.Nets, req.Base.Net)
	devs := axisOr(req.Devices, req.Base.Device)
	titles := axisOr(req.Titles, req.Base.Title)
	rungs := axisOr(req.Rungs, req.Base.Rung)
	seeds := req.Seeds
	if req.SeedRange != nil {
		seeds = experiments.SeedRange(req.SeedRange[0], req.SeedRange[1])
	}
	if len(seeds) == 0 {
		seeds = []int64{req.Base.Seed}
	}
	out := make([]server.RunRequest, 0, len(govs)*len(nets)*len(devs)*len(titles)*len(rungs)*len(seeds))
	for _, gov := range govs {
		for _, net := range nets {
			for _, dev := range devs {
				for _, title := range titles {
					for _, rung := range rungs {
						for _, seed := range seeds {
							rr := req.Base
							rr.Governor = gov
							rr.Net = net
							rr.Device = dev
							rr.Title = title
							rr.Rung = rung
							rr.Seed = seed
							out = append(out, rr)
						}
					}
				}
			}
		}
	}
	return out
}

// axisOr returns the axis values, or the base value alone when the axis
// is empty (possibly "", meaning the catalog default — the same
// semantics the worker applies).
func axisOr(axis []string, base string) []string {
	if len(axis) == 0 {
		return []string{base}
	}
	return axis
}

// writeRequestError maps request decoding/validation failures onto
// dvfsd's envelope taxonomy.
func (c *Controller) writeRequestError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		writeErr(w, http.StatusRequestEntityTooLarge, server.CodeTooLarge, err.Error())
	case errors.Is(err, server.ErrBadRequest):
		writeErr(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
	case errors.Is(err, experiments.ErrInvalidConfig):
		writeErr(w, http.StatusBadRequest, server.CodeInvalidConfig, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, server.CodeInternal, err.Error())
	}
}
