package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"videodvfs/internal/cohort"
	"videodvfs/internal/server"
	"videodvfs/internal/sim"
)

// cohortSummaryFrame mirrors dvfsd's cohort summary NDJSON line.
type cohortSummaryFrame struct {
	Ev     string        `json:"ev"`
	Key    string        `json:"key,omitempty"`
	Result cohort.Result `json:"result"`
}

// handleCohort shards one cohort across the fleet. The shard layout is a
// pure function of the cohort config, so the controller derives it
// locally, routes each shard index by cohortKey+"/shard/i" on the ring,
// and sends every worker one /v1/cohort/part request naming its shard
// set. The returned partials merge in global shard-index order
// (cohort.MergeParts), reproducing the single-node Result bit for bit;
// the response is the summary NDJSON line a single dvfsd closes its
// cohort stream with. (Rollup frames require the whole-cohort barrier
// state no part can see, so a fleet cohort answers with the summary
// only.)
func (c *Controller) handleCohort(w http.ResponseWriter, r *http.Request) {
	c.met.request("cohort")
	if c.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, server.CodeDraining, "controller draining, not admitting new work")
		return
	}
	req, err := server.DecodeCohortRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		c.writeRequestError(w, err)
		return
	}
	if len(r.URL.Query()) != 0 {
		// ?stream=1 and ?strict=1 need single-engine context a sharded
		// cohort does not have; reject rather than silently degrade.
		writeErr(w, http.StatusBadRequest, server.CodeBadRequest,
			"fleet: /v1/cohort accepts no query parameters (stream/strict are single-node features)")
		return
	}
	cfg, err := req.Config()
	if err != nil {
		c.writeRequestError(w, err)
		return
	}
	// Pin the horizon exactly like a worker's admission step does before
	// it computes the cohort key: the canonical key covers every config
	// field, so the controller must resolve defaults identically or the
	// key it echoes (and routes by) diverges from the single-node one.
	if cfg.Base.Horizon <= 0 {
		cfg.Base.Horizon = cfg.Base.Duration*6 + 60*sim.Second
	}
	if cfg.Base.Horizon > c.cfg.MaxHorizon {
		cfg.Base.Horizon = c.cfg.MaxHorizon
	}
	nShards := cohort.ShardCount(cfg)
	key, _ := cohort.Key(cfg)

	shards := make([]int, nShards)
	for i := range shards {
		shards[i] = i
	}
	parts, resp, err := c.runShards(r.Context(), req, key, shards)
	if err != nil || resp.status != 0 {
		c.writeDispatchError(w, resp, err)
		return
	}
	merged, err := cohort.MergeParts(parts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, server.CodeInternal, err.Error())
		return
	}
	body, err := json.Marshal(cohortSummaryFrame{Ev: "summary", Key: key, Result: merged})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, server.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(append(body, '\n'))
}

// runShards dispatches the named shard indexes across the fleet and
// collects their partials. Shards group per owning worker (one
// /v1/cohort/part per worker per round, so a worker's part cache key is
// stable across identical cohorts); when a worker is ejected
// mid-dispatch its group rehashes onto the survivors in the next round.
// Rounds are bounded: a retry round requires an ejection, so there are
// at most len(workers) of them. A non-routable failure (worker 4xx,
// exhausted 429, or an error on a still-alive worker) aborts the whole
// cohort — parts are all-or-nothing, MergeParts needs every shard.
//
// Failures return either a non-nil error (fleet-level) or a wresp with a
// non-zero status (worker envelope to pass through); success returns
// resp.status == 0.
func (c *Controller) runShards(ctx context.Context, req server.CohortRequest, key string, shards []int) ([]cohort.Partial, wresp, error) {
	var parts []cohort.Partial
	pending := shards
	for round := 0; len(pending) > 0; round++ {
		if round > len(c.workers) {
			return nil, wresp{}, fmt.Errorf("fleet: shard dispatch did not converge after %d rounds", round)
		}
		groups := make(map[*worker][]int)
		for _, sh := range pending {
			wk, ok := c.pick(key + "/shard/" + strconv.Itoa(sh))
			if !ok {
				return nil, wresp{}, errNoWorkers
			}
			groups[wk] = append(groups[wk], sh)
		}
		var (
			mu       sync.Mutex
			retry    []int
			failResp wresp
			failErr  error
			failed   bool
			wg       sync.WaitGroup
		)
		for wk, grp := range groups {
			body, merr := json.Marshal(server.CohortPartRequest{Cohort: req, Shards: grp})
			if merr != nil {
				return nil, wresp{}, merr
			}
			wg.Add(1)
			go func(wk *worker, grp []int, body []byte) {
				defer wg.Done()
				resp, err := c.post(ctx, wk, "/v1/cohort/part", "", body)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil && resp.status == http.StatusOK:
					var pb struct {
						Partial cohort.Partial `json:"partial"`
					}
					if uerr := json.Unmarshal(resp.body, &pb); uerr != nil {
						if !failed {
							failed, failErr = true, fmt.Errorf("fleet: worker %s: undecodable part: %w", wk.url, uerr)
						}
						return
					}
					parts = append(parts, pb.Partial)
				case err != nil && !wk.alive.Load():
					// Ejected mid-dispatch: rehash this group's shards onto
					// the survivors next round.
					retry = append(retry, grp...)
				default:
					if !failed {
						failed, failResp, failErr = true, resp, err
					}
				}
			}(wk, grp, body)
		}
		wg.Wait()
		if failed {
			return nil, failResp, failErr
		}
		pending = retry
	}
	return parts, wresp{}, nil
}
