package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"videodvfs/internal/cohort"
	"videodvfs/internal/experiments"
	"videodvfs/internal/server"
)

// ---- ring ----

// The ring must spread keys over every worker and, on an ejection, move
// only the ejected worker's keys — the cache-affinity property the whole
// design rests on.
func TestRingSpreadAndMinimalDisruption(t *testing.T) {
	labels := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(labels, 64)
	allAlive := func(int) bool { return true }

	counts := make([]int, len(labels))
	owner := make(map[string]int, 10000)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		wi, ok := r.pick(key, allAlive)
		if !ok {
			t.Fatal("pick failed with all workers alive")
		}
		counts[wi]++
		owner[key] = wi
	}
	for wi, n := range counts {
		if n < 1500 {
			t.Errorf("worker %d owns only %d/10000 keys — ring is badly skewed", wi, n)
		}
	}

	// Eject worker 1: its keys must move, everyone else's must not.
	withoutB := func(i int) bool { return i != 1 }
	for key, prev := range owner {
		wi, ok := r.pick(key, withoutB)
		if !ok {
			t.Fatal("pick failed with two workers alive")
		}
		if prev != 1 && wi != prev {
			t.Fatalf("key %q moved from %d to %d though its owner is alive", key, prev, wi)
		}
		if prev == 1 && wi == 1 {
			t.Fatalf("key %q still routes to the ejected worker", key)
		}
	}

	if _, ok := r.pick("anything", func(int) bool { return false }); ok {
		t.Fatal("pick succeeded with no alive workers")
	}
}

// ---- e2e harness ----

// slowRunner wraps the real simulator with a small fixed wall-time delay
// so a sweep stays in flight long enough to kill a worker under it.
func slowRunner(d time.Duration) func(experiments.RunConfig) (experiments.RunResult, error) {
	return func(cfg experiments.RunConfig) (experiments.RunResult, error) {
		time.Sleep(d)
		return experiments.Run(cfg)
	}
}

// testFleet boots n real dvfsd workers plus a controller over them and
// returns the controller's base URL, the worker httptest servers (for
// killing), and the single-node reference dvfsd every merged answer is
// compared against.
func testFleet(t *testing.T, n int, workerCfg server.Config, fcfg Config) (string, []*httptest.Server, string) {
	t.Helper()
	var urls []string
	var wts []*httptest.Server
	for i := 0; i < n; i++ {
		s := server.New(workerCfg)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		urls = append(urls, ts.URL)
		wts = append(wts, ts)
	}

	ref := server.New(server.Config{})
	refTS := httptest.NewServer(ref.Handler())
	t.Cleanup(func() {
		refTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ref.Shutdown(ctx)
	})

	fcfg.Workers = urls
	ctl, err := New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(ctl.Handler())
	t.Cleanup(func() {
		cts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ctl.Shutdown(ctx)
	})
	return cts.URL, wts, refTS.URL
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

const sweepReq = `{"base": {"duration_s": 6}, "governors": ["ondemand", "energyaware"], "seeds": [1, 2, 3, 4]}`

// A fleet-merged sweep must be byte-identical to a single node's: same
// expansion order, same per-point run bodies, same envelope.
func TestFleetSweepMatchesSingleNode(t *testing.T) {
	ctlURL, _, refURL := testFleet(t, 3, server.Config{}, Config{
		Retries: 2, Backoff: 5 * time.Millisecond, ProbeInterval: time.Hour,
	})

	resp, fleetBody := post(t, ctlURL+"/v1/sweep", sweepReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep status %d: %s", resp.StatusCode, fleetBody)
	}
	refResp, refBody := post(t, refURL+"/v1/sweep", sweepReq)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("ref sweep status %d: %s", refResp.StatusCode, refBody)
	}
	if !bytes.Equal(fleetBody, refBody) {
		t.Fatalf("fleet sweep differs from single node:\nfleet: %s\nref:   %s", fleetBody, refBody)
	}

	// The routing is cache-affine: a repeat sweep is all hits, visible in
	// the controller's rollup.
	if _, again := post(t, ctlURL+"/v1/sweep", sweepReq); !bytes.Equal(again, refBody) {
		t.Fatal("repeat fleet sweep drifted")
	}
	_, met := getBody(t, ctlURL+"/metrics")
	if !strings.Contains(string(met), "dvfsctl_worker_cache_hits_total") {
		t.Fatalf("metrics missing per-worker cache counters:\n%s", met)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// Killing a worker mid-sweep must not change the answer: the controller
// ejects it, rehashes its in-flight points onto the survivors, and the
// merged response still matches the single-node bytes.
func TestFleetSweepSurvivesWorkerKill(t *testing.T) {
	ctlURL, workers, refURL := testFleet(t, 3,
		server.Config{Runner: slowRunner(60 * time.Millisecond), Workers: 2},
		Config{Retries: 3, Backoff: 5 * time.Millisecond, EjectAfter: 1, ProbeInterval: time.Hour})

	// Kill one worker while the sweep's first wave is still sleeping in
	// the scripted runner.
	killed := make(chan struct{})
	go func() {
		time.Sleep(25 * time.Millisecond)
		workers[0].CloseClientConnections()
		workers[0].Close()
		close(killed)
	}()

	resp, fleetBody := post(t, ctlURL+"/v1/sweep", sweepReq)
	<-killed
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep status %d after kill: %s", resp.StatusCode, fleetBody)
	}
	refResp, refBody := post(t, refURL+"/v1/sweep", sweepReq)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("ref sweep status %d: %s", refResp.StatusCode, refBody)
	}
	if !bytes.Equal(fleetBody, refBody) {
		t.Fatalf("post-kill fleet sweep differs from single node:\nfleet: %s\nref:   %s", fleetBody, refBody)
	}

	// The dead worker must be gone from routing.
	_, met := getBody(t, ctlURL+"/metrics")
	if !strings.Contains(string(met), fmt.Sprintf("dvfsctl_worker_up{worker=%q} 0", workers[0].URL)) {
		t.Fatalf("killed worker still marked up:\n%s", met)
	}
}

const cohortReq = `{"base": {"duration_s": 6}, "viewers": 24, "shards": 6, "rollup_s": 5, "seed": 7}`

// summaryOf parses the last NDJSON line of a cohort response.
func summaryOf(t *testing.T, raw []byte) (string, cohort.Result) {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	var frame struct {
		Ev     string        `json:"ev"`
		Key    string        `json:"key"`
		Result cohort.Result `json:"result"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &frame); err != nil || frame.Ev != "summary" {
		t.Fatalf("no summary line: %v\n%s", err, raw)
	}
	return frame.Key, frame.Result
}

// A fleet-sharded cohort must merge to the exact single-node summary —
// with all workers healthy, and again with one worker already dead (its
// shards rehash onto the survivors via ejection).
func TestFleetCohortMatchesSingleNode(t *testing.T) {
	ctlURL, workers, refURL := testFleet(t, 3, server.Config{}, Config{
		Retries: 2, Backoff: 5 * time.Millisecond, EjectAfter: 1, ProbeInterval: time.Hour,
	})

	refResp, refBody := post(t, refURL+"/v1/cohort", cohortReq)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("ref cohort status %d: %s", refResp.StatusCode, refBody)
	}
	refKey, refResult := summaryOf(t, refBody)

	resp, fleetBody := post(t, ctlURL+"/v1/cohort", cohortReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet cohort status %d: %s", resp.StatusCode, fleetBody)
	}
	key, result := summaryOf(t, fleetBody)
	if key != refKey {
		t.Fatalf("fleet cohort key %s, want %s", key, refKey)
	}
	if !reflect.DeepEqual(result, refResult) {
		t.Fatalf("fleet cohort differs from single node:\nfleet: %+v\nref:   %+v", result, refResult)
	}

	// Kill a worker, then run again: its shards must rehash and the
	// merged result must not change.
	workers[1].CloseClientConnections()
	workers[1].Close()
	resp, fleetBody = post(t, ctlURL+"/v1/cohort", cohortReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet cohort status %d after kill: %s", resp.StatusCode, fleetBody)
	}
	if _, result = summaryOf(t, fleetBody); !reflect.DeepEqual(result, refResult) {
		t.Fatalf("post-kill fleet cohort differs:\nfleet: %+v\nref:   %+v", result, refResult)
	}
}

// A worker answering 429 is load, not death: after the retry budget the
// controller passes the 429 through with the worker's Retry-After hint
// clamped to ≥ 1 — even when the worker (degenerately) says 0.
func TestFleet429CarryThroughClamped(t *testing.T) {
	var hits atomic.Int64
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		hits.Add(1)
		w.Header().Set("Retry-After", "0") // degenerate hint
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":{"code":"overloaded","message":"queue full"}}`)
	}))
	t.Cleanup(busy.Close)

	ctl, err := New(Config{
		Workers: []string{busy.URL}, Retries: 1,
		Backoff: time.Millisecond, ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(ctl.Handler())
	t.Cleanup(func() {
		cts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ctl.Shutdown(ctx)
	})

	resp, raw := post(t, cts.URL+"/v1/sweep", `{"base": {"duration_s": 6}, "seeds": [1, 2]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, raw)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want clamped ≥ 1", ra)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "overloaded" {
		t.Fatalf("envelope = %s", raw)
	}
	if got := hits.Load(); got < 4 { // 2 points × (1 try + 1 retry)
		t.Fatalf("worker saw %d attempts, want ≥4 (retry budget not honored)", got)
	}
}

// With every worker dead the controller must answer 503/no_workers, and
// a revived worker must come back via the health probe.
func TestFleetNoWorkersAndRevival(t *testing.T) {
	s := server.New(server.Config{})
	var down atomic.Bool
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		gate.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	ctl, err := New(Config{
		Workers: []string{gate.URL}, Retries: 0,
		Backoff: time.Millisecond, EjectAfter: 1, ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(ctl.Handler())
	t.Cleanup(func() {
		cts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ctl.Shutdown(ctx)
	})

	down.Store(true)
	resp, raw := post(t, cts.URL+"/v1/cohort", cohortReq)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with all workers dead, want 503: %s", resp.StatusCode, raw)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != CodeNoWorkers {
		t.Fatalf("envelope = %s, want code %q", raw, CodeNoWorkers)
	}
	if hresp, _ := getBody(t, cts.URL+"/healthz"); hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d with no alive workers, want 503", hresp.StatusCode)
	}

	// Revive: the probe loop must bring the worker back without traffic.
	down.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if hresp, _ := getBody(t, cts.URL+"/healthz"); hresp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never revived via health probe")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp, raw := post(t, cts.URL+"/v1/cohort", cohortReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("cohort after revival: status %d: %s", resp.StatusCode, raw)
	}
}
