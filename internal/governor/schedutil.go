package governor

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
)

// SchedutilConfig mirrors the shape of the kernel schedutil governor:
// frequency follows utilization with a 25% headroom and a rate limit.
type SchedutilConfig struct {
	// Sampling is the evaluation period (PELT-update granularity here).
	Sampling sim.Time
	// Headroom is the capacity margin: f = (1 + Headroom) · util · fmax
	// (kernel uses util + util/4, i.e. 0.25).
	Headroom float64
	// RateLimit is the minimum spacing between frequency changes
	// (rate_limit_us, default 10 ms class).
	RateLimit sim.Time
}

// DefaultSchedutilConfig returns kernel-like defaults.
func DefaultSchedutilConfig() SchedutilConfig {
	return SchedutilConfig{
		Sampling:  10 * sim.Millisecond,
		Headroom:  0.25,
		RateLimit: 10 * sim.Millisecond,
	}
}

// Validate checks tunable ranges.
func (c SchedutilConfig) Validate() error {
	if c.Sampling <= 0 {
		return fmt.Errorf("schedutil: sampling %v not positive", c.Sampling)
	}
	if c.Headroom < 0 || c.Headroom > 1 {
		return fmt.Errorf("schedutil: headroom %v outside [0, 1]", c.Headroom)
	}
	if c.RateLimit < 0 {
		return fmt.Errorf("schedutil: negative rate limit")
	}
	return nil
}

// Schedutil approximates the kernel schedutil governor with windowed
// utilization in place of PELT: f_next = 1.25 · util · fmax, rate limited.
type Schedutil struct {
	cfg        SchedutilConfig
	core       *cpu.Core
	sampler    *cpu.UtilSampler
	ticker     *sim.Ticker
	lastChange sim.Time
	attached   bool
}

// NewSchedutil returns a schedutil governor with the given tunables.
func NewSchedutil(cfg SchedutilConfig) (*Schedutil, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Schedutil{cfg: cfg}, nil
}

// Name implements Governor.
func (*Schedutil) Name() string { return "schedutil" }

// Attach implements Governor.
func (g *Schedutil) Attach(eng *sim.Engine, core *cpu.Core) error {
	if g.attached {
		return errReattach(g.Name())
	}
	g.attached = true
	g.core = core
	g.sampler = cpu.NewUtilSampler(core)
	g.lastChange = -g.cfg.RateLimit
	g.ticker = sim.NewTicker(eng, g.cfg.Sampling, g.sample)
	return nil
}

// Detach implements Governor.
func (g *Schedutil) Detach() {
	if g.ticker != nil {
		g.ticker.Stop()
	}
}

func (g *Schedutil) sample(now sim.Time) {
	if now-g.lastChange < g.cfg.RateLimit {
		return
	}
	util := g.sampler.Sample(now)
	target := (1 + g.cfg.Headroom) * util * g.core.Model().Fmax()
	before := g.core.OPP()
	g.core.SetFreq(target)
	if g.core.OPP() != before {
		g.lastChange = now
	}
}
