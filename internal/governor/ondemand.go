package governor

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
)

// OndemandConfig mirrors the tunables of the kernel ondemand governor.
type OndemandConfig struct {
	// SamplingRate is the utilization sampling period.
	SamplingRate sim.Time
	// UpThreshold is the load fraction above which the governor jumps to
	// the highest OPP (kernel default 80 → 0.80).
	UpThreshold float64
	// SamplingDownFactor multiplies the sampling period while at the
	// highest OPP before a down-scale is considered (kernel default 1;
	// Android vendors commonly ship 2–4). It slows frequency decay.
	SamplingDownFactor int
	// PowersaveBias shifts every target frequency down by this fraction
	// (the kernel tunable is 0–1000 per mille; here 0–1). Default 0.
	PowersaveBias float64
}

// DefaultOndemandConfig returns the kernel defaults on a 20 ms sampling
// period.
func DefaultOndemandConfig() OndemandConfig {
	return OndemandConfig{
		SamplingRate:       20 * sim.Millisecond,
		UpThreshold:        0.80,
		SamplingDownFactor: 2,
	}
}

// Validate checks tunable ranges.
func (c OndemandConfig) Validate() error {
	if c.SamplingRate <= 0 {
		return fmt.Errorf("ondemand: sampling rate %v not positive", c.SamplingRate)
	}
	if c.UpThreshold <= 0 || c.UpThreshold > 1 {
		return fmt.Errorf("ondemand: up threshold %v outside (0, 1]", c.UpThreshold)
	}
	if c.SamplingDownFactor < 1 {
		return fmt.Errorf("ondemand: sampling down factor %d < 1", c.SamplingDownFactor)
	}
	if c.PowersaveBias < 0 || c.PowersaveBias >= 1 {
		return fmt.Errorf("ondemand: powersave bias %v outside [0, 1)", c.PowersaveBias)
	}
	return nil
}

// Ondemand is the classic kernel ondemand governor: on high load it jumps
// straight to the highest OPP; otherwise it picks the lowest frequency
// whose capacity covers the observed load (freq_next = load × fmax,
// CPUFREQ_RELATION_L).
type Ondemand struct {
	cfg      OndemandConfig
	core     *cpu.Core
	sampler  *cpu.UtilSampler
	ticker   *sim.Ticker
	downSkip int
	attached bool
}

// NewOndemand returns an ondemand governor with the given tunables.
func NewOndemand(cfg OndemandConfig) (*Ondemand, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Ondemand{cfg: cfg}, nil
}

// Name implements Governor.
func (*Ondemand) Name() string { return "ondemand" }

// Attach implements Governor.
func (g *Ondemand) Attach(eng *sim.Engine, core *cpu.Core) error {
	if g.attached {
		return errReattach(g.Name())
	}
	g.attached = true
	g.core = core
	g.sampler = cpu.NewUtilSampler(core)
	g.ticker = sim.NewTicker(eng, g.cfg.SamplingRate, g.sample)
	return nil
}

// Detach implements Governor.
func (g *Ondemand) Detach() {
	if g.ticker != nil {
		g.ticker.Stop()
	}
}

func (g *Ondemand) sample(now sim.Time) {
	util := g.sampler.Sample(now)
	model := g.core.Model()
	bias := 1 - g.cfg.PowersaveBias
	if util >= g.cfg.UpThreshold {
		g.core.SetFreq(model.Fmax() * bias)
		g.downSkip = g.cfg.SamplingDownFactor
		return
	}
	if g.core.OPP() >= model.IdxForFreq(model.Fmax()*bias) && g.downSkip > 0 {
		g.downSkip--
		return
	}
	g.core.SetFreq(util * model.Fmax() * bias)
}
