// Package governor implements the cpufreq governor framework and faithful
// re-implementations of the stock Linux governors used as baselines in the
// paper's evaluation: performance, powersave, userspace, ondemand,
// conservative, interactive, and schedutil.
//
// Governors observe the simulated core exactly as kernel governors observe
// hardware: a periodic sampling timer, windowed utilization, and the
// current operating point. They steer the core with SetOPP/SetFreq.
package governor

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
)

// Governor controls a core's frequency for the duration of a run.
// Implementations are single-attach: create a fresh instance per
// simulation.
type Governor interface {
	// Name returns the cpufreq-style governor name.
	Name() string
	// Attach begins controlling the core. It must be called at most once.
	Attach(eng *sim.Engine, core *cpu.Core) error
	// Detach stops the governor's timers. Safe to call more than once.
	Detach()
}

// errReattach is returned when Attach is called twice.
func errReattach(name string) error {
	return fmt.Errorf("governor %s: already attached", name)
}

// Performance pins the core at the highest OPP — the kernel `performance`
// governor and the paper's QoE-reference baseline.
type Performance struct {
	attached bool
}

// NewPerformance returns the performance governor.
func NewPerformance() *Performance { return &Performance{} }

// Name implements Governor.
func (*Performance) Name() string { return "performance" }

// Attach implements Governor.
func (g *Performance) Attach(_ *sim.Engine, core *cpu.Core) error {
	if g.attached {
		return errReattach(g.Name())
	}
	g.attached = true
	core.SetOPP(core.Model().MaxIdx())
	return nil
}

// Detach implements Governor.
func (*Performance) Detach() {}

// Powersave pins the core at the lowest OPP — the kernel `powersave`
// governor and the paper's energy lower bound (which drops frames on
// demanding content).
type Powersave struct {
	attached bool
}

// NewPowersave returns the powersave governor.
func NewPowersave() *Powersave { return &Powersave{} }

// Name implements Governor.
func (*Powersave) Name() string { return "powersave" }

// Attach implements Governor.
func (g *Powersave) Attach(_ *sim.Engine, core *cpu.Core) error {
	if g.attached {
		return errReattach(g.Name())
	}
	g.attached = true
	core.SetOPP(0)
	return nil
}

// Detach implements Governor.
func (*Powersave) Detach() {}

// Userspace pins the core at a caller-chosen OPP index, like writing to
// scaling_setspeed.
type Userspace struct {
	idx      int
	attached bool
}

// NewUserspace returns a userspace governor pinned at OPP index idx.
func NewUserspace(idx int) *Userspace { return &Userspace{idx: idx} }

// Name implements Governor.
func (*Userspace) Name() string { return "userspace" }

// Attach implements Governor.
func (g *Userspace) Attach(_ *sim.Engine, core *cpu.Core) error {
	if g.attached {
		return errReattach(g.Name())
	}
	g.attached = true
	core.SetOPP(g.idx)
	return nil
}

// Detach implements Governor.
func (*Userspace) Detach() {}
