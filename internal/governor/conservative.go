package governor

import (
	"fmt"
	"math"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
)

// ConservativeConfig mirrors the tunables of the kernel conservative
// governor.
type ConservativeConfig struct {
	// SamplingRate is the utilization sampling period.
	SamplingRate sim.Time
	// UpThreshold raises the frequency when load exceeds it (default 0.80).
	UpThreshold float64
	// DownThreshold lowers the frequency when load falls below it
	// (default 0.20).
	DownThreshold float64
	// FreqStep is the step size as a fraction of fmax per decision
	// (kernel default 5%).
	FreqStep float64
}

// DefaultConservativeConfig returns the kernel defaults on a 20 ms period.
func DefaultConservativeConfig() ConservativeConfig {
	return ConservativeConfig{
		SamplingRate:  20 * sim.Millisecond,
		UpThreshold:   0.80,
		DownThreshold: 0.20,
		FreqStep:      0.05,
	}
}

// Validate checks tunable ranges.
func (c ConservativeConfig) Validate() error {
	if c.SamplingRate <= 0 {
		return fmt.Errorf("conservative: sampling rate %v not positive", c.SamplingRate)
	}
	if c.UpThreshold <= 0 || c.UpThreshold > 1 {
		return fmt.Errorf("conservative: up threshold %v outside (0, 1]", c.UpThreshold)
	}
	if c.DownThreshold < 0 || c.DownThreshold >= c.UpThreshold {
		return fmt.Errorf("conservative: down threshold %v must be in [0, up)", c.DownThreshold)
	}
	if c.FreqStep <= 0 || c.FreqStep > 1 {
		return fmt.Errorf("conservative: freq step %v outside (0, 1]", c.FreqStep)
	}
	return nil
}

// Conservative is the kernel conservative governor: it walks the frequency
// up or down in fixed steps instead of jumping, trading responsiveness for
// smoothness.
type Conservative struct {
	cfg      ConservativeConfig
	core     *cpu.Core
	sampler  *cpu.UtilSampler
	ticker   *sim.Ticker
	attached bool
}

// NewConservative returns a conservative governor with the given tunables.
func NewConservative(cfg ConservativeConfig) (*Conservative, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Conservative{cfg: cfg}, nil
}

// Name implements Governor.
func (*Conservative) Name() string { return "conservative" }

// Attach implements Governor.
func (g *Conservative) Attach(eng *sim.Engine, core *cpu.Core) error {
	if g.attached {
		return errReattach(g.Name())
	}
	g.attached = true
	g.core = core
	g.sampler = cpu.NewUtilSampler(core)
	g.ticker = sim.NewTicker(eng, g.cfg.SamplingRate, g.sample)
	return nil
}

// Detach implements Governor.
func (g *Conservative) Detach() {
	if g.ticker != nil {
		g.ticker.Stop()
	}
}

func (g *Conservative) sample(now sim.Time) {
	util := g.sampler.Sample(now)
	model := g.core.Model()
	stepHz := g.cfg.FreqStep * model.Fmax()
	switch {
	case util > g.cfg.UpThreshold:
		g.core.SetFreq(g.core.FreqHz() + stepHz)
	case util < g.cfg.DownThreshold:
		// Step down to the highest OPP strictly below (current - step),
		// mirroring the kernel's RELATION_H on the way down.
		target := g.core.FreqHz() - stepHz
		g.core.SetOPP(highestIdxAtOrBelow(model, target))
	}
}

// highestIdxAtOrBelow returns the highest OPP with frequency ≤ hz, or 0.
func highestIdxAtOrBelow(m cpu.Model, hz float64) int {
	best := 0
	for i, o := range m.OPPs {
		if o.FreqHz <= hz+1e-6 {
			best = i
		}
	}
	// Guard against NaN arithmetic upstream.
	if math.IsNaN(hz) {
		return 0
	}
	return best
}
