package governor

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
)

// InteractiveConfig mirrors the tunables of the Android interactive
// governor, the stock choice on most devices of the paper's era.
type InteractiveConfig struct {
	// Timer is the sampling period (timer_rate, default 20 ms).
	Timer sim.Time
	// HispeedFreqFrac is hispeed_freq as a fraction of fmax (vendors
	// typically pick 60–80% of fmax).
	HispeedFreqFrac float64
	// GoHispeedLoad jumps to hispeed_freq when load exceeds it
	// (default 0.99 upstream, 0.85–0.90 as shipped).
	GoHispeedLoad float64
	// TargetLoad is the load the governor tries to hold by choosing
	// f_next = f_cur · load / target_load (default 0.90).
	TargetLoad float64
	// MinSampleTime is how long a raised frequency is held before it may
	// drop (default 80 ms) — the source of interactive's high residency.
	MinSampleTime sim.Time
	// AboveHispeedDelay is the wait before raising beyond hispeed_freq
	// (default 20 ms).
	AboveHispeedDelay sim.Time
}

// DefaultInteractiveConfig returns shipped-device defaults.
func DefaultInteractiveConfig() InteractiveConfig {
	return InteractiveConfig{
		Timer:             20 * sim.Millisecond,
		HispeedFreqFrac:   0.70,
		GoHispeedLoad:     0.85,
		TargetLoad:        0.90,
		MinSampleTime:     80 * sim.Millisecond,
		AboveHispeedDelay: 20 * sim.Millisecond,
	}
}

// Validate checks tunable ranges.
func (c InteractiveConfig) Validate() error {
	if c.Timer <= 0 {
		return fmt.Errorf("interactive: timer %v not positive", c.Timer)
	}
	if c.HispeedFreqFrac <= 0 || c.HispeedFreqFrac > 1 {
		return fmt.Errorf("interactive: hispeed fraction %v outside (0, 1]", c.HispeedFreqFrac)
	}
	if c.GoHispeedLoad <= 0 || c.GoHispeedLoad > 1 {
		return fmt.Errorf("interactive: go_hispeed_load %v outside (0, 1]", c.GoHispeedLoad)
	}
	if c.TargetLoad <= 0 || c.TargetLoad > 1 {
		return fmt.Errorf("interactive: target load %v outside (0, 1]", c.TargetLoad)
	}
	if c.MinSampleTime < 0 || c.AboveHispeedDelay < 0 {
		return fmt.Errorf("interactive: negative hold times")
	}
	return nil
}

// Interactive is the Android interactive governor: aggressive ramp-up to a
// hispeed frequency on load bursts, a target-load proportional controller
// otherwise, and a minimum hold time before any down-step.
type Interactive struct {
	cfg     InteractiveConfig
	core    *cpu.Core
	sampler *cpu.UtilSampler
	ticker  *sim.Ticker

	raisedAt     sim.Time // when frequency was last raised
	hispeedSince sim.Time // when we first sat at/above hispeed with high load
	attached     bool
}

// NewInteractive returns an interactive governor with the given tunables.
func NewInteractive(cfg InteractiveConfig) (*Interactive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Interactive{cfg: cfg}, nil
}

// Name implements Governor.
func (*Interactive) Name() string { return "interactive" }

// Attach implements Governor.
func (g *Interactive) Attach(eng *sim.Engine, core *cpu.Core) error {
	if g.attached {
		return errReattach(g.Name())
	}
	g.attached = true
	g.core = core
	g.sampler = cpu.NewUtilSampler(core)
	g.hispeedSince = -1
	g.ticker = sim.NewTicker(eng, g.cfg.Timer, g.sample)
	return nil
}

// Detach implements Governor.
func (g *Interactive) Detach() {
	if g.ticker != nil {
		g.ticker.Stop()
	}
}

func (g *Interactive) sample(now sim.Time) {
	util := g.sampler.Sample(now)
	model := g.core.Model()
	hispeedHz := g.cfg.HispeedFreqFrac * model.Fmax()
	cur := g.core.FreqHz()

	var targetHz float64
	if util >= g.cfg.GoHispeedLoad {
		if cur < hispeedHz {
			// Burst: jump to hispeed immediately.
			targetHz = hispeedHz
			g.hispeedSince = now
		} else {
			// Already at/above hispeed: raise further only after
			// above_hispeed_delay of sustained load.
			if g.hispeedSince < 0 {
				g.hispeedSince = now
			}
			if now-g.hispeedSince >= g.cfg.AboveHispeedDelay {
				targetHz = cur * util / g.cfg.TargetLoad
			} else {
				targetHz = cur
			}
		}
	} else {
		g.hispeedSince = -1
		targetHz = cur * util / g.cfg.TargetLoad
	}

	if targetHz > cur {
		g.core.SetFreq(targetHz)
		g.raisedAt = now
		return
	}
	// Down-scale only after min_sample_time at the raised frequency.
	if now-g.raisedAt < g.cfg.MinSampleTime {
		return
	}
	g.core.SetOPP(highestIdxAtOrBelow(model, maxf(targetHz, model.Fmin())))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
