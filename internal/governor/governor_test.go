package governor

import (
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
)

// rig is a core plus a synthetic periodic load for driving governors.
type rig struct {
	eng  *sim.Engine
	core *cpu.Core
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	core, err := cpu.NewCore(eng, cpu.DeviceFlagship())
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, core: core}
}

// periodicLoad submits a job of `cycles` every `period` for `n` periods,
// producing a duty cycle that depends on the core's frequency.
func (r *rig) periodicLoad(period sim.Time, cycles float64, n int) {
	var step func(i int)
	step = func(i int) {
		if i >= n {
			r.eng.Stop()
			return
		}
		if err := r.core.Submit(&cpu.Job{Cycles: cycles, Tag: "load"}); err != nil {
			panic(err)
		}
		r.eng.Schedule(period, func() { step(i + 1) })
	}
	step(0)
}

func TestPerformancePinsMax(t *testing.T) {
	r := newRig(t)
	g := NewPerformance()
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	if r.core.OPP() != r.core.Model().MaxIdx() {
		t.Fatalf("OPP = %d, want max", r.core.OPP())
	}
	r.periodicLoad(10*sim.Millisecond, 1e6, 100)
	r.eng.Run()
	if r.core.OPP() != r.core.Model().MaxIdx() {
		t.Fatalf("performance moved off max: %d", r.core.OPP())
	}
}

func TestPowersavePinsMin(t *testing.T) {
	r := newRig(t)
	r.core.SetOPP(5)
	g := NewPowersave()
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	r.periodicLoad(10*sim.Millisecond, 30e6, 100) // heavy load
	r.eng.Run()
	if r.core.OPP() != 0 {
		t.Fatalf("powersave moved off min: %d", r.core.OPP())
	}
}

func TestUserspacePinsChosenIdx(t *testing.T) {
	r := newRig(t)
	g := NewUserspace(4)
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	if r.core.OPP() != 4 {
		t.Fatalf("OPP = %d, want 4", r.core.OPP())
	}
}

func TestDoubleAttachRejected(t *testing.T) {
	r := newRig(t)
	govs := []Governor{NewPerformance(), NewPowersave(), NewUserspace(1)}
	od, err := NewOndemand(DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	govs = append(govs, od)
	for _, g := range govs {
		if err := g.Attach(r.eng, r.core); err != nil {
			t.Fatalf("%s first attach: %v", g.Name(), err)
		}
		if err := g.Attach(r.eng, r.core); err == nil {
			t.Fatalf("%s: second attach should fail", g.Name())
		}
		g.Detach()
	}
}

func TestOndemandJumpsToMaxOnHighLoad(t *testing.T) {
	r := newRig(t)
	g, err := NewOndemand(DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	// Saturating load at fmin: each 20 ms window is 100% busy.
	r.periodicLoad(20*sim.Millisecond, 50e6, 50)
	r.eng.Run()
	res := r.core.FreqResidency()
	if res[r.core.Model().MaxIdx()] == 0 {
		t.Fatalf("ondemand never reached fmax under saturating load; residency %v", res)
	}
}

func TestOndemandDropsOnIdle(t *testing.T) {
	r := newRig(t)
	g, err := NewOndemand(DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	r.core.SetOPP(r.core.Model().MaxIdx())
	// No load at all: after the down-factor holds, it should fall to fmin.
	r.eng.Schedule(sim.Second, func() { r.eng.Stop() })
	r.eng.Run()
	if r.core.OPP() != 0 {
		t.Fatalf("ondemand idle OPP = %d, want 0", r.core.OPP())
	}
}

func TestOndemandProportionalBand(t *testing.T) {
	r := newRig(t)
	g, err := NewOndemand(DefaultOndemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	// ~40% load at fmax: 18 M cycles every 20 ms window at 2.265 GHz.
	// Ondemand oscillates between its proportional band and fmax (it
	// saturates at the proportional frequency, trips up_threshold, and
	// jumps back up) — the exact over-provisioning the paper targets.
	r.core.SetOPP(r.core.Model().MaxIdx())
	r.periodicLoad(20*sim.Millisecond, 18e6, 200)
	r.eng.Run()
	res := r.core.FreqResidency()
	var total, atMax, mid sim.Time
	for idx, d := range res {
		total += d
		if idx == r.core.Model().MaxIdx() {
			atMax += d
		} else if idx > 0 {
			mid += d
		}
	}
	if atMax >= total {
		t.Fatalf("ondemand pinned at fmax the whole run (residency %v)", res)
	}
	if mid == 0 {
		t.Fatalf("ondemand never used the proportional band (residency %v)", res)
	}
}

func TestConservativeStepsGradually(t *testing.T) {
	r := newRig(t)
	g, err := NewConservative(DefaultConservativeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	maxSeen := 0
	r.core.OnOPPChange(func(_ sim.Time, idx int) {
		if idx > maxSeen {
			maxSeen = idx
		}
	})
	// Saturating load for only 3 sampling periods: conservative must not
	// reach fmax that fast (5% steps → ~1 OPP per period).
	r.periodicLoad(20*sim.Millisecond, 50e6, 3)
	r.eng.Run()
	if maxSeen >= r.core.Model().MaxIdx() {
		t.Fatalf("conservative jumped to max within 3 periods (reached %d)", maxSeen)
	}
	if maxSeen == 0 {
		t.Fatal("conservative never raised the frequency")
	}
}

func TestConservativeStepsDownWhenIdle(t *testing.T) {
	r := newRig(t)
	g, err := NewConservative(DefaultConservativeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	r.core.SetOPP(6)
	r.eng.Schedule(2*sim.Second, func() { r.eng.Stop() })
	r.eng.Run()
	if r.core.OPP() != 0 {
		t.Fatalf("conservative idle OPP = %d, want 0", r.core.OPP())
	}
}

func TestInteractiveHispeedJump(t *testing.T) {
	r := newRig(t)
	cfg := DefaultInteractiveConfig()
	g, err := NewInteractive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	hispeed := cfg.HispeedFreqFrac * r.core.Model().Fmax()
	reached := false
	r.core.OnOPPChange(func(_ sim.Time, idx int) {
		if r.core.Model().OPPs[idx].FreqHz >= hispeed {
			reached = true
		}
	})
	r.periodicLoad(20*sim.Millisecond, 50e6, 10)
	r.eng.Run()
	if !reached {
		t.Fatal("interactive never jumped to hispeed under bursty saturation")
	}
}

func TestInteractiveHoldsMinSampleTime(t *testing.T) {
	r := newRig(t)
	cfg := DefaultInteractiveConfig()
	cfg.MinSampleTime = 200 * sim.Millisecond
	g, err := NewInteractive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	// One burst, then silence. Frequency must stay raised for at least
	// MinSampleTime after the raise.
	if err := r.core.Submit(&cpu.Job{Cycles: 60e6, Tag: "burst"}); err != nil {
		t.Fatal(err)
	}
	var raisedAt, droppedAt sim.Time
	r.core.OnOPPChange(func(now sim.Time, idx int) {
		if idx > 0 && raisedAt == 0 {
			raisedAt = now
		}
		if idx == 0 && raisedAt > 0 && droppedAt == 0 {
			droppedAt = now
		}
	})
	r.eng.Schedule(2*sim.Second, func() { r.eng.Stop() })
	r.eng.Run()
	if raisedAt == 0 {
		t.Fatal("interactive never raised")
	}
	if droppedAt == 0 {
		t.Fatal("interactive never dropped back")
	}
	if droppedAt-raisedAt < cfg.MinSampleTime {
		t.Fatalf("dropped after %v, want ≥ %v hold", droppedAt-raisedAt, cfg.MinSampleTime)
	}
}

func TestSchedutilTracksUtilWithHeadroom(t *testing.T) {
	r := newRig(t)
	g, err := NewSchedutil(DefaultSchedutilConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	// 50% duty at fmax → target ≈ 1.25·0.5·fmax ≈ 0.625 fmax.
	r.core.SetOPP(r.core.Model().MaxIdx())
	r.periodicLoad(10*sim.Millisecond, 11.3e6, 300) // ≈5 ms at 2.265 GHz
	r.eng.Run()
	f := r.core.FreqHz() / r.core.Model().Fmax()
	if f < 0.4 || f > 0.9 {
		t.Fatalf("schedutil settled at %.2f·fmax, want ≈0.6", f)
	}
}

func TestRegistryNewCoversBaselines(t *testing.T) {
	for _, name := range BaselineNames() {
		g, err := New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("New(%s).Name() = %s", name, g.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("want error for unknown governor")
	}
}

func TestBaselinesReturnsFreshInstances(t *testing.T) {
	a, err := Baselines()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(BaselineNames()) {
		t.Fatalf("got %d baselines", len(a))
	}
	for i := range a {
		if a[i] == b[i] {
			t.Fatalf("baseline %d shared between calls", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewOndemand(OndemandConfig{}); err == nil {
		t.Error("ondemand zero config should fail")
	}
	if _, err := NewConservative(ConservativeConfig{SamplingRate: sim.Second, UpThreshold: 0.5, DownThreshold: 0.6, FreqStep: 0.05}); err == nil {
		t.Error("conservative down ≥ up should fail")
	}
	if _, err := NewInteractive(InteractiveConfig{Timer: sim.Second, HispeedFreqFrac: 2, GoHispeedLoad: 0.9, TargetLoad: 0.9}); err == nil {
		t.Error("interactive hispeed > 1 should fail")
	}
	if _, err := NewSchedutil(SchedutilConfig{Sampling: 0}); err == nil {
		t.Error("schedutil zero sampling should fail")
	}
}

func TestOndemandPowersaveBias(t *testing.T) {
	cfg := DefaultOndemandConfig()
	cfg.PowersaveBias = 0.3
	r := newRig(t)
	g, err := NewOndemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(r.eng, r.core); err != nil {
		t.Fatal(err)
	}
	defer g.Detach()
	// Saturating load: with a 30% bias the governor must cap below fmax.
	maxSeen := 0.0
	r.core.OnOPPChange(func(_ sim.Time, idx int) {
		if f := r.core.Model().OPPs[idx].FreqHz; f > maxSeen {
			maxSeen = f
		}
	})
	r.periodicLoad(20*sim.Millisecond, 50e6, 100)
	r.eng.Run()
	limit := r.core.Model().Fmax() * 0.75 // first OPP ≥ 0.7·fmax
	if maxSeen > limit {
		t.Fatalf("biased ondemand reached %.0f MHz, cap ≈ %.0f MHz", maxSeen/1e6, limit/1e6)
	}
	if maxSeen == 0 {
		t.Fatal("governor never raised the frequency")
	}
}

func TestOndemandPowersaveBiasValidation(t *testing.T) {
	cfg := DefaultOndemandConfig()
	cfg.PowersaveBias = 1
	if _, err := NewOndemand(cfg); err == nil {
		t.Fatal("want error for bias 1")
	}
	cfg.PowersaveBias = -0.1
	if _, err := NewOndemand(cfg); err == nil {
		t.Fatal("want error for negative bias")
	}
}
