package governor

import "fmt"

// New returns a fresh default-configured governor by cpufreq name. The
// userspace governor is not constructible here because it needs a pinned
// OPP index; use NewUserspace directly.
func New(name string) (Governor, error) {
	switch name {
	case "performance":
		return NewPerformance(), nil
	case "powersave":
		return NewPowersave(), nil
	case "ondemand":
		return NewOndemand(DefaultOndemandConfig())
	case "conservative":
		return NewConservative(DefaultConservativeConfig())
	case "interactive":
		return NewInteractive(DefaultInteractiveConfig())
	case "schedutil":
		return NewSchedutil(DefaultSchedutilConfig())
	default:
		return nil, fmt.Errorf("governor: unknown name %q", name)
	}
}

// BaselineNames lists the stock governors compared against in the
// evaluation, in report order.
func BaselineNames() []string {
	return []string{"performance", "powersave", "ondemand", "conservative", "interactive", "schedutil"}
}

// Baselines returns fresh default instances of every baseline governor.
func Baselines() ([]Governor, error) {
	names := BaselineNames()
	out := make([]Governor, 0, len(names))
	for _, n := range names {
		g, err := New(n)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}
