// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the CLI tools so campaign hot spots can be inspected with `go tool
// pprof` without rebuilding anything.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for a
// heap profile to be written to memPath (if non-empty) when the returned
// stop function runs. The stop function is safe to call exactly once and
// reports any profile-write failure on stderr rather than masking the
// command's own exit path.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: close cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			runtime.GC() // settle live objects so the heap profile is meaningful
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: write heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: close heap profile:", err)
			}
		}
	}, nil
}
