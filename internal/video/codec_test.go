package video

import (
	"testing"

	"videodvfs/internal/sim"
)

func TestCodecCatalog(t *testing.T) {
	cs := Codecs()
	if len(cs) != 2 {
		t.Fatalf("codecs = %d, want 2", len(cs))
	}
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			t.Errorf("codec %q invalid: %v", c.Name, err)
		}
		back, err := CodecByName(c.Name)
		if err != nil || back.Name != c.Name {
			t.Errorf("CodecByName(%s): %v %v", c.Name, back.Name, err)
		}
	}
	if _, err := CodecByName("av1"); err == nil {
		t.Fatal("want error for unknown codec")
	}
}

func TestHEVCCoefficientsShape(t *testing.T) {
	h264, hevc := DefaultCodec(), HEVCCodec()
	if hevc.RateFactor >= h264.RateFactor {
		t.Fatal("HEVC must need fewer bits for equal quality")
	}
	if hevc.PixelCycles <= h264.PixelCycles || hevc.BitCycles <= h264.BitCycles {
		t.Fatal("HEVC decode must cost more per pixel and per bit")
	}
}

func TestWithCodecScalesBitrate(t *testing.T) {
	spec := DefaultSpec(TitleNews, R720p)
	hevc := spec.WithCodec(HEVCCodec())
	if hevc.Codec.Name != "hevc" {
		t.Fatalf("codec not applied: %s", hevc.Codec.Name)
	}
	want := spec.BitrateBps * HEVCCodec().RateFactor
	if hevc.BitrateBps != want {
		t.Fatalf("bitrate %v, want %v", hevc.BitrateBps, want)
	}
	// The original spec is unchanged (value semantics).
	if spec.Codec.Name != "h264" {
		t.Fatal("WithCodec mutated the receiver")
	}
}

func TestHEVCStreamTradesBitsForCycles(t *testing.T) {
	base := DefaultSpec(TitleNews, R720p)
	h264, err := Generate(base, 20*sim.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	hevc, err := Generate(base.WithCodec(HEVCCodec()), 20*sim.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hevc.TotalBits() >= h264.TotalBits()*0.75 {
		t.Fatalf("HEVC bits %.3g should be ≈60%% of H.264's %.3g", hevc.TotalBits(), h264.TotalBits())
	}
	if hevc.MeanCycles() <= h264.MeanCycles() {
		t.Fatalf("HEVC cycles %.3g should exceed H.264's %.3g", hevc.MeanCycles(), h264.MeanCycles())
	}
}

func TestCodecValidateRejectsBadRateFactor(t *testing.T) {
	c := DefaultCodec()
	c.RateFactor = 0
	if err := c.Validate(); err == nil {
		t.Fatal("want error for zero rate factor")
	}
	c.RateFactor = 2
	if err := c.Validate(); err == nil {
		t.Fatal("want error for rate factor 2")
	}
}

func TestStreamDurationEmpty(t *testing.T) {
	s := &Stream{Spec: DefaultSpec(TitleNews, R360p)}
	if s.Duration() != 0 || s.MeanCycles() != 0 {
		t.Fatal("empty stream should report zeros")
	}
}
