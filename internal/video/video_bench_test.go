package video

import (
	"testing"

	"videodvfs/internal/sim"
)

// BenchmarkGenerate measures synthesizing 60 s of 720p workload.
func BenchmarkGenerate(b *testing.B) {
	spec := DefaultSpec(TitleSports, R720p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec, 60*sim.Second, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentize measures splitting a 10-minute stream.
func BenchmarkSegmentize(b *testing.B) {
	s, err := Generate(DefaultSpec(TitleNews, R720p), 10*sim.Minute, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Segmentize(s, 2*sim.Second); err != nil {
			b.Fatal(err)
		}
	}
}
