package video

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"videodvfs/internal/sim"
)

// WriteTrace emits the stream's frames as CSV with a header row:
// index,type,pts_s,bits,cycles. The spec itself is not serialized; traces
// are raw workloads.
func WriteTrace(w io.Writer, s *Stream) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "type", "pts_s", "bits", "cycles"}); err != nil {
		return fmt.Errorf("video: write trace header: %w", err)
	}
	for _, f := range s.Frames {
		rec := []string{
			strconv.Itoa(f.Index),
			f.Type.String(),
			strconv.FormatFloat(f.PTS.Seconds(), 'g', 17, 64),
			strconv.FormatFloat(f.Bits, 'g', 17, 64),
			strconv.FormatFloat(f.Cycles, 'g', 17, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("video: write trace row %d: %w", f.Index, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV frame trace produced by WriteTrace. The returned
// stream carries the given spec (traces do not embed one); fps must match
// the trace's frame spacing for deadlines to be meaningful.
func ReadTrace(r io.Reader, spec Spec) (*Stream, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("video: read trace header: %w", err)
	}
	if len(header) != 5 || header[0] != "index" {
		return nil, fmt.Errorf("video: unexpected trace header %v", header)
	}
	var frames []Frame
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("video: read trace row %d: %w", row, err)
		}
		idx, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("video: trace row %d index: %w", row, err)
		}
		ft, err := ParseFrameType(rec[1])
		if err != nil {
			return nil, fmt.Errorf("video: trace row %d: %w", row, err)
		}
		pts, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("video: trace row %d pts: %w", row, err)
		}
		bits, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("video: trace row %d bits: %w", row, err)
		}
		cycles, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("video: trace row %d cycles: %w", row, err)
		}
		frames = append(frames, Frame{Index: idx, Type: ft, PTS: sim.Time(pts), Bits: bits, Cycles: cycles})
	}
	return &Stream{Spec: spec, Frames: frames}, nil
}
