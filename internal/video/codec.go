package video

import "fmt"

// Codec holds the decode-complexity coefficients: per-frame demand is
//
//	cycles = (PixelCycles·pixels + BitCycles·bits) · typeMult · scene · jitter
//
// The two-term form captures that decode cost has a resolution-proportional
// part (pixel reconstruction, deblocking) and a bitrate-proportional part
// (entropy decoding), as decoder profiling consistently shows.
type Codec struct {
	// Name identifies the codec in reports ("h264", "hevc").
	Name string
	// RateFactor scales the bitrate needed for equal quality relative to
	// the H.264 ladder (HEVC ≈ 0.6).
	RateFactor float64
	// PixelCycles is the cycles spent per pixel per frame.
	PixelCycles float64
	// BitCycles is the cycles spent per coded bit.
	BitCycles float64
	// TypeCycleMult scales cycles by frame type (I frames touch more
	// intra prediction, B frames skip more macroblocks).
	TypeCycleMult map[FrameType]float64
	// TypeBitWeight sets the relative coded size of frame types within a
	// GOP's bit budget (I frames are several times larger than P).
	TypeBitWeight map[FrameType]float64
	// JitterCV is the per-frame lognormal coefficient of variation.
	JitterCV float64
}

// DefaultCodec returns coefficients calibrated so that mean per-frame
// demand lands near published software H.264 figures: ≈4 M cycles (360p),
// ≈7.5 M (480p), ≈18 M (720p), ≈38 M (1080p) at the DefaultBitrate ladder.
func DefaultCodec() Codec {
	return Codec{
		Name:        "h264",
		RateFactor:  1.0,
		PixelCycles: 12.0,
		BitCycles:   50.0,
		TypeCycleMult: map[FrameType]float64{
			FrameI: 1.20,
			FrameP: 1.00,
			FrameB: 0.85,
		},
		TypeBitWeight: map[FrameType]float64{
			FrameI: 4.0,
			FrameP: 1.5,
			FrameB: 0.7,
		},
		JitterCV: 0.25,
	}
}

// HEVCCodec returns H.265/HEVC coefficients: ≈40% lower bitrate for equal
// quality, paid for with heavier per-pixel reconstruction (larger CTUs,
// SAO) and costlier entropy decoding per bit — software HEVC decode runs
// ≈1.4–1.6× the cycles of H.264 at matched quality.
func HEVCCodec() Codec {
	c := DefaultCodec()
	c.Name = "hevc"
	c.RateFactor = 0.60
	c.PixelCycles = 16.0
	c.BitCycles = 85.0
	return c
}

// Codecs returns the built-in codec models.
func Codecs() []Codec { return []Codec{DefaultCodec(), HEVCCodec()} }

// CodecByName returns a built-in codec model.
func CodecByName(name string) (Codec, error) {
	for _, c := range Codecs() {
		if c.Name == name {
			return c, nil
		}
	}
	return Codec{}, fmt.Errorf("video: unknown codec %q", name)
}

// Validate checks coefficient sanity.
func (c Codec) Validate() error {
	if c.RateFactor <= 0 || c.RateFactor > 1.5 {
		return fmt.Errorf("codec: rate factor %v outside (0, 1.5]", c.RateFactor)
	}
	if c.PixelCycles <= 0 || c.BitCycles < 0 {
		return fmt.Errorf("codec: cycle coefficients (pixel %v, bit %v) invalid", c.PixelCycles, c.BitCycles)
	}
	for _, t := range []FrameType{FrameI, FrameP, FrameB} {
		if c.TypeCycleMult[t] <= 0 {
			return fmt.Errorf("codec: missing cycle multiplier for %s frames", t)
		}
		if c.TypeBitWeight[t] <= 0 {
			return fmt.Errorf("codec: missing bit weight for %s frames", t)
		}
	}
	if c.JitterCV < 0 {
		return fmt.Errorf("codec: negative jitter CV %v", c.JitterCV)
	}
	return nil
}

// MeanFrameCycles returns the expected demand of a frame of the given type
// in a stream with the given spec, before scene drift and jitter. Useful
// for sizing experiments analytically.
func (c Codec) MeanFrameCycles(spec Spec, t FrameType) float64 {
	bits := spec.meanBitsForType(c, t)
	return (c.PixelCycles*spec.Res.Pixels() + c.BitCycles*bits) * c.TypeCycleMult[t]
}
