package video

import (
	"fmt"

	"videodvfs/internal/sim"
)

// Segment is a DASH-style media segment: a contiguous run of frames that
// is downloaded as a unit.
type Segment struct {
	// Index is the segment position in the stream.
	Index int
	// Start is the presentation time of the first frame.
	Start sim.Time
	// Duration is the presentation span of the segment.
	Duration sim.Time
	// Bits is the total coded size.
	Bits float64
	// Frames are the segment's frames in presentation order.
	Frames []Frame
}

// Segmentize splits a stream into fixed-duration segments (the last one
// may be shorter). Segment boundaries snap to frame boundaries.
func Segmentize(s *Stream, segDur sim.Time) ([]Segment, error) {
	if segDur <= 0 {
		return nil, fmt.Errorf("video: segment duration %v not positive", segDur)
	}
	if len(s.Frames) == 0 {
		return nil, fmt.Errorf("video: cannot segmentize empty stream")
	}
	framesPerSeg := int(segDur.Seconds() * s.Spec.FPS)
	if framesPerSeg < 1 {
		framesPerSeg = 1
	}
	var segs []Segment
	for off := 0; off < len(s.Frames); off += framesPerSeg {
		end := off + framesPerSeg
		if end > len(s.Frames) {
			end = len(s.Frames)
		}
		chunk := s.Frames[off:end]
		var bits float64
		for _, f := range chunk {
			bits += f.Bits
		}
		segs = append(segs, Segment{
			Index:    len(segs),
			Start:    chunk[0].PTS,
			Duration: sim.Time(float64(len(chunk)) / s.Spec.FPS),
			Bits:     bits,
			Frames:   chunk,
		})
	}
	return segs, nil
}
