// Package video models the decode workload of a streamed video: frames
// with presentation timestamps, GOP structure (I/P/B), per-frame bit and
// decode-cycle demands, bitrate ladders for ABR, and CSV trace I/O.
//
// The generator is synthetic but calibrated: per-frame decode demands match
// published software H.264 decode profiling (≈4 M cycles for 360p frames up
// to ≈38 M cycles for 1080p frames at typical streaming bitrates), with
// GOP-structured bit allocation, scene-level complexity drift, and
// lognormal per-frame jitter. The DVFS policy consumes only demands and
// deadlines, so these statistics are what matters.
package video

import (
	"fmt"

	"videodvfs/internal/sim"
)

// FrameType is the coding type of a frame.
type FrameType uint8

// Frame coding types.
const (
	// FrameI is an intra-coded frame (large, starts a GOP).
	FrameI FrameType = iota + 1
	// FrameP is a predicted frame.
	FrameP
	// FrameB is a bi-predicted frame (smallest, cheapest).
	FrameB
)

// String returns the conventional single-letter name.
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return "?"
	}
}

// ParseFrameType converts a single-letter name back to a FrameType.
func ParseFrameType(s string) (FrameType, error) {
	switch s {
	case "I":
		return FrameI, nil
	case "P":
		return FrameP, nil
	case "B":
		return FrameB, nil
	default:
		return 0, fmt.Errorf("video: unknown frame type %q", s)
	}
}

// Frame is one coded picture.
type Frame struct {
	// Index is the position in presentation order.
	Index int
	// Type is the coding type.
	Type FrameType
	// PTS is the presentation timestamp relative to stream start.
	PTS sim.Time
	// Bits is the coded size.
	Bits float64
	// Cycles is the true decode demand in CPU cycles. Governors must not
	// read it directly (only the oracle does); the decoder reports it
	// after the fact, as measured decode time would be on a device.
	Cycles float64
}

// Resolution is a frame size preset.
type Resolution struct {
	// Name is the conventional label, e.g. "720p".
	Name string
	// Width and Height are in pixels.
	Width, Height int
}

// Pixels returns the pixel count per frame.
func (r Resolution) Pixels() float64 { return float64(r.Width) * float64(r.Height) }

// Standard streaming resolutions.
var (
	R360p  = Resolution{Name: "360p", Width: 640, Height: 360}
	R480p  = Resolution{Name: "480p", Width: 854, Height: 480}
	R720p  = Resolution{Name: "720p", Width: 1280, Height: 720}
	R1080p = Resolution{Name: "1080p", Width: 1920, Height: 1080}
)

// Resolutions returns the evaluation ladder from lowest to highest.
func Resolutions() []Resolution { return []Resolution{R360p, R480p, R720p, R1080p} }

// ResolutionByName returns a standard resolution by label.
func ResolutionByName(name string) (Resolution, error) {
	for _, r := range Resolutions() {
		if r.Name == name {
			return r, nil
		}
	}
	return Resolution{}, fmt.Errorf("video: unknown resolution %q", name)
}

// DefaultBitrate returns a typical streaming bitrate (bps) for a
// resolution, matching common DASH ladders.
func DefaultBitrate(r Resolution) float64 {
	switch r.Name {
	case "360p":
		return 0.8e6
	case "480p":
		return 1.5e6
	case "720p":
		return 4e6
	case "1080p":
		return 8e6
	default:
		// Scale by pixels relative to 720p.
		return 4e6 * r.Pixels() / R720p.Pixels()
	}
}

// Stream is a fully generated sequence of frames plus the spec that
// produced it.
type Stream struct {
	// Spec is the generation recipe.
	Spec Spec
	// Frames are in presentation order with monotonically increasing PTS.
	Frames []Frame
}

// Duration returns the presentation span of the stream.
func (s *Stream) Duration() sim.Time {
	if len(s.Frames) == 0 {
		return 0
	}
	return s.Frames[len(s.Frames)-1].PTS + sim.Time(1/s.Spec.FPS)
}

// TotalBits returns the coded size of the whole stream.
func (s *Stream) TotalBits() float64 {
	var sum float64
	for _, f := range s.Frames {
		sum += f.Bits
	}
	return sum
}

// MeanCycles returns the mean per-frame decode demand.
func (s *Stream) MeanCycles() float64 {
	if len(s.Frames) == 0 {
		return 0
	}
	var sum float64
	for _, f := range s.Frames {
		sum += f.Cycles
	}
	return sum / float64(len(s.Frames))
}

// SustainedHz returns the average cycle rate needed to decode in real
// time: mean cycles per frame × fps. A CPU pinned below this rate must
// eventually drop frames regardless of buffering.
func (s *Stream) SustainedHz() float64 { return s.MeanCycles() * s.Spec.FPS }

// CountByType returns the number of frames of each type.
func (s *Stream) CountByType() map[FrameType]int {
	out := make(map[FrameType]int, 3)
	for _, f := range s.Frames {
		out[f.Type]++
	}
	return out
}
