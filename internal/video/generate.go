package video

import (
	"fmt"
	"strings"

	"videodvfs/internal/sim"
)

// Title is a content profile: how demanding and how variable the material
// is. The multipliers modulate the codec model's baseline.
type Title struct {
	// Name identifies the profile in reports.
	Name string
	// Complexity scales both bits and cycles (motion/detail level).
	Complexity float64
	// SceneMeanDur is the mean scene length; scenes redraw the
	// complexity drift (exponential durations).
	SceneMeanDur sim.Time
	// SceneCV is the lognormal CV of per-scene complexity drift.
	SceneCV float64
}

// Built-in content profiles used across the evaluation.
var (
	// TitleNews is static, talking-head content.
	TitleNews = Title{Name: "news", Complexity: 0.85, SceneMeanDur: 8 * sim.Second, SceneCV: 0.15}
	// TitleSports is fast-motion content with frequent scene changes.
	// Complexity is calibrated so the hottest scenes stay decodable at
	// the flagship's fmax at 1080p30 (real encoders cap bitrate the same
	// way for target devices).
	TitleSports = Title{Name: "sports", Complexity: 1.10, SceneMeanDur: 3 * sim.Second, SceneCV: 0.22}
	// TitleAnimation is flat-shaded content with moderate variation.
	TitleAnimation = Title{Name: "animation", Complexity: 0.95, SceneMeanDur: 5 * sim.Second, SceneCV: 0.22}
)

// Titles returns all built-in content profiles.
func Titles() []Title { return []Title{TitleNews, TitleSports, TitleAnimation} }

// TitleByName returns a built-in title by name.
func TitleByName(name string) (Title, error) {
	for _, t := range Titles() {
		if t.Name == name {
			return t, nil
		}
	}
	return Title{}, fmt.Errorf("video: unknown title %q", name)
}

// Spec is the recipe for generating one stream rendition.
type Spec struct {
	// Title is the content profile.
	Title Title
	// Res is the frame size.
	Res Resolution
	// FPS is the frame rate.
	FPS float64
	// BitrateBps is the average coded rate.
	BitrateBps float64
	// GOP is the group-of-pictures pattern, e.g. "IBBPBBPBBPBB". It must
	// start with 'I' and contain only I/P/B.
	GOP string
	// Codec carries the complexity coefficients.
	Codec Codec
}

// DefaultSpec returns a 30 fps rendition of the given title and resolution
// at the default ladder bitrate with a 12-frame GOP.
func DefaultSpec(title Title, res Resolution) Spec {
	return Spec{
		Title:      title,
		Res:        res,
		FPS:        30,
		BitrateBps: DefaultBitrate(res),
		GOP:        "IBBPBBPBBPBB",
		Codec:      DefaultCodec(),
	}
}

// WithCodec returns the spec re-targeted at the given codec: the codec's
// coefficients replace the current ones and the bitrate is scaled by the
// codec's equal-quality rate factor (HEVC ladders run ≈60% of H.264's).
func (s Spec) WithCodec(c Codec) Spec {
	out := s
	out.Codec = c
	out.BitrateBps = s.BitrateBps * c.RateFactor
	return out
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.FPS <= 0 {
		return fmt.Errorf("spec: fps %v not positive", s.FPS)
	}
	if s.BitrateBps <= 0 {
		return fmt.Errorf("spec: bitrate %v not positive", s.BitrateBps)
	}
	if s.Res.Width <= 0 || s.Res.Height <= 0 {
		return fmt.Errorf("spec: resolution %dx%d invalid", s.Res.Width, s.Res.Height)
	}
	if len(s.GOP) == 0 || s.GOP[0] != 'I' {
		return fmt.Errorf("spec: GOP %q must start with I", s.GOP)
	}
	if strings.Trim(s.GOP, "IPB") != "" {
		return fmt.Errorf("spec: GOP %q contains letters outside IPB", s.GOP)
	}
	if s.Title.Complexity <= 0 {
		return fmt.Errorf("spec: title complexity %v not positive", s.Title.Complexity)
	}
	if s.Title.SceneMeanDur <= 0 {
		return fmt.Errorf("spec: scene duration %v not positive", s.Title.SceneMeanDur)
	}
	return s.Codec.Validate()
}

// gopTypes expands the GOP pattern into frame types.
func (s Spec) gopTypes() []FrameType {
	out := make([]FrameType, len(s.GOP))
	for i, ch := range s.GOP {
		switch ch {
		case 'I':
			out[i] = FrameI
		case 'P':
			out[i] = FrameP
		default:
			out[i] = FrameB
		}
	}
	return out
}

// meanBitsForType returns the expected coded size of a frame of type t so
// that the GOP's total matches the bitrate budget under the codec's type
// weights.
func (s Spec) meanBitsForType(c Codec, t FrameType) float64 {
	types := s.gopTypes()
	var weightSum float64
	for _, ft := range types {
		weightSum += c.TypeBitWeight[ft]
	}
	gopBits := s.BitrateBps * float64(len(types)) / s.FPS
	return gopBits * c.TypeBitWeight[t] / weightSum
}

// meanBitsTable precomputes meanBitsForType for every frame type, so the
// per-frame generation loop does not re-expand the GOP pattern. Entries
// are computed by the exact same expression as meanBitsForType, keeping
// generated streams bit-identical.
func (s Spec) meanBitsTable(c Codec) [FrameB + 1]float64 {
	var out [FrameB + 1]float64
	for t := FrameI; t <= FrameB; t++ {
		out[t] = s.meanBitsForType(c, t)
	}
	return out
}

// sceneTrack precomputes per-scene complexity multipliers so that aligned
// ladder renditions share identical scene structure.
type sceneTrack struct {
	ends  []sim.Time
	mults []float64
}

func newSceneTrack(title Title, dur sim.Time, rng *sim.RNG) sceneTrack {
	var tr sceneTrack
	var at sim.Time
	for at < dur {
		length := sim.Time(rng.Exp(title.SceneMeanDur.Seconds()))
		if length < 500*sim.Millisecond {
			length = 500 * sim.Millisecond
		}
		at += length
		tr.ends = append(tr.ends, at)
		// Cap scene drift: encoders rate-control away extremes, and the
		// target-device decode budget must stay feasible at fmax.
		mult := rng.LognormalMeanCV(1, title.SceneCV)
		if mult > 1.45 {
			mult = 1.45
		}
		tr.mults = append(tr.mults, mult)
	}
	return tr
}

func (tr sceneTrack) multAt(t sim.Time) float64 {
	for i, end := range tr.ends {
		if t < end {
			return tr.mults[i]
		}
	}
	if len(tr.mults) == 0 {
		return 1
	}
	return tr.mults[len(tr.mults)-1]
}

// Generate synthesizes a stream of the given duration. The same (spec,
// seed) pair always yields the same stream.
func Generate(spec Spec, dur sim.Time, seed int64) (*Stream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if dur <= 0 {
		return nil, fmt.Errorf("video: duration %v not positive", dur)
	}
	sceneRNG := sim.Stream(seed, "scenes/"+spec.Title.Name)
	frameRNG := sim.Stream(seed, fmt.Sprintf("frames/%s/%s/%.0f", spec.Title.Name, spec.Res.Name, spec.BitrateBps))
	scenes := newSceneTrack(spec.Title, dur, sceneRNG)

	n := int(dur.Seconds() * spec.FPS)
	types := spec.gopTypes()
	meanBits := spec.meanBitsTable(spec.Codec)
	frames := make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		t := types[i%len(types)]
		pts := sim.Time(float64(i) / spec.FPS)
		drift := spec.Title.Complexity * scenes.multAt(pts)
		bits := meanBits[t] * drift * frameRNG.LognormalMeanCV(1, spec.Codec.JitterCV)
		cycles := (spec.Codec.PixelCycles*spec.Res.Pixels() + spec.Codec.BitCycles*bits) *
			spec.Codec.TypeCycleMult[t] * drift * frameRNG.LognormalMeanCV(1, spec.Codec.JitterCV/2)
		frames = append(frames, Frame{Index: i, Type: t, PTS: pts, Bits: bits, Cycles: cycles})
	}
	return &Stream{Spec: spec, Frames: frames}, nil
}

// Rung is one rendition in a bitrate ladder.
type Rung struct {
	// Res is the rendition's resolution.
	Res Resolution
	// BitrateBps is the rendition's average rate.
	BitrateBps float64
}

// DefaultLadder returns the standard 4-rung DASH-style ladder.
func DefaultLadder() []Rung {
	rs := Resolutions()
	out := make([]Rung, len(rs))
	for i, r := range rs {
		out[i] = Rung{Res: r, BitrateBps: DefaultBitrate(r)}
	}
	return out
}

// GenerateLadder synthesizes scene-aligned renditions of the same content
// at every rung: all renditions share the scene structure (same seed and
// title), differing only in resolution/bitrate and per-frame jitter, as
// real ABR ladders do.
func GenerateLadder(title Title, fps float64, ladder []Rung, dur sim.Time, seed int64) ([]*Stream, error) {
	if len(ladder) == 0 {
		return nil, fmt.Errorf("video: empty ladder")
	}
	out := make([]*Stream, 0, len(ladder))
	for _, rung := range ladder {
		spec := DefaultSpec(title, rung.Res)
		spec.FPS = fps
		spec.BitrateBps = rung.BitrateBps
		s, err := Generate(spec, dur, seed)
		if err != nil {
			return nil, fmt.Errorf("rung %s: %w", rung.Res.Name, err)
		}
		out = append(out, s)
	}
	return out, nil
}
