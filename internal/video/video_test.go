package video

import (
	"bytes"
	"math"
	"testing"

	"videodvfs/internal/sim"
)

func genOrFatal(t *testing.T, spec Spec, dur sim.Time, seed int64) *Stream {
	t.Helper()
	s, err := Generate(spec, dur, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultSpec(TitleSports, R720p)
	a := genOrFatal(t, spec, 10*sim.Second, 42)
	b := genOrFatal(t, spec, 10*sim.Second, 42)
	if len(a.Frames) != len(b.Frames) {
		t.Fatal("lengths differ")
	}
	for i := range a.Frames {
		if a.Frames[i] != b.Frames[i] {
			t.Fatalf("frame %d differs between identical seeds", i)
		}
	}
	c := genOrFatal(t, spec, 10*sim.Second, 43)
	same := true
	for i := range a.Frames {
		if a.Frames[i].Cycles != c.Frames[i].Cycles {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateFrameCountAndPTS(t *testing.T) {
	spec := DefaultSpec(TitleNews, R480p)
	s := genOrFatal(t, spec, 10*sim.Second, 1)
	if len(s.Frames) != 300 {
		t.Fatalf("frame count = %d, want 300", len(s.Frames))
	}
	for i, f := range s.Frames {
		if f.Index != i {
			t.Fatalf("frame %d has index %d", i, f.Index)
		}
		want := sim.Time(float64(i) / 30)
		if math.Abs(float64(f.PTS-want)) > 1e-12 {
			t.Fatalf("frame %d PTS = %v, want %v", i, f.PTS, want)
		}
		if f.Bits <= 0 || f.Cycles <= 0 {
			t.Fatalf("frame %d has non-positive demand: %+v", i, f)
		}
	}
	if got := s.Duration(); math.Abs(float64(got-10*sim.Second)) > 1e-9 {
		t.Fatalf("Duration = %v, want 10s", got)
	}
}

func TestGOPStructure(t *testing.T) {
	spec := DefaultSpec(TitleNews, R360p)
	s := genOrFatal(t, spec, 4*sim.Second, 1)
	pattern := spec.gopTypes()
	for i, f := range s.Frames {
		if f.Type != pattern[i%len(pattern)] {
			t.Fatalf("frame %d type %v, want %v", i, f.Type, pattern[i%len(pattern)])
		}
	}
	counts := s.CountByType()
	if counts[FrameI] == 0 || counts[FrameP] == 0 || counts[FrameB] == 0 {
		t.Fatalf("missing frame types: %v", counts)
	}
	// IBBPBBPBBPBB: 1 I, 3 P, 8 B per 12 frames.
	if counts[FrameB] <= counts[FrameP] || counts[FrameP] <= counts[FrameI] {
		t.Fatalf("type proportions wrong: %v", counts)
	}
}

func TestBitrateBudgetRespected(t *testing.T) {
	for _, res := range Resolutions() {
		spec := DefaultSpec(TitleNews, res)
		spec.Title.SceneCV = 0 // isolate the budget from drift
		spec.Title.Complexity = 1
		spec.Codec.JitterCV = 0
		s := genOrFatal(t, spec, 60*sim.Second, 7)
		gotRate := s.TotalBits() / s.Duration().Seconds()
		if math.Abs(gotRate-spec.BitrateBps) > 0.02*spec.BitrateBps {
			t.Errorf("%s: rate %.0f, want ≈ %.0f", res.Name, gotRate, spec.BitrateBps)
		}
	}
}

func TestIFramesLargerThanPThanB(t *testing.T) {
	spec := DefaultSpec(TitleNews, R720p)
	spec.Codec.JitterCV = 0
	spec.Title.SceneCV = 0
	s := genOrFatal(t, spec, 10*sim.Second, 3)
	var bitsByType [4]float64
	var nByType [4]int
	for _, f := range s.Frames {
		bitsByType[f.Type] += f.Bits
		nByType[f.Type]++
	}
	meanI := bitsByType[FrameI] / float64(nByType[FrameI])
	meanP := bitsByType[FrameP] / float64(nByType[FrameP])
	meanB := bitsByType[FrameB] / float64(nByType[FrameB])
	if !(meanI > meanP && meanP > meanB) {
		t.Fatalf("frame size ordering wrong: I=%.0f P=%.0f B=%.0f", meanI, meanP, meanB)
	}
}

func TestCalibratedCycleMeans(t *testing.T) {
	// The decode demand must land in the published software-decode range
	// so that min-frequency requirements are realistic.
	wants := map[string][2]float64{
		"360p":  {2.5e6, 6.5e6},
		"480p":  {5e6, 11e6},
		"720p":  {12e6, 26e6},
		"1080p": {28e6, 52e6},
	}
	for _, res := range Resolutions() {
		spec := DefaultSpec(TitleNews, res)
		spec.Title = Title{Name: "flat", Complexity: 1, SceneMeanDur: 8 * sim.Second, SceneCV: 0}
		s := genOrFatal(t, spec, 30*sim.Second, 11)
		m := s.MeanCycles()
		w := wants[res.Name]
		if m < w[0] || m > w[1] {
			t.Errorf("%s mean cycles %.2g outside calibrated [%.2g, %.2g]", res.Name, m, w[0], w[1])
		}
	}
}

func TestSustainedHz(t *testing.T) {
	spec := DefaultSpec(TitleNews, R720p)
	s := genOrFatal(t, spec, 10*sim.Second, 5)
	want := s.MeanCycles() * 30
	if math.Abs(s.SustainedHz()-want) > 1e-6*want {
		t.Fatalf("SustainedHz = %v, want %v", s.SustainedHz(), want)
	}
}

func TestSportsMoreDemandingThanNews(t *testing.T) {
	news := genOrFatal(t, DefaultSpec(TitleNews, R720p), 30*sim.Second, 9)
	sports := genOrFatal(t, DefaultSpec(TitleSports, R720p), 30*sim.Second, 9)
	if sports.MeanCycles() <= news.MeanCycles() {
		t.Fatalf("sports (%.3g) should out-demand news (%.3g)", sports.MeanCycles(), news.MeanCycles())
	}
}

func TestSpecValidation(t *testing.T) {
	good := DefaultSpec(TitleNews, R360p)
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.FPS = 0 },
		func(s *Spec) { s.BitrateBps = -1 },
		func(s *Spec) { s.Res.Width = 0 },
		func(s *Spec) { s.GOP = "PBB" },
		func(s *Spec) { s.GOP = "IXP" },
		func(s *Spec) { s.GOP = "" },
		func(s *Spec) { s.Title.Complexity = 0 },
		func(s *Spec) { s.Title.SceneMeanDur = 0 },
		func(s *Spec) { s.Codec.PixelCycles = 0 },
	}
	for i, mutate := range cases {
		s := DefaultSpec(TitleNews, R360p)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestGenerateRejectsBadInputs(t *testing.T) {
	if _, err := Generate(DefaultSpec(TitleNews, R360p), 0, 1); err == nil {
		t.Fatal("want error for zero duration")
	}
	bad := DefaultSpec(TitleNews, R360p)
	bad.FPS = -1
	if _, err := Generate(bad, sim.Second, 1); err == nil {
		t.Fatal("want error for invalid spec")
	}
}

func TestLadderSceneAlignment(t *testing.T) {
	streams, err := GenerateLadder(TitleSports, 30, DefaultLadder(), 20*sim.Second, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 4 {
		t.Fatalf("ladder size = %d", len(streams))
	}
	// Scene alignment: per-frame demand across rungs should be strongly
	// correlated (same scenes), even though magnitudes differ.
	lo, hi := streams[0], streams[3]
	if hi.MeanCycles() <= lo.MeanCycles() {
		t.Fatal("higher rung should cost more cycles")
	}
	var num, dl, dh float64
	ml, mh := lo.MeanCycles(), hi.MeanCycles()
	for i := range lo.Frames {
		a := lo.Frames[i].Cycles - ml
		b := hi.Frames[i].Cycles - mh
		num += a * b
		dl += a * a
		dh += b * b
	}
	corr := num / math.Sqrt(dl*dh)
	if corr < 0.5 {
		t.Fatalf("ladder rungs uncorrelated (r=%.2f); scenes not aligned", corr)
	}
}

func TestGenerateLadderEmpty(t *testing.T) {
	if _, err := GenerateLadder(TitleNews, 30, nil, sim.Second, 1); err == nil {
		t.Fatal("want error for empty ladder")
	}
}

func TestSegmentize(t *testing.T) {
	spec := DefaultSpec(TitleNews, R480p)
	s := genOrFatal(t, spec, 10*sim.Second, 2)
	segs, err := Segmentize(s, 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 5 {
		t.Fatalf("segments = %d, want 5", len(segs))
	}
	totalFrames := 0
	var totalBits float64
	for i, seg := range segs {
		if seg.Index != i {
			t.Fatalf("segment %d has index %d", i, seg.Index)
		}
		if len(seg.Frames) != 60 {
			t.Fatalf("segment %d has %d frames, want 60", i, len(seg.Frames))
		}
		if math.Abs(float64(seg.Duration-2*sim.Second)) > 1e-9 {
			t.Fatalf("segment %d duration %v", i, seg.Duration)
		}
		totalFrames += len(seg.Frames)
		totalBits += seg.Bits
	}
	if totalFrames != len(s.Frames) {
		t.Fatalf("segments cover %d frames, stream has %d", totalFrames, len(s.Frames))
	}
	if math.Abs(totalBits-s.TotalBits()) > 1e-6 {
		t.Fatal("segment bits do not sum to stream bits")
	}
}

func TestSegmentizeShortTail(t *testing.T) {
	spec := DefaultSpec(TitleNews, R360p)
	s := genOrFatal(t, spec, 5*sim.Second, 2) // 150 frames
	segs, err := Segmentize(s, 2*sim.Second)  // 60-frame segments → 60/60/30
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || len(segs[2].Frames) != 30 {
		t.Fatalf("tail segmentation wrong: %d segs, tail %d frames", len(segs), len(segs[len(segs)-1].Frames))
	}
}

func TestSegmentizeErrors(t *testing.T) {
	spec := DefaultSpec(TitleNews, R360p)
	s := genOrFatal(t, spec, sim.Second, 2)
	if _, err := Segmentize(s, 0); err == nil {
		t.Fatal("want error for zero segment duration")
	}
	if _, err := Segmentize(&Stream{Spec: spec}, sim.Second); err == nil {
		t.Fatal("want error for empty stream")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	spec := DefaultSpec(TitleSports, R720p)
	s := genOrFatal(t, spec, 3*sim.Second, 21)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Frames) != len(s.Frames) {
		t.Fatalf("round trip length %d, want %d", len(back.Frames), len(s.Frames))
	}
	for i := range s.Frames {
		if s.Frames[i] != back.Frames[i] {
			t.Fatalf("frame %d corrupted in round trip: %+v vs %+v", i, s.Frames[i], back.Frames[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	spec := DefaultSpec(TitleNews, R360p)
	cases := []string{
		"",
		"not,a,real,header,x\n",
		"index,type,pts_s,bits,cycles\n0,Q,0,100,100\n",
		"index,type,pts_s,bits,cycles\nx,I,0,100,100\n",
		"index,type,pts_s,bits,cycles\n0,I,zz,100,100\n",
	}
	for i, c := range cases {
		if _, err := ReadTrace(bytes.NewBufferString(c), spec); err == nil {
			t.Errorf("case %d: want parse error", i)
		}
	}
}

func TestFrameTypeParsing(t *testing.T) {
	for _, ft := range []FrameType{FrameI, FrameP, FrameB} {
		back, err := ParseFrameType(ft.String())
		if err != nil || back != ft {
			t.Fatalf("round trip %v failed: %v %v", ft, back, err)
		}
	}
	if FrameType(0).String() != "?" {
		t.Fatal("zero frame type should stringify as ?")
	}
	if _, err := ParseFrameType("Z"); err == nil {
		t.Fatal("want error for unknown type letter")
	}
}

func TestResolutionHelpers(t *testing.T) {
	r, err := ResolutionByName("720p")
	if err != nil || r.Width != 1280 {
		t.Fatalf("ResolutionByName: %v %v", r, err)
	}
	if _, err := ResolutionByName("9000p"); err == nil {
		t.Fatal("want error for unknown resolution")
	}
	if R1080p.Pixels() != 1920*1080 {
		t.Fatal("pixel math wrong")
	}
	if DefaultBitrate(Resolution{Name: "odd", Width: 1280, Height: 720}) != 4e6 {
		t.Fatal("fallback bitrate should scale from 720p")
	}
}

func TestTitleByName(t *testing.T) {
	for _, title := range Titles() {
		got, err := TitleByName(title.Name)
		if err != nil || got.Name != title.Name {
			t.Fatalf("TitleByName(%s): %v %v", title.Name, got, err)
		}
	}
	if _, err := TitleByName("nature"); err == nil {
		t.Fatal("want error for unknown title")
	}
}

func TestMeanFrameCyclesAnalytic(t *testing.T) {
	spec := DefaultSpec(TitleNews, R720p)
	c := spec.Codec
	for _, ft := range []FrameType{FrameI, FrameP, FrameB} {
		got := c.MeanFrameCycles(spec, ft)
		if got <= 0 {
			t.Fatalf("MeanFrameCycles(%v) = %v", ft, got)
		}
	}
	if !(c.MeanFrameCycles(spec, FrameI) > c.MeanFrameCycles(spec, FrameP)) {
		t.Fatal("I frames should cost more than P analytically")
	}
}
