package invariant

import (
	"strings"
	"testing"

	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
)

// cleanConfig is a two-OPP device without C-states.
func cleanConfig() Config {
	return Config{OPPFreqsHz: []float64{1e9, 2e9}}
}

// feedClean replays a minimal but complete well-formed run: one decoded
// and shown frame, one OPP switch, a busy burst, a CPU power step.
func feedClean(c *Checker) {
	c.Power(trace.PowerEvent{T: 0, Component: "cpu", Watts: 0.1})
	c.Frame(trace.FrameEvent{T: 0.1, Stage: trace.StageDecodeStart, Frame: 0})
	c.Frame(trace.FrameEvent{T: 0.3, Stage: trace.StageDecodeEnd, Frame: 0, Cycles: 1e6})
	c.Buffer(trace.BufferEvent{T: 0.3, LevelSec: 0.5, Ready: 1, Cap: 8})
	c.CPUBusy(trace.CPUBusyEvent{T: 0.5, Busy: true})
	c.CPUBusy(trace.CPUBusyEvent{T: 0.7, Busy: false})
	c.OPP(trace.OPPEvent{T: 1, From: 0, To: 1, FreqHz: 2e9})
	c.Power(trace.PowerEvent{T: 1, Component: "cpu", Watts: 0.2})
	c.Frame(trace.FrameEvent{T: 2, Stage: trace.StageShown, Frame: 0})
}

// cleanFinal is the engine-side accounting matching feedClean at end=10.
func cleanFinal() Final {
	return Final{
		End:  10,
		CPUJ: 0.1*1 + 0.2*9, // 0.1 W over [0,1), 0.2 W over [1,10]
		FreqResidency: map[int]sim.Time{0: 1, 1: 9},
		RRCResidency:  map[string]sim.Time{"IDLE": 10},
		Displayed:     1, Dropped: 0, Total: 1,
		Decoded: 1, Discarded: 0, ReadyLeft: 0,
		Completed: true,
	}
}

func TestCleanRunPasses(t *testing.T) {
	c := New(cleanConfig())
	feedClean(c)
	if v := c.Finalize(cleanFinal()); v != nil {
		t.Fatalf("clean stream violated: %v", v)
	}
}

// TestRuleCatalog drives each rule with a stream or Final breaking it.
func TestRuleCatalog(t *testing.T) {
	cases := []struct {
		name string
		rule string // expected Violation.Rule prefix
		feed func(c *Checker)
		fin  func(f *Final) // optional Final mutation
	}{
		{
			name: "time goes backwards",
			rule: "time-monotone",
			feed: func(c *Checker) {
				c.Power(trace.PowerEvent{T: 5, Component: "cpu", Watts: 0.1})
				c.Buffer(trace.BufferEvent{T: 4, LevelSec: 1, Ready: 0, Cap: 8})
			},
		},
		{
			name: "NaN timestamp",
			rule: "time-monotone",
			feed: func(c *Checker) {
				c.Playback(trace.PlaybackEvent{T: sim.Time(nan()), Playing: true})
			},
		},
		{
			name: "OPP outside the table",
			rule: "opp-table",
			feed: func(c *Checker) {
				c.OPP(trace.OPPEvent{T: 1, From: 0, To: 7, FreqHz: 9e9})
			},
		},
		{
			name: "OPP chain broken",
			rule: "opp-table",
			feed: func(c *Checker) {
				c.OPP(trace.OPPEvent{T: 1, From: 1, To: 0, FreqHz: 1e9})
			},
		},
		{
			name: "OPP frequency off-table",
			rule: "opp-table",
			feed: func(c *Checker) {
				c.OPP(trace.OPPEvent{T: 1, From: 0, To: 1, FreqHz: 2e9 + 1})
			},
		},
		{
			name: "governor decision out of range",
			rule: "opp-table",
			feed: func(c *Checker) {
				c.Decision(trace.DecisionEvent{T: 1, OPP: -1})
			},
		},
		{
			name: "illegal RRC promotion to FACH",
			rule: "rrc-residency",
			feed: func(c *Checker) {
				c.RRC(trace.RRCEvent{T: 1, State: "FACH"})
			},
		},
		{
			name: "unknown RRC state",
			rule: "rrc-residency",
			feed: func(c *Checker) {
				c.RRC(trace.RRCEvent{T: 1, State: "CELL_PCH"})
			},
		},
		{
			name: "queue over capacity",
			rule: "buffer-bounds",
			feed: func(c *Checker) {
				c.Buffer(trace.BufferEvent{T: 1, LevelSec: 0.1, Ready: 9, Cap: 8})
			},
		},
		{
			name: "negative buffer level",
			rule: "buffer-bounds",
			feed: func(c *Checker) {
				c.Buffer(trace.BufferEvent{T: 1, LevelSec: -0.1, Ready: 0, Cap: 8})
			},
		},
		{
			name: "shown without decode",
			rule: "frame-accounting",
			feed: func(c *Checker) {
				c.Frame(trace.FrameEvent{T: 1, Stage: trace.StageShown, Frame: 0})
			},
		},
		{
			name: "display slot out of order",
			rule: "frame-accounting",
			feed: func(c *Checker) {
				c.Frame(trace.FrameEvent{T: 1, Stage: trace.StageDropped, Frame: 1})
			},
		},
		{
			name: "concurrent decode on a serial decoder",
			rule: "frame-accounting",
			feed: func(c *Checker) {
				c.Frame(trace.FrameEvent{T: 1, Stage: trace.StageDecodeStart, Frame: 0})
				c.Frame(trace.FrameEvent{T: 2, Stage: trace.StageDecodeStart, Frame: 1})
			},
		},
		{
			name: "busy events do not alternate",
			rule: "cstate-residency",
			feed: func(c *Checker) {
				c.CPUBusy(trace.CPUBusyEvent{T: 1, Busy: true})
				c.CPUBusy(trace.CPUBusyEvent{T: 2, Busy: true})
			},
		},
		{
			name: "negative power draw",
			rule: "power-sane",
			feed: func(c *Checker) {
				c.Power(trace.PowerEvent{T: 1, Component: "cpu", Watts: -0.5})
			},
		},
		{
			name: "meter disagrees with the power stream",
			rule: "energy-closure/cpu",
			feed: feedClean,
			fin:  func(f *Final) { f.CPUJ += 0.5 },
		},
		{
			name: "core residency disagrees with the OPP stream",
			rule: "opp-residency",
			feed: feedClean,
			fin: func(f *Final) {
				f.FreqResidency = map[int]sim.Time{0: 5, 1: 5}
			},
		},
		{
			name: "radio residency disagrees with the RRC stream",
			rule: "rrc-residency",
			feed: feedClean,
			fin: func(f *Final) {
				f.RRCResidency = map[string]sim.Time{"IDLE": 3, "DCH": 7}
			},
		},
		{
			name: "radio dwell in a state the stream never entered",
			rule: "rrc-residency",
			feed: feedClean,
			fin: func(f *Final) {
				// Stream dwell for DCH is absent, so the stream-keyed
				// comparison alone would never look at it.
				f.RRCResidency["DCH"] = 5
			},
		},
		{
			name: "decoded frames not conserved",
			rule: "frame-accounting",
			feed: feedClean,
			fin:  func(f *Final) { f.Discarded = 3 },
		},
		{
			name: "completed session lost display slots",
			rule: "frame-accounting",
			feed: feedClean,
			fin: func(f *Final) {
				// Session claims 2 total; stream consumed 1 slot. Keep the
				// stream-vs-session counts agreeing so the total rule fires.
				f.Total = 2
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(cleanConfig())
			tc.feed(c)
			f := cleanFinal()
			if tc.fin != nil {
				tc.fin(&f)
			} else {
				// A broken stream usually leaves the accounting in an
				// arbitrary state; the stream violation must already be
				// recorded before Finalize compares anything.
				if c.Err() == nil {
					t.Fatalf("stream violation not recorded before Finalize")
				}
			}
			v := c.Finalize(f)
			if v == nil {
				t.Fatalf("violation not detected")
			}
			if !strings.HasPrefix(v.Rule, tc.rule) {
				t.Fatalf("rule = %q, want prefix %q (%v)", v.Rule, tc.rule, v)
			}
			if v.Error() == "" {
				t.Fatalf("empty violation message")
			}
		})
	}
}

// TestFirstViolationWins pins that the checker reports the root cause,
// not the fallout that follows it.
func TestFirstViolationWins(t *testing.T) {
	c := New(cleanConfig())
	c.OPP(trace.OPPEvent{T: 1, From: 0, To: 7, FreqHz: 9e9})       // first: opp-table
	c.Power(trace.PowerEvent{T: 2, Component: "cpu", Watts: -1})   // fallout
	v := c.Err()
	if v == nil || v.Rule != "opp-table" {
		t.Fatalf("first violation = %v, want opp-table", v)
	}
}

// TestCStateClosure exercises the per-C-state dwell cross-check.
func TestCStateClosure(t *testing.T) {
	cfg := cleanConfig()
	cfg.CStateNames = []string{"wfi", "retention"}
	c := New(cfg)
	// Park in wfi [0,2), busy [2,3), retention [3,10].
	c.CPUBusy(trace.CPUBusyEvent{T: 2, Busy: true})
	c.CPUBusy(trace.CPUBusyEvent{T: 3, Busy: false, CState: "retention"})
	f := Final{
		End:           10,
		FreqResidency: map[int]sim.Time{0: 10},
		RRCResidency:  map[string]sim.Time{"IDLE": 10},
		IdleResidency: map[string]sim.Time{"wfi": 2, "retention": 7},
	}
	if v := c.Finalize(f); v != nil {
		t.Fatalf("clean c-state stream violated: %v", v)
	}

	c = New(cfg)
	c.CPUBusy(trace.CPUBusyEvent{T: 2, Busy: true})
	c.CPUBusy(trace.CPUBusyEvent{T: 3, Busy: false, CState: "retention"})
	f.IdleResidency = map[string]sim.Time{"wfi": 9, "retention": 0}
	v := c.Finalize(f)
	if v == nil || v.Rule != "cstate-residency" {
		t.Fatalf("violation = %v, want cstate-residency", v)
	}

	// Engine-only dwell: the core claims time in a state the stream never
	// entered, so the stream-keyed comparison alone would miss it.
	c = New(cfg)
	c.CPUBusy(trace.CPUBusyEvent{T: 2, Busy: true})
	c.CPUBusy(trace.CPUBusyEvent{T: 3, Busy: false, CState: "retention"})
	f.IdleResidency = map[string]sim.Time{"wfi": 2, "retention": 7, "off": 3}
	v = c.Finalize(f)
	if v == nil || v.Rule != "cstate-residency" {
		t.Fatalf("engine-only C-state dwell: violation = %v, want cstate-residency", v)
	}
}

// TestToleranceAbsorbsAccumulationDrift pins the tolerance policy: a
// last-bit associativity difference passes, a real bookkeeping error does
// not.
func TestToleranceAbsorbsAccumulationDrift(t *testing.T) {
	c := New(cleanConfig())
	feedClean(c)
	f := cleanFinal()
	f.CPUJ += 1e-12 // below 1e-9 relative of ~1.9 J
	if v := c.Finalize(f); v != nil {
		t.Fatalf("last-bit drift flagged: %v", v)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
