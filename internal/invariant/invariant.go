// Package invariant audits a simulation run against the conservation laws
// and scheduling invariants its results depend on. The Checker rides the
// trace.Tracer fan-out — it only observes the event stream, never perturbs
// it — and cross-checks the stream against itself during the run, then
// against the engine's own accounting (energy meter, residency counters,
// QoE report) at the end.
//
// Rule catalog (DESIGN.md §10):
//
//   - time-monotone: no event fires at t < Now() — every event timestamp
//     is finite, non-negative, and non-decreasing across the stream;
//   - opp-table: every OPP transition and governor decision names an index
//     inside the device's OPP table, transitions chain (From equals the
//     previous To), and the reported frequency is the table's, exactly;
//   - opp-residency: per-OPP dwell integrated from OPP events closes to
//     the run's end time, and matches the core's own residency counters;
//   - rrc-residency: radio-state dwell integrated from RRC events closes
//     to the end time and matches the radio's counters; state transitions
//     follow the RRC machine (FACH is only entered from DCH);
//   - cstate-residency: busy/idle dwell integrated from CPUBusy events
//     closes to the end time; with the cpuidle model armed, per-C-state
//     idle dwell matches the core's counters;
//   - energy-closure: per-component power events integrate to the energy
//     meter's per-component totals;
//   - buffer-bounds: the decoded-frame queue occupancy stays within
//     [0, capacity] and the media buffer level is finite and non-negative;
//   - frame-accounting: display slots are consumed exactly once and in
//     order, displayed-frame timestamps are monotone, every shown frame
//     was decoded first, and the counts conserve:
//     displayed + discarded + left-in-queue = decoded, and (on completed
//     sessions) displayed + dropped = total;
//   - power-sane: component power levels are finite and non-negative.
//
// Tolerance policy: closure checks compare two float64 accumulations of
// the same piecewise-constant signal. Both sides sum identical terms in
// identical order, so they agree to the last bit in practice; RelTol
// (default 1e-9, relative with an absolute floor of 1) absorbs any
// associativity drift a future refactor might introduce without masking
// real bookkeeping bugs, which are orders of magnitude larger.
package invariant

import (
	"fmt"
	"math"

	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
)

// Violation reports one broken invariant: which rule, when in virtual
// time, and what was observed versus expected. It is returned (wrapped)
// by experiments.Run for strict runs; unwrap with errors.As.
type Violation struct {
	// Rule names the broken rule from the package's rule catalog, e.g.
	// "energy-closure/cpu" or "buffer-bounds".
	Rule string
	// T is the virtual time the violation was detected at (the run's end
	// time for closure rules).
	T sim.Time
	// Observed and Expected are the offending values, when the rule
	// compares two quantities (both zero otherwise).
	Observed, Expected float64
	// Detail is a human-readable elaboration.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Observed == 0 && v.Expected == 0 {
		return fmt.Sprintf("invariant %s at t=%v: %s", v.Rule, v.T, v.Detail)
	}
	return fmt.Sprintf("invariant %s at t=%v: observed %v, expected %v: %s",
		v.Rule, v.T, v.Observed, v.Expected, v.Detail)
}

// Config arms a Checker with the run's static ground truth.
type Config struct {
	// OPPFreqsHz is the device's OPP table (frequency by index) — the
	// set chosen OPPs must come from.
	OPPFreqsHz []float64
	// CStateNames is the cpuidle ladder, shallowest first (the state the
	// core parks in at t = 0). nil when C-states are disabled.
	CStateNames []string
	// RelTol overrides the closure tolerance (0 = 1e-9).
	RelTol float64
}

// Final carries the engine's own end-of-run accounting for Finalize to
// cross-check the event stream against.
type Final struct {
	// End is the run's final virtual time.
	End sim.Time
	// CPUJ, RadioJ, DisplayJ are the energy meter's per-component totals.
	CPUJ, RadioJ, DisplayJ float64
	// FreqResidency is the core's per-OPP dwell.
	FreqResidency map[int]sim.Time
	// RRCResidency is the radio's per-state dwell, keyed by state name.
	RRCResidency map[string]sim.Time
	// IdleResidency is the core's per-C-state dwell (nil when disabled).
	IdleResidency map[string]sim.Time
	// Displayed, Dropped, Total are the session's QoE frame counts.
	Displayed, Dropped, Total int
	// Decoded, Discarded, ReadyLeft are the decoder's work counts and the
	// decoded frames still queued at the end.
	Decoded, Discarded, ReadyLeft int
	// Completed reports whether the session finished within the horizon
	// (frame-total conservation only holds for completed sessions).
	Completed bool
}

// Checker is a trace.Tracer that audits the event stream. It records the
// first violation and keeps consuming events (the stream stays identical
// for every other tracer in the tee); read it with Err, or run the
// end-of-run closure checks with Finalize.
type Checker struct {
	cfg Config
	tol float64

	violation *Violation

	// Stream clock.
	lastT sim.Time

	// OPP tracking.
	oppIdx   int
	oppSince sim.Time
	oppDwell []sim.Time

	// RRC tracking (radio starts in IDLE at t = 0).
	rrcState string
	rrcSince sim.Time
	rrcDwell map[string]sim.Time

	// Busy/idle tracking (core starts idle at t = 0).
	busy       bool
	busySince  sim.Time
	busyDwell  sim.Time
	idleState  string
	idleSince  sim.Time
	idleDwell  map[string]sim.Time
	totalIdleT sim.Time

	// Energy integration per component.
	power map[string]*powerTrack

	// Frame accounting.
	decoded    map[int]struct{}
	decodeEnds int
	inFlight   int // in-flight decode frame index, -1 when none
	nextSlot   int // next display slot to be consumed (shown or dropped)
	shown      int
	dropped    int
	lastShownT sim.Time
}

type powerTrack struct {
	watts float64
	since sim.Time
	sum   float64
	seen  bool
}

// New returns a Checker armed with the run's ground truth.
func New(cfg Config) *Checker {
	tol := cfg.RelTol
	if tol <= 0 {
		tol = 1e-9
	}
	c := &Checker{
		cfg:      cfg,
		tol:      tol,
		oppDwell: make([]sim.Time, len(cfg.OPPFreqsHz)),
		rrcState: "IDLE",
		rrcDwell: make(map[string]sim.Time, 4),
		power:    make(map[string]*powerTrack, 4),
		decoded:  make(map[int]struct{}, 256),
		inFlight: -1,
	}
	if len(cfg.CStateNames) > 0 {
		c.idleState = cfg.CStateNames[0]
		c.idleDwell = make(map[string]sim.Time, len(cfg.CStateNames))
	}
	return c
}

// Err returns the first violation observed so far (nil if none).
func (c *Checker) Err() *Violation { return c.violation }

// fail records the first violation; later ones are dropped (the first is
// the root cause, everything after is usually fallout).
func (c *Checker) fail(rule string, t sim.Time, observed, expected float64, format string, args ...any) {
	if c.violation != nil {
		return
	}
	c.violation = &Violation{
		Rule: rule, T: t,
		Observed: observed, Expected: expected,
		Detail: fmt.Sprintf(format, args...),
	}
}

// clock enforces the time-monotone rule and advances the stream clock.
func (c *Checker) clock(t sim.Time) {
	if math.IsNaN(float64(t)) || math.IsInf(float64(t), 0) || t < 0 {
		c.fail("time-monotone", t, float64(t), 0, "event timestamp not a finite non-negative time")
		return
	}
	if t < c.lastT {
		c.fail("time-monotone", t, float64(t), float64(c.lastT),
			"event fired before the previous event's timestamp — time went backwards")
		return
	}
	c.lastT = t
}

// close2 reports whether two accumulations of the same signal agree
// within the tolerance policy (relative, with an absolute floor of 1).
func (c *Checker) close2(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= c.tol*scale
}

// Decision implements trace.Tracer.
func (c *Checker) Decision(e trace.DecisionEvent) {
	c.clock(e.T)
	if e.OPP < 0 || e.OPP >= len(c.cfg.OPPFreqsHz) {
		c.fail("opp-table", e.T, float64(e.OPP), float64(len(c.cfg.OPPFreqsHz)-1),
			"governor decision chose OPP %d outside the device table [0, %d]", e.OPP, len(c.cfg.OPPFreqsHz)-1)
	}
	if math.IsNaN(e.PredCycles) || math.IsInf(e.PredCycles, 0) || e.PredCycles < 0 {
		c.fail("opp-table", e.T, e.PredCycles, 0, "decision predicted a non-finite or negative cycle demand")
	}
}

// Frame implements trace.Tracer.
func (c *Checker) Frame(e trace.FrameEvent) {
	c.clock(e.T)
	switch e.Stage {
	case trace.StageDecodeStart:
		if c.inFlight >= 0 {
			c.fail("frame-accounting", e.T, float64(e.Frame), float64(c.inFlight),
				"decode of frame %d started while frame %d was still in flight", e.Frame, c.inFlight)
			return
		}
		c.inFlight = e.Frame
	case trace.StageDecodeEnd:
		if c.inFlight != e.Frame {
			c.fail("frame-accounting", e.T, float64(e.Frame), float64(c.inFlight),
				"decode_end for frame %d does not match the in-flight frame %d", e.Frame, c.inFlight)
			return
		}
		if math.IsNaN(e.Cycles) || math.IsInf(e.Cycles, 0) || e.Cycles <= 0 {
			c.fail("frame-accounting", e.T, e.Cycles, 0, "frame %d decoded with a non-finite or non-positive cycle count", e.Frame)
		}
		c.inFlight = -1
		c.decoded[e.Frame] = struct{}{}
		c.decodeEnds++
	case trace.StageShown:
		if _, ok := c.decoded[e.Frame]; !ok {
			c.fail("frame-accounting", e.T, float64(e.Frame), 0,
				"frame %d shown without a preceding decode_end", e.Frame)
		}
		if e.T < c.lastShownT {
			c.fail("frame-accounting", e.T, float64(e.T), float64(c.lastShownT),
				"frame %d displayed before the previous frame's display time — display timestamps not monotone", e.Frame)
		}
		c.lastShownT = e.T
		c.consumeSlot(e.T, e.Frame)
		c.shown++
	case trace.StageDropped:
		c.consumeSlot(e.T, e.Frame)
		c.dropped++
	default:
		c.fail("frame-accounting", e.T, float64(e.Stage), 0, "unknown frame lifecycle stage %d", e.Stage)
	}
}

// consumeSlot enforces that display slots are consumed exactly once, in
// presentation order.
func (c *Checker) consumeSlot(t sim.Time, frame int) {
	if frame != c.nextSlot {
		c.fail("frame-accounting", t, float64(frame), float64(c.nextSlot),
			"display slot %d consumed out of order (expected slot %d)", frame, c.nextSlot)
		return
	}
	c.nextSlot++
}

// OPP implements trace.Tracer.
func (c *Checker) OPP(e trace.OPPEvent) {
	c.clock(e.T)
	n := len(c.cfg.OPPFreqsHz)
	if e.To < 0 || e.To >= n {
		c.fail("opp-table", e.T, float64(e.To), float64(n-1),
			"OPP transition to index %d outside the device table [0, %d]", e.To, n-1)
		return
	}
	if e.From != c.oppIdx {
		c.fail("opp-table", e.T, float64(e.From), float64(c.oppIdx),
			"OPP transition claims From=%d but the core was at OPP %d", e.From, c.oppIdx)
	}
	if e.FreqHz != c.cfg.OPPFreqsHz[e.To] {
		c.fail("opp-table", e.T, e.FreqHz, c.cfg.OPPFreqsHz[e.To],
			"OPP %d reported frequency %v Hz, table says %v Hz", e.To, e.FreqHz, c.cfg.OPPFreqsHz[e.To])
	}
	c.oppDwell[c.oppIdx] += e.T - c.oppSince
	c.oppIdx = e.To
	c.oppSince = e.T
}

// rrcTransitions is the RRC machine's legal (from, to) edge set:
// promotions land in DCH, FACH is only reachable by demotion from DCH.
var rrcTransitions = map[[2]string]bool{
	{"IDLE", "DCH"}: true, {"FACH", "DCH"}: true,
	{"DCH", "FACH"}: true, {"DCH", "IDLE"}: true, {"FACH", "IDLE"}: true,
}

// RRC implements trace.Tracer.
func (c *Checker) RRC(e trace.RRCEvent) {
	c.clock(e.T)
	switch e.State {
	case "IDLE", "FACH", "DCH":
	default:
		c.fail("rrc-residency", e.T, 0, 0, "unknown RRC state %q", e.State)
		return
	}
	if !rrcTransitions[[2]string{c.rrcState, e.State}] {
		c.fail("rrc-residency", e.T, 0, 0, "illegal RRC transition %s→%s", c.rrcState, e.State)
	}
	c.rrcDwell[c.rrcState] += e.T - c.rrcSince
	c.rrcState = e.State
	c.rrcSince = e.T
}

// CPUBusy implements trace.Tracer.
func (c *Checker) CPUBusy(e trace.CPUBusyEvent) {
	c.clock(e.T)
	if e.Busy == c.busy {
		c.fail("cstate-residency", e.T, 0, 0, "repeated busy=%v transition — busy/idle events must alternate", e.Busy)
		return
	}
	if e.Busy {
		// Wake: close the idle interval.
		d := e.T - c.idleSince
		c.totalIdleT += d
		if c.idleDwell != nil {
			c.idleDwell[c.idleState] += d
		}
		c.busy = true
		c.busySince = e.T
		return
	}
	// Idle entry: close the busy interval, note the C-state entered.
	c.busyDwell += e.T - c.busySince
	c.busy = false
	c.idleSince = e.T
	if c.idleDwell != nil {
		c.idleState = e.CState
		if e.CState == "" {
			c.fail("cstate-residency", e.T, 0, 0, "idle entry without a C-state name while the cpuidle model is armed")
		}
	}
}

// ABR implements trace.Tracer.
func (c *Checker) ABR(e trace.ABREvent) {
	c.clock(e.T)
	if math.IsNaN(e.RateBps) || math.IsInf(e.RateBps, 0) || e.RateBps <= 0 {
		c.fail("buffer-bounds", e.T, e.RateBps, 0, "ABR switch to a non-finite or non-positive bitrate")
	}
}

// Buffer implements trace.Tracer.
func (c *Checker) Buffer(e trace.BufferEvent) {
	c.clock(e.T)
	if e.Cap < 1 {
		c.fail("buffer-bounds", e.T, float64(e.Cap), 1, "decoded-queue capacity %d below 1", e.Cap)
	}
	if e.Ready < 0 || e.Ready > e.Cap {
		c.fail("buffer-bounds", e.T, float64(e.Ready), float64(e.Cap),
			"decoded-frame queue occupancy %d outside [0, %d]", e.Ready, e.Cap)
	}
	if math.IsNaN(e.LevelSec) || math.IsInf(e.LevelSec, 0) || e.LevelSec < 0 {
		c.fail("buffer-bounds", e.T, e.LevelSec, 0, "media buffer level not a finite non-negative second count")
	}
}

// Playback implements trace.Tracer.
func (c *Checker) Playback(e trace.PlaybackEvent) {
	c.clock(e.T)
}

// Power implements trace.Tracer.
func (c *Checker) Power(e trace.PowerEvent) {
	c.clock(e.T)
	if e.Component == "" {
		c.fail("power-sane", e.T, 0, 0, "power event without a component name")
		return
	}
	if math.IsNaN(e.Watts) || math.IsInf(e.Watts, 0) || e.Watts < 0 {
		c.fail("power-sane", e.T, e.Watts, 0, "component %q reported a non-finite or negative draw", e.Component)
		return
	}
	tr, ok := c.power[e.Component]
	if !ok {
		tr = &powerTrack{}
		c.power[e.Component] = tr
	}
	if tr.seen {
		tr.sum += tr.watts * (e.T - tr.since).Seconds()
	}
	tr.watts = e.Watts
	tr.since = e.T
	tr.seen = true
}

// energyJ closes one component's power integral at end.
func (c *Checker) energyJ(component string, end sim.Time) float64 {
	tr, ok := c.power[component]
	if !ok || !tr.seen {
		return 0
	}
	return tr.sum + tr.watts*(end-tr.since).Seconds()
}

// Finalize runs the end-of-run closure checks against the engine's own
// accounting and returns the first violation of the whole run (stream
// violations take precedence), or nil when every invariant held.
func (c *Checker) Finalize(f Final) *Violation {
	if c.violation != nil {
		return c.violation
	}
	end := f.End
	if end < c.lastT {
		c.fail("time-monotone", c.lastT, float64(c.lastT), float64(end),
			"an event fired after the run's reported end time")
		return c.violation
	}

	// opp-residency: the stream's dwell closes to the end time and
	// matches the core's counters.
	c.oppDwell[c.oppIdx] += end - c.oppSince
	c.oppSince = end
	var oppSum sim.Time
	for idx, d := range c.oppDwell {
		oppSum += d
		if got := f.FreqResidency[idx]; !c.close2(d.Seconds(), got.Seconds()) {
			c.fail("opp-residency", end, d.Seconds(), got.Seconds(),
				"OPP %d dwell from the event stream disagrees with the core's residency counter", idx)
			return c.violation
		}
	}
	if !c.close2(oppSum.Seconds(), end.Seconds()) {
		c.fail("opp-residency", end, oppSum.Seconds(), end.Seconds(),
			"per-OPP dwell does not close to the run's end time")
		return c.violation
	}

	// rrc-residency.
	c.rrcDwell[c.rrcState] += end - c.rrcSince
	c.rrcSince = end
	var rrcSum sim.Time
	for state, d := range c.rrcDwell {
		rrcSum += d
		if got := f.RRCResidency[state]; !c.close2(d.Seconds(), got.Seconds()) {
			c.fail("rrc-residency", end, d.Seconds(), got.Seconds(),
				"RRC %s dwell from the event stream disagrees with the radio's residency counter", state)
			return c.violation
		}
	}
	// A state the stream never visited must not carry dwell in the
	// radio's counters either; the loop above only covers stream keys.
	for state, got := range f.RRCResidency {
		if _, ok := c.rrcDwell[state]; ok {
			continue
		}
		if !c.close2(0, got.Seconds()) {
			c.fail("rrc-residency", end, 0, got.Seconds(),
				"radio reports dwell in RRC %s but the event stream never entered it", state)
			return c.violation
		}
	}
	if !c.close2(rrcSum.Seconds(), end.Seconds()) {
		c.fail("rrc-residency", end, rrcSum.Seconds(), end.Seconds(),
			"per-state RRC dwell does not close to the run's end time")
		return c.violation
	}

	// cstate-residency: busy + idle closes to the end time; per-state
	// idle dwell matches the core when the cpuidle model is armed.
	busy, idle := c.busyDwell, c.totalIdleT
	if c.busy {
		busy += end - c.busySince
	} else {
		idleTail := end - c.idleSince
		idle += idleTail
		if c.idleDwell != nil {
			c.idleDwell[c.idleState] += idleTail
		}
	}
	if !c.close2((busy + idle).Seconds(), end.Seconds()) {
		c.fail("cstate-residency", end, (busy + idle).Seconds(), end.Seconds(),
			"busy + idle dwell does not close to the run's end time")
		return c.violation
	}
	if c.idleDwell != nil {
		for state, d := range c.idleDwell {
			if got := f.IdleResidency[state]; !c.close2(d.Seconds(), got.Seconds()) {
				c.fail("cstate-residency", end, d.Seconds(), got.Seconds(),
					"C-state %s dwell from the event stream disagrees with the core's counter", state)
				return c.violation
			}
		}
		for state, got := range f.IdleResidency {
			if _, ok := c.idleDwell[state]; ok {
				continue
			}
			if !c.close2(0, got.Seconds()) {
				c.fail("cstate-residency", end, 0, got.Seconds(),
					"core reports dwell in C-state %s but the event stream never entered it", state)
				return c.violation
			}
		}
	}

	// energy-closure: the stream's power integrals match the meter.
	for _, comp := range [...]struct {
		name   string
		meterJ float64
	}{{"cpu", f.CPUJ}, {"radio", f.RadioJ}, {"display", f.DisplayJ}} {
		got := c.energyJ(comp.name, end)
		if !c.close2(got, comp.meterJ) {
			c.fail("energy-closure/"+comp.name, end, got, comp.meterJ,
				"power events integrate to %v J but the meter accumulated %v J", got, comp.meterJ)
			return c.violation
		}
	}

	// frame-accounting: stream counts match the session and decoder, and
	// the conservation identities hold.
	if c.shown != f.Displayed || c.dropped != f.Dropped {
		c.fail("frame-accounting", end, float64(c.shown+c.dropped), float64(f.Displayed+f.Dropped),
			"stream saw %d shown + %d dropped, session reports %d + %d",
			c.shown, c.dropped, f.Displayed, f.Dropped)
		return c.violation
	}
	if c.decodeEnds != f.Decoded {
		c.fail("frame-accounting", end, float64(c.decodeEnds), float64(f.Decoded),
			"stream saw %d decode completions, decoder reports %d", c.decodeEnds, f.Decoded)
		return c.violation
	}
	if f.Displayed+f.Discarded+f.ReadyLeft != f.Decoded {
		c.fail("frame-accounting", end, float64(f.Displayed+f.Discarded+f.ReadyLeft), float64(f.Decoded),
			"displayed (%d) + discarded (%d) + queued (%d) does not conserve decoded frames (%d)",
			f.Displayed, f.Discarded, f.ReadyLeft, f.Decoded)
		return c.violation
	}
	if f.Completed && f.Displayed+f.Dropped != f.Total {
		c.fail("frame-accounting", end, float64(f.Displayed+f.Dropped), float64(f.Total),
			"completed session displayed %d + dropped %d frames of %d total", f.Displayed, f.Dropped, f.Total)
		return c.violation
	}
	return nil
}

var _ trace.Tracer = (*Checker)(nil)
