package trace

import (
	"bufio"
	"io"
	"strconv"
)

// appendFloat appends the shortest round-trip decimal representation of
// v. The format is deterministic across platforms, which is what makes
// sink output byte-identical for same-seed runs.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// writer is the shared buffered-output core of the sinks.
type writer struct {
	bw  *bufio.Writer
	raw io.Writer
	buf []byte
	err error
}

func newWriter(w io.Writer) writer {
	return writer{bw: bufio.NewWriterSize(w, 1<<16), raw: w, buf: make([]byte, 0, 256)}
}

func (w *writer) line(b []byte) {
	if w.err != nil {
		return
	}
	b = append(b, '\n')
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
	}
}

func (w *writer) close() error {
	if err := w.bw.Flush(); w.err == nil {
		w.err = err
	}
	if c, ok := w.raw.(io.Closer); ok {
		if err := c.Close(); w.err == nil {
			w.err = err
		}
	}
	return w.err
}

// JSONLSink writes one JSON object per event, keys in fixed order, with
// shortest-round-trip float formatting. Every object carries "t" (virtual
// seconds) and "ev" (event name); remaining keys are per-event (see
// DESIGN.md §7 for the schema). Output is buffered; call Close once after
// the run. If the underlying writer implements io.Closer, Close closes it
// too.
type JSONLSink struct {
	w writer
}

// NewJSONL returns a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: newWriter(w)}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.w.err }

// Close implements Sink.
func (s *JSONLSink) Close() error { return s.w.close() }

func (s *JSONLSink) head(ev string, t float64) []byte {
	b := append(s.w.buf[:0], `{"t":`...)
	b = appendFloat(b, t)
	b = append(b, `,"ev":"`...)
	b = append(b, ev...)
	b = append(b, '"')
	return b
}

func jInt(b []byte, key string, v int) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, int64(v), 10)
}

func jFloat(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return appendFloat(b, v)
}

func jStr(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":"`...)
	b = append(b, v...)
	return append(b, '"')
}

func jBool(b []byte, key string, v bool) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendBool(b, v)
}

// Decision implements Tracer.
func (s *JSONLSink) Decision(e DecisionEvent) {
	b := s.head("decision", e.T.Seconds())
	b = jInt(b, "frame", e.Frame)
	b = jStr(b, "ftype", e.Type.String())
	b = jFloat(b, "pred_cycles", e.PredCycles)
	b = jFloat(b, "slack_s", e.Slack.Seconds())
	b = jFloat(b, "budget_s", e.Budget.Seconds())
	b = jInt(b, "opp", e.OPP)
	b = jBool(b, "boost", e.Boost)
	s.w.line(append(b, '}'))
}

// Frame implements Tracer.
func (s *JSONLSink) Frame(e FrameEvent) {
	b := s.head(e.Stage.String(), e.T.Seconds())
	b = jInt(b, "frame", e.Frame)
	switch e.Stage {
	case StageDecodeStart:
		b = jStr(b, "ftype", e.Type.String())
		b = jFloat(b, "deadline_s", e.Deadline.Seconds())
	case StageDecodeEnd:
		b = jStr(b, "ftype", e.Type.String())
		b = jFloat(b, "deadline_s", e.Deadline.Seconds())
		b = jFloat(b, "cycles", e.Cycles)
	}
	s.w.line(append(b, '}'))
}

// OPP implements Tracer.
func (s *JSONLSink) OPP(e OPPEvent) {
	b := s.head("opp", e.T.Seconds())
	b = jInt(b, "from", e.From)
	b = jInt(b, "to", e.To)
	b = jFloat(b, "freq_mhz", e.FreqHz/1e6)
	s.w.line(append(b, '}'))
}

// CPUBusy implements Tracer.
func (s *JSONLSink) CPUBusy(e CPUBusyEvent) {
	b := s.head("cpu_busy", e.T.Seconds())
	b = jBool(b, "busy", e.Busy)
	if e.CState != "" {
		b = jStr(b, "cstate", e.CState)
	}
	s.w.line(append(b, '}'))
}

// RRC implements Tracer.
func (s *JSONLSink) RRC(e RRCEvent) {
	b := s.head("rrc", e.T.Seconds())
	b = jStr(b, "state", e.State)
	s.w.line(append(b, '}'))
}

// ABR implements Tracer.
func (s *JSONLSink) ABR(e ABREvent) {
	b := s.head("abr", e.T.Seconds())
	b = jInt(b, "segment", e.Segment)
	b = jInt(b, "from_rung", e.FromRung)
	b = jInt(b, "to_rung", e.ToRung)
	b = jFloat(b, "rate_bps", e.RateBps)
	s.w.line(append(b, '}'))
}

// Buffer implements Tracer.
func (s *JSONLSink) Buffer(e BufferEvent) {
	b := s.head("buffer", e.T.Seconds())
	b = jFloat(b, "level_s", e.LevelSec)
	b = jInt(b, "ready", e.Ready)
	b = jInt(b, "cap", e.Cap)
	s.w.line(append(b, '}'))
}

// Playback implements Tracer.
func (s *JSONLSink) Playback(e PlaybackEvent) {
	b := s.head("playback", e.T.Seconds())
	b = jBool(b, "playing", e.Playing)
	s.w.line(append(b, '}'))
}

// Power implements Tracer.
func (s *JSONLSink) Power(e PowerEvent) {
	b := s.head("power", e.T.Seconds())
	b = jStr(b, "component", e.Component)
	b = jFloat(b, "watts", e.Watts)
	s.w.line(append(b, '}'))
}

var _ Sink = (*JSONLSink)(nil)

// csvHeader is the CSV sink's fixed wide-format column set. Columns not
// applicable to an event are left empty.
const csvHeader = "t,ev,frame,ftype,pred_cycles,slack_s,budget_s,opp,boost," +
	"from,to,freq_mhz,deadline_s,cycles,state,segment,from_rung,to_rung," +
	"rate_bps,level_s,ready,cap,component,watts"

// csvCols is the number of columns in csvHeader.
const csvCols = 24

// Column indices into the CSV row (t and ev are 0 and 1).
const (
	colFrame = 2 + iota
	colFType
	colPredCycles
	colSlackS
	colBudgetS
	colOPP
	colBoost
	colFrom
	colTo
	colFreqMHz
	colDeadlineS
	colCycles
	colState
	colSegment
	colFromRung
	colToRung
	colRateBps
	colLevelS
	colReady
	colCap
	colComponent
	colWatts
)

// CSVSink writes the event stream as a wide CSV: one fixed header, one
// row per event, inapplicable columns empty. Same determinism contract as
// the JSONL sink. Close flushes (and closes an io.Closer writer).
type CSVSink struct {
	w     writer
	cells [csvCols]string
}

// NewCSV returns a CSV sink over w with the header already written.
func NewCSV(w io.Writer) *CSVSink {
	s := &CSVSink{w: newWriter(w)}
	s.w.line(append(s.w.buf[:0], csvHeader...))
	return s
}

// Err returns the first write error, if any.
func (s *CSVSink) Err() error { return s.w.err }

// Close implements Sink.
func (s *CSVSink) Close() error { return s.w.close() }

func (s *CSVSink) row(ev string, t float64) {
	b := appendFloat(s.w.buf[:0], t)
	b = append(b, ',')
	b = append(b, ev...)
	for i := 2; i < csvCols; i++ {
		b = append(b, ',')
		b = append(b, s.cells[i]...)
		s.cells[i] = ""
	}
	s.w.line(b)
}

func cInt(v int) string      { return strconv.Itoa(v) }
func cFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Decision implements Tracer.
func (s *CSVSink) Decision(e DecisionEvent) {
	s.cells[colFrame] = cInt(e.Frame)
	s.cells[colFType] = e.Type.String()
	s.cells[colPredCycles] = cFloat(e.PredCycles)
	s.cells[colSlackS] = cFloat(e.Slack.Seconds())
	s.cells[colBudgetS] = cFloat(e.Budget.Seconds())
	s.cells[colOPP] = cInt(e.OPP)
	s.cells[colBoost] = strconv.FormatBool(e.Boost)
	s.row("decision", e.T.Seconds())
}

// Frame implements Tracer.
func (s *CSVSink) Frame(e FrameEvent) {
	s.cells[colFrame] = cInt(e.Frame)
	switch e.Stage {
	case StageDecodeStart:
		s.cells[colFType] = e.Type.String()
		s.cells[colDeadlineS] = cFloat(e.Deadline.Seconds())
	case StageDecodeEnd:
		s.cells[colFType] = e.Type.String()
		s.cells[colDeadlineS] = cFloat(e.Deadline.Seconds())
		s.cells[colCycles] = cFloat(e.Cycles)
	}
	s.row(e.Stage.String(), e.T.Seconds())
}

// OPP implements Tracer.
func (s *CSVSink) OPP(e OPPEvent) {
	s.cells[colFrom] = cInt(e.From)
	s.cells[colTo] = cInt(e.To)
	s.cells[colFreqMHz] = cFloat(e.FreqHz / 1e6)
	s.row("opp", e.T.Seconds())
}

// CPUBusy implements Tracer.
func (s *CSVSink) CPUBusy(e CPUBusyEvent) {
	if e.Busy {
		s.cells[colState] = "busy"
	} else if e.CState != "" {
		s.cells[colState] = e.CState
	} else {
		s.cells[colState] = "idle"
	}
	s.row("cpu_busy", e.T.Seconds())
}

// RRC implements Tracer.
func (s *CSVSink) RRC(e RRCEvent) {
	s.cells[colState] = e.State
	s.row("rrc", e.T.Seconds())
}

// ABR implements Tracer.
func (s *CSVSink) ABR(e ABREvent) {
	s.cells[colSegment] = cInt(e.Segment)
	s.cells[colFromRung] = cInt(e.FromRung)
	s.cells[colToRung] = cInt(e.ToRung)
	s.cells[colRateBps] = cFloat(e.RateBps)
	s.row("abr", e.T.Seconds())
}

// Buffer implements Tracer.
func (s *CSVSink) Buffer(e BufferEvent) {
	s.cells[colLevelS] = cFloat(e.LevelSec)
	s.cells[colReady] = cInt(e.Ready)
	s.cells[colCap] = cInt(e.Cap)
	s.row("buffer", e.T.Seconds())
}

// Playback implements Tracer.
func (s *CSVSink) Playback(e PlaybackEvent) {
	s.cells[colState] = "paused"
	if e.Playing {
		s.cells[colState] = "playing"
	}
	s.row("playback", e.T.Seconds())
}

// Power implements Tracer.
func (s *CSVSink) Power(e PowerEvent) {
	s.cells[colComponent] = e.Component
	s.cells[colWatts] = cFloat(e.Watts)
	s.row("power", e.T.Seconds())
}

var _ Sink = (*CSVSink)(nil)
