package trace_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"videodvfs/internal/experiments"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
)

// update regenerates the golden trace instead of diffing against it:
//
//	go test ./internal/trace -run TestGoldenTrace -update
var update = flag.Bool("update", false, "rewrite testdata/golden.jsonl from current output")

// goldenConfig is the pinned scenario: a short cut of the default
// session (720p sports, energy-aware governor, steady 8 Mbps link), kept
// to 5 s so the golden file stays reviewable.
func goldenConfig() experiments.RunConfig {
	cfg := experiments.DefaultRunConfig()
	cfg.Duration = 5 * sim.Second
	return cfg
}

// runJSONL executes cfg with a JSONL sink attached and returns the raw
// trace bytes and the run result.
func runJSONL(t *testing.T, cfg experiments.RunConfig) ([]byte, experiments.RunResult) {
	t.Helper()
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	cfg.Tracer = sink
	res, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestTraceDeterminism pins the package's core contract: the JSONL event
// stream is a pure function of the RunConfig, byte for byte.
func TestTraceDeterminism(t *testing.T) {
	a, _ := runJSONL(t, goldenConfig())
	b, _ := runJSONL(t, goldenConfig())
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs produced different trace bytes")
	}
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
}

// TestGoldenTrace pins the exact serialized stream of the golden
// scenario. Any diff is a real behavior change in the simulation or the
// serialization format: rerun with -update and review it like code.
func TestGoldenTrace(t *testing.T) {
	got, res := runJSONL(t, goldenConfig())

	// Sanity before pinning: the stream must carry every subsystem the
	// default session exercises.
	for _, ev := range []string{
		`"ev":"decision"`, `"ev":"decode_start"`, `"ev":"decode_end"`,
		`"ev":"frame_shown"`, `"ev":"opp"`, `"ev":"cpu_busy"`,
		`"ev":"buffer"`, `"ev":"playback"`, `"ev":"power"`,
	} {
		if !bytes.Contains(got, []byte(ev)) {
			t.Errorf("trace is missing %s events", ev)
		}
	}
	if !res.QoE.Completed {
		t.Fatal("golden run did not complete")
	}

	path := filepath.Join("testdata", "golden.jsonl")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace (run `make trace-golden` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace drifted from golden output:\n%s", firstDiff(want, got))
	}
}

// firstDiff reports the first differing line of two JSONL streams.
func firstDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("streams differ in length: golden %d lines, got %d", len(wl), len(gl))
}

// TestCollectorMatchesRunResult cross-checks the rollup against the
// simulation's own accounting: energy integrated from power events must
// agree with the meter, and display outcomes with the QoE counters.
func TestCollectorMatchesRunResult(t *testing.T) {
	col := trace.NewCollector()
	cfg := goldenConfig()
	cfg.Tracer = col
	res, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := col.Finalize(res.SimEnd)
	if m.FramesDropped != res.QoE.DroppedFrames {
		t.Errorf("collector drops %d, result %d", m.FramesDropped, res.QoE.DroppedFrames)
	}
	relClose := func(a, b float64) bool {
		if b == 0 {
			return a == 0
		}
		d := (a - b) / b
		return d > -1e-6 && d < 1e-6
	}
	if !relClose(m.EnergyJ["cpu"], res.CPUJ) {
		t.Errorf("collector cpu energy %.6f J, meter %.6f J", m.EnergyJ["cpu"], res.CPUJ)
	}
	if !relClose(m.EnergyJ["radio"], res.RadioJ) {
		t.Errorf("collector radio energy %.6f J, meter %.6f J", m.EnergyJ["radio"], res.RadioJ)
	}
	if m.Decisions == 0 || m.OPPSwitches == 0 {
		t.Errorf("rollup missing governor activity: %d decisions, %d switches",
			m.Decisions, m.OPPSwitches)
	}
	if len(m.Timeline) == 0 {
		t.Error("rollup has no energy timeline")
	}
}
