package trace

import (
	"videodvfs/internal/sim"
	"videodvfs/internal/stats"
)

// EnergyBin is one slot of the per-component energy timeline.
type EnergyBin struct {
	// Start is the bin's start time.
	Start sim.Time
	// J maps component name to joules spent inside the bin.
	J map[string]float64
}

// Metrics is the rolled-up summary of one run's event stream, produced
// by Collector.Finalize.
type Metrics struct {
	// End is the timestamp the rollup was finalized at.
	End sim.Time
	// Events counts every event received.
	Events int

	// Decisions counts governor frequency decisions; BoostDecisions the
	// subset forced to the top OPP.
	Decisions, BoostDecisions int
	// DecisionOPP counts decisions per chosen OPP index.
	DecisionOPP map[int]int
	// SlackS collects per-decision slack in seconds (boosts excluded);
	// use stats.Percentile for quantiles.
	SlackS []float64
	// PredRelErr collects |predicted − measured| / measured per frame
	// with both a prediction and a measurement.
	PredRelErr []float64

	// DecodeLatency histograms decode-start→decode-end wall time over
	// [0, 50 ms) in 25 bins.
	DecodeLatency *stats.Histogram
	// FramesShown and FramesDropped count display outcomes.
	FramesShown, FramesDropped int

	// OPPSwitches counts DVFS transitions; OPPResidency maps OPP index
	// to dwell time.
	OPPSwitches  int
	OPPResidency map[int]sim.Time
	// RRCResidency maps radio state name to dwell time.
	RRCResidency map[string]sim.Time
	// RungSwitches counts ABR rendition changes after the initial pick.
	RungSwitches int

	// EnergyJ maps component name to total joules integrated from power
	// events; Timeline slices the same integral into fixed-width bins.
	EnergyJ  map[string]float64
	Timeline []EnergyBin
}

// PredErrP returns the given percentile of relative prediction error.
func (m Metrics) PredErrP(pct float64) float64 { return stats.Percentile(m.PredRelErr, pct) }

// SlackP returns the given percentile of decision slack in seconds.
func (m Metrics) SlackP(pct float64) float64 { return stats.Percentile(m.SlackS, pct) }

// powerTrack integrates one component's piecewise-constant power.
type powerTrack struct {
	watts float64
	since sim.Time
}

// Collector is a Tracer that accumulates the event stream into Metrics.
// It allocates only amortized slice/map growth per event, so it is cheap
// enough to run alongside a sink via Tee. Call Finalize once, at the
// run's end time, to close open dwell intervals and obtain the rollup.
type Collector struct {
	// BinWidth sets the energy-timeline bin width (default 1 s).
	BinWidth sim.Time

	m Metrics

	oppIdx   int
	oppSince sim.Time

	rrcState string
	rrcSince sim.Time

	decodeStart map[int]sim.Time
	pred        map[int]float64

	power map[string]*powerTrack
	last  sim.Time
}

// NewCollector returns an empty collector with 1 s timeline bins.
func NewCollector() *Collector {
	lat, err := stats.NewHistogram(0, 0.050, 25)
	if err != nil {
		panic(err) // static bounds; unreachable
	}
	return &Collector{
		BinWidth: sim.Second,
		m: Metrics{
			DecisionOPP:   make(map[int]int),
			DecodeLatency: lat,
			OPPResidency:  make(map[int]sim.Time),
			RRCResidency:  make(map[string]sim.Time),
			EnergyJ:       make(map[string]float64),
		},
		decodeStart: make(map[int]sim.Time),
		pred:        make(map[int]float64),
		power:       make(map[string]*powerTrack),
	}
}

func (c *Collector) tick(t sim.Time) {
	c.m.Events++
	if t > c.last {
		c.last = t
	}
}

// Decision implements Tracer.
func (c *Collector) Decision(e DecisionEvent) {
	c.tick(e.T)
	c.m.Decisions++
	c.m.DecisionOPP[e.OPP]++
	if e.Boost {
		c.m.BoostDecisions++
		return
	}
	c.m.SlackS = append(c.m.SlackS, e.Slack.Seconds())
	if e.PredCycles > 0 {
		c.pred[e.Frame] = e.PredCycles
	}
}

// Frame implements Tracer.
func (c *Collector) Frame(e FrameEvent) {
	c.tick(e.T)
	switch e.Stage {
	case StageDecodeStart:
		c.decodeStart[e.Frame] = e.T
	case StageDecodeEnd:
		if start, ok := c.decodeStart[e.Frame]; ok {
			delete(c.decodeStart, e.Frame)
			c.m.DecodeLatency.Add((e.T - start).Seconds())
		}
		if pred, ok := c.pred[e.Frame]; ok {
			delete(c.pred, e.Frame)
			if e.Cycles > 0 {
				rel := (pred - e.Cycles) / e.Cycles
				if rel < 0 {
					rel = -rel
				}
				c.m.PredRelErr = append(c.m.PredRelErr, rel)
			}
		}
	case StageShown:
		c.m.FramesShown++
	case StageDropped:
		c.m.FramesDropped++
	}
}

// OPP implements Tracer.
func (c *Collector) OPP(e OPPEvent) {
	c.tick(e.T)
	c.m.OPPSwitches++
	c.m.OPPResidency[c.oppIdx] += e.T - c.oppSince
	c.oppIdx = e.To
	c.oppSince = e.T
}

// CPUBusy implements Tracer.
func (c *Collector) CPUBusy(e CPUBusyEvent) { c.tick(e.T) }

// RRC implements Tracer.
func (c *Collector) RRC(e RRCEvent) {
	c.tick(e.T)
	if c.rrcState != "" {
		c.m.RRCResidency[c.rrcState] += e.T - c.rrcSince
	}
	c.rrcState = e.State
	c.rrcSince = e.T
}

// ABR implements Tracer.
func (c *Collector) ABR(e ABREvent) {
	c.tick(e.T)
	if e.FromRung >= 0 {
		c.m.RungSwitches++
	}
}

// Buffer implements Tracer.
func (c *Collector) Buffer(e BufferEvent) { c.tick(e.T) }

// Playback implements Tracer.
func (c *Collector) Playback(e PlaybackEvent) { c.tick(e.T) }

// Power implements Tracer.
func (c *Collector) Power(e PowerEvent) {
	c.tick(e.T)
	tr, ok := c.power[e.Component]
	if !ok {
		tr = &powerTrack{since: e.T}
		c.power[e.Component] = tr
	}
	c.integrate(e.Component, tr, e.T)
	tr.watts = e.Watts
	tr.since = e.T
}

// integrate charges tr.watts over [tr.since, until] into the totals and
// the timeline bins, splitting across bin boundaries.
func (c *Collector) integrate(component string, tr *powerTrack, until sim.Time) {
	if until <= tr.since || tr.watts == 0 {
		return
	}
	c.m.EnergyJ[component] += tr.watts * (until - tr.since).Seconds()
	w := c.BinWidth
	if w <= 0 {
		w = sim.Second
	}
	t := tr.since
	for t < until {
		bin := int(t / w)
		binEnd := sim.Time(bin+1) * w
		if binEnd > until {
			binEnd = until
		}
		for len(c.m.Timeline) <= bin {
			c.m.Timeline = append(c.m.Timeline, EnergyBin{
				Start: sim.Time(len(c.m.Timeline)) * w,
				J:     make(map[string]float64),
			})
		}
		c.m.Timeline[bin].J[component] += tr.watts * (binEnd - t).Seconds()
		t = binEnd
	}
}

// Finalize closes all open dwell and power intervals at end (the run's
// final virtual time; the latest event time is used if end is earlier)
// and returns the rollup. The collector must not receive further events.
func (c *Collector) Finalize(end sim.Time) Metrics {
	if end < c.last {
		end = c.last
	}
	c.m.End = end
	c.m.OPPResidency[c.oppIdx] += end - c.oppSince
	c.oppSince = end
	if c.rrcState != "" {
		c.m.RRCResidency[c.rrcState] += end - c.rrcSince
		c.rrcSince = end
	}
	for comp, tr := range c.power {
		c.integrate(comp, tr, end)
		tr.since = end
	}
	return c.m
}

var _ Tracer = (*Collector)(nil)
