package trace

import (
	"errors"
	"math"
	"strings"
	"testing"

	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// feedAll pushes one event of every kind through tr at increasing times.
func feedAll(tr Tracer) {
	tr.Decision(DecisionEvent{T: 0.5, Frame: 42, Type: video.FrameP,
		PredCycles: 3e7, Slack: 20 * sim.Millisecond, Budget: 33 * sim.Millisecond, OPP: 2})
	tr.Frame(FrameEvent{T: 0.5, Stage: StageDecodeStart, Frame: 42,
		Type: video.FrameP, Deadline: 0.6})
	tr.Frame(FrameEvent{T: 0.51, Stage: StageDecodeEnd, Frame: 42,
		Type: video.FrameP, Deadline: 0.6, Cycles: 2.5e7})
	tr.Frame(FrameEvent{T: 0.6, Stage: StageShown, Frame: 42})
	tr.Frame(FrameEvent{T: 0.7, Stage: StageDropped, Frame: 43})
	tr.OPP(OPPEvent{T: 0.75, From: 0, To: 2, FreqHz: 2e9})
	tr.CPUBusy(CPUBusyEvent{T: 0.8, Busy: true})
	tr.CPUBusy(CPUBusyEvent{T: 0.85, Busy: false, CState: "C2"})
	tr.RRC(RRCEvent{T: 0.9, State: "DCH"})
	tr.ABR(ABREvent{T: 1, Segment: 3, FromRung: 1, ToRung: 2, RateBps: 4.5e6})
	tr.Buffer(BufferEvent{T: 1.1, LevelSec: 7.25, Ready: 5, Cap: 8})
	tr.Playback(PlaybackEvent{T: 1.2, Playing: true})
	tr.Power(PowerEvent{T: 1.3, Component: "cpu", Watts: 1.5})
}

func TestJSONLSerialization(t *testing.T) {
	var sb strings.Builder
	s := NewJSONL(&sb)
	feedAll(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`{"t":0.5,"ev":"decision","frame":42,"ftype":"P","pred_cycles":3e+07,"slack_s":0.02,"budget_s":0.033,"opp":2,"boost":false}`,
		`{"t":0.5,"ev":"decode_start","frame":42,"ftype":"P","deadline_s":0.6}`,
		`{"t":0.51,"ev":"decode_end","frame":42,"ftype":"P","deadline_s":0.6,"cycles":2.5e+07}`,
		`{"t":0.6,"ev":"frame_shown","frame":42}`,
		`{"t":0.7,"ev":"frame_drop","frame":43}`,
		`{"t":0.75,"ev":"opp","from":0,"to":2,"freq_mhz":2000}`,
		`{"t":0.8,"ev":"cpu_busy","busy":true}`,
		`{"t":0.85,"ev":"cpu_busy","busy":false,"cstate":"C2"}`,
		`{"t":0.9,"ev":"rrc","state":"DCH"}`,
		`{"t":1,"ev":"abr","segment":3,"from_rung":1,"to_rung":2,"rate_bps":4.5e+06}`,
		`{"t":1.1,"ev":"buffer","level_s":7.25,"ready":5,"cap":8}`,
		`{"t":1.2,"ev":"playback","playing":true}`,
		`{"t":1.3,"ev":"power","component":"cpu","watts":1.5}`,
	}
	got := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(want), sb.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %s\nwant %s", i+1, got[i], want[i])
		}
	}
}

func TestCSVSerialization(t *testing.T) {
	var sb strings.Builder
	s := NewCSV(&sb)
	feedAll(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != csvHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 14 { // header + 13 events
		t.Fatalf("got %d lines, want 14", len(lines))
	}
	for i, ln := range lines {
		if n := strings.Count(ln, ","); n != csvCols-1 {
			t.Errorf("line %d has %d commas, want %d: %q", i+1, n, csvCols-1, ln)
		}
	}
	// Spot-check a full row and that cells reset between events: the
	// decision row fills the decision columns, and the following
	// decode_start row must not inherit them.
	if want := "0.5,decision,42,P,3e+07,0.02,0.033,2,false,,,,,,,,,,,,,,,"; lines[1] != want {
		t.Errorf("decision row:\n got %s\nwant %s", lines[1], want)
	}
	if want := "0.5,decode_start,42,P,,,,,,,,,0.6,,,,,,,,,,,"; lines[2] != want {
		t.Errorf("decode_start row:\n got %s\nwant %s", lines[2], want)
	}
	// CPUBusy folds busy/cstate/idle into the state column; Playback
	// writes playing/paused there.
	if !strings.Contains(lines[7], ",busy,") {
		t.Errorf("busy row missing state: %s", lines[7])
	}
	if !strings.Contains(lines[8], ",C2,") {
		t.Errorf("idle row missing C-state: %s", lines[8])
	}
	if !strings.Contains(lines[12], ",playing,") {
		t.Errorf("playback row missing state: %s", lines[12])
	}
}

func TestCSVIdleWithoutCState(t *testing.T) {
	var sb strings.Builder
	s := NewCSV(&sb)
	s.CPUBusy(CPUBusyEvent{T: 1, Busy: false})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ",idle,") {
		t.Fatalf("want bare idle marker, got %q", sb.String())
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestSinkWriteErrorSurfacesOnClose(t *testing.T) {
	s := NewJSONL(&failWriter{n: 16})
	for i := 0; i < 10000; i++ {
		s.Playback(PlaybackEvent{T: sim.Time(i), Playing: true})
	}
	if err := s.Close(); err == nil {
		t.Fatal("want write error from Close")
	}
	if s.Err() == nil {
		t.Fatal("Err should report the sticky write error")
	}
}

// closeCounter records whether the sink closed its writer.
type closeCounter struct {
	strings.Builder
	closed int
}

func (c *closeCounter) Close() error { c.closed++; return nil }

func TestSinkClosesUnderlyingCloser(t *testing.T) {
	var cw closeCounter
	s := NewCSV(&cw)
	s.RRC(RRCEvent{T: 1, State: "IDLE"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if cw.closed != 1 {
		t.Fatalf("underlying writer closed %d times, want 1", cw.closed)
	}
}

func TestNopAndTee(t *testing.T) {
	c1, c2 := NewCollector(), NewCollector()
	tee := Tee{Nop{}, c1, c2}
	feedAll(tee)
	m1, m2 := c1.Finalize(2), c2.Finalize(2)
	if m1.Events != 13 || m2.Events != 13 {
		t.Fatalf("tee fan-out lost events: %d / %d, want 13", m1.Events, m2.Events)
	}
}

func TestFrameStageString(t *testing.T) {
	want := map[FrameStage]string{
		StageDecodeStart: "decode_start",
		StageDecodeEnd:   "decode_end",
		StageShown:       "frame_shown",
		StageDropped:     "frame_drop",
		FrameStage(0):    "?",
	}
	for stage, name := range want {
		if got := stage.String(); got != name {
			t.Errorf("stage %d = %q, want %q", stage, got, name)
		}
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCollectorRollup(t *testing.T) {
	c := NewCollector()

	// Decisions: one boost (no slack sample), one normal with a
	// prediction scored by the matching decode_end.
	c.Decision(DecisionEvent{T: 0, Frame: 0, OPP: 1, Boost: true})
	c.Decision(DecisionEvent{T: 1, Frame: 7, PredCycles: 3e7,
		Slack: 20 * sim.Millisecond, OPP: 0})
	c.Frame(FrameEvent{T: 1, Stage: StageDecodeStart, Frame: 7})
	c.Frame(FrameEvent{T: 1.01, Stage: StageDecodeEnd, Frame: 7, Cycles: 2.5e7})
	c.Frame(FrameEvent{T: 1.1, Stage: StageShown, Frame: 7})
	c.Frame(FrameEvent{T: 1.2, Stage: StageShown, Frame: 8})
	c.Frame(FrameEvent{T: 1.3, Stage: StageDropped, Frame: 9})

	// OPP dwell: 0 for [0, 0.5) and [2, 3), 1 for [0.5, 2).
	c.OPP(OPPEvent{T: 0.5, From: 0, To: 1, FreqHz: 2e9})
	c.OPP(OPPEvent{T: 2, From: 1, To: 0, FreqHz: 1e9})

	// RRC dwell: DCH [0.2, 2.2), FACH [2.2, 3).
	c.RRC(RRCEvent{T: 0.2, State: "DCH"})
	c.RRC(RRCEvent{T: 2.2, State: "FACH"})

	// ABR: initial pick (FromRung −1) is not a switch; the second is.
	c.ABR(ABREvent{T: 0.1, Segment: 0, FromRung: -1, ToRung: 2, RateBps: 4.5e6})
	c.ABR(ABREvent{T: 2.1, Segment: 5, FromRung: 2, ToRung: 1, RateBps: 2.5e6})

	// Power: cpu at 2 W over [0, 1.5), then 0.5 W to the end — the
	// integral crosses two bin boundaries.
	c.Power(PowerEvent{T: 0, Component: "cpu", Watts: 2})
	c.Power(PowerEvent{T: 1.5, Component: "cpu", Watts: 0.5})

	m := c.Finalize(3)

	if m.End != 3 {
		t.Errorf("End = %v", m.End)
	}
	if m.Events != 15 {
		t.Errorf("Events = %d, want 15", m.Events)
	}
	if m.Decisions != 2 || m.BoostDecisions != 1 {
		t.Errorf("decisions %d/%d, want 2/1", m.Decisions, m.BoostDecisions)
	}
	if m.DecisionOPP[0] != 1 || m.DecisionOPP[1] != 1 {
		t.Errorf("DecisionOPP = %v", m.DecisionOPP)
	}
	if len(m.SlackS) != 1 || !approx(m.SlackP(50), 0.02) {
		t.Errorf("slack = %v", m.SlackS)
	}
	if len(m.PredRelErr) != 1 || !approx(m.PredErrP(50), 0.2) {
		t.Errorf("pred rel err = %v, want [0.2]", m.PredRelErr)
	}
	if n := m.DecodeLatency.N(); n != 1 {
		t.Errorf("decode latency samples = %d, want 1", n)
	}
	if m.FramesShown != 2 || m.FramesDropped != 1 {
		t.Errorf("shown/dropped = %d/%d, want 2/1", m.FramesShown, m.FramesDropped)
	}
	if m.OPPSwitches != 2 {
		t.Errorf("OPPSwitches = %d, want 2", m.OPPSwitches)
	}
	if !approx(m.OPPResidency[0].Seconds(), 1.5) || !approx(m.OPPResidency[1].Seconds(), 1.5) {
		t.Errorf("OPPResidency = %v", m.OPPResidency)
	}
	if !approx(m.RRCResidency["DCH"].Seconds(), 2.0) || !approx(m.RRCResidency["FACH"].Seconds(), 0.8) {
		t.Errorf("RRCResidency = %v", m.RRCResidency)
	}
	if m.RungSwitches != 1 {
		t.Errorf("RungSwitches = %d, want 1", m.RungSwitches)
	}
	if !approx(m.EnergyJ["cpu"], 2*1.5+0.5*1.5) {
		t.Errorf("EnergyJ = %v, want 3.75", m.EnergyJ["cpu"])
	}
	// Timeline: [0,1) all at 2 W; [1,2) is 2 W for 0.5 s + 0.5 W for
	// 0.5 s; [2,3) at 0.5 W.
	if len(m.Timeline) != 3 {
		t.Fatalf("timeline bins = %d, want 3", len(m.Timeline))
	}
	for i, wantJ := range []float64{2, 1.25, 0.5} {
		if !approx(m.Timeline[i].J["cpu"], wantJ) {
			t.Errorf("bin %d = %v J, want %v", i, m.Timeline[i].J["cpu"], wantJ)
		}
		if m.Timeline[i].Start != sim.Time(i) {
			t.Errorf("bin %d start = %v", i, m.Timeline[i].Start)
		}
	}
}

func TestCollectorFinalizeUsesLatestEventTime(t *testing.T) {
	c := NewCollector()
	c.Power(PowerEvent{T: 0, Component: "cpu", Watts: 1})
	c.Playback(PlaybackEvent{T: 5, Playing: false})
	m := c.Finalize(2) // earlier than the last event
	if m.End != 5 {
		t.Fatalf("End = %v, want the last event time 5", m.End)
	}
	if !approx(m.EnergyJ["cpu"], 5) {
		t.Fatalf("EnergyJ = %v, want 5", m.EnergyJ["cpu"])
	}
}
