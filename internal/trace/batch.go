package trace

// Batcher buffers typed events in per-kind slices and replays them to the
// wrapped Tracer on Flush, in the exact order they were emitted. Emission
// inside the event loop then costs a typed append into a reused backing
// array instead of a call through the full downstream chain (tee → checker
// → encoder), and the downstream work happens in one cache-friendly sweep.
//
// Order fidelity: a one-byte-per-event kind tape records the interleaving,
// and Flush replays via per-kind cursors, so the wrapped tracer observes
// the identical event sequence — byte-identical sink output. The buffers
// retain their capacity across Flush calls, making a Batcher suitable for
// arena-reused sessions.
//
// The Batcher auto-flushes when the tape reaches batchCap, bounding memory
// for long traced runs. It is not safe for concurrent use; the simulation
// engine is single-threaded.
type Batcher struct {
	out Tracer

	kinds []uint8

	decisions []DecisionEvent
	frames    []FrameEvent
	opps      []OPPEvent
	busys     []CPUBusyEvent
	rrcs      []RRCEvent
	abrs      []ABREvent
	buffers   []BufferEvent
	playbacks []PlaybackEvent
	powers    []PowerEvent
}

// batchCap is the auto-flush threshold on the event tape.
const batchCap = 4096

// Event kind tags for the order tape.
const (
	kindDecision uint8 = iota
	kindFrame
	kindOPP
	kindCPUBusy
	kindRRC
	kindABR
	kindBuffer
	kindPlayback
	kindPower
)

// NewBatcher returns a Batcher forwarding to out on Flush.
func NewBatcher(out Tracer) *Batcher {
	return &Batcher{out: out, kinds: make([]uint8, 0, batchCap)}
}

// SetOutput repoints the batcher at a new downstream tracer and drops any
// buffered events (callers flush before rewiring). Buffer capacity is kept;
// this is the arena-reuse hook.
func (b *Batcher) SetOutput(out Tracer) {
	b.reset()
	b.out = out
}

// Flush replays all buffered events to the wrapped tracer in emission order
// and empties the buffers, retaining their capacity.
func (b *Batcher) Flush() {
	var di, fi, oi, ci, ri, ai, bi, pi, wi int
	for _, k := range b.kinds {
		switch k {
		case kindDecision:
			b.out.Decision(b.decisions[di])
			di++
		case kindFrame:
			b.out.Frame(b.frames[fi])
			fi++
		case kindOPP:
			b.out.OPP(b.opps[oi])
			oi++
		case kindCPUBusy:
			b.out.CPUBusy(b.busys[ci])
			ci++
		case kindRRC:
			b.out.RRC(b.rrcs[ri])
			ri++
		case kindABR:
			b.out.ABR(b.abrs[ai])
			ai++
		case kindBuffer:
			b.out.Buffer(b.buffers[bi])
			bi++
		case kindPlayback:
			b.out.Playback(b.playbacks[pi])
			pi++
		case kindPower:
			b.out.Power(b.powers[wi])
			wi++
		}
	}
	b.reset()
}

func (b *Batcher) reset() {
	b.kinds = b.kinds[:0]
	b.decisions = b.decisions[:0]
	b.frames = b.frames[:0]
	b.opps = b.opps[:0]
	b.busys = b.busys[:0]
	b.rrcs = b.rrcs[:0]
	b.abrs = b.abrs[:0]
	b.buffers = b.buffers[:0]
	b.playbacks = b.playbacks[:0]
	b.powers = b.powers[:0]
}

func (b *Batcher) full() bool { return len(b.kinds) >= batchCap }

// Decision implements Tracer.
func (b *Batcher) Decision(e DecisionEvent) {
	b.decisions = append(b.decisions, e)
	b.kinds = append(b.kinds, kindDecision)
	if b.full() {
		b.Flush()
	}
}

// Frame implements Tracer.
func (b *Batcher) Frame(e FrameEvent) {
	b.frames = append(b.frames, e)
	b.kinds = append(b.kinds, kindFrame)
	if b.full() {
		b.Flush()
	}
}

// OPP implements Tracer.
func (b *Batcher) OPP(e OPPEvent) {
	b.opps = append(b.opps, e)
	b.kinds = append(b.kinds, kindOPP)
	if b.full() {
		b.Flush()
	}
}

// CPUBusy implements Tracer.
func (b *Batcher) CPUBusy(e CPUBusyEvent) {
	b.busys = append(b.busys, e)
	b.kinds = append(b.kinds, kindCPUBusy)
	if b.full() {
		b.Flush()
	}
}

// RRC implements Tracer.
func (b *Batcher) RRC(e RRCEvent) {
	b.rrcs = append(b.rrcs, e)
	b.kinds = append(b.kinds, kindRRC)
	if b.full() {
		b.Flush()
	}
}

// ABR implements Tracer.
func (b *Batcher) ABR(e ABREvent) {
	b.abrs = append(b.abrs, e)
	b.kinds = append(b.kinds, kindABR)
	if b.full() {
		b.Flush()
	}
}

// Buffer implements Tracer.
func (b *Batcher) Buffer(e BufferEvent) {
	b.buffers = append(b.buffers, e)
	b.kinds = append(b.kinds, kindBuffer)
	if b.full() {
		b.Flush()
	}
}

// Playback implements Tracer.
func (b *Batcher) Playback(e PlaybackEvent) {
	b.playbacks = append(b.playbacks, e)
	b.kinds = append(b.kinds, kindPlayback)
	if b.full() {
		b.Flush()
	}
}

// Power implements Tracer.
func (b *Batcher) Power(e PowerEvent) {
	b.powers = append(b.powers, e)
	b.kinds = append(b.kinds, kindPower)
	if b.full() {
		b.Flush()
	}
}

var _ Tracer = (*Batcher)(nil)
