// Package trace is the simulation's structured observability layer: a
// Tracer interface receiving typed events from every simulated subsystem
// (governor decisions, frame decode lifecycle, OPP and C-state
// transitions, RRC state changes, ABR rung switches, buffer and power
// samples) plus a Collector that rolls a stream up into per-run Metrics.
//
// Emission is allocation-free by construction: events are small value
// structs passed to concrete interface methods (no boxing), and every
// emit site in the simulation guards with a nil check, so the default
// untraced run pays a single predictable branch per event and zero
// allocations.
//
// Determinism: the simulation engine is single-threaded and all model
// randomness derives from the run seed, so the event stream — order,
// timestamps, and payloads — is a pure function of the RunConfig. Sinks
// format floats with strconv's shortest round-trip representation, making
// JSONL and CSV output byte-identical across same-seed runs, platforms,
// and worker counts. The golden test in this package pins that contract.
package trace

import (
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// FrameStage is the lifecycle point a FrameEvent reports.
type FrameStage uint8

// Frame lifecycle stages.
const (
	// StageDecodeStart marks the frame's decode job being issued.
	StageDecodeStart FrameStage = iota + 1
	// StageDecodeEnd marks decode completion (Cycles carries the
	// measured demand).
	StageDecodeEnd
	// StageShown marks the frame reaching the display on time — a
	// deadline hit.
	StageShown
	// StageDropped marks a display slot skipped because decode was late.
	StageDropped
)

// String returns the stage's event name as used in sink output.
func (s FrameStage) String() string {
	switch s {
	case StageDecodeStart:
		return "decode_start"
	case StageDecodeEnd:
		return "decode_end"
	case StageShown:
		return "frame_shown"
	case StageDropped:
		return "frame_drop"
	default:
		return "?"
	}
}

// DecisionEvent is one governor frequency decision at decode start: what
// the policy predicted, how much slack it had, and which OPP it chose.
// Only decision-per-frame policies (energyaware, oracle) emit these; the
// oracle reports the frame's true demand as PredCycles.
type DecisionEvent struct {
	// T is the decision time.
	T sim.Time
	// Frame is the frame index in presentation order.
	Frame int
	// Type is the frame coding type.
	Type video.FrameType
	// PredCycles is the predicted decode demand (zero on cold-predictor
	// boosts, where no prediction exists yet).
	PredCycles float64
	// Slack is deadline − now − guard at decision time.
	Slack sim.Time
	// Budget is the time the queue-setpoint rule allotted the frame
	// (zero on boosts).
	Budget sim.Time
	// OPP is the chosen OPP index.
	OPP int
	// Boost reports a forced top-OPP decision (startup, cold predictor,
	// or exhausted slack).
	Boost bool
}

// FrameEvent is one frame lifecycle transition.
type FrameEvent struct {
	// T is the event time.
	T sim.Time
	// Stage is the lifecycle point.
	Stage FrameStage
	// Frame is the frame index.
	Frame int
	// Type is the coding type (zero for Shown/Dropped, which fire after
	// the coded frame is gone).
	Type video.FrameType
	// Deadline is the frame's scheduled display time (decode stages).
	Deadline sim.Time
	// Cycles is the measured decode demand (StageDecodeEnd only).
	Cycles float64
}

// OPPEvent is one DVFS operating-point transition.
type OPPEvent struct {
	// T is the transition time.
	T sim.Time
	// From and To are OPP indices.
	From, To int
	// FreqHz is the new operating frequency.
	FreqHz float64
}

// CPUBusyEvent is one busy/idle transition of the CPU core.
type CPUBusyEvent struct {
	// T is the transition time.
	T sim.Time
	// Busy reports whether the core started (true) or stopped (false)
	// executing.
	Busy bool
	// CState names the C-state entered on idle (empty without the
	// cpuidle model or on wake).
	CState string
}

// RRCEvent is one radio resource control state change.
type RRCEvent struct {
	// T is the transition time.
	T sim.Time
	// State is the new state's name (IDLE, FACH, DCH).
	State string
}

// ABREvent is one adaptation decision that changed the rendition rung
// (the initial pick fires with FromRung −1).
type ABREvent struct {
	// T is the decision time.
	T sim.Time
	// Segment is the segment index about to be fetched.
	Segment int
	// FromRung and ToRung are ladder indices.
	FromRung, ToRung int
	// RateBps is the new rung's bitrate.
	RateBps float64
}

// BufferEvent is one media-buffer level sample (each displayed frame and
// each segment arrival).
type BufferEvent struct {
	// T is the sample time.
	T sim.Time
	// LevelSec is the media buffer level in seconds of content.
	LevelSec float64
	// Ready and Cap are the decoded-queue occupancy and capacity.
	Ready, Cap int
}

// PlaybackEvent is one playback state transition (start, stall, resume,
// finish).
type PlaybackEvent struct {
	// T is the transition time.
	T sim.Time
	// Playing reports whether the display is consuming frames.
	Playing bool
}

// PowerEvent is one piecewise-constant power level change of a device
// component.
type PowerEvent struct {
	// T is the change time.
	T sim.Time
	// Component is the energy-meter component name (cpu, radio,
	// display).
	Component string
	// Watts is the new draw.
	Watts float64
}

// Tracer receives the simulation's typed event stream. Implementations
// must not retain references past the call (arguments are stack values)
// and must be cheap: they run inside the event loop. A nil Tracer in
// RunConfig disables tracing entirely; emit sites never call through a
// nil interface.
type Tracer interface {
	// Decision receives governor frequency decisions.
	Decision(DecisionEvent)
	// Frame receives frame lifecycle transitions.
	Frame(FrameEvent)
	// OPP receives DVFS transitions.
	OPP(OPPEvent)
	// CPUBusy receives core busy/idle transitions.
	CPUBusy(CPUBusyEvent)
	// RRC receives radio state changes.
	RRC(RRCEvent)
	// ABR receives rung switches.
	ABR(ABREvent)
	// Buffer receives media-buffer samples.
	Buffer(BufferEvent)
	// Playback receives playback state transitions.
	Playback(PlaybackEvent)
	// Power receives component power changes.
	Power(PowerEvent)
}

// Sink is a Tracer writing to an external medium; Close flushes buffers
// and releases the underlying writer (closing it when it implements
// io.Closer).
type Sink interface {
	Tracer
	// Close flushes and releases the sink. It must be called once,
	// after the run completes.
	Close() error
}

// Nop is the no-op Tracer: every method does nothing. It exists for
// embedding and for call sites that want a non-nil default; the
// simulation's own hot paths use nil checks instead so the untraced
// path stays allocation- and call-free.
type Nop struct{}

// Decision implements Tracer.
func (Nop) Decision(DecisionEvent) {}

// Frame implements Tracer.
func (Nop) Frame(FrameEvent) {}

// OPP implements Tracer.
func (Nop) OPP(OPPEvent) {}

// CPUBusy implements Tracer.
func (Nop) CPUBusy(CPUBusyEvent) {}

// RRC implements Tracer.
func (Nop) RRC(RRCEvent) {}

// ABR implements Tracer.
func (Nop) ABR(ABREvent) {}

// Buffer implements Tracer.
func (Nop) Buffer(BufferEvent) {}

// Playback implements Tracer.
func (Nop) Playback(PlaybackEvent) {}

// Power implements Tracer.
func (Nop) Power(PowerEvent) {}

var _ Tracer = Nop{}

// Tee fans every event out to each child in order. Children that are
// also Sinks are not closed by the tee; close them individually.
type Tee []Tracer

// Decision implements Tracer.
func (t Tee) Decision(e DecisionEvent) {
	for _, c := range t {
		c.Decision(e)
	}
}

// Frame implements Tracer.
func (t Tee) Frame(e FrameEvent) {
	for _, c := range t {
		c.Frame(e)
	}
}

// OPP implements Tracer.
func (t Tee) OPP(e OPPEvent) {
	for _, c := range t {
		c.OPP(e)
	}
}

// CPUBusy implements Tracer.
func (t Tee) CPUBusy(e CPUBusyEvent) {
	for _, c := range t {
		c.CPUBusy(e)
	}
}

// RRC implements Tracer.
func (t Tee) RRC(e RRCEvent) {
	for _, c := range t {
		c.RRC(e)
	}
}

// ABR implements Tracer.
func (t Tee) ABR(e ABREvent) {
	for _, c := range t {
		c.ABR(e)
	}
}

// Buffer implements Tracer.
func (t Tee) Buffer(e BufferEvent) {
	for _, c := range t {
		c.Buffer(e)
	}
}

// Playback implements Tracer.
func (t Tee) Playback(e PlaybackEvent) {
	for _, c := range t {
		c.Playback(e)
	}
}

// Power implements Tracer.
func (t Tee) Power(e PowerEvent) {
	for _, c := range t {
		c.Power(e)
	}
}

var _ Tracer = Tee{}
