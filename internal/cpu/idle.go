package cpu

import (
	"fmt"

	"videodvfs/internal/sim"
)

// CState is one idle state of the core, mirroring cpuidle: deeper states
// draw less power but cost more to enter/exit and only pay off for idle
// periods longer than their target residency.
type CState struct {
	// Name is the cpuidle-style state name.
	Name string
	// PowerFrac scales the OPP's clock-gated idle power in this state.
	PowerFrac float64
	// ExitLatency stalls the first job after wakeup.
	ExitLatency sim.Time
	// TargetResidency is the minimum profitable idle length.
	TargetResidency sim.Time
}

// DefaultCStates returns a phone-class three-state ladder: WFI, core
// retention, and full power collapse.
func DefaultCStates() []CState {
	return []CState{
		{Name: "wfi", PowerFrac: 1.00, ExitLatency: 5 * sim.Microsecond, TargetResidency: 0},
		{Name: "retention", PowerFrac: 0.45, ExitLatency: 100 * sim.Microsecond, TargetResidency: 500 * sim.Microsecond},
		{Name: "power-collapse", PowerFrac: 0.08, ExitLatency: sim.Millisecond, TargetResidency: 3 * sim.Millisecond},
	}
}

// validateCStates checks ladder ordering.
func validateCStates(states []CState) error {
	if len(states) == 0 {
		return fmt.Errorf("cpuidle: empty state ladder")
	}
	for i, st := range states {
		if st.PowerFrac < 0 || st.PowerFrac > 1 {
			return fmt.Errorf("cpuidle: state %q power fraction %v outside [0, 1]", st.Name, st.PowerFrac)
		}
		if st.ExitLatency < 0 || st.TargetResidency < 0 {
			return fmt.Errorf("cpuidle: state %q has negative latencies", st.Name)
		}
		if i > 0 {
			prev := states[i-1]
			if st.PowerFrac >= prev.PowerFrac {
				return fmt.Errorf("cpuidle: state %q does not deepen power", st.Name)
			}
			if st.TargetResidency <= prev.TargetResidency {
				return fmt.Errorf("cpuidle: state %q does not deepen residency", st.Name)
			}
		}
	}
	return nil
}

// idleGovernor is a menu-style idle-state selector: it predicts the next
// idle period from an EWMA of recent ones and picks the deepest state
// whose target residency fits the prediction.
type idleGovernor struct {
	states []CState
	// predicted idle length, EWMA-smoothed.
	predS float64
	init  bool
}

const idleEWMAAlpha = 0.3

func (g *idleGovernor) pick() int {
	if !g.init {
		return 0 // no history: shallowest state
	}
	choice := 0
	for i, st := range g.states {
		if g.predS >= st.TargetResidency.Seconds() {
			choice = i
		}
	}
	return choice
}

func (g *idleGovernor) observe(idle sim.Time) {
	s := idle.Seconds()
	if !g.init {
		g.predS = s
		g.init = true
		return
	}
	g.predS = idleEWMAAlpha*s + (1-idleEWMAAlpha)*g.predS
}

// EnableCStates turns on the cpuidle model: idle periods enter the state
// the menu governor selects, idle power scales by the state's PowerFrac,
// and wakeups stall the next job by the state's exit latency. Must be
// called before any job is submitted.
func (c *Core) EnableCStates(states []CState) error {
	if err := validateCStates(states); err != nil {
		return err
	}
	if c.busy || c.QueueLen() > 0 {
		return fmt.Errorf("cpuidle: enable before submitting work")
	}
	c.idle = &idleGovernor{states: states}
	c.idleStateIdx = 0
	if len(c.idleDwell) == len(states) {
		for i := range c.idleDwell {
			c.idleDwell[i] = 0
		}
	} else {
		c.idleDwell = make([]sim.Time, len(states))
	}
	c.emitPower()
	return nil
}

// IdleState returns the name of the current idle state ("" when busy or
// when C-states are disabled).
func (c *Core) IdleState() string {
	if c.idle == nil || c.busy {
		return ""
	}
	return c.idle.states[c.idleStateIdx].Name
}

// IdleStateResidency returns seconds spent in each C-state so far (nil
// when disabled).
func (c *Core) IdleStateResidency() map[string]sim.Time {
	if c.idle == nil {
		return nil
	}
	out := make(map[string]sim.Time, len(c.idleDwell))
	c.IdleStateResidencyInto(out)
	return out
}

// IdleStateResidencyInto fills out with seconds spent in each C-state so
// far, clearing it first; with C-states disabled it only clears. It is the
// allocation-free variant of IdleStateResidency for result structs that
// recycle their maps across runs.
func (c *Core) IdleStateResidencyInto(out map[string]sim.Time) {
	clear(out)
	if c.idle == nil {
		return
	}
	for i, v := range c.idleDwell {
		if v > 0 {
			out[c.idle.states[i].Name] = v
		}
	}
	if !c.busy {
		out[c.idle.states[c.idleStateIdx].Name] += c.eng.Now() - c.idleSince
	}
}
