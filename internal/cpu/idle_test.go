package cpu

import (
	"math"
	"testing"

	"videodvfs/internal/sim"
)

func idleRig(t *testing.T) (*sim.Engine, *Core) {
	t.Helper()
	eng := sim.NewEngine()
	core, err := NewCore(eng, testModel(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.EnableCStates(DefaultCStates()); err != nil {
		t.Fatal(err)
	}
	return eng, core
}

func TestCStateLadderValidation(t *testing.T) {
	if err := validateCStates(nil); err == nil {
		t.Error("want error for empty ladder")
	}
	bad := DefaultCStates()
	bad[1].PowerFrac = 1.0 // does not deepen
	if err := validateCStates(bad); err == nil {
		t.Error("want error for non-deepening power")
	}
	bad = DefaultCStates()
	bad[2].TargetResidency = 0
	if err := validateCStates(bad); err == nil {
		t.Error("want error for non-deepening residency")
	}
	bad = DefaultCStates()
	bad[0].PowerFrac = 2
	if err := validateCStates(bad); err == nil {
		t.Error("want error for power fraction > 1")
	}
	if err := validateCStates(DefaultCStates()); err != nil {
		t.Errorf("default ladder invalid: %v", err)
	}
}

func TestEnableCStatesRejectsBusyCore(t *testing.T) {
	eng := sim.NewEngine()
	core, err := NewCore(eng, testModel(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Submit(&Job{Cycles: 1e9, Tag: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := core.EnableCStates(DefaultCStates()); err == nil {
		t.Fatal("want error enabling C-states on a busy core")
	}
	eng.Run()
}

func TestMenuGovernorDeepensAfterLongIdles(t *testing.T) {
	eng, core := idleRig(t)
	// First idle period has no history → WFI.
	if core.IdleState() != "wfi" {
		t.Fatalf("initial state %q, want wfi", core.IdleState())
	}
	// Jobs 100 ms apart teach the predictor long idles.
	for i := 0; i < 5; i++ {
		at := sim.Time(i) * 100 * sim.Millisecond
		eng.At(at, func() {
			_ = core.Submit(&Job{Cycles: 1e6, Tag: "tick"})
		})
	}
	var lastState string
	eng.At(450*sim.Millisecond, func() { lastState = core.IdleState() })
	eng.Run()
	if lastState != "power-collapse" {
		t.Fatalf("after long idles state %q, want power-collapse", lastState)
	}
}

func TestMenuGovernorStaysShallowForShortIdles(t *testing.T) {
	eng, core := idleRig(t)
	// 1e6-cycle jobs every 1.2 ms at 1 GHz → ~0.2 ms idles: retention's
	// 0.5 ms target never fits.
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 1200 * sim.Microsecond
		eng.At(at, func() {
			_ = core.Submit(&Job{Cycles: 1e6, Tag: "tick"})
		})
	}
	var state string
	eng.At(119900*sim.Microsecond, func() { state = core.IdleState() })
	eng.Run()
	if state != "wfi" {
		t.Fatalf("short-idle state %q, want wfi", state)
	}
}

func TestDeepIdleCutsPower(t *testing.T) {
	eng, core := idleRig(t)
	// Teach long idles, then compare idle power against clock gating.
	eng.At(100*sim.Millisecond, func() {
		_ = core.Submit(&Job{Cycles: 1e6, Tag: "t"})
	})
	var deepPower float64
	eng.At(200*sim.Millisecond, func() { deepPower = core.Power() })
	eng.Run()
	shallow := core.Model().OPPs[0].IdleW
	want := shallow * DefaultCStates()[2].PowerFrac
	if math.Abs(deepPower-want) > 1e-12 {
		t.Fatalf("deep idle power %v, want %v", deepPower, want)
	}
}

func TestWakeupPaysExitLatency(t *testing.T) {
	eng, core := idleRig(t)
	// Train to power-collapse (1 ms exit latency).
	eng.At(100*sim.Millisecond, func() { _ = core.Submit(&Job{Cycles: 1e6, Tag: "a"}) })
	var done sim.Time
	eng.At(300*sim.Millisecond, func() {
		_ = core.Submit(&Job{Cycles: 1e6, Tag: "b", OnDone: func(now sim.Time) { done = now }})
	})
	eng.Run()
	// 1e6 cycles at 1 GHz = 1 ms, plus the 1 ms power-collapse exit.
	want := 300*sim.Millisecond + sim.Millisecond + sim.Millisecond
	if math.Abs(float64(done-want)) > 1e-9 {
		t.Fatalf("job done at %v, want %v (exit latency unpaid)", done, want)
	}
}

func TestIdleStateResidencyAccounting(t *testing.T) {
	eng, core := idleRig(t)
	eng.At(50*sim.Millisecond, func() { _ = core.Submit(&Job{Cycles: 1e6, Tag: "t"}) })
	eng.At(200*sim.Millisecond, func() { eng.Stop() })
	eng.Run()
	res := core.IdleStateResidency()
	if res == nil {
		t.Fatal("residency nil with C-states enabled")
	}
	var total sim.Time
	for _, d := range res {
		total += d
	}
	// Total idle ≈ 200 ms − 1 ms busy − exit stall; allow slack.
	if total < 190*sim.Millisecond || total > 200*sim.Millisecond {
		t.Fatalf("idle residency %v implausible", total)
	}
	if res["wfi"] == 0 {
		t.Fatalf("first idle period should be WFI: %v", res)
	}
}

func TestIdleStateDisabledReturnsNil(t *testing.T) {
	eng := sim.NewEngine()
	core, err := NewCore(eng, testModel(0))
	if err != nil {
		t.Fatal(err)
	}
	if core.IdleStateResidency() != nil || core.IdleState() != "" {
		t.Fatal("disabled C-states should report nothing")
	}
}
