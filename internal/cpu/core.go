package cpu

import (
	"fmt"

	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
)

// Priority orders queued jobs; lower values run first. Within a priority,
// jobs run FIFO. Execution is non-preemptive, as with small CFS timeslices
// and the millisecond-scale jobs this model uses.
type Priority int

// Job priorities used by the streaming pipeline.
const (
	// PrioDecode is for frame-decode jobs (latency critical).
	PrioDecode Priority = iota
	// PrioNetwork is for network-stack processing of received data.
	PrioNetwork
	// PrioBackground is for player UI and OS housekeeping work.
	PrioBackground
)

// Job is a unit of CPU work measured in cycles.
type Job struct {
	// Cycles is the demand; must be positive.
	Cycles float64
	// Priority selects the queue (see Priority).
	Priority Priority
	// Tag labels the job in accounting (e.g. "decode", "net").
	Tag string
	// OnStart, if set, runs when the job begins executing.
	OnStart func(now sim.Time)
	// OnDone, if set, runs when the job completes.
	OnDone func(now sim.Time)

	// pool, when non-nil, receives the job back after completion (see
	// JobPool). Steady-state submitters recycle jobs instead of
	// allocating one per submission.
	pool *JobPool
}

// JobPool recycles Job structs so steady-state submitters allocate
// nothing: Get a job, fill its fields, Submit it, and the core returns it
// to the pool after OnDone runs. The simulation is single-threaded, so the
// pool needs no locking. Jobs taken from a pool must not be retained after
// their OnDone callback returns.
type JobPool struct {
	free []*Job
}

// Get returns a job with zeroed fields, reusing a recycled one if
// available.
func (p *JobPool) Get() *Job {
	if n := len(p.free); n > 0 {
		j := p.free[n-1]
		p.free = p.free[:n-1]
		return j
	}
	return &Job{pool: p}
}

// put clears the job's fields and returns it to the free list.
func (p *JobPool) put(j *Job) {
	j.Cycles = 0
	j.Priority = 0
	j.Tag = ""
	j.OnStart = nil
	j.OnDone = nil
	p.free = append(p.free, j)
}

// jobQueue is a FIFO with a read cursor: Pop advances head instead of
// re-slicing, so the backing array is reused once drained and steady-state
// queueing allocates nothing.
type jobQueue struct {
	buf  []*Job
	head int
}

func (q *jobQueue) push(j *Job) { q.buf = append(q.buf, j) }

func (q *jobQueue) pop() *Job {
	j := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return j
}

func (q *jobQueue) len() int { return len(q.buf) - q.head }

type runningJob struct {
	job       *Job
	remaining float64
	resumedAt sim.Time
}

// Core is a single execution core in a frequency domain. It is the only
// entity that consumes CPU power in the model; governors steer it through
// SetOPP, workloads feed it through Submit.
type Core struct {
	eng   *sim.Engine
	model Model

	oppIdx  int
	capIdx  int // highest OPP currently allowed (thermal throttling)
	queues  [PrioBackground + 1]jobQueue
	current runningJob
	running bool
	doneEv  sim.Event
	// completeFn is the pre-bound completion callback; binding it once
	// keeps rearmCompletion allocation-free.
	completeFn func()
	// stallUntil is the end of an in-flight DVFS transition stall.
	stallUntil sim.Time

	totalBusy   sim.Time
	busySince   sim.Time
	busy        bool
	cyclesByTag map[string]float64

	onPower func(now sim.Time, watts float64)
	onOPP   func(now sim.Time, idx int)
	onBusy  func(now sim.Time, busy bool)
	tracer  trace.Tracer
	// freqDwell is indexed by OPP (hot path); FreqResidency converts to a
	// map at the reporting boundary.
	freqDwell   []sim.Time
	lastDwell   sim.Time
	transitions int

	// cpuidle model (nil unless EnableCStates was called).
	idle         *idleGovernor
	idleStateIdx int
	idleSince    sim.Time
	// idleDwell is indexed by C-state (hot path); IdleStateResidency
	// converts to a map at the reporting boundary.
	idleDwell []sim.Time
}

// NewCore returns a core for the given model, parked at the lowest OPP.
func NewCore(eng *sim.Engine, model Model) (*Core, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		eng:         eng,
		model:       model,
		capIdx:      model.MaxIdx(),
		cyclesByTag: make(map[string]float64),
		freqDwell:   make([]sim.Time, len(model.OPPs)),
	}
	c.completeFn = c.complete
	return c, nil
}

// Reset rewinds the core to the state NewCore would construct for model,
// keeping its allocations: queue backing arrays, the dwell table (when the
// OPP count matches), the per-tag accounting map, and the pre-bound
// completion callback all survive. Queued and in-flight jobs are returned
// to their pools so recycled submitters find them again; listeners and the
// tracer are dropped (the next run re-registers its own); the cpuidle
// model is disabled until EnableCStates is called again. The owning engine
// must be reset (or drained) alongside, since any pending completion event
// is simply forgotten here.
func (c *Core) Reset(model Model) error {
	if err := model.Validate(); err != nil {
		return err
	}
	for p := range c.queues {
		q := &c.queues[p]
		for q.len() > 0 {
			j := q.pop()
			if j.pool != nil {
				j.pool.put(j)
			}
		}
	}
	if c.running {
		if j := c.current.job; j != nil && j.pool != nil {
			j.pool.put(j)
		}
	}
	c.model = model
	c.oppIdx = 0
	c.capIdx = model.MaxIdx()
	c.current = runningJob{}
	c.running = false
	c.doneEv = sim.Event{}
	c.stallUntil = 0
	c.totalBusy = 0
	c.busySince = 0
	c.busy = false
	clear(c.cyclesByTag)
	c.onPower = nil
	c.onOPP = nil
	c.onBusy = nil
	c.tracer = nil
	if len(c.freqDwell) == len(model.OPPs) {
		for i := range c.freqDwell {
			c.freqDwell[i] = 0
		}
	} else {
		c.freqDwell = make([]sim.Time, len(model.OPPs))
	}
	c.lastDwell = 0
	c.transitions = 0
	c.idle = nil
	c.idleStateIdx = 0
	c.idleSince = 0
	return nil
}

// Model returns the device model the core runs.
func (c *Core) Model() Model { return c.model }

// OPP returns the current OPP index.
func (c *Core) OPP() int { return c.oppIdx }

// FreqHz returns the current clock in Hz.
func (c *Core) FreqHz() float64 { return c.model.OPPs[c.oppIdx].FreqHz }

// Busy reports whether a job is executing now.
func (c *Core) Busy() bool { return c.busy }

// QueueLen returns the number of queued (not running) jobs.
func (c *Core) QueueLen() int {
	n := 0
	for p := range c.queues {
		n += c.queues[p].len()
	}
	return n
}

// OnPower registers the power-change listener (at most one; the energy
// meter). It is invoked immediately with the current draw.
func (c *Core) OnPower(fn func(now sim.Time, watts float64)) {
	c.onPower = fn
	c.emitPower()
}

// OnOPPChange registers a listener for OPP changes (residency tracking).
func (c *Core) OnOPPChange(fn func(now sim.Time, idx int)) { c.onOPP = fn }

// OnBusyChange registers a listener for busy/idle transitions.
func (c *Core) OnBusyChange(fn func(now sim.Time, busy bool)) { c.onBusy = fn }

// SetTracer attaches a structured tracer receiving OPP transitions and
// busy/idle (C-state) events. nil disables tracing; the untraced path
// performs no calls and no allocations.
func (c *Core) SetTracer(tr trace.Tracer) { c.tracer = tr }

// Power returns the current draw in watts.
func (c *Core) Power() float64 {
	opp := c.model.OPPs[c.oppIdx]
	if c.busy {
		return opp.ActiveW
	}
	if c.idle != nil {
		return opp.IdleW * c.idle.states[c.idleStateIdx].PowerFrac
	}
	return opp.IdleW
}

func (c *Core) emitPower() {
	if c.onPower != nil {
		c.onPower(c.eng.Now(), c.Power())
	}
}

// BusyTime returns cumulative busy seconds including any in-flight job.
func (c *Core) BusyTime() sim.Time {
	t := c.totalBusy
	if c.busy {
		t += c.eng.Now() - c.busySince
	}
	return t
}

// CyclesByTag returns cumulative completed cycles grouped by job tag.
func (c *Core) CyclesByTag() map[string]float64 {
	out := make(map[string]float64, len(c.cyclesByTag))
	for k, v := range c.cyclesByTag {
		out[k] = v
	}
	return out
}

// Transitions returns the number of OPP changes so far.
func (c *Core) Transitions() int { return c.transitions }

// FreqResidency returns seconds spent at each OPP index so far.
func (c *Core) FreqResidency() map[int]sim.Time {
	out := make(map[int]sim.Time, len(c.freqDwell))
	c.FreqResidencyInto(out)
	return out
}

// FreqResidencyInto fills out with seconds spent at each OPP index so far,
// clearing it first. It is the allocation-free variant of FreqResidency
// for result structs that recycle their maps across runs.
func (c *Core) FreqResidencyInto(out map[int]sim.Time) {
	clear(out)
	for idx, d := range c.freqDwell {
		if d > 0 {
			out[idx] = d
		}
	}
	out[c.oppIdx] += c.eng.Now() - c.lastDwell
}

// Submit enqueues a job. Jobs with non-positive cycles complete
// immediately.
func (c *Core) Submit(j *Job) error {
	if j == nil {
		return fmt.Errorf("cpu: nil job")
	}
	if j.Priority < PrioDecode || j.Priority > PrioBackground {
		return fmt.Errorf("cpu: job %q has invalid priority %d", j.Tag, j.Priority)
	}
	if j.Cycles <= 0 {
		now := c.eng.Now()
		if j.OnStart != nil {
			j.OnStart(now)
		}
		if j.OnDone != nil {
			j.OnDone(now)
		}
		if j.pool != nil {
			j.pool.put(j)
		}
		return nil
	}
	c.queues[j.Priority].push(j)
	if !c.busy {
		c.dispatch()
	}
	return nil
}

// SetOPPCap limits the highest OPP the domain may run at (thermal
// throttling). If the core currently runs above the cap it is forced down
// immediately. Passing the table's maximum removes the cap.
func (c *Core) SetOPPCap(idx int) {
	if idx < 0 {
		idx = 0
	}
	if idx > c.model.MaxIdx() {
		idx = c.model.MaxIdx()
	}
	c.capIdx = idx
	if c.oppIdx > idx {
		c.SetOPP(idx)
	}
}

// OPPCap returns the current throttling cap (the table maximum when
// unthrottled).
func (c *Core) OPPCap() int { return c.capIdx }

// SetOPP switches the frequency domain to OPP index idx (clamped to the
// table and the throttling cap). If a job is mid-flight its completion is
// recomputed with the remaining cycles, plus the model's transition stall.
func (c *Core) SetOPP(idx int) {
	if idx < 0 {
		idx = 0
	}
	if idx > c.capIdx {
		idx = c.capIdx
	}
	if idx == c.oppIdx {
		return
	}
	now := c.eng.Now()
	from := c.oppIdx
	c.freqDwell[c.oppIdx] += now - c.lastDwell
	c.lastDwell = now
	c.transitions++
	if c.running {
		// Charge cycles retired so far at the old frequency, then
		// restart the remainder at the new one after the stall.
		elapsed := now - c.current.resumedAt
		c.current.remaining -= elapsed.Seconds() * c.FreqHz()
		if c.current.remaining < 0 {
			c.current.remaining = 0
		}
		c.oppIdx = idx
		c.stallUntil = now + c.model.TransitionLatency
		c.current.resumedAt = c.stallUntil
		c.rearmCompletion()
	} else {
		c.oppIdx = idx
	}
	if c.onOPP != nil {
		c.onOPP(now, idx)
	}
	if c.tracer != nil {
		c.tracer.OPP(trace.OPPEvent{T: now, From: from, To: idx, FreqHz: c.model.OPPs[idx].FreqHz})
	}
	c.emitPower()
}

// SetFreq switches to the lowest OPP with frequency ≥ hz.
func (c *Core) SetFreq(hz float64) { c.SetOPP(c.model.IdxForFreq(hz)) }

func (c *Core) rearmCompletion() {
	c.eng.Cancel(c.doneEv)
	finish := c.current.resumedAt + sim.Time(c.current.remaining/c.FreqHz())
	c.doneEv = c.eng.At(finish, c.completeFn)
}

func (c *Core) dispatch() {
	var next *Job
	for p := range c.queues {
		if c.queues[p].len() > 0 {
			next = c.queues[p].pop()
			break
		}
	}
	if next == nil {
		if c.busy {
			now := c.eng.Now()
			c.totalBusy += now - c.busySince
			c.busy = false
			if c.idle != nil {
				// Enter the C-state the menu governor selects.
				c.idleStateIdx = c.idle.pick()
				c.idleSince = now
			}
			if c.onBusy != nil {
				c.onBusy(now, false)
			}
			if c.tracer != nil {
				ev := trace.CPUBusyEvent{T: now}
				if c.idle != nil {
					ev.CState = c.idle.states[c.idleStateIdx].Name
				}
				c.tracer.CPUBusy(ev)
			}
			c.emitPower()
		}
		return
	}
	now := c.eng.Now()
	if !c.busy {
		if c.idle != nil {
			// Wake from the C-state: score the prediction and pay the
			// exit latency before the job may start.
			st := c.idle.states[c.idleStateIdx]
			idleDur := now - c.idleSince
			c.idle.observe(idleDur)
			c.idleDwell[c.idleStateIdx] += idleDur
			if wake := now + st.ExitLatency; wake > c.stallUntil {
				c.stallUntil = wake
			}
		}
		c.busy = true
		c.busySince = now
		if c.onBusy != nil {
			c.onBusy(now, true)
		}
		if c.tracer != nil {
			c.tracer.CPUBusy(trace.CPUBusyEvent{T: now, Busy: true})
		}
		c.emitPower()
	}
	start := now
	if c.stallUntil > start {
		start = c.stallUntil
	}
	c.current = runningJob{job: next, remaining: next.Cycles, resumedAt: start}
	c.running = true
	if next.OnStart != nil {
		next.OnStart(now)
	}
	c.rearmCompletion()
}

func (c *Core) complete() {
	job := c.current.job
	c.cyclesByTag[job.Tag] += job.Cycles
	c.current = runningJob{}
	c.running = false
	c.doneEv = sim.Event{}
	if job.OnDone != nil {
		job.OnDone(c.eng.Now())
	}
	if job.pool != nil {
		job.pool.put(job)
	}
	c.dispatch()
}

// UtilSampler computes windowed utilization the way cpufreq samplers do:
// the fraction of wall time the core was busy since the previous sample.
type UtilSampler struct {
	core     *Core
	lastBusy sim.Time
	lastAt   sim.Time
}

// NewUtilSampler returns a sampler anchored at the current time.
func NewUtilSampler(core *Core) *UtilSampler {
	return &UtilSampler{core: core, lastBusy: core.BusyTime(), lastAt: core.eng.Now()}
}

// Sample returns utilization in [0, 1] over the window since the last
// call (or construction) and re-anchors the window.
func (s *UtilSampler) Sample(now sim.Time) float64 {
	busy := s.core.BusyTime()
	dt := now - s.lastAt
	db := busy - s.lastBusy
	s.lastAt = now
	s.lastBusy = busy
	if dt <= 0 {
		return 0
	}
	u := float64(db / dt)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}
