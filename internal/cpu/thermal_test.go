package cpu

import (
	"math"
	"testing"

	"videodvfs/internal/sim"
)

func thermalRig(t *testing.T) (*sim.Engine, *Core) {
	t.Helper()
	eng := sim.NewEngine()
	core, err := NewCore(eng, DeviceFlagship())
	if err != nil {
		t.Fatal(err)
	}
	return eng, core
}

// saturate keeps the core 100% busy by resubmitting work.
func saturate(eng *sim.Engine, core *Core) {
	var feed func(sim.Time)
	feed = func(sim.Time) {
		_ = core.Submit(&Job{Cycles: 1e8, Tag: "burn", OnDone: feed})
	}
	feed(0)
}

func TestThermalConvergesToSteadyState(t *testing.T) {
	eng, core := thermalRig(t)
	cfg := DefaultThermalConfig()
	cfg.TripC = 500 // never throttle in this test
	th, err := StartThermal(eng, core, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Stop()
	core.SetOPP(core.Model().MaxIdx())
	saturate(eng, core)
	eng.Schedule(5*sim.Minute, func() { eng.Stop() })
	eng.Run()
	wantSS := cfg.AmbientC + core.Model().OPPs[core.Model().MaxIdx()].ActiveW*cfg.RthCPerW
	if math.Abs(th.TempC()-wantSS) > 1 {
		t.Fatalf("temperature %.1f °C, want steady state ≈ %.1f °C", th.TempC(), wantSS)
	}
}

func TestThermalCoolsWhenIdle(t *testing.T) {
	eng, core := thermalRig(t)
	cfg := DefaultThermalConfig()
	cfg.InitialC = 80
	cfg.TripC = 500
	th, err := StartThermal(eng, core, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Stop()
	eng.Schedule(5*sim.Minute, func() { eng.Stop() })
	eng.Run()
	// Idle at fmin: steady state barely above ambient.
	if th.TempC() > cfg.AmbientC+5 {
		t.Fatalf("idle core stayed hot: %.1f °C", th.TempC())
	}
	if th.MaxTempC() < 80 {
		t.Fatalf("max temp %.1f should remember the initial 80 °C", th.MaxTempC())
	}
}

func TestThermalThrottlesAndRecovers(t *testing.T) {
	eng, core := thermalRig(t)
	cfg := DefaultThermalConfig()
	cfg.TripC = 50 // low trip: saturated fmax trips quickly
	th, err := StartThermal(eng, core, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Stop()
	core.SetOPP(core.Model().MaxIdx())
	saturate(eng, core)
	eng.Schedule(3*sim.Minute, func() { eng.Stop() })
	eng.Run()
	if th.ThrottleEvents() == 0 {
		t.Fatal("saturated core never throttled")
	}
	if th.ThrottledTime() <= 0 {
		t.Fatal("throttled time not accounted")
	}
	if th.MaxTempC() > cfg.TripC+5 {
		t.Fatalf("peak %.1f °C ran away past trip %v", th.MaxTempC(), cfg.TripC)
	}
	// Under sustained saturation the power-budget cap stays engaged and
	// the temperature settles just below the trip.
	if !th.Throttled() {
		t.Fatal("saturated core should remain throttled")
	}
	if core.OPPCap() >= core.Model().MaxIdx() {
		t.Fatalf("cap %d should sit below max under sustained load", core.OPPCap())
	}
	budgetW := (cfg.TripC - cfg.AmbientC) / cfg.RthCPerW
	if got := core.Model().OPPs[core.OPPCap()].ActiveW; got > budgetW {
		t.Fatalf("capped OPP draws %.2f W, budget %.2f W", got, budgetW)
	}
}

func TestSetOPPCapForcesDown(t *testing.T) {
	eng, core := thermalRig(t)
	core.SetOPP(core.Model().MaxIdx())
	core.SetOPPCap(3)
	if core.OPP() != 3 {
		t.Fatalf("OPP %d, want forced to cap 3", core.OPP())
	}
	core.SetOPP(10) // requests above the cap clamp
	if core.OPP() != 3 {
		t.Fatalf("OPP %d, want clamped at 3", core.OPP())
	}
	core.SetOPPCap(core.Model().MaxIdx())
	core.SetOPP(10)
	if core.OPP() != 10 {
		t.Fatalf("OPP %d after cap removal, want 10", core.OPP())
	}
	eng.Run()
}

func TestThermalConfigValidation(t *testing.T) {
	bad := []func(*ThermalConfig){
		func(c *ThermalConfig) { c.RthCPerW = 0 },
		func(c *ThermalConfig) { c.Tau = 0 },
		func(c *ThermalConfig) { c.TripC = c.AmbientC },
		func(c *ThermalConfig) { c.HystC = -1 },
		func(c *ThermalConfig) { c.Sample = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultThermalConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}
