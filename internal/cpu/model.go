// Package cpu models a mobile SoC CPU frequency domain: its table of
// operating performance points (OPPs), the power drawn at each point, DVFS
// transition latency, and a single execution core that runs cycle-counted
// jobs under the control of a cpufreq governor.
//
// The model is event-granular, not cycle-granular: a job of W cycles at
// frequency f completes W/f seconds after it starts, and an OPP change
// mid-job reschedules the completion with the remaining cycles. Governors
// observe exactly what Linux cpufreq governors observe — windowed
// utilization and the current OPP index.
package cpu

import (
	"fmt"
	"math"

	"videodvfs/internal/sim"
)

// OPP is one operating performance point of the frequency domain.
type OPP struct {
	// FreqHz is the core clock in Hz.
	FreqHz float64
	// VoltageV is the supply voltage at this point, in volts.
	VoltageV float64
	// ActiveW is the power drawn when the core is 100% busy, in watts.
	ActiveW float64
	// IdleW is the power drawn when the core is clock-gated but the
	// domain still holds this OPP's voltage, in watts.
	IdleW float64
}

// Model describes a device's CPU frequency domain.
type Model struct {
	// Name identifies the device model in reports.
	Name string
	// OPPs is the table of operating points, ascending by frequency.
	OPPs []OPP
	// TransitionLatency is the stall incurred by an OPP switch while the
	// core is busy (PLL relock + voltage ramp).
	TransitionLatency sim.Time
}

// Validate checks structural invariants of the model.
func (m Model) Validate() error {
	if len(m.OPPs) == 0 {
		return fmt.Errorf("cpu model %q: no OPPs", m.Name)
	}
	for i, o := range m.OPPs {
		if o.FreqHz <= 0 {
			return fmt.Errorf("cpu model %q: OPP %d frequency %v not positive", m.Name, i, o.FreqHz)
		}
		if o.VoltageV <= 0 {
			return fmt.Errorf("cpu model %q: OPP %d voltage %v not positive", m.Name, i, o.VoltageV)
		}
		if o.ActiveW <= 0 || o.IdleW < 0 || o.IdleW >= o.ActiveW {
			return fmt.Errorf("cpu model %q: OPP %d power (active %v, idle %v) inconsistent", m.Name, i, o.ActiveW, o.IdleW)
		}
		if i > 0 && o.FreqHz <= m.OPPs[i-1].FreqHz {
			return fmt.Errorf("cpu model %q: OPPs not ascending at %d", m.Name, i)
		}
	}
	if m.TransitionLatency < 0 {
		return fmt.Errorf("cpu model %q: negative transition latency", m.Name)
	}
	return nil
}

// MaxIdx returns the index of the highest OPP.
func (m Model) MaxIdx() int { return len(m.OPPs) - 1 }

// Fmax returns the highest frequency in Hz.
func (m Model) Fmax() float64 { return m.OPPs[m.MaxIdx()].FreqHz }

// Fmin returns the lowest frequency in Hz.
func (m Model) Fmin() float64 { return m.OPPs[0].FreqHz }

// IdxForFreq returns the index of the lowest OPP with frequency ≥ hz,
// or the highest OPP if none reaches hz.
func (m Model) IdxForFreq(hz float64) int {
	for i, o := range m.OPPs {
		if o.FreqHz >= hz {
			return i
		}
	}
	return m.MaxIdx()
}

// MinIdxForCycles returns the lowest OPP index that can retire the given
// cycles within the given span, or the highest OPP (best effort) if none
// can.
func (m Model) MinIdxForCycles(cycles float64, span sim.Time) int {
	if span <= 0 {
		return m.MaxIdx()
	}
	return m.IdxForFreq(cycles / span.Seconds())
}

// PowerParams are the physical coefficients used to synthesize an OPP
// table: P_active = Ceff·V²·f + leakage, P_idle = gateFrac·dynamic +
// leakage. Voltage scales between Vmin and Vmax with a superlinear curve in
// normalized frequency, matching published mobile SoC DVFS tables.
type PowerParams struct {
	// CeffF is the effective switched capacitance in farads.
	CeffF float64
	// Vmin and Vmax bound the voltage curve, in volts.
	Vmin, Vmax float64
	// VCurve is the exponent of the voltage-vs-frequency curve (≥ 1).
	VCurve float64
	// LeakWPerV is the leakage slope: leakage = LeakWPerV · V.
	LeakWPerV float64
	// GateFrac is the fraction of dynamic power still drawn when
	// clock-gated idle (ungated clock tree, caches).
	GateFrac float64
}

// GenerateOPPs synthesizes an n-point OPP table from fminHz to fmaxHz with
// the given power parameters. Frequencies are evenly spaced and rounded to
// the nearest MHz, as real tables are.
func GenerateOPPs(fminHz, fmaxHz float64, n int, p PowerParams) []OPP {
	if n < 2 {
		n = 2
	}
	opps := make([]OPP, 0, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		f := fminHz + frac*(fmaxHz-fminHz)
		f = math.Round(f/1e6) * 1e6
		v := p.Vmin + (p.Vmax-p.Vmin)*math.Pow(f/fmaxHz, p.VCurve)
		dyn := p.CeffF * v * v * f
		leak := p.LeakWPerV * v
		opps = append(opps, OPP{
			FreqHz:   f,
			VoltageV: v,
			ActiveW:  dyn + leak,
			IdleW:    p.GateFrac*dyn + leak,
		})
	}
	return opps
}

// DeviceFlagship returns a flagship-phone big-core model (Snapdragon
// 800-class: 300 MHz – 2.26 GHz across 14 points, ≈2 W at fmax).
func DeviceFlagship() Model {
	return Model{
		Name: "flagship",
		OPPs: GenerateOPPs(300e6, 2265e6, 14, PowerParams{
			CeffF:     0.80e-9,
			Vmin:      0.70,
			Vmax:      1.10,
			VCurve:    1.6,
			LeakWPerV: 0.10,
			GateFrac:  0.08,
		}),
		TransitionLatency: 200 * sim.Microsecond,
	}
}

// DeviceMidrange returns a mid-range model (200 MHz – 1.5 GHz, 8 points,
// ≈1 W at fmax).
func DeviceMidrange() Model {
	return Model{
		Name: "midrange",
		OPPs: GenerateOPPs(200e6, 1500e6, 8, PowerParams{
			CeffF:     0.62e-9,
			Vmin:      0.75,
			Vmax:      1.05,
			VCurve:    1.5,
			LeakWPerV: 0.08,
			GateFrac:  0.10,
		}),
		TransitionLatency: 500 * sim.Microsecond,
	}
}

// DeviceEfficient returns an efficiency-core model (LITTLE-cluster class:
// 300 MHz – 1.4 GHz, 10 points, low ceiling power).
func DeviceEfficient() Model {
	return Model{
		Name: "efficient",
		OPPs: GenerateOPPs(300e6, 1400e6, 10, PowerParams{
			CeffF:     0.35e-9,
			Vmin:      0.65,
			Vmax:      0.95,
			VCurve:    1.4,
			LeakWPerV: 0.05,
			GateFrac:  0.10,
		}),
		TransitionLatency: 300 * sim.Microsecond,
	}
}

// Devices returns all built-in device models.
func Devices() []Model {
	return []Model{DeviceFlagship(), DeviceMidrange(), DeviceEfficient()}
}

// DeviceByName returns the built-in model with the given name.
func DeviceByName(name string) (Model, error) {
	for _, m := range Devices() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("cpu: unknown device model %q", name)
}
