package cpu

import (
	"fmt"

	"videodvfs/internal/sim"
)

// LoadGen submits periodic background jobs to a core, modelling player UI
// updates, audio mixing, and OS housekeeping that share the CPU with the
// decoder. Job sizes are lognormal around a mean with the given CV, and
// periods are jittered ±20% so the load does not phase-lock with frames.
type LoadGen struct {
	eng    *sim.Engine
	core   *Core
	rng    *sim.RNG
	period sim.Time
	meanCy float64
	cv     float64
	prio   Priority
	tag    string
	stop   bool
	subErr error
	// fire is the pre-bound tick callback and pool recycles submitted
	// jobs, so a running generator allocates nothing per job.
	fire func()
	pool JobPool
}

// LoadGenConfig configures a background load generator.
type LoadGenConfig struct {
	// Period is the mean inter-arrival of background jobs.
	Period sim.Time
	// MeanCycles is the mean job demand.
	MeanCycles float64
	// CV is the coefficient of variation of job demand.
	CV float64
	// Priority of the submitted jobs; defaults to PrioBackground.
	Priority Priority
	// Tag labels the jobs in CPU accounting; defaults to "background".
	Tag string
}

// DefaultLoadGenConfig is a light UI/OS load: ≈0.5 M cycles every 50 ms
// (~1% of a 1 GHz core).
func DefaultLoadGenConfig() LoadGenConfig {
	return LoadGenConfig{
		Period:     50 * sim.Millisecond,
		MeanCycles: 0.5e6,
		CV:         0.5,
		Priority:   PrioBackground,
		Tag:        "background",
	}
}

// Validate checks the configuration.
func (c LoadGenConfig) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("loadgen: period %v not positive", c.Period)
	}
	if c.MeanCycles <= 0 {
		return fmt.Errorf("loadgen: mean cycles %v not positive", c.MeanCycles)
	}
	if c.CV < 0 {
		return fmt.Errorf("loadgen: negative CV %v", c.CV)
	}
	return nil
}

// StartLoadGen begins submitting jobs immediately and until Stop.
func StartLoadGen(eng *sim.Engine, core *Core, rng *sim.RNG, cfg LoadGenConfig) (*LoadGen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tag == "" {
		cfg.Tag = "background"
	}
	g := &LoadGen{
		eng:    eng,
		core:   core,
		rng:    rng,
		period: cfg.Period,
		meanCy: cfg.MeanCycles,
		cv:     cfg.CV,
		prio:   cfg.Priority,
		tag:    cfg.Tag,
	}
	g.fire = g.tick
	g.arm()
	return g, nil
}

func (g *LoadGen) arm() {
	jitter := sim.Time(g.rng.Uniform(0.8, 1.2))
	g.eng.Schedule(g.period*jitter, g.fire)
}

func (g *LoadGen) tick() {
	if g.stop {
		return
	}
	cycles := g.rng.LognormalMeanCV(g.meanCy, g.cv)
	j := g.pool.Get()
	j.Cycles = cycles
	j.Priority = g.prio
	j.Tag = g.tag
	if err := g.core.Submit(j); err != nil && g.subErr == nil {
		g.subErr = err
	}
	g.arm()
}

// Stop halts job submission.
func (g *LoadGen) Stop() { g.stop = true }

// Err returns the first submission error, if any.
func (g *LoadGen) Err() error { return g.subErr }
