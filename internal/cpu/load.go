package cpu

import (
	"fmt"
	"math"

	"videodvfs/internal/sim"
)

// LoadGen submits periodic background jobs to a core, modelling player UI
// updates, audio mixing, and OS housekeeping that share the CPU with the
// decoder. Job sizes are lognormal around a mean with the given CV, and
// periods are jittered ±20% so the load does not phase-lock with frames.
type LoadGen struct {
	eng    *sim.Engine
	core   *Core
	rng    *sim.RNG
	period sim.Time
	meanCy float64
	cv     float64
	// mu/sigma are the lognormal parameters for (meanCy, cv), computed
	// once per configuration instead of per tick; lognorm is false when
	// cv ≤ 0, where LognormalMeanCV returns the mean without consuming a
	// draw — the flattened path must preserve that draw count exactly.
	mu, sigma float64
	lognorm   bool
	prio      Priority
	tag       string
	stop      bool
	subErr    error
	// fire is the pre-bound tick callback and pool recycles submitted
	// jobs, so a running generator allocates nothing per job.
	fire func()
	pool JobPool
}

// LoadGenConfig configures a background load generator.
type LoadGenConfig struct {
	// Period is the mean inter-arrival of background jobs.
	Period sim.Time
	// MeanCycles is the mean job demand.
	MeanCycles float64
	// CV is the coefficient of variation of job demand.
	CV float64
	// Priority of the submitted jobs; defaults to PrioBackground.
	Priority Priority
	// Tag labels the jobs in CPU accounting; defaults to "background".
	Tag string
}

// DefaultLoadGenConfig is a light UI/OS load: ≈0.5 M cycles every 50 ms
// (~1% of a 1 GHz core).
func DefaultLoadGenConfig() LoadGenConfig {
	return LoadGenConfig{
		Period:     50 * sim.Millisecond,
		MeanCycles: 0.5e6,
		CV:         0.5,
		Priority:   PrioBackground,
		Tag:        "background",
	}
}

// Validate checks the configuration.
func (c LoadGenConfig) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("loadgen: period %v not positive", c.Period)
	}
	if c.MeanCycles <= 0 {
		return fmt.Errorf("loadgen: mean cycles %v not positive", c.MeanCycles)
	}
	if c.CV < 0 {
		return fmt.Errorf("loadgen: negative CV %v", c.CV)
	}
	return nil
}

// StartLoadGen begins submitting jobs immediately and until Stop.
func StartLoadGen(eng *sim.Engine, core *Core, rng *sim.RNG, cfg LoadGenConfig) (*LoadGen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &LoadGen{eng: eng, core: core, rng: rng}
	g.fire = g.tick
	g.configure(cfg)
	g.arm()
	return g, nil
}

// configure applies a validated config, precomputing the lognormal
// parameters the tick path draws from.
func (g *LoadGen) configure(cfg LoadGenConfig) {
	if cfg.Tag == "" {
		cfg.Tag = "background"
	}
	g.period = cfg.Period
	g.meanCy = cfg.MeanCycles
	g.cv = cfg.CV
	g.prio = cfg.Priority
	g.tag = cfg.Tag
	g.lognorm = cfg.CV > 0 && cfg.MeanCycles > 0
	if g.lognorm {
		sigma2 := math.Log(1 + cfg.CV*cfg.CV)
		g.mu = math.Log(cfg.MeanCycles) - sigma2/2
		g.sigma = math.Sqrt(sigma2)
	} else {
		g.mu, g.sigma = 0, 0
	}
}

// Restart rewinds a stopped (or abandoned) generator to the state
// StartLoadGen would construct for cfg and arms the first tick, keeping
// the job pool and pre-bound callback. The caller is responsible for the
// engine and RNG: restart only after the engine was reset (so no stale
// tick is pending) and after reseeding the RNG if draw-for-draw
// reproducibility with a fresh generator is required.
func (g *LoadGen) Restart(cfg LoadGenConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	g.configure(cfg)
	g.stop = false
	g.subErr = nil
	g.arm()
	return nil
}

func (g *LoadGen) arm() {
	jitter := sim.Time(g.rng.Uniform(0.8, 1.2))
	g.eng.Schedule(g.period*jitter, g.fire)
}

func (g *LoadGen) tick() {
	if g.stop {
		return
	}
	// Same draw as rng.LognormalMeanCV(meanCy, cv) with the parameters
	// hoisted out of the loop: cv ≤ 0 takes the mean without a draw.
	cycles := g.meanCy
	if g.lognorm {
		cycles = g.rng.Lognormal(g.mu, g.sigma)
	}
	j := g.pool.Get()
	j.Cycles = cycles
	j.Priority = g.prio
	j.Tag = g.tag
	if err := g.core.Submit(j); err != nil && g.subErr == nil {
		g.subErr = err
	}
	g.arm()
}

// Stop halts job submission.
func (g *LoadGen) Stop() { g.stop = true }

// Err returns the first submission error, if any.
func (g *LoadGen) Err() error { return g.subErr }
