package cpu

import (
	"fmt"

	"videodvfs/internal/sim"
)

// Domain couples several cores to one shared clock, the way a phone
// cluster scales: the governor sets one OPP and every core in the domain
// follows. Jobs submitted to the domain are placed on an idle core when
// one exists, otherwise on the core with the least queued work — a
// simplified load-balancing scheduler.
type Domain struct {
	model Model
	cores []*Core
}

// NewDomain returns a domain of n cores of the given model, all parked at
// the lowest OPP.
func NewDomain(eng *sim.Engine, model Model, n int) (*Domain, error) {
	if n < 1 {
		return nil, fmt.Errorf("cpu: domain needs at least one core, got %d", n)
	}
	d := &Domain{model: model, cores: make([]*Core, 0, n)}
	for i := 0; i < n; i++ {
		c, err := NewCore(eng, model)
		if err != nil {
			return nil, err
		}
		d.cores = append(d.cores, c)
	}
	return d, nil
}

// Model returns the device model the domain runs.
func (d *Domain) Model() Model { return d.model }

// Cores returns the domain's cores (shared slice; do not mutate).
func (d *Domain) Cores() []*Core { return d.cores }

// OPP returns the domain's shared OPP index.
func (d *Domain) OPP() int { return d.cores[0].OPP() }

// SetOPP switches every core in the domain (per-cluster DVFS).
func (d *Domain) SetOPP(idx int) {
	for _, c := range d.cores {
		c.SetOPP(idx)
	}
}

// SetOPPCap lowers the throttling cap on every core.
func (d *Domain) SetOPPCap(idx int) {
	for _, c := range d.cores {
		c.SetOPPCap(idx)
	}
}

// Submit places the job on an idle core if any, else on the core with the
// shortest queue.
func (d *Domain) Submit(j *Job) error {
	best := d.cores[0]
	for _, c := range d.cores {
		if !c.Busy() && c.QueueLen() == 0 {
			best = c
			break
		}
		if c.QueueLen() < best.QueueLen() || (best.Busy() && !c.Busy()) {
			best = c
		}
	}
	return best.Submit(j)
}

// Power returns the domain's total draw in watts.
func (d *Domain) Power() float64 {
	var sum float64
	for _, c := range d.cores {
		sum += c.Power()
	}
	return sum
}

// OnPower registers a single aggregated power listener across all cores.
func (d *Domain) OnPower(fn func(now sim.Time, watts float64)) {
	for _, c := range d.cores {
		c.OnPower(func(now sim.Time, _ float64) { fn(now, d.Power()) })
	}
}

// BusyTime returns the summed busy time across cores.
func (d *Domain) BusyTime() sim.Time {
	var sum sim.Time
	for _, c := range d.cores {
		sum += c.BusyTime()
	}
	return sum
}

// CyclesByTag aggregates completed cycles across cores.
func (d *Domain) CyclesByTag() map[string]float64 {
	out := make(map[string]float64)
	for _, c := range d.cores {
		for k, v := range c.CyclesByTag() {
			out[k] += v
		}
	}
	return out
}

// Transitions returns per-domain DVFS switches (each SetOPP counts once,
// read from the first core).
func (d *Domain) Transitions() int { return d.cores[0].Transitions() }
