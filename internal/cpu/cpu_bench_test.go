package cpu

import (
	"testing"

	"videodvfs/internal/sim"
)

// BenchmarkCoreJobThroughput measures job dispatch + completion cost.
func BenchmarkCoreJobThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		core, err := NewCore(eng, DeviceFlagship())
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 1000; j++ {
			if err := core.Submit(&Job{Cycles: 1e6, Tag: "b"}); err != nil {
				b.Fatal(err)
			}
		}
		eng.Run()
	}
}

// BenchmarkCoreDVFSChurn measures OPP-change cost with a job in flight
// (the energy-aware governor switches per frame).
func BenchmarkCoreDVFSChurn(b *testing.B) {
	eng := sim.NewEngine()
	core, err := NewCore(eng, DeviceFlagship())
	if err != nil {
		b.Fatal(err)
	}
	if err := core.Submit(&Job{Cycles: 1e18, Tag: "b"}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SetOPP(i % len(core.Model().OPPs))
	}
}
