package cpu

import (
	"math"
	"testing"

	"videodvfs/internal/sim"
)

func newDomain(t *testing.T, n int) (*sim.Engine, *Domain) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := NewDomain(eng, testModel(0), n)
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestDomainValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewDomain(eng, testModel(0), 0); err == nil {
		t.Fatal("want error for zero cores")
	}
	if _, err := NewDomain(eng, Model{Name: "bad"}, 2); err == nil {
		t.Fatal("want error for invalid model")
	}
}

func TestDomainSharedClock(t *testing.T) {
	eng, d := newDomain(t, 3)
	d.SetOPP(1)
	for i, c := range d.Cores() {
		if c.OPP() != 1 {
			t.Fatalf("core %d OPP %d, want 1", i, c.OPP())
		}
	}
	if d.OPP() != 1 {
		t.Fatalf("domain OPP = %d", d.OPP())
	}
	eng.Run()
}

func TestDomainParallelExecution(t *testing.T) {
	eng, d := newDomain(t, 2)
	// Two 1e9-cycle jobs at 1 GHz: in parallel they finish at t=1 s; a
	// single core would need 2 s.
	var done []sim.Time
	for i := 0; i < 2; i++ {
		if err := d.Submit(&Job{Cycles: 1e9, Tag: "p", OnDone: func(now sim.Time) { done = append(done, now) }}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(done) != 2 {
		t.Fatalf("completed %d jobs", len(done))
	}
	for _, at := range done {
		if math.Abs(float64(at-sim.Second)) > 1e-9 {
			t.Fatalf("job finished at %v, want 1s (parallel)", at)
		}
	}
}

func TestDomainLeastLoadedPlacement(t *testing.T) {
	eng, d := newDomain(t, 2)
	// Saturate core selection: 4 equal jobs → 2 per core.
	for i := 0; i < 4; i++ {
		if err := d.Submit(&Job{Cycles: 5e8, Tag: "lb"}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for i, c := range d.Cores() {
		if got := c.CyclesByTag()["lb"]; got != 1e9 {
			t.Fatalf("core %d ran %.2g cycles, want 1e9 (balanced)", i, got)
		}
	}
	if got := d.CyclesByTag()["lb"]; got != 2e9 {
		t.Fatalf("domain total %.2g", got)
	}
}

func TestDomainAggregatedPower(t *testing.T) {
	eng, d := newDomain(t, 2)
	// Idle: 2 × 0.1 W.
	if math.Abs(d.Power()-0.2) > 1e-12 {
		t.Fatalf("idle power %v, want 0.2", d.Power())
	}
	var last float64
	d.OnPower(func(_ sim.Time, w float64) { last = w })
	if err := d.Submit(&Job{Cycles: 1e8, Tag: "x"}); err != nil {
		t.Fatal(err)
	}
	// One busy (1.0) + one idle (0.1).
	if math.Abs(last-1.1) > 1e-12 {
		t.Fatalf("power callback %v, want 1.1", last)
	}
	eng.Run()
	if math.Abs(last-0.2) > 1e-12 {
		t.Fatalf("final power %v, want 0.2", last)
	}
}

func TestDomainBusyTimeAggregates(t *testing.T) {
	eng, d := newDomain(t, 2)
	for i := 0; i < 2; i++ {
		if err := d.Submit(&Job{Cycles: 1e9, Tag: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if got := d.BusyTime(); math.Abs(float64(got-2*sim.Second)) > 1e-9 {
		t.Fatalf("busy time %v, want 2s total", got)
	}
}
