package cpu

import (
	"fmt"
	"math"

	"videodvfs/internal/sim"
)

// ThermalConfig parameterizes the first-order RC thermal model and the
// step throttler (an IPA-style thermal governor): the die temperature
// relaxes toward ambient + power·Rth with time constant Tau; crossing
// TripC lowers the OPP cap one step per sample, and cooling below
// TripC − HystC raises it back.
type ThermalConfig struct {
	// AmbientC is the ambient (skin) temperature in °C.
	AmbientC float64
	// RthCPerW is the junction-to-ambient thermal resistance in °C/W.
	RthCPerW float64
	// Tau is the thermal time constant.
	Tau sim.Time
	// TripC is the throttle trip temperature.
	TripC float64
	// HystC is the hysteresis below the trip before un-throttling.
	HystC float64
	// Sample is the polling period of the thermal governor.
	Sample sim.Time
	// InitialC is the starting die temperature (ambient if zero).
	InitialC float64
}

// DefaultThermalConfig returns phone-class values: a 30 s time constant,
// 30 °C/W to skin, throttling at 65 °C.
func DefaultThermalConfig() ThermalConfig {
	return ThermalConfig{
		AmbientC: 25,
		RthCPerW: 30,
		Tau:      30 * sim.Second,
		TripC:    65,
		HystC:    5,
		Sample:   250 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c ThermalConfig) Validate() error {
	if c.RthCPerW <= 0 {
		return fmt.Errorf("thermal: Rth %v not positive", c.RthCPerW)
	}
	if c.Tau <= 0 {
		return fmt.Errorf("thermal: tau %v not positive", c.Tau)
	}
	if c.TripC <= c.AmbientC {
		return fmt.Errorf("thermal: trip %v must exceed ambient %v", c.TripC, c.AmbientC)
	}
	if c.HystC < 0 {
		return fmt.Errorf("thermal: negative hysteresis")
	}
	if c.Sample <= 0 {
		return fmt.Errorf("thermal: sample period %v not positive", c.Sample)
	}
	return nil
}

// Thermal tracks die temperature from the core's power draw and throttles
// the OPP cap when it trips. It polls power at the sample period, which is
// far below the thermal time constant, so the integration error is
// negligible.
type Thermal struct {
	eng  *sim.Engine
	core *Core
	cfg  ThermalConfig

	tempC    float64
	lastAt   sim.Time
	ticker   *sim.Ticker
	maxTempC float64

	throttleEvents int
	throttledSince sim.Time
	throttledTotal sim.Time
	throttled      bool
}

// StartThermal attaches a thermal model + throttler to a core.
func StartThermal(eng *sim.Engine, core *Core, cfg ThermalConfig) (*Thermal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	init := cfg.InitialC
	if init == 0 {
		init = cfg.AmbientC
	}
	t := &Thermal{
		eng:      eng,
		core:     core,
		cfg:      cfg,
		tempC:    init,
		maxTempC: init,
		lastAt:   eng.Now(),
	}
	t.ticker = sim.NewTicker(eng, cfg.Sample, t.sample)
	return t, nil
}

// Stop halts the thermal governor.
func (t *Thermal) Stop() { t.ticker.Stop() }

// TempC returns the current die temperature, advanced to now.
func (t *Thermal) TempC() float64 {
	t.advance(t.eng.Now())
	return t.tempC
}

// MaxTempC returns the peak temperature seen.
func (t *Thermal) MaxTempC() float64 { return t.maxTempC }

// ThrottleEvents returns how many times the trip engaged.
func (t *Thermal) ThrottleEvents() int { return t.throttleEvents }

// ThrottledTime returns total time spent with a lowered cap.
func (t *Thermal) ThrottledTime() sim.Time {
	total := t.throttledTotal
	if t.throttled {
		total += t.eng.Now() - t.throttledSince
	}
	return total
}

// Throttled reports whether the cap is currently lowered.
func (t *Thermal) Throttled() bool { return t.throttled }

// advance integrates the RC model to time `to` assuming the current power
// held since the last advance.
func (t *Thermal) advance(to sim.Time) {
	dt := to - t.lastAt
	if dt <= 0 {
		return
	}
	t.lastAt = to
	tss := t.cfg.AmbientC + t.core.Power()*t.cfg.RthCPerW
	t.tempC = tss + (t.tempC-tss)*math.Exp(-dt.Seconds()/t.cfg.Tau.Seconds())
	if t.tempC > t.maxTempC {
		t.maxTempC = t.tempC
	}
}

// sustainableIdx returns the highest OPP whose fully-busy power keeps the
// steady-state temperature at or below the trip.
func (t *Thermal) sustainableIdx() int {
	budgetW := (t.cfg.TripC - t.cfg.AmbientC) / t.cfg.RthCPerW
	idx := 0
	for i, o := range t.core.Model().OPPs {
		if o.ActiveW <= budgetW {
			idx = i
		}
	}
	return idx
}

// sample runs the power-budget throttler (an IPA-style thermal governor):
// crossing the trip caps the domain at the thermally sustainable OPP;
// cooling past the hysteresis removes the cap.
func (t *Thermal) sample(now sim.Time) {
	t.advance(now)
	switch {
	case t.tempC > t.cfg.TripC:
		idx := t.sustainableIdx()
		if !t.throttled {
			t.throttled = true
			t.throttledSince = now
			t.throttleEvents++
		}
		if idx < t.core.OPPCap() {
			t.core.SetOPPCap(idx)
		}
	case t.throttled && t.tempC < t.cfg.TripC-t.cfg.HystC:
		t.throttled = false
		t.throttledTotal += now - t.throttledSince
		t.core.SetOPPCap(t.core.Model().MaxIdx())
	}
}
