package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"videodvfs/internal/sim"
)

// testModel is a two-OPP model with trivial arithmetic: 1 GHz and 2 GHz,
// no transition latency unless a test sets one.
func testModel(latency sim.Time) Model {
	return Model{
		Name: "test",
		OPPs: []OPP{
			{FreqHz: 1e9, VoltageV: 0.8, ActiveW: 1.0, IdleW: 0.1},
			{FreqHz: 2e9, VoltageV: 1.0, ActiveW: 3.0, IdleW: 0.2},
		},
		TransitionLatency: latency,
	}
}

func newTestCore(t *testing.T, latency sim.Time) (*sim.Engine, *Core) {
	t.Helper()
	eng := sim.NewEngine()
	core, err := NewCore(eng, testModel(latency))
	if err != nil {
		t.Fatal(err)
	}
	return eng, core
}

func TestJobCompletionTime(t *testing.T) {
	eng, core := newTestCore(t, 0)
	var done sim.Time
	if err := core.Submit(&Job{Cycles: 5e8, Tag: "t", OnDone: func(now sim.Time) { done = now }}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if math.Abs(float64(done-500*sim.Millisecond)) > 1e-12 {
		t.Fatalf("5e8 cycles at 1 GHz finished at %v, want 0.5s", done)
	}
}

func TestJobsRunFIFOWithinPriority(t *testing.T) {
	eng, core := newTestCore(t, 0)
	var order []string
	mk := func(name string) *Job {
		return &Job{Cycles: 1e6, Tag: name, Priority: PrioDecode,
			OnDone: func(sim.Time) { order = append(order, name) }}
	}
	for _, n := range []string{"a", "b", "c"} {
		if err := core.Submit(mk(n)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestPriorityOrdering(t *testing.T) {
	eng, core := newTestCore(t, 0)
	var order []string
	// Submit a running job first so the queue builds up behind it.
	if err := core.Submit(&Job{Cycles: 1e6, Tag: "head", Priority: PrioDecode,
		OnDone: func(sim.Time) { order = append(order, "head") }}); err != nil {
		t.Fatal(err)
	}
	if err := core.Submit(&Job{Cycles: 1e6, Tag: "bg", Priority: PrioBackground,
		OnDone: func(sim.Time) { order = append(order, "bg") }}); err != nil {
		t.Fatal(err)
	}
	if err := core.Submit(&Job{Cycles: 1e6, Tag: "dec", Priority: PrioDecode,
		OnDone: func(sim.Time) { order = append(order, "dec") }}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := []string{"head", "dec", "bg"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestZeroCycleJobCompletesInline(t *testing.T) {
	eng, core := newTestCore(t, 0)
	ran := false
	if err := core.Submit(&Job{Cycles: 0, Tag: "z", OnDone: func(sim.Time) { ran = true }}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("zero-cycle job should complete synchronously")
	}
	eng.Run()
}

func TestSubmitErrors(t *testing.T) {
	_, core := newTestCore(t, 0)
	if err := core.Submit(nil); err == nil {
		t.Fatal("want error for nil job")
	}
	if err := core.Submit(&Job{Cycles: 1, Priority: Priority(99)}); err == nil {
		t.Fatal("want error for invalid priority")
	}
}

func TestFrequencyChangeMidJob(t *testing.T) {
	eng, core := newTestCore(t, 0)
	var done sim.Time
	if err := core.Submit(&Job{Cycles: 2e9, Tag: "t", OnDone: func(now sim.Time) { done = now }}); err != nil {
		t.Fatal(err)
	}
	// At t=0.5 s, 0.5e9 of 2e9 cycles retired at 1 GHz; the remaining
	// 1.5e9 at 2 GHz takes 0.75 s → completion at 1.25 s.
	eng.Schedule(500*sim.Millisecond, func() { core.SetOPP(1) })
	eng.Run()
	if math.Abs(float64(done-1250*sim.Millisecond)) > 1e-9 {
		t.Fatalf("completion at %v, want 1.25s", done)
	}
}

func TestFrequencyChangeWithTransitionStall(t *testing.T) {
	eng, core := newTestCore(t, 10*sim.Millisecond)
	var done sim.Time
	if err := core.Submit(&Job{Cycles: 2e9, Tag: "t", OnDone: func(now sim.Time) { done = now }}); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(500*sim.Millisecond, func() { core.SetOPP(1) })
	eng.Run()
	want := 1260 * sim.Millisecond // 1.25 s + 10 ms stall
	if math.Abs(float64(done-want)) > 1e-9 {
		t.Fatalf("completion at %v, want %v", done, want)
	}
}

func TestSetOPPClampsAndIgnoresNoop(t *testing.T) {
	eng, core := newTestCore(t, 0)
	changes := 0
	core.OnOPPChange(func(sim.Time, int) { changes++ })
	core.SetOPP(-5)
	if core.OPP() != 0 {
		t.Fatalf("OPP = %d after clamp-low", core.OPP())
	}
	core.SetOPP(99)
	if core.OPP() != 1 {
		t.Fatalf("OPP = %d after clamp-high", core.OPP())
	}
	core.SetOPP(1) // no-op
	if changes != 1 {
		t.Fatalf("OPP change callbacks = %d, want 1 (no-op suppressed)", changes)
	}
	eng.Run()
}

func TestBusyTimeAccounting(t *testing.T) {
	eng, core := newTestCore(t, 0)
	if err := core.Submit(&Job{Cycles: 3e8, Tag: "t"}); err != nil { // 0.3 s at 1 GHz
		t.Fatal(err)
	}
	eng.Schedule(150*sim.Millisecond, func() {
		if b := core.BusyTime(); math.Abs(float64(b-150*sim.Millisecond)) > 1e-12 {
			t.Errorf("mid-job BusyTime = %v, want 150ms", b)
		}
		if !core.Busy() {
			t.Error("core should be busy mid-job")
		}
	})
	eng.Run()
	if b := core.BusyTime(); math.Abs(float64(b-300*sim.Millisecond)) > 1e-12 {
		t.Fatalf("final BusyTime = %v, want 300ms", b)
	}
	if core.Busy() {
		t.Fatal("core should be idle after completion")
	}
}

func TestUtilSamplerWindow(t *testing.T) {
	eng, core := newTestCore(t, 0)
	s := NewUtilSampler(core)
	if err := core.Submit(&Job{Cycles: 5e8, Tag: "t"}); err != nil { // busy 0–0.5 s
		t.Fatal(err)
	}
	var u1, u2 float64
	eng.Schedule(sim.Second, func() { u1 = s.Sample(eng.Now()) })
	eng.Schedule(2*sim.Second, func() { u2 = s.Sample(eng.Now()) })
	eng.Run()
	if math.Abs(u1-0.5) > 1e-9 {
		t.Fatalf("first window util = %v, want 0.5", u1)
	}
	if u2 != 0 {
		t.Fatalf("second window util = %v, want 0", u2)
	}
}

func TestPowerCallbackSequence(t *testing.T) {
	eng, core := newTestCore(t, 0)
	type sample struct {
		at sim.Time
		w  float64
	}
	var trace []sample
	core.OnPower(func(now sim.Time, w float64) { trace = append(trace, sample{now, w}) })
	if err := core.Submit(&Job{Cycles: 1e9, Tag: "t"}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Expect: initial idle (0.1 W), busy at t=0 (1.0 W), idle at t=1 (0.1 W).
	if len(trace) != 3 {
		t.Fatalf("power trace = %v", trace)
	}
	if trace[0].w != 0.1 || trace[1].w != 1.0 || trace[2].w != 0.1 {
		t.Fatalf("power levels = %v", trace)
	}
	if trace[2].at != sim.Second {
		t.Fatalf("idle transition at %v, want 1s", trace[2].at)
	}
}

func TestFreqResidencySumsToElapsed(t *testing.T) {
	eng, core := newTestCore(t, 0)
	eng.Schedule(sim.Second, func() { core.SetOPP(1) })
	eng.Schedule(3*sim.Second, func() { core.SetOPP(0) })
	eng.Schedule(4*sim.Second, func() {})
	eng.Run()
	res := core.FreqResidency()
	var total sim.Time
	for _, d := range res {
		total += d
	}
	if math.Abs(float64(total-4*sim.Second)) > 1e-9 {
		t.Fatalf("residency sums to %v, want 4s", total)
	}
	if math.Abs(float64(res[1]-2*sim.Second)) > 1e-9 {
		t.Fatalf("OPP1 residency = %v, want 2s", res[1])
	}
}

func TestCyclesByTag(t *testing.T) {
	eng, core := newTestCore(t, 0)
	if err := core.Submit(&Job{Cycles: 1e6, Tag: "decode"}); err != nil {
		t.Fatal(err)
	}
	if err := core.Submit(&Job{Cycles: 2e6, Tag: "decode"}); err != nil {
		t.Fatal(err)
	}
	if err := core.Submit(&Job{Cycles: 5e5, Tag: "net", Priority: PrioNetwork}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got := core.CyclesByTag()
	if got["decode"] != 3e6 || got["net"] != 5e5 {
		t.Fatalf("cycles by tag = %v", got)
	}
}

func TestNewCoreRejectsInvalidModel(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewCore(eng, Model{Name: "bad"}); err == nil {
		t.Fatal("want error for invalid model")
	}
}

// Property: without DVFS changes, completion time is cycles/freq for any
// demand at any OPP.
func TestCompletionTimeProperty(t *testing.T) {
	f := func(cyclesRaw uint32, oppRaw bool) bool {
		cycles := float64(cyclesRaw) + 1
		eng, core := newTestCore(&testing.T{}, 0)
		opp := 0
		if oppRaw {
			opp = 1
		}
		core.SetOPP(opp)
		var done sim.Time
		if err := core.Submit(&Job{Cycles: cycles, Tag: "p", OnDone: func(now sim.Time) { done = now }}); err != nil {
			return false
		}
		eng.Run()
		want := cycles / core.Model().OPPs[opp].FreqHz
		return math.Abs(done.Seconds()-want) < 1e-9*want+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGenProducesExpectedUtilization(t *testing.T) {
	eng, core := newTestCore(t, 0)
	cfg := LoadGenConfig{Period: 10 * sim.Millisecond, MeanCycles: 1e6, CV: 0.3,
		Priority: PrioBackground, Tag: "bg"}
	gen, err := StartLoadGen(eng, core, sim.Stream(1, "load"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(10*sim.Second, func() { gen.Stop(); eng.Stop() })
	eng.Run()
	if gen.Err() != nil {
		t.Fatal(gen.Err())
	}
	// 1e6 cycles / 10 ms at 1 GHz → ~10% utilization.
	util := core.BusyTime().Seconds() / 10
	if util < 0.05 || util > 0.2 {
		t.Fatalf("background util = %.3f, want ≈0.10", util)
	}
	if core.CyclesByTag()["bg"] == 0 {
		t.Fatal("no background cycles recorded")
	}
}

func TestLoadGenConfigValidate(t *testing.T) {
	bad := []LoadGenConfig{
		{Period: 0, MeanCycles: 1},
		{Period: sim.Second, MeanCycles: 0},
		{Period: sim.Second, MeanCycles: 1, CV: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if err := DefaultLoadGenConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}
