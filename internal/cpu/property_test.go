package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"videodvfs/internal/sim"
)

// Property: every submitted job completes exactly once, cycles are
// conserved, and completions are FIFO within a priority — under random job
// mixes and random mid-run OPP changes.
func TestCoreConservationUnderRandomDVFS(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := sim.Stream(seed, "prop/cpu")
		n := int(nRaw)%40 + 1
		eng := sim.NewEngine()
		core, err := NewCore(eng, DeviceFlagship())
		if err != nil {
			return false
		}
		var wantCycles float64
		doneOrder := make([]int, 0, n)
		for i := 0; i < n; i++ {
			i := i
			cycles := rng.Uniform(1e5, 5e7)
			wantCycles += cycles
			at := sim.Time(rng.Uniform(0, 0.5))
			eng.At(at, func() {
				_ = core.Submit(&Job{
					Cycles:   cycles,
					Priority: PrioDecode,
					Tag:      "p",
					OnDone:   func(sim.Time) { doneOrder = append(doneOrder, i) },
				})
			})
		}
		// Random DVFS chatter while the jobs run.
		for k := 0; k < 20; k++ {
			at := sim.Time(rng.Uniform(0, 1))
			idx := rng.Intn(len(core.Model().OPPs))
			eng.At(at, func() { core.SetOPP(idx) })
		}
		eng.Run()
		if len(doneOrder) != n {
			return false
		}
		got := core.CyclesByTag()["p"]
		return math.Abs(got-wantCycles) < 1e-6*wantCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: busy time equals Σ cycles/frequency when the frequency is
// fixed per run, for any OPP.
func TestCoreBusyTimeMatchesAnalytic(t *testing.T) {
	f := func(seed int64, oppRaw uint8) bool {
		rng := sim.Stream(seed, "prop/busy")
		eng := sim.NewEngine()
		core, err := NewCore(eng, DeviceFlagship())
		if err != nil {
			return false
		}
		opp := int(oppRaw) % len(core.Model().OPPs)
		core.SetOPP(opp)
		freq := core.FreqHz()
		var total float64
		for i := 0; i < 10; i++ {
			c := rng.Uniform(1e6, 1e8)
			total += c
			_ = core.Submit(&Job{Cycles: c, Tag: "b"})
		}
		eng.Run()
		want := total / freq
		return math.Abs(core.BusyTime().Seconds()-want) < 1e-9*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the power level reported at any instant is exactly one of the
// model's table values (active or idle of the current OPP), for any DVFS
// and load pattern.
func TestCorePowerAlwaysInTable(t *testing.T) {
	eng := sim.NewEngine()
	core, err := NewCore(eng, DeviceMidrange())
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[float64]bool)
	for _, o := range core.Model().OPPs {
		valid[o.ActiveW] = true
		valid[o.IdleW] = true
	}
	bad := 0
	core.OnPower(func(_ sim.Time, w float64) {
		if !valid[w] {
			bad++
		}
	})
	rng := sim.Stream(3, "prop/power")
	for i := 0; i < 50; i++ {
		at := sim.Time(rng.Uniform(0, 2))
		switch rng.Intn(2) {
		case 0:
			idx := rng.Intn(len(core.Model().OPPs))
			eng.At(at, func() { core.SetOPP(idx) })
		default:
			c := rng.Uniform(1e5, 1e7)
			eng.At(at, func() { _ = core.Submit(&Job{Cycles: c, Tag: "x"}) })
		}
	}
	eng.Run()
	if bad != 0 {
		t.Fatalf("%d power samples outside the OPP table", bad)
	}
}

// Property: frequency residency always sums to elapsed time, whatever the
// DVFS pattern.
func TestCoreResidencyConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.Stream(seed, "prop/resid")
		eng := sim.NewEngine()
		core, err := NewCore(eng, DeviceEfficient())
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			at := sim.Time(rng.Uniform(0, 3))
			idx := rng.Intn(len(core.Model().OPPs))
			eng.At(at, func() { core.SetOPP(idx) })
		}
		horizon := 3 * sim.Second
		eng.At(horizon, func() {})
		eng.Run()
		var total sim.Time
		for _, d := range core.FreqResidency() {
			total += d
		}
		return math.Abs(float64(total-horizon)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
