package cpu

import (
	"math"
	"testing"

	"videodvfs/internal/sim"
)

func TestDevicesValidate(t *testing.T) {
	for _, m := range Devices() {
		if err := m.Validate(); err != nil {
			t.Errorf("device %q invalid: %v", m.Name, err)
		}
	}
}

func TestDeviceByName(t *testing.T) {
	m, err := DeviceByName("flagship")
	if err != nil || m.Name != "flagship" {
		t.Fatalf("DeviceByName(flagship) = %v, %v", m.Name, err)
	}
	if _, err := DeviceByName("toaster"); err == nil {
		t.Fatal("want error for unknown device")
	}
}

func TestGenerateOPPsMonotone(t *testing.T) {
	m := DeviceFlagship()
	for i := 1; i < len(m.OPPs); i++ {
		prev, cur := m.OPPs[i-1], m.OPPs[i]
		if cur.FreqHz <= prev.FreqHz {
			t.Fatalf("frequency not ascending at %d", i)
		}
		if cur.VoltageV < prev.VoltageV {
			t.Fatalf("voltage not nondecreasing at %d", i)
		}
		if cur.ActiveW <= prev.ActiveW {
			t.Fatalf("active power not ascending at %d", i)
		}
	}
}

func TestPowerCurveSuperlinear(t *testing.T) {
	// Energy per cycle must be higher at fmax than fmin, otherwise DVFS
	// would never pay off and the whole paper premise collapses.
	m := DeviceFlagship()
	lo := m.OPPs[0]
	hi := m.OPPs[m.MaxIdx()]
	epcLo := lo.ActiveW / lo.FreqHz
	epcHi := hi.ActiveW / hi.FreqHz
	if epcHi <= epcLo*1.3 {
		t.Fatalf("energy/cycle at fmax (%.3g) should be ≥1.3× fmin (%.3g)", epcHi, epcLo)
	}
}

func TestFlagshipPowerEnvelope(t *testing.T) {
	m := DeviceFlagship()
	pmax := m.OPPs[m.MaxIdx()].ActiveW
	if pmax < 1.2 || pmax > 3.0 {
		t.Fatalf("flagship fmax power %.2f W outside plausible 1.2–3.0 W", pmax)
	}
	pmin := m.OPPs[0].ActiveW
	if pmax/pmin < 4 {
		t.Fatalf("fmax/fmin power ratio %.1f too small for a real DVFS table", pmax/pmin)
	}
}

func TestModelValidateRejectsBrokenTables(t *testing.T) {
	base := DeviceMidrange()
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"empty", func(m *Model) { m.OPPs = nil }},
		{"zero freq", func(m *Model) { m.OPPs[0].FreqHz = 0 }},
		{"zero voltage", func(m *Model) { m.OPPs[0].VoltageV = 0 }},
		{"idle above active", func(m *Model) { m.OPPs[0].IdleW = m.OPPs[0].ActiveW + 1 }},
		{"descending", func(m *Model) { m.OPPs[1].FreqHz = m.OPPs[0].FreqHz }},
		{"negative latency", func(m *Model) { m.TransitionLatency = -1 }},
	}
	for _, c := range cases {
		m := base
		m.OPPs = append([]OPP(nil), base.OPPs...)
		c.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %q: want validation error", c.name)
		}
	}
}

func TestIdxForFreq(t *testing.T) {
	m := DeviceFlagship()
	if got := m.IdxForFreq(0); got != 0 {
		t.Fatalf("IdxForFreq(0) = %d, want 0", got)
	}
	if got := m.IdxForFreq(m.Fmax() + 1); got != m.MaxIdx() {
		t.Fatalf("IdxForFreq(>fmax) = %d, want max", got)
	}
	for i, o := range m.OPPs {
		if got := m.IdxForFreq(o.FreqHz); got != i {
			t.Fatalf("IdxForFreq(OPP %d exact) = %d", i, got)
		}
		if i > 0 {
			if got := m.IdxForFreq(o.FreqHz - 1); got != i {
				t.Fatalf("IdxForFreq(just below OPP %d) = %d, want %d", i, got, i)
			}
		}
	}
}

func TestMinIdxForCycles(t *testing.T) {
	m := DeviceFlagship()
	// 10 M cycles in 33 ms needs ≥ 303 MHz → index of first OPP ≥ that.
	idx := m.MinIdxForCycles(10e6, 33*sim.Millisecond)
	need := 10e6 / 0.033
	if m.OPPs[idx].FreqHz < need {
		t.Fatalf("chosen OPP %d (%.0f Hz) below need %.0f Hz", idx, m.OPPs[idx].FreqHz, need)
	}
	if idx > 0 && m.OPPs[idx-1].FreqHz >= need {
		t.Fatalf("OPP %d not minimal", idx)
	}
	if got := m.MinIdxForCycles(1e9, 0); got != m.MaxIdx() {
		t.Fatalf("zero span should return max OPP, got %d", got)
	}
	if got := m.MinIdxForCycles(1e18, sim.Second); got != m.MaxIdx() {
		t.Fatalf("impossible demand should return max OPP, got %d", got)
	}
}

func TestVoltageWithinBounds(t *testing.T) {
	opps := GenerateOPPs(100e6, 1e9, 5, PowerParams{
		CeffF: 1e-9, Vmin: 0.7, Vmax: 1.1, VCurve: 1.5, LeakWPerV: 0.1, GateFrac: 0.1,
	})
	for _, o := range opps {
		if o.VoltageV < 0.7-1e-9 || o.VoltageV > 1.1+1e-9 {
			t.Fatalf("voltage %v outside [0.7, 1.1]", o.VoltageV)
		}
	}
	if math.Abs(opps[len(opps)-1].VoltageV-1.1) > 1e-9 {
		t.Fatalf("top OPP voltage %v, want Vmax", opps[len(opps)-1].VoltageV)
	}
}
