// Package player composes the streaming pipeline: segment download with
// ABR, the media buffer, the decode-ahead worker, and a display that
// consumes decoded frames at the frame rate, stalling on empty buffers and
// dropping late frames. It produces the QoE metrics the evaluation
// reports alongside energy.
package player

import (
	"fmt"

	"videodvfs/internal/abr"
	"videodvfs/internal/decode"
	"videodvfs/internal/energy"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// SessionHooks is the player-side integration surface for video-aware
// governors: decoder lifecycle plus playback and download transitions.
type SessionHooks interface {
	decode.Hooks
	// StreamInfo announces stream parameters once, before fetching
	// begins.
	StreamInfo(fps float64, totalFrames int)
	// PlaybackState fires when playback starts, stalls, resumes, or ends.
	PlaybackState(now sim.Time, playing bool)
	// DownloadActivity fires when the segment downloader goes busy/idle.
	DownloadActivity(now sim.Time, active bool)
	// BufferState fires when buffer occupancy changes materially (each
	// displayed frame and each segment arrival).
	BufferState(now sim.Time, mediaSec float64, readyFrames, readyCap int)
}

// NopSessionHooks is an embeddable no-op SessionHooks.
type NopSessionHooks struct{ decode.NopHooks }

// StreamInfo implements SessionHooks.
func (NopSessionHooks) StreamInfo(float64, int) {}

// PlaybackState implements SessionHooks.
func (NopSessionHooks) PlaybackState(sim.Time, bool) {}

// DownloadActivity implements SessionHooks.
func (NopSessionHooks) DownloadActivity(sim.Time, bool) {}

// BufferState implements SessionHooks.
func (NopSessionHooks) BufferState(sim.Time, float64, int, int) {}

var _ SessionHooks = NopSessionHooks{}

// tracingHooks decorates SessionHooks with structured event emission:
// decode start/end become FrameEvents, buffer and playback callbacks
// become Buffer/Playback events. Events fire before the inner hooks so a
// governor's Decision lands after the frame's decode_start in the stream.
type tracingHooks struct {
	SessionHooks
	tr trace.Tracer
}

// DecodeStart implements decode.Hooks.
func (h tracingHooks) DecodeStart(now sim.Time, f video.Frame, deadline sim.Time, ready, queueCap int) {
	h.tr.Frame(trace.FrameEvent{T: now, Stage: trace.StageDecodeStart, Frame: f.Index, Type: f.Type, Deadline: deadline})
	h.SessionHooks.DecodeStart(now, f, deadline, ready, queueCap)
}

// DecodeEnd implements decode.Hooks.
func (h tracingHooks) DecodeEnd(now sim.Time, f video.Frame, deadline sim.Time, measuredCycles float64) {
	h.tr.Frame(trace.FrameEvent{T: now, Stage: trace.StageDecodeEnd, Frame: f.Index, Type: f.Type, Deadline: deadline, Cycles: measuredCycles})
	h.SessionHooks.DecodeEnd(now, f, deadline, measuredCycles)
}

// PlaybackState implements SessionHooks.
func (h tracingHooks) PlaybackState(now sim.Time, playing bool) {
	h.tr.Playback(trace.PlaybackEvent{T: now, Playing: playing})
	h.SessionHooks.PlaybackState(now, playing)
}

// BufferState implements SessionHooks.
func (h tracingHooks) BufferState(now sim.Time, mediaSec float64, readyFrames, readyCap int) {
	h.tr.Buffer(trace.BufferEvent{T: now, LevelSec: mediaSec, Ready: readyFrames, Cap: readyCap})
	h.SessionHooks.BufferState(now, mediaSec, readyFrames, readyCap)
}

// Config tunes a streaming session.
type Config struct {
	// StartupSec is the media buffer (seconds) required to begin
	// playback.
	StartupSec float64
	// ResumeSec is the media buffer required to resume after a stall.
	ResumeSec float64
	// MaxBufferSec caps prefetching.
	MaxBufferSec float64
	// LowWaterSec enables burst prefetching: after filling to
	// MaxBufferSec the player stays idle until the buffer drains to this
	// level, then refills in one burst. Bursting consolidates radio
	// activity so the RRC tail timers (or fast dormancy) can release the
	// channel between bursts. Zero disables hysteresis (continuous
	// trickle, one segment per segment-duration).
	LowWaterSec float64
	// DecodedQueueCap is the decode-ahead depth in frames — the slack
	// store of the energy-aware policy.
	DecodedQueueCap int
	// SegmentDur is the media segment duration.
	SegmentDur sim.Time
	// ABR selects rungs; Fixed pins one rendition.
	ABR abr.Algorithm
	// ThroughputAlpha is the EWMA smoothing for throughput estimates.
	ThroughputAlpha float64
	// DisplayPowerW is the constant screen draw while the session runs
	// (metered if Meter is set).
	DisplayPowerW float64
	// AudioCyclesPerSec adds an audio-decode load: small decode-priority
	// jobs every 20 ms totalling this cycle rate (AAC software decode is
	// ≈10–20 M cycles/s). Zero disables audio.
	AudioCyclesPerSec float64
	// Forecast, when set, replaces the blind low-water burst trigger with
	// the predictive scheduler: instead of starting the refill exactly when
	// the buffer drains to LowWaterSec, the session scans the forecast for
	// the cheapest start that still meets the buffer deadline — racing
	// bursts into predicted good-channel windows and deferring through
	// fades the buffer can ride out. Requires LowWaterSec > 0 (the burst
	// structure the scheduler decides within). netsim.Oracle and
	// netsim.Noisy implement it.
	Forecast Forecast
	// Hooks receives governor callbacks; nil for baseline governors.
	Hooks SessionHooks
	// Meter, if set, receives display power.
	Meter *energy.Meter
	// Tracer, if set, receives frame lifecycle, ABR, buffer, playback,
	// and display-power events. nil (the default) disables tracing with
	// zero overhead on the playback path.
	Tracer trace.Tracer
}

// DefaultConfig returns the evaluation defaults: 4 s startup, 2 s resume,
// 30 s max buffer, 8-frame decode-ahead, 2 s segments, pinned top rung.
func DefaultConfig() Config {
	return Config{
		StartupSec:      4,
		ResumeSec:       2,
		MaxBufferSec:    30,
		DecodedQueueCap: 8,
		SegmentDur:      2 * sim.Second,
		ABR:             abr.Fixed{Rung: 0},
		ThroughputAlpha: 0.3,
		DisplayPowerW:   1.0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.StartupSec <= 0 || c.ResumeSec <= 0 {
		return fmt.Errorf("player: startup (%v) and resume (%v) thresholds must be positive", c.StartupSec, c.ResumeSec)
	}
	if c.MaxBufferSec < c.StartupSec {
		return fmt.Errorf("player: max buffer %v below startup threshold %v", c.MaxBufferSec, c.StartupSec)
	}
	if c.LowWaterSec < 0 || c.LowWaterSec > c.MaxBufferSec {
		return fmt.Errorf("player: low water %v outside [0, max buffer %v]", c.LowWaterSec, c.MaxBufferSec)
	}
	if c.DecodedQueueCap < 1 {
		return fmt.Errorf("player: decoded queue cap %d < 1", c.DecodedQueueCap)
	}
	if c.SegmentDur <= 0 {
		return fmt.Errorf("player: segment duration %v not positive", c.SegmentDur)
	}
	if c.ABR == nil {
		return fmt.Errorf("player: ABR algorithm is required")
	}
	if c.ThroughputAlpha <= 0 || c.ThroughputAlpha > 1 {
		return fmt.Errorf("player: throughput alpha %v outside (0, 1]", c.ThroughputAlpha)
	}
	if c.DisplayPowerW < 0 {
		return fmt.Errorf("player: negative display power")
	}
	if c.AudioCyclesPerSec < 0 {
		return fmt.Errorf("player: negative audio load")
	}
	if c.Forecast != nil {
		if c.LowWaterSec <= 0 {
			return fmt.Errorf("player: forecast scheduling requires a positive low-water mark (burst hysteresis)")
		}
		if h := c.Forecast.Horizon(); !(h > 0 && h < sim.Forever) {
			return fmt.Errorf("player: forecast horizon %v not a positive finite duration", h)
		}
	}
	return nil
}

// Metrics is the QoE summary of a session.
type Metrics struct {
	// StartupDelay is the time from session start to the first displayed
	// frame.
	StartupDelay sim.Time
	// RebufferCount is the number of mid-playback stalls.
	RebufferCount int
	// RebufferTime is the total stalled time.
	RebufferTime sim.Time
	// DroppedFrames are display slots skipped because decode was late.
	DroppedFrames int
	// DisplayedFrames reached the screen on time.
	DisplayedFrames int
	// TotalFrames is the stream length in frames.
	TotalFrames int
	// RungSwitches counts ABR rendition changes.
	RungSwitches int
	// MeanRungBps is the mean bitrate of fetched segments.
	MeanRungBps float64
	// SessionDur is wall time from Start to the last displayed frame.
	SessionDur sim.Time
	// Completed reports whether the stream finished within the horizon.
	Completed bool
}

// DropRate returns dropped / total frames.
func (m Metrics) DropRate() float64 {
	if m.TotalFrames == 0 {
		return 0
	}
	return float64(m.DroppedFrames) / float64(m.TotalFrames)
}

// RebufferRatio returns stalled time over session time.
func (m Metrics) RebufferRatio() float64 {
	if m.SessionDur <= 0 {
		return 0
	}
	return float64(m.RebufferTime / m.SessionDur)
}
