package player

import (
	"fmt"

	"videodvfs/internal/abr"
	"videodvfs/internal/cpu"
	"videodvfs/internal/decode"
	"videodvfs/internal/energy"
	"videodvfs/internal/sim"
	"videodvfs/internal/stats"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// Fetcher is the downloader interface the session consumes
// (netsim.Downloader implements it).
type Fetcher interface {
	// Fetch downloads bits and calls onDone at completion.
	Fetch(bits float64, onDone func(now sim.Time)) error
	// OnActive registers the busy/idle listener.
	OnActive(fn func(now sim.Time, active bool))
}

// Session is one streaming playback session.
type Session struct {
	eng   *sim.Engine
	core  decode.Submitter
	fet   Fetcher
	cfg   Config
	hooks SessionHooks

	renditions []*video.Stream
	segments   [][]video.Segment
	rates      []float64
	// segSrc/segDurs record which stream (by pointer) and segment duration
	// each segments entry was computed from, so Reset can keep segment
	// tables when a recycled session replays the same immutable streams.
	// The duration stamp is per rendition, not session-wide: the rendition
	// count can shrink and grow back across resets, and a stale entry
	// resurfacing from the slice's backing array must not pass the check
	// on the strength of a stamp some other rendition earned.
	segSrc  []*video.Stream
	segDurs []sim.Time
	fps     float64
	numSegs int
	total   int

	dec *decode.Decoder

	// Download state.
	nextSeg   int
	lastRung  int
	fetching  bool
	draining  bool      // burst mode: waiting for the buffer to hit low water
	planSeg   []float64 // scratch for the predictive planner's segment sizes
	tput      *stats.EWMA
	bitsSum   float64
	segsSum   int
	downLoade int // contiguous frames delivered to the decoder

	// In-flight fetch state. Exactly one fetch is outstanding at a time
	// (guarded by fetching), so fields plus the pre-bound fetchDoneFn
	// replace a per-fetch closure on the hot path.
	fetchRung   int
	fetchSeg    video.Segment
	fetchStart  sim.Time
	fetchDoneFn func(now sim.Time)

	// Playback state.
	started    bool
	playing    bool
	playhead   int
	nextTickAt sim.Time
	tickEv     sim.Event
	tickFn     func() // pre-bound s.tick, scheduled once per displayed frame
	stallStart sim.Time
	startedAt  sim.Time

	metrics Metrics
	done    bool
	onDone  []func()
	err     error

	audioTicker *sim.Ticker
	audioPool   cpu.JobPool

	// activityFn is the pre-bound downloader-activity listener; it reads
	// s.hooks at call time, so re-registering it after a fetcher reset
	// routes to whatever hooks the current run installed.
	activityFn func(now sim.Time, active bool)
}

// NewSession builds a session over scene-aligned renditions (one per
// ladder rung, ascending bitrate; a single rendition is fine with a Fixed
// ABR). core may be a single cpu.Core or a cluster router implementing
// decode.Submitter.
func NewSession(eng *sim.Engine, core decode.Submitter, fet Fetcher, renditions []*video.Stream, cfg Config) (*Session, error) {
	if fet == nil || core == nil {
		return nil, fmt.Errorf("player: fetcher and core are required")
	}
	s := &Session{
		eng:      eng,
		core:     core,
		fet:      fet,
		lastRung: -1,
		tput:     stats.NewEWMA(cfg.ThroughputAlpha),
	}
	if err := s.configure(renditions, cfg); err != nil {
		return nil, err
	}
	s.tickFn = s.tick
	s.fetchDoneFn = s.fetchDone
	s.activityFn = func(now sim.Time, active bool) { s.hooks.DownloadActivity(now, active) }
	dec, err := decode.New(eng, core, cfg.DecodedQueueCap, s.deadlineOf, s.hooks)
	if err != nil {
		return nil, err
	}
	s.dec = dec
	dec.OnReady(func(video.Frame) { s.tryStartOrResume() })
	fet.OnActive(s.activityFn)
	return s, nil
}

// configure validates (renditions, cfg) and installs them: config, wrapped
// hooks, bitrate table, and per-rung segment tables, reusing any segment
// table whose source stream and segment duration are unchanged (streams
// are immutable after generation, so identity implies identical segments).
func (s *Session) configure(renditions []*video.Stream, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(renditions) == 0 {
		return fmt.Errorf("player: no renditions")
	}
	base := renditions[0]
	for i, r := range renditions {
		if len(r.Frames) != len(base.Frames) {
			return fmt.Errorf("player: rendition %d has %d frames, rung 0 has %d", i, len(r.Frames), len(base.Frames))
		}
		if r.Spec.FPS != base.Spec.FPS {
			return fmt.Errorf("player: rendition %d fps %v differs from rung 0 (%v)", i, r.Spec.FPS, base.Spec.FPS)
		}
		if i > 0 && r.Spec.BitrateBps <= renditions[i-1].Spec.BitrateBps {
			return fmt.Errorf("player: renditions not ascending by bitrate at %d", i)
		}
	}
	hooks := cfg.Hooks
	if hooks == nil {
		hooks = NopSessionHooks{}
	}
	if cfg.Tracer != nil {
		hooks = tracingHooks{SessionHooks: hooks, tr: cfg.Tracer}
	}
	s.cfg = cfg
	s.hooks = hooks
	s.renditions = renditions
	s.fps = base.Spec.FPS
	s.total = len(base.Frames)
	if cap(s.rates) < len(renditions) {
		s.rates = make([]float64, len(renditions))
		s.segments = make([][]video.Segment, len(renditions))
		s.segSrc = make([]*video.Stream, len(renditions))
		s.segDurs = make([]sim.Time, len(renditions))
	} else {
		s.rates = s.rates[:len(renditions)]
		s.segments = s.segments[:len(renditions)]
		s.segSrc = s.segSrc[:len(renditions)]
		s.segDurs = s.segDurs[:len(renditions)]
	}
	for i, r := range renditions {
		s.rates[i] = r.Spec.BitrateBps
		if s.segSrc[i] == r && s.segDurs[i] == cfg.SegmentDur {
			continue
		}
		segs, err := video.Segmentize(r, cfg.SegmentDur)
		if err != nil {
			s.segSrc[i] = nil
			return fmt.Errorf("player: rendition %d: %w", i, err)
		}
		s.segments[i] = segs
		s.segSrc[i] = r
		s.segDurs[i] = cfg.SegmentDur
	}
	s.numSegs = len(s.segments[0])
	return nil
}

// Reset rewinds the session to the state NewSession would construct for
// (renditions, cfg), keeping its allocations: segment tables for unchanged
// streams, the completion-callback list's backing array, the decoder (and
// its queues and job pool), and every pre-bound callback survive. The
// engine, core, and fetcher the session was built over must be reset
// alongside by the caller; the fetcher's activity listener is re-registered
// here since a fetcher reset drops it.
func (s *Session) Reset(renditions []*video.Stream, cfg Config) error {
	if err := s.configure(renditions, cfg); err != nil {
		return err
	}
	if err := s.dec.Reset(cfg.DecodedQueueCap, s.hooks); err != nil {
		return err
	}
	s.fet.OnActive(s.activityFn)
	s.nextSeg = 0
	s.lastRung = -1
	s.fetching = false
	s.draining = false
	s.tput.Reinit(cfg.ThroughputAlpha)
	s.bitsSum = 0
	s.segsSum = 0
	s.downLoade = 0
	s.fetchRung = 0
	s.fetchSeg = video.Segment{}
	s.fetchStart = 0
	s.started = false
	s.playing = false
	s.playhead = 0
	s.nextTickAt = 0
	s.tickEv = sim.Event{}
	s.stallStart = 0
	s.startedAt = 0
	s.metrics = Metrics{}
	s.done = false
	for i := range s.onDone {
		s.onDone[i] = nil
	}
	s.onDone = s.onDone[:0]
	s.err = nil
	s.audioTicker = nil
	return nil
}

// Start begins fetching; playback starts once the startup buffer fills.
func (s *Session) Start() {
	s.startedAt = s.eng.Now()
	s.metrics.TotalFrames = s.total
	if s.cfg.Meter != nil {
		s.cfg.Meter.Set(energy.ComponentDisplay, s.cfg.DisplayPowerW)
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Power(trace.PowerEvent{T: s.eng.Now(), Component: energy.ComponentDisplay, Watts: s.cfg.DisplayPowerW})
	}
	s.hooks.StreamInfo(s.fps, s.total)
	s.hooks.PlaybackState(s.eng.Now(), false)
	if s.cfg.AudioCyclesPerSec > 0 {
		const audioPeriod = 20 * sim.Millisecond
		cycles := s.cfg.AudioCyclesPerSec * audioPeriod.Seconds()
		s.audioTicker = sim.NewTicker(s.eng, audioPeriod, func(sim.Time) {
			j := s.audioPool.Get()
			j.Cycles = cycles
			j.Priority = cpu.PrioDecode
			j.Tag = "audio"
			if err := s.core.Submit(j); err != nil && s.err == nil {
				s.err = fmt.Errorf("player: audio decode: %w", err)
			}
		})
	}
	s.maybeFetch()
}

// Done reports whether the session finished.
func (s *Session) Done() bool { return s.done }

// OnDone registers a completion callback.
func (s *Session) OnDone(fn func()) { s.onDone = append(s.onDone, fn) }

// Err returns the first internal error, if any.
func (s *Session) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.dec.Err()
}

// Metrics returns the QoE summary (final once Done).
func (s *Session) Metrics() Metrics { return s.metrics }

// Decoder exposes the decode worker (for experiment inspection).
func (s *Session) Decoder() *decode.Decoder { return s.dec }

// BufferSec returns the media buffer level in seconds of content ahead of
// the playhead.
func (s *Session) BufferSec() float64 {
	return float64(s.downLoade-s.playhead) / s.fps
}

// deadlineOf returns the frame's current scheduled display time. Before
// playback (startup or stall) frames are urgent: racing restores QoE.
func (s *Session) deadlineOf(f video.Frame) sim.Time {
	if !s.playing {
		return s.eng.Now()
	}
	return s.nextTickAt + sim.Time(float64(f.Index-s.playhead)/s.fps)
}

func (s *Session) allFetched() bool { return s.nextSeg >= s.numSegs }

func (s *Session) maybeFetch() {
	if s.fetching || s.allFetched() || s.done {
		return
	}
	if s.BufferSec() >= s.cfg.MaxBufferSec {
		s.draining = s.cfg.LowWaterSec > 0
		return // re-entered from display ticks as the buffer drains
	}
	if s.draining {
		if s.cfg.Forecast != nil {
			if !s.shouldStartBurst() {
				return // predictive defer: re-evaluated every display tick
			}
		} else if s.BufferSec() > s.cfg.LowWaterSec {
			return // hysteresis: let the radio sleep until low water
		}
		s.draining = false
	}
	rung := s.cfg.ABR.NextRung(abr.State{
		ThroughputBps: s.tput.Value(),
		BufferSec:     s.BufferSec(),
		LastRung:      s.lastRung,
		Rates:         s.rates,
	})
	if s.lastRung >= 0 && rung != s.lastRung {
		s.metrics.RungSwitches++
	}
	if s.cfg.Tracer != nil && rung != s.lastRung {
		s.cfg.Tracer.ABR(trace.ABREvent{T: s.eng.Now(), Segment: s.nextSeg,
			FromRung: s.lastRung, ToRung: rung, RateBps: s.rates[rung]})
	}
	seg := s.segments[rung][s.nextSeg]
	s.fetching = true
	s.fetchRung = rung
	s.fetchSeg = seg
	s.fetchStart = s.eng.Now()
	err := s.fet.Fetch(seg.Bits, s.fetchDoneFn)
	if err != nil {
		s.fetching = false
		if s.err == nil {
			s.err = fmt.Errorf("player: fetch segment %d: %w", s.nextSeg, err)
		}
	}
}

// fetchDone is the downloader completion callback for the single in-flight
// segment fetch started by maybeFetch.
func (s *Session) fetchDone(now sim.Time) {
	seg := s.fetchSeg
	s.fetching = false
	if dt := (now - s.fetchStart).Seconds(); dt > 0 {
		s.tput.Add(seg.Bits / dt)
	}
	s.lastRung = s.fetchRung
	s.nextSeg++
	s.bitsSum += seg.Bits
	s.segsSum++
	for _, f := range seg.Frames {
		s.dec.Push(f)
	}
	s.downLoade += len(seg.Frames)
	s.hooks.BufferState(now, s.BufferSec(), s.dec.ReadyLen(), s.dec.Cap())
	s.tryStartOrResume()
	s.maybeFetch()
}

// tryStartOrResume begins or resumes playback when enough content is
// buffered and the next frame is decoded.
func (s *Session) tryStartOrResume() {
	if s.playing || s.done {
		return
	}
	need := s.cfg.ResumeSec
	if !s.started {
		need = s.cfg.StartupSec
	}
	if s.BufferSec() < need && !s.allFetched() {
		return
	}
	if !s.dec.Ready(s.playhead) {
		return // decoder's OnReady will retry
	}
	now := s.eng.Now()
	if !s.started {
		s.started = true
		s.metrics.StartupDelay = now - s.startedAt
	} else {
		s.metrics.RebufferTime += now - s.stallStart
	}
	s.playing = true
	s.hooks.PlaybackState(now, true)
	s.nextTickAt = now
	s.tick()
}

func (s *Session) tick() {
	if s.done {
		return
	}
	idx := s.playhead
	if idx >= s.total {
		s.finish()
		return
	}
	if s.dec.Ready(idx) {
		// Advance the timeline *before* popping so the decoder's next
		// job sees fresh deadlines and queue state.
		s.playhead++
		s.nextTickAt += sim.Time(1 / s.fps)
		s.metrics.DisplayedFrames++
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Frame(trace.FrameEvent{T: s.eng.Now(), Stage: trace.StageShown, Frame: idx})
		}
		if _, ok := s.dec.Pop(idx); !ok && s.err == nil {
			s.err = fmt.Errorf("player: frame %d vanished between Ready and Pop", idx)
		}
		s.afterAdvance()
		return
	}
	if idx >= s.downLoade {
		// Media buffer dry: stall.
		s.playing = false
		s.stallStart = s.eng.Now()
		s.metrics.RebufferCount++
		s.hooks.PlaybackState(s.eng.Now(), false)
		// Re-arm the fetch pipeline: a predictive deferral that rode the
		// buffer to dry has no fetch in flight and no further ticks to
		// re-evaluate at — stalled sessions always fetch immediately. On
		// the reactive path this is a no-op (a stall with segments left
		// always has a fetch outstanding), so schedules are unchanged.
		s.maybeFetch()
		return
	}
	// Downloaded but not decoded in time: drop the slot.
	s.metrics.DroppedFrames++
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Frame(trace.FrameEvent{T: s.eng.Now(), Stage: trace.StageDropped, Frame: idx})
	}
	s.playhead++
	s.nextTickAt += sim.Time(1 / s.fps)
	s.dec.DiscardBelow(idx + 1)
	s.afterAdvance()
}

func (s *Session) afterAdvance() {
	s.hooks.BufferState(s.eng.Now(), s.BufferSec(), s.dec.ReadyLen(), s.dec.Cap())
	s.maybeFetch()
	if s.playhead >= s.total {
		s.finish()
		return
	}
	s.tickEv = s.eng.At(s.nextTickAt, s.tickFn)
}

func (s *Session) finish() {
	if s.done {
		return
	}
	s.done = true
	s.playing = false
	now := s.eng.Now()
	s.metrics.SessionDur = now - s.startedAt
	s.metrics.Completed = true
	if s.segsSum > 0 {
		s.metrics.MeanRungBps = s.bitsSum / (float64(s.segsSum) * s.cfg.SegmentDur.Seconds())
	}
	if s.cfg.Meter != nil {
		s.cfg.Meter.Set(energy.ComponentDisplay, 0)
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Power(trace.PowerEvent{T: now, Component: energy.ComponentDisplay, Watts: 0})
	}
	if s.audioTicker != nil {
		s.audioTicker.Stop()
	}
	s.hooks.PlaybackState(now, false)
	s.eng.Cancel(s.tickEv)
	for _, fn := range s.onDone {
		fn()
	}
}
