package player

import (
	"math"
	"testing"

	"videodvfs/internal/netsim"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// oracleOver is shorthand for a perfect forecast over a bandwidth model.
func oracleOver(bw netsim.Bandwidth, lookahead sim.Time) Forecast {
	return netsim.Oracle{BW: bw, Lookahead: lookahead}
}

// TestPlanBurstFlatForecastDefersToLowWater pins the armed-but-equal
// property at the plan level: on a flat forecast nothing distinguishes the
// windows, so the plan must defer to the reactive low-water trigger — not
// start early, not start late.
func TestPlanBurstFlatForecastDefersToLowWater(t *testing.T) {
	fc := oracleOver(netsim.Constant{Bps: 8e6}, 20*sim.Second)
	now := 10 * sim.Second
	lowT := now + 5*sim.Second
	deadline := now + 30*sim.Second
	start := planBurst(fc, now, []float64{40e6}, 2, 20, lowT, deadline, false)
	if start != lowT {
		t.Fatalf("flat forecast: start %v, want the reactive trigger %v", start, lowT)
	}
	// Urgent (at/below low water): flat forecast starts immediately.
	if s := planBurst(fc, now, []float64{40e6}, 2, 20, now, deadline, true); s != now {
		t.Fatalf("flat urgent: start %v, want now %v", s, now)
	}
}

// TestPlanBurstRacesBeforeFade pins the race-into-the-window rule: when
// the burst fits the current good window but any later start straddles a
// predicted fade, the plan starts now — before the reactive trigger.
func TestPlanBurstRacesBeforeFade(t *testing.T) {
	// Good 16 Mbps until t=14 s, then a long fade.
	bw := netsim.Steps{Trace: []netsim.Step{
		{Start: 0, Bps: 16e6},
		{Start: 14 * sim.Second, Bps: 0.2e6},
	}}
	fc := oracleOver(bw, 30*sim.Second)
	now := 10 * sim.Second
	lowT := now + 6*sim.Second // reactive would wait until inside the fade
	deadline := now + 40*sim.Second
	// 48 Mbit at 16 Mbps = 3 s: fits [10, 14) if started now; started at
	// the boundary or at lowT it crawls at 0.2 Mbps.
	start := planBurst(fc, now, []float64{48e6}, 2, 20, lowT, deadline, false)
	if start != now {
		t.Fatalf("burst fits the closing window: start %v, want now %v", start, now)
	}
}

// TestPlanBurstDefersThroughFade pins the ride-out rule: fetching straight
// into a fade loses to waiting for a predicted recovery the buffer can
// ride to, even at/below low water.
func TestPlanBurstDefersThroughFade(t *testing.T) {
	bw := netsim.Steps{Trace: []netsim.Step{
		{Start: 0, Bps: 0.2e6},
		{Start: 16 * sim.Second, Bps: 16e6},
	}}
	fc := oracleOver(bw, 30*sim.Second)
	now := 10 * sim.Second
	deadline := now + 20*sim.Second // recovery at +6 s, buffer rides it out
	start := planBurst(fc, now, []float64{48e6}, 2, 20, now, deadline, true)
	if start != 16*sim.Second {
		t.Fatalf("fade with rideable recovery: start %v, want the recovery boundary %v",
			start, 16*sim.Second)
	}
	// If the deadline cannot wait for the recovery, start now (reactive
	// degrade): crawling bits beats provably missing the deadline.
	if s := planBurst(fc, now, []float64{48e6}, 2, 20, now, now+4*sim.Second, true); s != now {
		t.Fatalf("doomed deadline: start %v, want now %v", s, now)
	}
}

// TestPlanBurstZeroBits pins the trivial-burst case.
func TestPlanBurstZeroBits(t *testing.T) {
	fc := oracleOver(netsim.Constant{Bps: 8e6}, 10*sim.Second)
	if d := burstDur(fc, 0, nil, 2, sim.Forever); d != 0 {
		t.Fatalf("burstDur(0 bits) = %v", d)
	}
	if d := burstDur(fc, 0, []float64{8e6}, 2, 10*sim.Second); d != 1 {
		t.Fatalf("burstDur(8 Mbit @ 8 Mbps) = %v, want 1 s", d)
	}
}

// TestPredictiveEqualOnFlatLink pins the tentpole equality: a session with
// a perfect forecast over a constant link schedules byte-identically to
// the reactive low-water path — same metrics, same fetch count.
func TestPredictiveEqualOnFlatLink(t *testing.T) {
	const bps = 6e6
	run := func(fc Forecast) (Metrics, int) {
		eng, core := singleOPPCore(t, 1e9)
		stream := flatStream(30, 60, 1e6, 1e6)
		cfg := DefaultConfig()
		cfg.LowWaterSec = 10
		cfg.Forecast = fc
		fet := &fakeFetcher{eng: eng, bps: bps}
		s, err := NewSession(eng, core, fet, []*video.Stream{stream}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		eng.RunUntil(10 * sim.Minute)
		if s.Err() != nil {
			t.Fatal(s.Err())
		}
		return s.Metrics(), fet.fetches
	}
	reactive, rFetches := run(nil)
	predictive, pFetches := run(oracleOver(netsim.Constant{Bps: bps}, 20*sim.Second))
	if reactive != predictive {
		t.Fatalf("metrics diverged:\nreactive   %+v\npredictive %+v", reactive, predictive)
	}
	if rFetches != pFetches {
		t.Fatalf("fetch counts diverged: reactive %d, predictive %d", rFetches, pFetches)
	}
}

// fadingFetcher delivers fast until fadeAt, then slow: the real link
// fades while a wrong forecast still promises a recovery.
type fadingFetcher struct {
	*fakeFetcher
	fadeAt sim.Time
	slow   float64
}

func (f *fadingFetcher) Fetch(bits float64, onDone func(now sim.Time)) error {
	if f.eng.Now() >= f.fadeAt {
		f.bps = f.slow
	}
	return f.fakeFetcher.Fetch(bits, onDone)
}

// TestPredictiveStallRearms pins the deferral safety net: a forecast that
// defers toward a predicted recovery rides the buffer down; when the
// prediction is wrong (the real link fades instead), the session must
// stall, keep fetching against the real link, and complete — never
// deadlock with the plan still saying "later". The planner's own doomed
// fallback (start when no candidate meets the deadline) plus the stall
// re-arm in tick() are what this exercises.
func TestPredictiveStallRearms(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	stream := flatStream(30, 20, 1e6, 1e6)
	cfg := DefaultConfig()
	cfg.StartupSec = 2
	cfg.MaxBufferSec = 10
	cfg.LowWaterSec = 5
	// The forecast believes the link is dead until t=9 s and infinitely
	// fast after. The plan defers toward that recovery from the moment
	// draining starts (the recovery is predicted rideable); the real link
	// fades at t=5 s to 0.2 Mbps, so the fetch the planner finally
	// launches cannot land before the buffer runs dry.
	cfg.Forecast = oracleOver(netsim.Steps{Trace: []netsim.Step{
		{Start: 0, Bps: 0},
		{Start: 9 * sim.Second, Bps: 1e12},
	}}, 30*sim.Second)
	fet := &fadingFetcher{
		fakeFetcher: &fakeFetcher{eng: eng, bps: 5e6},
		fadeAt:      5 * sim.Second,
		slow:        0.2e6,
	}
	s, err := NewSession(eng, core, fet, []*video.Stream{stream}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(10 * sim.Minute)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	m := s.Metrics()
	if !m.Completed {
		t.Fatalf("session deadlocked after deferral: %+v", m)
	}
	if m.RebufferCount == 0 {
		t.Fatalf("expected the deferral to ride the buffer dry: %+v", m)
	}
}

// TestConfigForecastValidation pins the forecast config contract: a
// forecast without burst hysteresis (or with a degenerate horizon) is a
// config error, not a silent no-op.
func TestConfigForecastValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Forecast = oracleOver(netsim.Constant{Bps: 1e6}, 10*sim.Second)
	cfg.LowWaterSec = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("forecast without low-water hysteresis accepted")
	}
	cfg.LowWaterSec = 5
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, h := range []sim.Time{0, -sim.Second, sim.Forever, sim.Time(math.NaN())} {
		cfg.Forecast = oracleOver(netsim.Constant{Bps: 1e6}, h)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("forecast horizon %v accepted", h)
		}
	}
}

// FuzzForecastSchedule asserts the scheduler's safety envelope over
// random seeded bandwidth models, lookaheads, and decision states: the
// planned start is never in the past, never beyond the forecast horizon,
// and never non-finite — for perfect and noisy forecasts alike, including
// models with outages, cycles, and sub-frame pieces.
func FuzzForecastSchedule(f *testing.F) {
	f.Add(int64(1), 0.0, int64(20_000), 5.0, 30.0, 10.0, 48e6, 20.0, 20.0, false)
	f.Add(int64(7), 0.3, int64(5_000), 0.0, 2.0, 0.5, 8e6, 4.0, 1.5, true)
	f.Add(int64(-3), 2.0, int64(600_000), 100.0, 1.0, 0.0, 1e9, 0.1, 0.0, false)
	f.Add(int64(42), 0.05, int64(1), 0.001, 0.5, 0.25, 1e3, 1e6, 1e6, true)
	f.Fuzz(func(t *testing.T, seed int64, relErr float64, lookaheadMs int64,
		nowS, bufS, lowS, bits, extraS, refillS float64, urgent bool) {
		rng := sim.NewRNG(seed)
		n := 1 + rng.Intn(8)
		steps := make([]netsim.Step, n)
		var at sim.Time
		for i := range steps {
			var bps float64
			if rng.Float64() > 0.2 { // 20% outage pieces
				bps = rng.Uniform(1e3, 40e6)
			}
			steps[i] = netsim.Step{Start: at, Bps: bps}
			at += sim.Time(rng.Uniform(0.05, 5))
		}
		bw := netsim.Steps{Trace: steps}
		if rng.Float64() > 0.5 {
			bw.Cycle = at + sim.Time(rng.Uniform(0.01, 2))
		}
		lookahead := sim.Time(lookaheadMs) * sim.Millisecond
		if !(lookahead > 0) || lookahead > 600*sim.Second {
			lookahead = 20 * sim.Second
		}
		var fc Forecast = netsim.Oracle{BW: bw, Lookahead: lookahead}
		if relErr == relErr && relErr > 0 && relErr < 10 {
			noisy, err := netsim.NewNoisy(fc.(netsim.Oracle), relErr, seed)
			if err != nil {
				t.Fatal(err)
			}
			fc = noisy
		}
		clamp := func(v, lo, hi float64) float64 {
			if !(v >= lo) {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		now := sim.Time(clamp(nowS, 0, 1e6))
		buf := clamp(bufS, 0, 600)
		low := clamp(lowS, 0, buf)
		lowT := now + sim.Time(buf-low)
		deadline := now + sim.Time(buf) + sim.Time(clamp(extraS, 0, 600))
		if !(bits >= 0) || bits > 1e15 {
			bits = 1e6
		}

		start := planBurst(fc, now, []float64{bits / 2, bits / 2}, clamp(extraS, 0.1, 30), clamp(refillS, 0.5, 120), lowT, deadline, urgent)
		if math.IsNaN(float64(start)) || math.IsInf(float64(start), 0) {
			t.Fatalf("planBurst returned non-finite start %v", start)
		}
		if start < now {
			t.Fatalf("planBurst proposed a start in the past: %v < now %v", start, now)
		}
		if start > now+fc.Horizon() {
			t.Fatalf("planBurst proposed a start beyond the horizon: %v > %v",
				start, now+fc.Horizon())
		}
	})
}
