package player

import (
	"testing"
	"testing/quick"

	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// Property: for any link rate, decode cost, and content length, a
// completed session conserves frames (displayed + dropped = total), never
// reports negative metrics, and keeps the buffer non-negative.
func TestSessionConservationProperty(t *testing.T) {
	f := func(seed int64, rateRaw, costRaw, lenRaw uint8) bool {
		rng := sim.Stream(seed, "prop/player")
		_ = rng
		bps := 0.5e6 + float64(rateRaw)/255*20e6
		cycles := 1e6 + float64(costRaw)/255*60e6
		seconds := 5 + float64(lenRaw%20)
		eng, core := singleOPPCore(&testing.T{}, 1.5e9)
		stream := flatStream(30, seconds, 1e6, cycles)
		fet := &fakeFetcher{eng: eng, bps: bps}
		s, err := NewSession(eng, core, fet, []*video.Stream{stream}, DefaultConfig())
		if err != nil {
			return false
		}
		minBuffer := 0.0
		probe := sim.NewTicker(eng, 100*sim.Millisecond, func(sim.Time) {
			if b := s.BufferSec(); b < minBuffer {
				minBuffer = b
			}
		})
		defer probe.Stop()
		s.Start()
		eng.RunUntil(30 * sim.Minute)
		if s.Err() != nil {
			return false
		}
		m := s.Metrics()
		if !m.Completed {
			return false // 30 min is generous for ≤25 s of content
		}
		if m.DisplayedFrames+m.DroppedFrames != m.TotalFrames {
			return false
		}
		if m.StartupDelay < 0 || m.RebufferTime < 0 || m.SessionDur <= 0 {
			return false
		}
		if m.RebufferCount < 0 || m.RungSwitches < 0 {
			return false
		}
		return minBuffer >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a session is deterministic — the same inputs give the same
// metrics.
func TestSessionDeterminismProperty(t *testing.T) {
	run := func() Metrics {
		eng, core := singleOPPCore(&testing.T{}, 1e9)
		stream := flatStream(30, 15, 2e6, 20e6)
		fet := &fakeFetcher{eng: eng, bps: 3e6}
		s, err := NewSession(eng, core, fet, []*video.Stream{stream}, DefaultConfig())
		if err != nil {
			return Metrics{}
		}
		s.Start()
		eng.RunUntil(10 * sim.Minute)
		return s.Metrics()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical sessions diverged:\n%+v\n%+v", a, b)
	}
}

// Property: decoder work never exceeds the frames pushed: decoded +
// skipped ≤ total, and discarded ≤ decoded.
func TestSessionDecoderAccountingProperty(t *testing.T) {
	f := func(costRaw uint8) bool {
		cycles := 1e6 + float64(costRaw)/255*80e6 // up to hard overload
		eng, core := singleOPPCore(&testing.T{}, 1e9)
		stream := flatStream(30, 10, 1e6, cycles)
		fet := &fakeFetcher{eng: eng, bps: 10e6}
		s, err := NewSession(eng, core, fet, []*video.Stream{stream}, DefaultConfig())
		if err != nil {
			return false
		}
		s.Start()
		eng.RunUntil(10 * sim.Minute)
		c := s.Decoder().Counts()
		if c.Decoded+c.Skipped > len(stream.Frames) {
			return false
		}
		return c.Discarded <= c.Decoded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
