package player

import (
	"math"

	"videodvfs/internal/sim"
)

// Forecast is the bandwidth-prediction interface the predictive download
// scheduler consumes. It is declared here structurally — like Fetcher — so
// the player never imports netsim; netsim.Oracle and netsim.Noisy satisfy
// it implicitly.
//
// Predictions must be pure and query-order-independent: the scheduler
// re-evaluates the forecast at every display tick, and how often it asked
// must not change what it was told.
type Forecast interface {
	// Predict returns the predicted rate in bits/s at t and the horizon up
	// to which that prediction holds (> t, piecewise-constant).
	Predict(t sim.Time) (bps float64, until sim.Time)
	// Horizon returns the lookahead window relative to the query time;
	// the scheduler never acts on predictions beyond now+Horizon.
	Horizon() sim.Time
}

// planPieceCap bounds forecast-piece iteration in the planner. A forecast
// that keeps returning micro-pieces (or fails to advance) terminates
// against this cap instead of hanging the decision point; the integration
// then reports "doesn't fit" and the scheduler degrades to reactive.
const planPieceCap = 512

// burstTailSec approximates the radio's fixed per-burst overhead: the
// inactivity tail a burst leaves behind once the transfer ends (≈10 s of
// DCH/CONNECTED on LTE, T1+T2 on UMTS). The planner charges this against
// early starts — racing a burst Δ seconds before the reactive trigger
// shrinks the refill by Δ buffer-seconds, which adds Δ/refill extra
// bursts (and tails) over the session — so a race must buy back more
// delivery time than the tail time it amortizes in. Without this charge
// the planner races into every marginally-better window and the extra
// tails eat the win.
const burstTailSec = 10.0

// planBurst decides when a refill burst of `bits` should start, given the
// forecast at time now. It returns a finite start in [now, now+Horizon]:
// now itself means "start immediately", any later time means "defer and
// re-evaluate at the next decision point". refillSec is the nominal
// buffer gain of a full burst (max buffer − low water), the amortization
// base for the per-burst tail charge.
//
// The candidate starts are now, every forecast piece boundary before
// capEnd = min(now+Horizon, last segment deadline), and — above the
// low-water mark — the reactive trigger time lowT (when the draining
// buffer will cross low water). Each candidate is scored by the burst's
// delivery duration d(s), integrating the forecast piecewise from s;
// candidates whose burst misses any per-segment deadline score +Inf.
//
//   - Above low water (urgent == false): the reactive trigger is the
//     default. A candidate earlier than lowT pays the amortized tail
//     charge burstTailSec·(lowT−s)/refillSec on top of d(s) and must
//     still beat d(lowT) strictly — a race only wins when the burst fits
//     a good window that the reactive start would straddle into a fade.
//     A later candidate pays no charge (deferring grows the burst) but
//     must be strictly cheaper, so a flat forecast defers exactly like
//     the reactive path.
//   - At/below low water (urgent == true): start now unless some later
//     candidate is strictly better — a predicted recovery the buffer can
//     ride toward beats fetching straight into a fade.
//
// When everything scores +Inf (a doomed link), the reactive start wins:
// the plan degrades to the reactive schedule.
//
// The burst is a sequence of segments (segBits); segment j must be fully
// delivered by tDry + j·segSec — the instant playback exhausts the j
// segments buffered ahead of it. Per-segment deadlines are what make
// deferral safe: a whole-burst deadline lets a fading forecast front-load
// the slack and stall mid-burst anyway.
func planBurst(fc Forecast, now sim.Time, segBits []float64, segSec, refillSec float64, lowT, tDry sim.Time, urgent bool) sim.Time {
	h := fc.Horizon()
	if !(h > 0) || math.IsInf(float64(h), 0) {
		return now
	}
	capEnd := now + h
	if len(segBits) > 0 {
		if last := tDry + sim.Time(float64(len(segBits)-1)*segSec); last < capEnd {
			capEnd = last
		}
	}
	if !(capEnd > now) {
		return now
	}

	if urgent {
		// At/below low water "now" is the reactive behavior; only a
		// strictly cheaper later window justifies riding the fade out.
		best, bestD := now, burstDur(fc, now, segBits, segSec, tDry)
		t := now
		for range planPieceCap {
			_, until := fc.Predict(t)
			if !(until > t) || until > capEnd {
				break
			}
			if d := burstDur(fc, until, segBits, segSec, tDry); d < bestD {
				best, bestD = until, d
			}
			t = until
		}
		return best
	}

	ref := lowT
	if ref > capEnd {
		ref = capEnd
	}
	if ref < now {
		ref = now
	}
	if !(refillSec > 0) {
		refillSec = 1
	}
	score := func(s sim.Time) float64 {
		d := burstDur(fc, s, segBits, segSec, tDry)
		if s < ref {
			d += burstTailSec * float64(ref-s) / refillSec
		}
		return d
	}
	// Seed with the reactive trigger so every tie resolves to it: the
	// predictive schedule deviates only when a candidate is strictly
	// cheaper after the tail charge.
	best, bestD := ref, score(ref)
	consider := func(s sim.Time) {
		if d := score(s); d < bestD {
			best, bestD = s, d
		}
	}
	consider(now)
	t := now
	for range planPieceCap {
		_, until := fc.Predict(t)
		if !(until > t) || until > capEnd {
			break
		}
		consider(until)
		t = until
	}
	return best
}

// burstDur integrates the forecast from s until every segment of the
// burst has been delivered, returning the delivery duration in seconds —
// or +Inf if any segment misses its deadline (segment j is due at
// tDry + j·segSec, when playback exhausts the buffer ahead of it) or the
// forecast degenerates. Non-finite or negative predicted rates are
// treated as outage.
func burstDur(fc Forecast, s sim.Time, segBits []float64, segSec float64, tDry sim.Time) float64 {
	seg := 0
	for seg < len(segBits) && segBits[seg] <= 0 {
		seg++
	}
	if seg >= len(segBits) {
		return 0
	}
	rem := segBits[seg]
	due := tDry + sim.Time(float64(seg)*segSec)
	t := s
	for range planPieceCap {
		if t > due {
			return math.Inf(1)
		}
		bps, until := fc.Predict(t)
		if math.IsNaN(bps) || math.IsInf(bps, 0) || bps < 0 {
			bps = 0
		}
		if !(until > t) {
			return math.Inf(1) // non-advancing forecast
		}
		if bps > 0 {
			// Drain as many segment completions as fit in this piece.
			for {
				finish := t + sim.Time(rem/bps)
				if finish > until {
					rem -= bps * (until - t).Seconds()
					break
				}
				if finish > due {
					return math.Inf(1)
				}
				t = finish
				seg++
				for seg < len(segBits) && segBits[seg] <= 0 {
					seg++
				}
				if seg >= len(segBits) {
					return float64(finish - s)
				}
				rem = segBits[seg]
				due = tDry + sim.Time(float64(seg)*segSec)
			}
		}
		t = until
	}
	return math.Inf(1)
}

// shouldStartBurst is the predictive replacement for the reactive
// low-water trigger: called from maybeFetch while draining (a forecast is
// attached), it reports whether the refill burst should start at this
// decision point. Deferred decisions are re-evaluated every display tick,
// so "no" now never strands the session — and when playback is stopped
// (startup or stall) the answer is always yes, racing restores QoE.
func (s *Session) shouldStartBurst() bool {
	if !s.playing {
		return true
	}
	now := s.eng.Now()
	buf := s.BufferSec()
	// The burst refills low water → max buffer, at the rung the ABR last
	// fetched (the plan is advisory; the ABR re-decides per segment).
	segSec := s.cfg.SegmentDur.Seconds()
	nSegs := int(math.Ceil((s.cfg.MaxBufferSec - s.cfg.LowWaterSec) / segSec))
	if nSegs < 1 {
		nSegs = 1
	}
	if rem := s.numSegs - s.nextSeg; nSegs > rem {
		nSegs = rem
	}
	rung := s.lastRung
	if rung < 0 {
		rung = 0
	}
	if cap(s.planSeg) < nSegs {
		s.planSeg = make([]float64, nSegs)
	}
	segBits := s.planSeg[:nSegs]
	for j := range nSegs {
		segBits[j] = s.segments[rung][s.nextSeg+j].Bits
	}
	// While playing, the buffer drains at 1 s/s: it crosses low water at
	// lowT and runs dry at tDry — the deadline for the burst's first
	// segment; each later segment buys itself segSec more playback. One
	// segment of guard absorbs the plan's optimistic edges (the ABR may
	// upgrade the rung mid-burst, and fetches land whole-segment): a
	// deferral that only just fits the model is not worth a stall.
	lowT := now + sim.Time(buf-s.cfg.LowWaterSec)
	tDry := now + sim.Time(buf-segSec)
	urgent := buf <= s.cfg.LowWaterSec
	refill := s.cfg.MaxBufferSec - s.cfg.LowWaterSec
	return planBurst(s.cfg.Forecast, now, segBits, segSec, refill, lowT, tDry, urgent) <= now
}
