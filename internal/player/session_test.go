package player

import (
	"math"
	"testing"

	"videodvfs/internal/abr"
	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// fakeFetcher delivers bits at a fixed rate with no radio modelling.
type fakeFetcher struct {
	eng      *sim.Engine
	bps      float64
	extra    sim.Time
	onActive func(now sim.Time, active bool)
	fetches  int
}

func (f *fakeFetcher) Fetch(bits float64, onDone func(now sim.Time)) error {
	f.fetches++
	if f.onActive != nil {
		f.onActive(f.eng.Now(), true)
	}
	f.eng.Schedule(f.extra+sim.Time(bits/f.bps), func() {
		if f.onActive != nil {
			f.onActive(f.eng.Now(), false)
		}
		if onDone != nil {
			onDone(f.eng.Now())
		}
	})
	return nil
}

func (f *fakeFetcher) OnActive(fn func(now sim.Time, active bool)) { f.onActive = fn }

// flatStream builds a stream with constant per-frame bits and cycles.
func flatStream(fps float64, seconds, bitrateBps, cycles float64) *video.Stream {
	spec := video.DefaultSpec(video.TitleNews, video.R360p)
	spec.FPS = fps
	spec.BitrateBps = bitrateBps
	n := int(fps * seconds)
	frames := make([]video.Frame, n)
	for i := range frames {
		frames[i] = video.Frame{
			Index:  i,
			Type:   video.FrameP,
			PTS:    sim.Time(float64(i) / fps),
			Bits:   bitrateBps / fps,
			Cycles: cycles,
		}
	}
	return &video.Stream{Spec: spec, Frames: frames}
}

func singleOPPCore(t *testing.T, hz float64) (*sim.Engine, *cpu.Core) {
	t.Helper()
	eng := sim.NewEngine()
	core, err := cpu.NewCore(eng, cpu.Model{
		Name: "test",
		OPPs: []cpu.OPP{{FreqHz: hz, VoltageV: 1, ActiveW: 1, IdleW: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, core
}

func runSession(t *testing.T, eng *sim.Engine, core *cpu.Core, bps float64, stream *video.Stream, cfg Config) *Session {
	t.Helper()
	fet := &fakeFetcher{eng: eng, bps: bps}
	s, err := NewSession(eng, core, fet, []*video.Stream{stream}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(10 * sim.Minute)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	return s
}

func TestSessionHappyPath(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	stream := flatStream(30, 10, 1e6, 1e6) // 1 ms decode per 33 ms slot
	s := runSession(t, eng, core, 10e6, stream, DefaultConfig())
	m := s.Metrics()
	if !m.Completed {
		t.Fatal("session did not complete")
	}
	if m.DroppedFrames != 0 || m.RebufferCount != 0 {
		t.Fatalf("unexpected QoE loss: %+v", m)
	}
	if m.DisplayedFrames != 300 || m.TotalFrames != 300 {
		t.Fatalf("frame accounting: %+v", m)
	}
	// Startup: 4 s of 1 Mbps content at 10 Mbps ≈ 0.4 s + decode.
	if m.StartupDelay <= 0 || m.StartupDelay > sim.Second {
		t.Fatalf("startup delay %v implausible", m.StartupDelay)
	}
	// Session ≈ startup + 10 s of playback.
	want := m.StartupDelay + 10*sim.Second
	if math.Abs(float64(m.SessionDur-want)) > 0.1 {
		t.Fatalf("session duration %v, want ≈%v", m.SessionDur, want)
	}
}

func TestSessionSlowCPUDropsFrames(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	// 50 ms decode per 33 ms slot: decoder sustains ~2/3 of fps.
	stream := flatStream(30, 10, 1e6, 50e6)
	s := runSession(t, eng, core, 10e6, stream, DefaultConfig())
	m := s.Metrics()
	if !m.Completed {
		t.Fatal("session did not complete")
	}
	if m.DropRate() < 0.2 {
		t.Fatalf("drop rate %.2f, want ≥ 0.2 under 1.5× overload", m.DropRate())
	}
	if m.DisplayedFrames+m.DroppedFrames != m.TotalFrames {
		t.Fatalf("frames do not add up: %+v", m)
	}
}

func TestSessionSlowNetworkRebuffers(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	// Content at 2 Mbps over a 1 Mbps link: sustained starvation.
	stream := flatStream(30, 20, 2e6, 1e6)
	s := runSession(t, eng, core, 1e6, stream, DefaultConfig())
	m := s.Metrics()
	if !m.Completed {
		t.Fatal("session did not complete")
	}
	if m.RebufferCount == 0 || m.RebufferTime <= 0 {
		t.Fatalf("expected rebuffering: %+v", m)
	}
	if m.DroppedFrames != 0 {
		t.Fatalf("network starvation must stall, not drop: %+v", m)
	}
	// Total wall time ≈ download-bound: 20 s of content needs ≥ 40 s.
	if m.SessionDur < 38*sim.Second {
		t.Fatalf("session %v too fast for a 2× undersized link", m.SessionDur)
	}
}

func TestSessionBufferCapRespected(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	stream := flatStream(30, 60, 1e6, 1e6)
	cfg := DefaultConfig()
	cfg.MaxBufferSec = 10
	fet := &fakeFetcher{eng: eng, bps: 100e6}
	s, err := NewSession(eng, core, fet, []*video.Stream{stream}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxSeen := 0.0
	s.OnDone(func() {})
	probe := sim.NewTicker(eng, 100*sim.Millisecond, func(sim.Time) {
		if b := s.BufferSec(); b > maxSeen {
			maxSeen = b
		}
	})
	defer probe.Stop()
	s.Start()
	eng.RunUntil(5 * sim.Minute)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	// One segment of slack over the cap is allowed (fetch decided below
	// the cap completes above it).
	if maxSeen > cfg.MaxBufferSec+2.1 {
		t.Fatalf("buffer reached %.1f s, cap %v", maxSeen, cfg.MaxBufferSec)
	}
	if !s.Done() {
		t.Fatal("session did not complete")
	}
}

func TestSessionABRSwitchesUpOnGoodNetwork(t *testing.T) {
	eng, core := singleOPPCore(t, 2e9)
	ladder, err := video.GenerateLadder(video.TitleNews, 30, video.DefaultLadder(), 30*sim.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ABR = abr.NewRateBased()
	fet := &fakeFetcher{eng: eng, bps: 20e6}
	s, err := NewSession(eng, core, fet, ladder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(10 * sim.Minute)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	m := s.Metrics()
	if !m.Completed {
		t.Fatal("session did not complete")
	}
	// First segment at rung 0 (no estimate), then up to the top rung:
	// at least one switch, and a mean bitrate well above rung 0.
	if m.RungSwitches == 0 {
		t.Fatal("rate-based ABR never switched on a 20 Mbps link")
	}
	if m.MeanRungBps < 2e6 {
		t.Fatalf("mean bitrate %.1f Mbps too low", m.MeanRungBps/1e6)
	}
}

type captureHooks struct {
	NopSessionHooks
	playback []bool
	download []bool
	buffers  int
	starts   int
}

func (h *captureHooks) PlaybackState(_ sim.Time, playing bool) {
	h.playback = append(h.playback, playing)
}
func (h *captureHooks) DownloadActivity(_ sim.Time, a bool)                   { h.download = append(h.download, a) }
func (h *captureHooks) BufferState(sim.Time, float64, int, int)               { h.buffers++ }
func (h *captureHooks) DecodeStart(sim.Time, video.Frame, sim.Time, int, int) { h.starts++ }

func TestSessionHooksWiring(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	stream := flatStream(30, 5, 1e6, 1e6)
	cfg := DefaultConfig()
	h := &captureHooks{}
	cfg.Hooks = h
	fet := &fakeFetcher{eng: eng, bps: 10e6}
	s, err := NewSession(eng, core, fet, []*video.Stream{stream}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(2 * sim.Minute)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if len(h.playback) < 3 || h.playback[0] || !h.playback[1] {
		t.Fatalf("playback transitions = %v, want [false true ... false]", h.playback)
	}
	if h.playback[len(h.playback)-1] {
		t.Fatal("final playback state should be false")
	}
	if len(h.download) == 0 {
		t.Fatal("download activity hook never fired")
	}
	if h.buffers == 0 || h.starts != 150 {
		t.Fatalf("buffer updates=%d decode starts=%d (want 150 starts)", h.buffers, h.starts)
	}
}

func TestSessionValidation(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	stream := flatStream(30, 5, 1e6, 1e6)
	fet := &fakeFetcher{eng: eng, bps: 1e6}

	if _, err := NewSession(eng, core, fet, nil, DefaultConfig()); err == nil {
		t.Error("want error for no renditions")
	}
	if _, err := NewSession(eng, core, nil, []*video.Stream{stream}, DefaultConfig()); err == nil {
		t.Error("want error for nil fetcher")
	}
	bad := DefaultConfig()
	bad.DecodedQueueCap = 0
	if _, err := NewSession(eng, core, fet, []*video.Stream{stream}, bad); err == nil {
		t.Error("want error for zero queue cap")
	}
	// Mismatched renditions.
	short := flatStream(30, 4, 2e6, 1e6)
	if _, err := NewSession(eng, core, fet, []*video.Stream{stream, short}, DefaultConfig()); err == nil {
		t.Error("want error for frame-count mismatch")
	}
	otherFPS := flatStream(60, 2.5, 2e6, 1e6)
	if _, err := NewSession(eng, core, fet, []*video.Stream{stream, otherFPS}, DefaultConfig()); err == nil {
		t.Error("want error for fps mismatch")
	}
	sameRate := flatStream(30, 5, 1e6, 1e6)
	if _, err := NewSession(eng, core, fet, []*video.Stream{stream, sameRate}, DefaultConfig()); err == nil {
		t.Error("want error for non-ascending bitrates")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.StartupSec = 0 },
		func(c *Config) { c.ResumeSec = 0 },
		func(c *Config) { c.MaxBufferSec = 1 },
		func(c *Config) { c.SegmentDur = 0 },
		func(c *Config) { c.ABR = nil },
		func(c *Config) { c.ThroughputAlpha = 0 },
		func(c *Config) { c.DisplayPowerW = -1 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestMetricsDerivedRates(t *testing.T) {
	m := Metrics{TotalFrames: 100, DroppedFrames: 5, SessionDur: 10 * sim.Second, RebufferTime: sim.Second}
	if math.Abs(m.DropRate()-0.05) > 1e-12 {
		t.Fatalf("DropRate = %v", m.DropRate())
	}
	if math.Abs(m.RebufferRatio()-0.1) > 1e-12 {
		t.Fatalf("RebufferRatio = %v", m.RebufferRatio())
	}
	var zero Metrics
	if zero.DropRate() != 0 || zero.RebufferRatio() != 0 {
		t.Fatal("zero metrics should report zero rates")
	}
}

func TestSessionIncompleteAtHorizon(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	stream := flatStream(30, 600, 2e6, 1e6)
	s := func() *Session {
		fet := &fakeFetcher{eng: eng, bps: 2.5e6}
		s, err := NewSession(eng, core, fet, []*video.Stream{stream}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		eng.RunUntil(30 * sim.Second)
		return s
	}()
	if s.Done() {
		t.Fatal("10-minute stream cannot finish in 30 s")
	}
	if s.Metrics().Completed {
		t.Fatal("metrics should not claim completion")
	}
}

func TestSessionAudioPipeline(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	stream := flatStream(30, 10, 1e6, 1e6)
	cfg := DefaultConfig()
	cfg.AudioCyclesPerSec = 15e6
	s := runSession(t, eng, core, 10e6, stream, cfg)
	if !s.Metrics().Completed {
		t.Fatal("session did not complete")
	}
	audio := core.CyclesByTag()["audio"]
	// ≈15 M cycles/s over the ~13.5 s session.
	if audio < 10*15e6 || audio > 20*15e6 {
		t.Fatalf("audio cycles %.3g implausible", audio)
	}
	// Audio must stop with the session.
	end := core.CyclesByTag()["audio"]
	eng.Schedule(10*sim.Second, func() {})
	eng.Run()
	if core.CyclesByTag()["audio"] != end {
		t.Fatal("audio kept decoding after the session finished")
	}
}

func TestSessionAudioConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AudioCyclesPerSec = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("want error for negative audio load")
	}
}

// recordingABR captures every State the session feeds the ABR, delegating
// the decision to the wrapped algorithm.
type recordingABR struct {
	abr.Algorithm
	states []abr.State
	rungs  []int
}

func (r *recordingABR) NextRung(s abr.State) int {
	st := s
	st.Rates = append([]float64(nil), s.Rates...)
	r.states = append(r.states, st)
	rung := r.Algorithm.NextRung(s)
	r.rungs = append(r.rungs, rung)
	return rung
}

// TestSessionFirstSegmentColdStartRung is the regression for the ABR
// cold-start bug: the session's first NextRung call feeds the throughput
// EWMA before any sample warmed it, so the estimate is exactly 0 and the
// rate-based ABR must pick rung 0 by the documented cold-start contract —
// never a rung derived from the degenerate estimate.
func TestSessionFirstSegmentColdStartRung(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	ladder := []*video.Stream{
		flatStream(30, 10, 1e6, 1e6),
		flatStream(30, 10, 4e6, 1e6),
		flatStream(30, 10, 8e6, 1e6),
	}
	rec := &recordingABR{Algorithm: abr.NewRateBased()}
	cfg := DefaultConfig()
	cfg.ABR = rec
	fet := &fakeFetcher{eng: eng, bps: 50e6} // plenty for the top rung once warmed
	s, err := NewSession(eng, core, fet, ladder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.RunUntil(10 * sim.Minute)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if len(rec.states) == 0 {
		t.Fatal("ABR never consulted")
	}
	if got := rec.states[0].ThroughputBps; got != 0 {
		t.Fatalf("first NextRung saw throughput %v, want the unwarmed EWMA's 0", got)
	}
	if rec.rungs[0] != 0 {
		t.Fatalf("first segment fetched at rung %d, want the cold-start rung 0", rec.rungs[0])
	}
	// Once the estimator warms, the fast link carries the ABR upward.
	if last := rec.rungs[len(rec.rungs)-1]; last != 2 {
		t.Fatalf("warmed ABR ended at rung %d, want 2", last)
	}
}

// TestResetSegmentTableNoResurrection guards the segment-table memoization
// against stale entries resurfacing from the slices' backing arrays. A
// recycled session that shrinks its rendition set (re-slicing segments and
// segSrc down) and later grows it back can see the old entries again; if
// the segment duration changed in between, those entries hold tables cut
// at the old duration and must be rebuilt, not reused. With a session-wide
// duration stamp the stale entries passed the check, leaving
// len(segments[rung]) < numSegs and an index-out-of-range panic the first
// time the ABR climbed to that rung.
func TestResetSegmentTableNoResurrection(t *testing.T) {
	eng, core := singleOPPCore(t, 1e9)
	ladder := []*video.Stream{
		flatStream(30, 12, 1e6, 1e6),
		flatStream(30, 12, 2e6, 1e6),
		flatStream(30, 12, 4e6, 1e6),
	}
	fet := &fakeFetcher{eng: eng, bps: 50e6}

	cfg := DefaultConfig()
	cfg.SegmentDur = 2 * sim.Second
	s, err := NewSession(eng, core, fet, ladder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink to one rendition at a shorter segment duration...
	cfg.SegmentDur = 1 * sim.Second
	if err := s.Reset(ladder[:1], cfg); err != nil {
		t.Fatal(err)
	}
	// ...then grow back: rungs 1 and 2 reappear from the backing array
	// with 2 s tables and must be re-cut at 1 s.
	if err := s.Reset(ladder, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range s.segments {
		if got := len(s.segments[i]); got != s.numSegs {
			t.Fatalf("rung %d has %d segments, want %d: stale table resurrected across Reset", i, got, s.numSegs)
		}
	}
}
