// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event heap. Components schedule
// closures at absolute or relative virtual times; Run drains the heap in
// timestamp order (FIFO among equal timestamps) until the heap is empty, a
// horizon is reached, or Stop is called. The engine is strictly
// single-threaded: all model code runs inside event callbacks, so no model
// state needs locking.
//
// All stochastic model inputs are drawn from RNG streams derived from a
// single seed (see rng.go), which makes every simulation fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a virtual-time instant or span, in seconds since simulation start.
//
// Seconds-as-float keeps cycle/frequency arithmetic natural
// (cycles ÷ Hz = seconds) at the cost of ~15 significant digits, which is
// far below event granularity for the hour-scale sessions simulated here.
type Time float64

// Common spans.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
	Minute      Time = 60
)

// Forever is a horizon later than any event a model schedules.
const Forever Time = math.MaxFloat64

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Milliseconds returns the time as a float64 millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) * 1e3 }

// String formats the time with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Event is a handle to a scheduled callback, usable for cancellation.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index; -1 once popped or canceled
	fn       func()
	canceled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// eventHeap orders events by (at, seq) so equal-time events run FIFO.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator instance.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	heap    eventHeap
	seq     uint64
	stopped bool
	// executed counts callbacks run, for tests and runaway detection.
	executed uint64
}

// NewEngine returns an engine with the clock at zero and an empty heap.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of event callbacks run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled (including
// canceled events not yet reaped).
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule runs fn after delay (relative to Now). A negative delay is
// clamped to zero so causality is preserved. It returns a handle usable
// with Cancel.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, clamped to Now if already past.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// Cancel prevents a scheduled event from running. Canceling an event that
// already ran, or canceling twice, is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.heap, ev.index)
	ev.index = -1
}

// Stop makes the current Run return after the in-flight callback.
func (e *Engine) Stop() { e.stopped = true }

// Run drains the event heap until empty or Stop is called. It returns the
// final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Forever) }

// RunUntil drains events with timestamps ≤ horizon. Events scheduled beyond
// the horizon remain pending; the clock is advanced to the horizon if the
// heap empties earlier than horizon only when horizon is finite.
func (e *Engine) RunUntil(horizon Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		next := e.heap[0]
		if next.at > horizon {
			break
		}
		popped, ok := heap.Pop(&e.heap).(*Event)
		if !ok {
			break
		}
		if popped.canceled {
			continue
		}
		e.now = popped.at
		e.executed++
		popped.fn()
	}
	if horizon != Forever && e.now < horizon && !e.stopped {
		e.now = horizon
	}
	return e.now
}
