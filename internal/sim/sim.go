// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event heap. Components schedule
// closures at absolute or relative virtual times; Run drains the heap in
// timestamp order (FIFO among equal timestamps) until the heap is empty, a
// horizon is reached, or Stop is called. The engine is strictly
// single-threaded: all model code runs inside event callbacks, so no model
// state needs locking.
//
// Event storage is pooled: scheduled callbacks live in a slab inside the
// engine and are recycled through a free list, so the steady-state
// schedule/fire/cancel cycle allocates nothing (see DESIGN.md §8). Handles
// are index+generation pairs, which makes stale cancels (of an event that
// already fired and whose slot was reused) harmless no-ops.
//
// All stochastic model inputs are drawn from RNG streams derived from a
// single seed (see rng.go), which makes every simulation fully reproducible.
package sim

import (
	"fmt"
	"math"
	"runtime"
)

// Time is a virtual-time instant or span, in seconds since simulation start.
//
// Seconds-as-float keeps cycle/frequency arithmetic natural
// (cycles ÷ Hz = seconds) at the cost of ~15 significant digits, which is
// far below event granularity for the hour-scale sessions simulated here.
type Time float64

// Common spans.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
	Minute      Time = 60
)

// Forever is a horizon later than any event a model schedules.
const Forever Time = math.MaxFloat64

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Milliseconds returns the time as a float64 millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) * 1e3 }

// String formats the time with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Event is a handle to a scheduled callback, usable for cancellation. The
// zero Event is "no event": canceling it is a no-op. Handles are
// generation-checked, so holding one past its firing (or past a Cancel) is
// safe — a later Cancel through the stale handle does nothing even if the
// underlying slot has been reused.
type Event struct {
	idx int32
	gen uint32
}

// Valid reports whether the handle refers to some scheduled event (past or
// present); the zero Event is invalid.
func (e Event) Valid() bool { return e.gen != 0 }

// eventSlot is one pooled event in the engine's slab.
type eventSlot struct {
	at  Time
	seq uint64
	fn  func()
	gen uint32
	pos int32 // position in the heap; -1 when free
}

// Engine is a discrete-event simulator instance.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now   Time
	slots []eventSlot
	free  []int32
	heap  []int32 // slot indices ordered by (at, seq)
	seq   uint64
	// executed counts callbacks run, for tests and runaway detection.
	executed uint64
	stopped  bool
}

// NewEngine returns an engine with the clock at zero and an empty heap.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of event callbacks run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule runs fn after delay (relative to Now). A negative delay is
// clamped to zero so causality is preserved. A non-finite delay panics,
// naming the call site: NaN would slip past the clamp (every comparison
// against NaN is false), enter the heap, and poison every heapLess
// comparison, while ±Inf enters as an event that can never fire and turns
// subsequent time arithmetic into Inf/NaN — the same silent corruption.
// It returns a handle usable with Cancel.
func (e *Engine) Schedule(delay Time, fn func()) Event {
	// delay != delay is math.IsNaN; the MaxFloat64 comparisons are
	// math.IsInf — spelled out to stay a branch-only hot path.
	if delay != delay || delay > math.MaxFloat64 || delay < -math.MaxFloat64 {
		panicNonFinite("Schedule", delay)
	}
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, clamped to Now if already past.
// A non-finite time panics, naming the call site (see Schedule).
func (e *Engine) At(t Time, fn func()) Event {
	if t != t || t > math.MaxFloat64 || t < -math.MaxFloat64 {
		panicNonFinite("At", t)
	}
	if t < e.now {
		t = e.now
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		// Generations start at 1 so the zero Event never matches a slot.
		e.slots = append(e.slots, eventSlot{gen: 1})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.at = t
	s.seq = e.seq
	s.fn = fn
	e.seq++
	e.heapPush(idx)
	return Event{idx: idx, gen: s.gen}
}

// panicNonFinite reports a NaN or ±Inf schedule time, attributing it to
// the model code that called Schedule/At (two frames up: panicNonFinite,
// then the engine method) so the offending arithmetic is findable without
// a heap dump.
func panicNonFinite(method string, t Time) {
	site := "unknown call site"
	if _, file, line, ok := runtime.Caller(2); ok {
		site = fmt.Sprintf("%s:%d", file, line)
	}
	panic(fmt.Sprintf("sim: %s(%v) from %s: a non-finite time would poison event ordering", method, t, site))
}

// Scheduled reports whether the event the handle refers to is still
// pending (not yet fired and not canceled).
func (e *Engine) Scheduled(ev Event) bool {
	if !ev.Valid() || int(ev.idx) >= len(e.slots) {
		return false
	}
	s := &e.slots[ev.idx]
	return s.gen == ev.gen && s.pos >= 0
}

// Cancel prevents a scheduled event from running. Canceling the zero
// Event, an event that already ran, or canceling twice, is a no-op.
func (e *Engine) Cancel(ev Event) {
	if !ev.Valid() || int(ev.idx) >= len(e.slots) {
		return
	}
	s := &e.slots[ev.idx]
	if s.gen != ev.gen || s.pos < 0 {
		return // already fired, canceled, or slot reused
	}
	e.heapRemove(int(s.pos))
	e.release(ev.idx)
}

// release returns a slot to the free list and invalidates outstanding
// handles by bumping the generation.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.gen++
	s.pos = -1
	e.free = append(e.free, idx)
}

// Stop makes the current Run return after the in-flight callback.
func (e *Engine) Stop() { e.stopped = true }

// Reset rewinds the engine to its initial state while keeping the event
// slab, so a recycled engine schedules into already-allocated slots: the
// clock returns to zero, every pending event is dropped, and all slots
// rejoin the free list. Each slot's generation is bumped, so handles held
// from before the reset can never cancel or match a post-reset event —
// stale cancels stay harmless no-ops, exactly as for fired events.
func (e *Engine) Reset() {
	for i := range e.slots {
		s := &e.slots[i]
		s.at = 0
		s.seq = 0
		s.fn = nil
		s.gen++
		s.pos = -1
	}
	if cap(e.free) < len(e.slots) {
		e.free = make([]int32, 0, len(e.slots))
	}
	e.free = e.free[:0]
	// Descending indices so the next At pops slot 0 first and a recycled
	// engine fills its slab in the same order a fresh one grows it.
	for i := len(e.slots) - 1; i >= 0; i-- {
		e.free = append(e.free, int32(i))
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.executed = 0
	e.stopped = false
}

// Run drains the event heap until empty or Stop is called. It returns the
// final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Forever) }

// RunUntil drains events with timestamps ≤ horizon. Events scheduled beyond
// the horizon remain pending; the clock is advanced to the horizon if the
// heap empties earlier than horizon only when horizon is finite.
func (e *Engine) RunUntil(horizon Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		idx := e.heap[0]
		s := &e.slots[idx]
		if s.at > horizon {
			break
		}
		fn := s.fn
		e.now = s.at
		e.heapRemove(0)
		// Release before the callback so fn can recycle the slot; the
		// generation bump keeps any retained handle from matching it.
		e.release(idx)
		e.executed++
		fn()
	}
	if horizon != Forever && e.now < horizon && !e.stopped {
		e.now = horizon
	}
	return e.now
}

// heapLess orders slots by (at, seq) so equal-time events run FIFO.
func (e *Engine) heapLess(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	pos := len(e.heap) - 1
	e.slots[idx].pos = int32(pos)
	e.heapUp(pos)
}

// heapRemove deletes the element at heap position pos.
func (e *Engine) heapRemove(pos int) {
	last := len(e.heap) - 1
	if pos != last {
		e.heapSwap(pos, last)
	}
	e.slots[e.heap[last]].pos = -1
	e.heap = e.heap[:last]
	if pos != last {
		if !e.heapDown(pos) {
			e.heapUp(pos)
		}
	}
}

func (e *Engine) heapSwap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.slots[e.heap[i]].pos = int32(i)
	e.slots[e.heap[j]].pos = int32(j)
}

func (e *Engine) heapUp(pos int) {
	for pos > 0 {
		parent := (pos - 1) / 2
		if !e.heapLess(e.heap[pos], e.heap[parent]) {
			break
		}
		e.heapSwap(pos, parent)
		pos = parent
	}
}

// heapDown sifts the element at pos toward the leaves; it reports whether
// the element moved.
func (e *Engine) heapDown(pos int) bool {
	start := pos
	n := len(e.heap)
	for {
		child := 2*pos + 1
		if child >= n {
			break
		}
		if right := child + 1; right < n && e.heapLess(e.heap[right], e.heap[child]) {
			child = right
		}
		if !e.heapLess(e.heap[child], e.heap[pos]) {
			break
		}
		e.heapSwap(pos, child)
		pos = child
	}
	return pos > start
}
