package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream for one model component.
//
// Components must not share streams: derive one per component with Stream
// so that adding draws in one component never perturbs another. RNG wraps
// math/rand.Rand (not the global source) so runs are reproducible from the
// root seed alone.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded directly with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Stream derives an independent child stream from a root seed and a
// component name. The derivation is a stable FNV-1a hash, so the same
// (seed, name) pair always yields the same stream.
func Stream(seed int64, name string) *RNG {
	return NewRNG(ChildSeed(seed, name))
}

// ChildSeed returns the derived seed Stream uses for (seed, name): FNV-1a
// over the seed's eight little-endian bytes followed by the name. It is
// exposed (and allocation-free) so arena-reuse paths can Reseed a recycled
// stream to the exact state Stream would construct.
func ChildSeed(seed int64, name string) int64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(uint64(seed) >> (8 * i)))
		h *= prime64
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int64(h)
}

// ChildSeedN derives the n-th member of an indexed seed family: FNV-1a
// over the seed's eight little-endian bytes, the name, and n's eight
// little-endian bytes. Cohort runs use it to split one root seed into a
// per-viewer stream ("cohort/bgload", viewer index) deterministically —
// the split depends only on (seed, name, n), never on worker count or
// scheduling, so sharded and serial cohorts draw identical streams.
func ChildSeedN(seed int64, name string, n int) int64 {
	const prime64 uint64 = 1099511628211
	h := uint64(ChildSeed(seed, name))
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(uint64(n) >> (8 * i)))
		h *= prime64
	}
	return int64(h)
}

// Reseed rewinds the stream to the state NewRNG(seed) would start in,
// reusing the underlying source. Combined with ChildSeed it recycles a
// component stream across simulation runs without reconstructing it.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Intn returns a uniform draw in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a Gaussian draw with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Lognormal returns a draw whose logarithm is Normal(mu, sigma).
func (g *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// LognormalMeanCV returns a lognormal draw parameterized by its own mean
// and coefficient of variation (stddev/mean), which is how decode-demand
// variability is usually reported.
func (g *RNG) LognormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return g.Lognormal(mu, math.Sqrt(sigma2))
}

// Exp returns an exponential draw with the given mean (not rate).
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Pareto returns a bounded Pareto-ish heavy-tailed draw with minimum xm and
// shape alpha (> 0). Used for burst sizes.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Pick returns a random index weighted by the given non-negative weights;
// non-finite weights count as zero (a NaN or Inf weight would poison the
// running total and silently select the last index every time). If all
// usable weight is zero it returns 0.
func (g *RNG) Pick(weights []float64) int {
	usable := func(w float64) bool {
		return w > 0 && !math.IsInf(w, 1) // w > 0 is false for NaN
	}
	var total float64
	for _, w := range weights {
		if usable(w) {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if !usable(w) {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
