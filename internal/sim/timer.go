package sim

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It is the simulation analogue of a kernel sampling timer (e.g. the
// cpufreq governor sampling interval).
//
// The re-arm closure is created once at construction, so a running ticker
// allocates nothing per tick.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func(now Time)
	tick    func() // pre-bound re-arm target; built once in NewTicker
	pending Event
	stopped bool
}

// NewTicker schedules fn every period, first firing one period from now.
// period must be positive.
func NewTicker(eng *Engine, period Time, fn func(now Time)) *Ticker {
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.tick = t.run
	t.pending = eng.Schedule(period, t.tick)
	return t
}

func (t *Ticker) run() {
	// The pending event has been delivered: clear the handle before the
	// callback runs so a Stop inside the callback never cancels an
	// already-fired event (whose pooled slot may meanwhile belong to a
	// freshly armed ticker at the same timestamp). This pins exactly-once
	// semantics for the stop-within-callback-then-rearm pattern.
	t.pending = Event{}
	if t.stopped {
		return
	}
	t.fn(t.eng.Now())
	if !t.stopped {
		t.pending = t.eng.Schedule(t.period, t.tick)
	}
}

// Stop cancels future ticks. Safe to call multiple times, including from
// inside the tick callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.eng.Cancel(t.pending)
	t.pending = Event{}
}

// Timeout is a restartable one-shot timer, the simulation analogue of the
// RRC inactivity ("tail") timers: each Reset pushes the expiry out, Stop
// disarms it, and fn runs only if the timer is allowed to expire.
//
// Like Ticker, the expiry closure is created once, so Reset allocates
// nothing.
type Timeout struct {
	eng     *Engine
	d       Time
	fn      func(now Time)
	expire  func() // pre-bound expiry target; built once in NewTimeout
	pending Event
}

// NewTimeout returns a disarmed timeout that, when armed, fires fn after d.
func NewTimeout(eng *Engine, d Time, fn func(now Time)) *Timeout {
	t := &Timeout{eng: eng, d: d, fn: fn}
	t.expire = t.run
	return t
}

func (t *Timeout) run() {
	t.pending = Event{}
	t.fn(t.eng.Now())
}

// Reset (re)arms the timeout to fire its callback d from now, canceling any
// pending expiry.
func (t *Timeout) Reset() {
	t.eng.Cancel(t.pending)
	t.pending = t.eng.Schedule(t.d, t.expire)
}

// Stop disarms the timeout if armed.
func (t *Timeout) Stop() {
	t.eng.Cancel(t.pending)
	t.pending = Event{}
}

// Rebind reconfigures the delay and forgets any pending expiry without
// touching the engine. It exists for arena reuse after Engine.Reset, when
// the handle is already stale: the timeout returns to its disarmed
// just-constructed state with the new delay.
func (t *Timeout) Rebind(d Time) {
	t.d = d
	t.pending = Event{}
}

// Armed reports whether an expiry is pending.
func (t *Timeout) Armed() bool { return t.pending.Valid() }
