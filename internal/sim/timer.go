package sim

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It is the simulation analogue of a kernel sampling timer (e.g. the
// cpufreq governor sampling interval).
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func(now Time)
	pending *Event
	stopped bool
}

// NewTicker schedules fn every period, first firing one period from now.
// period must be positive.
func NewTicker(eng *Engine, period Time, fn func(now Time)) *Ticker {
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.pending = t.eng.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.eng.Now())
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.pending != nil {
		t.eng.Cancel(t.pending)
	}
}

// Timeout is a restartable one-shot timer, the simulation analogue of the
// RRC inactivity ("tail") timers: each Reset pushes the expiry out, Stop
// disarms it, and fn runs only if the timer is allowed to expire.
type Timeout struct {
	eng     *Engine
	d       Time
	fn      func(now Time)
	pending *Event
}

// NewTimeout returns a disarmed timeout that, when armed, fires fn after d.
func NewTimeout(eng *Engine, d Time, fn func(now Time)) *Timeout {
	return &Timeout{eng: eng, d: d, fn: fn}
}

// Reset (re)arms the timeout to fire its callback d from now, canceling any
// pending expiry.
func (t *Timeout) Reset() {
	t.Stop()
	t.pending = t.eng.Schedule(t.d, func() {
		t.pending = nil
		t.fn(t.eng.Now())
	})
}

// Stop disarms the timeout if armed.
func (t *Timeout) Stop() {
	if t.pending != nil {
		t.eng.Cancel(t.pending)
		t.pending = nil
	}
}

// Armed reports whether an expiry is pending.
func (t *Timeout) Armed() bool { return t.pending != nil }
