package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(3*Second, func() { order = append(order, 3) })
	eng.Schedule(1*Second, func() { order = append(order, 1) })
	eng.Schedule(2*Second, func() { order = append(order, 2) })
	end := eng.Run()
	if end != 3*Second {
		t.Fatalf("end time = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(Second, func() { order = append(order, i) })
	}
	eng.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNowAdvancesInsideCallbacks(t *testing.T) {
	eng := NewEngine()
	var at Time
	eng.Schedule(5*Second, func() { at = eng.Now() })
	eng.Run()
	if at != 5*Second {
		t.Fatalf("Now inside callback = %v, want 5s", at)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var hits []Time
	eng.Schedule(Second, func() {
		hits = append(hits, eng.Now())
		eng.Schedule(Second, func() { hits = append(hits, eng.Now()) })
	})
	eng.Run()
	if len(hits) != 2 || hits[0] != Second || hits[1] != 2*Second {
		t.Fatalf("hits = %v, want [1s 2s]", hits)
	}
}

func TestEngineNegativeDelayClampsToNow(t *testing.T) {
	eng := NewEngine()
	ran := false
	eng.Schedule(Second, func() {
		eng.Schedule(-5*Second, func() {
			ran = true
			if eng.Now() != Second {
				t.Errorf("clamped event at %v, want 1s", eng.Now())
			}
		})
	})
	eng.Run()
	if !ran {
		t.Fatal("clamped event did not run")
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	ran := false
	ev := eng.Schedule(Second, func() { ran = true })
	eng.Cancel(ev)
	eng.Cancel(ev) // double cancel is a no-op
	eng.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestEngineCancelFromInsideEarlierEvent(t *testing.T) {
	eng := NewEngine()
	ran := false
	victim := eng.Schedule(2*Second, func() { ran = true })
	eng.Schedule(Second, func() { eng.Cancel(victim) })
	eng.Run()
	if ran {
		t.Fatal("event canceled mid-run still ran")
	}
}

func TestEngineRunUntilHorizon(t *testing.T) {
	eng := NewEngine()
	var ran []int
	eng.Schedule(Second, func() { ran = append(ran, 1) })
	eng.Schedule(10*Second, func() { ran = append(ran, 10) })
	end := eng.RunUntil(5 * Second)
	if end != 5*Second {
		t.Fatalf("RunUntil = %v, want 5s", end)
	}
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("ran = %v, want [1]", ran)
	}
	// Resume: the 10 s event should still be pending.
	end = eng.Run()
	if end != 10*Second || len(ran) != 2 {
		t.Fatalf("resume: end=%v ran=%v", end, ran)
	}
}

func TestEngineStop(t *testing.T) {
	eng := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		eng.Schedule(Time(i)*Second, func() {
			count++
			if count == 2 {
				eng.Stop()
			}
		})
	}
	eng.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (Stop should halt the loop)", count)
	}
	if eng.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", eng.Pending())
	}
}

func TestEngineExecutedCounter(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 7; i++ {
		eng.Schedule(Second, func() {})
	}
	eng.Run()
	if eng.Executed() != 7 {
		t.Fatalf("Executed = %d, want 7", eng.Executed())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	eng := NewEngine()
	var ticks []Time
	tk := NewTicker(eng, 100*Millisecond, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			eng.Stop()
		}
	})
	defer tk.Stop()
	eng.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, tt := range ticks {
		want := Time(i+1) * 100 * Millisecond
		if math.Abs(float64(tt-want)) > 1e-12 {
			t.Fatalf("tick %d at %v, want %v", i, tt, want)
		}
	}
}

func TestTickerStopPreventsFurtherTicks(t *testing.T) {
	eng := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(eng, Second, func(now Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	eng.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestTimeoutResetPushesExpiry(t *testing.T) {
	eng := NewEngine()
	var fired Time
	to := NewTimeout(eng, 4*Second, func(now Time) { fired = now })
	to.Reset()
	// Activity at t=2s resets the tail timer; expiry moves to t=6s.
	eng.Schedule(2*Second, func() { to.Reset() })
	eng.Run()
	if fired != 6*Second {
		t.Fatalf("timeout fired at %v, want 6s", fired)
	}
}

func TestTimeoutStopDisarms(t *testing.T) {
	eng := NewEngine()
	fired := false
	to := NewTimeout(eng, Second, func(now Time) { fired = true })
	to.Reset()
	if !to.Armed() {
		t.Fatal("Armed() = false after Reset")
	}
	to.Stop()
	if to.Armed() {
		t.Fatal("Armed() = true after Stop")
	}
	eng.Run()
	if fired {
		t.Fatal("stopped timeout fired")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := Stream(42, "decoder")
	b := Stream(42, "decoder")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed,name) streams diverged")
		}
	}
}

func TestRNGStreamsIndependentByName(t *testing.T) {
	a := Stream(42, "decoder")
	b := Stream(42, "network")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names look identical (%d/100 equal)", same)
	}
}

func TestRNGLognormalMeanCVMatchesMoments(t *testing.T) {
	g := Stream(7, "lognormal")
	const n = 200000
	mean, cv := 5.0, 0.4
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := g.LognormalMeanCV(mean, cv)
		if x <= 0 {
			t.Fatal("lognormal draw not positive")
		}
		sum += x
		sumsq += x * x
	}
	m := sum / n
	v := sumsq/n - m*m
	if math.Abs(m-mean) > 0.05*mean {
		t.Fatalf("sample mean %.3f, want ≈ %.3f", m, mean)
	}
	wantSD := cv * mean
	if math.Abs(math.Sqrt(v)-wantSD) > 0.1*wantSD {
		t.Fatalf("sample sd %.3f, want ≈ %.3f", math.Sqrt(v), wantSD)
	}
}

func TestRNGLognormalDegenerateCases(t *testing.T) {
	g := Stream(7, "deg")
	if got := g.LognormalMeanCV(0, 0.5); got != 0 {
		t.Fatalf("mean 0 should return 0, got %v", got)
	}
	if got := g.LognormalMeanCV(3, 0); got != 3 {
		t.Fatalf("cv 0 should return the mean, got %v", got)
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := Stream(1, "uniform")
	f := func(loRaw, span uint16) bool {
		lo := float64(loRaw)
		hi := lo + float64(span) + 1
		x := g.Uniform(lo, hi)
		return x >= lo && x < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPickRespectsWeights(t *testing.T) {
	g := Stream(9, "pick")
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[g.Pick([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weighted pick ordering wrong: %v", counts)
	}
	if got := g.Pick([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("all-zero weights should return 0, got %d", got)
	}
}

func TestRNGParetoMinimum(t *testing.T) {
	g := Stream(3, "pareto")
	for i := 0; i < 1000; i++ {
		if x := g.Pareto(2, 1.5); x < 2 {
			t.Fatalf("pareto draw %v below minimum 2", x)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := 1500 * Millisecond
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if tt.Milliseconds() != 1500 {
		t.Fatalf("Milliseconds = %v", tt.Milliseconds())
	}
	if tt.String() != "1.500s" {
		t.Fatalf("String = %q", tt.String())
	}
}

// Property: for any batch of events with arbitrary delays, the engine runs
// them in nondecreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		eng := NewEngine()
		var seen []Time
		for _, d := range delays {
			eng.Schedule(Time(d)*Millisecond, func() { seen = append(seen, eng.Now()) })
		}
		eng.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
