package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(3*Second, func() { order = append(order, 3) })
	eng.Schedule(1*Second, func() { order = append(order, 1) })
	eng.Schedule(2*Second, func() { order = append(order, 2) })
	end := eng.Run()
	if end != 3*Second {
		t.Fatalf("end time = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(Second, func() { order = append(order, i) })
	}
	eng.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNowAdvancesInsideCallbacks(t *testing.T) {
	eng := NewEngine()
	var at Time
	eng.Schedule(5*Second, func() { at = eng.Now() })
	eng.Run()
	if at != 5*Second {
		t.Fatalf("Now inside callback = %v, want 5s", at)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var hits []Time
	eng.Schedule(Second, func() {
		hits = append(hits, eng.Now())
		eng.Schedule(Second, func() { hits = append(hits, eng.Now()) })
	})
	eng.Run()
	if len(hits) != 2 || hits[0] != Second || hits[1] != 2*Second {
		t.Fatalf("hits = %v, want [1s 2s]", hits)
	}
}

func TestEngineNegativeDelayClampsToNow(t *testing.T) {
	eng := NewEngine()
	ran := false
	eng.Schedule(Second, func() {
		eng.Schedule(-5*Second, func() {
			ran = true
			if eng.Now() != Second {
				t.Errorf("clamped event at %v, want 1s", eng.Now())
			}
		})
	})
	eng.Run()
	if !ran {
		t.Fatal("clamped event did not run")
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	ran := false
	ev := eng.Schedule(Second, func() { ran = true })
	if !eng.Scheduled(ev) {
		t.Fatal("Scheduled() = false for a pending event")
	}
	eng.Cancel(ev)
	eng.Cancel(ev) // double cancel is a no-op
	eng.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if eng.Scheduled(ev) {
		t.Fatal("Scheduled() = true after Cancel")
	}
}

// A handle retained past its firing must never cancel the recycled slot's
// new occupant: the generation check makes stale cancels no-ops.
func TestEngineStaleHandleCancelIsHarmless(t *testing.T) {
	eng := NewEngine()
	first := eng.Schedule(Second, func() {})
	eng.Run()
	// The slot behind `first` is now free; the next schedule reuses it.
	ran := false
	second := eng.Schedule(Second, func() { ran = true })
	if second.idx != first.idx {
		t.Fatalf("slot not reused: first idx %d, second idx %d", first.idx, second.idx)
	}
	eng.Cancel(first) // stale: must not touch the new event
	eng.Run()
	if !ran {
		t.Fatal("stale Cancel killed a recycled slot's new event")
	}
}

// The free list must keep the slab bounded: a schedule/fire cycle reuses
// slots instead of growing the slab.
func TestEngineSlotPoolingBoundsSlab(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 1000; i++ {
		eng.Schedule(Millisecond, func() {})
		eng.Run()
	}
	if n := len(eng.slots); n != 1 {
		t.Fatalf("slab grew to %d slots for serial schedule/fire cycles, want 1", n)
	}
}

// Steady-state schedule/fire through a warm engine must not allocate.
func TestEngineScheduleFireAllocFree(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Warm-up: size the slab and heap.
	for i := 0; i < 64; i++ {
		eng.Schedule(Time(i)*Millisecond, fn)
	}
	eng.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			eng.Schedule(Time(i)*Millisecond, fn)
		}
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("schedule/fire cycle allocates %.1f objects, want 0", avg)
	}
}

func TestEngineCancelFromInsideEarlierEvent(t *testing.T) {
	eng := NewEngine()
	ran := false
	victim := eng.Schedule(2*Second, func() { ran = true })
	eng.Schedule(Second, func() { eng.Cancel(victim) })
	eng.Run()
	if ran {
		t.Fatal("event canceled mid-run still ran")
	}
}

func TestEngineRunUntilHorizon(t *testing.T) {
	eng := NewEngine()
	var ran []int
	eng.Schedule(Second, func() { ran = append(ran, 1) })
	eng.Schedule(10*Second, func() { ran = append(ran, 10) })
	end := eng.RunUntil(5 * Second)
	if end != 5*Second {
		t.Fatalf("RunUntil = %v, want 5s", end)
	}
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("ran = %v, want [1]", ran)
	}
	// Resume: the 10 s event should still be pending.
	end = eng.Run()
	if end != 10*Second || len(ran) != 2 {
		t.Fatalf("resume: end=%v ran=%v", end, ran)
	}
}

func TestEngineStop(t *testing.T) {
	eng := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		eng.Schedule(Time(i)*Second, func() {
			count++
			if count == 2 {
				eng.Stop()
			}
		})
	}
	eng.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (Stop should halt the loop)", count)
	}
	if eng.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", eng.Pending())
	}
}

func TestEngineExecutedCounter(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 7; i++ {
		eng.Schedule(Second, func() {})
	}
	eng.Run()
	if eng.Executed() != 7 {
		t.Fatalf("Executed = %d, want 7", eng.Executed())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	eng := NewEngine()
	var ticks []Time
	tk := NewTicker(eng, 100*Millisecond, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			eng.Stop()
		}
	})
	defer tk.Stop()
	eng.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, tt := range ticks {
		want := Time(i+1) * 100 * Millisecond
		if math.Abs(float64(tt-want)) > 1e-12 {
			t.Fatalf("tick %d at %v, want %v", i, tt, want)
		}
	}
}

func TestTickerStopPreventsFurtherTicks(t *testing.T) {
	eng := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(eng, Second, func(now Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	eng.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

// Regression: a tick callback that stops its ticker and immediately arms a
// replacement must see the replacement fire exactly once per period. The
// pooled-event engine reuses the delivered event's slot for the new
// ticker's first tick, so a Stop that canceled the already-delivered event
// would silently kill (or, pre-generation-checking, double-fire) the
// replacement.
func TestTickerStopWithinCallbackThenRearmFiresExactlyOnce(t *testing.T) {
	eng := NewEngine()
	var fires []Time
	var old *Ticker
	old = NewTicker(eng, Second, func(now Time) {
		old.Stop()
		NewTicker(eng, Second, func(now Time) {
			fires = append(fires, now)
			eng.Stop()
		})
	})
	eng.Run()
	if len(fires) != 1 || fires[0] != 2*Second {
		t.Fatalf("replacement ticks = %v, want exactly [2s]", fires)
	}
}

// Stop called from inside the tick callback must not cancel the event that
// delivered the very tick being processed (it already fired): scheduling
// an unrelated event right after Stop must be unaffected.
func TestTickerStopInsideCallbackLeavesOtherEventsAlone(t *testing.T) {
	eng := NewEngine()
	ran := false
	var tk *Ticker
	tk = NewTicker(eng, Second, func(now Time) {
		tk.Stop()
		// This reuses the freed slot of the tick that is executing.
		eng.Schedule(Second, func() { ran = true })
	})
	eng.Run()
	if !ran {
		t.Fatal("event scheduled after in-callback Stop never ran")
	}
}

// Canceling an event parked in the middle of the heap must preserve the
// order of the remaining events.
func TestEngineCancelMidHeapKeepsOrder(t *testing.T) {
	eng := NewEngine()
	var order []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = eng.Schedule(Time(10-i)*Second, func() { order = append(order, i) })
	}
	eng.Cancel(evs[3]) // fires at 7s, sits mid-heap
	eng.Cancel(evs[8]) // fires at 2s
	eng.Run()
	want := []int{9, 7, 6, 5, 4, 2, 1, 0}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTimeoutResetPushesExpiry(t *testing.T) {
	eng := NewEngine()
	var fired Time
	to := NewTimeout(eng, 4*Second, func(now Time) { fired = now })
	to.Reset()
	// Activity at t=2s resets the tail timer; expiry moves to t=6s.
	eng.Schedule(2*Second, func() { to.Reset() })
	eng.Run()
	if fired != 6*Second {
		t.Fatalf("timeout fired at %v, want 6s", fired)
	}
}

func TestTimeoutStopDisarms(t *testing.T) {
	eng := NewEngine()
	fired := false
	to := NewTimeout(eng, Second, func(now Time) { fired = true })
	to.Reset()
	if !to.Armed() {
		t.Fatal("Armed() = false after Reset")
	}
	to.Stop()
	if to.Armed() {
		t.Fatal("Armed() = true after Stop")
	}
	eng.Run()
	if fired {
		t.Fatal("stopped timeout fired")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := Stream(42, "decoder")
	b := Stream(42, "decoder")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed,name) streams diverged")
		}
	}
}

func TestRNGStreamsIndependentByName(t *testing.T) {
	a := Stream(42, "decoder")
	b := Stream(42, "network")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names look identical (%d/100 equal)", same)
	}
}

func TestRNGLognormalMeanCVMatchesMoments(t *testing.T) {
	g := Stream(7, "lognormal")
	const n = 200000
	mean, cv := 5.0, 0.4
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := g.LognormalMeanCV(mean, cv)
		if x <= 0 {
			t.Fatal("lognormal draw not positive")
		}
		sum += x
		sumsq += x * x
	}
	m := sum / n
	v := sumsq/n - m*m
	if math.Abs(m-mean) > 0.05*mean {
		t.Fatalf("sample mean %.3f, want ≈ %.3f", m, mean)
	}
	wantSD := cv * mean
	if math.Abs(math.Sqrt(v)-wantSD) > 0.1*wantSD {
		t.Fatalf("sample sd %.3f, want ≈ %.3f", math.Sqrt(v), wantSD)
	}
}

func TestRNGLognormalDegenerateCases(t *testing.T) {
	g := Stream(7, "deg")
	if got := g.LognormalMeanCV(0, 0.5); got != 0 {
		t.Fatalf("mean 0 should return 0, got %v", got)
	}
	if got := g.LognormalMeanCV(3, 0); got != 3 {
		t.Fatalf("cv 0 should return the mean, got %v", got)
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := Stream(1, "uniform")
	f := func(loRaw, span uint16) bool {
		lo := float64(loRaw)
		hi := lo + float64(span) + 1
		x := g.Uniform(lo, hi)
		return x >= lo && x < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPickRespectsWeights(t *testing.T) {
	g := Stream(9, "pick")
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[g.Pick([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weighted pick ordering wrong: %v", counts)
	}
	if got := g.Pick([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("all-zero weights should return 0, got %d", got)
	}
}

func TestRNGParetoMinimum(t *testing.T) {
	g := Stream(3, "pareto")
	for i := 0; i < 1000; i++ {
		if x := g.Pareto(2, 1.5); x < 2 {
			t.Fatalf("pareto draw %v below minimum 2", x)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := 1500 * Millisecond
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if tt.Milliseconds() != 1500 {
		t.Fatalf("Milliseconds = %v", tt.Milliseconds())
	}
	if tt.String() != "1.500s" {
		t.Fatalf("String = %q", tt.String())
	}
}

// Property: for any batch of events with arbitrary delays, the engine runs
// them in nondecreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		eng := NewEngine()
		var seen []Time
		for _, d := range delays {
			eng.Schedule(Time(d)*Millisecond, func() { seen = append(seen, eng.Now()) })
		}
		eng.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPickTreatsNonFiniteWeightsAsZero pins the hardened weighted pick: a
// NaN or Inf weight used to poison the running total (NaN total fails
// every comparison, Inf never decrements below zero), making Pick
// silently return the last index regardless of the other weights.
func TestPickTreatsNonFiniteWeightsAsZero(t *testing.T) {
	g := Stream(1, "pick")
	weights := []float64{1, math.NaN(), 0, math.Inf(1)}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		idx := g.Pick(weights)
		seen[idx] = true
		if idx != 0 {
			t.Fatalf("Pick chose index %d; only index 0 carries usable weight", idx)
		}
	}
	if !seen[0] {
		t.Fatal("index 0 never chosen")
	}
	// All weights unusable → the documented all-zero fallback.
	if idx := g.Pick([]float64{math.NaN(), math.Inf(1)}); idx != 0 {
		t.Fatalf("all-non-finite Pick = %d, want 0", idx)
	}
}

// TestScheduleRejectsNonFinite pins the non-finite guard on the event
// heap: NaN slips past the t < now clamp (every NaN comparison is false)
// and poisons every heapLess comparison, while ±Inf enters as an event
// that can never fire and turns later time arithmetic into Inf/NaN — so
// the engine refuses both loudly, naming the call site.
func TestScheduleRejectsNonFinite(t *testing.T) {
	for _, bad := range []struct {
		name string
		t    Time
	}{
		{"NaN", Time(math.NaN())},
		{"+Inf", Time(math.Inf(1))},
		{"-Inf", Time(math.Inf(-1))},
	} {
		for _, call := range []struct {
			name string
			do   func(e *Engine, t Time)
		}{
			{"At", func(e *Engine, t Time) { e.At(t, func() {}) }},
			{"Schedule", func(e *Engine, t Time) { e.Schedule(t, func() {}) }},
		} {
			t.Run(call.name+"/"+bad.name, func(t *testing.T) {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s time accepted", bad.name)
					}
					msg, ok := r.(string)
					if !ok || !strings.Contains(msg, "sim_test.go") {
						t.Fatalf("panic %v does not name the schedule site", r)
					}
				}()
				call.do(NewEngine(), bad.t)
			})
		}
	}
}
