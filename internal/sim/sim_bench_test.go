package sim

import "testing"

// BenchmarkEngineScheduleRun measures raw event throughput: schedule and
// drain 1k events per iteration.
func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := NewEngine()
		for j := 0; j < 1000; j++ {
			eng.Schedule(Time(j)*Millisecond, func() {})
		}
		eng.Run()
	}
}

// BenchmarkEngineNestedChain measures the self-scheduling pattern the
// decoder and tickers use.
func BenchmarkEngineNestedChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := NewEngine()
		n := 0
		var step func()
		step = func() {
			n++
			if n < 1000 {
				eng.Schedule(Millisecond, step)
			}
		}
		eng.Schedule(Millisecond, step)
		eng.Run()
	}
}

// BenchmarkRNGLognormal measures the hot demand-jitter draw.
func BenchmarkRNGLognormal(b *testing.B) {
	g := Stream(1, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.LognormalMeanCV(1e7, 0.3)
	}
}
