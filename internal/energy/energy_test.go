package energy

import (
	"math"
	"strings"
	"testing"

	"videodvfs/internal/sim"
)

func TestMeterIntegratesPiecewisePower(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	m.Set(ComponentCPU, 1.0) // 1 W from t=0
	eng.Schedule(2*sim.Second, func() { m.Set(ComponentCPU, 0.5) })
	eng.Schedule(4*sim.Second, func() {})
	eng.Run()
	m.Finish()
	want := 1.0*2 + 0.5*2
	if got := m.ComponentJ(ComponentCPU); math.Abs(got-want) > 1e-12 {
		t.Fatalf("cpu energy = %v, want %v", got, want)
	}
	if got := m.MeanW(ComponentCPU); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("mean power = %v, want 0.75", got)
	}
}

func TestMeterMultipleComponents(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	m.Set(ComponentCPU, 2)
	m.Set(ComponentRadio, 1)
	m.Set(ComponentDisplay, 0.5)
	eng.Schedule(10*sim.Second, func() {})
	eng.Run()
	m.Finish()
	if got := m.TotalJ(); math.Abs(got-35) > 1e-9 {
		t.Fatalf("total = %v, want 35", got)
	}
	bd := m.Breakdown()
	if math.Abs(bd[ComponentCPU]-20) > 1e-9 || math.Abs(bd[ComponentRadio]-10) > 1e-9 {
		t.Fatalf("breakdown = %v", bd)
	}
	comps := m.Components()
	if len(comps) != 3 || comps[0] != "cpu" {
		t.Fatalf("components = %v", comps)
	}
}

func TestMeterUnknownComponentZero(t *testing.T) {
	m := NewMeter(sim.NewEngine())
	if m.ComponentJ("nope") != 0 || m.MeanW("nope") != 0 {
		t.Fatal("unknown component should read zero")
	}
}

func TestMeterListenerFeedsComponent(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	listen := m.Listener(ComponentRadio)
	listen(0, 1.5)
	eng.Schedule(4*sim.Second, func() { listen(eng.Now(), 0) })
	eng.Run()
	m.Finish()
	if got := m.ComponentJ(ComponentRadio); math.Abs(got-6) > 1e-12 {
		t.Fatalf("radio energy = %v, want 6", got)
	}
}

func TestMeterString(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng)
	m.Set(ComponentCPU, 1)
	eng.Schedule(sim.Second, func() {})
	eng.Run()
	m.Finish()
	if s := m.String(); !strings.Contains(s, "cpu=1.00J") {
		t.Fatalf("String = %q", s)
	}
}
