// Package energy integrates per-component power draws over virtual time
// into energy totals and breakdowns. Components (CPU, radio, display)
// report piecewise-constant power levels; the meter does the bookkeeping.
package energy

import (
	"fmt"
	"sort"

	"videodvfs/internal/sim"
	"videodvfs/internal/stats"
)

// Standard component names used by the streaming pipeline.
const (
	// ComponentCPU is the CPU frequency domain.
	ComponentCPU = "cpu"
	// ComponentRadio is the cellular/WiFi radio.
	ComponentRadio = "radio"
	// ComponentDisplay is the screen (constant while playing).
	ComponentDisplay = "display"
)

// Meter accumulates energy per component.
type Meter struct {
	eng   *sim.Engine
	comps map[string]*stats.TimeWeighted
}

// NewMeter returns a meter bound to the engine's clock.
func NewMeter(eng *sim.Engine) *Meter {
	return &Meter{eng: eng, comps: make(map[string]*stats.TimeWeighted)}
}

// Set records that a component draws watts from now on.
func (m *Meter) Set(component string, watts float64) {
	tw, ok := m.comps[component]
	if !ok {
		tw = &stats.TimeWeighted{}
		m.comps[component] = tw
	}
	tw.Set(m.eng.Now().Seconds(), watts)
}

// Listener returns a callback suitable for power-change hooks (e.g.
// cpu.Core.OnPower) that feeds this meter.
func (m *Meter) Listener(component string) func(now sim.Time, watts float64) {
	return func(_ sim.Time, watts float64) { m.Set(component, watts) }
}

// Reset forgets every component's accumulated signal while keeping the
// component entries (and their allocations) in place, so a recycled meter
// re-accumulates from zero without rebuilding its map. Map iteration order
// is irrelevant here: each component resets independently.
func (m *Meter) Reset() {
	for _, tw := range m.comps {
		tw.Reset()
	}
}

// Finish closes every component's integral at the current virtual time.
// Call once when the simulation ends, before reading totals.
func (m *Meter) Finish() {
	now := m.eng.Now().Seconds()
	for _, tw := range m.comps {
		tw.Finish(now)
	}
}

// ComponentJ returns the accumulated energy of one component in joules.
func (m *Meter) ComponentJ(component string) float64 {
	tw, ok := m.comps[component]
	if !ok {
		return 0
	}
	return tw.Integral()
}

// TotalJ returns the energy summed over all components in joules.
func (m *Meter) TotalJ() float64 {
	var sum float64
	for _, tw := range m.comps {
		sum += tw.Integral()
	}
	return sum
}

// MeanW returns the time-weighted mean power of one component in watts.
func (m *Meter) MeanW(component string) float64 {
	tw, ok := m.comps[component]
	if !ok {
		return 0
	}
	return tw.Mean()
}

// Breakdown returns per-component energy in joules, keyed by name.
func (m *Meter) Breakdown() map[string]float64 {
	out := make(map[string]float64, len(m.comps))
	for name, tw := range m.comps {
		out[name] = tw.Integral()
	}
	return out
}

// Components returns the component names seen so far, sorted.
func (m *Meter) Components() []string {
	out := make([]string, 0, len(m.comps))
	for name := range m.comps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// String formats the breakdown for reports.
func (m *Meter) String() string {
	s := ""
	for _, name := range m.Components() {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%.2fJ", name, m.ComponentJ(name))
	}
	return s
}
