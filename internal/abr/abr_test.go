package abr

import (
	"math"
	"testing"
	"testing/quick"
)

var ladder = []float64{0.8e6, 1.5e6, 4e6, 8e6}

func TestFixedClamps(t *testing.T) {
	s := State{Rates: ladder}
	if got := (Fixed{Rung: 2}).NextRung(s); got != 2 {
		t.Fatalf("fixed rung = %d", got)
	}
	if got := (Fixed{Rung: -3}).NextRung(s); got != 0 {
		t.Fatalf("negative rung clamped to %d", got)
	}
	if got := (Fixed{Rung: 99}).NextRung(s); got != 3 {
		t.Fatalf("oversized rung clamped to %d", got)
	}
}

func TestRateBasedPicksHighestAffordable(t *testing.T) {
	a := NewRateBased()
	cases := []struct {
		tput float64
		want int
	}{
		{0, 0},                     // no estimate → lowest
		{1e6, 0},                   // 0.85 Mbps budget < 1.5
		{2e6, 1},                   // 1.7 budget ≥ 1.5
		{5e6, 2},                   // 4.25 ≥ 4
		{20e6, 3},                  // plenty
		{0.9e6 / 0.85 * 1.0001, 0}, // just above 0.9: budget ≈0.9 < 1.5 but ≥0.8
	}
	for _, c := range cases {
		got := a.NextRung(State{ThroughputBps: c.tput, Rates: ladder})
		if got != c.want {
			t.Errorf("throughput %.1f Mbps → rung %d, want %d", c.tput/1e6, got, c.want)
		}
	}
}

func TestRateBasedDegenerateSafety(t *testing.T) {
	a := RateBased{Safety: -1}
	if got := a.NextRung(State{ThroughputBps: 10e6, Rates: ladder}); got != 3 {
		t.Fatalf("bad safety should fall back to default: rung %d", got)
	}
	if got := a.NextRung(State{ThroughputBps: 10e6}); got != 0 {
		t.Fatalf("empty ladder should return 0, got %d", got)
	}
}

func TestBufferBasedRegions(t *testing.T) {
	a := NewBufferBased()
	cases := []struct {
		buf  float64
		want int
	}{
		{0, 0}, {4.9, 0}, {5, 0}, // reservoir
		{15, 3}, {30, 3}, // cushion
	}
	for _, c := range cases {
		got := a.NextRung(State{BufferSec: c.buf, Rates: ladder})
		if got != c.want {
			t.Errorf("buffer %.1fs → rung %d, want %d", c.buf, got, c.want)
		}
	}
	// Mid-cushion monotonicity.
	prev := 0
	for buf := 5.0; buf <= 15; buf += 0.5 {
		got := a.NextRung(State{BufferSec: buf, Rates: ladder})
		if got < prev {
			t.Fatalf("rung decreased with rising buffer at %.1fs", buf)
		}
		prev = got
	}
}

func TestBufferBasedDegenerateKnees(t *testing.T) {
	a := BufferBased{ReservoirSec: -1, CushionSec: -1}
	if got := a.NextRung(State{BufferSec: 100, Rates: ladder}); got != 3 {
		t.Fatalf("degenerate knees: rung %d, want 3", got)
	}
	if got := a.NextRung(State{BufferSec: 100}); got != 0 {
		t.Fatalf("empty ladder should return 0, got %d", got)
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("New(%s).Name() = %s", name, a.Name())
		}
	}
	if _, err := New("mpc"); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}

// Property: every algorithm returns a valid rung for any state.
func TestAllAlgorithmsReturnValidRungs(t *testing.T) {
	algos := []Algorithm{Fixed{Rung: 2}, NewRateBased(), NewBufferBased()}
	f := func(tputRaw uint32, bufRaw uint16, lastRaw int8) bool {
		s := State{
			ThroughputBps: float64(tputRaw),
			BufferSec:     float64(bufRaw) / 100,
			LastRung:      int(lastRaw),
			Rates:         ladder,
		}
		for _, a := range algos {
			r := a.NextRung(s)
			if r < 0 || r >= len(ladder) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestColdStartContract audits every shipped algorithm against the
// documented cold-start contract: with an unwarmed (0), NaN, or infinite
// throughput estimate and an empty buffer — exactly the State the player
// passes before the first segment completes — no algorithm may derive a
// rung from the degenerate estimate. RateBased and BufferBased must return
// the lowest rung; Fixed pins its configured rung by design.
func TestColdStartContract(t *testing.T) {
	rates := []float64{1e6, 2.5e6, 5e6, 8e6}
	colds := []float64{0, math.NaN(), math.Inf(1), math.Inf(-1), -1e6}
	for _, tput := range colds {
		s := State{ThroughputBps: tput, BufferSec: 0, LastRung: -1, Rates: rates}
		if got := NewRateBased().NextRung(s); got != 0 {
			t.Errorf("RateBased cold start (tput=%v) = rung %d, want 0", tput, got)
		}
		if got := NewBufferBased().NextRung(s); got != 0 {
			t.Errorf("BufferBased cold start (tput=%v) = rung %d, want 0", tput, got)
		}
		if got := (Fixed{Rung: 2}).NextRung(s); got != 2 {
			t.Errorf("Fixed cold start (tput=%v) = rung %d, want its pinned 2", tput, got)
		}
	}
	// The guard is cold-start-only: a warmed estimate still climbs.
	warm := State{ThroughputBps: 10e6, BufferSec: 20, LastRung: 0, Rates: rates}
	if got := NewRateBased().NextRung(warm); got != 3 {
		t.Errorf("RateBased warm = rung %d, want 3", got)
	}
}
