// Package abr implements the adaptive-bitrate algorithms the streaming
// player can run: fixed-rung, throughput-based, and buffer-based (BBA-0
// style). ABR choice interacts with DVFS because the selected rung sets
// the decode demand; the evaluation shows the policy's savings hold under
// all three.
package abr

import (
	"fmt"
	"math"
	"sort"
)

// State is the player-side observation an algorithm decides from.
type State struct {
	// ThroughputBps is the player's smoothed throughput estimate. Before
	// the first segment completes the estimator is unwarmed and reports 0
	// (the EWMA warm-up contract: Value is 0 until the first sample), so
	// algorithms must treat a non-positive or non-finite value as cold
	// start and never derive a rung index from it — the defined cold-start
	// choice is the lowest rung.
	ThroughputBps float64
	// BufferSec is the media buffer level in seconds of content.
	BufferSec float64
	// LastRung is the rung index of the previous segment.
	LastRung int
	// Rates are the ladder bitrates in bps, ascending.
	Rates []float64
}

// Algorithm selects the rung for the next segment to download.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// NextRung returns a valid index into s.Rates.
	NextRung(s State) int
}

// clampRung keeps an index inside the ladder.
func clampRung(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Fixed always selects the same rung (used for the non-ABR experiments).
type Fixed struct {
	// Rung is the index to pin.
	Rung int
}

// Name implements Algorithm.
func (Fixed) Name() string { return "fixed" }

// NextRung implements Algorithm.
func (f Fixed) NextRung(s State) int { return clampRung(f.Rung, len(s.Rates)) }

// RateBased picks the highest rung whose bitrate fits under a safety
// fraction of estimated throughput — the classic throughput-rule ABR.
type RateBased struct {
	// Safety is the fraction of estimated throughput considered usable
	// (default 0.85).
	Safety float64
}

// NewRateBased returns a throughput-rule ABR with the standard safety
// factor.
func NewRateBased() RateBased { return RateBased{Safety: 0.85} }

// Name implements Algorithm.
func (RateBased) Name() string { return "rate" }

// NextRung implements Algorithm. On cold start — an unwarmed (0), NaN, or
// infinite throughput estimate — it returns the lowest rung explicitly:
// the first segment's rung choice is defined by contract, not by whatever
// 0×safety happens to compare as (and a spurious +Inf estimate must not
// launch the session at the top rung).
func (r RateBased) NextRung(s State) int {
	if len(s.Rates) == 0 {
		return 0
	}
	if !(s.ThroughputBps > 0) || math.IsInf(s.ThroughputBps, 0) {
		return 0 // cold start or degenerate estimate
	}
	safety := r.Safety
	if safety <= 0 || safety > 1 {
		safety = 0.85
	}
	budget := s.ThroughputBps * safety
	best := 0
	for i, rate := range s.Rates {
		if rate <= budget {
			best = i
		}
	}
	return best
}

// BufferBased is a BBA-0 style algorithm: rung is a piecewise-linear
// function of buffer level between a reservoir and a cushion, ignoring
// throughput except implicitly through the buffer.
type BufferBased struct {
	// ReservoirSec is the buffer level below which the lowest rung is
	// forced (default 5 s).
	ReservoirSec float64
	// CushionSec is the buffer level above which the highest rung is
	// allowed (default 15 s).
	CushionSec float64
}

// NewBufferBased returns a BBA-0 with the paper-standard 5 s/15 s knees.
func NewBufferBased() BufferBased { return BufferBased{ReservoirSec: 5, CushionSec: 15} }

// Name implements Algorithm.
func (BufferBased) Name() string { return "bba" }

// NextRung implements Algorithm. BufferBased never reads the throughput
// estimate, so the cold-start contract holds structurally: the first call
// sees an empty buffer, lands in the reservoir branch, and returns rung 0.
func (b BufferBased) NextRung(s State) int {
	n := len(s.Rates)
	if n == 0 {
		return 0
	}
	reservoir, cushion := b.ReservoirSec, b.CushionSec
	if reservoir <= 0 {
		reservoir = 5
	}
	if cushion <= reservoir {
		cushion = reservoir + 10
	}
	switch {
	case s.BufferSec <= reservoir:
		return 0
	case s.BufferSec >= cushion:
		return n - 1
	default:
		frac := (s.BufferSec - reservoir) / (cushion - reservoir)
		return clampRung(int(frac*float64(n)), n)
	}
}

// New returns an algorithm by name ("fixed:<rung>" pins a rung).
func New(name string) (Algorithm, error) {
	switch name {
	case "rate":
		return NewRateBased(), nil
	case "bba":
		return NewBufferBased(), nil
	case "fixed":
		return Fixed{}, nil
	default:
		return nil, fmt.Errorf("abr: unknown algorithm %q", name)
	}
}

// Names lists the built-in algorithms in report order.
func Names() []string {
	out := []string{"fixed", "rate", "bba"}
	sort.Strings(out)
	return out
}
