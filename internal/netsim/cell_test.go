package netsim

import (
	"math"
	"testing"

	"videodvfs/internal/sim"
)

func cellBase() CellSimConfig {
	return CellSimConfig{
		Users:       40,
		Channels:    64,
		FetchPeriod: 2 * sim.Second,
		HoldMean:    600 * sim.Millisecond,
		HoldCV:      0.3,
		Duration:    10 * sim.Minute,
		Warmup:      30 * sim.Second,
	}
}

func TestCellSimValidation(t *testing.T) {
	bad := []func(*CellSimConfig){
		func(c *CellSimConfig) { c.Users = 0 },
		func(c *CellSimConfig) { c.Channels = 0 },
		func(c *CellSimConfig) { c.FetchPeriod = 0 },
		func(c *CellSimConfig) { c.HoldMean = 0 },
		func(c *CellSimConfig) { c.HoldCV = -1 },
		func(c *CellSimConfig) { c.Duration = 0 },
		func(c *CellSimConfig) { c.Warmup = c.Duration },
	}
	for i, mutate := range bad {
		cfg := cellBase()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if _, err := SimulateCell(cellBase(), nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestCellSimLightLoadNoBlocking(t *testing.T) {
	cfg := cellBase()
	cfg.Users = 10 // offered load ≈ 10·0.3 = 3 Erlangs on 64 channels
	st, err := SimulateCell(cfg, sim.Stream(1, "cell"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocked != 0 {
		t.Fatalf("light load blocked %d requests", st.Blocked)
	}
	if st.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	// Mean busy ≈ offered load (Little's law for loss-free systems).
	want := 10 * cfg.HoldMean.Seconds() / cfg.FetchPeriod.Seconds()
	if math.Abs(st.MeanBusy-want) > 0.3*want {
		t.Fatalf("mean busy %.2f, want ≈ %.2f", st.MeanBusy, want)
	}
}

func TestCellSimOverloadBlocks(t *testing.T) {
	cfg := cellBase()
	cfg.Users = 1000 // offered ≈ 300 Erlangs on 64 channels
	st, err := SimulateCell(cfg, sim.Stream(2, "cell"))
	if err != nil {
		t.Fatal(err)
	}
	if st.BlockRate() < 0.5 {
		t.Fatalf("overload block rate %.2f, want ≥ 0.5", st.BlockRate())
	}
	if st.PeakBusy != cfg.Channels {
		t.Fatalf("peak busy %d, want all %d channels", st.PeakBusy, cfg.Channels)
	}
}

func TestCellSimMatchesErlangB(t *testing.T) {
	// At a known offered load the simulated blocking must match the
	// analytic Erlang-B value (the M/G/N insensitivity property says the
	// hold distribution does not matter).
	cfg := cellBase()
	cfg.Channels = 16
	cfg.Users = 100 // offered = 100·0.3 = 30 Erlangs
	cfg.Duration = 30 * sim.Minute
	st, err := SimulateCell(cfg, sim.Stream(3, "cell"))
	if err != nil {
		t.Fatal(err)
	}
	offered := float64(cfg.Users) * cfg.HoldMean.Seconds() / cfg.FetchPeriod.Seconds()
	analytic := ErlangB(offered, cfg.Channels)
	if math.Abs(st.BlockRate()-analytic) > 0.15*analytic {
		t.Fatalf("simulated blocking %.4f vs Erlang-B %.4f (offered %.1f E)", st.BlockRate(), analytic, offered)
	}
}

func TestCellSimDeterministic(t *testing.T) {
	a, err := SimulateCell(cellBase(), sim.Stream(5, "cell"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateCell(cellBase(), sim.Stream(5, "cell"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSimulatedCapacityShorterHoldsMoreUsers(t *testing.T) {
	base := cellBase()
	base.Duration = 5 * sim.Minute
	mk := func(users int) *sim.RNG { return sim.Stream(int64(users), "cap") }
	long := base
	long.HoldMean = 1200 * sim.Millisecond
	kLong, err := SimulatedCapacity(long, 0.02, 10, mk)
	if err != nil {
		t.Fatal(err)
	}
	short := base
	short.HoldMean = 600 * sim.Millisecond
	kShort, err := SimulatedCapacity(short, 0.02, 10, mk)
	if err != nil {
		t.Fatal(err)
	}
	if kShort <= kLong {
		t.Fatalf("halving holds should raise capacity: %d vs %d", kShort, kLong)
	}
}

func TestSimulatedCapacityValidation(t *testing.T) {
	mk := func(users int) *sim.RNG { return sim.Stream(1, "x") }
	if _, err := SimulatedCapacity(cellBase(), 0, 10, mk); err == nil {
		t.Error("want error for beta 0")
	}
	if _, err := SimulatedCapacity(cellBase(), 0.02, 0, mk); err == nil {
		t.Error("want error for zero step")
	}
	if _, err := SimulatedCapacity(cellBase(), 0.02, 10, nil); err == nil {
		t.Error("want error for nil rng factory")
	}
}
