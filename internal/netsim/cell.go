package netsim

import (
	"fmt"

	"videodvfs/internal/sim"
)

// CellSimConfig parameterizes a multi-user cell simulation: Users
// independent streaming clients each request a dedicated channel pair once
// per FetchPeriod (the segment duration) and hold it for a lognormal
// service time. Requests finding all Channels busy are blocked and lost,
// matching the M/G/N loss model the capacity analysis uses — the
// simulation validates that analysis and measures the capacity effect of
// shorter holds (fast dormancy / burst prefetch) directly.
type CellSimConfig struct {
	// Users is the number of streaming clients in the cell.
	Users int
	// Channels is the number of dedicated channel pairs.
	Channels int
	// FetchPeriod is each user's mean inter-request time.
	FetchPeriod sim.Time
	// HoldMean is the mean channel hold per request.
	HoldMean sim.Time
	// HoldCV is the lognormal CV of hold times.
	HoldCV float64
	// Duration is the simulated span.
	Duration sim.Time
	// Warmup excludes the initial transient from the statistics.
	Warmup sim.Time
}

// Validate checks the configuration.
func (c CellSimConfig) Validate() error {
	if c.Users <= 0 {
		return fmt.Errorf("cell: %d users", c.Users)
	}
	if c.Channels <= 0 {
		return fmt.Errorf("cell: %d channels", c.Channels)
	}
	if c.FetchPeriod <= 0 || c.HoldMean <= 0 {
		return fmt.Errorf("cell: fetch period %v and hold %v must be positive", c.FetchPeriod, c.HoldMean)
	}
	if c.HoldCV < 0 {
		return fmt.Errorf("cell: negative hold CV")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("cell: duration %v not positive", c.Duration)
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return fmt.Errorf("cell: warmup %v outside [0, duration)", c.Warmup)
	}
	return nil
}

// CellStats summarizes a cell simulation.
type CellStats struct {
	// Requests and Blocked count post-warmup channel requests.
	Requests, Blocked int
	// MeanBusy is the time-averaged number of busy channels.
	MeanBusy float64
	// PeakBusy is the maximum concurrently busy channels.
	PeakBusy int
}

// BlockRate returns the fraction of requests blocked.
func (s CellStats) BlockRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Requests)
}

// SimulateCell runs the multi-user loss-system simulation.
func SimulateCell(cfg CellSimConfig, rng *sim.RNG) (CellStats, error) {
	if err := cfg.Validate(); err != nil {
		return CellStats{}, err
	}
	if rng == nil {
		return CellStats{}, fmt.Errorf("cell: rng is required")
	}
	eng := sim.NewEngine()
	var (
		busy     int
		stats    CellStats
		busyTW   float64 // ∫ busy dt after warmup
		lastAt   sim.Time
		observed sim.Time
	)
	account := func(now sim.Time) {
		if now > cfg.Warmup {
			from := lastAt
			if from < cfg.Warmup {
				from = cfg.Warmup
			}
			dt := now - from
			busyTW += float64(busy) * dt.Seconds()
			observed += dt
		}
		lastAt = now
	}
	request := func(now sim.Time) {
		account(now)
		if now > cfg.Warmup {
			stats.Requests++
		}
		if busy >= cfg.Channels {
			if now > cfg.Warmup {
				stats.Blocked++
			}
			return
		}
		busy++
		if busy > stats.PeakBusy {
			stats.PeakBusy = busy
		}
		hold := sim.Time(rng.LognormalMeanCV(cfg.HoldMean.Seconds(), cfg.HoldCV))
		eng.Schedule(hold, func() {
			account(eng.Now())
			busy--
		})
	}
	// Each user requests with exponential inter-arrival around the fetch
	// period, staggered at start.
	for u := 0; u < cfg.Users; u++ {
		var arm func(delay sim.Time)
		arm = func(delay sim.Time) {
			eng.Schedule(delay, func() {
				now := eng.Now()
				if now >= cfg.Duration {
					return
				}
				request(now)
				arm(sim.Time(rng.Exp(cfg.FetchPeriod.Seconds())))
			})
		}
		arm(sim.Time(rng.Uniform(0, cfg.FetchPeriod.Seconds())))
	}
	eng.RunUntil(cfg.Duration)
	account(cfg.Duration)
	if observed > 0 {
		stats.MeanBusy = busyTW / observed.Seconds()
	}
	return stats, nil
}

// SimulatedCapacity returns the largest user count whose simulated
// blocking rate stays below beta, scanning upward in the given step. It is
// the empirical counterpart of CapacityUsers.
func SimulatedCapacity(base CellSimConfig, beta float64, step int, rng func(users int) *sim.RNG) (int, error) {
	if beta <= 0 || beta >= 1 {
		return 0, fmt.Errorf("cell: beta %v outside (0, 1)", beta)
	}
	if step <= 0 {
		return 0, fmt.Errorf("cell: step %d not positive", step)
	}
	if rng == nil {
		return 0, fmt.Errorf("cell: rng factory is required")
	}
	best := 0
	for users := step; users <= base.Channels*100; users += step {
		cfg := base
		cfg.Users = users
		st, err := SimulateCell(cfg, rng(users))
		if err != nil {
			return 0, err
		}
		if st.BlockRate() < beta {
			best = users
		} else {
			break
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("cell: even %d users exceed blocking target %v", step, beta)
	}
	return best, nil
}
