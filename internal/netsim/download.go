package netsim

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
)

// DownloaderConfig tunes the segment downloader.
type DownloaderConfig struct {
	// RTT is the request round-trip added before each fetch's data flows.
	RTT sim.Time
	// CyclesPerBit is the CPU cost of network-stack processing, submitted
	// to the core as the data arrives.
	CyclesPerBit float64
	// NetChunk is the granularity at which network CPU work is submitted
	// (span of download time per CPU job).
	NetChunk sim.Time
}

// DefaultDownloaderConfig returns typical values: 70 ms RTT, ≈1 cycle/bit
// stack cost, 100 ms CPU-job chunking.
func DefaultDownloaderConfig() DownloaderConfig {
	return DownloaderConfig{
		RTT:          70 * sim.Millisecond,
		CyclesPerBit: 1.0,
		NetChunk:     100 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c DownloaderConfig) Validate() error {
	if c.RTT < 0 {
		return fmt.Errorf("downloader: negative RTT")
	}
	if c.CyclesPerBit < 0 {
		return fmt.Errorf("downloader: negative cycles/bit")
	}
	if c.NetChunk <= 0 {
		return fmt.Errorf("downloader: chunk %v not positive", c.NetChunk)
	}
	return nil
}

// Downloader fetches byte blobs over a bandwidth trace while driving the
// radio state machine and charging network-stack CPU cycles to the core.
// Fetches are serialized (players fetch one segment at a time).
type Downloader struct {
	eng   *sim.Engine
	bw    Bandwidth
	radio *Radio
	core  *cpu.Core
	cfg   DownloaderConfig

	busy    bool
	queue   []fetchReq
	bitsRx  float64
	fetches int
	subErr  error

	onActive func(now sim.Time, active bool)
}

type fetchReq struct {
	bits   float64
	onDone func(now sim.Time)
}

// NewDownloader wires a downloader to its substrates. core may be nil to
// skip CPU accounting (used by radio-only experiments).
func NewDownloader(eng *sim.Engine, bw Bandwidth, radio *Radio, core *cpu.Core, cfg DownloaderConfig) (*Downloader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if bw == nil || radio == nil {
		return nil, fmt.Errorf("downloader: bandwidth and radio are required")
	}
	return &Downloader{eng: eng, bw: bw, radio: radio, core: core, cfg: cfg}, nil
}

// OnActive registers a listener for download activity transitions (used by
// the network-coordinating governor).
func (d *Downloader) OnActive(fn func(now sim.Time, active bool)) { d.onActive = fn }

// BitsReceived returns the total payload downloaded so far.
func (d *Downloader) BitsReceived() float64 { return d.bitsRx }

// Fetches returns the number of completed fetches.
func (d *Downloader) Fetches() int { return d.fetches }

// Err returns the first internal error (CPU submission), if any.
func (d *Downloader) Err() error { return d.subErr }

// Busy reports whether a fetch is in flight.
func (d *Downloader) Busy() bool { return d.busy }

// Fetch downloads bits of payload and calls onDone at completion. Calls
// while busy are queued in order.
func (d *Downloader) Fetch(bits float64, onDone func(now sim.Time)) error {
	if bits <= 0 {
		return fmt.Errorf("downloader: fetch of %v bits", bits)
	}
	d.queue = append(d.queue, fetchReq{bits: bits, onDone: onDone})
	if !d.busy {
		d.next()
	}
	return nil
}

func (d *Downloader) next() {
	if len(d.queue) == 0 {
		if d.busy {
			d.busy = false
			if d.onActive != nil {
				d.onActive(d.eng.Now(), false)
			}
			d.radio.EndActivity()
		}
		return
	}
	req := d.queue[0]
	d.queue = d.queue[1:]
	if !d.busy {
		d.busy = true
		if d.onActive != nil {
			d.onActive(d.eng.Now(), true)
		}
	}
	d.radio.BeginActivity(func() {
		// Request RTT, then stream the payload.
		d.eng.Schedule(d.cfg.RTT, func() {
			d.radio.SetTransferring(true)
			d.stream(req.bits, 0, req)
		})
	})
}

// stream advances the download through the piecewise-constant bandwidth
// trace, charging network CPU work per chunk.
func (d *Downloader) stream(remaining, chunkCycles float64, req fetchReq) {
	now := d.eng.Now()
	rate, until := d.bw.Rate(now)
	if rate <= 0 {
		// Outage: idle the radio Tx flag until the rate returns.
		d.radio.SetTransferring(false)
		d.eng.At(until, func() {
			d.radio.SetTransferring(true)
			d.stream(remaining, chunkCycles, req)
		})
		return
	}
	span := until - now
	if span > d.cfg.NetChunk {
		span = d.cfg.NetChunk
	}
	bitsInSpan := rate * span.Seconds()
	if bitsInSpan >= remaining {
		// Finishes within this span.
		dt := sim.Time(remaining / rate)
		d.eng.Schedule(dt, func() {
			d.bitsRx += remaining
			d.chargeCPU(chunkCycles + remaining*d.cfg.CyclesPerBit)
			d.fetches++
			done := req.onDone
			// Let the next queued fetch (if any) keep the radio active;
			// otherwise end the burst.
			d.radio.SetTransferring(false)
			if done != nil {
				done(d.eng.Now())
			}
			d.next()
		})
		return
	}
	d.eng.Schedule(span, func() {
		d.bitsRx += bitsInSpan
		d.chargeCPU(chunkCycles + bitsInSpan*d.cfg.CyclesPerBit)
		d.stream(remaining-bitsInSpan, 0, req)
	})
}

func (d *Downloader) chargeCPU(cycles float64) {
	if d.core == nil || cycles <= 0 {
		return
	}
	err := d.core.Submit(&cpu.Job{Cycles: cycles, Priority: cpu.PrioNetwork, Tag: "net"})
	if err != nil && d.subErr == nil {
		d.subErr = err
	}
}
